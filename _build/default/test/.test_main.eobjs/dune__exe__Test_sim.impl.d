test/test_sim.ml: Alcotest Array Core Dram Filename Lang List Noc Option Printf QCheck QCheck_alcotest Sim Sys
