(** Inter-pass verifier.

    Independent re-checks of the invariants each pipeline stage claims,
    run between passes (and from [occ --verify]):

    - [V001] every optimized layout's [U] is unimodular;
    - [V002] the Data-to-Core solution still solves its weighted system
      ([Bᵀ·gᵥ = 0] recheck, and the satisfied weight matches);
    - [V003] every [Perm] home table is a permutation, and all layouts
      agree on it (a single [__home] array is emitted);
    - [V004] sampled original indices stay inside the transformed
      allocation and map injectively;
    - [V005] the cluster map is a thread ↔ node bijection;
    - [V006] the transformed program is semantically equivalent to the
      original on sampled iterations: every statement-level reference
      evaluates to the element [Layout.offset_of_index] predicts;
    - [V007] the emitted C program's access sequence — row-major
      addressing over the padded declarations, [__home] resolved through
      the permutation table — replayed through the interpreter matches,
      access by access, the trace the chosen layouts imply for the
      original program ({!check_codegen}, run when codegen is enabled).

    Violations come back as located diagnostics (span of the offending
    declaration or reference), never exceptions. *)

val run :
  cfg:Customize.config ->
  solved:Transform.solved list ->
  report:Transform.report ->
  original:Lang.Ast.program ->
  transformed:Lang.Ast.program ->
  Lang.Diag.t list

val check_codegen :
  report:Transform.report ->
  original:Lang.Ast.program ->
  transformed:Lang.Ast.program ->
  Lang.Diag.t list
(** The V007 replay alone.  Traces both programs with a small thread
    count (the chunk arithmetic is exercised; trace length is
    thread-independent), drops the transformed side's [__home] reads, and
    compares per-nest per-thread streams — lengths in full, elements up
    to a cap.  The first divergence is reported at the offending nest's
    span. *)
