lib/workloads/app.ml: Lang List
