type t = { matrix : Matrix.t; offset : Vec.t }

let make matrix offset =
  if Matrix.rows matrix <> Vec.dim offset then
    invalid_arg "Access.make: offset/matrix mismatch";
  { matrix; offset }

let identity m = { matrix = Matrix.identity m; offset = Vec.zero m }

let rank r = Matrix.rows r.matrix

let depth r = Matrix.cols r.matrix

let apply r i = Vec.add (Matrix.mul_vec r.matrix i) r.offset

let submatrix r ~u = Matrix.drop_col r.matrix u

let transform u r =
  { matrix = Matrix.mul u r.matrix; offset = Matrix.mul_vec u r.offset }

let equal a b = Matrix.equal a.matrix b.matrix && Vec.equal a.offset b.offset

let pp ppf r =
  Format.fprintf ppf "@[<v>A =@,%a@,o = %a@]" Matrix.pp r.matrix Vec.pp r.offset
