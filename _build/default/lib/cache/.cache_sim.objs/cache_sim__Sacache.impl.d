lib/cache/sacache.ml: Array Option
