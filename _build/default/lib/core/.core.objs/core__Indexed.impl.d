lib/core/indexed.ml: Affine Array Float List Option
