(* Tests for the full-system simulator: event heap, configuration,
   statistics, and end-to-end engine behavior on small kernels. *)

module Heap = Sim.Event_heap
module Config = Sim.Config
module Stats = Sim.Stats
module Engine = Sim.Engine
module Runner = Sim.Runner

(* --- event heap --- *)

let test_heap_order () =
  let h = Heap.create () in
  List.iter (fun (t, v) -> Heap.push h ~time:t v) [ (5, "e"); (1, "a"); (3, "c"); (1, "b") ];
  let popped = List.init 4 (fun _ -> Option.get (Heap.pop h)) in
  Alcotest.(check (list (pair int string))) "time order, FIFO ties"
    [ (1, "a"); (1, "b"); (3, "c"); (5, "e") ]
    popped;
  Alcotest.(check bool) "empty" true (Heap.is_empty h)

let prop_heap_sorted =
  QCheck.Test.make ~name:"heap pops in nondecreasing time order" ~count:200
    (QCheck.make QCheck.Gen.(list_size (int_range 0 200) (int_range 0 1000)))
    (fun times ->
      let h = Heap.create () in
      List.iter (fun t -> Heap.push h ~time:t ()) times;
      let rec drain last =
        match Heap.pop h with
        | None -> true
        | Some (t, ()) -> t >= last && drain t
      in
      drain min_int)

(* --- config --- *)

let ok = function Ok v -> v | Error e -> failwith e

let test_default_config () =
  let c = Config.default () in
  Alcotest.(check int) "8x8 mesh" 64 (Noc.Topology.nodes (Config.topo c));
  Alcotest.(check int) "L1 16KB" (16 * 1024) c.Config.l1_size;
  Alcotest.(check int) "L2 line 256" 256 (Config.l2_line c);
  Alcotest.(check int) "4 controllers" 4 (Core.Cluster.num_mcs (Config.cluster c));
  Alcotest.(check int) "L1 latency" 2 c.Config.l1_latency;
  Alcotest.(check int) "L2 latency" 10 c.Config.l2_latency;
  Alcotest.(check int) "hop latency" 4 c.Config.noc.Noc.Network.per_hop_latency

let test_mesh_retarget () =
  let c = ok (Config.mesh ~width:4 ~height:4 (Config.scaled ())) in
  Alcotest.(check int) "16 nodes" 16 (Noc.Topology.nodes (Config.topo c));
  Alcotest.(check int) "still 4 controllers" 4 (Core.Cluster.num_mcs (Config.cluster c))

let test_customize_config_granularity () =
  let c = Config.scaled () in
  let cc = Config.customize_config c in
  Alcotest.(check int) "line granularity in elements" 32 cc.Core.Customize.p_elems;
  let cpage = Config.with_interleaving c Dram.Address_map.Page_interleaved in
  Alcotest.(check int) "page granularity in elements" 512
    (Config.customize_config cpage).Core.Customize.p_elems

(* --- stats --- *)

let test_hop_cdf () =
  let h = Array.make (Stats.max_hops + 1) 0 in
  h.(0) <- 1;
  h.(2) <- 3;
  let cdf = Stats.hop_cdf h in
  Alcotest.(check (float 1e-9)) "cdf at 0" 0.25 cdf.(0);
  Alcotest.(check (float 1e-9)) "cdf at 1" 0.25 cdf.(1);
  Alcotest.(check (float 1e-9)) "cdf at 2" 1.0 cdf.(2);
  Alcotest.(check (float 1e-9)) "cdf at max" 1.0 cdf.(Stats.max_hops)

(* --- engine end-to-end --- *)

let small_src =
  {|
param N = 64;
array A[N][N];
array B[N][N];
parfor i = 1 to N-2 { for j = 0 to N-1 { A[i][j] = B[i][j] + B[i-1][j] + B[i+1][j]; } }
|}

let parse src =
  match Lang.Parser.parse_result src with
  | Ok p -> p
  | Error _ -> failwith "parse failed"

let small_program = parse small_src

let run ?(cfg = Config.scaled ()) ?(optimized = false) () =
  Runner.run cfg ~optimized small_program

let test_engine_conservation () =
  let r = run () in
  let s = r.Engine.stats in
  (* every access is a hit at some level or goes off chip *)
  Alcotest.(check int) "accesses conserved" (Stats.total_accesses s)
    ((Stats.l1_hits s) + (Stats.l2_hits s) + (Stats.offchip_accesses s));
  Alcotest.(check bool) "finite finish" true ((Stats.finish_time s) > 0);
  Alcotest.(check bool) "off-chip happened" true ((Stats.offchip_accesses s) > 0);
  (* access count matches the trace: 62 * 64 iterations * 4 references *)
  Alcotest.(check int) "trace size" (62 * 64 * 4) (Stats.total_accesses s)

let test_engine_deterministic () =
  let r1 = run () and r2 = run () in
  Alcotest.(check int) "same finish" (Stats.finish_time r1.Engine.stats)
    (Stats.finish_time r2.Engine.stats);
  Alcotest.(check int) "same offchip" (Stats.offchip_accesses r1.Engine.stats)
    (Stats.offchip_accesses r2.Engine.stats)

let test_engine_hop_bound () =
  let r = run () in
  let s = r.Engine.stats in
  (* no message can traverse more than width+height-2 = 14 links *)
  for h = 15 to Stats.max_hops do
    Alcotest.(check int) "hop bound offchip" 0 (Stats.offchip_hops s).(h);
    Alcotest.(check int) "hop bound onchip" 0 (Stats.onchip_hops s).(h)
  done

let test_engine_optimal_nearest () =
  let cfg = { (Config.scaled ()) with Config.optimal = true } in
  let r = run ~cfg () in
  let s = r.Engine.stats in
  (* under the optimal scheme every off-chip request goes to the nearest
     controller: the request distribution must respect that *)
  let topo = Config.topo cfg in
  let placement = Config.placement cfg in
  Array.iteri
    (fun node row ->
      Array.iteri
        (fun mc count ->
          if count > 0 then
            Alcotest.(check int)
              (Printf.sprintf "node %d only uses its nearest controller" node)
              (Noc.Placement.nearest placement topo node)
              mc)
        row)
      (Stats.node_mc_requests s);
  (* and memory latency is the uncontended row-empty access *)
  Alcotest.(check (float 0.01)) "no queue delay"
    (float_of_int cfg.Config.timing.Dram.Timing.row_empty)
    (Stats.avg_memory s)

let test_engine_optimal_faster () =
  let base = run () in
  let r = run ~cfg:{ (Config.scaled ()) with Config.optimal = true } () in
  Alcotest.(check bool) "optimal is faster" true
    ((Stats.finish_time r.Engine.stats) < (Stats.finish_time base.Engine.stats))

let test_engine_optimized_locality () =
  (* the compiler layout reduces average off-chip request distance *)
  let avg_hops s =
    let n = ref 0 and total = ref 0 in
    Array.iteri (fun h c -> n := !n + c; total := !total + (h * c)) (Stats.offchip_hops s);
    float_of_int !total /. float_of_int (max 1 !n)
  in
  let o = run () and p = run ~optimized:true () in
  Alcotest.(check bool) "fewer hops per off-chip message" true
    (avg_hops p.Engine.stats < avg_hops o.Engine.stats)

let test_engine_shared_l2 () =
  let cfg = { (Config.scaled ()) with Config.l2_org = Config.Shared_l2 } in
  let r = run ~cfg () in
  let s = r.Engine.stats in
  Alcotest.(check int) "conservation under shared L2" (Stats.total_accesses s)
    ((Stats.l1_hits s) + (Stats.l2_hits s) + (Stats.offchip_accesses s));
  (* remote home banks generate on-chip traffic *)
  Alcotest.(check bool) "on-chip messages" true ((Stats.onchip_messages s) > 0)

let test_engine_page_policies () =
  let page cfg_policy =
    let cfg =
      {
        (Config.with_interleaving (Config.scaled ())
           Dram.Address_map.Page_interleaved)
        with
        Config.page_policy = cfg_policy;
      }
    in
    run ~cfg ()
  in
  let hw = page Config.Hardware in
  let ft = page Config.First_touch in
  let mc = page Config.Mc_aware in
  Alcotest.(check bool) "pages allocated" true (hw.Engine.pages_allocated > 0);
  Alcotest.(check int) "same pages under all policies" hw.Engine.pages_allocated
    ft.Engine.pages_allocated;
  Alcotest.(check int) "same accesses" (Stats.total_accesses hw.Engine.stats)
    (Stats.total_accesses mc.Engine.stats)

let test_engine_threads_per_core () =
  let cfg = { (Config.scaled ()) with Config.threads_per_core = 2 } in
  let r = Runner.run cfg ~optimized:false small_program in
  Alcotest.(check int) "same accesses with 2 threads/core"
    (Stats.total_accesses (run ()).Engine.stats)
    (Stats.total_accesses r.Engine.stats)

let test_engine_warmup_gating () =
  let p =
    parse
      {|
param N = 64;
array A[N][N];
parfor i = 0 to N-1 { for j = 0 to N-1 { A[i][j] = 1; } }
parfor i = 0 to N-1 { for j = 0 to N-1 { A[i][j] = A[i][j] + 1; } }
|}
  in
  let cfg = Config.scaled () in
  let all = Runner.run cfg ~optimized:false p in
  let gated = Runner.run cfg ~optimized:false ~warmup_phases:1 p in
  Alcotest.(check int) "warmup accesses excluded" (64 * 64 * 2)
    (Stats.total_accesses gated.Engine.stats);
  Alcotest.(check int) "ungated counts everything" (64 * 64 * 3)
    (Stats.total_accesses all.Engine.stats);
  Alcotest.(check bool) "measured time below total" true
    (gated.Engine.measured_time <= (Stats.finish_time gated.Engine.stats))

(* Conservation and determinism across the whole configuration matrix:
   every axis the experiments vary must keep the engine's books
   balanced. *)
let test_config_matrix () =
  let base = Config.scaled () in
  let variants =
    [
      ( "m2",
        ok
          (Result.bind
             (Core.Cluster.m2 ~width:8 ~height:8)
             (Config.with_cluster base)) );
      ( "mc8",
        ok
          (Result.bind
             (Core.Cluster.with_mcs_result ~width:8 ~height:8 ~mcs:8)
             (Config.with_cluster base)) );
      ("mesh4x4", ok (Config.mesh ~width:4 ~height:4 base));
      ("tpc4", { base with Config.threads_per_core = 4 });
      ("shared+optimal", { base with Config.l2_org = Config.Shared_l2; optimal = true });
      ("fcfs", { base with Config.mc_scheduler = Dram.Fr_fcfs.Fcfs });
      ("closed-page", { base with Config.mc_row_policy = Dram.Fr_fcfs.Closed_page });
      ( "page+first-touch",
        {
          (Config.with_interleaving base Dram.Address_map.Page_interleaved) with
          Config.page_policy = Config.First_touch;
        } );
    ]
  in
  List.iter
    (fun (name, cfg) ->
      List.iter
        (fun optimized ->
          let r = Runner.run cfg ~optimized small_program in
          let s = r.Engine.stats in
          Alcotest.(check int)
            (Printf.sprintf "%s conservation (optimized=%b)" name optimized)
            (Stats.total_accesses s)
            ((Stats.l1_hits s) + (Stats.l2_hits s) + (Stats.offchip_accesses s));
          Alcotest.(check bool)
            (Printf.sprintf "%s finishes" name)
            true ((Stats.finish_time s) > 0))
        [ false; true ])
    variants

(* --- trace files --- *)

let test_tracefile_roundtrip () =
  let phases =
    Lang.Interp.trace ~threads:4 ~addr_of:(fun _ v -> (v.(0) * 64) + 8) small_program
  in
  let path = Filename.temp_file "offchip" ".trace" in
  Sim.Tracefile.dump path phases;
  let back = Sim.Tracefile.load path in
  Sys.remove path;
  Alcotest.(check int) "same phase count" (List.length phases) (List.length back);
  Alcotest.(check int) "same access count"
    (Sim.Tracefile.total_accesses phases)
    (Sim.Tracefile.total_accesses back);
  List.iter2
    (fun (a : Lang.Interp.phase) (b : Lang.Interp.phase) ->
      Alcotest.(check bool) "identical streams" true (a = b))
    phases back

let test_tracefile_malformed () =
  let path = Filename.temp_file "offchip" ".trace" in
  let oc = open_out path in
  output_string oc "not a trace
";
  close_out oc;
  (match Sim.Tracefile.load path with
  | exception Failure _ -> ()
  | _ -> Alcotest.fail "expected Failure");
  Sys.remove path

(* --- runner --- *)

let test_runner_alignment () =
  let cfg = Config.scaled () in
  let prep = Runner.prepare cfg ~optimized:false small_program in
  let alignment = 4 * Config.page_bytes cfg in
  List.iter
    (fun (name, base) ->
      Alcotest.(check int) (name ^ " aligned") 0 (base mod alignment))
    prep.Runner.bases;
  (* arrays do not overlap *)
  match prep.Runner.bases with
  | [ (_, a); (_, b) ] ->
    Alcotest.(check bool) "disjoint" true (abs (b - a) >= 64 * 64 * 8)
  | _ -> Alcotest.fail "expected two arrays"

let test_runner_multiprogram () =
  let cfg = Config.scaled () in
  let p1 =
    Runner.prepare cfg ~optimized:false ~threads:32 ~core_offset:0 ~name:"a"
      small_program
  in
  let p2 =
    Runner.prepare cfg ~optimized:false ~threads:32 ~core_offset:32
      ~vaddr_base:(1 lsl 30) ~name:"b" small_program
  in
  let r = Runner.run_many cfg ~jobs:[ p1; p2 ] in
  Alcotest.(check int) "two jobs finish" 2 (Array.length r.Engine.job_finish);
  Array.iter
    (fun t -> Alcotest.(check bool) "job finished" true (t > 0))
    r.Engine.job_finish;
  (* both jobs' accesses are simulated *)
  Alcotest.(check int) "combined accesses" (2 * 62 * 64 * 4)
    (Stats.total_accesses r.Engine.stats)

(* --- pooled-engine regression guards --- *)

let test_heap_next_time_pop_payload () =
  let h = Heap.create () in
  Alcotest.check_raises "next_time on empty"
    (Invalid_argument "Event_heap.next_time: empty") (fun () ->
      ignore (Heap.next_time h));
  List.iter
    (fun (t, v) -> Heap.push h ~time:t v)
    [ (7, "late"); (2, "first"); (2, "second") ];
  Alcotest.(check int) "next_time peeks without removing" 2 (Heap.next_time h);
  Alcotest.(check string) "key order" "first" (Heap.pop_payload h);
  Alcotest.(check string) "FIFO tie-break" "second" (Heap.pop_payload h);
  Alcotest.(check int) "peek advances" 7 (Heap.next_time h);
  Alcotest.(check string) "last" "late" (Heap.pop_payload h);
  Alcotest.check_raises "pop_payload on empty"
    (Invalid_argument "Event_heap.pop_payload: empty") (fun () ->
      ignore (Heap.pop_payload h))

(* The exact JSON document the committed golden pins (also what
   test/gen_golden.ml emits). *)
let seed0_json () =
  let cfg = Config.scaled () in
  let r = Runner.run cfg ~optimized:false small_program in
  Obs.Json.to_string (Sweep.Exec.result_json ~app:"golden-small" cfg r)

let test_engine_seed_identical_json () =
  (* two runs under the same seed must agree on every statistic, not just
     the few the other determinism test samples *)
  Alcotest.(check string) "same seed, byte-identical stats JSON"
    (seed0_json ()) (seed0_json ())

let test_engine_seed0_golden () =
  let path = "golden/seed0_stats.json" in
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let golden = really_input_string ic n in
  close_in ic;
  (* [to_channel] (used by gen_golden) appends one newline *)
  Alcotest.(check string) "byte-identical to committed golden"
    golden
    (seed0_json () ^ "\n")

let test_engine_degenerate_chiplet_golden () =
  (* the 1-chiplet hierarchical machine IS the flat machine: a platform
     declaring a 1x1 chiplet grid must reproduce the flat seed-0 golden
     byte for byte — no gated field, metric or charge may leak through *)
  let cfg = Config.scaled () in
  let degenerate =
    match Core.Platform.to_json (Config.platform cfg) with
    | Obs.Json.Obj fields ->
      Obs.Json.Obj
        (fields
        @ [
            ( "hierarchy",
              Obs.Json.Obj
                [
                  ("chiplets_x", Obs.Json.Int 1);
                  ("chiplets_y", Obs.Json.Int 1);
                  ("link_latency", Obs.Json.Int 99);
                  ("link_bytes", Obs.Json.Int 2);
                ] );
          ])
    | _ -> Alcotest.fail "platform JSON must be an object"
  in
  let p = ok (Core.Platform.of_json degenerate) in
  let cfg' = Config.with_platform cfg p in
  let r = Runner.run cfg' ~optimized:false small_program in
  Alcotest.(check string) "1x1 chiplet grid reproduces the flat golden"
    (seed0_json ())
    (Obs.Json.to_string (Sweep.Exec.result_json ~app:"golden-small" cfg' r))

let test_engine_phase_advance_guard () =
  let cfg = Config.scaled () in
  (* a job with no phases must finish immediately instead of indexing
     past the phase array *)
  let empty =
    {
      Engine.name = "empty";
      phases = [];
      node_of_thread = [| 0 |];
      warmup_phases = 0;
      site_streams = [];
      start_time = 0;
      start_after = None;
      free_vpage_range = None;
    }
  in
  let r = Engine.run cfg ~jobs:[ empty ] () in
  Alcotest.(check int) "empty job finishes at 0" 0 r.Engine.job_finish.(0);
  Alcotest.(check int) "no accesses" 0 (Stats.total_accesses r.Engine.stats);
  (* a multi-phase job runs each phase exactly once and stops at the
     boundary: the access count proves no phase replays or is skipped *)
  let p =
    parse
      {|
param N = 64;
array A[N][N];
parfor i = 0 to N-1 { for j = 0 to N-1 { A[i][j] = 1; } }
parfor i = 0 to N-1 { for j = 0 to N-1 { A[i][j] = A[i][j] + 1; } }
|}
  in
  let r = Runner.run cfg ~optimized:false p in
  Alcotest.(check int) "exactly two phases of accesses" (64 * 64 * 3)
    (Stats.total_accesses r.Engine.stats)

let qsuite = List.map QCheck_alcotest.to_alcotest

let suite =
  [
    ( "sim.event_heap",
      [
        Alcotest.test_case "ordering" `Quick test_heap_order;
        Alcotest.test_case "next_time / pop_payload" `Quick
          test_heap_next_time_pop_payload;
      ]
      @ qsuite [ prop_heap_sorted ] );
    ( "sim.config",
      [
        Alcotest.test_case "table 1 defaults" `Quick test_default_config;
        Alcotest.test_case "mesh retarget" `Quick test_mesh_retarget;
        Alcotest.test_case "granularity" `Quick test_customize_config_granularity;
      ] );
    ("sim.stats", [ Alcotest.test_case "hop cdf" `Quick test_hop_cdf ]);
    ( "sim.engine",
      [
        Alcotest.test_case "conservation" `Quick test_engine_conservation;
        Alcotest.test_case "deterministic" `Quick test_engine_deterministic;
        Alcotest.test_case "hop bound" `Quick test_engine_hop_bound;
        Alcotest.test_case "optimal scheme: nearest" `Quick test_engine_optimal_nearest;
        Alcotest.test_case "optimal scheme: faster" `Quick test_engine_optimal_faster;
        Alcotest.test_case "optimized locality" `Quick test_engine_optimized_locality;
        Alcotest.test_case "shared L2" `Quick test_engine_shared_l2;
        Alcotest.test_case "page policies" `Quick test_engine_page_policies;
        Alcotest.test_case "threads per core" `Quick test_engine_threads_per_core;
        Alcotest.test_case "warmup gating" `Quick test_engine_warmup_gating;
        Alcotest.test_case "config matrix" `Quick test_config_matrix;
        Alcotest.test_case "seed-identical stats JSON" `Quick
          test_engine_seed_identical_json;
        Alcotest.test_case "seed-0 golden" `Quick test_engine_seed0_golden;
        Alcotest.test_case "degenerate chiplet = flat golden" `Quick
          test_engine_degenerate_chiplet_golden;
        Alcotest.test_case "phase advance guard" `Quick
          test_engine_phase_advance_guard;
      ] );
    ( "sim.tracefile",
      [
        Alcotest.test_case "roundtrip" `Quick test_tracefile_roundtrip;
        Alcotest.test_case "malformed" `Quick test_tracefile_malformed;
      ] );
    ( "sim.runner",
      [
        Alcotest.test_case "base alignment" `Quick test_runner_alignment;
        Alcotest.test_case "multiprogrammed" `Quick test_runner_multiprogram;
      ] );
  ]
