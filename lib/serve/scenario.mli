(** Consolidation-serving scenarios.

    A scenario describes an open-system experiment on one platform: a
    tenant mix (applications drawn from {!Workloads.Suite}), an arrival
    process (seeded, Poisson-like), a page-placement policy and a thread
    budget per tenant.  Scenarios are plain JSON documents so they can be
    committed next to sweep specs and replayed bit-identically. *)

type policy = Interleaved | First_touch | Mc_aware
(** The shared-pool placement policy tenants allocate under:
    hardware page interleaving, OS first touch, or OS first touch guided
    by each tenant's compiler hints (the paper's MC-aware placement). *)

type t = {
  name : string;
  platform : string;  (** {!Sim.Config.build} platform name; [""] = default *)
  policy : policy;
  mix : string list;  (** applications tenants are drawn from (round by lot) *)
  tenants : int;  (** number of tenants admitted (the closed bound) *)
  arrival_mean : int;  (** mean inter-arrival time in cycles *)
  duration : int option;
      (** optional open bound: tenants arriving after this cycle are
          turned away *)
  threads_per_tenant : int;
  seed : int;  (** drives both arrival times and the app lottery *)
  optimized : bool;  (** run tenants through the layout pass *)
  frames_per_mc : int option;  (** override the shared pool's per-MC budget *)
}

val policy_of_string : string -> (policy, string) result
val policy_to_string : policy -> string

val smoke : ?policy:policy -> ?seed:int -> unit -> t
(** The golden smoke scenario: 4 tenants from the minimd+gafort mix, 32
    threads each, mean inter-arrival 20000 cycles — small enough for CI,
    large enough to exercise co-location, queueing and reclaim.  Both
    apps carry substantial non-hinted first-touch-friendly data whose
    locality survives co-location, so the MC-aware policy strictly beats
    hardware interleaving on this mix's weighted speedup. *)

val validate : t -> (t, string) result

val of_json : Obs.Json.t -> (t, string) result

val to_json : t -> Obs.Json.t

val config : t -> (Sim.Config.t, string) result
(** The scaled page-interleaved {!Sim.Config.t} the scenario runs on. *)
