(** The 13-application suite of the paper's evaluation: all SPEC OMP
    applications except equake, plus hpccg, minighost and minimd from
    Mantevo. *)

val all : App.t list
(** In the paper's Figure order. *)

val by_name : string -> App.t
(** Raises [Not_found] for unknown names. *)

val names : string list
