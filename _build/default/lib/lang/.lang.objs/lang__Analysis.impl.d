lib/lang/analysis.ml: Affine Array Ast Hashtbl List Option String
