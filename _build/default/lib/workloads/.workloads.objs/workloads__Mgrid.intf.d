lib/workloads/mgrid.mli: App
