(** Abstract syntax of the mini affine loop-nest language.

    This is the input language of the layout-transformation pass: array
    declarations plus (possibly parallel) rectangular loop nests whose
    statements assign between affine array references.  Subscripts may also
    go through integer index arrays ([a[col[j]]]), which is the irregular
    case handled by profiling-based approximation (paper, Section 5.4). *)

type expr =
  | Int of int
  | Var of string  (** loop iterator or program parameter *)
  | Neg of expr
  | Add of expr * expr
  | Sub of expr * expr
  | Mul of expr * expr
  | Div of expr * expr  (** integer division, used by transformed code *)
  | Mod of expr * expr
  | Load of ref_  (** array read appearing inside an expression *)

and ref_ = { array : string; subs : expr list; ref_span : Span.t }

type relop = Lt | Le | Gt | Ge | Eq | Ne

type stmt =
  | Assign of ref_ * expr  (** [ref = expr;] — one write, several reads *)
  | Loop of loop
  | If of cond  (** the pass conservatively assumes both branches run *)

and cond = {
  lhs : expr;
  op : relop;
  rhs : expr;
  then_ : stmt list;
  else_ : stmt list;
  cond_span : Span.t;  (** the [if (...)] header *)
}

and loop = {
  index : string;
  lo : expr;
  hi : expr;  (** inclusive: [for i = lo to hi] *)
  parallel : bool;  (** [parfor]: iterations block-distributed over cores *)
  body : stmt list;
  loop_span : Span.t;  (** the [for i = lo to hi] header *)
}

type decl = {
  name : string;
  extents : expr list;  (** per-dimension sizes, constant after params *)
  index_array : bool;
      (** integer-valued array used only in subscripts (e.g. CRS column
          indices); never layout-transformed *)
  decl_span : Span.t;
}

type program = {
  params : (string * int) list;  (** symbolic size parameters *)
  decls : decl list;
  nests : stmt list;  (** top-level loop nests, executed in order *)
}

(* Constructors for programmatically-built nodes (rewrites, tests): the
   span defaults to {!Span.dummy}. *)

let mk_ref ?(span = Span.dummy) ~array ~subs () =
  { array; subs; ref_span = span }

let mk_decl ?(span = Span.dummy) ?(index_array = false) ~name ~extents () =
  { name; extents; index_array; decl_span = span }

let span_of_stmt = function
  | Assign (r, _) -> r.ref_span
  | Loop l -> l.loop_span
  | If c -> c.cond_span

(* Structural identity with every span replaced by {!Span.dummy} — what
   the parse∘print round-trip preserves. *)
let rec strip_spans_expr = function
  | (Int _ | Var _) as e -> e
  | Neg a -> Neg (strip_spans_expr a)
  | Add (a, b) -> Add (strip_spans_expr a, strip_spans_expr b)
  | Sub (a, b) -> Sub (strip_spans_expr a, strip_spans_expr b)
  | Mul (a, b) -> Mul (strip_spans_expr a, strip_spans_expr b)
  | Div (a, b) -> Div (strip_spans_expr a, strip_spans_expr b)
  | Mod (a, b) -> Mod (strip_spans_expr a, strip_spans_expr b)
  | Load r -> Load (strip_spans_ref r)

and strip_spans_ref r =
  { r with subs = List.map strip_spans_expr r.subs; ref_span = Span.dummy }

let rec strip_spans_stmt = function
  | Assign (r, e) -> Assign (strip_spans_ref r, strip_spans_expr e)
  | Loop l ->
    Loop
      {
        l with
        lo = strip_spans_expr l.lo;
        hi = strip_spans_expr l.hi;
        body = List.map strip_spans_stmt l.body;
        loop_span = Span.dummy;
      }
  | If c ->
    If
      {
        c with
        lhs = strip_spans_expr c.lhs;
        rhs = strip_spans_expr c.rhs;
        then_ = List.map strip_spans_stmt c.then_;
        else_ = List.map strip_spans_stmt c.else_;
        cond_span = Span.dummy;
      }

let strip_spans p =
  {
    p with
    decls =
      List.map
        (fun d ->
          { d with extents = List.map strip_spans_expr d.extents; decl_span = Span.dummy })
        p.decls;
    nests = List.map strip_spans_stmt p.nests;
  }

let equal_program a b = strip_spans a = strip_spans b

let rec pp_expr ppf = function
  | Int n -> Format.pp_print_int ppf n
  | Var s -> Format.pp_print_string ppf s
  | Neg e -> Format.fprintf ppf "-%a" pp_atom e
  | Add (a, b) -> Format.fprintf ppf "%a + %a" pp_expr a pp_expr b
  | Sub (a, b) -> Format.fprintf ppf "%a - %a" pp_expr a pp_atom b
  | Mul (a, b) -> Format.fprintf ppf "%a*%a" pp_atom a pp_atom b
  | Div (a, b) -> Format.fprintf ppf "%a/%a" pp_atom a pp_atom b
  | Mod (a, b) -> Format.fprintf ppf "%a%%%a" pp_atom a pp_atom b
  | Load r -> pp_ref ppf r

and pp_atom ppf e =
  match e with
  | Int _ | Var _ | Load _ -> pp_expr ppf e
  | Neg _ | Add _ | Sub _ | Mul _ | Div _ | Mod _ ->
    Format.fprintf ppf "(%a)" pp_expr e

and pp_ref ppf { array; subs; _ } =
  Format.pp_print_string ppf array;
  List.iter (fun s -> Format.fprintf ppf "[%a]" pp_expr s) subs

let pp_relop ppf op =
  Format.pp_print_string ppf
    (match op with
    | Lt -> "<"
    | Le -> "<="
    | Gt -> ">"
    | Ge -> ">="
    | Eq -> "=="
    | Ne -> "!=")

let rec pp_stmt ppf = function
  | Assign (r, e) -> Format.fprintf ppf "@[<h>%a = %a;@]" pp_ref r pp_expr e
  | Loop l ->
    Format.fprintf ppf "@[<v 2>%s %s = %a to %a {@,%a@]@,}"
      (if l.parallel then "parfor" else "for")
      l.index pp_expr l.lo pp_expr l.hi pp_body l.body
  | If c ->
    Format.fprintf ppf "@[<v 2>if (%a %a %a) {@,%a@]@,}" pp_expr c.lhs pp_relop
      c.op pp_expr c.rhs pp_body c.then_;
    if c.else_ <> [] then
      Format.fprintf ppf "@[<v 2> else {@,%a@]@,}" pp_body c.else_

and pp_body ppf body =
  Format.pp_print_list
    ~pp_sep:(fun ppf () -> Format.fprintf ppf "@,")
    pp_stmt ppf body

let pp_decl ppf d =
  Format.fprintf ppf "@[<h>%s %s%a;@]"
    (if d.index_array then "index" else "array")
    d.name
    (fun ppf -> List.iter (fun e -> Format.fprintf ppf "[%a]" pp_expr e))
    d.extents

let pp_program ppf p =
  Format.fprintf ppf "@[<v>";
  List.iter (fun (n, v) -> Format.fprintf ppf "param %s = %d;@," n v) p.params;
  List.iter (fun d -> Format.fprintf ppf "%a@," pp_decl d) p.decls;
  Format.pp_print_list
    ~pp_sep:(fun ppf () -> Format.fprintf ppf "@,")
    pp_stmt ppf p.nests;
  Format.fprintf ppf "@]"

let program_to_string p = Format.asprintf "%a" pp_program p
