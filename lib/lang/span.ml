(* Byte-offset source spans.  Line/column positions are recovered from the
   source text only when a span is rendered, so carrying spans through the
   lexer, parser and AST costs two ints per node. *)

type t = { file : string; lo : int; hi : int }

let dummy = { file = "<none>"; lo = 0; hi = 0 }

let make ~file ~lo ~hi = { file; lo; hi }

let is_dummy s = s.file = "<none>" && s.lo = 0 && s.hi = 0

let join a b =
  if is_dummy a then b
  else if is_dummy b then a
  else { file = a.file; lo = min a.lo b.lo; hi = max a.hi b.hi }

type position = { line : int; col : int }

(* Line/column (both 1-based) of a byte offset in [src]. *)
let position_of ~src off =
  let off = min (max 0 off) (String.length src) in
  let line = ref 1 and bol = ref 0 in
  for i = 0 to off - 1 do
    if src.[i] = '\n' then begin
      incr line;
      bol := i + 1
    end
  done;
  { line = !line; col = off - !bol + 1 }

(* The full text of the line containing [off], without its newline. *)
let line_at ~src off =
  let n = String.length src in
  let off = min (max 0 off) n in
  let bol = ref off in
  while !bol > 0 && src.[!bol - 1] <> '\n' do
    decr bol
  done;
  let eol = ref off in
  while !eol < n && src.[!eol] <> '\n' do
    incr eol
  done;
  String.sub src !bol (!eol - !bol)

let pp ?src ppf t =
  match src with
  | Some src when not (is_dummy t) ->
    let p = position_of ~src t.lo in
    Format.fprintf ppf "%s:%d:%d" t.file p.line p.col
  | _ -> Format.fprintf ppf "%s:%d-%d" t.file t.lo t.hi

let to_string ?src t = Format.asprintf "%a" (pp ?src) t
