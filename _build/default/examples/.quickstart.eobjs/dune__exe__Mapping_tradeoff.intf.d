examples/mapping_tradeoff.mli:
