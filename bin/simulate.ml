(* simulate — run one application model through the full-system simulator
   and print the statistics the paper reports.

     simulate apsi
     simulate apsi --optimized
     simulate fma3d --optimized --mapping M2
     simulate swim --interleave page --policy first-touch
     simulate apsi --optimal             # the Section 2 optimal scheme *)

open Cmdliner

let run name optimized platform l2 interleave policy mapping width height tpc
    optimal full_scale seed show_map dump_trace stats_json trace_out
    trace_sample attr_on domains replicate =
  Cli.guard ~name:"simulate" @@ fun () ->
  if trace_sample < 1 then (
    Printf.eprintf "simulate: --trace-sample must be at least 1 (got %d)\n"
      trace_sample;
    Cli.user_error)
  else
  match Cli.check_domains ~available:Sim.Par_backend.available domains with
  | Error e ->
    Printf.eprintf "simulate: %s\n" e;
    Cli.user_error
  | Ok () -> (
  match Workloads.Suite.by_name name with
  | exception Not_found ->
    Printf.eprintf "simulate: unknown application %S (known: %s)\n" name
      (String.concat ", " Workloads.Suite.names);
    Cli.user_error
  | app -> (
    match
      Sim.Config.build ~scaled:(not full_scale) ~platform ~l2 ~interleave
        ~policy ~mapping ~width ~height ~tpc ~optimal ~seed ()
    with
    | Error e ->
      prerr_endline ("simulate: " ^ e);
      Cli.user_error
    | Ok cfg ->
      let program = Workloads.App.program app in
      let analysis = Lang.Analysis.analyze program in
      let index_lookup = Workloads.App.index_lookup app in
      let profile a = Workloads.Profile.for_transform app analysis a in
      Format.printf "%s on %a@." app.Workloads.App.name Sim.Config.pp cfg;
      if show_map then print_string (Sim.Platform_map.render cfg);
      let jobs =
        if replicate then
          Sim.Runner.prepare_replicas cfg ~optimized ~name
            ~warmup_phases:app.Workloads.App.warmup_nests ~index_lookup
            ?profile:(if optimized then Some profile else None)
            ~attr:attr_on program
        else if optimized then
          [
            Sim.Runner.prepare cfg ~optimized:true
              ~warmup_phases:app.Workloads.App.warmup_nests ~index_lookup
              ~profile ~attr:attr_on program;
          ]
        else
          [
            Sim.Runner.prepare cfg ~optimized:false
              ~warmup_phases:app.Workloads.App.warmup_nests ~index_lookup
              ~attr:attr_on program;
          ]
      in
      let prepared = List.hd jobs in
      (match dump_trace with
      | Some path -> (
        try
          let sites =
            match prepared.Sim.Runner.job.Sim.Engine.site_streams with
            | [] -> None
            | s -> Some s
          in
          Sim.Tracefile.dump ?sites path
            prepared.Sim.Runner.job.Sim.Engine.phases;
          Format.printf "trace (%d accesses%s) written to %s@."
            (Sim.Tracefile.total_accesses
               prepared.Sim.Runner.job.Sim.Engine.phases)
            (if sites = None then "" else ", site-tagged")
            path
        with Sys_error e ->
          Printf.eprintf "simulate: cannot write trace: %s\n" e;
          exit 1)
      | None -> ());
      let trace =
        match trace_out with
        | Some _ -> Obs.Trace.create ~sample:trace_sample ()
        | None -> Obs.Trace.disabled
      in
      let attr =
        if attr_on then Some (Sim.Runner.attr_for cfg prepared) else None
      in
      let on_plan =
        if domains > 1 then Some (fun s -> Format.printf "engine: %s@." s)
        else None
      in
      let r = Sim.Runner.run_many ~trace ?attr ~domains ?on_plan cfg ~jobs in
      (try
         (match trace_out with
         | Some path ->
           Obs.Trace.write_file trace path;
           Format.printf
             "trace: %d events (%d dropped, 1 in %d misses) written to %s@."
             (List.length (Obs.Trace.events trace))
             (Obs.Trace.dropped trace) (Obs.Trace.sample trace) path
         | None -> ());
         match stats_json with
         | Some path ->
           let oc = open_out path in
           Obs.Json.to_channel oc
             (Sweep.Exec.result_json ?attr ~app:name cfg r);
           output_char oc '\n';
           close_out oc;
           Format.printf "stats written to %s@." path
         | None -> ()
       with Sys_error e ->
         Printf.eprintf "simulate: cannot write output: %s\n" e;
         exit 1);
      (match attr with
      | Some a ->
        Format.printf "off-chip attribution:@.%a@."
          Obs.Attr.pp_table (Obs.Attr.snapshot a)
      | None -> ());
      Format.printf "%a@." Sim.Stats.pp_summary r.Sim.Engine.stats;
      Format.printf "steady-state execution time: %d cycles@."
        r.Sim.Engine.measured_time;
      Format.printf "controller occupancy:";
      Array.iter (fun o -> Format.printf " %.2f" o) r.Sim.Engine.mc_occupancy;
      Format.printf "@.row-buffer hit rate:";
      Array.iter (fun o -> Format.printf " %.2f" o) r.Sim.Engine.mc_row_hit_rate;
      Format.printf "@.";
      Cli.ok))

let name_arg =
  Arg.(
    required
    & pos 0 (some string) None
    & info [] ~docv:"APP" ~doc:"Application model to simulate.")

let optimized =
  Arg.(value & flag & info [ "optimized" ] ~doc:"Apply the layout pass first.")

let tpc =
  Arg.(
    value & opt int 1
    & info [ "threads-per-core" ] ~docv:"N" ~doc:"Threads per core.")

let optimal =
  Arg.(
    value & flag
    & info [ "optimal" ] ~doc:"Idealized optimal scheme (Section 2).")

let full_scale =
  Arg.(
    value & flag
    & info [ "full-scale" ]
        ~doc:"Use the Table 1 cache sizes instead of the scaled ones.")

let seed =
  Arg.(
    value & opt int 0
    & info [ "seed" ] ~docv:"N"
        ~doc:
          "Deterministic seed for the issue-jitter streams; equal seeds \
           give bit-identical runs.")

let show_map =
  Arg.(
    value & flag
    & info [ "map" ] ~doc:"Draw the mesh, clusters and controllers first.")

let dump_trace =
  Arg.(
    value
    & opt (some string) None
    & info [ "dump-trace" ] ~docv:"FILE"
        ~doc:"Write the per-thread access trace to a file.")

let stats_json =
  Arg.(
    value
    & opt (some string) None
    & info [ "stats-json" ] ~docv:"FILE"
        ~doc:
          "Write the run's statistics (configuration, every registry \
           metric, derived averages) as JSON.")

let trace_out =
  Arg.(
    value
    & opt (some string) None
    & info [ "trace-out" ] ~docv:"FILE"
        ~doc:
          "Record request-path spans and write them in Chrome trace_event \
           format (open in chrome://tracing or Perfetto; 1 cycle = 1 us).")

let trace_sample =
  Arg.(
    value & opt int 1
    & info [ "trace-sample" ] ~docv:"N"
        ~doc:"Trace every Nth L1 miss (with --trace-out; default every one).")

let attr_arg =
  Arg.(
    value & flag
    & info [ "attr" ]
        ~doc:
          "Attribute every off-chip access to its source reference: print \
           the per-site table (array, R/W, source span, per-controller \
           split, hops, queue delay) and add attribution plus ASCII \
           heatmap sections to --stats-json and site tags to \
           --dump-trace.")

let replicate_arg =
  Arg.(
    value & flag
    & info [ "replicate" ]
        ~doc:
          "Run one confined copy of the application per cluster (disjoint \
           virtual slices, threads bound inside the cluster) instead of one \
           whole-machine job — the decomposable workload the parallel \
           engine (--domains) actually speeds up.")

let cmd =
  let doc = "simulate an application on the NoC manycore platform" in
  Cmd.v
    (Cmd.info "simulate" ~doc)
    Term.(
      const run $ name_arg $ optimized $ Cli.platform $ Cli.l2 $ Cli.interleave
      $ Cli.policy $ Cli.mapping $ Cli.width $ Cli.height $ tpc $ optimal
      $ full_scale $ seed $ show_map $ dump_trace $ stats_json $ trace_out
      $ trace_sample $ attr_arg $ Cli.domains $ replicate_arg)

let () = exit (Cmd.eval' cmd)
