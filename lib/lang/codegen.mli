(** C code generation.

    The paper's implementation is a source-to-source translator inside
    Open64: it consumes the parallelized program and emits C that the node
    compiler then builds.  This module is that back end for the mini
    language: it renders a (possibly layout-transformed) program as
    compilable C with OpenMP pragmas, static-scheduled parallel loops, and
    flattened array indexing.

    Multi-dimensional arrays are emitted as flat [double]/[long] buffers
    with explicit row-major index arithmetic, so the strip-mined
    subscripts produced by the layout pass translate directly.  Index
    arrays (including the compiler-emitted [__home] lookup of the
    shared-L2 customization) become [long] buffers with an
    initialization hook the caller fills in. *)

val emit_result :
  ?name:string ->
  ?site_of:(Ast.ref_ -> int) ->
  Ast.program ->
  (string, Diag.t list) result
(** [emit_result p] is a complete C translation unit: array definitions,
    an [init_<name>_index_arrays] stub for index-array contents, and a
    [run_<name>] function containing the loop nests.  [name] defaults to
    ["kernel"].  [site_of] (typically {!Sites.id_of_ref} on the emitted
    program's site table) tags each rendered reference with a
    [/*s<id>*/] comment, linking the C text to the attribution table;
    unknown references (negative id) stay untagged.  Failures ([G002]
    non-constant extent, [G003] unknown array) come back as located
    diagnostics. *)
