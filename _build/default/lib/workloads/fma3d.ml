(** fma3d (SPEC OMP): crash simulation — element/nodal force gather with
    wide halos.  One of the two applications with the highest inter-core
    sharing and bank-queue pressure, for which the compiler analysis
    prefers mapping M2 (two controllers per cluster) over M1. *)

let app =
  App.make ~name:"fma3d"
    ~description:"crash simulation: wide-halo force gather, memory-bound"
    {|
param N = 320;
array XE[N][N];
array YE[N][N];
array ZE[N][N];
array FN[N][N];
array MN[N][N];
// column-parallel sparse init: bad for first-touch
parfor j0 = 0 to N/16-1 {
  for i = 0 to N-1 {
    XE[i][16*j0] = i;
    YE[i][16*j0] = j0;
    ZE[i][16*j0] = i + j0;
    FN[i][16*j0] = 0;
    MN[i][16*j0] = 0;
  }
}
// wide halos: i +/- 8 crosses data-block boundaries (heavy sharing)
parfor i = 8 to N-9 {
  for j = 0 to N-1 {
    FN[i][j] = XE[i][j] + XE[i-8][j] + XE[i+8][j]
             + YE[i][j] + YE[i-8][j] + YE[i+8][j]
             + ZE[i][j] + MN[i][j];
  }
}
parfor i = 8 to N-9 {
  for j = 0 to N-1 {
    MN[i][j] = FN[i][j] + FN[i-8][j] + FN[i+8][j] + ZE[i][j];
  }
}
// contact search: line-strided sweeps with no spatial reuse — the
// sustained bank-queue pressure the paper reports for this app
for t0 = 0 to 31 {
  parfor i = 0 to N-1 {
    for j32 = 0 to N/32-1 {
      ZE[i][32*j32] = MN[i][32*j32] + t0;
    }
  }
}
|}
