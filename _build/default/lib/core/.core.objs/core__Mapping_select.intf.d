lib/core/mapping_select.mli: Cluster Noc
