lib/affine/unimodular.mli: Matrix Vec
