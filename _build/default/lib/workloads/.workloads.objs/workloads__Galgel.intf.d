lib/workloads/galgel.mli: App
