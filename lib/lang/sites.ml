type site = {
  id : int;
  array : string;
  write : bool;
  span : Span.t;
  phase : int;
}

(* Lookup buckets by array name keep the per-emission scan short: a
   program has at most a handful of references per array, and the scan
   compares pointers only. *)
type t = {
  site_list : site array;
  by_array : (string, (Ast.ref_ * int) list ref) Hashtbl.t;
}

let sites t = t.site_list

let length t = Array.length t.site_list

let id_of_ref t (r : Ast.ref_) =
  match Hashtbl.find_opt t.by_array r.Ast.array with
  | None -> -1
  | Some bucket ->
    let rec scan = function
      | [] -> -1
      | (r', id) :: rest -> if r' == r then id else scan rest
    in
    scan !bucket

let site_of t r =
  match id_of_ref t r with -1 -> None | id -> Some t.site_list.(id)

(* The walk mirrors the interpreter's emission order exactly (interp.ml):
   an expression emits its loads innermost-subscript first, an assignment
   emits its right-hand side, then the left-hand side's subscripts, then
   the write; loop bounds are evaluated before the body; both branches of
   an [if] are walked (only one runs, but ids must cover either). *)
let of_program (p : Ast.program) =
  let acc = ref [] in
  let n = ref 0 in
  let by_array = Hashtbl.create 16 in
  let bucket name =
    match Hashtbl.find_opt by_array name with
    | Some b -> b
    | None ->
      let b = ref [] in
      Hashtbl.replace by_array name b;
      b
  in
  let visit phase (r : Ast.ref_) write =
    let b = bucket r.Ast.array in
    if not (List.exists (fun (r', _) -> r' == r) !b) then begin
      let id = !n in
      incr n;
      b := (r, id) :: !b;
      acc :=
        { id; array = r.Ast.array; write; span = r.Ast.ref_span; phase }
        :: !acc
    end
  in
  let rec walk_expr phase = function
    | Ast.Int _ | Ast.Var _ -> ()
    | Ast.Neg a -> walk_expr phase a
    | Ast.Add (a, b)
    | Ast.Sub (a, b)
    | Ast.Mul (a, b)
    | Ast.Div (a, b)
    | Ast.Mod (a, b) ->
      walk_expr phase a;
      walk_expr phase b
    | Ast.Load r ->
      List.iter (walk_expr phase) r.Ast.subs;
      visit phase r false
  in
  let rec walk_stmt phase = function
    | Ast.Assign (lhs, rhs) ->
      walk_expr phase rhs;
      List.iter (walk_expr phase) lhs.Ast.subs;
      visit phase lhs true
    | Ast.Loop l ->
      walk_expr phase l.Ast.lo;
      walk_expr phase l.Ast.hi;
      List.iter (walk_stmt phase) l.Ast.body
    | Ast.If c ->
      walk_expr phase c.Ast.lhs;
      walk_expr phase c.Ast.rhs;
      List.iter (walk_stmt phase) c.Ast.then_;
      List.iter (walk_stmt phase) c.Ast.else_
  in
  List.iteri (fun phase nest -> walk_stmt phase nest) p.Ast.nests;
  let site_list = Array.of_list (List.rev !acc) in
  Array.iteri (fun i s -> assert (s.id = i)) site_list;
  { site_list; by_array }

let pp ?src ppf t =
  Format.fprintf ppf "@[<v>";
  Array.iter
    (fun s ->
      Format.fprintf ppf "s%d %s %s phase %d %a@," s.id
        (if s.write then "W" else "R")
        s.array s.phase (Span.pp ?src) s.span)
    t.site_list;
  Format.fprintf ppf "@]"

let to_json ?src t =
  Obs.Json.array
    (fun s ->
      Obs.Json.obj
        [
          ("id", Obs.Json.Int s.id);
          ("array", Obs.Json.String s.array);
          ("write", Obs.Json.Bool s.write);
          ("phase", Obs.Json.Int s.phase);
          ("loc", Obs.Json.String (Span.to_string ?src s.span));
        ])
    t.site_list
