(* Binary min-heap on parallel arrays: the (time, seq) keys live in two
   unboxed int arrays with the payloads alongside, so pushing an event
   allocates nothing once the arrays have grown to the run's peak
   population (the previous representation boxed a 3-field entry record
   per push).  Sifting moves a hole instead of swapping, halving the
   array writes on the hot path.

   Popped payload slots keep their last reference until overwritten by a
   later push; the engine's payloads are preallocated pooled values, so
   nothing is retained beyond the pool itself. *)

type 'a t = {
  mutable times : int array;
  mutable seqs : int array;
  mutable payloads : 'a array;
  mutable len : int;
  mutable next_seq : int;
}

let create () =
  { times = [||]; seqs = [||]; payloads = [||]; len = 0; next_seq = 0 }

let grow h payload =
  let cap = max 64 (2 * h.len) in
  let times = Array.make cap 0 in
  let seqs = Array.make cap 0 in
  let payloads = Array.make cap payload in
  Array.blit h.times 0 times 0 h.len;
  Array.blit h.seqs 0 seqs 0 h.len;
  Array.blit h.payloads 0 payloads 0 h.len;
  h.times <- times;
  h.seqs <- seqs;
  h.payloads <- payloads

let push h ~time payload =
  let seq = h.next_seq in
  h.next_seq <- seq + 1;
  if h.len = Array.length h.times then grow h payload;
  (* sift the hole up from the end *)
  let i = ref h.len in
  h.len <- h.len + 1;
  let moving = ref true in
  while !moving && !i > 0 do
    let parent = (!i - 1) / 2 in
    let pt = h.times.(parent) in
    if time < pt || (time = pt && seq < h.seqs.(parent)) then begin
      h.times.(!i) <- pt;
      h.seqs.(!i) <- h.seqs.(parent);
      h.payloads.(!i) <- h.payloads.(parent);
      i := parent
    end
    else moving := false
  done;
  h.times.(!i) <- time;
  h.seqs.(!i) <- seq;
  h.payloads.(!i) <- payload

let next_time h =
  if h.len = 0 then invalid_arg "Event_heap.next_time: empty";
  h.times.(0)

(* Remove the root, re-sitting the last element down from the hole. *)
let remove_root h =
  let n = h.len - 1 in
  h.len <- n;
  if n > 0 then begin
    let lt = h.times.(n) and ls = h.seqs.(n) in
    let lp = h.payloads.(n) in
    let i = ref 0 in
    let moving = ref true in
    while !moving do
      let l = (2 * !i) + 1 in
      if l >= n then moving := false
      else begin
        let r = l + 1 in
        let c =
          if
            r < n
            && (h.times.(r) < h.times.(l)
               || (h.times.(r) = h.times.(l) && h.seqs.(r) < h.seqs.(l)))
          then r
          else l
        in
        let ct = h.times.(c) in
        if ct < lt || (ct = lt && h.seqs.(c) < ls) then begin
          h.times.(!i) <- ct;
          h.seqs.(!i) <- h.seqs.(c);
          h.payloads.(!i) <- h.payloads.(c);
          i := c
        end
        else moving := false
      end
    done;
    h.times.(!i) <- lt;
    h.seqs.(!i) <- ls;
    h.payloads.(!i) <- lp
  end

let pop_payload h =
  if h.len = 0 then invalid_arg "Event_heap.pop_payload: empty";
  let p = h.payloads.(0) in
  remove_root h;
  p

let pop h =
  if h.len = 0 then None
  else begin
    let t = h.times.(0) in
    let p = h.payloads.(0) in
    remove_root h;
    Some (t, p)
  end

let is_empty h = h.len = 0

let size h = h.len
