lib/workloads/mgrid.ml: App
