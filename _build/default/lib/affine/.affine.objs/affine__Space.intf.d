lib/affine/space.mli: Format Vec
