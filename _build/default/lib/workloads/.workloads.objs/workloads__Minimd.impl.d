lib/workloads/minimd.ml: App Array
