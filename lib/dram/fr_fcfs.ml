type completion = {
  id : int;
  start : int;
  finish : int;
  queue_delay : int;
  row_hit : bool;
}

type request = { rid : int; arrival : int; bank : int; row : int; write : bool }

type scheduler = Fr_fcfs | Fcfs

type row_policy = Open_page | Closed_page

type t = {
  timing : Timing.t;
  banks : int;
  channels : int;
  scheduler : scheduler;
  row_policy : row_policy;
  depth_hook : (now:int -> depth:int -> unit) option;
  open_row : int array;  (** -1 = no open row *)
  bank_free : int array;
  bus_free : int array;  (** per channel; a bank belongs to bank mod channels *)
  queues : request list array;  (** per bank, oldest first *)
  mutable num_pending : int;
  mutable num_writes : int;  (** pending writes, across banks *)
  mutable num_served : int;
  mutable num_row_hits : int;
  mutable max_pending : int;
  (* time-integral of queue length, for the occupancy statistic *)
  mutable occ_integral : float;
  mutable occ_last_t : int;
  mutable occ_count : int;
}

let create ?(timing = Timing.ddr3_1600) ?(channels = 1) ?(scheduler = Fr_fcfs)
    ?(row_policy = Open_page) ?depth_hook ~banks () =
  if banks <= 0 || channels <= 0 then invalid_arg "Fr_fcfs.create";
  {
    timing;
    banks;
    channels;
    scheduler;
    row_policy;
    depth_hook;
    open_row = Array.make banks (-1);
    bank_free = Array.make banks 0;
    bus_free = Array.make channels 0;
    queues = Array.make banks [];
    num_pending = 0;
    num_writes = 0;
    num_served = 0;
    num_row_hits = 0;
    max_pending = 0;
    occ_integral = 0.;
    occ_last_t = 0;
    occ_count = 0;
  }

let note_depth t now =
  if t.num_pending > t.max_pending then t.max_pending <- t.num_pending;
  match t.depth_hook with
  | None -> ()
  | Some f -> f ~now ~depth:t.num_pending

let occ_touch t now =
  if now > t.occ_last_t then begin
    t.occ_integral <-
      t.occ_integral +. (float_of_int t.occ_count *. float_of_int (now - t.occ_last_t));
    t.occ_last_t <- now
  end

let write_drain_watermark = 16

let enqueue t ~now ~bank ~row ?(write = false) ~id () =
  if bank < 0 || bank >= t.banks then invalid_arg "Fr_fcfs.enqueue";
  occ_touch t now;
  t.occ_count <- t.occ_count + 1;
  t.num_pending <- t.num_pending + 1;
  if write then t.num_writes <- t.num_writes + 1;
  t.queues.(bank) <- t.queues.(bank) @ [ { rid = id; arrival = now; bank; row; write } ];
  note_depth t now

let service_time t bank row =
  if t.open_row.(bank) = row then (t.timing.Timing.row_hit, true)
  else if t.open_row.(bank) = -1 then (t.timing.Timing.row_empty, false)
  else (t.timing.Timing.row_conflict, false)

(* FR-FCFS choice for one bank: among reads, the oldest row hit, else the
   oldest read.  Writes are drained only when the bank has no pending read
   or the write queue exceeds the drain watermark (read priority with
   opportunistic write drain, as in real controllers). *)
let pick_for_bank t bank =
  let mine = t.queues.(bank) in
  match mine with
  | [] -> None
  | _ ->
    let reads = List.filter (fun r -> not r.write) mine in
    let writes = List.filter (fun r -> r.write) mine in
    let pool =
      match (reads, writes) with
      | [], ws -> ws
      | rs, [] -> rs
      | rs, _ when t.num_writes < write_drain_watermark -> rs
      | rs, ws ->
        (* drain mode: writes are as old as anything; serve oldest pool *)
        if (List.hd ws).arrival < (List.hd rs).arrival then ws else rs
    in
    (match pool with
    | [] -> None
    | oldest :: _ -> (
      match t.scheduler with
      | Fcfs -> Some oldest
      | Fr_fcfs -> (
        match List.find_opt (fun r -> r.row = t.open_row.(bank)) pool with
        | Some r -> Some r
        | None -> Some oldest)))

(* Earliest feasible start of the FR-FCFS candidate for [bank], accounting
   for the bank being busy and the data bus serializing the final burst. *)
let earliest_start t bank =
  match pick_for_bank t bank with
  | None -> None
  | Some r ->
    let service, _hit = service_time t bank r.row in
    let s = max r.arrival t.bank_free.(bank) in
    (* the burst occupies the channel bus during the last [burst] cycles *)
    let ch = bank mod t.channels in
    let s = max s (t.bus_free.(ch) - (service - t.timing.Timing.burst)) in
    Some (r, s, service)

let issue t r s service hit =
  t.queues.(r.bank) <- List.filter (fun q -> q != r) t.queues.(r.bank);
  t.num_pending <- t.num_pending - 1;
  if r.write then t.num_writes <- t.num_writes - 1;
  let finish = s + service in
  t.open_row.(r.bank) <-
    (match t.row_policy with Open_page -> r.row | Closed_page -> -1);
  t.bank_free.(r.bank) <- finish;
  t.bus_free.(r.bank mod t.channels) <- finish;
  t.num_served <- t.num_served + 1;
  if hit then t.num_row_hits <- t.num_row_hits + 1;
  occ_touch t s;
  t.occ_count <- t.occ_count - 1;
  note_depth t s;
  { id = r.rid; start = s; finish; queue_delay = s - r.arrival; row_hit = hit }

let advance t ~now =
  let rec loop acc =
    (* find the bank whose candidate can start earliest; empty banks are
       skipped in O(1) via the per-bank queues *)
    let best = ref None in
    for b = 0 to t.banks - 1 do
      if t.queues.(b) <> [] then
        match earliest_start t b with
        | None -> ()
        | Some (r, s, service) -> (
          match !best with
          | Some (_, s', _, _) when s' <= s -> ()
          | _ -> best := Some (r, s, service, b))
    done;
    match !best with
    | Some (r, s, service, bank) when s <= now ->
      let _, hit = service_time t bank r.row in
      loop (issue t r s service hit :: acc)
    | _ -> List.rev acc
  in
  loop []

let next_wake t =
  let best = ref None in
  for b = 0 to t.banks - 1 do
    if t.queues.(b) <> [] then
      match earliest_start t b with
      | None -> ()
      | Some (_, s, _) -> (
        match !best with
        | Some s' when s' <= s -> ()
        | _ -> best := Some s)
  done;
  !best

let pending t = t.num_pending

let max_pending t = t.max_pending

let served t = t.num_served

let row_hits t = t.num_row_hits

let occupancy t ~at =
  occ_touch t at;
  if at <= 0 then 0. else t.occ_integral /. float_of_int at

let occ_integral_at t ~at =
  occ_touch t at;
  t.occ_integral

let reset t =
  Array.fill t.open_row 0 t.banks (-1);
  Array.fill t.bank_free 0 t.banks 0;
  Array.fill t.bus_free 0 t.channels 0;
  Array.fill t.queues 0 t.banks [];
  t.num_pending <- 0;
  t.num_writes <- 0;
  t.num_served <- 0;
  t.num_row_hits <- 0;
  t.max_pending <- 0;
  t.occ_integral <- 0.;
  t.occ_last_t <- 0;
  t.occ_count <- 0
