module Vec = Affine.Vec
module Matrix = Affine.Matrix
module Access = Affine.Access
module Analysis = Lang.Analysis
module Ast = Lang.Ast

type result = {
  program : Ast.program;
  permuted_nests : int;
  already_aligned : int;
  blocked : int;
}

(* A perfect nest: a chain of loops each containing exactly one inner
   loop, with assignments only at the innermost level. *)
let perfect_nest stmt =
  let rec go acc = function
    | Ast.Loop l -> (
      match l.Ast.body with
      | [ (Ast.Loop _ as inner) ] -> go (l :: acc) inner
      | body when List.for_all (function Ast.Assign _ -> true | _ -> false) body
        ->
        Some (List.rev (l :: acc), body)
      | _ -> None)
    | Ast.Assign _ | Ast.If _ -> None
  in
  go [] stmt

(* Normalize a distance to be lexicographically non-negative. *)
let lex_normalize d =
  let rec sign i =
    if i >= Vec.dim d then 0
    else if d.(i) > 0 then 1
    else if d.(i) < 0 then -1
    else sign (i + 1)
  in
  if sign 0 < 0 then Vec.neg d else d

let lex_positive d =
  let rec go i =
    if i >= Vec.dim d then false
    else if d.(i) > 0 then true
    else if d.(i) < 0 then false
    else go (i + 1)
  in
  go 0

(* All uniform dependence distances of a nest, plus whether any pair was
   not analyzable (different access matrices, indexed subscripts, or
   references at different depths). *)
let nest_dependences (analysis : Analysis.t) ~nest_id =
  let occs =
    List.concat_map
      (fun (info : Analysis.array_info) ->
        List.filter_map
          (fun (o : Analysis.occurrence) ->
            if o.Analysis.nest_id = nest_id then
              Some (info.Analysis.decl.Ast.name, o)
            else None)
          info.Analysis.occurrences)
      analysis.Analysis.arrays
  in
  let depth =
    List.fold_left (fun a (_, o) -> max a (List.length o.Analysis.iters)) 0 occs
  in
  let distances = ref [] and unknown = ref false in
  let classify (_, (o : Analysis.occurrence)) =
    match o.Analysis.kind with
    | Analysis.Affine_ref a when List.length o.Analysis.iters = depth -> Some a
    | _ ->
      unknown := true;
      None
  in
  List.iter
    (fun ((n1, o1) as p1) ->
      if o1.Analysis.is_write then
        List.iter
          (fun ((n2, _) as p2) ->
            if String.equal n1 n2 then
              match (classify p1, classify p2) with
              | Some a1, Some a2 ->
                if Matrix.equal a1.Access.matrix a2.Access.matrix then begin
                  let b = Vec.sub a1.Access.offset a2.Access.offset in
                  match Affine.Gauss.solve a1.Access.matrix b with
                  | Some d when not (Vec.is_zero d) ->
                    distances := lex_normalize d :: !distances
                  | Some _ -> () (* same element: loop-independent *)
                  | None -> () (* no integer solution: independent *)
                end
                else unknown := true
              | _ -> ())
          occs)
    occs;
  (!distances, !unknown)

let dependence_distances analysis ~nest_id = fst (nest_dependences analysis ~nest_id)

let permute_vec perm d = Array.map (fun p -> d.(p)) perm

let legal_permutation distances perm =
  List.for_all
    (fun d -> Vec.is_zero d || lex_positive (permute_vec perm d))
    distances

(* Which loop position drives the slowest-varying subscript?  Weighted by
   trip count over the nest's affine references. *)
let dim0_driver (analysis : Analysis.t) ~nest_id ~depth =
  let score = Array.make depth 0 in
  List.iter
    (fun (info : Analysis.array_info) ->
      List.iter
        (fun (o : Analysis.occurrence) ->
          if o.Analysis.nest_id = nest_id then
            match o.Analysis.kind with
            | Analysis.Affine_ref a when Access.depth a = depth ->
              let row0 = Matrix.row a.Access.matrix 0 in
              Array.iteri
                (fun q c -> if c <> 0 then score.(q) <- score.(q) + o.Analysis.trip_count)
                row0
            | _ -> ())
        info.Analysis.occurrences)
    analysis.Analysis.arrays;
  let best = ref 0 in
  Array.iteri (fun q s -> if s > score.(!best) then best := q) score;
  if score.(!best) = 0 then None else Some !best

(* Rebuild a perfect nest with loops in [perm] order; only the new
   outermost loop is parallel. *)
let rebuild loops body perm =
  let arr = Array.of_list loops in
  let ordered = Array.to_list (Array.map (fun p -> arr.(p)) perm) in
  let rec build = function
    | [] -> body
    | (l : Ast.loop) :: rest ->
      [ Ast.Loop { l with Ast.parallel = false; body = build rest } ]
  in
  match build ordered with
  | [ Ast.Loop outer ] -> Ast.Loop { outer with Ast.parallel = true }
  | _ -> assert false

let run (analysis : Analysis.t) =
  let permuted = ref 0 and aligned = ref 0 and blocked = ref 0 in
  let transform_nest nest_id stmt =
    match perfect_nest stmt with
    | None ->
      incr blocked;
      stmt
    | Some (loops, body) -> (
      let depth = List.length loops in
      let distances, unknown = nest_dependences analysis ~nest_id in
      match dim0_driver analysis ~nest_id ~depth with
      | None ->
        incr blocked;
        stmt
      | Some target -> (
        let outer_parallel =
          match loops with l :: _ -> l.Ast.parallel | [] -> false
        in
        if target = 0 && outer_parallel then begin
          incr aligned;
          stmt
        end
        else begin
          (* move [target] to the front, keep the rest in order *)
          let perm =
            Array.of_list
              (target :: List.filter (fun q -> q <> target) (List.init depth Fun.id))
          in
          (* legality: dependences survive the permutation AND the new
             outer loop carries none (so it may run parallel) *)
          let outer_free =
            List.for_all (fun d -> d.(target) = 0) distances
          in
          if (not unknown) && outer_free && legal_permutation distances perm
          then begin
            incr permuted;
            rebuild loops body perm
          end
          else begin
            incr blocked;
            stmt
          end
        end))
  in
  let nests = List.mapi transform_nest analysis.Analysis.program.Ast.nests in
  {
    program = { analysis.Analysis.program with Ast.nests };
    permuted_nests = !permuted;
    already_aligned = !aligned;
    blocked = !blocked;
  }
