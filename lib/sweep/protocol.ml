type request = Run of int | Quit

type reply = { job : int; ok : bool; payload : string }

let write_all fd s =
  let n = String.length s in
  let rec go off =
    if off < n then
      let w = Unix.write_substring fd s off (n - off) in
      go (off + w)
  in
  go 0

let write_request fd = function
  | Run i -> write_all fd (Printf.sprintf "RUN %d\n" i)
  | Quit -> write_all fd "QUIT\n"

let read_request ic =
  match input_line ic with
  | "QUIT" -> Some Quit
  | line -> (
    match String.split_on_char ' ' line with
    | [ "RUN"; i ] -> Option.map (fun i -> Run i) (int_of_string_opt i)
    | _ -> None)
  | exception End_of_file -> None

let write_reply fd { job; ok; payload } =
  write_all fd
    (Printf.sprintf "REP %d %d %d\n" job (Bool.to_int ok) (String.length payload));
  write_all fd payload

type reader = { fd : Unix.file_descr; buf : Buffer.t }

let reader fd = { fd; buf = Buffer.create 4096 }

let reader_fd r = r.fd

let feed r =
  let chunk = Bytes.create 65536 in
  match Unix.read r.fd chunk 0 (Bytes.length chunk) with
  | 0 -> `Eof
  | n ->
    Buffer.add_subbytes r.buf chunk 0 n;
    `Data
  | exception Unix.Unix_error ((Unix.EINTR | Unix.EAGAIN), _, _) -> `Data

let next_reply r =
  let s = Buffer.contents r.buf in
  match String.index_opt s '\n' with
  | None -> None
  | Some nl -> (
    let header = String.sub s 0 nl in
    match String.split_on_char ' ' header with
    | [ "REP"; job; ok; len ] -> (
      match (int_of_string_opt job, int_of_string_opt ok, int_of_string_opt len)
      with
      | Some job, Some ok, Some len when len >= 0 ->
        if String.length s - nl - 1 < len then None
        else begin
          let payload = String.sub s (nl + 1) len in
          Buffer.clear r.buf;
          Buffer.add_substring r.buf s (nl + 1 + len)
            (String.length s - nl - 1 - len);
          Some (Ok { job; ok = ok <> 0; payload })
        end
      | _ -> Some (Error ("corrupt reply header: " ^ header)))
    | _ -> Some (Error ("corrupt reply header: " ^ header)))
