lib/workloads/minighost.ml: App
