test/test_workloads.ml: Alcotest Array Core Lang List Printf Sim Workloads
