module Vec = Affine.Vec
module Matrix = Affine.Matrix

type l2_kind = Private_l2 | Shared_l2

type config = {
  cluster : Cluster.t;
  topo : Noc.Topology.t;
  placement : Noc.Placement.t;
  l2 : l2_kind;
  p_elems : int;
  elem_bytes : int;
}

let ceil_div a b = (a + b - 1) / b

(* Interval arithmetic over the rows of U: extents and normalizing shift of
   the transformed (bounding-box) data space. *)
let transformed_extents ~u ~extents =
  let n = Array.length extents in
  let lo = Array.make n 0 and hi = Array.make n 0 in
  for i = 0 to n - 1 do
    let row = Matrix.row u i in
    for j = 0 to n - 1 do
      let c = row.(j) in
      let a = 0 and b = extents.(j) - 1 in
      lo.(i) <- lo.(i) + min (c * a) (c * b);
      hi.(i) <- hi.(i) + max (c * a) (c * b)
    done
  done;
  (Array.init n (fun i -> hi.(i) - lo.(i) + 1), Vec.neg lo)

open Layout

(* R(r_v) decomposition pieces for the private-L2 case.  [block] is the
   data-block (thread) index Div(D v, b). *)
let private_pieces (c : Cluster.t) block =
  let cx_dim =
    { expr = Mod (Div (block, c.ny * c.cy * c.nx), c.cx); extent = c.cx }
  and x_in = { expr = Mod (Div (block, c.ny * c.cy), c.nx); extent = c.nx }
  and cy_dim = { expr = Mod (Div (block, c.ny), c.cy); extent = c.cy }
  and y_in = { expr = Mod (block, c.ny); extent = c.ny } in
  (cx_dim, x_in, cy_dim, y_in)

let allowed_mcs cfg ~home_thread =
  let c = cfg.cluster in
  let num_mcs = Cluster.num_mcs c in
  let node = Cluster.node_of_thread c cfg.topo home_thread in
  let cluster = Cluster.cluster_of_node c cfg.topo node in
  let desired = Cluster.mcs_of_cluster c cluster in
  (* adjacency: strictly closer than the largest pairwise MC distance
     (for corner placements: same-edge controllers, not the diagonal) *)
  let dist m m' =
    Noc.Topology.distance cfg.topo
      (Noc.Placement.mc_node cfg.placement m)
      (Noc.Placement.mc_node cfg.placement m')
  in
  let max_pair = ref 0 in
  for a = 0 to num_mcs - 1 do
    for b = 0 to num_mcs - 1 do
      max_pair := max !max_pair (dist a b)
    done
  done;
  let allowed = Array.make num_mcs false in
  List.iter
    (fun d ->
      allowed.(d) <- true;
      for m = 0 to num_mcs - 1 do
        if dist m d < !max_pair then allowed.(m) <- true
      done)
    desired;
  allowed

let customize cfg ~array ~extents ~u ~v =
  let c = cfg.cluster in
  let cores = Cluster.num_cores c in
  let num_mcs = Cluster.num_mcs c in
  assert (num_mcs = Noc.Placement.count cfg.placement);
  let extents', a_shift = transformed_extents ~u ~extents in
  let n = Array.length extents' in
  let p = cfg.p_elems in
  let kp = c.k * p in
  (* data-block size along the partition dimension, padded so every core
     gets a full block and (for 1-D arrays) blocks divide into chunks *)
  let b0 = ceil_div extents'.(v) cores in
  match cfg.l2 with
  | Private_l2 ->
    let out =
      if n = 1 then begin
        (* v is also the fastest dimension: interleave inside the block.
           The block size must be exactly ceil(extent/cores) so that the
           data-block index coincides with the owning thread; the within-
           block offset is strip-mined into k·p-sized slots, padding the
           last partial slot (intra-array padding). *)
        let b = b0 in
        let block = Div (D v, b) in
        let cx_dim, x_in, cy_dim, y_in = private_pieces c block in
        [|
          x_in;
          y_in;
          { expr = Div (Mod (D v, b), kp); extent = ceil_div b kp };
          cx_dim;
          cy_dim;
          { expr = Mod (Mod (D v, b), kp); extent = kp };
        |]
      end
      else begin
        let b = b0 in
        let last = n - 1 in
        assert (v <> last);
        let block = Div (D v, b) in
        let cx_dim, x_in, cy_dim, y_in = private_pieces c block in
        let chunks = ceil_div extents'.(last) kp in
        Array.of_list
          (List.concat
             [
               (* dimensions other than v and the fastest one, in order *)
               List.filter_map
                 (fun d ->
                   if d = v || d = last then None
                   else Some { expr = D d; extent = extents'.(d) })
                 (List.init n Fun.id);
               [ x_in; y_in; { expr = Mod (D v, b); extent = b } ];
               [
                 { expr = Div (D last, kp); extent = chunks };
                 cx_dim;
                 cy_dim;
                 { expr = Mod (D last, kp); extent = kp };
               ];
             ])
      end
    in
    Layout.simplify
      (Layout.make ~array ~u ~a_shift ~out ~orig_extents:extents
         ~elem_bytes:cfg.elem_bytes ~p_elems:p ())
  | Shared_l2 ->
    (* Home permutation: owner thread o's blocks are homed at a bank near
       o's own node whose controller (home mod num_mcs at the address
       level) is acceptable for o's cluster.  This realizes the intent of
       the paper's delta-skip with bounded displacement: on-chip locality
       costs at most a couple of hops exactly where perfect co-location
       is impossible (Eqs. 4-5). *)
    let home_table =
      let allowed = Array.init cores (fun o -> allowed_mcs cfg ~home_thread:o) in
      let mc_ok o h = cores mod num_mcs <> 0 || allowed.(o).(h mod num_mcs) in
      let taken = Array.make cores false in
      let table = Array.make cores (-1) in
      (* first pass: owners whose own node has an acceptable controller
         are homed exactly there (the common case) *)
      for o = 0 to cores - 1 do
        let preferred = Cluster.node_of_thread c cfg.topo o in
        if mc_ok o preferred then begin
          table.(o) <- preferred;
          taken.(preferred) <- true
        end
      done;
      (* second pass: the rest take the nearest free node with an
         acceptable controller (or the nearest free node at all) *)
      for o = 0 to cores - 1 do
        if table.(o) < 0 then begin
          let preferred = Cluster.node_of_thread c cfg.topo o in
          let best = ref (-1) and best_score = ref max_int in
          for h = 0 to cores - 1 do
            if not taken.(h) then begin
              let dist = Noc.Topology.distance cfg.topo preferred h in
              let score = dist + if mc_ok o h then 0 else 1000 in
              if score < !best_score then begin
                best_score := score;
                best := h
              end
            end
          done;
          taken.(!best) <- true;
          table.(o) <- !best
        end
      done;
      table
    in
    let home block = { expr = Perm (Mod (block, cores), home_table); extent = cores } in
    let out =
      if n = 1 then begin
        let b = ceil_div b0 p * p in
        let block = Div (D v, b) in
        [|
          { expr = Div (block, cores); extent = ceil_div (ceil_div extents'.(v) b) cores };
          { expr = Div (Mod (D v, b), p); extent = b / p };
          home block;
          { expr = Mod (D v, p); extent = p };
        |]
      end
      else begin
        let b = b0 in
        let last = n - 1 in
        assert (v <> last);
        let block = Div (D v, b) in
        let chunks = ceil_div extents'.(last) p in
        Array.of_list
          (List.concat
             [
               List.filter_map
                 (fun d ->
                   if d = v || d = last then None
                   else Some { expr = D d; extent = extents'.(d) })
                 (List.init n Fun.id);
               [
                 { expr = Div (block, cores); extent = ceil_div (ceil_div extents'.(v) b) cores };
                 { expr = Mod (D v, b); extent = b };
                 { expr = Div (D last, p); extent = chunks };
                 home block;
                 { expr = Mod (D last, p); extent = p };
               ];
             ])
      end
    in
    Layout.simplify
      (Layout.make ~array ~u ~a_shift ~out ~orig_extents:extents
         ~elem_bytes:cfg.elem_bytes ~p_elems:p ())
