(* Stencil localization: where do off-chip requests go?

   Runs the swim shallow-water stencil with and without the pass and
   prints, for each of the four controllers, how many requests arrive
   from each cluster — the Fig. 6/13 story as a table: after the
   transformation, controller j serves (almost) only cluster j.

     dune exec examples/stencil_localization.exe *)

let () =
  let cfg = Sim.Config.scaled () in
  let app = Workloads.Suite.by_name "swim" in
  let program = Workloads.App.program app in
  let cluster = Sim.Config.cluster cfg in
  let topo = Sim.Config.topo cfg in
  let show label r =
    let s = (r : Sim.Engine.result).Sim.Engine.stats in
    (* requests per (cluster, controller) *)
    let m = Array.make_matrix 4 4 0 in
    Array.iteri
      (fun node row ->
        let cl = Core.Cluster.cluster_of_node cluster topo node in
        Array.iteri (fun mc c -> m.(cl).(mc) <- m.(cl).(mc) + c) row)
      ((Sim.Stats.node_mc_requests) s);
    Printf.printf "%s: requests from cluster -> controller\n" label;
    Printf.printf "            MC0     MC1     MC2     MC3\n";
    Array.iteri
      (fun cl row ->
        Printf.printf "  cluster%d" cl;
        Array.iter (fun c -> Printf.printf " %7d" c) row;
        print_newline ())
      m;
    let total = Array.fold_left (fun a r -> a + Array.fold_left ( + ) 0 r) 0 m in
    let local = m.(0).(0) + m.(1).(1) + m.(2).(2) + m.(3).(3) in
    Printf.printf "  local fraction: %.1f%%\n\n"
      (100. *. float_of_int local /. float_of_int (max 1 total))
  in
  show "ORIGINAL"
    (Sim.Runner.run cfg ~optimized:false ~warmup_phases:1 program);
  show "OPTIMIZED"
    (Sim.Runner.run cfg ~optimized:true ~warmup_phases:1 program)
