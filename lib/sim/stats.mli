(** Statistics collected by a simulation run — a typed view over an
    {!Obs.Metrics} registry, one metric per quantity the paper reports.

    "Network latency" is time spent traversing (and queueing for) mesh
    links; an access's legs are attributed to the on-chip or off-chip
    category depending on whether the access was ultimately served
    on-chip (cache-to-cache or home-bank hit) or by a memory controller.
    "Memory latency" is queue + service time at the controller.

    The recording functions are O(1) (a field mutation or an array store);
    the engine calls them on its hot path.  Snapshots, merging and the
    JSON export all go through the underlying registry, so any metric an
    instrumentation site registers there is exported for free. *)

type t

val max_hops : int
(** Hop-histogram upper bound; longer routes clamp into the last bucket. *)

val create : nodes:int -> mcs:int -> t

val registry : t -> Obs.Metrics.registry
(** The backing registry — instrumentation sites may register additional
    gauges/histograms here; they ride along in snapshots and JSON. *)

(** {2 Recording (engine-facing, O(1))} *)

val record_access : t -> unit

val record_l1_hit : t -> unit

val record_l2_hit : t -> unit

val record_offchip : t -> origin:int -> mc:int -> unit
(** One off-chip access, charged to the (origin node, controller) cell of
    the Fig. 13 map. *)

val record_leg : t -> offchip:bool -> hops:int -> cycles:int -> unit
(** One network leg: hop histogram (clamped into the last bucket beyond
    {!max_hops}), latency sum and message count of its category. *)

val record_memory : t -> latency:int -> queue:int -> row_hit:bool -> unit
(** Controller latency of one read: total (queue + service), queue part,
    and whether it hit the open row.  Also feeds the log-scaled
    [mem.latency] / [mem.queue_delay] histograms. *)

val record_writeback : t -> unit

val note_finish : t -> int -> unit
(** Raises the finish time to at least the given cycle. *)

val set_page_fallbacks : t -> int -> unit

(** {2 Readers} *)

val total_accesses : t -> int

val l1_hits : t -> int

val l2_hits : t -> int
(** served by some L2 (local, home or peer) *)

val offchip_accesses : t -> int

val onchip_net_cycles : t -> int

val onchip_messages : t -> int

val offchip_net_cycles : t -> int

val offchip_messages : t -> int

val memory_cycles : t -> int
(** queue + service, reads only *)

val memory_queue_cycles : t -> int

val row_hits : t -> int

val writebacks : t -> int

val page_fallbacks : t -> int

val finish_time : t -> int

val onchip_hops : t -> int array
(** Hop histogram for the Fig. 15 CDFs (index = links traversed). *)

val offchip_hops : t -> int array

val node_mc_requests : t -> int array array
(** Off-chip requests per (requester node, controller) — Fig. 13. *)

(** {2 Derived metrics} *)

val avg_onchip_net : t -> float

val avg_offchip_net : t -> float

val avg_memory : t -> float

val offchip_fraction : t -> float
(** Off-chip accesses over total data accesses (Fig. 3). *)

val hop_cdf : int array -> float array
(** [hop_cdf h].(x) = fraction of messages traversing ≤ x links.  The
    result is monotone nondecreasing and ends at 1 (asserted). *)

(** {2 Aggregation and export} *)

val merge : t -> t -> t
(** Element-wise combination for multiprogrammed aggregation: counters and
    histograms add, finish time is the max.  The operands must come from
    platforms of the same shape (nodes × controllers). *)

val snapshot : t -> Obs.Metrics.snapshot

val to_json : t -> Obs.Json.t
(** Full machine-readable dump: every registry metric, the hop histograms
    and CDFs, the node × controller request map, and the derived
    averages. *)

val pp_summary : Format.formatter -> t -> unit
