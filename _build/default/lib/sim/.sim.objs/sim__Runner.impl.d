lib/sim/runner.ml: Array Config Core Engine Hashtbl Lang List Noc Option
