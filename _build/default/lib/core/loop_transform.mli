(** Loop restructuring — the alternative the paper argues against.

    Section 1: "conceptually, loop restructuring could also be used to
    achieve our goals [but] loop transformations are constrained by data
    and control dependences.  In contrast, data transformations are
    essentially a kind of renaming and not affected by dependences."

    This module makes that comparison concrete.  It implements classical
    loop interchange with a uniform-dependence legality test: for each
    perfect nest it tries to move the parallel loop to the position whose
    iterator indexes the arrays' slowest-varying dimension, so that each
    core's iterations touch contiguous rows and page placement (e.g.
    first-touch) localizes them — the best a loop transformation can do,
    since it cannot change the Data-to-MC mapping at all.  Interchange is
    abandoned whenever a dependence distance vector would turn
    lexicographically negative, which is exactly the constraint the data
    transformation does not have. *)

type result = {
  program : Lang.Ast.program;  (** restructured program *)
  permuted_nests : int;  (** nests whose loops were interchanged *)
  already_aligned : int;  (** nests that needed no change *)
  blocked : int;
      (** nests where interchange was illegal (dependence) or the nest
          shape was not a perfect affine nest *)
}

val dependence_distances : Lang.Analysis.t -> nest_id:int -> Affine.Vec.t list
(** Uniform dependence distance vectors of a nest: for every
    (write, read-or-write) pair of affine references to the same array
    with equal access matrices, the integer solution [d] of
    [A·d = o₁ − o₂], normalized to be lexicographically non-negative.
    Pairs with unequal access matrices are approximated conservatively by
    a sentinel "unknown" distance (all-zero is excluded; see {!run}). *)

val legal_permutation : Affine.Vec.t list -> int array -> bool
(** [legal_permutation distances perm] — is the loop permutation (perm is
    a permutation of positions: new order [i] holds old loop [perm.(i)])
    legal, i.e. every nonzero distance vector stays lexicographically
    positive after permutation? *)

val run : Lang.Analysis.t -> result
(** Applies the best legal interchange to every top-level nest. *)
