examples/page_placement.mli:
