(** Memory-controller placements.

    A placement assigns each MC an attachment node in the mesh.  The paper
    evaluates the default corner placement (Fig. 8a, "P1") and two
    alternatives enabled by flip-chip packaging (Fig. 26, "P2"/"P3"), plus
    8- and 16-controller variants (Fig. 27).

    Fallible constructors are Result-first: a site set that does not fit
    the mesh is a value error, never an exception. *)

type t = { name : string; nodes : int array }
(** [nodes.(m)] is the mesh node MC [m] attaches to.  MC indices are
    meaningful: the physical-address interleaving maps line/page [i] to MC
    [i mod count], and the layout customization relies on cluster [j]
    being served by MCs [j·k .. j·k+k-1] (see {!Core.Cluster}). *)

val count : t -> int

val of_coords_result : Topology.t -> string -> Coord.t array -> (t, string) result
(** Places MC [m] at [coords.(m)]; an off-mesh site is a value error. *)

val corners : Topology.t -> t
(** P1: one MC at each corner, in the order NW, NE, SW, SE — matching the
    cluster enumeration of Fig. 8a (MC1 top-left … MC4 bottom-right). *)

val edge_centers : Topology.t -> t
(** P2: MCs at the midpoints of the four edges (top, left, right, bottom).
    Lower average distance-to-controller than the corners. *)

val top_bottom : Topology.t -> t
(** P3: MCs spread along the top and bottom edges. *)

val ring_result : Topology.t -> count:int -> (t, string) result
(** [ring_result t ~count] spreads [count] MCs evenly around the mesh
    perimeter, starting at the NW corner and proceeding clockwise; used for
    the 8- and 16-MC configurations of Fig. 27.  More MCs than perimeter
    nodes is a value error. *)

val assign_result :
  Topology.t ->
  name:string ->
  sites:Coord.t array ->
  centroids:Coord.t array ->
  (t, string) result
(** [assign_result t ~name ~sites ~centroids] places MC [j] at the unused
    site closest to [centroids.(j)] (greedy in MC-index order, then 2-opt
    refined).  This aligns MC indices with cluster indices for any site
    set — corners, edge centers, rings — which the interleaved layout
    requires.  Fewer sites than centroids is a value error. *)

val for_centroids_result :
  Topology.t -> name:string -> centroids:Coord.t array -> (t, string) result
(** [for_centroids_result t ~name ~centroids] places one MC per centroid at
    the free perimeter node closest to it (greedy, in MC-index order).  Used
    to attach MC [j] near cluster [j] for arbitrary cluster grids,
    preserving the index correspondence the interleaved layout relies on. *)

val nearest : t -> Topology.t -> int -> int
(** [nearest p topo node] is the MC whose attachment node is closest to
    [node] (ties broken towards the lower MC index) — what the paper's
    "optimal scheme" assumes every request enjoys. *)

val mc_node : t -> int -> int

val avg_distance : t -> Topology.t -> float
(** Mean over all nodes of the distance to the nearest MC: the static
    figure of merit that favours P2 over P1/P3. *)
