(* Pre-OCaml-5 backend: sequential map, no concurrency (see
   par_backend.mli; this file becomes par_backend.ml via a dune copy
   rule).  Keeps the partitioned run/merge path of Par_engine — and its
   parallel==sequential oracle tests — compiling and running on 4.14. *)

let available = false

let cpu_count () = 1

let map_workers ~workers:_ f xs = Array.map f xs
