(* Tests for the cache substrate: set-associative LRU caches and the L2
   tag directory. *)

module Sacache = Cache_sim.Sacache
module Directory = Cache_sim.Directory

let mk ?(hash = false) ?(size = 1024) ?(line = 64) ?(ways = 2) () =
  Sacache.create ~hash_sets:hash ~size_bytes:size ~line_bytes:line ~ways ()

let is_hit = function Sacache.Hit -> true | Sacache.Miss _ -> false

let test_geometry () =
  let c = mk () in
  Alcotest.(check int) "sets" 8 (Sacache.sets c);
  Alcotest.(check int) "line bytes" 64 (Sacache.line_bytes c);
  Alcotest.(check int) "line addr" 128 (Sacache.line_addr c 130);
  Alcotest.check_raises "bad line size" (Invalid_argument "Sacache.create")
    (fun () -> ignore (Sacache.create ~size_bytes:1024 ~line_bytes:48 ~ways:2 ()))

let test_hit_after_fill () =
  let c = mk () in
  Alcotest.(check bool) "cold miss" false (is_hit (Sacache.access c ~addr:0 ~write:false));
  Alcotest.(check bool) "then hit" true (is_hit (Sacache.access c ~addr:0 ~write:false));
  Alcotest.(check bool) "same line hit" true (is_hit (Sacache.access c ~addr:63 ~write:false));
  Alcotest.(check bool) "next line miss" false (is_hit (Sacache.access c ~addr:64 ~write:false))

let test_lru_eviction () =
  let c = mk () in
  (* 2-way set 0: lines 0, 512 (8 sets × 64B = 512B stride aliases) *)
  ignore (Sacache.access c ~addr:0 ~write:false);
  ignore (Sacache.access c ~addr:512 ~write:false);
  (* touch 0 so 512 becomes LRU *)
  ignore (Sacache.access c ~addr:0 ~write:false);
  (* a third line in set 0 must evict 512 *)
  (match Sacache.access c ~addr:1024 ~write:false with
  | Sacache.Miss { evicted = Some e; _ } -> Alcotest.(check int) "evicts LRU" 512 e
  | _ -> Alcotest.fail "expected an eviction");
  Alcotest.(check bool) "0 still resident" true (is_hit (Sacache.access c ~addr:0 ~write:false));
  Alcotest.(check bool) "512 gone" false (is_hit (Sacache.access c ~addr:512 ~write:false))

let test_dirty_writeback () =
  (* direct-mapped: 16 sets, same-set stride 1024 *)
  let c = mk ~ways:1 () in
  ignore (Sacache.access c ~addr:0 ~write:true);
  (match Sacache.access c ~addr:1024 ~write:false with
  | Sacache.Miss { evicted = Some 0; evicted_dirty = true } -> ()
  | _ -> Alcotest.fail "dirty line must be written back");
  (* clean eviction *)
  match Sacache.access c ~addr:2048 ~write:false with
  | Sacache.Miss { evicted = Some 1024; evicted_dirty = false } -> ()
  | _ -> Alcotest.fail "clean line eviction"

let test_probe_invalidate () =
  let c = mk () in
  ignore (Sacache.access c ~addr:320 ~write:true);
  Alcotest.(check bool) "probe finds it" true (Sacache.probe c ~addr:320);
  Alcotest.(check bool) "invalidate reports dirty" true (Sacache.invalidate c ~addr:320);
  Alcotest.(check bool) "gone after invalidate" false (Sacache.probe c ~addr:320);
  Alcotest.(check bool) "invalidate missing is false" false (Sacache.invalidate c ~addr:320)

let test_stats_and_clear () =
  let c = mk () in
  ignore (Sacache.access c ~addr:0 ~write:false);
  ignore (Sacache.access c ~addr:0 ~write:false);
  Alcotest.(check (pair int int)) "1 hit 1 miss" (1, 1) (Sacache.stats c);
  Sacache.clear c;
  Alcotest.(check (pair int int)) "cleared" (0, 0) (Sacache.stats c);
  Alcotest.(check bool) "cold again" false (is_hit (Sacache.access c ~addr:0 ~write:false))

let test_hash_spreads_aliases () =
  (* addresses at stride sets*line alias to one set without hashing; the
     XOR fold must spread them so a working set of #sets lines survives *)
  let plain = mk ~ways:2 () and hashed = mk ~hash:true ~ways:2 () in
  let stride = 8 * 64 in
  let touch c =
    for i = 0 to 7 do
      ignore (Sacache.access c ~addr:(i * stride) ~write:false)
    done;
    (* second pass: count hits *)
    let hits = ref 0 in
    for i = 0 to 7 do
      if is_hit (Sacache.access c ~addr:(i * stride) ~write:false) then incr hits
    done;
    !hits
  in
  Alcotest.(check int) "plain cache thrashes" 0 (touch plain);
  Alcotest.(check bool) "hashed cache retains most" true (touch hashed >= 6)

let prop_lru_working_set =
  (* any working set of <= ways lines per set always hits after warmup *)
  QCheck.Test.make ~name:"working set of `ways` lines per set stays resident"
    ~count:100
    (QCheck.make QCheck.Gen.(int_range 0 1000))
    (fun base ->
      let c = mk () in
      let addrs = [ base * 64; (base * 64) + 4096 ] in
      List.iter (fun a -> ignore (Sacache.access c ~addr:a ~write:false)) addrs;
      List.for_all (fun a -> is_hit (Sacache.access c ~addr:a ~write:false)) addrs)

(* --- directory --- *)

let test_directory_basic () =
  let d = Directory.create ~nodes:64 in
  Alcotest.(check (list int)) "empty" [] (Directory.holders d ~line:0x100);
  Directory.add_holder d ~line:0x100 ~node:5;
  Directory.add_holder d ~line:0x100 ~node:63;
  Alcotest.(check (list int)) "two holders" [ 5; 63 ] (Directory.holders d ~line:0x100);
  Directory.remove_holder d ~line:0x100 ~node:5;
  Alcotest.(check (list int)) "one left" [ 63 ] (Directory.holders d ~line:0x100);
  Directory.remove_holder d ~line:0x100 ~node:63;
  Alcotest.(check (list int)) "empty again" [] (Directory.holders d ~line:0x100)

let test_directory_closest () =
  let d = Directory.create ~nodes:64 in
  Directory.add_holder d ~line:7 ~node:10;
  Directory.add_holder d ~line:7 ~node:40;
  let dist_from x n = abs (n - x) in
  Alcotest.(check (option int)) "closest to 12" (Some 10)
    (Directory.closest_holder d ~line:7 ~distance:(dist_from 12) ());
  Alcotest.(check (option int)) "closest to 39" (Some 40)
    (Directory.closest_holder d ~line:7 ~distance:(dist_from 39) ());
  (* the requester itself is never returned *)
  Alcotest.(check (option int)) "excluding self" (Some 40)
    (Directory.closest_holder d ~line:7 ~excluding:10 ~distance:(dist_from 10) ());
  Directory.remove_holder d ~line:7 ~node:40;
  Alcotest.(check (option int)) "no other holder" None
    (Directory.closest_holder d ~line:7 ~excluding:10 ~distance:(dist_from 0) ())

let prop_directory_membership =
  QCheck.Test.make ~name:"add/remove holder tracks membership" ~count:300
    (QCheck.make
       QCheck.Gen.(list_size (int_range 0 30) (pair (int_range 0 63) bool)))
    (fun ops ->
      let d = Directory.create ~nodes:64 in
      let expected = Hashtbl.create 16 in
      List.iter
        (fun (node, add) ->
          if add then begin
            Directory.add_holder d ~line:1 ~node;
            Hashtbl.replace expected node ()
          end
          else begin
            Directory.remove_holder d ~line:1 ~node;
            Hashtbl.remove expected node
          end)
        ops;
      let want = List.sort compare (Hashtbl.fold (fun k () l -> k :: l) expected []) in
      Directory.holders d ~line:1 = want)

let qsuite = List.map QCheck_alcotest.to_alcotest

let suite =
  [
    ( "cache.sacache",
      [
        Alcotest.test_case "geometry" `Quick test_geometry;
        Alcotest.test_case "hit after fill" `Quick test_hit_after_fill;
        Alcotest.test_case "LRU eviction" `Quick test_lru_eviction;
        Alcotest.test_case "dirty writeback" `Quick test_dirty_writeback;
        Alcotest.test_case "probe/invalidate" `Quick test_probe_invalidate;
        Alcotest.test_case "stats/clear" `Quick test_stats_and_clear;
        Alcotest.test_case "set hashing" `Quick test_hash_spreads_aliases;
      ]
      @ qsuite [ prop_lru_working_set ] );
    ( "cache.directory",
      [
        Alcotest.test_case "holders" `Quick test_directory_basic;
        Alcotest.test_case "closest holder" `Quick test_directory_closest;
      ]
      @ qsuite [ prop_directory_membership ] );
  ]
