(** Conservative parallel discrete-event simulation over mesh partitions.

    The mesh is partitioned by cluster: each cluster's cores, its memory
    controllers and the mesh links their XY routes traverse form one
    partition, simulated on its own OCaml 5 domain with its own
    {!Event_heap}, request pool, caches, network and controllers (a
    whole per-partition {!Engine.run}).  The sequential engine stays
    untouched as the oracle: a parallel run must be byte-identical to
    [--domains 1].

    {b Synchronization.}  A conservative parallel DES lets a partition
    advance to time [t] only once every peer has promised (via a null
    message) not to send it an event before [t]; the promise horizon is
    the {e lookahead} — here the minimum NoC link traversal latency, the
    soonest a message leaving one partition could arrive in another.
    This engine runs the degenerate — and fastest — case of that
    protocol: {!plan} proves {e statically} that the workload can send
    no cross-partition event at all (every job, page, controller and
    route is confined to one partition), which makes every null message
    carry lookahead +∞ and lets the domains run to completion without
    blocking once.  Workloads where the proof fails (shared pages, line
    interleaving, cross-cluster page hints, jobs spanning clusters,
    shared L2, routes through foreign partitions…) fall back to the
    sequential engine with a reason — correct for every workload,
    parallel for decomposable ones.

    {b Why merge order cannot affect results.}  With confinement proven,
    a partition dispatches exactly the sequential run's event subsequence
    for its own jobs (same times, same heap insertion order, same jitter
    streams — foreign jobs keep their list positions but carry no
    phases), so per-partition integer counters, hop histograms and
    per-node/per-MC/per-job arrays are disjoint slices of the sequential
    run's.  The merge adds counters and histograms, takes each per-MC and
    per-job cell from its owning partition, sums disjoint per-link busy
    cycles, and re-divides the raw occupancy integrals and link busy
    cycles by the merged horizon [max 1 finish_time] — every operation
    is either a sum over disjoint supports or a per-cell copy, so no
    ordering of partitions can change a byte of the output. *)

type partition = {
  part_cluster : int;
      (** representative (lowest) cluster index this partition simulates *)
  part_clusters : int list;
      (** every cluster it simulates (ascending) — a singleton on a flat
          platform; on a hierarchical platform whose clusters nest inside
          chiplets, all of one chiplet's clusters *)
  part_mcs : int list;  (** controllers owned (ascending) *)
  part_nodes : int list;  (** mesh nodes owned (ascending) *)
  part_jobs : int list;  (** indices of the jobs it runs (ascending) *)
}

type plan =
  | Parallel of partition array
      (** in ascending cluster (flat) or chiplet (hierarchical) order *)
  | Sequential of string  (** not decomposable — the reason why *)

val plan :
  Config.t ->
  ?desired_mc_of_vpage:(int -> int option) ->
  jobs:Engine.job list ->
  unit ->
  plan
(** Static confinement proof over the jobs' precomputed access traces.
    [Parallel] is returned only when all of the following hold: private
    L2, page interleaving, at least two clusters with jobs, every job's
    threads inside one cluster, admission chains intra-cluster, every
    touched virtual page touched by one cluster only and placed (under
    the run's page policy and [desired_mc_of_vpage] hints) on one of
    that cluster's controllers within its frame budget, freed ranges not
    overlapping foreign pages, and the partitions' XY route link sets
    pairwise disjoint.  Anything else is [Sequential reason].

    On a hierarchical platform whose clusters nest inside chiplets, the
    per-cluster partitions of each chiplet are merged into one partition
    per chiplet before the route check: chiplet boundaries are natural
    partition cuts, so clusters sharing on-die links inside a chiplet no
    longer force a sequential fallback. *)

val describe : plan -> domains:int -> string
(** One line for humans: the partition/worker layout, or the fallback
    reason. *)

val run :
  Config.t ->
  ?desired_mc_of_vpage:(int -> int option) ->
  ?trace:Obs.Trace.t ->
  ?attr:Obs.Attr.t ->
  ?on_plan:(string -> unit) ->
  domains:int ->
  jobs:Engine.job list ->
  unit ->
  Engine.result
(** Same contract as {!Engine.run} plus [domains]: with [domains <= 1],
    an enabled [trace], or a [Sequential] plan it simply calls
    {!Engine.run}; otherwise it runs one {!Engine.run} per partition on
    [min domains partitions] worker domains and merges the results.
    Either way the result is byte-identical to the sequential engine's
    ([stats] JSON included) — the CI oracle holds this to account.
    [on_plan] receives {!describe}'s line exactly once per call.
    [attr] cubes are cloned per partition and the partitions' snapshots
    absorbed back in ascending partition order. *)
