(* C back end for the mini language.

   Arrays are flattened: a declaration [array A[N][M]] becomes
   [double A[N*M]] and a reference [A[e1][e2]] becomes [A[(e1)*M + e2]].
   Index arrays are [long].  Parallel loops carry
   [#pragma omp parallel for schedule(static)], matching the
   data-to-core mapping the pass assumed. *)

type env = {
  extents : (string * int list) list;
  index_arrays : string list;
  site_of : (Ast.ref_ -> int) option;
      (* when present, every rendered reference gets a [/*s<id>*/] tag so
         emitted C lines can be matched against the access-site table *)
}

(* All back-end failures are located diagnostics, raised as {!Diag.Fatal}
   and surfaced through {!emit_result}; {!emit} keeps the historical
   [Invalid_argument] for callers that treat them as fatal. *)
let error ~code ~span msg = raise (Diag.Fatal (Diag.error ~code span msg))

let rec static_extent ~span env e =
  match e with
  | Ast.Int n -> n
  | Ast.Var x -> (
    match List.assoc_opt x env with
    | Some v -> v
    | None -> error ~code:"G002" ~span ("Codegen: non-constant extent " ^ x))
  | Ast.Neg a -> -static_extent ~span env a
  | Ast.Add (a, b) -> static_extent ~span env a + static_extent ~span env b
  | Ast.Sub (a, b) -> static_extent ~span env a - static_extent ~span env b
  | Ast.Mul (a, b) -> static_extent ~span env a * static_extent ~span env b
  | Ast.Div (a, b) -> static_extent ~span env a / static_extent ~span env b
  | Ast.Mod (a, b) -> static_extent ~span env a mod static_extent ~span env b
  | Ast.Load _ -> error ~code:"G002" ~span "Codegen: load in extent"

(* flattened reference: A[(e1)*M2*M3 + (e2)*M3 + e3] *)
let rec render_ref env buf (r : Ast.ref_) =
  let extents =
    match List.assoc_opt r.Ast.array env.extents with
    | Some e -> e
    | None ->
      error ~code:"G003" ~span:r.Ast.ref_span
        ("Codegen: unknown array " ^ r.Ast.array)
  in
  Buffer.add_string buf r.Ast.array;
  Buffer.add_char buf '[';
  let n = List.length r.Ast.subs in
  List.iteri
    (fun i sub ->
      if i > 0 then Buffer.add_string buf " + ";
      Buffer.add_char buf '(';
      render_expr env buf sub;
      Buffer.add_char buf ')';
      (* multiply by the product of the remaining extents *)
      let stride =
        List.filteri (fun j _ -> j > i) extents |> List.fold_left ( * ) 1
      in
      if stride <> 1 then Buffer.add_string buf (Printf.sprintf " * %d" stride);
      ignore n)
    r.Ast.subs;
  Buffer.add_char buf ']';
  match env.site_of with
  | Some f ->
    let id = f r in
    if id >= 0 then Buffer.add_string buf (Printf.sprintf "/*s%d*/" id)
  | None -> ()

and render_expr env buf = function
  | Ast.Int n ->
    if n < 0 then Buffer.add_string buf (Printf.sprintf "(%d)" n)
    else Buffer.add_string buf (string_of_int n)
  | Ast.Var x -> Buffer.add_string buf x
  | Ast.Neg a ->
    Buffer.add_string buf "(-";
    render_atom env buf a;
    Buffer.add_char buf ')'
  | Ast.Add (a, b) -> render_binop env buf a "+" b
  | Ast.Sub (a, b) -> render_binop env buf a "-" b
  | Ast.Mul (a, b) -> render_binop env buf a "*" b
  | Ast.Div (a, b) -> render_binop env buf a "/" b
  | Ast.Mod (a, b) -> render_binop env buf a "%" b
  | Ast.Load r -> render_ref env buf r

and render_binop env buf a op b =
  render_atom env buf a;
  Buffer.add_char buf ' ';
  Buffer.add_string buf op;
  Buffer.add_char buf ' ';
  render_atom env buf b

and render_atom env buf e =
  match e with
  | Ast.Int n when n >= 0 -> Buffer.add_string buf (string_of_int n)
  | Ast.Var x -> Buffer.add_string buf x
  | Ast.Load r -> render_ref env buf r
  | _ ->
    Buffer.add_char buf '(';
    render_expr env buf e;
    Buffer.add_char buf ')'

let indent buf depth = Buffer.add_string buf (String.make (2 * depth) ' ')

let relop_str = function
  | Ast.Lt -> "<"
  | Ast.Le -> "<="
  | Ast.Gt -> ">"
  | Ast.Ge -> ">="
  | Ast.Eq -> "=="
  | Ast.Ne -> "!="

let rec render_stmt env buf depth = function
  | Ast.If c ->
    indent buf depth;
    Buffer.add_string buf "if (";
    render_expr env buf c.Ast.lhs;
    Buffer.add_string buf (Printf.sprintf " %s " (relop_str c.Ast.op));
    render_expr env buf c.Ast.rhs;
    Buffer.add_string buf ") {\n";
    List.iter (render_stmt env buf (depth + 1)) c.Ast.then_;
    indent buf depth;
    if c.Ast.else_ = [] then Buffer.add_string buf "}\n"
    else begin
      Buffer.add_string buf "} else {\n";
      List.iter (render_stmt env buf (depth + 1)) c.Ast.else_;
      indent buf depth;
      Buffer.add_string buf "}\n"
    end
  | Ast.Assign (lhs, rhs) ->
    indent buf depth;
    render_ref env buf lhs;
    Buffer.add_string buf " = ";
    render_expr env buf rhs;
    Buffer.add_string buf ";\n"
  | Ast.Loop l ->
    if l.Ast.parallel then begin
      indent buf depth;
      Buffer.add_string buf "#pragma omp parallel for schedule(static)\n"
    end;
    indent buf depth;
    Buffer.add_string buf (Printf.sprintf "for (long %s = " l.Ast.index);
    render_expr env buf l.Ast.lo;
    Buffer.add_string buf (Printf.sprintf "; %s <= " l.Ast.index);
    render_expr env buf l.Ast.hi;
    Buffer.add_string buf (Printf.sprintf "; %s++) {\n" l.Ast.index);
    List.iter (render_stmt env buf (depth + 1)) l.Ast.body;
    indent buf depth;
    Buffer.add_string buf "}\n"

let emit_exn ?(name = "kernel") ?site_of (p : Ast.program) =
  let param_env = p.Ast.params in
  let extents =
    List.map
      (fun (d : Ast.decl) ->
        ( d.Ast.name,
          List.map (static_extent ~span:d.Ast.decl_span param_env) d.Ast.extents
        ))
      p.Ast.decls
  in
  let index_arrays =
    List.filter_map
      (fun (d : Ast.decl) ->
        if d.Ast.index_array then Some d.Ast.name else None)
      p.Ast.decls
  in
  let env = { extents; index_arrays; site_of } in
  let buf = Buffer.create 4096 in
  Buffer.add_string buf
    "/* generated by occ: off-chip access localization (PLDI 2015) */\n";
  Buffer.add_string buf "#include <stddef.h>\n\n";
  List.iter
    (fun (n, v) -> Buffer.add_string buf (Printf.sprintf "#define %s %d\n" n v))
    p.Ast.params;
  Buffer.add_char buf '\n';
  List.iter
    (fun (d : Ast.decl) ->
      let size =
        List.fold_left ( * ) 1 (List.assoc d.Ast.name extents)
      in
      let ty = if d.Ast.index_array then "long" else "double" in
      Buffer.add_string buf
        (Printf.sprintf "static %s %s[%d];\n" ty d.Ast.name size))
    p.Ast.decls;
  Buffer.add_char buf '\n';
  if index_arrays <> [] then begin
    Buffer.add_string buf
      (Printf.sprintf
         "/* fill in the index-array contents before calling run_%s */\n" name);
    Buffer.add_string buf (Printf.sprintf "void init_%s_index_arrays(void);\n\n" name)
  end;
  Buffer.add_string buf (Printf.sprintf "void run_%s(void)\n{\n" name);
  List.iter (render_stmt env buf 1) p.Ast.nests;
  Buffer.add_string buf "}\n";
  Buffer.contents buf

let emit_result ?name ?site_of p =
  match emit_exn ?name ?site_of p with
  | s -> Ok s
  | exception Diag.Fatal d -> Error [ d ]

