lib/os/page_alloc.ml: Array Dram Hashtbl Option
