type t = { row_hit : int; row_empty : int; row_conflict : int; burst : int }

(* 2.5 CPU cycles per DDR3-1600 memory cycle; tCAS = tRCD = tRP = 11,
   tBURST = 4 memory cycles. *)
let cpu_per_mem = 2.5

let cycles mem = int_of_float (ceil (float_of_int mem *. cpu_per_mem))

let t_cas = cycles 11

let t_rcd = cycles 11

let t_rp = cycles 11

let t_burst = cycles 16

let ddr3_1600 =
  {
    row_hit = t_cas + t_burst;
    row_empty = t_rcd + t_cas + t_burst;
    row_conflict = t_rp + t_rcd + t_cas + t_burst;
    burst = t_burst;
  }

let scale f t =
  let s x = max 1 (int_of_float (ceil (float_of_int x *. f))) in
  {
    row_hit = s t.row_hit;
    row_empty = s t.row_empty;
    row_conflict = s t.row_conflict;
    burst = s t.burst;
  }
