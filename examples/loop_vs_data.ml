(* Loop restructuring vs data layout transformation (Section 1).

   The paper chooses data transformations over loop transformations
   because the latter "are constrained by data and control dependences",
   while data transformations "are essentially a kind of renaming and not
   affected by dependences".  This example makes the argument executable:

   1. a column-walking kernel where loop interchange is legal — both the
      loop pass and the layout pass help;
   2. the same kernel with a diagonal dependence — interchange becomes
      illegal, the loop pass gives up, and only the layout pass still
      localizes the off-chip accesses.

     dune exec examples/loop_vs_data.exe *)

let free_src =
  {|
param N = 320;
array A[N][N];
parfor j = 0 to N-1 {
  for i = 0 to N-1 {
    A[i][j] = A[i][j] + 1;
  }
}
|}

let blocked_src =
  {|
param N = 320;
array A[N][N];
parfor j = 1 to N-2 {
  for i = 1 to N-2 {
    A[i][j] = A[i-1][j+1] + 1;
  }
}
|}

let parse src =
  match Lang.Parser.parse_result src with
  | Ok p -> p
  | Error ds ->
    List.iter (fun d -> prerr_endline (Lang.Diag.to_string ~src d)) ds;
    exit 1

let () =
  let cfg = Sim.Config.scaled () in
  let show name src =
    let program = parse src in
    let analysis = Lang.Analysis.analyze program in
    Printf.printf "--- %s ---\n" name;
    (* dependence analysis *)
    let distances = Core.Loop_transform.dependence_distances analysis ~nest_id:0 in
    Printf.printf "dependence distances: %s\n"
      (if distances = [] then "(none)"
       else String.concat ", " (List.map Affine.Vec.to_string distances));
    (* the loop pass *)
    let lt = Core.Loop_transform.run analysis in
    Printf.printf "loop pass: %d permuted, %d aligned, %d blocked\n"
      lt.Core.Loop_transform.permuted_nests lt.Core.Loop_transform.already_aligned
      lt.Core.Loop_transform.blocked;
    (* the data pass *)
    let report = Core.Transform.run (Sim.Config.customize_config cfg) analysis in
    Printf.printf "layout pass: %.0f%% of arrays optimized\n"
      report.Core.Transform.pct_arrays_optimized;
    (* simulate: original, loop-restructured, layout-transformed *)
    let base = Sim.Runner.run cfg ~optimized:false program in
    let looped =
      Sim.Runner.run cfg ~optimized:false lt.Core.Loop_transform.program
    in
    let layout = Sim.Runner.run cfg ~optimized:true program in
    let t (r : Sim.Engine.result) = ((Sim.Stats.finish_time) r.Sim.Engine.stats) in
    let gain r =
      100. *. (1. -. (float_of_int (t r) /. float_of_int (t base)))
    in
    Printf.printf
      "execution: original %d cycles | loop-restructured %+.1f%% | \
       layout-transformed %+.1f%%\n\n"
      (t base) (gain looped) (gain layout)
  in
  show "interchange legal (no loop-carried dependence)" free_src;
  show "interchange blocked by a (1,-1) dependence" blocked_src;
  print_endline
    "The second kernel shows the paper's point: the dependence pins the\n\
     loop order, but renaming the data (the layout transformation) is\n\
     still free to localize every off-chip access."
