test/test_extensions.ml: Affine Alcotest Array Astring Core Lang List QCheck QCheck_alcotest Sim String Workloads
