let complete_row g ~v =
  let n = Vec.dim g in
  if Vec.is_zero g then invalid_arg "Unimodular.complete_row: zero vector";
  if Vec.content g <> 1 then
    invalid_arg "Unimodular.complete_row: not primitive";
  if v < 0 || v >= n then invalid_arg "Unimodular.complete_row: bad row index";
  (* Column-reduce the 1×n matrix [g] to (1, 0, …, 0): [g]·c = e₀ᵀ with c
     unimodular.  Then g = e₀ᵀ·c⁻¹, i.e. c⁻¹ is unimodular with first row
     g; swapping rows 0 and v puts g in position v. *)
  let h, c, rank = Gauss.column_echelon (Matrix.of_rows [ g ]) in
  assert (rank = 1 && h.(0).(0) = 1);
  let u = Matrix.inverse c in
  if v <> 0 then Matrix.swap_rows u 0 v;
  u

let hermite_normal_form m0 =
  let n = Matrix.rows m0 in
  if n <> Matrix.cols m0 then invalid_arg "Unimodular.hermite_normal_form";
  if Matrix.det m0 = 0 then
    invalid_arg "Unimodular.hermite_normal_form: singular";
  let h, _, _ = Gauss.column_echelon m0 in
  (* h is lower triangular with positive diagonal; reduce the entries to the
     left of each diagonal into [0, h.(i).(i)). *)
  let fdiv a b =
    (* floor division for positive b *)
    if a >= 0 then a / b else -(((-a) + b - 1) / b)
  in
  for i = 0 to n - 1 do
    for j = 0 to i - 1 do
      let q = fdiv h.(i).(j) h.(i).(i) in
      if q <> 0 then
        for r = i to n - 1 do
          h.(r).(j) <- h.(r).(j) - (q * h.(r).(i))
        done
    done
  done;
  h
