lib/workloads/profile.ml: App Array Hashtbl Lang List String
