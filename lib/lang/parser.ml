exception Error of Diag.t

type state = {
  mutable toks : Lexer.spanned list;
  file : string;
  mutable last_end : int;  (* end offset of the most recently consumed token *)
}

let peek st = match st.toks with [] -> Lexer.EOF | t :: _ -> t.Lexer.tok

let peek_span st =
  match st.toks with
  | [] -> Span.make ~file:st.file ~lo:st.last_end ~hi:st.last_end
  | t :: _ -> t.Lexer.span

let advance st =
  match st.toks with
  | [] -> ()
  | t :: r ->
    st.last_end <- t.Lexer.span.Span.hi;
    st.toks <- r

(* Span from a start offset to the end of the last consumed token. *)
let since st lo = Span.make ~file:st.file ~lo ~hi:st.last_end

let syntax_error ?(code = "P001") st msg = raise (Error (Diag.error ~code (peek_span st) msg))

let expect st t =
  if peek st = t then advance st
  else
    syntax_error st
      (Format.asprintf "expected %a, found %a" Lexer.pp_token t Lexer.pp_token
         (peek st))

let ident st =
  match peek st with
  | Lexer.IDENT s ->
    advance st;
    s
  | t ->
    syntax_error ~code:"P002" st
      (Format.asprintf "expected identifier, found %a" Lexer.pp_token t)

(* expr := term (("+"|"-") term)* *)
let rec expr st =
  let lhs = term st in
  let rec loop acc =
    match peek st with
    | Lexer.PLUS ->
      advance st;
      loop (Ast.Add (acc, term st))
    | Lexer.MINUS ->
      advance st;
      loop (Ast.Sub (acc, term st))
    | _ -> acc
  in
  loop lhs

and term st =
  let lhs = factor st in
  let rec loop acc =
    match peek st with
    | Lexer.STAR ->
      advance st;
      loop (Ast.Mul (acc, factor st))
    | Lexer.SLASH ->
      advance st;
      loop (Ast.Div (acc, factor st))
    | Lexer.PERCENT ->
      advance st;
      loop (Ast.Mod (acc, factor st))
    | _ -> acc
  in
  loop lhs

and factor st =
  match peek st with
  | Lexer.INT n ->
    advance st;
    Ast.Int n
  | Lexer.MINUS ->
    advance st;
    Ast.Neg (factor st)
  | Lexer.LPAREN ->
    advance st;
    let e = expr st in
    expect st Lexer.RPAREN;
    e
  | Lexer.IDENT name ->
    let lo = (peek_span st).Span.lo in
    advance st;
    if peek st = Lexer.LBRACKET then begin
      let subs = subscripts st in
      Ast.Load { Ast.array = name; subs; ref_span = since st lo }
    end
    else Ast.Var name
  | t ->
    syntax_error ~code:"P003" st
      (Format.asprintf "unexpected token %a" Lexer.pp_token t)

and subscripts st =
  let rec loop acc =
    if peek st = Lexer.LBRACKET then begin
      advance st;
      let e = expr st in
      expect st Lexer.RBRACKET;
      loop (e :: acc)
    end
    else List.rev acc
  in
  loop []

let relop st =
  match peek st with
  | Lexer.LT -> advance st; Ast.Lt
  | Lexer.LE -> advance st; Ast.Le
  | Lexer.GT -> advance st; Ast.Gt
  | Lexer.GE -> advance st; Ast.Ge
  | Lexer.EQEQ -> advance st; Ast.Eq
  | Lexer.NE -> advance st; Ast.Ne
  | t ->
    syntax_error ~code:"P004" st
      (Format.asprintf "expected comparison, found %a" Lexer.pp_token t)

let rec stmt st =
  match peek st with
  | Lexer.KW_FOR | Lexer.KW_PARFOR -> Ast.Loop (loop_stmt st)
  | Lexer.KW_IF -> if_stmt st
  | Lexer.IDENT name ->
    let lo = (peek_span st).Span.lo in
    advance st;
    let subs = subscripts st in
    let ref_span = since st lo in
    if subs = [] then
      raise
        (Error
           (Diag.error ~code:"P006" ref_span
              ("assignment target must be an array reference: " ^ name)));
    expect st Lexer.EQUALS;
    let rhs = expr st in
    expect st Lexer.SEMI;
    Ast.Assign ({ Ast.array = name; subs; ref_span }, rhs)
  | t ->
    syntax_error ~code:"P005" st
      (Format.asprintf "expected statement, found %a" Lexer.pp_token t)

and if_stmt st =
  let lo = (peek_span st).Span.lo in
  expect st Lexer.KW_IF;
  expect st Lexer.LPAREN;
  let lhs = expr st in
  let op = relop st in
  let rhs = expr st in
  expect st Lexer.RPAREN;
  let cond_span = since st lo in
  let block () =
    expect st Lexer.LBRACE;
    let rec items acc =
      if peek st = Lexer.RBRACE then begin
        advance st;
        List.rev acc
      end
      else items (stmt st :: acc)
    in
    items []
  in
  let then_ = block () in
  let else_ =
    if peek st = Lexer.KW_ELSE then begin
      advance st;
      block ()
    end
    else []
  in
  Ast.If { Ast.lhs; op; rhs; then_; else_; cond_span }

and loop_stmt st =
  let lo_off = (peek_span st).Span.lo in
  let parallel =
    match peek st with
    | Lexer.KW_PARFOR -> true
    | Lexer.KW_FOR -> false
    | _ -> assert false
  in
  advance st;
  let index = ident st in
  expect st Lexer.EQUALS;
  let lo = expr st in
  expect st Lexer.KW_TO;
  let hi = expr st in
  let loop_span = since st lo_off in
  let body =
    if peek st = Lexer.LBRACE then begin
      advance st;
      let rec items acc =
        if peek st = Lexer.RBRACE then begin
          advance st;
          List.rev acc
        end
        else items (stmt st :: acc)
      in
      items []
    end
    else [ stmt st ]
  in
  { Ast.index; lo; hi; parallel; body; loop_span }

let program st =
  let params = ref [] and decls = ref [] and nests = ref [] in
  let rec const_eval ~span e =
    (* parameters may be used in later param definitions and extents *)
    match e with
    | Ast.Int n -> n
    | Ast.Var x -> (
      match List.assoc_opt x !params with
      | Some v -> v
      | None ->
        raise (Error (Diag.error ~code:"S001" span ("unknown parameter " ^ x))))
    | Ast.Neg a -> -const_eval ~span a
    | Ast.Add (a, b) -> const_eval ~span a + const_eval ~span b
    | Ast.Sub (a, b) -> const_eval ~span a - const_eval ~span b
    | Ast.Mul (a, b) -> const_eval ~span a * const_eval ~span b
    | Ast.Div (a, b) -> const_eval ~span a / const_eval ~span b
    | Ast.Mod (a, b) -> const_eval ~span a mod const_eval ~span b
    | Ast.Load _ ->
      raise
        (Error (Diag.error ~code:"S002" span "array reference in constant expression"))
  in
  let rec items () =
    match peek st with
    | Lexer.EOF -> ()
    | Lexer.KW_PARAM ->
      let lo = (peek_span st).Span.lo in
      advance st;
      let name = ident st in
      expect st Lexer.EQUALS;
      let e = expr st in
      let v = const_eval ~span:(since st lo) e in
      expect st Lexer.SEMI;
      params := !params @ [ (name, v) ];
      items ()
    | Lexer.KW_ARRAY | Lexer.KW_INDEX ->
      let lo = (peek_span st).Span.lo in
      let index_array = peek st = Lexer.KW_INDEX in
      advance st;
      let name = ident st in
      let extents = subscripts st in
      if extents = [] then
        raise
          (Error
             (Diag.error ~code:"S003" (since st lo)
                ("array without dimensions: " ^ name)));
      expect st Lexer.SEMI;
      decls := !decls @ [ { Ast.name; extents; index_array; decl_span = since st lo } ];
      items ()
    | Lexer.KW_FOR | Lexer.KW_PARFOR ->
      nests := !nests @ [ stmt st ];
      items ()
    | t ->
      syntax_error ~code:"P007" st
        (Format.asprintf "unexpected top-level token %a" Lexer.pp_token t)
  in
  items ();
  { Ast.params = !params; decls = !decls; nests = !nests }

(* Scope checking: every referenced array declared, with matching rank.
   All violations are collected — one located diagnostic per offending
   reference — instead of dying at the first. *)
let check_result (p : Ast.program) =
  let ranks = Hashtbl.create 16 in
  List.iter
    (fun (d : Ast.decl) ->
      Hashtbl.replace ranks d.name (List.length d.extents, d.decl_span))
    p.decls;
  let diags = ref [] in
  let emit d = diags := d :: !diags in
  let check_ref (r : Ast.ref_) =
    match Hashtbl.find_opt ranks r.array with
    | None ->
      emit (Diag.error ~code:"S004" r.ref_span ("undeclared array " ^ r.array))
    | Some (rk, dspan) ->
      if rk <> List.length r.subs then
        emit
          (Diag.error ~code:"S005" r.ref_span
             ~notes:
               (if Span.is_dummy dspan then []
                else [ Diag.note ~span:dspan (r.array ^ " declared here") ])
             (Printf.sprintf "array %s has rank %d, used with %d subscripts"
                r.array rk (List.length r.subs)))
  in
  let rec check_expr = function
    | Ast.Int _ | Ast.Var _ -> ()
    | Ast.Neg a -> check_expr a
    | Ast.Add (a, b) | Ast.Sub (a, b) | Ast.Mul (a, b) | Ast.Div (a, b) | Ast.Mod (a, b) ->
      check_expr a;
      check_expr b
    | Ast.Load r ->
      check_ref r;
      List.iter check_expr r.subs
  in
  let rec check_stmt = function
    | Ast.Assign (r, e) ->
      check_ref r;
      List.iter check_expr r.subs;
      check_expr e
    | Ast.Loop l ->
      check_expr l.lo;
      check_expr l.hi;
      List.iter check_stmt l.body
    | Ast.If c ->
      check_expr c.Ast.lhs;
      check_expr c.Ast.rhs;
      List.iter check_stmt c.Ast.then_;
      List.iter check_stmt c.Ast.else_
  in
  List.iter check_stmt p.nests;
  match List.rev !diags with [] -> Ok p | ds -> Result.Error ds

let parse_program_result ?(file = "<input>") src =
  match Lexer.scan ~file src with
  | Result.Error d -> Result.Error [ d ]
  | Ok toks -> (
    match program { toks; file; last_end = 0 } with
    | p -> Ok p
    | exception Error d -> Result.Error [ d ])

let parse_result ?file src =
  match parse_program_result ?file src with
  | Result.Error _ as e -> e
  | Ok p -> check_result p

let read_file path =
  let ic = open_in_bin path in
  let len = in_channel_length ic in
  let src = really_input_string ic len in
  close_in ic;
  src

let parse_file_result path =
  match read_file path with
  | src -> parse_result ~file:path src
  | exception Sys_error e ->
    Result.Error [ Diag.error ~code:"P000" (Span.make ~file:path ~lo:0 ~hi:0) e ]
