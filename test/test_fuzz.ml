(* Fuzzing the whole pipeline with randomly generated affine kernels:
   every generated program must parse/print round-trip, produce injective
   layouts under the pass, and conserve accesses through the simulator. *)

module Ast = Lang.Ast
module Gen = QCheck.Gen

(* --- random affine kernel generator --- *)

(* Subscript templates over the iterators (i outer, j inner). *)
let subscript_choices_2d =
  [
    (fun () -> (Ast.Var "i", Ast.Var "j"));
    (fun () -> (Ast.Var "j", Ast.Var "i"));
    (fun () -> (Ast.Add (Ast.Var "i", Ast.Int 1), Ast.Var "j"));
    (fun () -> (Ast.Var "i", Ast.Sub (Ast.Var "j", Ast.Int 1)));
    (fun () -> (Ast.Var "i", Ast.Add (Ast.Var "j", Ast.Int 2)));
  ]

type kernel = { src : string; n : int }

let gen_kernel : kernel Gen.t =
  let open Gen in
  let* n_arrays = int_range 1 3 in
  let* n = map (fun k -> 8 * k) (int_range 4 8) in
  let* refs_per_stmt = int_range 1 3 in
  let* sub_choices =
    list_size (return (n_arrays * refs_per_stmt)) (int_range 0 4)
  in
  let* par_inner = bool in
  let arrays = List.init n_arrays (fun i -> Printf.sprintf "A%d" i) in
  let buf = Buffer.create 256 in
  Buffer.add_string buf (Printf.sprintf "param N = %d;\n" n);
  List.iter (fun a -> Buffer.add_string buf (Printf.sprintf "array %s[N][N];\n" a)) arrays;
  let outer, inner = if par_inner then ("for", "parfor") else ("parfor", "for") in
  Buffer.add_string buf
    (Printf.sprintf "%s i = 2 to N-3 {\n  %s j = 2 to N-3 {\n" outer inner);
  let choice = ref sub_choices in
  let next_sub () =
    match !choice with
    | [] -> (Ast.Var "i", Ast.Var "j")
    | c :: rest ->
      choice := rest;
      (List.nth subscript_choices_2d c) ()
  in
  List.iteri
    (fun k a ->
      let s1, s2 = next_sub () in
      let rhs_arr = List.nth arrays ((k + 1) mod n_arrays) in
      let r1, r2 = next_sub () in
      Buffer.add_string buf
        (Format.asprintf "    %s[%a][%a] = %s[%a][%a] + 1;\n" a Ast.pp_expr s1
           Ast.pp_expr s2 rhs_arr Ast.pp_expr r1 Ast.pp_expr r2))
    arrays;
  Buffer.add_string buf "  }\n}\n";
  return { src = Buffer.contents buf; n }

let arb_kernel = QCheck.make ~print:(fun k -> k.src) gen_kernel

(* --- properties --- *)

let parse src =
  match Lang.Parser.parse_result src with
  | Ok p -> p
  | Error _ -> failwith "parse failed"

let prop_roundtrip =
  QCheck.Test.make ~name:"random kernels print/parse round-trip" ~count:100
    arb_kernel
    (fun k ->
      let p = parse k.src in
      let printed = Ast.program_to_string p in
      String.equal printed (Ast.program_to_string (parse printed)))

let prop_layouts_injective =
  QCheck.Test.make ~name:"pass layouts stay injective on random kernels"
    ~count:40 arb_kernel
    (fun k ->
      let analysis = Lang.Analysis.analyze (parse k.src) in
      let ccfg = Sim.Config.customize_config (Sim.Config.scaled ()) in
      let report = Core.Transform.run ccfg analysis in
      List.for_all
        (fun (d : Core.Transform.decision) ->
          let layout = d.Core.Transform.layout in
          let seen = Hashtbl.create 1024 in
          let ok = ref true in
          let size = Core.Layout.size_elems layout in
          (* sample the data space on a grid to keep the check cheap *)
          let step = max 1 (k.n / 16) in
          let x = ref 0 in
          while !x < k.n do
            let y = ref 0 in
            while !y < k.n do
              let off = Core.Layout.offset_of_index layout [| !x; !y |] in
              if off < 0 || off >= size || Hashtbl.mem seen off then ok := false;
              Hashtbl.replace seen off ();
              y := !y + step
            done;
            x := !x + step
          done;
          !ok)
        report.Core.Transform.decisions)

let prop_simulation_conserves =
  QCheck.Test.make ~name:"simulation conserves accesses on random kernels"
    ~count:10 arb_kernel
    (fun k ->
      let p = parse k.src in
      let cfg = Sim.Config.scaled () in
      let check optimized =
        let r = Sim.Runner.run cfg ~optimized p in
        let s = r.Sim.Engine.stats in
        ((Sim.Stats.total_accesses) s)
        = ((Sim.Stats.l1_hits) s) + ((Sim.Stats.l2_hits) s) + ((Sim.Stats.offchip_accesses) s)
        && ((Sim.Stats.finish_time) s) > 0
      in
      check false && check true)

let prop_trace_counts_match =
  QCheck.Test.make ~name:"trace length is layout-independent" ~count:20
    arb_kernel
    (fun k ->
      let p = parse k.src in
      let count addr_of =
        let phases = Lang.Interp.trace ~threads:8 ~addr_of p in
        List.fold_left
          (fun a ph -> a + Array.fold_left (fun a s -> a + Array.length s) 0 ph)
          0 phases
      in
      count (fun _ v -> v.(0)) = count (fun _ v -> (v.(0) * 131) + v.(1)))

let qsuite = List.map QCheck_alcotest.to_alcotest

let suite =
  [
    ( "fuzz",
      qsuite
        [
          prop_roundtrip;
          prop_layouts_injective;
          prop_simulation_conserves;
          prop_trace_counts_match;
        ] );
  ]
