type access = int

let addr_of_access a = a lsr 1

let is_write a = a land 1 = 1

type phase = access array array

(* Growable int buffer: per-thread access stream under construction. *)
type buf = { mutable data : int array; mutable len : int }

let buf_make () = { data = Array.make 1024 0; len = 0 }

let buf_push b x =
  if b.len = Array.length b.data then begin
    let d = Array.make (2 * b.len) 0 in
    Array.blit b.data 0 d 0 b.len;
    b.data <- d
  end;
  b.data.(b.len) <- x;
  b.len <- b.len + 1

let buf_contents b = Array.sub b.data 0 b.len

(* Contiguous chunk [index] of [0..n-1] split into [chunks] (OpenMP static):
   returns (start, stop) inclusive; empty iff start > stop. *)
let chunk_bounds n chunks index =
  let base = n / chunks and rem = n mod chunks in
  let start = (index * base) + min index rem in
  let len = base + if index < rem then 1 else 0 in
  (start, start + len - 1)

let trace_gen ~threads ?(threads_per_core = 1) ~addr_of
    ?(index_lookup = fun _ _ -> 0) ?site_of (p : Ast.program) =
  if threads <= 0 || threads_per_core <= 0 || threads mod threads_per_core <> 0
  then invalid_arg "Interp.trace: bad thread configuration";
  let tagging = site_of <> None in
  let site_id =
    match site_of with Some f -> f | None -> fun (_ : Ast.ref_) -> -1
  in
  let index_arrays =
    List.filter_map
      (fun (d : Ast.decl) -> if d.index_array then Some d.name else None)
      p.decls
  in
  let is_index a = List.exists (String.equal a) index_arrays in
  let env : (string, int) Hashtbl.t = Hashtbl.create 16 in
  List.iter (fun (n, v) -> Hashtbl.replace env n v) p.params;
  let run_phase nest =
    let bufs = Array.init threads (fun _ -> buf_make ()) in
    (* side-band site streams, index-parallel to the access streams: the
       access encoding's high bits belong to synthetic replay addresses
       (verify's V007), so ids cannot be packed into the access int *)
    let sbufs =
      if tagging then Array.init threads (fun _ -> buf_make ()) else [||]
    in
    let emit t (r : Ast.ref_) write subs =
      let v = Array.of_list subs in
      let addr = addr_of r.array v in
      buf_push bufs.(t) ((addr lsl 1) lor if write then 1 else 0);
      if tagging then buf_push sbufs.(t) (site_id r)
    in
    let rec eval t e =
      match e with
      | Ast.Int n -> n
      | Ast.Var x -> (
        match Hashtbl.find_opt env x with
        | Some v -> v
        | None ->
          raise
            (Diag.Fatal
               (Diag.error ~code:"I001" Span.dummy ("unbound variable " ^ x))))
      | Ast.Neg a -> -eval t a
      | Ast.Add (a, b) -> eval t a + eval t b
      | Ast.Sub (a, b) -> eval t a - eval t b
      | Ast.Mul (a, b) -> eval t a * eval t b
      | Ast.Div (a, b) -> eval t a / eval t b
      | Ast.Mod (a, b) -> eval t a mod eval t b
      | Ast.Load r ->
        let subs = List.map (eval t) r.subs in
        emit t r false subs;
        if is_index r.array then index_lookup r.array (Array.of_list subs)
        else 0
    in
    (* [who]: None = outside any parallel region (statements run once, on
       thread 0; a parfor fans out); Some t = inside thread t's chunk. *)
    let rec exec who stmt =
      match stmt with
      | Ast.If c ->
        let t = Option.value who ~default:0 in
        let taken =
          let l = eval t c.Ast.lhs and r = eval t c.Ast.rhs in
          match c.Ast.op with
          | Ast.Lt -> l < r
          | Ast.Le -> l <= r
          | Ast.Gt -> l > r
          | Ast.Ge -> l >= r
          | Ast.Eq -> l = r
          | Ast.Ne -> l <> r
        in
        List.iter (exec who) (if taken then c.Ast.then_ else c.Ast.else_)
      | Ast.Assign (lhs, rhs) ->
        let t = Option.value who ~default:0 in
        ignore (eval t rhs);
        let subs = List.map (eval t) lhs.subs in
        emit t lhs true subs
      | Ast.Loop l -> (
        let lo = eval (Option.value who ~default:0) l.lo
        and hi = eval (Option.value who ~default:0) l.hi in
        match (l.parallel, who) with
        | true, None ->
          (* fan out: split [lo..hi] per core, then per thread of a core *)
          let n = max 0 (hi - lo + 1) in
          let cores = threads / threads_per_core in
          for t = 0 to threads - 1 do
            let core = t / threads_per_core and sub = t mod threads_per_core in
            let cst, cen = chunk_bounds n cores core in
            let w = max 0 (cen - cst + 1) in
            let sst, sen = chunk_bounds w threads_per_core sub in
            for x = lo + cst + sst to lo + cst + sen do
              Hashtbl.replace env l.index x;
              List.iter (exec (Some t)) l.body
            done;
            Hashtbl.remove env l.index
          done
        | _ ->
          (* sequential execution (nested parfor runs on its owner) *)
          for x = lo to hi do
            Hashtbl.replace env l.index x;
            List.iter (exec who) l.body
          done;
          Hashtbl.remove env l.index)
    in
    exec None nest;
    ( Array.map buf_contents bufs,
      if tagging then Array.map buf_contents sbufs else [||] )
  in
  List.map run_phase p.nests

let trace ~threads ?threads_per_core ~addr_of ?index_lookup p =
  List.map fst (trace_gen ~threads ?threads_per_core ~addr_of ?index_lookup p)

let trace_tagged ~threads ?threads_per_core ~addr_of ?index_lookup ~site_of p =
  trace_gen ~threads ?threads_per_core ~addr_of ?index_lookup ~site_of p
