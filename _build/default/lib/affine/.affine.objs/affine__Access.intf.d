lib/affine/access.mli: Format Matrix Vec
