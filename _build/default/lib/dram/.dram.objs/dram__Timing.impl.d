lib/dram/timing.ml:
