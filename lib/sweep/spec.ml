module Json = Obs.Json

type job = {
  id : string;
  config_name : string;
  config : Sim.Config.t;
  app : string;
  optimized : bool;
}

type t = {
  name : string;
  jobs : job array;
  timeout_s : float;
  retries : int;
  domains : int;
}

let ( let* ) = Result.bind

let rec map_result f = function
  | [] -> Ok []
  | x :: tl ->
    let* y = f x in
    let* ys = map_result f tl in
    Ok (y :: ys)

(* typed field access with spec-relative error messages *)
let field name j = Json.member name j

let opt_field decode ~default name j =
  match field name j with
  | None -> Ok default
  | Some v -> decode (Printf.sprintf "field %S" name) v

let int_of ctx = function
  | Json.Int i -> Ok i
  | _ -> Error (ctx ^ " must be an integer")

let float_of ctx = function
  | Json.Float f -> Ok f
  | Json.Int i -> Ok (float_of_int i)
  | _ -> Error (ctx ^ " must be a number")

let bool_of ctx = function
  | Json.Bool b -> Ok b
  | _ -> Error (ctx ^ " must be a boolean")

let string_of ctx = function
  | Json.String s -> Ok s
  | _ -> Error (ctx ^ " must be a string")

let list_of decode ctx = function
  | Json.List l -> map_result (decode ctx) l
  | _ -> Error (ctx ^ " must be a list")

(* "search": run the deterministic placement search and substitute the
   searched machine for the config's platform.  [true] uses the default
   parameters; an object can pin {"seed", "pool", "restarts", "pressure"}
   (pressure = the cost model's bank pressure, default 1.0).  The cache
   identity stays sound: the searched placement's *name* embeds a digest
   of its sites, so jobs on different searched machines never collide. *)
let search_of ctx = function
  | Json.Bool false -> Ok None
  | Json.Bool true -> Ok (Some (Core.Place_search.default_params, 1.0))
  | Json.Obj _ as j ->
    let* seed = opt_field int_of ~default:0 "seed" j in
    let* restarts =
      opt_field int_of
        ~default:Core.Place_search.default_params.Core.Place_search.restarts
        "restarts" j
    in
    let* pool_name = opt_field string_of ~default:"perimeter" "pool" j in
    let* pool =
      Result.map_error
        (fun e -> ctx ^ ": " ^ e)
        (Noc.Placement.pool_of_string pool_name)
    in
    let* pressure = opt_field float_of ~default:1.0 "pressure" j in
    Ok (Some ({ Core.Place_search.pool; seed; restarts }, pressure))
  | _ -> Error (ctx ^ " must be a boolean or an object")

let config_of_json ~default_seed ~index j =
  match j with
  | Json.Obj fields ->
    let known =
      [ "name"; "platform"; "scaled"; "l2"; "interleave"; "policy"; "mapping";
        "width"; "height"; "tpc"; "optimal"; "seed"; "search" ]
    in
    let* () =
      match List.find_opt (fun (k, _) -> not (List.mem k known)) fields with
      | Some (k, _) -> Error (Printf.sprintf "unknown config field %S" k)
      | None -> Ok ()
    in
    let* name =
      opt_field string_of ~default:(Printf.sprintf "cfg%d" index) "name" j
    in
    let ctx = Printf.sprintf "config %S" name in
    let str k d = opt_field string_of ~default:d k j in
    let* platform = str "platform" "" in
    let* scaled = opt_field bool_of ~default:true "scaled" j in
    let* l2 = str "l2" "private" in
    let* interleave = str "interleave" "line" in
    let* policy = str "policy" "hardware" in
    (* "" keeps the platform's own mapping (M1 on the default platform) *)
    let* mapping = str "mapping" "" in
    let* width = opt_field int_of ~default:8 "width" j in
    let* height = opt_field int_of ~default:8 "height" j in
    let* tpc = opt_field int_of ~default:1 "tpc" j in
    let* optimal = opt_field bool_of ~default:false "optimal" j in
    let* seed = opt_field int_of ~default:default_seed "seed" j in
    let* search = opt_field (fun ctx j -> search_of ctx j) ~default:None "search" j in
    let* config =
      Result.map_error
        (fun e -> ctx ^ ": " ^ e)
        (Sim.Config.build ~scaled ~platform ~l2 ~interleave ~policy ~mapping
           ~width ~height ~tpc ~optimal ~seed ())
    in
    let* config =
      match search with
      | None -> Ok config
      | Some (params, bank_pressure) -> (
        match
          Core.Place_search.search ~params ~bank_pressure
            (Sim.Config.platform config)
        with
        | Error e -> Error (ctx ^ ": search: " ^ e)
        | Ok o ->
          Ok (Sim.Config.with_platform config o.Core.Place_search.platform))
    in
    Ok (name, config)
  | _ -> Error "each entry of \"configs\" must be an object"

let of_json j =
  match j with
  | Json.Obj _ ->
    let* name = opt_field string_of ~default:"sweep" "name" j in
    let* default_seed = opt_field int_of ~default:0 "seed" j in
    let* apps =
      match field "apps" j with
      | None -> Error "spec lacks the required \"apps\" list"
      | Some v -> list_of string_of "\"apps\"" v
    in
    let* () = if apps = [] then Error "\"apps\" must be non-empty" else Ok () in
    let* () =
      match
        List.find_opt (fun a -> not (List.mem a Workloads.Suite.names)) apps
      with
      | Some a ->
        Error
          (Printf.sprintf "unknown application %S (known: %s)" a
             (String.concat ", " Workloads.Suite.names))
      | None -> Ok ()
    in
    let* optimized =
      opt_field (list_of bool_of) ~default:[ false; true ] "optimized" j
    in
    let* () =
      if optimized = [] then Error "\"optimized\" must be non-empty" else Ok ()
    in
    let* timeout_s = opt_field float_of ~default:300. "timeout_s" j in
    let* retries = opt_field int_of ~default:2 "retries" j in
    let* domains = opt_field int_of ~default:1 "domains" j in
    let* () =
      if timeout_s <= 0. then Error "\"timeout_s\" must be positive"
      else if retries < 0 then Error "\"retries\" must be >= 0"
      else if domains < 1 then Error "\"domains\" must be >= 1"
      else Ok ()
    in
    let* configs =
      match field "configs" j with
      | None ->
        let* c = config_of_json ~default_seed ~index:0 (Json.Obj []) in
        Ok [ (match c with name, cfg -> (name, cfg)) ]
      | Some (Json.List l) ->
        let* cs =
          map_result
            (fun (i, cj) -> config_of_json ~default_seed ~index:i cj)
            (List.mapi (fun i cj -> (i, cj)) l)
        in
        if cs = [] then Error "\"configs\" must be non-empty" else Ok cs
      | Some _ -> Error "\"configs\" must be a list"
    in
    let jobs =
      List.concat_map
        (fun (config_name, config) ->
          List.concat_map
            (fun app ->
              List.map
                (fun opt ->
                  {
                    id =
                      Printf.sprintf "%s/%s/%s" config_name app
                        (if opt then "opt" else "orig");
                    config_name;
                    config;
                    app;
                    optimized = opt;
                  })
                optimized)
            apps)
        configs
    in
    Ok { name; jobs = Array.of_list jobs; timeout_s; retries; domains }
  | _ -> Error "a sweep spec must be a JSON object"

let load path =
  let* text =
    try
      let ic = open_in_bin path in
      let n = in_channel_length ic in
      let s = really_input_string ic n in
      close_in ic;
      Ok s
    with Sys_error e -> Error e
  in
  let* j = Result.map_error (fun e -> path ^ ": " ^ e) (Json.of_string text) in
  Result.map_error (fun e -> path ^ ": " ^ e) (of_json j)

let job_identity job =
  Json.obj
    [
      ("config", Sim.Config.to_json job.config);
      ("app", Json.String job.app);
      ("optimized", Json.Bool job.optimized);
    ]
