(** Exact integer matrices.

    Row-major: a matrix is an array of rows, each row a {!Vec.t}.  These are
    the access matrices [A] of array references ([r = A·i + o]), the
    unimodular layout-transformation matrices [U], and the coefficient
    matrices of the homogeneous systems solved when determining the
    Data-to-Core mapping (paper, Section 5.2). *)

type t = int array array

val make : rows:int -> cols:int -> int -> t

val identity : int -> t

val rows : t -> int

val cols : t -> int
(** Number of columns; 0 for a matrix with no rows. *)

val of_rows : Vec.t list -> t
(** Builds a matrix from a list of rows.  Raises [Invalid_argument] if the
    rows do not all have the same dimension or the list is empty. *)

val row : t -> int -> Vec.t
(** [row m i] is a copy of the [i]-th row. *)

val col : t -> int -> Vec.t
(** [col m j] is a copy of the [j]-th column. *)

val copy : t -> t

val transpose : t -> t

val mul : t -> t -> t
(** Matrix product.  Raises [Invalid_argument] on dimension mismatch. *)

val mul_vec : t -> Vec.t -> Vec.t
(** [mul_vec m v] is [m·v]. *)

val drop_col : t -> int -> t
(** [drop_col m j] removes the [j]-th column: this builds the submatrix [B]
    of an access matrix [A] with the iteration-partition column removed
    (paper, Eq. 3). *)

val equal : t -> t -> bool

val det : t -> int
(** Determinant of a square matrix, computed exactly with the Bareiss
    fraction-free algorithm.  Raises [Invalid_argument] if not square. *)

val is_unimodular : t -> bool
(** A square integer matrix with determinant [±1]. *)

val inverse : t -> t
(** Exact inverse of a unimodular matrix (via the adjugate).  Raises
    [Invalid_argument] if the matrix is not square or not unimodular. *)

val swap_rows : t -> int -> int -> unit

val pp : Format.formatter -> t -> unit

val to_string : t -> string
