(** Smith Normal Form.

    For any integer matrix [m] there are unimodular [u, v] with
    [u·m·v = s] diagonal and each diagonal entry dividing the next.  The
    form underlies the lattice facts the layout machinery relies on — a
    primitive vector extends to a unimodular basis, the kernel of an
    integer matrix is a direct summand — and the test suite uses it to
    cross-validate {!Gauss} and {!Unimodular}. *)

val decompose : Matrix.t -> Matrix.t * Matrix.t * Matrix.t
(** [decompose m] is [(u, s, v)] with [u·m·v = s], [u] and [v] unimodular
    and [s] in Smith normal form (non-negative diagonal, each entry
    dividing the next). *)

val diagonal : Matrix.t -> int list
(** The invariant factors (nonzero diagonal of the Smith form). *)

val rank : Matrix.t -> int
(** Rank over the rationals = number of nonzero invariant factors. *)
