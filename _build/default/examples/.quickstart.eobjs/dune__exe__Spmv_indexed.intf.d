examples/spmv_indexed.mli:
