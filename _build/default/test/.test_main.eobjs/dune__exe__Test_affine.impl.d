test/test_affine.ml: Affine Alcotest Array Fmt Fun List Printf QCheck QCheck_alcotest
