(* Page interleaving and OS page placement (Sections 5.3 and 6.3).

   Under page interleaving the OS decides which controller each page
   lands on.  This example compares, on the apsi stencil:

   - the hardware default (frames handed out in allocation order),
   - the first-touch policy (page goes to the first toucher's cluster),
   - the paper's compiler/OS cooperation: the transformed layout plus
     madvise-style controller hints honoured by the allocator.

     dune exec examples/page_placement.exe *)

let () =
  let app = Workloads.Suite.by_name "apsi" in
  let program = Workloads.App.program app in
  let base =
    Sim.Config.with_interleaving (Sim.Config.scaled ())
      Dram.Address_map.Page_interleaved
  in
  let run ?(optimized = false) policy =
    Sim.Runner.run
      { base with Sim.Config.page_policy = policy }
      ~optimized ~warmup_phases:app.Workloads.App.warmup_nests program
  in
  let hw = run Sim.Config.Hardware in
  let ft = run Sim.Config.First_touch in
  let ours = run ~optimized:true Sim.Config.Mc_aware in
  let show name (r : Sim.Engine.result) =
    Printf.printf
      "  %-28s exec %9d cycles   off-chip net %6.1f cyc   pages %d (fallbacks %d)\n"
      name r.Sim.Engine.measured_time
      (Sim.Stats.avg_offchip_net r.Sim.Engine.stats)
      r.Sim.Engine.pages_allocated
      ((Sim.Stats.page_fallbacks) r.Sim.Engine.stats)
  in
  Printf.printf "apsi under page interleaving:\n";
  show "hardware interleaving" hw;
  show "first-touch" ft;
  show "layout pass + MC-aware OS" ours;
  let vs a b =
    100.
    *. (1.
       -. float_of_int (b : Sim.Engine.result).Sim.Engine.measured_time
          /. float_of_int (a : Sim.Engine.result).Sim.Engine.measured_time)
  in
  Printf.printf "\nours vs hardware: %.1f%%   ours vs first-touch: %.1f%%\n"
    (vs hw ours) (vs ft ours);
  Printf.printf
    "(apsi initializes its grids column-parallel, so first-touch places\n\
     most pages on the wrong controller — Section 6.3)\n"
