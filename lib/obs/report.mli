(** Self-contained run reports from stats-JSON documents.

    [simulate --stats-json] (and each sweep job) writes one JSON document
    per run; this module turns such a document — plus, optionally, the
    compiler's [--diag-json] output — into a report a human reads:
    headline counters, the off-chip attribution table, the mesh and
    bank-pressure heatmaps, and the candidate-mapping cost table the
    compiler's C002 note records.  Rendered as GitHub-flavoured markdown
    or as a single self-contained HTML page (no external assets), by
    [bin/report]. *)

type item =
  | Text of string  (** a paragraph *)
  | Pre of string  (** preformatted block (tables, ASCII heatmaps) *)
  | Table of { header : string list; rows : string list list }

type section = { title : string; items : item list }

val bank_heat : int array array -> string
(** ASCII bank-pressure grid: one row per controller, one shade per bank
    (normalized to the hottest bank), with per-controller totals — the
    rendering of {!Attr.bank_load}. *)

val build : ?diags:Json.t -> Json.t -> (section list, string) result
(** Structures one stats-JSON document into report sections.  A platform
    header (mesh geometry, hierarchy or "flat", mapping, placement and a
    short geometry digest) leads when the document embeds its config.
    Other sections appear only when the document carries their data:
    attribution and heatmaps require a run recorded with attribution on;
    the mapping
    cost table requires [diags] (the [--diag-json] array) with a C002
    note, and the placement-search section ([occ --mapping search])
    its C004 notes — summary plus per-step trajectory.  [Error] when
    the document is not a stats-JSON object. *)

val to_markdown : title:string -> section list -> string

val to_html : title:string -> section list -> string
(** One self-contained page: inline CSS only, preformatted blocks kept
    monospace so the ASCII heatmaps line up. *)
