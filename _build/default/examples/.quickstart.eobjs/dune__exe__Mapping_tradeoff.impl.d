examples/mapping_tradeoff.ml: Array Core List Printf Sim Workloads
