(** Determining the Data-to-Core mapping (Section 5.2).

    For each array, find the row vector [gᵥ] such that iterations in the
    same parallel chunk touch data elements on the same hyperplane
    [gᵥ·a = c]: any two iterations that agree on the parallel iterator
    must map to the same hyperplane, which reduces to the homogeneous
    system [Bᵀ·gᵥᵀ = 0] (Eq. 3) with [B] the access matrix minus the
    iteration-partition column.  With several references, submatrices are
    weighted by trip count and the heaviest solvable system wins. *)

type weighted_ref = {
  access : Affine.Access.t;
  u : int;  (** iteration-partition dimension of this reference's nest *)
  weight : int;  (** estimated dynamic occurrences *)
}

type solution = {
  g : Affine.Vec.t;  (** the data-partition row (primitive) *)
  u_matrix : Affine.Matrix.t;  (** unimodular completion, row [v] = [g] *)
  satisfied_weight : int;
      (** total weight of references whose system [g] also solves *)
  total_weight : int;
}

val constraints_of : Affine.Access.t -> u:int -> Affine.Vec.t list
(** The rows of [Bᵀ]: the columns of the access matrix other than the
    [u]-th.  [gᵥ] must be orthogonal to each. *)

val solve_single : Affine.Access.t -> u:int -> v:int -> Affine.Vec.t option
(** [gᵥ] for one reference, or [None] when only the trivial solution
    exists.  With no constraints (depth-1 nests) the unit vector along
    [v] is returned, keeping the original layout. *)

val satisfies : Affine.Vec.t -> Affine.Access.t -> u:int -> bool
(** Does [g] solve this reference's system? *)

val solve : refs:weighted_ref list -> v:int -> solution option
(** The full multiple-references procedure: group by submatrix, weight,
    solve the heaviest solvable group, complete to a unimodular matrix.
    [None] when no group has a nontrivial solution (array left alone). *)
