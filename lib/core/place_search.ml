(* Deterministic local search over the joint platform space: MC site sets
   (from a Noc.Placement pool) x cluster shapes x controller counts under
   the MC budget.  The objective is the calibrated mapping cost model; the
   simulator stays the validation oracle (see EXPERIMENTS.md).

   Determinism is load-bearing: the same seed must emit a byte-identical
   platform JSON on every OCaml version CI runs, so randomness comes from
   a hand-rolled LCG (Random.State's algorithm changed between 4.x and
   5.x) and every enumeration (starts, neighborhoods, tie-breaks) has a
   fixed order. *)

type params = {
  pool : Noc.Placement.pool;
  seed : int;
  restarts : int;  (** random starts per cluster shape, beyond the preset *)
}

let default_params = { pool = Noc.Placement.Perimeter; seed = 0; restarts = 3 }

type outcome = {
  platform : Platform.t;
  cost : float;
  preset_best : Mapping_select.scored;
  scored_presets : Mapping_select.scored list;
  trajectory : string list;
  evaluations : int;
}

(* --- seeded PRNG -------------------------------------------------------- *)

(* The 48-bit lrand48 LCG; the state mask keeps it non-negative (and well
   inside OCaml's 63-bit int on every platform), so [mod] below never
   sees a negative operand. *)
let lcg_next st =
  st := ((!st * 0x5DEECE66D) + 0xB) land 0xFFFFFFFFFFFF;
  !st

(* discard the weak low-order bits *)
let rand_below st n = lcg_next st lsr 16 mod n

(* A uniformly random [n]-subset of [pool] via a partial Fisher-Yates
   shuffle of the index array. *)
let random_subset st ~pool ~n =
  let len = Array.length pool in
  let idx = Array.init len Fun.id in
  for i = 0 to n - 1 do
    let j = i + rand_below st (len - i) in
    let t = idx.(i) in
    idx.(i) <- idx.(j);
    idx.(j) <- t
  done;
  Array.init n (fun i -> pool.(idx.(i)))

(* --- identity ----------------------------------------------------------- *)

(* Short deterministic digest of cluster geometry + ordered sites.  The
   sweep cache and [Sim.Config.to_json] identify a placement by *name*
   only, so a searched placement's name must pin down its sites. *)
let digest (cluster : Cluster.t) sites =
  let h = ref 5381 in
  let add v = h := ((!h * 33) + v) land 0xFFFFFF in
  add cluster.Cluster.cx;
  add cluster.Cluster.cy;
  add cluster.Cluster.k;
  Array.iter
    (fun (c : Noc.Coord.t) ->
      add c.Noc.Coord.x;
      add c.Noc.Coord.y)
    sites;
  Printf.sprintf "%06x" !h

let compare_sites a b =
  let n = Array.length a and m = Array.length b in
  if n <> m then compare n m
  else
    let rec go i =
      if i = n then 0
      else
        let c = compare (a.(i).Noc.Coord.x, a.(i).Noc.Coord.y)
                  (b.(i).Noc.Coord.x, b.(i).Noc.Coord.y) in
        if c <> 0 then c else go (i + 1)
    in
    go 0

(* --- descent ------------------------------------------------------------ *)

let centroids_of cluster =
  Array.init (Cluster.num_mcs cluster) (fun m ->
      Cluster.centroid_of_cluster cluster (Cluster.cluster_of_mc cluster m))

let cost_of topo cluster ~bank_pressure ~evaluations sites =
  incr evaluations;
  match Noc.Placement.of_coords_result topo "search" sites with
  | Error _ -> infinity
  | Ok p -> Mapping_select.estimated_cost topo cluster p ~bank_pressure

(* Best-improvement descent: evaluate the full neighborhood, take the
   strictly cheapest successor (first in enumeration order on ties), stop
   at a local minimum. *)
let descend topo cluster ~pool_sites ~bank_pressure ~evaluations ~trajectory
    ~label sites0 =
  let cost s = cost_of topo cluster ~bank_pressure ~evaluations s in
  let sites = ref sites0 and current = ref (cost sites0) in
  trajectory := Printf.sprintf "%s: start cost=%.1f" label !current :: !trajectory;
  let improved = ref true in
  while !improved do
    improved := false;
    let best = ref None in
    List.iter
      (fun move ->
        match Noc.Placement.apply_move_result topo ~sites:!sites move with
        | Error _ -> ()
        | Ok next ->
          let c = cost next in
          let better =
            match !best with None -> c < !current -. 1e-9 | Some (bc, _, _) -> c < bc -. 1e-9
          in
          if better then best := Some (c, next, move))
      (Noc.Placement.neighborhood_on topo ~pool:pool_sites ~sites:!sites);
    match !best with
    | Some (c, next, move) ->
      sites := next;
      current := c;
      improved := true;
      trajectory :=
        Format.asprintf "%s: %a cost=%.1f" label Noc.Placement.pp_move move c
        :: !trajectory
    | None -> ()
  done;
  (!sites, !current)

(* --- search ------------------------------------------------------------- *)

let coords_of_placement topo (p : Noc.Placement.t) =
  Array.map (Noc.Topology.coord_of_node topo) p.Noc.Placement.nodes

let search ?(params = default_params) ~bank_pressure (base : Platform.t) =
  let topo = base.Platform.topo in
  let presets = Platform.candidates base in
  let scored_presets =
    Mapping_select.score topo
      ~candidates:
        (List.map
           (fun (p : Platform.t) -> (p.Platform.cluster, p.Platform.placement))
           presets)
      ~bank_pressure
  in
  match scored_presets with
  | [] -> Error "Place_search: platform admits no candidates"
  | preset_best :: _ ->
    let pool_sites = Noc.Placement.pool_sites topo params.pool in
    let evaluations = ref 0 in
    let trajectory = ref [] in
    let st = ref ((params.seed lxor 0x5DEECE66D) land 0xFFFFFFFFFFFF) in
    let best = ref None in
    let consider cluster sites cost =
      let replace =
        match !best with
        | None -> true
        | Some (bc, (bcl : Cluster.t), bs) ->
          cost < bc -. 1e-9
          || (Float.abs (cost -. bc) <= 1e-9
              && (compare cluster.Cluster.name bcl.Cluster.name, compare_sites sites bs)
                 < (0, 0))
      in
      if replace then best := Some (cost, cluster, sites)
    in
    List.iter
      (fun (p : Platform.t) ->
        let cluster = p.Platform.cluster in
        let n = Cluster.num_mcs cluster in
        let centroids = centroids_of cluster in
        (* start 0: the preset's own placement — the searched minimum can
           therefore never exceed the preset minimum *)
        let preset_sites = coords_of_placement topo p.Platform.placement in
        let starts = ref [ ("preset " ^ p.Platform.placement.Noc.Placement.name, preset_sites) ] in
        if Array.length pool_sites >= n then
          for r = 1 to params.restarts do
            let subset = random_subset st ~pool:pool_sites ~n in
            (* order the random subset against the cluster centroids so the
               MC-index <-> cluster-index correspondence starts sensible *)
            match
              Noc.Placement.assign_result topo ~name:"restart" ~sites:subset
                ~centroids
            with
            | Error _ -> ()
            | Ok pl ->
              starts :=
                (Printf.sprintf "restart %d" r, coords_of_placement topo pl)
                :: !starts
          done;
        List.iter
          (fun (start_name, sites0) ->
            let label =
              Printf.sprintf "%s/%s" cluster.Cluster.name start_name
            in
            let sites, cost =
              descend topo cluster ~pool_sites ~bank_pressure ~evaluations
                ~trajectory ~label sites0
            in
            consider cluster sites cost)
          (List.rev !starts))
      presets;
    (match !best with
     | None -> Error "Place_search: no feasible placement found"
     | Some (cost, cluster, sites) ->
       let tag = digest cluster sites in
       let placement_name = Printf.sprintf "searched-%s" tag in
       (match Noc.Placement.of_coords_result topo placement_name sites with
        | Error e -> Error e
        | Ok placement ->
          (match
             Platform.make_result ~placement
               ~interleaving:base.Platform.interleaving
               ~line_bytes:base.Platform.line_bytes
               ~page_bytes:base.Platform.page_bytes
               ~elem_bytes:base.Platform.elem_bytes
               ~banks_per_mc:base.Platform.banks_per_mc
               ~channels_per_mc:base.Platform.channels_per_mc
               ~name:(Printf.sprintf "%s-searched-%s" base.Platform.name tag)
               ~topo ~cluster ()
           with
           | Error e -> Error e
           | Ok platform ->
             Ok
               {
                 platform;
                 cost;
                 preset_best;
                 scored_presets;
                 trajectory = List.rev !trajectory;
                 evaluations = !evaluations;
               })))
