lib/workloads/app.mli: Lang
