(* gen_golden — regenerate the committed golden snapshots under
   test/golden/.

     dune exec test/gen_golden.exe -- golden/seed0_stats.json

   The seed-0 stats golden pins the simulator's observable behavior: the
   engine refactors (event heap, request pool, route memoization) must
   keep it byte-identical.  Regenerating it is legitimate only when a
   change intentionally alters the simulated timing model — never to
   absorb an accidental behavior change; say why in the commit that
   updates it. *)

let small_src =
  {|
param N = 64;
array A[N][N];
array B[N][N];
parfor i = 1 to N-2 { for j = 0 to N-1 { A[i][j] = B[i][j] + B[i-1][j] + B[i+1][j]; } }
|}

let () =
  let cfg = Sim.Config.scaled () in
  let program = Lang.Parser.parse small_src in
  let r = Sim.Runner.run cfg ~optimized:false program in
  let doc = Sweep.Exec.result_json ~app:"golden-small" cfg r in
  let out = if Array.length Sys.argv > 1 then Some Sys.argv.(1) else None in
  match out with
  | Some path ->
    let oc = open_out path in
    Obs.Json.to_channel oc doc;
    close_out oc;
    Printf.printf "golden written to %s\n" path
  | None -> print_string (Obs.Json.to_string doc)
