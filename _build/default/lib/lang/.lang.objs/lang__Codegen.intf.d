lib/lang/codegen.mli: Ast
