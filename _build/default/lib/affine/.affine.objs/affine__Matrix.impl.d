lib/affine/matrix.ml: Array Format List Vec
