test/test_misc.ml: Affine Alcotest Array Astring Core Dram Filename Format Lang List Noc Sim Sys
