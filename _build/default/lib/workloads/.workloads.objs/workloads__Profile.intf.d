lib/workloads/profile.mli: Affine App Lang
