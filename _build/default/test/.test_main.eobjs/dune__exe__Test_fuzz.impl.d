test/test_fuzz.ml: Array Buffer Core Format Hashtbl Lang List Printf QCheck QCheck_alcotest Sim String
