lib/noc/topology.mli: Coord
