(** ASCII rendering of the simulated platform.

    Draws the mesh with each node's cluster, controller attachment points
    and the cluster→controller assignment — the pictures of Figs. 1, 8,
    26 and 27 as terminal output.  Used by [simulate --map] and the
    documentation. *)

val render : Config.t -> string
(** A multi-line drawing: one cell per node showing its cluster index,
    [*m] marking the node where controller [m] attaches, plus a legend
    with each cluster's controllers and the average
    distance-to-controller. *)

val render_heat : Config.t -> int array -> string
(** [render_heat cfg values] draws a per-node heat map (8 shades) of the
    given per-node values — used for Fig. 13-style request maps. *)
