(** Compiler selection among candidate L2-to-MC mappings (Section 4).

    Fully automatic derivation of the best mapping is impractical, but
    given a candidate set the compiler can weigh (1) distance-to-MC,
    (2) memory-level parallelism and (3) how thin the fixed channel budget
    is spread over active controllers, and pick the most effective
    mapping — the analysis that favours M2 over M1 for fma3d and
    minighost, and the Fig. 27 8/16-MC configurations once the profiled
    bank pressure is high enough to pay for them. *)

type metrics = {
  avg_distance : float;
      (** mean hops from a core to the controllers of its cluster *)
  avg_chiplet_hops : float;
      (** mean chiplet-boundary crossings on those paths; [0.] on a flat
          mesh *)
  mcs_per_cluster : int;  (** [k] — the MLP a cluster enjoys *)
}

val evaluate : Noc.Topology.t -> Cluster.t -> Noc.Placement.t -> metrics

val estimated_cost :
  Noc.Topology.t ->
  Cluster.t ->
  Noc.Placement.t ->
  bank_pressure:float ->
  float
(** Expected off-chip round-trip cost under the mapping:
    [2·(avg_distance·per_hop + avg_chiplet_hops·(link_latency − per_hop))
    + queue + transfer] — on a flat mesh the chiplet term vanishes and
    the historical formula is unchanged.  The queueing term
    scales with the profiled [bank_pressure] (time-averaged waiting
    requests across the bank queues under the default mapping) divided
    over all [num_mcs·k] controllers a request can queue at, and the
    transfer term grows with the number of active controllers (the
    package's channel budget is fixed, so each of [N] controllers gets
    [1/N] of it). *)

type scored = {
  cluster : Cluster.t;
  placement : Noc.Placement.t;
  cost : float;
}

val score :
  Noc.Topology.t ->
  candidates:(Cluster.t * Noc.Placement.t) list ->
  bank_pressure:float ->
  scored list
(** Every candidate with its {!estimated_cost}, cheapest first; exact-cost
    ties break on the cluster name, so the result is invariant under
    permutation of the candidate list. *)

val choose_opt :
  Noc.Topology.t ->
  candidates:(Cluster.t * Noc.Placement.t) list ->
  bank_pressure:float ->
  (Cluster.t * Noc.Placement.t) option
(** Head of {!score}; [None] when the candidate list is empty. *)

val bank_pressure_of_snapshot :
  Obs.Metrics.snapshot -> (float, string) result
(** Derives the calibrated bank pressure from a profiled run's metrics:
    [mem.queue_cycles / sim.finish_time], i.e. (by Little's law) the
    time-averaged number of requests waiting in bank queues.  The 1.0
    default the pipeline uses corresponds to roughly one perpetually
    queued request platform-wide. *)

val bank_pressure_of_stats : Obs.Json.t -> (float, string) result
(** {!bank_pressure_of_snapshot} on a stats document: accepts either a
    full [simulate --stats-json] / sweep result file (snapshot under
    [.stats.metrics]) or a bare metrics snapshot. *)
