(** Memory-controller placements.

    A placement assigns each MC an attachment node in the mesh.  The paper
    evaluates the default corner placement (Fig. 8a, "P1") and two
    alternatives enabled by flip-chip packaging (Fig. 26, "P2"/"P3"), plus
    8- and 16-controller variants (Fig. 27).

    Fallible constructors are Result-first: a site set that does not fit
    the mesh is a value error, never an exception. *)

type t = { name : string; nodes : int array }
(** [nodes.(m)] is the mesh node MC [m] attaches to.  MC indices are
    meaningful: the physical-address interleaving maps line/page [i] to MC
    [i mod count], and the layout customization relies on cluster [j]
    being served by MCs [j·k .. j·k+k-1] (see {!Core.Cluster}). *)

val count : t -> int

val of_coords_result : Topology.t -> string -> Coord.t array -> (t, string) result
(** Places MC [m] at [coords.(m)]; an off-mesh site is a value error. *)

val corners : Topology.t -> t
(** P1: one MC at each corner, in the order NW, NE, SW, SE — matching the
    cluster enumeration of Fig. 8a (MC1 top-left … MC4 bottom-right). *)

val edge_centers : Topology.t -> t
(** P2: MCs at the midpoints of the four edges (top, left, right, bottom).
    Lower average distance-to-controller than the corners. *)

val top_bottom : Topology.t -> t
(** P3: MCs spread along the top and bottom edges. *)

val ring_result : Topology.t -> count:int -> (t, string) result
(** [ring_result t ~count] spreads [count] MCs evenly around the mesh
    perimeter, starting at the NW corner and proceeding clockwise; used for
    the 8- and 16-MC configurations of Fig. 27.  More MCs than perimeter
    nodes is a value error. *)

(** {2 Candidate site pools}

    The placement search picks MC attachment sites from a pool.
    [Perimeter] is the paper's packaging assumption (controllers reach
    pins through edge routers); [Flip_chip] additionally admits interior
    nodes, the relaxation that makes the Fig. 26 P2/P3-style layouts one
    corner of a larger space rather than hand-picked alternatives. *)

type pool = Perimeter | Flip_chip

val pool_to_string : pool -> string

val pool_of_string : string -> (pool, string) result
(** ["perimeter"] or ["flip-chip"]; anything else is a value error. *)

val perimeter_sites : Topology.t -> Coord.t array
(** All perimeter nodes, clockwise from the NW corner. *)

val interior_sites : Topology.t -> Coord.t array
(** All non-perimeter nodes, row-major. *)

val pool_sites : Topology.t -> pool -> Coord.t array
(** The candidate sites of a pool, in a deterministic order (perimeter
    clockwise, then — for [Flip_chip] — interior row-major). *)

val assign_result :
  Topology.t ->
  name:string ->
  sites:Coord.t array ->
  centroids:Coord.t array ->
  (t, string) result
(** [assign_result t ~name ~sites ~centroids] places MC [j] at the unused
    site closest to [centroids.(j)] (greedy in MC-index order, then 2-opt
    refined).  This aligns MC indices with cluster indices for any site
    set — corners, edge centers, rings — which the interleaved layout
    requires.  Fewer sites than centroids is a value error. *)

val greedy_assign_result :
  Topology.t ->
  name:string ->
  sites:Coord.t array ->
  centroids:Coord.t array ->
  (t, string) result
(** The greedy seed of {!assign_result} without the 2-opt refinement:
    MC [j] takes the unused site nearest [centroids.(j)], in MC-index
    order.  Exposed so the refinement's improvement is testable —
    {!assign_result} never ends with a larger total centroid distance. *)

val for_centroids_result :
  Topology.t -> name:string -> centroids:Coord.t array -> (t, string) result
(** [for_centroids_result t ~name ~centroids] places one MC per centroid at
    the free perimeter node closest to it (greedy, in MC-index order).  Used
    to attach MC [j] near cluster [j] for arbitrary cluster grids,
    preserving the index correspondence the interleaved layout relies on. *)

val centroid_distance : sites:Coord.t array -> centroids:Coord.t array -> int
(** Total Manhattan distance from each centroid [j] to its assigned site
    [sites.(j)] — the quantity greedy assignment and 2-opt minimize. *)

(** {2 Neighborhood moves}

    A search state is an ordered site array — MC [m] attached at
    [sites.(m)], so the MC-index ↔ cluster-index correspondence the
    interleaved layout relies on is explicit in the state.  [Swap]
    generalizes the internal 2-opt refinement to an operator; [Relocate]
    extends the neighborhood to unused candidate sites of a pool.  All
    constructors are Result-first: an illegal move is a value error,
    never a silent repair. *)

type move =
  | Relocate of { mc : int; site : Coord.t }
      (** move MC [mc] to the unoccupied [site] *)
  | Swap of { a : int; b : int }  (** exchange the sites of MCs [a], [b] *)

val pp_move : Format.formatter -> move -> unit

val apply_move_result :
  Topology.t -> sites:Coord.t array -> move -> (Coord.t array, string) result
(** The successor state.  Errors: MC index out of range, a relocation
    target off the mesh or already occupied, or a self-swap. *)

val neighborhood : pool:Coord.t array -> sites:Coord.t array -> move list
(** Every legal move from [sites]: relocations of each MC to each
    unoccupied pool site (MC-index major, pool order minor), then all
    pairwise swaps ([a < b]).  Deterministic order, so a first- or
    best-improvement descent is reproducible. *)

val sites_in_chiplet : Topology.t -> pool -> chiplet:int -> Coord.t array
(** The pool sites lying in one chiplet, in pool order — a chiplet's
    local site pool.  On a flat mesh, chiplet [0] holds the whole pool. *)

val move_crosses_chiplet :
  Topology.t -> sites:Coord.t array -> move -> bool
(** Whether the move takes an MC across a chiplet boundary: a relocation
    to a site in another chiplet, or a swap of MCs sitting in different
    chiplets.  Always [false] on a flat mesh. *)

val neighborhood_on :
  Topology.t -> pool:Coord.t array -> sites:Coord.t array -> move list
(** {!neighborhood}, reordered for the topology: moves confined to a
    chiplet's site pool first (relocations within the MC's own chiplet,
    swaps of same-chiplet MCs — each group in flat enumeration order),
    then the moves that explicitly cross a boundary.  On a flat mesh this
    is exactly {!neighborhood}. *)

val nearest : t -> Topology.t -> int -> int
(** [nearest p topo node] is the MC whose attachment node is closest to
    [node] (ties broken towards the lower MC index) — what the paper's
    "optimal scheme" assumes every request enjoys. *)

val mc_node : t -> int -> int

val avg_distance : t -> Topology.t -> float
(** Mean over all nodes of the distance to the nearest MC: the static
    figure of merit that favours P2 over P1/P3. *)
