(* occ — the off-chip access localization compiler driver.

   Parses a mini-language program (a file, or one of the built-in
   application models), runs it through the staged pass pipeline (parse,
   check, analyze, solve, mapping, customize, rewrite, verify, codegen)
   for the requested platform, and prints the transformed program
   together with the per-array report.

     occ examples/jacobi.mc
     occ --app apsi --l2 shared --report
     occ --app hpccg --interleave page --layouts
     occ examples/jacobi.mc --emit solve
     occ examples/jacobi.mc --diag-json diags.json
     occ --app apsi --mapping auto --platform mesh8x8-mc8 \
         --calibrate stats.json --timings

   Exit codes: 0 success, 1 user error (bad flags, diagnostics of error
   severity), 2 internal error. *)

open Cmdliner

let read_source file app =
  match (file, app) with
  | Some f, None -> (
    match
      let ic = open_in_bin f in
      let src = really_input_string ic (in_channel_length ic) in
      close_in ic;
      src
    with
    | src -> Ok (Core.Pipeline.Source { file = f; src }, Some src, None)
    | exception Sys_error e -> Error e)
  | None, Some name -> (
    match Workloads.Suite.by_name name with
    | app -> Ok (Core.Pipeline.Program (Workloads.App.program app), None, Some app)
    | exception Not_found ->
      Error
        (Printf.sprintf "unknown application %S (known: %s)" name
           (String.concat ", " Workloads.Suite.names)))
  | Some _, Some _ -> Error "give either a file or --app, not both"
  | None, None -> Error "give a source file or --app NAME"

let read_json path =
  match
    let ic = open_in_bin path in
    let s = really_input_string ic (in_channel_length ic) in
    close_in ic;
    s
  with
  | s -> Obs.Json.of_string s
  | exception Sys_error e -> Error e

let bank_pressure_of_file path =
  Result.bind (read_json path) Core.Mapping_select.bank_pressure_of_stats

let why_kept_to_string = function
  | Core.Transform.Index_array -> "index array (never transformed)"
  | Core.Transform.No_parallel_reference -> "no parallel affine reference"
  | Core.Transform.No_solution -> "only the trivial mapping exists"
  | Core.Transform.Bad_approximation f ->
    Printf.sprintf "indexed-access fit %.2f above threshold" f

(* --explain: one block per array saying what Algorithm 1 decided and why,
   with the reference weight the chosen layout localizes. *)
let explain_report (rep : Core.Transform.report) =
  List.iter
    (fun (d : Core.Transform.decision) ->
      let name = d.Core.Transform.info.Lang.Analysis.decl.Lang.Ast.name in
      let extents = d.Core.Transform.info.Lang.Analysis.extents in
      let dims =
        String.concat "x" (Array.to_list (Array.map string_of_int extents))
      in
      let pct =
        if d.Core.Transform.total_weight = 0 then 0.
        else
          100.
          *. float_of_int d.Core.Transform.satisfied_weight
          /. float_of_int d.Core.Transform.total_weight
      in
      Format.printf "// %-10s [%s] " name dims;
      (match d.Core.Transform.kept with
      | None ->
        Format.printf "OPTIMIZED  refs satisfied %d/%d (%.0f%%)@,//   %a@."
          d.Core.Transform.satisfied_weight d.Core.Transform.total_weight pct
          Core.Layout.pp d.Core.Transform.layout
      | Some why ->
        Format.printf "kept       %s@." (why_kept_to_string why)))
    rep.Core.Transform.decisions

let print_diags ?src diags =
  List.iter
    (fun d -> Format.eprintf "%a@." (Lang.Diag.pp ?src) d)
    diags

let write_diag_json ?src path diags =
  let oc = if String.equal path "-" then stdout else open_out path in
  Obs.Json.to_channel oc (Lang.Diag.list_to_json ?src diags);
  output_char oc '\n';
  if not (String.equal path "-") then close_out oc

let run file app platform l2 interleave mapping width height calibrate
    search_out search_pool search_seed report layouts explain timings emit_c
    emit verify diag_json =
  Cli.guard ~name:"occ" @@ fun () ->
  let emit_stage =
    match emit with
    | None -> Ok None
    | Some s -> (
      match Core.Pipeline.stage_of_string s with
      | Some st -> Ok (Some st)
      | None ->
        Error
          (Printf.sprintf "unknown stage %S (stages: %s)" s
             (String.concat ", " Core.Pipeline.stage_names)))
  in
  match emit_stage with
  | Error e ->
    prerr_endline ("occ: " ^ e);
    Cli.user_error
  | Ok emit_stage -> (
  match read_source file app with
  | Error e ->
    prerr_endline ("occ: " ^ e);
    Cli.user_error
  | Ok (source, src, app) -> (
    (* --mapping auto: let the pipeline's cost model choose among every
       mapping the platform can realize; the platform keeps its own
       mapping while the candidates are enumerated from it.
       --mapping search: additionally run the placement search and let
       the searched machine compete with the presets. *)
    let auto = String.equal mapping "auto" in
    let searching = String.equal mapping "search" in
    let cfg_result =
      Sim.Config.build ~scaled:false ~platform ~l2 ~interleave
        ~mapping:(if auto || searching then "" else mapping)
        ~width ~height ()
    in
    let pressure_result =
      match calibrate with
      | None -> Ok 1.0
      | Some path -> (
        match bank_pressure_of_file path with
        | Ok _ as r -> r
        | Error e -> Error (Printf.sprintf "--calibrate %s: %s" path e))
    in
    let search_result =
      match Noc.Placement.pool_of_string search_pool with
      | Error _ as e -> e
      | Ok pool ->
        if searching then
          Ok
            (Some
               {
                 Core.Place_search.default_params with
                 Core.Place_search.pool;
                 seed = search_seed;
               })
        else if search_out <> None then
          Error "--search-out requires --mapping search"
        else Ok None
    in
    match (cfg_result, pressure_result, search_result) with
    | Error e, _, _ | _, Error e, _ | _, _, Error e ->
      prerr_endline ("occ: " ^ e);
      Cli.user_error
    | Ok cfg, Ok bank_pressure, Ok search ->
      let ccfg = Sim.Config.customize_config cfg in
      let profile =
        Option.map
          (fun a ->
            let analysis = Lang.Analysis.analyze (Workloads.App.program a) in
            fun arr -> Workloads.Profile.for_transform a analysis arr)
          app
      in
      let result =
        Core.Pipeline.compile ~verify ?profile ~bank_pressure
          ?platform:
            (if auto || searching then Some (Sim.Config.platform cfg) else None)
          ?search
          ?codegen:(if emit_c <> None then Some "kernel" else None)
          ~cfg:ccfg source
      in
      (match (search_out, result.Core.Pipeline.artifacts.Core.Pipeline.search) with
      | Some path, Some outcome -> (
        try
          let oc = open_out path in
          Obs.Json.to_channel oc
            (Core.Platform.to_json outcome.Core.Place_search.platform);
          output_char oc '\n';
          close_out oc;
          Format.eprintf "// searched platform written to %s@." path
        with Sys_error e ->
          Printf.eprintf "occ: cannot write searched platform: %s\n" e)
      | Some _, None ->
        prerr_endline "occ: the placement search produced no platform"
      | None, _ -> ());
      print_diags ?src result.Core.Pipeline.diags;
      (match diag_json with
      | Some path -> (
        try write_diag_json ?src path result.Core.Pipeline.diags
        with Sys_error e ->
          Printf.eprintf "occ: cannot write diagnostics: %s\n" e)
      | None -> ());
      let rep = result.Core.Pipeline.artifacts.Core.Pipeline.report in
      let transformed =
        result.Core.Pipeline.artifacts.Core.Pipeline.transformed
      in
      (match emit_stage with
      | Some st -> (
        match Core.Pipeline.emit result st with
        | Some dump -> print_endline dump
        | None -> prerr_endline "occ: the pipeline did not reach that stage")
      | None ->
        Option.iter
          (fun rep ->
            if report then Format.printf "// %a@." Core.Transform.pp_report rep;
            if explain then explain_report rep;
            if layouts then
              List.iter
                (fun d ->
                  if d.Core.Transform.optimized then
                    Format.printf "// %a@." Core.Layout.pp
                      d.Core.Transform.layout)
                rep.Core.Transform.decisions)
          rep;
        (match (emit_c, result.Core.Pipeline.artifacts.Core.Pipeline.c_code) with
        | Some path, Some c -> (
          try
            let oc = open_out path in
            output_string oc c;
            close_out oc;
            Format.printf "// C code written to %s@." path
          with Sys_error e ->
            Printf.eprintf "occ: cannot write C output: %s\n" e)
        | _ -> ());
        Option.iter
          (fun t -> Format.printf "%a@." Lang.Ast.pp_program t)
          transformed);
      if timings then begin
        Format.printf "%a@." Obs.Phase_timer.pp result.Core.Pipeline.timer;
        Format.printf "bank pressure: %.3f%s@." bank_pressure
          (match calibrate with
          | Some path -> Printf.sprintf " (calibrated from %s)" path
          | None -> " (default)");
        Option.iter
          (fun scored ->
            List.iter
              (fun (s : Core.Mapping_select.scored) ->
                Format.printf "  candidate %-8s estimated cost %8.1f  (%s)@."
                  s.Core.Mapping_select.cluster.Core.Cluster.name
                  s.Core.Mapping_select.cost
                  s.Core.Mapping_select.placement.Noc.Placement.name)
              scored)
          result.Core.Pipeline.artifacts.Core.Pipeline.mapping_scores
      end;
      if result.Core.Pipeline.ok then Cli.ok else Cli.user_error))

let file_arg =
  Arg.(value & pos 0 (some file) None & info [] ~docv:"FILE" ~doc:"Source file.")

let app_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "app" ] ~docv:"NAME" ~doc:"Use a built-in application model.")

let mapping =
  Arg.(
    value & opt string ""
    & info [ "mapping" ] ~docv:"MAP"
        ~doc:
          "L2-to-MC mapping: M1, M2, a controller count (8, 16), auto \
           to let the mapping-selection pass choose among every mapping \
           the platform can realize (M1, M2 and the 8/16-controller \
           configurations its controller budget admits) by estimated \
           cost, or search to additionally run the placement search \
           (deterministic seeded local search over MC sites, cluster \
           shapes and controller counts) and let the searched machine \
           compete with the presets.  Default: the platform's own \
           mapping.")

let calibrate =
  Arg.(
    value
    & opt (some string) None
    & info [ "calibrate" ] ~docv:"STATS.json"
        ~doc:
          "Calibrate the mapping-selection cost model from a profiled \
           run: STATS.json is a simulate --stats-json (or sweep result) \
           file, from which the bank pressure — time-averaged requests \
           waiting in bank queues, mem.queue_cycles / sim.finish_time — \
           is derived.  Default pressure: 1.0.")

let search_out =
  Arg.(
    value
    & opt (some string) None
    & info [ "search-out" ] ~docv:"PLATFORM.json"
        ~doc:
          "With --mapping search: write the searched platform as a JSON \
           file that simulate --platform, sweep specs and bench \
           --platform accept.  Byte-identical across runs with the same \
           seed.")

let search_pool =
  Arg.(
    value & opt string "perimeter"
    & info [ "search-pool" ] ~docv:"POOL"
        ~doc:
          "Candidate MC sites for the placement search: perimeter (the \
           paper's packaging assumption) or flip-chip (perimeter plus \
           interior nodes).")

let search_seed =
  Arg.(
    value & opt int 0
    & info [ "search-seed" ] ~docv:"N"
        ~doc:
          "Seed for the placement search's random restarts; the same \
           seed reproduces the search exactly.")

let report =
  Arg.(value & flag & info [ "report" ] ~doc:"Print the per-array report.")

let layouts =
  Arg.(value & flag & info [ "layouts" ] ~doc:"Print the chosen layouts.")

let explain =
  Arg.(
    value & flag
    & info [ "explain" ]
        ~doc:
          "Print, for every array, what Algorithm 1 decided and why: the \
           chosen layout and the reference weight it satisfies, or the \
           reason the array kept its original layout.")

let timings =
  Arg.(
    value & flag
    & info [ "timings" ] ~doc:"Print per-pass wall times.")

let emit_c =
  Arg.(
    value
    & opt (some string) None
    & info [ "emit-c" ] ~docv:"FILE"
        ~doc:"Also write the transformed program as C with OpenMP pragmas.")

let emit =
  Arg.(
    value
    & opt (some string) None
    & info [ "emit" ] ~docv:"STAGE"
        ~doc:
          "Print one pipeline stage's artifact instead of the default \
           output: ast, analysis, solve, mapping, report, transformed, or \
           c.")

let verify =
  Arg.(
    value
    & opt ~vopt:true (enum [ ("on", true); ("off", false) ]) true
    & info [ "verify" ] ~docv:"on|off"
        ~doc:
          "Run the inter-pass verifier (unimodularity, solution recheck, \
           home-table bijectivity, layout bounds, sampled semantic \
           equivalence, and — with --emit-c — the emitted-C access \
           replay).  On by default; --verify=off disables it.")

let diag_json =
  Arg.(
    value
    & opt (some string) None
    & info [ "diag-json" ] ~docv:"FILE"
        ~doc:
          "Write all diagnostics as a JSON array to FILE (- for stdout).")

let cmd =
  let doc = "compiler-guided off-chip access localization (PLDI 2015)" in
  Cmd.v
    (Cmd.info "occ" ~doc)
    Term.(
      const run $ file_arg $ app_arg $ Cli.platform $ Cli.l2 $ Cli.interleave
      $ mapping $ Cli.width $ Cli.height $ calibrate $ search_out
      $ search_pool $ search_seed $ report $ layouts $ explain $ timings
      $ emit_c $ emit $ verify $ diag_json)

let () = exit (Cmd.eval' cmd)
