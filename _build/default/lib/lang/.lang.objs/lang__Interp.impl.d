lib/lang/interp.ml: Array Ast Hashtbl List Option String
