type config = { per_hop_latency : int; link_bytes : int }

let default_config = { per_hop_latency = 4; link_bytes = 16 }

type t = {
  topo : Topology.t;
  config : config;
  free_at : int array;  (** per link-id: earliest cycle it can accept *)
  link_busy : int array;  (** per link-id: cycles reserved so far *)
  mutable busy : int;
}

let create ?(config = default_config) topo =
  let links = Topology.num_link_ids topo in
  {
    topo;
    config;
    free_at = Array.make links 0;
    link_busy = Array.make links 0;
    busy = 0;
  }

let send ?on_hop net ~now ~src ~dst ~bytes =
  if src = dst then (now, 0, 0)
  else begin
    let serialization =
      max 1 ((bytes + net.config.link_bytes - 1) / net.config.link_bytes)
    in
    let t = ref now in
    let hops = ref 0 in
    List.iter
      (fun link ->
        let id = Topology.link_id net.topo link in
        let start = max !t net.free_at.(id) in
        net.free_at.(id) <- start + serialization;
        net.link_busy.(id) <- net.link_busy.(id) + serialization;
        net.busy <- net.busy + serialization;
        t := start + net.config.per_hop_latency;
        (match on_hop with
        | None -> ()
        | Some f -> f ~link:id ~start ~finish:!t);
        incr hops)
      (Topology.xy_route net.topo ~src ~dst);
    (* wormhole pipelining: header latency per hop, body flits pipeline
       behind it and arrive [serialization-1] cycles after the header *)
    let t = !t + serialization - 1 in
    let unloaded = (!hops * net.config.per_hop_latency) + serialization - 1 in
    (t, !hops, t - now - unloaded)
  end

let reset net =
  Array.fill net.free_at 0 (Array.length net.free_at) 0;
  Array.fill net.link_busy 0 (Array.length net.link_busy) 0;
  net.busy <- 0

let total_link_busy net = net.busy

let link_busy net = Array.copy net.link_busy

let utilization net ~at =
  let at = max 1 at in
  Array.map (fun b -> float_of_int b /. float_of_int at) net.link_busy
