type token =
  | IDENT of string
  | INT of int
  | KW_PARAM
  | KW_ARRAY
  | KW_INDEX
  | KW_FOR
  | KW_PARFOR
  | KW_TO
  | KW_IF
  | KW_ELSE
  | LBRACKET
  | RBRACKET
  | LBRACE
  | RBRACE
  | LPAREN
  | RPAREN
  | PLUS
  | MINUS
  | STAR
  | SLASH
  | PERCENT
  | EQUALS
  | LT
  | LE
  | GT
  | GE
  | EQEQ
  | NE
  | SEMI
  | EOF

exception Error of string * int

let keyword = function
  | "param" -> Some KW_PARAM
  | "array" -> Some KW_ARRAY
  | "index" -> Some KW_INDEX
  | "for" -> Some KW_FOR
  | "parfor" -> Some KW_PARFOR
  | "to" -> Some KW_TO
  | "if" -> Some KW_IF
  | "else" -> Some KW_ELSE
  | _ -> None

let is_ident_start c = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_'

let is_ident_char c = is_ident_start c || (c >= '0' && c <= '9')

let is_digit c = c >= '0' && c <= '9'

let tokenize src =
  let n = String.length src in
  let toks = ref [] in
  let push t = toks := t :: !toks in
  let i = ref 0 in
  while !i < n do
    let c = src.[!i] in
    if c = ' ' || c = '\t' || c = '\n' || c = '\r' then incr i
    else if c = '/' && !i + 1 < n && src.[!i + 1] = '/' then begin
      while !i < n && src.[!i] <> '\n' do
        incr i
      done
    end
    else if is_digit c then begin
      let st = !i in
      while !i < n && is_digit src.[!i] do
        incr i
      done;
      push (INT (int_of_string (String.sub src st (!i - st))))
    end
    else if is_ident_start c then begin
      let st = !i in
      while !i < n && is_ident_char src.[!i] do
        incr i
      done;
      let s = String.sub src st (!i - st) in
      push (match keyword s with Some k -> k | None -> IDENT s)
    end
    else if c = '<' then begin
      if !i + 1 < n && src.[!i + 1] = '=' then begin
        push LE;
        i := !i + 2
      end
      else begin
        push LT;
        incr i
      end
    end
    else if c = '>' then begin
      if !i + 1 < n && src.[!i + 1] = '=' then begin
        push GE;
        i := !i + 2
      end
      else begin
        push GT;
        incr i
      end
    end
    else if c = '=' && !i + 1 < n && src.[!i + 1] = '=' then begin
      push EQEQ;
      i := !i + 2
    end
    else if c = '!' && !i + 1 < n && src.[!i + 1] = '=' then begin
      push NE;
      i := !i + 2
    end
    else begin
      (match c with
      | '[' -> push LBRACKET
      | ']' -> push RBRACKET
      | '{' -> push LBRACE
      | '}' -> push RBRACE
      | '(' -> push LPAREN
      | ')' -> push RPAREN
      | '+' -> push PLUS
      | '-' -> push MINUS
      | '*' -> push STAR
      | '/' -> push SLASH
      | '%' -> push PERCENT
      | '=' -> push EQUALS
      | ';' -> push SEMI
      | _ -> raise (Error (Printf.sprintf "unexpected character %C" c, !i)));
      incr i
    end
  done;
  List.rev (EOF :: !toks)

let pp_token ppf = function
  | IDENT s -> Format.fprintf ppf "ident %s" s
  | INT n -> Format.fprintf ppf "int %d" n
  | KW_PARAM -> Format.pp_print_string ppf "param"
  | KW_ARRAY -> Format.pp_print_string ppf "array"
  | KW_INDEX -> Format.pp_print_string ppf "index"
  | KW_FOR -> Format.pp_print_string ppf "for"
  | KW_PARFOR -> Format.pp_print_string ppf "parfor"
  | KW_TO -> Format.pp_print_string ppf "to"
  | LBRACKET -> Format.pp_print_string ppf "["
  | RBRACKET -> Format.pp_print_string ppf "]"
  | LBRACE -> Format.pp_print_string ppf "{"
  | RBRACE -> Format.pp_print_string ppf "}"
  | LPAREN -> Format.pp_print_string ppf "("
  | RPAREN -> Format.pp_print_string ppf ")"
  | PLUS -> Format.pp_print_string ppf "+"
  | MINUS -> Format.pp_print_string ppf "-"
  | STAR -> Format.pp_print_string ppf "*"
  | SLASH -> Format.pp_print_string ppf "/"
  | PERCENT -> Format.pp_print_string ppf "%"
  | EQUALS -> Format.pp_print_string ppf "="
  | LT -> Format.pp_print_string ppf "<"
  | LE -> Format.pp_print_string ppf "<="
  | GT -> Format.pp_print_string ppf ">"
  | GE -> Format.pp_print_string ppf ">="
  | EQEQ -> Format.pp_print_string ppf "=="
  | NE -> Format.pp_print_string ppf "!="
  | SEMI -> Format.pp_print_string ppf ";"
  | EOF -> Format.pp_print_string ppf "<eof>"
  | KW_IF -> Format.pp_print_string ppf "if"
  | KW_ELSE -> Format.pp_print_string ppf "else"
