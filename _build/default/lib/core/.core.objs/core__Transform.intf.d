lib/core/transform.mli: Affine Customize Format Lang Layout
