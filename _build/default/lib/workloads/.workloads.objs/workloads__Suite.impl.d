lib/workloads/suite.ml: Ammp App Applu Apsi Art Fma3d Gafort Galgel Hpccg List Mgrid Minighost Minimd String Swim Wupwise
