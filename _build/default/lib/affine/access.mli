(** Affine array references [r = A·i + o].

    [A] is the [n×m] access matrix mapping an [m]-dimensional iteration
    vector to an [n]-dimensional data vector, and [o] the constant offset
    (paper, Section 5.1). *)

type t = { matrix : Matrix.t; offset : Vec.t }

val make : Matrix.t -> Vec.t -> t
(** Raises [Invalid_argument] if the offset dimension does not match the
    matrix row count. *)

val identity : int -> t
(** The reference [X[i₁]…[iₘ]] of rank [m]. *)

val rank : t -> int
(** Array rank [n] (number of subscripts). *)

val depth : t -> int
(** Loop depth [m] (iteration-vector dimension). *)

val apply : t -> Vec.t -> Vec.t
(** [apply r i] is the data vector [A·i + o] accessed at iteration [i]. *)

val submatrix : t -> u:int -> Matrix.t
(** [submatrix r ~u] is [B]: the access matrix with the [u]-th column (the
    iteration-partition dimension) removed — the coefficient matrix of the
    homogeneous system of Eq. 3. *)

val transform : Matrix.t -> t -> t
(** [transform u r] is the reference after the unimodular layout
    transformation [u]: [r' = U·A·i + U·o]. *)

val equal : t -> t -> bool

val pp : Format.formatter -> t -> unit
