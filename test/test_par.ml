(* Tests for the partitioned parallel engine: plan acceptance and
   rejection, the parallel == sequential byte oracle (plain, attributed,
   consolidation serving, fallback), and a randomized identity property
   over app × seed × mesh draws.  Every identity check compares full
   result documents as strings, the same shape the CI oracle diffs. *)

module Config = Sim.Config
module Par = Sim.Par_engine
module Runner = Sim.Runner
module Json = Obs.Json

let cfg_of ?(interleave = "page") ?(policy = "first-touch") ?(l2 = "private")
    ?(width = 4) ?(height = 4) ?(seed = 0) () =
  match
    Config.build ~scaled:true ~platform:"" ~l2 ~interleave ~policy ~mapping:""
      ~width ~height ~tpc:1 ~optimal:false ~seed ()
  with
  | Ok c -> c
  | Error e -> Alcotest.failf "config: %s" e

let replicas ?(attr = false) cfg name =
  let app = Workloads.Suite.by_name name in
  Runner.prepare_replicas cfg ~optimized:false
    ~warmup_phases:app.Workloads.App.warmup_nests
    ~index_lookup:(Workloads.App.index_lookup app)
    ~attr
    (Workloads.App.program app)

let whole_machine cfg name =
  let app = Workloads.Suite.by_name name in
  Runner.prepare cfg ~optimized:false
    ~warmup_phases:app.Workloads.App.warmup_nests
    ~index_lookup:(Workloads.App.index_lookup app)
    (Workloads.App.program app)

let plan_of cfg preps =
  Par.plan cfg
    ~desired_mc_of_vpage:(Runner.combined_hints preps)
    ~jobs:(List.map (fun p -> p.Runner.job) preps)
    ()

let starts_with prefix s =
  String.length s >= String.length prefix
  && String.sub s 0 (String.length prefix) = prefix

(* --- plan acceptance and rejection --- *)

let test_plan_accepts_replicas () =
  let cfg = cfg_of () in
  match plan_of cfg (replicas cfg "minimd") with
  | Par.Parallel parts ->
    Alcotest.(check int) "one partition per cluster" 4 (Array.length parts);
    Array.iteri
      (fun i p ->
        Alcotest.(check int) "ascending cluster order" i p.Par.part_cluster;
        Alcotest.(check bool) "owns controllers" true (p.Par.part_mcs <> []);
        Alcotest.(check bool) "owns a job" true (p.Par.part_jobs <> []))
      parts
  | Par.Sequential reason -> Alcotest.failf "expected parallel plan: %s" reason

let reject ?interleave ?policy ?l2 name =
  let cfg = cfg_of ?interleave ?policy ?l2 () in
  match plan_of cfg (replicas cfg name) with
  | Par.Sequential reason ->
    Alcotest.(check bool) "has a reason" true (reason <> "")
  | Par.Parallel _ -> Alcotest.fail "expected a sequential fallback"

let test_plan_merges_by_chiplet () =
  (* on chiplet2x2-mc8 the M1x8 clusters are 4x2 tiles, two per 4x4
     chiplet: the planner coarsens to one partition per chiplet, so the
     die boundary — not the cluster — is the unit of confinement *)
  let cfg =
    match
      Config.build ~scaled:true ~platform:"chiplet2x2-mc8" ~l2:"private"
        ~interleave:"page" ~policy:"first-touch" ~mapping:"" ~width:8 ~height:8
        ~tpc:1 ~optimal:false ~seed:0 ()
    with
    | Ok c -> c
    | Error e -> Alcotest.failf "config: %s" e
  in
  let preps = replicas cfg "minimd" in
  (match plan_of cfg preps with
  | Par.Parallel parts ->
    Alcotest.(check int) "one partition per chiplet" 4 (Array.length parts);
    Array.iter
      (fun p ->
        Alcotest.(check int) "two clusters merged" 2
          (List.length p.Par.part_clusters))
      parts
  | Par.Sequential reason -> Alcotest.failf "expected parallel plan: %s" reason);
  (* and the oracle still holds on the merged partitions *)
  let doc domains =
    Json.to_string
      (Sweep.Exec.result_json ~app:"minimd" cfg
         (Runner.run_many ~domains cfg ~jobs:preps))
  in
  Alcotest.(check string) "chiplet domains 4 == domains 1" (doc 1) (doc 4)

let test_plan_rejects_line () = reject ~interleave:"line" "minimd"
let test_plan_rejects_shared_l2 () = reject ~l2:"shared" "minimd"
let test_plan_rejects_hardware () = reject ~policy:"hardware" "minimd"

let test_plan_rejects_whole_machine () =
  (* one job bound across every cluster cannot be partitioned *)
  let cfg = cfg_of () in
  match plan_of cfg [ whole_machine cfg "minimd" ] with
  | Par.Sequential _ -> ()
  | Par.Parallel _ -> Alcotest.fail "whole-machine job must fall back"

(* --- the byte oracle --- *)

let attributed_doc cfg app preps domains =
  let attr = Runner.attr_for cfg (List.hd preps) in
  let r = Runner.run_many ~attr ~domains cfg ~jobs:preps in
  Json.to_string (Sweep.Exec.result_json ~attr ~app cfg r)

let plain_doc cfg app preps domains =
  let r = Runner.run_many ~domains cfg ~jobs:preps in
  Json.to_string (Sweep.Exec.result_json ~app cfg r)

let test_identity_plain () =
  let cfg = cfg_of () in
  let preps = replicas cfg "minimd" in
  let d1 = plain_doc cfg "minimd" preps 1 in
  Alcotest.(check string) "domains 2 == domains 1" d1
    (plain_doc cfg "minimd" preps 2);
  Alcotest.(check string) "domains 4 == domains 1" d1
    (plain_doc cfg "minimd" preps 4)

let test_identity_attributed () =
  (* the attributed document embeds the full attribution cube and its
     totals, so string equality covers the Σ-per-site invariant too *)
  let cfg = cfg_of () in
  let preps = replicas ~attr:true cfg "gafort" in
  let d1 = attributed_doc cfg "gafort" preps 1 in
  Alcotest.(check string) "attributed domains 4 == domains 1" d1
    (attributed_doc cfg "gafort" preps 4)

let test_identity_fallback_dispatch () =
  (* a non-decomposable workload asked for 4 domains must fall back to
     the sequential engine — same bytes, reason on the plan line *)
  let cfg = cfg_of () in
  let preps = [ whole_machine cfg "gafort" ] in
  let reason = ref "" in
  let r1 = Runner.run_many ~domains:1 cfg ~jobs:preps in
  let r4 =
    Runner.run_many ~domains:4 ~on_plan:(fun s -> reason := s) cfg ~jobs:preps
  in
  Alcotest.(check bool)
    "plan line reports the fallback" true
    (starts_with "sequential engine" !reason);
  Alcotest.(check string) "fallback is byte-identical"
    (Json.to_string (Sweep.Exec.result_json ~app:"gafort" cfg r1))
    (Json.to_string (Sweep.Exec.result_json ~app:"gafort" cfg r4))

let test_identity_serve () =
  (* cluster-confined consolidation scenario: first-touch placement,
     4-thread tenants — the serving workload the planner accepts *)
  let sc =
    {
      (Serve.Scenario.smoke ()) with
      Serve.Scenario.name = "par-smoke-test";
      policy = Serve.Scenario.First_touch;
      threads_per_tenant = 4;
      tenants = 4;
      arrival_mean = 5000;
      optimized = false;
    }
  in
  let doc domains plan =
    match Serve.Server.run ~domains ?on_plan:plan sc with
    | Ok run -> Json.to_string (Serve.Server.result_json run)
    | Error e -> Alcotest.failf "serve: %s" e
  in
  let plan = ref "" in
  let d1 = doc 1 None in
  let d2 = doc 2 (Some (fun s -> plan := s)) in
  Alcotest.(check bool) "serve co-run planned parallel" true
    (starts_with "parallel:" !plan);
  Alcotest.(check string) "serve domains 2 == domains 1" d1 d2

(* --- randomized identity property --- *)

let arb_draw =
  let gen =
    let open QCheck.Gen in
    let* app = oneofl [ "minimd"; "gafort"; "hpccg" ] in
    let* seed = int_range 0 3 in
    let* width = oneofl [ 4; 8 ] in
    return (app, seed, width)
  in
  QCheck.make
    ~print:(fun (a, s, w) -> Printf.sprintf "%s seed=%d mesh=%dx%d" a s w w)
    gen

let prop_identity =
  QCheck.Test.make
    ~name:"attributed stats JSON identical across domains 1/2/4" ~count:4
    arb_draw
    (fun (app, seed, width) ->
      let cfg = cfg_of ~seed ~width ~height:width () in
      let preps = replicas ~attr:true cfg app in
      let d1 = attributed_doc cfg app preps 1 in
      d1 = attributed_doc cfg app preps 2
      && d1 = attributed_doc cfg app preps 4)

let suite =
  [
    ( "par_engine",
      [
        Alcotest.test_case "plan accepts confined replicas" `Quick
          test_plan_accepts_replicas;
        Alcotest.test_case "plan merges partitions by chiplet" `Quick
          test_plan_merges_by_chiplet;
        Alcotest.test_case "plan rejects line interleaving" `Quick
          test_plan_rejects_line;
        Alcotest.test_case "plan rejects shared L2" `Quick
          test_plan_rejects_shared_l2;
        Alcotest.test_case "plan rejects hardware placement" `Quick
          test_plan_rejects_hardware;
        Alcotest.test_case "plan rejects a whole-machine job" `Quick
          test_plan_rejects_whole_machine;
        Alcotest.test_case "replica stats identical across domains" `Quick
          test_identity_plain;
        Alcotest.test_case "attributed stats identical across domains" `Quick
          test_identity_attributed;
        Alcotest.test_case "fallback dispatch is byte-identical" `Quick
          test_identity_fallback_dispatch;
        Alcotest.test_case "serve scenario identical across domains" `Quick
          test_identity_serve;
      ]
      @ List.map QCheck_alcotest.to_alcotest [ prop_identity ] );
  ]
