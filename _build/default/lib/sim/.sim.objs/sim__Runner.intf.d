lib/sim/runner.mli: Affine Config Core Engine Lang
