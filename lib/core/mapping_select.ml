type metrics = { avg_distance : float; mcs_per_cluster : int }

let evaluate topo (c : Cluster.t) placement =
  let cores = Cluster.num_cores c in
  let total = ref 0 and count = ref 0 in
  for t = 0 to cores - 1 do
    let node = Cluster.node_of_thread c topo t in
    let cluster = Cluster.cluster_of_node c topo node in
    List.iter
      (fun m ->
        total :=
          !total + Noc.Topology.distance topo node (Noc.Placement.mc_node placement m);
        incr count)
      (Cluster.mcs_of_cluster c cluster)
  done;
  {
    avg_distance = float_of_int !total /. float_of_int !count;
    mcs_per_cluster = c.k;
  }

(* Cost model constants: per-hop latency from the NoC config, and the
   calibrated marginal queue cost per unit of bank-queue occupancy.  The
   weight is calibrated on the profiled platform so that the crossover
   sits between the moderate-pressure stencils and the two
   bank-hammering applications (fma3d, minighost) — the choice the paper
   reports its analysis makes. *)
let per_hop = 4.

let queue_weight = 6.0

let estimated_cost topo c placement ~bank_pressure =
  let m = evaluate topo c placement in
  let network = 2. *. m.avg_distance *. per_hop in
  (* queue wait grows with pressure; k controllers split the load *)
  let queue = bank_pressure /. float_of_int m.mcs_per_cluster *. queue_weight in
  network +. queue

let choose_opt topo ~candidates ~bank_pressure =
  match candidates with
  | [] -> None
  | first :: rest ->
    let cost (c, p) = estimated_cost topo c p ~bank_pressure in
    Some
      (List.fold_left
         (fun best cand -> if cost cand < cost best then cand else best)
         first rest)

let choose topo ~candidates ~bank_pressure =
  match choose_opt topo ~candidates ~bank_pressure with
  | Some best -> best
  | None -> invalid_arg "Mapping_select.choose: no candidates"
