test/test_lang.ml: Affine Alcotest Array Astring Lang List String Workloads
