(* Tests for the mini language: lexer, parser, printer round-trips,
   affine analysis and the trace-generating interpreter. *)

module Ast = Lang.Ast
module Lexer = Lang.Lexer
module Parser = Lang.Parser
module Analysis = Lang.Analysis
module Interp = Lang.Interp
module Vec = Affine.Vec
module Matrix = Affine.Matrix

(* Result-first entry point, unwrapped for tests of well-formed sources. *)
let parse src =
  match Parser.parse_result src with
  | Ok p -> p
  | Error (d :: _) -> Alcotest.failf "parse failed: %s" d.Lang.Diag.message
  | Error [] -> assert false

let fig9_source =
  {|
param N = 8;
array Z[N][N];
parfor i = 2 to N-2 {
  for j = 2 to N-2 {
    Z[j][i] = Z[j-1][i] + Z[j][i] + Z[j+1][i];
  }
}
|}

(* --- lexer --- *)

let test_lexer_tokens () =
  let toks = Lexer.tokenize "parfor x1 = 0 to N-1 { A[x1] = 2*x1; }" in
  Alcotest.(check int) "token count" 20 (List.length toks);
  (match toks with
  | Lexer.KW_PARFOR :: Lexer.IDENT "x1" :: Lexer.EQUALS :: Lexer.INT 0 :: _ -> ()
  | _ -> Alcotest.fail "unexpected token prefix");
  Alcotest.(check bool) "ends with EOF" true (List.nth toks 19 = Lexer.EOF)

let test_lexer_comments () =
  let toks = Lexer.tokenize "// a comment\nfor // another\n" in
  Alcotest.(check int) "only keyword and EOF" 2 (List.length toks)

let test_lexer_error () =
  match Lexer.tokenize "a @ b" with
  | exception Lexer.Error (_, pos) -> Alcotest.(check int) "position" 2 pos
  | _ -> Alcotest.fail "expected lexical error"

(* --- parser --- *)

let test_parse_fig9 () =
  let p = parse fig9_source in
  Alcotest.(check int) "one param" 1 (List.length p.Ast.params);
  Alcotest.(check int) "one array" 1 (List.length p.Ast.decls);
  Alcotest.(check int) "one nest" 1 (List.length p.Ast.nests);
  match p.Ast.nests with
  | [ Ast.Loop l ] ->
    Alcotest.(check bool) "outer parallel" true l.Ast.parallel;
    Alcotest.(check string) "outer index" "i" l.Ast.index
  | _ -> Alcotest.fail "expected a single loop nest"

let test_parse_errors () =
  let expect_error src =
    match Parser.parse_result src with
    | Error (_ :: _) -> ()
    | Error [] | Ok _ -> Alcotest.failf "expected syntax error for %S" src
  in
  expect_error "array A[4]; parfor i = 0 to 3 { B[i] = 0; }" (* undeclared *);
  expect_error "array A[4]; parfor i = 0 to 3 { A[i][i] = 0; }" (* rank *);
  expect_error "param N; " (* missing = *);
  expect_error "array A; " (* no dims *)

let test_parse_print_roundtrip () =
  let p = parse fig9_source in
  let printed = Ast.program_to_string p in
  let p2 = parse printed in
  Alcotest.(check string) "print∘parse∘print stable"
    printed (Ast.program_to_string p2)

let test_roundtrip_all_apps () =
  List.iter
    (fun app ->
      let p = Workloads.App.program app in
      let p2 = parse (Ast.program_to_string p) in
      Alcotest.(check string)
        (app.Workloads.App.name ^ " roundtrip")
        (Ast.program_to_string p) (Ast.program_to_string p2))
    Workloads.Suite.all

(* --- analysis --- *)

let test_affine_extraction () =
  let params = [ ("N", 10) ] in
  let iters = [ "i"; "j" ] in
  (match Analysis.affine_of_expr ~params ~iters (Ast.Add (Ast.Mul (Ast.Int 2, Ast.Var "j"), Ast.Int 1)) with
  | Some (c, k) ->
    Alcotest.(check (list int)) "coeffs" [ 0; 2 ] (Vec.to_list c);
    Alcotest.(check int) "const" 1 k
  | None -> Alcotest.fail "expected affine");
  (match Analysis.affine_of_expr ~params ~iters (Ast.Var "N") with
  | Some (c, k) ->
    Alcotest.(check bool) "param is constant" true (Vec.is_zero c);
    Alcotest.(check int) "param value" 10 k
  | None -> Alcotest.fail "param should be affine");
  match
    Analysis.affine_of_expr ~params ~iters (Ast.Mul (Ast.Var "i", Ast.Var "j"))
  with
  | None -> ()
  | Some _ -> Alcotest.fail "i*j is not affine"

let test_analysis_fig9 () =
  let a = Analysis.analyze (parse fig9_source) in
  let z = Analysis.array_info a "Z" in
  Alcotest.(check int) "extents" 8 z.Analysis.extents.(0);
  Alcotest.(check int) "4 occurrences" 4 (List.length z.Analysis.occurrences);
  List.iter
    (fun (o : Analysis.occurrence) ->
      Alcotest.(check (option int)) "parallel dim is outer" (Some 0) o.Analysis.par_dim;
      match o.Analysis.kind with
      | Analysis.Affine_ref acc ->
        Alcotest.(check int) "rank 2" 2 (Affine.Access.rank acc);
        (* access matrix for Z[j±k][i] is the antidiagonal *)
        Alcotest.(check bool) "matrix antidiagonal" true
          (Matrix.equal acc.Affine.Access.matrix
             (Matrix.of_rows [ Vec.of_list [ 0; 1 ]; Vec.of_list [ 1; 0 ] ]))
      | Analysis.Indexed_ref -> Alcotest.fail "expected affine")
    z.Analysis.occurrences;
  (* exactly one write *)
  Alcotest.(check int) "one write" 1
    (List.length (List.filter (fun o -> o.Analysis.is_write) z.Analysis.occurrences))

let test_analysis_indexed () =
  let src =
    {|
param N = 16;
array X[N];
index IDX[N];
parfor i = 0 to N-1 { X[IDX[i]] = X[i] + 1; }
|}
  in
  let a = Analysis.analyze (parse src) in
  let x = Analysis.array_info a "X" in
  let kinds = List.map (fun o -> o.Analysis.kind) x.Analysis.occurrences in
  Alcotest.(check int) "X has 2 occurrences" 2 (List.length kinds);
  Alcotest.(check bool) "one indexed" true
    (List.exists (function Analysis.Indexed_ref -> true | _ -> false) kinds);
  Alcotest.(check bool) "one affine" true
    (List.exists (function Analysis.Affine_ref _ -> true | _ -> false) kinds);
  let idx = Analysis.array_info a "IDX" in
  Alcotest.(check bool) "IDX is an index array" true idx.Analysis.decl.Ast.index_array;
  Alcotest.(check int) "IDX read recorded" 1 (List.length idx.Analysis.occurrences)

let test_trip_counts () =
  let src =
    {|
param N = 10;
array A[N][N];
parfor i = 0 to N-1 { for j = 0 to N-1 { A[i][j] = 1; } }
|}
  in
  let a = Analysis.analyze (parse src) in
  let info = Analysis.array_info a "A" in
  match info.Analysis.occurrences with
  | [ o ] -> Alcotest.(check int) "trip = N²" 100 o.Analysis.trip_count
  | _ -> Alcotest.fail "expected one occurrence"

(* --- conditionals (Section 4: both branches assumed taken) --- *)

let cond_src =
  {|
param N = 8;
array A[N];
array B[N];
parfor i = 0 to N-1 {
  if (i % 2 == 0) {
    A[i] = B[i];
  } else {
    B[i] = A[i];
  }
}
|}

let test_cond_parse_print () =
  let p = parse cond_src in
  let printed = Ast.program_to_string p in
  let p2 = parse printed in
  Alcotest.(check string) "conditional roundtrip" printed (Ast.program_to_string p2)

let test_cond_analysis_conservative () =
  let a = Analysis.analyze (parse cond_src) in
  (* both branches contribute occurrences: A written and read *)
  let occs name = (Analysis.array_info a name).Analysis.occurrences in
  Alcotest.(check int) "A: write in then, read in else" 2 (List.length (occs "A"));
  Alcotest.(check int) "B: read in then, write in else" 2 (List.length (occs "B"));
  Alcotest.(check bool) "A has a write" true
    (List.exists (fun o -> o.Analysis.is_write) (occs "A"))

let test_cond_interp () =
  let p = parse cond_src in
  let phases = Interp.trace ~threads:1 ~addr_of:(fun name v ->
      (if String.equal name "A" then 0 else 100) + v.(0)) p in
  let stream = (List.hd phases).(0) in
  (* each iteration executes exactly one branch: 2 accesses x 8 iters *)
  Alcotest.(check int) "one branch per iteration" 16 (Array.length stream);
  (* i = 0: then-branch: read B[0] (addr 100), write A[0] (addr 0) *)
  Alcotest.(check int) "read B first" 100 (Interp.addr_of_access stream.(0));
  Alcotest.(check bool) "write A second" true (Interp.is_write stream.(1));
  Alcotest.(check int) "write A addr" 0 (Interp.addr_of_access stream.(1));
  (* i = 1: else-branch: read A[1], write B[101] *)
  Alcotest.(check int) "read A" 1 (Interp.addr_of_access stream.(2));
  Alcotest.(check int) "write B" 101 (Interp.addr_of_access stream.(3))

let test_cond_codegen () =
  let c =
    match Lang.Codegen.emit_result (parse cond_src) with
    | Ok c -> c
    | Error _ -> Alcotest.fail "codegen failed"
  in
  Alcotest.(check bool) "if rendered" true
    (Astring.String.is_infix ~affix:"if (i % 2 == 0) {" c);
  Alcotest.(check bool) "else rendered" true
    (Astring.String.is_infix ~affix:"} else {" c)

(* --- interpreter --- *)

let test_interp_counts () =
  let p =
    parse
      {|
param N = 16;
array A[N];
array B[N];
parfor i = 0 to N-1 { A[i] = B[i] + B[i]; }
|}
  in
  let phases = Interp.trace ~threads:4 ~addr_of:(fun _ v -> v.(0)) p in
  Alcotest.(check int) "one phase" 1 (List.length phases);
  let streams = List.hd phases in
  Alcotest.(check int) "4 streams" 4 (Array.length streams);
  let total = Array.fold_left (fun a s -> a + Array.length s) 0 streams in
  Alcotest.(check int) "3 accesses per iteration" 48 total;
  (* each thread handles 4 iterations *)
  Array.iter (fun s -> Alcotest.(check int) "even split" 12 (Array.length s)) streams

let test_interp_write_flags () =
  let p = parse {|
array A[4];
parfor i = 0 to 3 { A[i] = A[i] + 1; }
|} in
  let phases = Interp.trace ~threads:1 ~addr_of:(fun _ v -> v.(0)) p in
  let stream = (List.hd phases).(0) in
  Alcotest.(check int) "read+write per iter" 8 (Array.length stream);
  (* program order within an iteration: RHS read then LHS write *)
  Alcotest.(check bool) "first is read" false (Interp.is_write stream.(0));
  Alcotest.(check bool) "second is write" true (Interp.is_write stream.(1));
  Alcotest.(check int) "same address" (Interp.addr_of_access stream.(0))
    (Interp.addr_of_access stream.(1))

let test_interp_chunking () =
  (* 10 iterations over 4 threads: 3,3,2,2 — and addresses match chunks *)
  let p = parse {|
array A[10];
parfor i = 0 to 9 { A[i] = 0; }
|} in
  let phases = Interp.trace ~threads:4 ~addr_of:(fun _ v -> v.(0)) p in
  let sizes = Array.to_list (Array.map Array.length (List.hd phases)) in
  Alcotest.(check (list int)) "static chunk sizes" [ 3; 3; 2; 2 ] sizes;
  let first_of t = Interp.addr_of_access (List.hd phases).(t).(0) in
  Alcotest.(check (list int)) "chunk starts" [ 0; 3; 6; 8 ]
    (List.init 4 first_of)

let test_interp_threads_per_core () =
  let p = parse {|
array A[16];
parfor i = 0 to 15 { A[i] = 0; }
|} in
  let phases = Interp.trace ~threads:8 ~threads_per_core:2 ~addr_of:(fun _ v -> v.(0)) p in
  let streams = List.hd phases in
  (* threads 0,1 share core 0 and split its 4-iteration chunk *)
  Alcotest.(check int) "t0 gets half the core chunk" 2 (Array.length streams.(0));
  Alcotest.(check int) "t1 gets the other half" 2 (Array.length streams.(1));
  Alcotest.(check int) "t0 starts at 0" 0 (Interp.addr_of_access streams.(0).(0));
  Alcotest.(check int) "t1 starts at 2" 2 (Interp.addr_of_access streams.(1).(0))

let test_interp_index_arrays () =
  let p =
    parse
      {|
param N = 8;
array X[N];
index IDX[N];
parfor i = 0 to N-1 { X[IDX[i]] = 1; }
|}
  in
  let seen = ref [] in
  let addr_of name v =
    if String.equal name "X" then begin
      seen := v.(0) :: !seen;
      100 + v.(0)
    end
    else v.(0)
  in
  let index_lookup _ v = 7 - v.(0) in
  ignore (Interp.trace ~threads:2 ~addr_of ~index_lookup p);
  (* X written at reversed indices *)
  Alcotest.(check (list int)) "indexed targets" [ 7; 6; 5; 4; 3; 2; 1; 0 ]
    (List.rev !seen)

let test_interp_sequential_nest () =
  let p = parse {|
array A[6];
for t = 0 to 1 { parfor i = 0 to 5 { A[i] = t; } }
|} in
  let phases = Interp.trace ~threads:3 ~addr_of:(fun _ v -> v.(0)) p in
  Alcotest.(check int) "one phase for the outer loop" 1 (List.length phases);
  let total = Array.fold_left (fun a s -> a + Array.length s) 0 (List.hd phases) in
  Alcotest.(check int) "both time steps traced" 12 total

let suite =
  [
    ( "lang.lexer",
      [
        Alcotest.test_case "tokens" `Quick test_lexer_tokens;
        Alcotest.test_case "comments" `Quick test_lexer_comments;
        Alcotest.test_case "error position" `Quick test_lexer_error;
      ] );
    ( "lang.parser",
      [
        Alcotest.test_case "fig9" `Quick test_parse_fig9;
        Alcotest.test_case "errors" `Quick test_parse_errors;
        Alcotest.test_case "print roundtrip" `Quick test_parse_print_roundtrip;
        Alcotest.test_case "all apps roundtrip" `Quick test_roundtrip_all_apps;
      ] );
    ( "lang.analysis",
      [
        Alcotest.test_case "affine extraction" `Quick test_affine_extraction;
        Alcotest.test_case "fig9 accesses" `Quick test_analysis_fig9;
        Alcotest.test_case "indexed refs" `Quick test_analysis_indexed;
        Alcotest.test_case "trip counts" `Quick test_trip_counts;
      ] );
    ( "lang.cond",
      [
        Alcotest.test_case "parse/print" `Quick test_cond_parse_print;
        Alcotest.test_case "conservative analysis" `Quick test_cond_analysis_conservative;
        Alcotest.test_case "interpreter" `Quick test_cond_interp;
        Alcotest.test_case "codegen" `Quick test_cond_codegen;
      ] );
    ( "lang.interp",
      [
        Alcotest.test_case "access counts" `Quick test_interp_counts;
        Alcotest.test_case "write flags" `Quick test_interp_write_flags;
        Alcotest.test_case "static chunking" `Quick test_interp_chunking;
        Alcotest.test_case "threads per core" `Quick test_interp_threads_per_core;
        Alcotest.test_case "index arrays" `Quick test_interp_index_arrays;
        Alcotest.test_case "sequential outer nest" `Quick test_interp_sequential_nest;
      ] );
  ]
