test/test_dram.ml: Alcotest Dram Fun List QCheck QCheck_alcotest
