module Vec = Affine.Vec
module Matrix = Affine.Matrix
module Access = Affine.Access

let default_threshold = 0.30

(* Solve the m×m float system g·x = rhs by Gaussian elimination with
   partial pivoting; [None] if (near) singular. *)
let solve_dense g rhs =
  let n = Array.length rhs in
  let a = Array.map Array.copy g in
  let b = Array.copy rhs in
  let eps = 1e-9 in
  let ok = ref true in
  for k = 0 to n - 1 do
    (* pivot *)
    let p = ref k in
    for i = k + 1 to n - 1 do
      if abs_float a.(i).(k) > abs_float a.(!p).(k) then p := i
    done;
    if abs_float a.(!p).(k) < eps then ok := false
    else begin
      if !p <> k then begin
        let t = a.(k) in
        a.(k) <- a.(!p);
        a.(!p) <- t;
        let t = b.(k) in
        b.(k) <- b.(!p);
        b.(!p) <- t
      end;
      for i = k + 1 to n - 1 do
        let f = a.(i).(k) /. a.(k).(k) in
        for j = k to n - 1 do
          a.(i).(j) <- a.(i).(j) -. (f *. a.(k).(j))
        done;
        b.(i) <- b.(i) -. (f *. b.(k))
      done
    end
  done;
  if not !ok then None
  else begin
    let x = Array.make n 0. in
    for i = n - 1 downto 0 do
      let s = ref b.(i) in
      for j = i + 1 to n - 1 do
        s := !s -. (a.(i).(j) *. x.(j))
      done;
      x.(i) <- !s /. a.(i).(i)
    done;
    Some x
  end

let approximate ~samples =
  match samples with
  | [] -> None
  | (i0, a0) :: _ ->
    let m = Vec.dim i0 and n = Vec.dim a0 in
    if
      not
        (List.for_all (fun (i, a) -> Vec.dim i = m && Vec.dim a = n) samples)
    then None
    else begin
      (* normal equations for the design [i | 1]: (XᵀX)β = Xᵀy *)
      let dim = m + 1 in
      let xtx = Array.make_matrix dim dim 0. in
      List.iter
        (fun (i, _) ->
          let row = Array.init dim (fun j -> if j < m then float_of_int i.(j) else 1.) in
          for r = 0 to dim - 1 do
            for c = 0 to dim - 1 do
              xtx.(r).(c) <- xtx.(r).(c) +. (row.(r) *. row.(c))
            done
          done)
        samples;
      let fit_dim d =
        let xty = Array.make dim 0. in
        List.iter
          (fun (i, a) ->
            let y = float_of_int a.(d) in
            for r = 0 to dim - 1 do
              let xr = if r < m then float_of_int i.(r) else 1. in
              xty.(r) <- xty.(r) +. (xr *. y)
            done)
          samples;
        Option.map
          (fun beta ->
            ( Array.init m (fun j -> int_of_float (Float.round beta.(j))),
              int_of_float (Float.round beta.(m)) ))
          (solve_dense xtx xty)
      in
      let fits = List.init n fit_dim in
      if List.exists Option.is_none fits then None
      else begin
        let rows = List.map (fun f -> fst (Option.get f)) fits in
        let offs = List.map (fun f -> snd (Option.get f)) fits in
        let access = Access.make (Matrix.of_rows rows) (Vec.of_list offs) in
        let mismatches =
          List.fold_left
            (fun bad (i, a) ->
              if Vec.equal (Access.apply access i) a then bad else bad + 1)
            0 samples
        in
        let inaccuracy =
          float_of_int mismatches /. float_of_int (List.length samples)
        in
        Some (access, inaccuracy)
      end
    end
