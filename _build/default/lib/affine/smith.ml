(* Classical Smith normal form by alternating row and column reductions.
   Row operations accumulate into [u], column operations into [v], so
   u·m·v = s holds throughout. *)

let swap_rows m i j =
  let t = m.(i) in
  m.(i) <- m.(j);
  m.(j) <- t

let swap_cols m i j =
  Array.iter
    (fun r ->
      let t = r.(i) in
      r.(i) <- r.(j);
      r.(j) <- t)
    m

(* row_j <- row_j - q * row_i *)
let submul_row m q i j =
  Array.iteri (fun c x -> m.(j).(c) <- m.(j).(c) - (q * x)) m.(i)

let submul_col m q i j =
  Array.iter (fun r -> r.(j) <- r.(j) - (q * r.(i))) m

let negate_row m i = m.(i) <- Array.map (fun x -> -x) m.(i)

let negate_col m j = Array.iter (fun r -> r.(j) <- -r.(j)) m

let decompose m0 =
  let s = Matrix.copy m0 in
  let nr = Matrix.rows s and nc = Matrix.cols s in
  let u = Matrix.identity nr and v = Matrix.identity nc in
  let pivot_nonzero k =
    (* move some nonzero entry of the lower-right block to (k, k) *)
    let found = ref None in
    for i = nr - 1 downto k do
      for j = nc - 1 downto k do
        if s.(i).(j) <> 0 then found := Some (i, j)
      done
    done;
    match !found with
    | None -> false
    | Some (i, j) ->
      if i <> k then begin
        swap_rows s i k;
        swap_rows u i k
      end;
      if j <> k then begin
        swap_cols s j k;
        swap_cols v j k
      end;
      true
  in
  (* clear row k and column k around the pivot (k, k) by gcd reduction;
     swaps pull fresh entries into the other dimension, so iterate until
     both are verifiably clear (|pivot| shrinks at every swap, so this
     terminates) *)
  let rec reduce k =
    for i = k + 1 to nr - 1 do
      if s.(i).(k) <> 0 then begin
        if abs s.(i).(k) < abs s.(k).(k) then begin
          swap_rows s i k;
          swap_rows u i k
        end;
        let q = s.(i).(k) / s.(k).(k) in
        if q <> 0 then begin
          submul_row s q k i;
          submul_row u q k i
        end
      end
    done;
    for j = k + 1 to nc - 1 do
      if s.(k).(j) <> 0 then begin
        if abs s.(k).(j) < abs s.(k).(k) then begin
          swap_cols s j k;
          swap_cols v j k
        end;
        let q = s.(k).(j) / s.(k).(k) in
        if q <> 0 then begin
          submul_col s q k j;
          submul_col v q k j
        end
      end
    done;
    let clear = ref true in
    for i = k + 1 to nr - 1 do
      if s.(i).(k) <> 0 then clear := false
    done;
    for j = k + 1 to nc - 1 do
      if s.(k).(j) <> 0 then clear := false
    done;
    if not !clear then reduce k
  in
  let n = min nr nc in
  let diagonalize from =
    for k = from to n - 1 do
      if pivot_nonzero k then begin
        reduce k;
        if s.(k).(k) < 0 then begin
          negate_row s k;
          negate_row u k
        end
      end
    done
  in
  diagonalize 0;
  (* enforce the divisibility chain d_k | d_{k+1}: each violation is fixed
     by folding column k+1 into column k — the gcd descent at (k, k) then
     absorbs d_{k+1} — followed by re-diagonalization of the tail, which
     the fold disturbs.  Each fold strictly reduces d_k, so this
     terminates. *)
  let rec divisibility () =
    let violation = ref None in
    for k = n - 2 downto 0 do
      let a = s.(k).(k) and b = s.(k + 1).(k + 1) in
      if a <> 0 && b mod a <> 0 then violation := Some k
    done;
    match !violation with
    | None -> ()
    | Some k ->
      Array.iter (fun r -> r.(k) <- r.(k) + r.(k + 1)) s;
      Array.iter (fun r -> r.(k) <- r.(k) + r.(k + 1)) v;
      diagonalize k;
      divisibility ()
  in
  divisibility ();
  (* normalize any negative diagonal *)
  for k = 0 to n - 1 do
    if s.(k).(k) < 0 then begin
      negate_col s k;
      negate_col v k
    end
  done;
  (u, s, v)

let diagonal m =
  let _, s, _ = decompose m in
  let n = min (Matrix.rows s) (Matrix.cols s) in
  List.filter (fun d -> d <> 0) (List.init n (fun k -> s.(k).(k)))

let rank m = List.length (diagonal m)
