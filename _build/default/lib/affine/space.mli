(** Rectangular iteration and data spaces.

    The paper's target codes have affine loop bounds; the kernels we model
    (and the paper's own examples) use rectangular domains, so a space is a
    vector of inclusive per-dimension bounds.  Iteration spaces are
    partitioned into contiguous chunks along the parallel dimension
    (OpenMP static scheduling); data spaces into data blocks along the data
    partitioning dimension. *)

type t = { lo : Vec.t; hi : Vec.t }
(** Inclusive bounds; the space is [{p | lo ≤ p ≤ hi componentwise}]. *)

val make : lo:Vec.t -> hi:Vec.t -> t
(** Raises [Invalid_argument] on dimension mismatch or if some [lo.(d) >
    hi.(d) + 1] (empty dimensions with [hi = lo - 1] are allowed). *)

val of_extents : int list -> t
(** [of_extents [n1; n2]] is the space [0..n1-1 × 0..n2-1]. *)

val rank : t -> int

val extent : t -> int -> int
(** [extent s d] is the number of points along dimension [d]. *)

val size : t -> int
(** Total number of points. *)

val mem : t -> Vec.t -> bool

val iter : (Vec.t -> unit) -> t -> unit
(** Enumerates all points in lexicographic order.  The vector passed to the
    callback is reused between calls; copy it if you keep it. *)

val chunk : t -> dim:int -> chunks:int -> index:int -> t
(** [chunk s ~dim ~chunks ~index] is the [index]-th of [chunks] contiguous
    chunks of [s] along dimension [dim], sized as evenly as possible with
    the remainder spread over the leading chunks (OpenMP static
    scheduling).  A chunk may be empty when there are more chunks than
    points. *)

val chunk_of_point : t -> dim:int -> chunks:int -> int -> int
(** [chunk_of_point s ~dim ~chunks x] is the index of the chunk that the
    coordinate [x] (along [dim]) falls into — the inverse of {!chunk}. *)

val pp : Format.formatter -> t -> unit
