(* Tests for the observability layer: JSON encoder/parser round-trips,
   metrics registry (bucketing properties, snapshots, merge), the trace
   ring buffer and its Chrome trace_event export (golden file), the phase
   timer, and Sim.Stats aggregation on top of it all. *)

module J = Obs.Json
module M = Obs.Metrics
module T = Obs.Trace
module Stats = Sim.Stats

(* --- JSON: units --- *)

let test_json_basics () =
  let v =
    J.Obj
      [
        ("a", J.Int 3);
        ("b", J.List [ J.Null; J.Bool true; J.Float 2.5 ]);
        ("c", J.String "x\"y\n");
      ]
  in
  let s = J.to_string v in
  (match J.of_string s with
  | Ok v' -> Alcotest.(check bool) "round-trip" true (J.equal v v')
  | Error e -> Alcotest.fail e);
  Alcotest.(check bool) "member a" true (J.member "a" v = Some (J.Int 3));
  Alcotest.(check bool) "member missing" true (J.member "z" v = None);
  Alcotest.(check bool) "member on list" true (J.member "a" (J.List []) = None)

let test_json_parse () =
  (match J.of_string {| [1, -2.5e2, "ABC", true, null, {}] |} with
  | Ok (J.List [ J.Int 1; J.Float f; J.String s; J.Bool true; J.Null; J.Obj [] ])
    ->
    Alcotest.(check (float 1e-9)) "float" (-250.) f;
    Alcotest.(check string) "unicode escape" "ABC" s
  | Ok _ -> Alcotest.fail "unexpected shape"
  | Error e -> Alcotest.fail e);
  (match J.of_string "{" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "accepted malformed input");
  match J.of_string "[1] trailing" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "accepted trailing garbage"

let test_json_nonfinite () =
  Alcotest.(check string) "nan encodes as null" "null"
    (J.to_string ~minify:true (J.Float nan));
  Alcotest.(check string) "inf encodes as null" "null"
    (J.to_string ~minify:true (J.Float infinity))

(* --- JSON: qcheck round-trip --- *)

let json_gen =
  let open QCheck.Gen in
  let finite_float =
    map (fun f -> if Float.is_finite f then f else 0.5) float
  in
  let scalar =
    oneof
      [
        return J.Null;
        map (fun b -> J.Bool b) bool;
        map (fun i -> J.Int i) int;
        map (fun f -> J.Float f) finite_float;
        map (fun s -> J.String s) (string_size (int_range 0 8));
      ]
  in
  let rec value depth =
    if depth = 0 then scalar
    else
      frequency
        [
          (3, scalar);
          ( 1,
            map (fun l -> J.List l) (list_size (int_range 0 4) (value (depth - 1)))
          );
          ( 1,
            map
              (fun l -> J.Obj l)
              (list_size (int_range 0 4)
                 (pair (string_size (int_range 0 5)) (value (depth - 1)))) );
        ]
  in
  value 3

let prop_json_roundtrip =
  QCheck.Test.make ~name:"json to_string |> of_string round-trips" ~count:500
    (QCheck.make json_gen) (fun v ->
      match J.of_string (J.to_string v) with
      | Ok v' -> J.equal v v'
      | Error _ -> false)

let prop_json_roundtrip_minified =
  QCheck.Test.make ~name:"minified json round-trips" ~count:500
    (QCheck.make json_gen) (fun v ->
      match J.of_string (J.to_string ~minify:true v) with
      | Ok v' -> J.equal v v'
      | Error _ -> false)

(* --- metrics: histogram bucketing --- *)

let in_bucket kind v =
  let i = M.bucket_index kind v in
  let lo, hi = M.bucket_bounds kind i in
  lo <= v && (v < hi || hi = max_int)

let prop_log2_buckets =
  QCheck.Test.make ~name:"log2 bucket bounds contain their values" ~count:1000
    QCheck.(make Gen.(oneof [ int_range 0 1_000_000; int_bound max_int ]))
    (fun v -> in_bucket M.Log2 v)

let prop_linear_buckets =
  QCheck.Test.make ~name:"linear bucket bounds contain their values"
    ~count:1000
    QCheck.(make Gen.(pair (int_range 0 100_000) (int_range 1 50)))
    (fun (v, width) -> in_bucket (M.Linear { width; buckets = 10 }) v)

let test_log2_boundaries () =
  let idx = M.bucket_index M.Log2 in
  Alcotest.(check int) "v=0" 0 (idx 0);
  Alcotest.(check int) "v=1" 1 (idx 1);
  Alcotest.(check int) "v=2" 2 (idx 2);
  Alcotest.(check int) "v=3" 2 (idx 3);
  Alcotest.(check int) "v=4" 3 (idx 4);
  Alcotest.(check int) "powers land in a fresh bucket" 11 (idx 1024);
  Alcotest.(check int) "one below stays" 10 (idx 1023);
  Alcotest.(check int) "max_int clamps to the last bucket"
    (M.max_log2_buckets - 1) (idx max_int);
  (* successive bucket bounds tile the nonnegative ints *)
  for i = 0 to M.max_log2_buckets - 2 do
    let _, hi = M.bucket_bounds M.Log2 i in
    let lo, _ = M.bucket_bounds M.Log2 (i + 1) in
    Alcotest.(check int) (Printf.sprintf "contiguous at bucket %d" i) hi lo
  done

(* --- metrics: registry --- *)

(* tests know their registrations are fresh, so force the Result *)
let hist reg ~buckets name =
  match M.histogram reg ~buckets name with
  | Ok h -> h
  | Error e -> failwith e

let test_registry_basics () =
  let reg = M.create () in
  let c = M.counter reg "c" in
  M.incr c;
  M.add c 4;
  Alcotest.(check int) "counter" 5 (M.value c);
  (* registration is idempotent: same name, same cell *)
  let c' = M.counter reg "c" in
  M.incr c';
  Alcotest.(check int) "same cell" 6 (M.value c);
  let g = M.gauge reg "g" in
  M.set g 2.0;
  M.set_max g 1.0;
  Alcotest.(check (float 1e-9)) "set_max keeps max" 2.0 (M.gauge_value g);
  let h = hist reg ~buckets:M.Log2 "h" in
  M.observe h 0;
  M.observe h 5;
  M.observe h (-3);
  Alcotest.(check int) "hist count" 3 (M.hist_count h);
  Alcotest.(check int) "negatives clamp to 0" 5 (M.hist_sum h);
  Alcotest.check_raises "kind mismatch"
    (Invalid_argument "Metrics.gauge: c is not a gauge") (fun () ->
      ignore (M.gauge reg "c"));
  (* histogram conflicts surface as values, not exceptions *)
  (match M.histogram reg ~buckets:(M.Linear { width = 2; buckets = 4 }) "h" with
  | Ok _ -> Alcotest.fail "bucket mismatch accepted"
  | Error _ -> ());
  (match M.histogram reg ~buckets:M.Log2 "c" with
  | Ok _ -> Alcotest.fail "counter re-registered as histogram"
  | Error _ -> ());
  (match M.histogram reg ~buckets:(M.Linear { width = 0; buckets = 4 }) "w" with
  | Ok _ -> Alcotest.fail "zero-width buckets accepted"
  | Error _ -> ());
  (* same name, same bucketing: idempotent, same cells *)
  M.observe (hist reg ~buckets:M.Log2 "h") 1;
  Alcotest.(check int) "histogram registration idempotent" 4 (M.hist_count h)

let test_snapshot_merge () =
  let mk records =
    let reg = M.create () in
    records reg;
    M.snapshot reg
  in
  let a =
    mk (fun reg ->
        M.add (M.counter reg "x") 2;
        M.set (M.gauge reg "g") 5.;
        M.observe (hist reg ~buckets:M.Log2 "h") 7)
  in
  let b =
    mk (fun reg ->
        M.add (M.counter reg "x") 3;
        M.add (M.counter reg "only_b") 1;
        M.set (M.gauge reg "g") 9.;
        M.observe (hist reg ~buckets:M.Log2 "h") 9)
  in
  let m = M.merge a b in
  Alcotest.(check int) "counters add" 5 (List.assoc "x" m.M.counters);
  Alcotest.(check int) "one-sided passes through" 1
    (List.assoc "only_b" m.M.counters);
  Alcotest.(check (float 1e-9)) "gauges keep max" 9.
    (List.assoc "g" m.M.gauges);
  let h = List.assoc "h" m.M.histograms in
  Alcotest.(check int) "histogram total" 2 h.M.total;
  Alcotest.(check int) "histogram sum" 16 h.M.sum;
  Alcotest.(check int) "histogram bucket"
    2
    (h.M.counts.(M.bucket_index M.Log2 7) + h.M.counts.(M.bucket_index M.Log2 9))

let test_metrics_json () =
  let reg = M.create () in
  M.add (M.counter reg "sim.accesses") 42;
  M.observe (hist reg ~buckets:M.Log2 "lat") 100;
  let j = M.to_json (M.snapshot reg) in
  (* the export must itself be valid, parseable JSON *)
  match J.of_string (J.to_string j) with
  | Ok v ->
    Alcotest.(check bool) "counters present" true
      (J.member "counters" v <> None)
  | Error e -> Alcotest.fail e

(* --- trace ring buffer --- *)

let test_trace_disabled () =
  let t = T.disabled in
  Alcotest.(check bool) "disabled" false (T.enabled t);
  Alcotest.(check bool) "hit is false" false (T.hit t 0);
  T.span t ~cat:"cache" ~name:"x" ~pid:0 ~tid:0 ~ts:0 ~dur:1 ();
  Alcotest.(check int) "no events" 0 (List.length (T.events t))

let test_trace_ring () =
  let t = T.create ~capacity:4 ~sample:1 () in
  for i = 0 to 5 do
    T.span t ~cat:"cache" ~name:(string_of_int i) ~pid:0 ~tid:0 ~ts:i ~dur:1 ()
  done;
  Alcotest.(check int) "recorded counts everything" 6 (T.recorded t);
  Alcotest.(check int) "dropped = recorded - capacity" 2 (T.dropped t);
  let names =
    List.map
      (function T.Complete { name; _ } -> name | T.Counter _ -> "?")
      (T.events t)
  in
  Alcotest.(check (list string)) "oldest evicted, order kept"
    [ "2"; "3"; "4"; "5" ] names

let test_trace_sampling () =
  let t = T.create ~capacity:16 ~sample:3 () in
  let hits = List.filter (T.hit t) [ 0; 1; 2; 3; 4; 5; 6 ] in
  Alcotest.(check (list int)) "every 3rd request" [ 0; 3; 6 ] hits

let test_trace_json () =
  let t = T.create ~capacity:8 ~sample:1 () in
  T.span t ~cat:"noc" ~name:"link 3" ~pid:1 ~tid:2 ~ts:10 ~dur:0 ();
  T.counter t ~name:"mc0 queue depth" ~pid:0 ~ts:11 ~value:4;
  let j = T.to_json t in
  match J.member "traceEvents" j with
  | Some (J.List [ span; counter ]) ->
    Alcotest.(check bool) "ph X" true (J.member "ph" span = Some (J.String "X"));
    Alcotest.(check bool) "zero durations render 1 cycle" true
      (J.member "dur" span = Some (J.Int 1));
    Alcotest.(check bool) "ph C" true
      (J.member "ph" counter = Some (J.String "C"))
  | _ -> Alcotest.fail "traceEvents shape"

(* --- phase timer --- *)

let test_phase_timer () =
  let t = Obs.Phase_timer.create () in
  let x = Obs.Phase_timer.time t "a" (fun () -> 41 + 1) in
  Alcotest.(check int) "returns the thunk's value" 42 x;
  Obs.Phase_timer.record t "a" 0.25;
  Obs.Phase_timer.record t "b" 0.5;
  (try Obs.Phase_timer.time t "c" (fun () -> failwith "boom") with
  | Failure _ -> ());
  let names = List.map fst (Obs.Phase_timer.phases t) in
  Alcotest.(check (list string)) "first-recorded order, exn phase kept"
    [ "a"; "b"; "c" ] names;
  Alcotest.(check bool) "a accumulated" true
    (List.assoc "a" (Obs.Phase_timer.phases t) >= 0.25);
  Alcotest.(check bool) "total covers phases" true
    (Obs.Phase_timer.total t >= 0.75)

(* --- Sim.Stats on top of the registry --- *)

let test_stats_merge () =
  let a = Stats.create ~nodes:4 ~mcs:2 and b = Stats.create ~nodes:4 ~mcs:2 in
  Stats.record_access a;
  Stats.record_access a;
  Stats.record_access b;
  Stats.record_l1_hit a;
  Stats.record_offchip a ~origin:1 ~mc:0;
  Stats.record_offchip b ~origin:1 ~mc:1;
  Stats.record_leg a ~offchip:true ~hops:3 ~cycles:12;
  Stats.record_leg b ~offchip:true ~hops:(Stats.max_hops + 5) ~cycles:7;
  Stats.record_memory a ~latency:100 ~queue:40 ~row_hit:true;
  Stats.note_finish a 500;
  Stats.note_finish b 900;
  let m = Stats.merge a b in
  Alcotest.(check int) "accesses add" 3 (Stats.total_accesses m);
  Alcotest.(check int) "l1 hits add" 1 (Stats.l1_hits m);
  Alcotest.(check int) "offchip adds" 2 (Stats.offchip_accesses m);
  Alcotest.(check int) "net cycles add" 19 (Stats.offchip_net_cycles m);
  Alcotest.(check int) "messages add" 2 (Stats.offchip_messages m);
  Alcotest.(check int) "memory cycles" 100 (Stats.memory_cycles m);
  Alcotest.(check int) "row hits" 1 (Stats.row_hits m);
  Alcotest.(check int) "finish is max" 900 (Stats.finish_time m);
  Alcotest.(check int) "hop histogram adds" 1 (Stats.offchip_hops m).(3);
  Alcotest.(check int) "node x mc map adds" 1 (Stats.node_mc_requests m).(1).(0);
  Alcotest.(check int) "node x mc map adds b" 1
    (Stats.node_mc_requests m).(1).(1);
  (try
     ignore (Stats.merge a (Stats.create ~nodes:2 ~mcs:2));
     Alcotest.fail "shape mismatch accepted"
   with Invalid_argument _ -> ())

let test_hop_clamp () =
  (* routes longer than max_hops land in the last bucket instead of
     silently vanishing, and the CDF still reaches 1 *)
  let s = Stats.create ~nodes:1 ~mcs:1 in
  Stats.record_leg s ~offchip:true ~hops:(Stats.max_hops + 100) ~cycles:1;
  Stats.record_leg s ~offchip:true ~hops:0 ~cycles:1;
  let h = Stats.offchip_hops s in
  Alcotest.(check int) "clamped into last bucket" 1 h.(Stats.max_hops);
  let cdf = Stats.hop_cdf h in
  Alcotest.(check (float 1e-9)) "cdf complete" 1.0 cdf.(Stats.max_hops);
  Alcotest.(check (float 1e-9)) "half below" 0.5 cdf.(0)

let test_stats_json () =
  let s = Stats.create ~nodes:2 ~mcs:1 in
  Stats.record_access s;
  Stats.record_offchip s ~origin:0 ~mc:0;
  Stats.record_memory s ~latency:50 ~queue:10 ~row_hit:false;
  Stats.note_finish s 123;
  match J.of_string (J.to_string (Stats.to_json s)) with
  | Ok v ->
    List.iter
      (fun k ->
        Alcotest.(check bool) (k ^ " present") true (J.member k v <> None))
      [ "metrics"; "derived"; "hops"; "node_mc_requests" ]
  | Error e -> Alcotest.fail e

(* --- golden Chrome trace for a tiny 2x2-mesh run --- *)

(* kept in sync with test/golden/trace_2x2.json: same program, platform,
   capacity and sampling.  The simulator is deterministic, so the exported
   trace is byte-stable; regenerate the golden when the engine's timing
   model changes (see test/golden/README). *)
let golden_src =
  {|
param N = 96;
array A[N][N];
array B[N][N];
parfor i = 0 to N-1 { for j = 0 to N-1 { A[i][j] = B[i][j] + B[j][i]; } }
|}

let parse src =
  match Lang.Parser.parse_result src with
  | Ok p -> p
  | Error _ -> failwith "parse failed"

let mesh2x2 () =
  match Sim.Config.mesh ~width:2 ~height:2 (Sim.Config.scaled ()) with
  | Ok c -> c
  | Error e -> failwith e

let golden_trace () =
  let cfg = mesh2x2 () in
  let trace = T.create ~capacity:256 ~sample:7 () in
  ignore
    (Sim.Runner.run cfg ~optimized:false ~trace (parse golden_src));
  trace

let read_file path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

let test_golden_trace () =
  let trace = golden_trace () in
  let got = T.to_json trace in
  let want =
    match J.of_string (read_file "golden/trace_2x2.json") with
    | Ok v -> v
    | Error e -> Alcotest.fail ("golden file unreadable: " ^ e)
  in
  Alcotest.(check bool) "matches golden/trace_2x2.json" true (J.equal got want)

let test_trace_categories () =
  (* an end-to-end run must produce spans for every pipeline stage *)
  let cfg = mesh2x2 () in
  let trace = T.create ~capacity:65536 ~sample:1 () in
  ignore
    (Sim.Runner.run cfg ~optimized:false ~trace (parse golden_src));
  let cats =
    List.fold_left
      (fun acc -> function
        | T.Complete { cat; _ } -> if List.mem cat acc then acc else cat :: acc
        | T.Counter _ -> acc)
      [] (T.events trace)
  in
  List.iter
    (fun c ->
      Alcotest.(check bool) (c ^ " spans present") true (List.mem c cats))
    [ "cache"; "noc"; "mc-queue"; "dram" ];
  Alcotest.(check bool) "queue-depth counter series present" true
    (List.exists
       (function T.Counter _ -> true | T.Complete _ -> false)
       (T.events trace))

let suite =
  [
    ( "obs",
      [
        Alcotest.test_case "json basics" `Quick test_json_basics;
        Alcotest.test_case "json parse" `Quick test_json_parse;
        Alcotest.test_case "json non-finite" `Quick test_json_nonfinite;
        QCheck_alcotest.to_alcotest prop_json_roundtrip;
        QCheck_alcotest.to_alcotest prop_json_roundtrip_minified;
        QCheck_alcotest.to_alcotest prop_log2_buckets;
        QCheck_alcotest.to_alcotest prop_linear_buckets;
        Alcotest.test_case "log2 boundaries" `Quick test_log2_boundaries;
        Alcotest.test_case "registry basics" `Quick test_registry_basics;
        Alcotest.test_case "snapshot merge" `Quick test_snapshot_merge;
        Alcotest.test_case "metrics json" `Quick test_metrics_json;
        Alcotest.test_case "trace disabled" `Quick test_trace_disabled;
        Alcotest.test_case "trace ring" `Quick test_trace_ring;
        Alcotest.test_case "trace sampling" `Quick test_trace_sampling;
        Alcotest.test_case "trace json" `Quick test_trace_json;
        Alcotest.test_case "phase timer" `Quick test_phase_timer;
        Alcotest.test_case "stats merge" `Quick test_stats_merge;
        Alcotest.test_case "hop clamp" `Quick test_hop_clamp;
        Alcotest.test_case "stats json" `Quick test_stats_json;
        Alcotest.test_case "golden 2x2 trace" `Quick test_golden_trace;
        Alcotest.test_case "trace categories" `Quick test_trace_categories;
      ] );
  ]
