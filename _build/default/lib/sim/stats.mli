(** Statistics collected by a simulation run — one counter per quantity
    the paper reports.

    "Network latency" is time spent traversing (and queueing for) mesh
    links; an access's legs are attributed to the on-chip or off-chip
    category depending on whether the access was ultimately served
    on-chip (cache-to-cache or home-bank hit) or by a memory controller.
    "Memory latency" is queue + service time at the controller. *)

type t = {
  mutable total_accesses : int;
  mutable l1_hits : int;
  mutable l2_hits : int;  (** served by some L2 (local, home or peer) *)
  mutable offchip_accesses : int;
  (* network latency sums and message counts *)
  mutable onchip_net_cycles : int;
  mutable onchip_messages : int;
  mutable offchip_net_cycles : int;
  mutable offchip_messages : int;
  (* memory (controller) latency *)
  mutable memory_cycles : int;  (** queue + service, reads only *)
  mutable memory_queue_cycles : int;
  mutable row_hits : int;
  (* hop histograms for the Fig. 15 CDFs (index = links traversed) *)
  onchip_hops : int array;
  offchip_hops : int array;
  (* off-chip requests per (requester node, controller) — Fig. 13 *)
  node_mc_requests : int array array;
  (* execution *)
  mutable finish_time : int;
  mutable writebacks : int;
  mutable page_fallbacks : int;
}

val max_hops : int
(** Histogram upper bound; longer routes saturate at this bucket. *)

val create : nodes:int -> mcs:int -> t

val avg_onchip_net : t -> float

val avg_offchip_net : t -> float

val avg_memory : t -> float

val offchip_fraction : t -> float
(** Off-chip accesses over total data accesses (Fig. 3). *)

val hop_cdf : int array -> float array
(** [hop_cdf h].(x) = fraction of messages traversing ≤ x links. *)

val pp_summary : Format.formatter -> t -> unit
