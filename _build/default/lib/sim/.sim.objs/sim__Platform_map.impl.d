lib/sim/platform_map.ml: Array Buffer Config Core List Noc Printf String
