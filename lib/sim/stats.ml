module M = Obs.Metrics

type t = {
  reg : M.registry;
  c_total_accesses : M.counter;
  c_l1_hits : M.counter;
  c_l2_hits : M.counter;
  c_offchip_accesses : M.counter;
  c_onchip_net_cycles : M.counter;
  c_onchip_messages : M.counter;
  c_offchip_net_cycles : M.counter;
  c_offchip_messages : M.counter;
  c_memory_cycles : M.counter;
  c_memory_queue_cycles : M.counter;
  c_row_hits : M.counter;
  c_writebacks : M.counter;
  c_page_fallbacks : M.counter;
  g_finish_time : M.gauge;
  h_mem_latency : M.histogram;  (** log2-bucketed per-read latency *)
  h_mem_queue : M.histogram;
  (* hop histograms for the Fig. 15 CDFs (index = links traversed) *)
  onchip_hops : int array;
  offchip_hops : int array;
  (* off-chip requests per (requester node, controller) — Fig. 13 *)
  node_mc_requests : int array array;
}

let max_hops = 64

(* a fresh registry cannot hold a conflicting registration, so the
   histogram Result is safe to force here *)
let fresh_histogram reg ~buckets name =
  match M.histogram reg ~buckets name with
  | Ok h -> h
  | Error e -> invalid_arg e

let create ~nodes ~mcs =
  let reg = M.create () in
  {
    reg;
    c_total_accesses = M.counter reg "sim.total_accesses";
    c_l1_hits = M.counter reg "sim.l1_hits";
    c_l2_hits = M.counter reg "sim.l2_hits";
    c_offchip_accesses = M.counter reg "sim.offchip_accesses";
    c_onchip_net_cycles = M.counter reg "net.onchip_cycles";
    c_onchip_messages = M.counter reg "net.onchip_messages";
    c_offchip_net_cycles = M.counter reg "net.offchip_cycles";
    c_offchip_messages = M.counter reg "net.offchip_messages";
    c_memory_cycles = M.counter reg "mem.cycles";
    c_memory_queue_cycles = M.counter reg "mem.queue_cycles";
    c_row_hits = M.counter reg "mem.row_hits";
    c_writebacks = M.counter reg "sim.writebacks";
    c_page_fallbacks = M.counter reg "os.page_fallbacks";
    g_finish_time = M.gauge reg "sim.finish_time";
    h_mem_latency = fresh_histogram reg ~buckets:M.Log2 "mem.latency";
    h_mem_queue = fresh_histogram reg ~buckets:M.Log2 "mem.queue_delay";
    onchip_hops = Array.make (max_hops + 1) 0;
    offchip_hops = Array.make (max_hops + 1) 0;
    node_mc_requests = Array.init nodes (fun _ -> Array.make mcs 0);
  }

let registry t = t.reg

(* ---- recording ---- *)

let record_access t = M.incr t.c_total_accesses

let record_l1_hit t = M.incr t.c_l1_hits

let record_l2_hit t = M.incr t.c_l2_hits

let record_offchip t ~origin ~mc =
  M.incr t.c_offchip_accesses;
  t.node_mc_requests.(origin).(mc) <- t.node_mc_requests.(origin).(mc) + 1

let record_leg t ~offchip ~hops ~cycles =
  (* clamp into the last bucket: routes longer than [max_hops] must not
     silently vanish from the CDF *)
  let h = min hops max_hops in
  if offchip then begin
    t.offchip_hops.(h) <- t.offchip_hops.(h) + 1;
    M.add t.c_offchip_net_cycles cycles;
    M.incr t.c_offchip_messages
  end
  else begin
    t.onchip_hops.(h) <- t.onchip_hops.(h) + 1;
    M.add t.c_onchip_net_cycles cycles;
    M.incr t.c_onchip_messages
  end

let record_memory t ~latency ~queue ~row_hit =
  M.add t.c_memory_cycles latency;
  M.add t.c_memory_queue_cycles queue;
  if row_hit then M.incr t.c_row_hits;
  M.observe t.h_mem_latency latency;
  M.observe t.h_mem_queue queue

let record_writeback t = M.incr t.c_writebacks

let note_finish t cycle = M.set_max t.g_finish_time (float_of_int cycle)

let set_page_fallbacks t n =
  M.add t.c_page_fallbacks (n - M.value t.c_page_fallbacks)

(* ---- readers ---- *)

let total_accesses t = M.value t.c_total_accesses

let l1_hits t = M.value t.c_l1_hits

let l2_hits t = M.value t.c_l2_hits

let offchip_accesses t = M.value t.c_offchip_accesses

let onchip_net_cycles t = M.value t.c_onchip_net_cycles

let onchip_messages t = M.value t.c_onchip_messages

let offchip_net_cycles t = M.value t.c_offchip_net_cycles

let offchip_messages t = M.value t.c_offchip_messages

let memory_cycles t = M.value t.c_memory_cycles

let memory_queue_cycles t = M.value t.c_memory_queue_cycles

let row_hits t = M.value t.c_row_hits

let writebacks t = M.value t.c_writebacks

let page_fallbacks t = M.value t.c_page_fallbacks

let finish_time t = int_of_float (M.gauge_value t.g_finish_time)

let onchip_hops t = t.onchip_hops

let offchip_hops t = t.offchip_hops

let node_mc_requests t = t.node_mc_requests

(* ---- derived ---- *)

let div a b = if b = 0 then 0. else float_of_int a /. float_of_int b

let avg_onchip_net t = div (onchip_net_cycles t) (onchip_messages t)

let avg_offchip_net t = div (offchip_net_cycles t) (offchip_messages t)

let avg_memory t = div (memory_cycles t) (offchip_accesses t)

let offchip_fraction t = div (offchip_accesses t) (total_accesses t)

let hop_cdf h =
  let total = Array.fold_left ( + ) 0 h in
  let acc = ref 0 in
  let cdf =
    Array.map
      (fun n ->
        acc := !acc + n;
        if total = 0 then 1. else float_of_int !acc /. float_of_int total)
      h
  in
  (* the CDF must be monotone and exhaustive: recording clamps long routes
     into the last bucket, so nothing can be lost off the end *)
  Array.iteri
    (fun i v -> assert (v >= (if i = 0 then 0. else cdf.(i - 1)) && v <= 1.))
    cdf;
  assert (Array.length cdf = 0 || cdf.(Array.length cdf - 1) = 1.);
  cdf

(* ---- aggregation and export ---- *)

let merge a b =
  let nodes = Array.length a.node_mc_requests
  and mcs =
    if Array.length a.node_mc_requests = 0 then 0
    else Array.length a.node_mc_requests.(0)
  in
  if
    nodes <> Array.length b.node_mc_requests
    || (nodes > 0 && mcs <> Array.length b.node_mc_requests.(0))
  then invalid_arg "Stats.merge: platform shapes differ";
  let t = create ~nodes ~mcs in
  M.merge_into ~into:t.reg a.reg;
  M.merge_into ~into:t.reg b.reg;
  let add_arr dst src = Array.iteri (fun i v -> dst.(i) <- dst.(i) + v) src in
  add_arr t.onchip_hops a.onchip_hops;
  add_arr t.onchip_hops b.onchip_hops;
  add_arr t.offchip_hops a.offchip_hops;
  add_arr t.offchip_hops b.offchip_hops;
  Array.iteri (fun n row -> add_arr t.node_mc_requests.(n) row) a.node_mc_requests;
  Array.iteri (fun n row -> add_arr t.node_mc_requests.(n) row) b.node_mc_requests;
  t

let snapshot t = M.snapshot t.reg

let to_json t =
  let open Obs.Json in
  obj
    [
      ("metrics", M.to_json (snapshot t));
      ( "derived",
        Obj
          [
            ("avg_onchip_net", Float (avg_onchip_net t));
            ("avg_offchip_net", Float (avg_offchip_net t));
            ("avg_memory", Float (avg_memory t));
            ("offchip_fraction", Float (offchip_fraction t));
            ("finish_time", Int (finish_time t));
          ] );
      ( "hops",
        Obj
          [
            ("onchip", int_array t.onchip_hops);
            ("offchip", int_array t.offchip_hops);
            ("onchip_cdf", float_array (hop_cdf t.onchip_hops));
            ("offchip_cdf", float_array (hop_cdf t.offchip_hops));
          ] );
      ("node_mc_requests", array int_array t.node_mc_requests);
    ]

let pp_summary ppf t =
  Format.fprintf ppf
    "@[<v>accesses %d (L1 hits %d, L2 %d, off-chip %d = %.1f%%)@,\
     net on-chip %.1f cyc/msg, off-chip %.1f cyc/msg, memory %.1f cyc \
     (queue %.1f), row hits %d@,\
     finish %d cycles, writebacks %d, page fallbacks %d@]"
    (total_accesses t) (l1_hits t) (l2_hits t) (offchip_accesses t)
    (100. *. offchip_fraction t)
    (avg_onchip_net t) (avg_offchip_net t) (avg_memory t)
    (div (memory_queue_cycles t) (offchip_accesses t))
    (row_hits t) (finish_time t) (writebacks t) (page_fallbacks t)
