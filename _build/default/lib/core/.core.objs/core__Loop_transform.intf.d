lib/core/loop_transform.mli: Affine Lang
