lib/lang/parser.ml: Ast Format Hashtbl Lexer List Printf
