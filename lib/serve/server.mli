(** Open-system multi-tenant consolidation server.

    Tenants arrive on a seeded Poisson-like (geometric inter-arrival)
    process, are bound round-robin to core slots, and run co-scheduled on
    one engine instance sharing a single {!Os_sim.Page_alloc} pool: each
    tenant's pages are placed under the scenario policy (MC-aware uses
    the tenant's own compiled layout hints, falling back to first touch),
    per-MC frame budgets are enforced, and a departing tenant's whole
    address slice is reclaimed for later arrivals.  When a slot is busy
    the next tenant queues behind it (FIFO admission per slot, wired as
    an {!Sim.Engine.job} [start_after] chain), so queue wait is part of
    each tenant's completion latency.

    Everything is deterministic in (scenario, seed): arrival times, the
    app lottery, placement and the engine itself — two runs of the same
    scenario produce byte-identical result documents. *)

type tenant = {
  id : int;
  app : string;
  slot : int;  (** core slot ([slot * threads_per_tenant] core offset) *)
  arrival : int;  (** arrival cycle *)
  start : int;  (** actual start (arrival, or slot predecessor's finish) *)
  finish : int;
  measured : int;  (** steady-state execution time in the co-run *)
  solo : int;  (** the same tenant alone on an idle machine *)
  slowdown : float;  (** measured / solo — the per-tenant QoS headline *)
  offchip : int;  (** measured off-chip accesses attributed to this tenant *)
  fallbacks : int;  (** pages denied their desired controller *)
}

val queue_wait : tenant -> int
val completion_latency : tenant -> int

type qos = {
  weighted_speedup : float;  (** (1/n) Σ solo_i / measured_i *)
  p50_latency : int;  (** completion-latency percentiles (nearest rank) *)
  p95_latency : int;
  p99_latency : int;
  total_fallbacks : int;
  avg_queue_wait : float;
}

type t = {
  scenario : Scenario.t;
  cfg : Sim.Config.t;
  engine : Sim.Engine.result;
  tenants : tenant list;  (** in admission order; [id] = engine job index *)
  qos : qos;
  attr : Obs.Attr.t option;
      (** combined per-tenant attribution cube (site arrays prefixed
          [t<id>:<app>/]) when requested *)
}

val run :
  ?attr:bool ->
  ?progress:Obs.Progress.sink ->
  ?domains:int ->
  ?on_plan:(string -> unit) ->
  Scenario.t ->
  (t, string) result
(** Runs the scenario.  [attr] (default false) additionally attributes
    every measured off-chip access to the owning tenant's access sites.
    [domains] (default 1) runs the co-scheduled engine pass through
    {!Sim.Par_engine} — byte-identical results for every value; a
    first-touch scenario whose tenants are cluster-confined
    (threads_per_tenant ≤ a cluster's threads) actually parallelizes,
    anything else falls back with the reason passed to [on_plan].  The
    per-tenant solo calibration runs stay sequential.
    [progress] receives tenant lifecycle events ([tenant_arrive],
    [tenant_start], [tenant_finish], then [serve_done]) in simulated-time
    order. *)

val tenant_json : tenant -> Obs.Json.t

val qos_json : qos -> Obs.Json.t

val result_json : t -> Obs.Json.t
(** The {!Sweep.Exec.result_json} document (["app"] = ["serve:<name>"]),
    extended with ["scenario"], ["tenants"] and ["qos"] sections — the
    shape [report] renders the per-tenant QoS table from. *)
