lib/affine/matrix.mli: Format Vec
