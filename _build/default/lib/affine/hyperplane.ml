type t = { normal : Vec.t; offset : int }

let make normal offset = { normal; offset }

let orthogonal_to_dim ~dim ~rank ~offset = { normal = Vec.unit rank dim; offset }

let contains h p = Vec.dot h.normal p = h.offset

let same_family a b = Vec.equal (Vec.primitive a.normal) (Vec.primitive b.normal)

let pp ppf h = Format.fprintf ppf "%a·x = %d" Vec.pp h.normal h.offset
