lib/affine/gauss.mli: Matrix Vec
