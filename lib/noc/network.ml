type config = { per_hop_latency : int; link_bytes : int }

let default_config = { per_hop_latency = 4; link_bytes = 16 }

type t = {
  topo : Topology.t;
  config : config;
  nodes : int;
  free_at : int array;  (** per link-id: earliest cycle it can accept *)
  link_busy : int array;  (** per link-id: cycles reserved so far *)
  routes : int array array;
      (** memoized XY routes as link-id arrays, indexed [src·nodes + dst];
          a pair is computed from the topology once, on first use ([||]
          marks an unfilled slot — every src ≠ dst route has ≥ 1 link) *)
  hier : bool;  (** the topology has ≥ 2 chiplets *)
  cross : bool array;  (** per link-id: crosses a chiplet boundary *)
  chip_latency : int;  (** per-hop latency of a crossing link *)
  chip_bytes : int;  (** width of a crossing link *)
  mutable busy : int;
}

let create ?(config = default_config) topo =
  let links = Topology.num_link_ids topo in
  let nodes = Topology.nodes topo in
  let hier = Topology.num_chiplets topo > 1 in
  let cross =
    if not hier then [||]
    else begin
      (* classify every in-mesh directed link once; boundary links keep
         false — they are never on a route *)
      let a = Array.make links false in
      for n = 0 to nodes - 1 do
        let c = Topology.coord_of_node topo n in
        List.iter
          (fun dir ->
            let valid =
              match (dir : Topology.dir) with
              | Topology.East -> c.Coord.x < topo.Topology.width - 1
              | Topology.West -> c.Coord.x > 0
              | Topology.South -> c.Coord.y < topo.Topology.height - 1
              | Topology.North -> c.Coord.y > 0
            in
            if valid then begin
              let l = { Topology.from_node = n; dir } in
              a.(Topology.link_id topo l) <-
                Topology.link_crosses_chiplet topo l
            end)
          [ Topology.East; Topology.West; Topology.North; Topology.South ]
      done;
      a
    end
  in
  let chip_latency, chip_bytes =
    match topo.Topology.chiplets with
    | Some c when hier -> (c.Topology.link_latency, c.Topology.link_bytes)
    | _ -> (config.per_hop_latency, config.link_bytes)
  in
  {
    topo;
    config;
    nodes;
    free_at = Array.make links 0;
    link_busy = Array.make links 0;
    routes = Array.make (nodes * nodes) [||];
    hier;
    cross;
    chip_latency;
    chip_bytes;
    busy = 0;
  }

let route net ~src ~dst =
  let idx = (src * net.nodes) + dst in
  let r = net.routes.(idx) in
  if Array.length r > 0 then r
  else begin
    let r = Topology.link_ids net.topo ~src ~dst in
    net.routes.(idx) <- r;
    r
  end

(* Arrival time only — the allocation-free variant the simulator's event
   loop uses (hop counts are Manhattan distances the caller can memoize;
   the contention component is derivable from the arrival time).  On a
   hierarchical topology, links that cross a chiplet boundary charge
   their own latency and serialize over their own (narrower) width; the
   flat path is untouched. *)
let transfer ?on_hop net ~now ~src ~dst ~bytes =
  if src = dst then now
  else begin
    let serialization =
      max 1 ((bytes + net.config.link_bytes - 1) / net.config.link_bytes)
    in
    let ser_cross =
      if net.hier then max 1 ((bytes + net.chip_bytes - 1) / net.chip_bytes)
      else serialization
    in
    let route = route net ~src ~dst in
    let t = ref now in
    let last_ser = ref serialization in
    for k = 0 to Array.length route - 1 do
      let id = Array.unsafe_get route k in
      let crossing = net.hier && Array.unsafe_get net.cross id in
      let ser = if crossing then ser_cross else serialization in
      let lat = if crossing then net.chip_latency else net.config.per_hop_latency in
      let start = max !t net.free_at.(id) in
      net.free_at.(id) <- start + ser;
      net.link_busy.(id) <- net.link_busy.(id) + ser;
      net.busy <- net.busy + ser;
      t := start + lat;
      last_ser := ser;
      match on_hop with None -> () | Some f -> f ~link:id ~start ~finish:!t
    done;
    (* wormhole pipelining: header latency per hop, body flits pipeline
       behind it and arrive [serialization-1] cycles after the header
       (the serialization of the last — narrowest-relevant — link) *)
    !t + !last_ser - 1
  end

(* Unloaded latency of the (src, dst) route: the contention-free baseline
   [send] subtracts.  Flat meshes keep the closed form; hierarchical ones
   walk the memoized route so each link charges its class latency. *)
let unloaded net ~src ~dst ~serialization ~ser_cross =
  if not net.hier then
    (Topology.distance net.topo src dst * net.config.per_hop_latency)
    + serialization - 1
  else begin
    let route = route net ~src ~dst in
    let t = ref 0 in
    let last_ser = ref serialization in
    for k = 0 to Array.length route - 1 do
      let id = Array.unsafe_get route k in
      let crossing = Array.unsafe_get net.cross id in
      t := !t + (if crossing then net.chip_latency else net.config.per_hop_latency);
      last_ser := if crossing then ser_cross else serialization
    done;
    !t + !last_ser - 1
  end

let send ?on_hop net ~now ~src ~dst ~bytes =
  if src = dst then (now, 0, 0)
  else begin
    let serialization =
      max 1 ((bytes + net.config.link_bytes - 1) / net.config.link_bytes)
    in
    let ser_cross =
      if net.hier then max 1 ((bytes + net.chip_bytes - 1) / net.chip_bytes)
      else serialization
    in
    let t = transfer ?on_hop net ~now ~src ~dst ~bytes in
    let hops = Topology.distance net.topo src dst in
    let unloaded = unloaded net ~src ~dst ~serialization ~ser_cross in
    (t, hops, t - now - unloaded)
  end

let reset net =
  Array.fill net.free_at 0 (Array.length net.free_at) 0;
  Array.fill net.link_busy 0 (Array.length net.link_busy) 0;
  net.busy <- 0

let total_link_busy net = net.busy

let link_busy net = Array.copy net.link_busy

let utilization net ~at =
  let at = max 1 at in
  Array.map (fun b -> float_of_int b /. float_of_int at) net.link_busy
