(* sweep — parallel experiment orchestration over the simulator.

     sweep run spec.json -j 4 --out results/       # execute (resumes)
     sweep run spec.json -j 0 --out results/       # sequential reference
     sweep status results/                         # live or post-mortem
     sweep status results/ --follow                # tail live progress
     sweep merge results/                          # rebuild merged.json

   `run` shards the spec's (config × app × optimized) product across
   forked workers, caches each job's stats under results/cache/<hash>.json
   keyed by (config, workload, code version), and merges completed
   registries into results/merged.json.  Re-running executes only the
   missing jobs; failed jobs are recorded in manifest.json instead of
   aborting the sweep.

   Exit codes: 0 all jobs completed, 3 sweep finished but some jobs
   failed, 1 bad spec/usage, 2 cmdliner usage error. *)

open Cmdliner

let run_cmd spec_file out jobs timeout retries backoff force seq inject_fail
    domains quiet =
  match Sweep.Spec.load spec_file with
  | Error e ->
    Printf.eprintf "sweep: %s\n" e;
    1
  | Ok spec -> (
    let eff_domains =
      Option.value domains ~default:spec.Sweep.Spec.domains
    in
    match
      Cli.check_domains ~available:Sim.Par_backend.available eff_domains
    with
    | Error e ->
      Printf.eprintf "sweep: %s\n" e;
      1
    | Ok () ->
    let workers = if seq then 0 else jobs in
    let log = if quiet then fun _ -> () else fun s -> Printf.printf "%s\n%!" s in
    if not quiet then
      Printf.printf "sweep %s: %d jobs, %s\n%!" spec.Sweep.Spec.name
        (Array.length spec.Sweep.Spec.jobs)
        (if workers <= 0 then "sequential (in-process)"
         else Printf.sprintf "%d workers" workers);
    (* live progress stream: one NDJSON event per line, tailed by
       `sweep status DIR --follow` from another terminal *)
    (try Unix.mkdir out 0o755 with Unix.Unix_error _ -> ());
    let progress =
      match
        Sweep.Progress_file.sink_for out
      with
      | Ok s -> s
      | Error e ->
        Printf.eprintf "sweep: progress stream disabled: %s\n" e;
        Obs.Progress.null
    in
    let report =
      Sweep.Orchestrate.run_sweep ~workers ?timeout_s:timeout ?retries
        ~backoff_s:backoff ~force ?inject_fail ~domains:eff_domains ~log
        ~progress ~out spec
    in
    Obs.Progress.close progress;
    let ok, cached, failed, pending =
      Sweep.Manifest.summary report.Sweep.Orchestrate.manifest
    in
    if not quiet then begin
      Printf.printf "%s: %d jobs | ok %d | cached %d | failed %d%s\n"
        spec.Sweep.Spec.name
        (Array.length spec.Sweep.Spec.jobs)
        ok cached failed
        (if pending > 0 then Printf.sprintf " | pending %d" pending else "");
      match report.Sweep.Orchestrate.merged with
      | Some _ ->
        Printf.printf "merged registry: %s\n"
          (Filename.concat out "merged.json")
      | None -> Printf.printf "no merged registry (no completed jobs)\n"
    end;
    if failed > 0 || pending > 0 then 3 else 0)

(* one human line per progress event *)
let print_event ev =
  let str k = match Obs.Json.member k ev with
    | Some (Obs.Json.String s) -> s
    | _ -> "?"
  in
  let num k = match Obs.Json.member k ev with
    | Some (Obs.Json.Int n) -> string_of_int n
    | Some (Obs.Json.Float f) -> Printf.sprintf "%.1f" f
    | _ -> "?"
  in
  (match str "event" with
  | "sweep_start" ->
    Printf.printf "sweep %s: %s jobs (%s to run, %s cached)\n" (str "sweep")
      (num "jobs") (num "to_run") (num "cached")
  | "job_start" ->
    Printf.printf "start  %-30s attempt %s\n" (str "job") (num "attempt")
  | "job_retry" ->
    Printf.printf "retry  %-30s attempt %s failed: %s\n" (str "job")
      (num "attempt") (str "reason")
  | "job_finish" ->
    Printf.printf "%-6s %-30s [%s done, %s left, eta %ss]%s\n" (str "status")
      (str "job") (num "resolved") (num "remaining") (num "eta_s")
      (match Obs.Json.member "measured_time" ev with
      | Some (Obs.Json.Int t) -> Printf.sprintf " measured_time=%d" t
      | _ -> "")
  | "sweep_done" ->
    Printf.printf "done   ok %s | cached %s | failed %s (%ss)\n" (num "ok")
      (num "cached") (num "failed") (num "elapsed_s")
  | e -> Printf.printf "%s\n" (if e = "?" then "unrecognized event" else e));
  flush stdout

let is_done ev =
  match Obs.Json.member "event" ev with
  | Some (Obs.Json.String "sweep_done") -> true
  | _ -> false

let status_cmd out follow timeout =
  if follow then begin
    match
      Obs.Progress.follow ~timeout_s:timeout ~stop:is_done
        ~on_event:print_event
        (Sweep.Progress_file.path out)
    with
    | Ok () -> 0
    | Error e ->
      Printf.eprintf "sweep: %s\n" e;
      1
  end
  else
    match Sweep.Manifest.load ~dir:out with
    | Error e ->
      Printf.eprintf "sweep: %s\n" e;
      1
    | Ok m ->
      let ok, cached, failed, pending = Sweep.Manifest.summary m in
      Printf.printf "%s: %d jobs | ok %d | cached %d | failed %d | pending %d\n"
        m.Sweep.Manifest.sweep
        (Array.length m.Sweep.Manifest.entries)
        ok cached failed pending;
      Array.iter
        (fun (e : Sweep.Manifest.entry) ->
          match e.Sweep.Manifest.status with
          | Sweep.Manifest.Failed reason ->
            Printf.printf "  failed %-30s attempts %d: %s\n" e.Sweep.Manifest.id
              e.Sweep.Manifest.attempts reason
          | Sweep.Manifest.Pending ->
            Printf.printf "  pending %s\n" e.Sweep.Manifest.id
          | _ -> ())
        m.Sweep.Manifest.entries;
      0

let merge_cmd out =
  match Sweep.Manifest.load ~dir:out with
  | Error e ->
    Printf.eprintf "sweep: %s\n" e;
    1
  | Ok m -> (
    match Sweep.Orchestrate.merge_results ~out m with
    | Error e ->
      Printf.eprintf "sweep: %s\n" e;
      1
    | Ok doc ->
      let path = Sweep.Orchestrate.write_merged ~out doc in
      Printf.printf "merged registry: %s\n" path;
      0)

let spec_arg =
  Arg.(
    required
    & pos 0 (some file) None
    & info [] ~docv:"SPEC" ~doc:"Sweep specification (JSON).")

let out_arg =
  Arg.(
    required
    & opt (some string) None
    & info [ "out"; "o" ] ~docv:"DIR"
        ~doc:"Output directory (manifest, cache, merged report).")

let dir_pos =
  Arg.(
    required
    & pos 0 (some string) None
    & info [] ~docv:"DIR" ~doc:"A sweep output directory.")

let jobs_arg =
  Arg.(
    value & opt int 4
    & info [ "jobs"; "j" ] ~docv:"N"
        ~doc:"Worker processes; 0 runs the jobs sequentially in-process.")

let timeout_arg =
  Arg.(
    value
    & opt (some float) None
    & info [ "timeout" ] ~docv:"SECONDS"
        ~doc:"Per-job wall-clock budget (overrides the spec).")

let retries_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "retries" ] ~docv:"K"
        ~doc:"Extra attempts after a crash/timeout (overrides the spec).")

let backoff_arg =
  Arg.(
    value & opt float 0.5
    & info [ "backoff" ] ~docv:"SECONDS"
        ~doc:"Base retry backoff, doubling per attempt.")

let force_arg =
  Arg.(
    value & flag
    & info [ "force" ] ~doc:"Re-execute jobs even when cached results exist.")

let seq_arg =
  Arg.(
    value & flag
    & info [ "sequential" ]
        ~doc:"Run in-process without forking (same as --jobs 0).")

let inject_fail_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "inject-fail" ] ~docv:"SUBSTR"
        ~doc:
          "Testing: crash the worker of every job whose id contains \
           SUBSTR (exercises retry and graceful-degradation paths).")

let domains_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "domains" ] ~docv:"N"
        ~doc:
          "Worker domains for each job's engine pass (overrides the \
           spec; needs an OCaml 5 build for N > 1).  Results are \
           byte-identical for every N, so cached results stay valid.")

let quiet_arg =
  Arg.(value & flag & info [ "quiet"; "q" ] ~doc:"No per-job progress output.")

let run_c =
  Cmd.v
    (Cmd.info "run" ~doc:"execute a sweep spec (resumes from the cache)")
    Term.(
      const run_cmd $ spec_arg $ out_arg $ jobs_arg $ timeout_arg
      $ retries_arg $ backoff_arg $ force_arg $ seq_arg $ inject_fail_arg
      $ domains_arg $ quiet_arg)

let follow_arg =
  Arg.(
    value & flag
    & info [ "follow"; "f" ]
        ~doc:
          "Tail the directory's live progress stream (progress.ndjson), \
           printing each event as it lands, until the sweep finishes.")

let follow_timeout_arg =
  Arg.(
    value & opt float 600.
    & info [ "timeout" ] ~docv:"SECONDS"
        ~doc:
          "With --follow: give up after this long without a sweep_done \
           event (bounded, so a crashed sweep cannot hang a CI job).")

let status_c =
  Cmd.v
    (Cmd.info "status"
       ~doc:"summarize a sweep directory's manifest, or tail its progress")
    Term.(const status_cmd $ dir_pos $ follow_arg $ follow_timeout_arg)

let merge_c =
  Cmd.v
    (Cmd.info "merge" ~doc:"rebuild merged.json from cached results")
    Term.(const merge_cmd $ dir_pos)

let cmd =
  let doc = "parallel experiment orchestration for the offchip simulator" in
  Cmd.group (Cmd.info "sweep" ~doc) [ run_c; status_c; merge_c ]

let () = exit (Cmd.eval' cmd)
