type t = {
  mutable total_accesses : int;
  mutable l1_hits : int;
  mutable l2_hits : int;
  mutable offchip_accesses : int;
  mutable onchip_net_cycles : int;
  mutable onchip_messages : int;
  mutable offchip_net_cycles : int;
  mutable offchip_messages : int;
  mutable memory_cycles : int;
  mutable memory_queue_cycles : int;
  mutable row_hits : int;
  onchip_hops : int array;
  offchip_hops : int array;
  node_mc_requests : int array array;
  mutable finish_time : int;
  mutable writebacks : int;
  mutable page_fallbacks : int;
}

let max_hops = 64

let create ~nodes ~mcs =
  {
    total_accesses = 0;
    l1_hits = 0;
    l2_hits = 0;
    offchip_accesses = 0;
    onchip_net_cycles = 0;
    onchip_messages = 0;
    offchip_net_cycles = 0;
    offchip_messages = 0;
    memory_cycles = 0;
    memory_queue_cycles = 0;
    row_hits = 0;
    onchip_hops = Array.make (max_hops + 1) 0;
    offchip_hops = Array.make (max_hops + 1) 0;
    node_mc_requests = Array.init nodes (fun _ -> Array.make mcs 0);
    finish_time = 0;
    writebacks = 0;
    page_fallbacks = 0;
  }

let div a b = if b = 0 then 0. else float_of_int a /. float_of_int b

let avg_onchip_net t = div t.onchip_net_cycles t.onchip_messages

let avg_offchip_net t = div t.offchip_net_cycles t.offchip_messages

let avg_memory t = div t.memory_cycles t.offchip_accesses

let offchip_fraction t = div t.offchip_accesses t.total_accesses

let hop_cdf h =
  let total = Array.fold_left ( + ) 0 h in
  let acc = ref 0 in
  Array.map
    (fun n ->
      acc := !acc + n;
      if total = 0 then 1. else float_of_int !acc /. float_of_int total)
    h

let pp_summary ppf t =
  Format.fprintf ppf
    "@[<v>accesses %d (L1 hits %d, L2 %d, off-chip %d = %.1f%%)@,\
     net on-chip %.1f cyc/msg, off-chip %.1f cyc/msg, memory %.1f cyc \
     (queue %.1f), row hits %d@,\
     finish %d cycles, writebacks %d, page fallbacks %d@]"
    t.total_accesses t.l1_hits t.l2_hits t.offchip_accesses
    (100. *. offchip_fraction t)
    (avg_onchip_net t) (avg_offchip_net t) (avg_memory t)
    (div t.memory_queue_cycles t.offchip_accesses)
    t.row_hits t.finish_time t.writebacks t.page_fallbacks
