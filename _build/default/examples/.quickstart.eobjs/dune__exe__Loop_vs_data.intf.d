examples/loop_vs_data.mli:
