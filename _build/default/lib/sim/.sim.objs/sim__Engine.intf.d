lib/sim/engine.mli: Config Lang Stats
