lib/workloads/minighost.mli: App
