(** applu (SPEC OMP): SSOR solver — successive sweeps parallel over
    different dimensions, so the two nests prefer conflicting layouts and
    the weighted-majority choice satisfies only part of the references
    (visible in Table 2). *)

let app =
  App.make ~name:"applu"
    ~description:"SSOR: sweeps with conflicting parallel dimensions"
    {|
param N = 320;
array A[N][N];
array B[N][N];
// column-parallel sparse init: bad for first-touch
parfor j0 = 0 to N/16-1 {
  for i = 0 to N-1 {
    A[i][16*j0] = i;
    B[i][16*j0] = i + j0;
  }
}
parfor i = 1 to N-2 {
  for j = 1 to N-2 {
    A[i][j] = A[i][j] + B[i][j] + B[i-1][j];
  }
}
parfor j = 1 to N-2 {
  for i = 1 to N-2 {
    B[i][j] = B[i][j] + A[i][j] + A[i][j-1];
  }
}
parfor i = 1 to N-2 {
  for j = 1 to N-2 {
    A[i][j] = A[i][j] + B[i+1][j];
  }
}
|}
