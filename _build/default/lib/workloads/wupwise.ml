(** wupwise (SPEC OMP): lattice QCD — dominated by complex matrix-vector
    products (zgemm/zaxpy).  Initialization is owner-parallel (each core
    first touches the pages it later computes on), which is why
    first-touch placement works for this app (Section 6.3).  The init
    touches one element per cache line per row — enough to claim every
    page — so compute dominates the traffic. *)

let app =
  App.make ~name:"wupwise"
    ~description:"lattice QCD: dense matrix-vector products"
    ~first_touch_friendly:true
    {|
param N = 320;
array A[N][N];
array X[N];
array Y[N];
// owner-parallel initialization: pages first touched by their owner
parfor i = 0 to N-1 {
  X[i] = i;
  Y[i] = 0;
  for j0 = 0 to N/16-1 {
    A[i][16*j0] = i + j0;
  }
}
for t0 = 0 to 1 {
  parfor i = 0 to N-1 {
    for j = 0 to N-1 {
      Y[i] = Y[i] + A[i][j]*X[j];
    }
  }
}
|}
