lib/sim/engine.ml: Array Cache_sim Config Core Dram Event_heap Hashtbl Lang List Noc Os_sim Printf Stats String Sys
