module Json = Obs.Json

type status = Pending | Ok | Cached | Failed of string

type entry = {
  id : string;
  key : string;
  status : status;
  attempts : int;
  wall_ms : float;
}

type t = { sweep : string; code_version : string; entries : entry array }

let status_string = function
  | Pending -> "pending"
  | Ok -> "ok"
  | Cached -> "cached"
  | Failed _ -> "failed"

let entry_to_json e =
  Json.obj
    [
      ("id", Json.String e.id);
      ("key", Json.String e.key);
      ("status", Json.String (status_string e.status));
      ( "error",
        match e.status with Failed r -> Json.String r | _ -> Json.Null );
      ("attempts", Json.Int e.attempts);
      ("wall_ms", Json.Float e.wall_ms);
      ("result", Json.String (Filename.concat "cache" (e.key ^ ".json")));
    ]

let to_json t =
  let ok, cached, failed, pending =
    Array.fold_left
      (fun (a, b, c, d) e ->
        match e.status with
        | Ok -> (a + 1, b, c, d)
        | Cached -> (a, b + 1, c, d)
        | Failed _ -> (a, b, c + 1, d)
        | Pending -> (a, b, c, d + 1))
      (0, 0, 0, 0) t.entries
  in
  Json.obj
    [
      ("sweep", Json.String t.sweep);
      ("code_version", Json.String t.code_version);
      ("jobs", Json.array entry_to_json t.entries);
      ( "summary",
        Json.obj
          [
            ("total", Json.Int (Array.length t.entries));
            ("ok", Json.Int ok);
            ("cached", Json.Int cached);
            ("failed", Json.Int failed);
            ("pending", Json.Int pending);
          ] );
    ]

let summary t =
  let ok, cached, failed, pending =
    Array.fold_left
      (fun (a, b, c, d) e ->
        match e.status with
        | Ok -> (a + 1, b, c, d)
        | Cached -> (a, b + 1, c, d)
        | Failed _ -> (a, b, c + 1, d)
        | Pending -> (a, b, c, d + 1))
      (0, 0, 0, 0) t.entries
  in
  (ok, cached, failed, pending)

let ( let* ) = Result.bind

let rec map_result f = function
  | [] -> Stdlib.Ok []
  | x :: tl ->
    let* y = f x in
    let* ys = map_result f tl in
    Stdlib.Ok (y :: ys)

let str ctx = function
  | Json.String s -> Stdlib.Ok s
  | _ -> Stdlib.Error ("manifest: " ^ ctx ^ " must be a string")

let get ctx k j =
  match Json.member k j with
  | Some v -> Stdlib.Ok v
  | None -> Stdlib.Error ("manifest: " ^ ctx ^ " lacks " ^ k)

let entry_of_json j =
  let* id = Result.bind (get "job" "id" j) (str "id") in
  let* key = Result.bind (get "job" "key" j) (str "key") in
  let* status_s = Result.bind (get "job" "status" j) (str "status") in
  let* status =
    match status_s with
    | "pending" -> Stdlib.Ok Pending
    | "ok" -> Stdlib.Ok Ok
    | "cached" -> Stdlib.Ok Cached
    | "failed" ->
      let reason =
        match Json.member "error" j with Some (Json.String r) -> r | _ -> ""
      in
      Stdlib.Ok (Failed reason)
    | s -> Stdlib.Error ("manifest: unknown status " ^ s)
  in
  let* attempts =
    match Json.member "attempts" j with
    | Some (Json.Int i) -> Stdlib.Ok i
    | _ -> Stdlib.Error "manifest: job lacks attempts"
  in
  let wall_ms =
    match Json.member "wall_ms" j with
    | Some (Json.Float f) -> f
    | Some (Json.Int i) -> float_of_int i
    | _ -> 0.
  in
  Stdlib.Ok { id; key; status; attempts; wall_ms }

let of_json j =
  let* sweep = Result.bind (get "manifest" "sweep" j) (str "sweep") in
  let* code_version =
    Result.bind (get "manifest" "code_version" j) (str "code_version")
  in
  let* entries =
    match Json.member "jobs" j with
    | Some (Json.List l) -> map_result entry_of_json l
    | _ -> Stdlib.Error "manifest: lacks the jobs list"
  in
  Stdlib.Ok { sweep; code_version; entries = Array.of_list entries }

let path ~dir = Filename.concat dir "manifest.json"

let store ~dir t =
  let final = path ~dir in
  let tmp = Printf.sprintf "%s.%d.tmp" final (Unix.getpid ()) in
  let oc = open_out_bin tmp in
  Json.to_channel oc (to_json t);
  close_out oc;
  Sys.rename tmp final

let load ~dir =
  let p = path ~dir in
  let* text =
    try
      let ic = open_in_bin p in
      let n = in_channel_length ic in
      let s = really_input_string ic n in
      close_in ic;
      Stdlib.Ok s
    with Sys_error e -> Stdlib.Error e
  in
  let* j = Result.map_error (fun e -> p ^ ": " ^ e) (Json.of_string text) in
  Result.map_error (fun e -> p ^ ": " ^ e) (of_json j)
