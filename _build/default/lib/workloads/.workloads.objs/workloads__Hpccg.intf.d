lib/workloads/hpccg.mli: App
