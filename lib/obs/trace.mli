(** Request-path tracer: bounded-memory span sink with a Chrome
    [trace_event] JSON exporter.

    The simulator tags each traced off-chip access with one span per
    pipeline stage (L1 lookup, L2/directory, each NoC link, controller
    queue, DRAM bank service, reply); the resulting file opens directly in
    [chrome://tracing] / Perfetto.  Timestamps are simulated cycles,
    exported one cycle = 1 µs.

    A sink is either {!disabled} — every record is a single branch, no
    allocation — or a ring buffer of fixed capacity: once full, the oldest
    events are overwritten, so memory stays bounded on any run length.
    The [sample] knob traces every Nth request ({!hit}). *)

type event =
  | Complete of {
      cat : string;  (** span category: cache, noc, mc-queue, dram, ... *)
      name : string;
      pid : int;  (** process track: job id *)
      tid : int;  (** thread track: requester node *)
      ts : int;  (** start, in cycles *)
      dur : int;
      args : (string * Json.t) list;
    }
  | Counter of { name : string; pid : int; ts : int; value : int }
      (** instantaneous series sample (e.g. controller queue depth) *)

type t

val disabled : t

val create : ?capacity:int -> ?sample:int -> unit -> t
(** [capacity] (default 65536) bounds retained events; [sample] (default
    1) traces one request in [sample]. *)

val enabled : t -> bool

val sample : t -> int

val hit : t -> int -> bool
(** [hit t id]: should the request with ordinal [id] be traced?  False on
    a disabled sink. *)

val span :
  t ->
  cat:string ->
  name:string ->
  pid:int ->
  tid:int ->
  ts:int ->
  dur:int ->
  ?args:(string * Json.t) list ->
  unit ->
  unit

val counter : t -> name:string -> pid:int -> ts:int -> value:int -> unit

val events : t -> event list
(** Retained events, oldest first. *)

val recorded : t -> int
(** Total events ever recorded (including overwritten ones). *)

val dropped : t -> int

val to_json : t -> Json.t
(** The Chrome [trace_event] envelope:
    [{"traceEvents": [...], "displayTimeUnit": "ms", ...}]. *)

val write_file : t -> string -> unit
