(** Content-addressed result cache.

    A job's key is the MD5 of its canonical identity (full platform
    configuration, app, optimization flag — {!Spec.job_identity}) plus
    the code version, so a sweep re-invoked after an interrupt skips
    every job whose result already exists, while editing a config or
    rebuilding the binary invalidates exactly the affected results.

    Results live under [DIR/cache/<key>.json] and are written atomically
    (temp file + rename), so a sweep killed mid-write never leaves a
    truncated result behind. *)

val code_version : unit -> string
(** Digest of the running executable (memoized) — any rebuild changes
    every key.  Overridable via [OFFCHIP_SWEEP_CODEVERSION] so tests and
    cross-binary tooling can pin it. *)

val key : Spec.job -> string
(** Hex digest naming the job's result file. *)

val path : dir:string -> string -> string
(** [path ~dir key] = [DIR/cache/<key>.json]. *)

val find : dir:string -> string -> Obs.Json.t option
(** The cached result document, or [None] when absent or unparseable
    (a corrupt file behaves like a miss and is overwritten on re-run). *)

val store : dir:string -> string -> Obs.Json.t -> unit
(** Atomic write of a result document, creating [DIR/cache] as needed. *)

val ensure : dir:string -> unit
(** Creates [DIR] and [DIR/cache] (like [mkdir -p]). *)
