(** Physical-address interpretation (Fig. 5).

    With [n] memory controllers, [log n] bits of the physical address
    select the controller.  Taking them just above the cache-line offset
    gives cache-line interleaving; just above the page offset gives page
    interleaving.  Within a controller, the remaining address bits select
    the bank and the row (row buffer = 4 KB, Table 1). *)

type interleaving = Line_interleaved | Page_interleaved

type t = {
  interleaving : interleaving;
  line_bytes : int;  (** L2 line size — the interleaving unit, 256 B *)
  page_bytes : int;  (** OS page and DRAM row-buffer size, 4 KB *)
  num_mcs : int;
  banks_per_mc : int;
}

val make :
  interleaving:interleaving ->
  ?line_bytes:int ->
  ?page_bytes:int ->
  num_mcs:int ->
  ?banks_per_mc:int ->
  unit ->
  t

val mc_of_paddr : t -> int -> int
(** Controller owning a physical byte address. *)

val bank_of_paddr : t -> int -> int
(** Bank within the owning controller. *)

val row_of_paddr : t -> int -> int
(** DRAM row within the bank (row buffer granularity). *)

val mc_of_vaddr_line : t -> int -> int
(** Controller selected by the {e virtual} address under cache-line
    interleaving.  Valid because with line interleaving the MC-selection
    bits sit inside the page offset, so virtual-to-physical translation
    does not modify them (Section 3) — this is the property the compiler
    exploits.  Raises [Invalid_argument] under page interleaving, where
    the OS controls those bits. *)

val page_of_vaddr : t -> int -> int

val frame_of_paddr : t -> int -> int
