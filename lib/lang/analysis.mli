(** Affine analysis of a mini-language program.

    Extracts, for every array reference, the access matrix and offset
    ([r = A·i + o]) with respect to its enclosing iteration vector, the
    position of the enclosing parallel loop (the iteration-partition
    dimension [u]), and an estimated trip count (the weight [n_j] used in
    Section 5.2 for the multiple-references case).  References whose
    subscripts are not affine — in particular subscripts through index
    arrays — are classified [Indexed] and handled by the profiling path
    (Section 5.4). *)

type kind = Affine_ref of Affine.Access.t | Indexed_ref

type occurrence = {
  array : string;
  kind : kind;
  iters : string list;  (** enclosing loop iterators, outermost first *)
  par_dim : int option;
      (** position of the innermost enclosing parallel iterator in
          [iters], if any *)
  trip_count : int;  (** estimated number of dynamic executions *)
  is_write : bool;
  nest_id : int;  (** index of the enclosing top-level nest *)
}

type array_info = {
  decl : Ast.decl;
  extents : int array;  (** evaluated dimension sizes *)
  occurrences : occurrence list;  (** in program order *)
}

type t = {
  program : Ast.program;
  params : (string * int) list;
  arrays : array_info list;  (** every declared array, in program order *)
}

exception Unsupported of string

val analyze : Ast.program -> t
(** Raises {!Unsupported} if an extent is not constant. *)

val analyze_result : Ast.program -> (t, Diag.t list) result
(** Like {!analyze}, but returns one located diagnostic ([S006]) per
    declaration whose extents are not constant. *)

val array_info : t -> string -> array_info
(** Raises [Not_found] for an undeclared array. *)

val const_expr : (string * int) list -> Ast.expr -> int option
(** Evaluates an expression that involves only constants and the given
    bindings; [None] if it mentions anything else. *)

val affine_of_expr :
  params:(string * int) list ->
  iters:string list ->
  Ast.expr ->
  (Affine.Vec.t * int) option
(** [affine_of_expr ~params ~iters e] is [Some (coeffs, const)] when [e]
    is an affine function of the iterators, i.e. [e = coeffs·iters +
    const]; [None] otherwise. *)
