lib/noc/placement.ml: Array Coord List Printf Topology
