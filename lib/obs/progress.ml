type sink = { mutable oc : out_channel option }

let null = { oc = None }

let file_sink path =
  match open_out path with
  | oc -> Ok { oc = Some oc }
  | exception Sys_error e -> Error e

let stamp j =
  let ts = ("ts", Json.Float (Unix.gettimeofday ())) in
  match j with Json.Obj fields -> Json.Obj (fields @ [ ts ]) | v -> v

let emit t j =
  match t.oc with
  | None -> ()
  | Some oc -> (
    try
      output_string oc (Json.to_string ~minify:true (stamp j));
      output_char oc '\n';
      flush oc
    with Sys_error _ ->
      (* advisory stream: a full disk or closed pipe must not kill the
         sweep; drop the sink and keep going *)
      (try close_out_noerr oc with _ -> ());
      t.oc <- None)

let close t =
  match t.oc with
  | None -> ()
  | Some oc ->
    close_out_noerr oc;
    t.oc <- None

(* Complete lines of [path] starting at byte [from]; returns the events
   parsed and the offset of the first un-consumed byte.  Unparseable
   complete lines are skipped (a reader must survive a torn writer). *)
let read_from path from =
  match open_in_bin path with
  | exception Sys_error e -> Error e
  | ic ->
    let len = in_channel_length ic in
    seek_in ic from;
    let events = ref [] in
    let pos = ref from in
    (try
       while true do
         let start = pos_in ic in
         match input_line ic with
         | line ->
           (* a line is complete only if its newline is already on disk *)
           if start + String.length line < len then begin
             (match Json.of_string line with
             | Ok j -> events := j :: !events
             | Error _ -> ());
             pos := pos_in ic
           end
           else raise Exit
         | exception End_of_file -> raise Exit
       done
     with Exit -> ());
    close_in_noerr ic;
    Ok (List.rev !events, !pos)

let read path = Result.map fst (read_from path 0)

let follow ?(poll_s = 0.2) ?(timeout_s = 60.) ~stop ~on_event path =
  let deadline = Unix.gettimeofday () +. timeout_s in
  let rec loop offset =
    let now = Unix.gettimeofday () in
    if now > deadline then
      Error (Printf.sprintf "no terminating event within %.3gs" timeout_s)
    else
      match read_from path offset with
      | Error _ ->
        (* not created yet: keep waiting *)
        Unix.sleepf poll_s;
        loop offset
      | Ok (events, offset') ->
        let stopped =
          List.fold_left
            (fun stopped e ->
              on_event e;
              stopped || stop e)
            false events
        in
        if stopped then Ok ()
        else begin
          Unix.sleepf poll_s;
          loop offset'
        end
  in
  loop 0
