(** Clusters and L2-to-MC mappings (Fig. 8).

    A valid L2-to-MC mapping partitions the [cx·nx × cy·ny] mesh into a
    [cx × cy] grid of clusters, each of [nx × ny] cores, and assigns [k]
    controllers to every cluster — the two validity constraints of
    Section 4 (equal cores per cluster, equal MCs per cluster).

    Cluster [j] (in the enumeration below) is served by controllers
    [j·k .. j·k+k-1].  This index correspondence is what the customized
    layout realizes at the address level, so it is fixed here once and
    relied upon everywhere: the interleaved layout makes consecutive
    [k·p]-element chunks rotate over clusters in enumeration order, which
    lands cluster [j]'s data exactly on controllers [j·k .. j·k+k-1].

    Enumeration order of cores within the mesh follows the paper's
    [R(r_v)] formula (Section 5.3): data blocks advance first down a
    cluster column ([ny]), then across cluster rows ([cy]), then along the
    cores of a cluster row ([nx]), then across cluster columns ([cx]); the
    cluster index is [j = Cx·cy + Cy].  Threads are bound to cores in this
    order (footnote 5). *)

type t = {
  name : string;
  width : int;  (** mesh width = cx·nx *)
  height : int;  (** mesh height = cy·ny *)
  cx : int;
  cy : int;
  nx : int;
  ny : int;
  k : int;  (** MCs per cluster *)
}

val make_result :
  name:string ->
  width:int ->
  height:int ->
  cx:int ->
  cy:int ->
  k:int ->
  (t, string) result
(** Derives [nx, ny]; an uneven tiling (validity constraint) is a value
    error. *)

val num_clusters : t -> int

val num_mcs : t -> int
(** [= num_clusters · k]. *)

val num_cores : t -> int

val cores_per_cluster : t -> int

val cluster_of_coord : t -> Noc.Coord.t -> int
(** Cluster index [Cx·cy + Cy] of a mesh coordinate. *)

val cluster_of_node : t -> Noc.Topology.t -> int -> int

val mcs_of_cluster : t -> int -> int list
(** The [k] controller indices serving a cluster. *)

val cluster_of_mc : t -> int -> int

val node_of_thread : t -> Noc.Topology.t -> int -> int
(** Mesh node of thread/block [t] under the enumeration above. *)

val thread_of_node : t -> Noc.Topology.t -> int -> int
(** Inverse of {!node_of_thread}. *)

val centroid_of_cluster : t -> int -> Noc.Coord.t
(** Integer centroid, for controller placement. *)

val m1 : width:int -> height:int -> (t, string) result
(** Fig. 8a: one quadrant-shaped cluster per controller, [k = 1] — the
    paper's default mapping.  A mesh the 2×2 cluster grid cannot tile
    evenly is a value error. *)

val m2 : width:int -> height:int -> (t, string) result
(** Fig. 8b: two half-mesh clusters, [k = 2] — trades locality for
    memory-level parallelism. *)

val with_mcs_result :
  width:int -> height:int -> mcs:int -> (t, string) result
(** The Fig. 27 configurations: [mcs] controllers, [k = 1], clusters in as
    square a grid as divides the mesh. *)

val pp : Format.formatter -> t -> unit
