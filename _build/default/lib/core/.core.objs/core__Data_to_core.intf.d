lib/core/data_to_core.mli: Affine
