let render (cfg : Config.t) =
  let buf = Buffer.create 1024 in
  let topo = (Config.topo cfg) in
  let cluster = (Config.cluster cfg) in
  let placement = (Config.placement cfg) in
  let num_mcs = Core.Cluster.num_mcs cluster in
  let mc_at = Array.make (Noc.Topology.nodes topo) (-1) in
  for m = 0 to num_mcs - 1 do
    mc_at.(Noc.Placement.mc_node placement m) <- m
  done;
  Buffer.add_string buf
    (Printf.sprintf "%dx%d mesh, mapping %s (cells show cluster; *m = controller m)\n"
       topo.Noc.Topology.width topo.Noc.Topology.height cluster.Core.Cluster.name);
  for y = 0 to topo.Noc.Topology.height - 1 do
    Buffer.add_string buf "  ";
    for x = 0 to topo.Noc.Topology.width - 1 do
      let node = Noc.Topology.node_of_coord topo (Noc.Coord.make x y) in
      let cl = Core.Cluster.cluster_of_node cluster topo node in
      if mc_at.(node) >= 0 then
        Buffer.add_string buf (Printf.sprintf "[%X*%X]" cl mc_at.(node))
      else Buffer.add_string buf (Printf.sprintf "[ %X ]" cl)
    done;
    Buffer.add_char buf '\n'
  done;
  for j = 0 to Core.Cluster.num_clusters cluster - 1 do
    Buffer.add_string buf
      (Printf.sprintf "  cluster %d -> controller(s) %s\n" j
         (String.concat ", "
            (List.map string_of_int (Core.Cluster.mcs_of_cluster cluster j))))
  done;
  Buffer.add_string buf
    (Printf.sprintf "  average distance to the nearest controller: %.2f hops\n"
       (Noc.Placement.avg_distance placement topo));
  Buffer.contents buf

let shades = [| ' '; '.'; ':'; '-'; '='; '+'; '*'; '#' |]

let render_heat (cfg : Config.t) values =
  let topo = (Config.topo cfg) in
  if Array.length values <> Noc.Topology.nodes topo then
    invalid_arg "Platform_map.render_heat";
  let buf = Buffer.create 512 in
  let vmax = Array.fold_left max 1 values in
  for y = 0 to topo.Noc.Topology.height - 1 do
    Buffer.add_string buf "  ";
    for x = 0 to topo.Noc.Topology.width - 1 do
      let v = values.(Noc.Topology.node_of_coord topo (Noc.Coord.make x y)) in
      let level = v * (Array.length shades - 1) / vmax in
      let c = shades.(level) in
      Buffer.add_char buf c;
      Buffer.add_char buf c
    done;
    Buffer.add_char buf '\n'
  done;
  Buffer.contents buf
