(** Two-dimensional mesh topology with dimension-ordered (XY) routing.

    Nodes are numbered row-major: node [y·width + x].  Links are directed;
    a message from [a] to [b] first travels along X, then along Y
    (deadlock-free XY routing, as in the simulated platform of Table 1). *)

type t = { width : int; height : int }

type dir = East | West | North | South

type link = { from_node : int; dir : dir }
(** The directed link leaving [from_node] towards [dir]. *)

val make : width:int -> height:int -> t

val nodes : t -> int

val node_of_coord : t -> Coord.t -> int

val coord_of_node : t -> int -> Coord.t

val in_mesh : t -> Coord.t -> bool

val distance : t -> int -> int -> int
(** Manhattan distance between two nodes (= number of links an XY-routed
    message traverses). *)

val xy_route : t -> src:int -> dst:int -> link list
(** The links traversed from [src] to [dst] under XY routing, in order.
    Empty when [src = dst]. *)

val link_id : t -> link -> int
(** Dense link identifier in [0 .. 4·nodes-1], for indexing link state. *)

val num_link_ids : t -> int

val link_ids : t -> src:int -> dst:int -> int array
(** The XY route from [src] to [dst] as dense link ids, in traversal
    order ([xy_route] composed with [link_id], without the intermediate
    list).  Empty when [src = dst]. *)
