type l2_org = Private_l2 | Shared_l2

type page_policy = Hardware | First_touch | Mc_aware

type t = {
  topo : Noc.Topology.t;
  cluster : Core.Cluster.t;
  placement : Noc.Placement.t;
  l2_org : l2_org;
  interleaving : Dram.Address_map.interleaving;
  page_policy : page_policy;
  l1_size : int;
  l1_line : int;
  l1_ways : int;
  l2_size : int;
  l2_line : int;
  l2_ways : int;
  l1_latency : int;
  l2_latency : int;
  directory_latency : int;
  noc : Noc.Network.config;
  timing : Dram.Timing.t;
  banks_per_mc : int;
  channels_per_mc : int;
  mc_scheduler : Dram.Fr_fcfs.scheduler;
  mc_row_policy : Dram.Fr_fcfs.row_policy;
  page_bytes : int;
  elem_bytes : int;
  compute_cycles : int;
  jitter : bool;
  threads_per_core : int;
  optimal : bool;
  frames_per_mc : int;
  seed : int;
}

let corner_sites (topo : Noc.Topology.t) =
  let w = topo.width - 1 and h = topo.height - 1 in
  [| Noc.Coord.make 0 0; Noc.Coord.make w 0; Noc.Coord.make 0 h; Noc.Coord.make w h |]

let placement_for ?sites topo (cluster : Core.Cluster.t) =
  let mcs = Core.Cluster.num_mcs cluster in
  let centroids =
    Array.init mcs (fun m ->
        Core.Cluster.centroid_of_cluster cluster (Core.Cluster.cluster_of_mc cluster m))
  in
  match sites with
  | Some sites -> Noc.Placement.assign topo ~name:"custom" ~sites ~centroids
  | None ->
    if mcs <= 4 then
      Noc.Placement.assign topo ~name:"P1-corners" ~sites:(corner_sites topo)
        ~centroids
    else
      Noc.Placement.for_centroids topo
        ~name:(Printf.sprintf "perimeter-%d" mcs)
        ~centroids

let make_default ~l1_size ~l2_size =
  let topo = Noc.Topology.make ~width:8 ~height:8 in
  let cluster = Core.Cluster.m1 ~width:8 ~height:8 in
  {
    topo;
    cluster;
    placement = placement_for topo cluster;
    l2_org = Private_l2;
    interleaving = Dram.Address_map.Line_interleaved;
    page_policy = Hardware;
    l1_size;
    l1_line = 64;
    l1_ways = 2;
    l2_size;
    l2_line = 256;
    l2_ways = (if l2_size >= 65536 then 16 else 4);
    l1_latency = 2;
    l2_latency = 10;
    directory_latency = 3;
    noc = Noc.Network.default_config;
    timing = Dram.Timing.ddr3_1600;
    banks_per_mc = 16;
    channels_per_mc = 4;
    mc_scheduler = Dram.Fr_fcfs.Fr_fcfs;
    mc_row_policy = Dram.Fr_fcfs.Open_page;
    page_bytes = 4096;
    elem_bytes = 8;
    compute_cycles = 16;
    jitter = true;
    threads_per_core = 1;
    optimal = false;
    frames_per_mc = 1 lsl 18;
    seed = 0;
  }

let default () = make_default ~l1_size:(16 * 1024) ~l2_size:(256 * 1024)

(* Shrunk caches, same line sizes: keeps the workload models' scaled-down
   working sets comfortably larger than the aggregate L2. *)
let scaled () = make_default ~l1_size:4096 ~l2_size:16384

let with_cluster t cluster = { t with cluster; placement = placement_for t.topo cluster }

let address_map t =
  Dram.Address_map.make ~interleaving:t.interleaving ~line_bytes:t.l2_line
    ~page_bytes:t.page_bytes
    ~num_mcs:(Core.Cluster.num_mcs t.cluster)
    ~banks_per_mc:t.banks_per_mc ()

let customize_config t =
  let p_bytes =
    match t.interleaving with
    | Dram.Address_map.Line_interleaved -> t.l2_line
    | Dram.Address_map.Page_interleaved -> t.page_bytes
  in
  {
    Core.Customize.cluster = t.cluster;
    topo = t.topo;
    placement = t.placement;
    l2 =
      (match t.l2_org with
      | Private_l2 -> Core.Customize.Private_l2
      | Shared_l2 -> Core.Customize.Shared_l2);
    p_elems = p_bytes / t.elem_bytes;
    elem_bytes = t.elem_bytes;
  }

let mesh ~width ~height t =
  let topo = Noc.Topology.make ~width ~height in
  let cluster = Core.Cluster.m1 ~width ~height in
  { t with topo; cluster; placement = placement_for topo cluster }

(* Shared CLI/spec-facing builder: every choice is a plain string or scalar
   so `simulate`, `occ` and sweep specs validate configurations the same
   way and report the same one-line errors. *)
let build ?(scaled = true) ?(l2 = "private") ?(interleave = "line")
    ?(policy = "hardware") ?(mapping = "M1") ?(width = 8) ?(height = 8)
    ?(tpc = 1) ?(optimal = false) ?(seed = 0) () =
  let ( let* ) = Result.bind in
  let* () =
    if width < 1 || height < 1 then
      Error (Printf.sprintf "bad mesh %dx%d" width height)
    else Ok ()
  in
  let* () =
    if tpc < 1 then Error (Printf.sprintf "threads-per-core must be >= 1 (got %d)" tpc)
    else Ok ()
  in
  let base =
    if scaled then make_default ~l1_size:4096 ~l2_size:16384
    else make_default ~l1_size:(16 * 1024) ~l2_size:(256 * 1024)
  in
  (* cluster construction rejects meshes it cannot partition evenly;
     surface that as a value error, not an exception *)
  let catch f = match f () with c -> Ok c | exception Invalid_argument e -> Error e in
  let* cfg = catch (fun () -> mesh ~width ~height base) in
  let* cfg =
    match mapping with
    | "M1" -> Ok cfg
    | "M2" -> catch (fun () -> with_cluster cfg (Core.Cluster.m2 ~width ~height))
    | m -> (
      match int_of_string_opt m with
      | Some mcs when mcs > 0 ->
        catch (fun () -> with_cluster cfg (Core.Cluster.with_mcs ~width ~height ~mcs))
      | _ -> Error ("unknown mapping " ^ m))
  in
  let* l2_org =
    match l2 with
    | "private" -> Ok Private_l2
    | "shared" -> Ok Shared_l2
    | s -> Error ("unknown L2 organization " ^ s)
  in
  let* interleaving =
    match interleave with
    | "line" -> Ok Dram.Address_map.Line_interleaved
    | "page" -> Ok Dram.Address_map.Page_interleaved
    | s -> Error ("unknown interleaving " ^ s)
  in
  let* page_policy =
    match policy with
    | "hardware" -> Ok Hardware
    | "first-touch" -> Ok First_touch
    | "mc-aware" -> Ok Mc_aware
    | s -> Error ("unknown policy " ^ s)
  in
  Ok
    {
      cfg with
      l2_org;
      interleaving;
      page_policy;
      threads_per_core = tpc;
      optimal;
      seed;
    }

let to_json t =
  let open Obs.Json in
  obj
    [
      ("mesh_width", Int t.topo.Noc.Topology.width);
      ("mesh_height", Int t.topo.Noc.Topology.height);
      ( "l2_org",
        String
          (match t.l2_org with Private_l2 -> "private" | Shared_l2 -> "shared")
      );
      ( "interleaving",
        String
          (match t.interleaving with
          | Dram.Address_map.Line_interleaved -> "line"
          | Dram.Address_map.Page_interleaved -> "page") );
      ( "page_policy",
        String
          (match t.page_policy with
          | Hardware -> "hardware"
          | First_touch -> "first-touch"
          | Mc_aware -> "mc-aware") );
      ("num_mcs", Int (Core.Cluster.num_mcs t.cluster));
      ("cluster", String t.cluster.Core.Cluster.name);
      ("placement", String t.placement.Noc.Placement.name);
      ("l1_size", Int t.l1_size);
      ("l1_line", Int t.l1_line);
      ("l1_ways", Int t.l1_ways);
      ("l2_size", Int t.l2_size);
      ("l2_line", Int t.l2_line);
      ("l2_ways", Int t.l2_ways);
      ("l1_latency", Int t.l1_latency);
      ("l2_latency", Int t.l2_latency);
      ("directory_latency", Int t.directory_latency);
      ("banks_per_mc", Int t.banks_per_mc);
      ("channels_per_mc", Int t.channels_per_mc);
      ( "mc_scheduler",
        String
          (match t.mc_scheduler with
          | Dram.Fr_fcfs.Fr_fcfs -> "fr-fcfs"
          | Dram.Fr_fcfs.Fcfs -> "fcfs") );
      ( "mc_row_policy",
        String
          (match t.mc_row_policy with
          | Dram.Fr_fcfs.Open_page -> "open-page"
          | Dram.Fr_fcfs.Closed_page -> "closed-page") );
      ("page_bytes", Int t.page_bytes);
      ("elem_bytes", Int t.elem_bytes);
      ("compute_cycles", Int t.compute_cycles);
      ("jitter", Bool t.jitter);
      ("threads_per_core", Int t.threads_per_core);
      ("optimal", Bool t.optimal);
      ("frames_per_mc", Int t.frames_per_mc);
      ("seed", Int t.seed);
    ]

let pp ppf t =
  Format.fprintf ppf
    "@[<v>mesh %dx%d, %a, %s L2 (%d B/node, %d B lines), L1 %d B, %s, %d \
     MCs, %d banks/MC@]"
    t.topo.width t.topo.height Core.Cluster.pp t.cluster
    (match t.l2_org with Private_l2 -> "private" | Shared_l2 -> "shared")
    t.l2_size t.l2_line t.l1_size
    (match t.interleaving with
    | Dram.Address_map.Line_interleaved -> "cache-line interleaved"
    | Dram.Address_map.Page_interleaved -> "page interleaved")
    (Core.Cluster.num_mcs t.cluster)
    t.banks_per_mc
