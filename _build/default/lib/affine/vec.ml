type t = int array

let make n c = Array.make n c

let zero n = Array.make n 0

let unit n i =
  if i < 0 || i >= n then invalid_arg "Vec.unit";
  let v = Array.make n 0 in
  v.(i) <- 1;
  v

let dim = Array.length

let of_list = Array.of_list

let to_list = Array.to_list

let copy = Array.copy

let check_dim a b name =
  if Array.length a <> Array.length b then invalid_arg name

let add a b =
  check_dim a b "Vec.add";
  Array.mapi (fun i x -> x + b.(i)) a

let sub a b =
  check_dim a b "Vec.sub";
  Array.mapi (fun i x -> x - b.(i)) a

let neg a = Array.map (fun x -> -x) a

let scale k a = Array.map (fun x -> k * x) a

let dot a b =
  check_dim a b "Vec.dot";
  let s = ref 0 in
  for i = 0 to Array.length a - 1 do
    s := !s + (a.(i) * b.(i))
  done;
  !s

let is_zero a = Array.for_all (fun x -> x = 0) a

let equal a b = a = b

let rec gcd a b =
  let a = abs a and b = abs b in
  if b = 0 then a else gcd b (a mod b)

let content v = Array.fold_left (fun g x -> gcd g x) 0 v

let primitive v =
  let c = content v in
  if c = 0 then v
  else
    let v = Array.map (fun x -> x / c) v in
    (* Normalize sign: first nonzero component positive. *)
    let rec first_nonzero i =
      if i >= Array.length v then 0
      else if v.(i) <> 0 then v.(i)
      else first_nonzero (i + 1)
    in
    if first_nonzero 0 < 0 then neg v else v

let pp ppf v =
  Format.fprintf ppf "(%a)"
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.fprintf ppf ", ")
       Format.pp_print_int)
    (Array.to_list v)

let to_string v = Format.asprintf "%a" pp v
