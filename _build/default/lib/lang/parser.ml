exception Error of string

type state = { mutable toks : Lexer.token list }

let peek st = match st.toks with [] -> Lexer.EOF | t :: _ -> t

let advance st = match st.toks with [] -> () | _ :: r -> st.toks <- r

let expect st t =
  if peek st = t then advance st
  else
    raise
      (Error
         (Format.asprintf "expected %a, found %a" Lexer.pp_token t
            Lexer.pp_token (peek st)))

let ident st =
  match peek st with
  | Lexer.IDENT s ->
    advance st;
    s
  | t -> raise (Error (Format.asprintf "expected identifier, found %a" Lexer.pp_token t))

(* expr := term (("+"|"-") term)* *)
let rec expr st =
  let lhs = term st in
  let rec loop acc =
    match peek st with
    | Lexer.PLUS ->
      advance st;
      loop (Ast.Add (acc, term st))
    | Lexer.MINUS ->
      advance st;
      loop (Ast.Sub (acc, term st))
    | _ -> acc
  in
  loop lhs

and term st =
  let lhs = factor st in
  let rec loop acc =
    match peek st with
    | Lexer.STAR ->
      advance st;
      loop (Ast.Mul (acc, factor st))
    | Lexer.SLASH ->
      advance st;
      loop (Ast.Div (acc, factor st))
    | Lexer.PERCENT ->
      advance st;
      loop (Ast.Mod (acc, factor st))
    | _ -> acc
  in
  loop lhs

and factor st =
  match peek st with
  | Lexer.INT n ->
    advance st;
    Ast.Int n
  | Lexer.MINUS ->
    advance st;
    Ast.Neg (factor st)
  | Lexer.LPAREN ->
    advance st;
    let e = expr st in
    expect st Lexer.RPAREN;
    e
  | Lexer.IDENT name ->
    advance st;
    if peek st = Lexer.LBRACKET then Ast.Load { array = name; subs = subscripts st }
    else Ast.Var name
  | t -> raise (Error (Format.asprintf "unexpected token %a" Lexer.pp_token t))

and subscripts st =
  let rec loop acc =
    if peek st = Lexer.LBRACKET then begin
      advance st;
      let e = expr st in
      expect st Lexer.RBRACKET;
      loop (e :: acc)
    end
    else List.rev acc
  in
  loop []

let relop st =
  match peek st with
  | Lexer.LT -> advance st; Ast.Lt
  | Lexer.LE -> advance st; Ast.Le
  | Lexer.GT -> advance st; Ast.Gt
  | Lexer.GE -> advance st; Ast.Ge
  | Lexer.EQEQ -> advance st; Ast.Eq
  | Lexer.NE -> advance st; Ast.Ne
  | t -> raise (Error (Format.asprintf "expected comparison, found %a" Lexer.pp_token t))

let rec stmt st =
  match peek st with
  | Lexer.KW_FOR | Lexer.KW_PARFOR -> Ast.Loop (loop_stmt st)
  | Lexer.KW_IF -> if_stmt st
  | Lexer.IDENT name ->
    advance st;
    let subs = subscripts st in
    if subs = [] then raise (Error ("assignment target must be an array reference: " ^ name));
    expect st Lexer.EQUALS;
    let rhs = expr st in
    expect st Lexer.SEMI;
    Ast.Assign ({ array = name; subs }, rhs)
  | t -> raise (Error (Format.asprintf "expected statement, found %a" Lexer.pp_token t))

and if_stmt st =
  expect st Lexer.KW_IF;
  expect st Lexer.LPAREN;
  let lhs = expr st in
  let op = relop st in
  let rhs = expr st in
  expect st Lexer.RPAREN;
  let block () =
    expect st Lexer.LBRACE;
    let rec items acc =
      if peek st = Lexer.RBRACE then begin
        advance st;
        List.rev acc
      end
      else items (stmt st :: acc)
    in
    items []
  in
  let then_ = block () in
  let else_ =
    if peek st = Lexer.KW_ELSE then begin
      advance st;
      block ()
    end
    else []
  in
  Ast.If { Ast.lhs; op; rhs; then_; else_ }

and loop_stmt st =
  let parallel =
    match peek st with
    | Lexer.KW_PARFOR -> true
    | Lexer.KW_FOR -> false
    | _ -> assert false
  in
  advance st;
  let index = ident st in
  expect st Lexer.EQUALS;
  let lo = expr st in
  expect st Lexer.KW_TO;
  let hi = expr st in
  let body =
    if peek st = Lexer.LBRACE then begin
      advance st;
      let rec items acc =
        if peek st = Lexer.RBRACE then begin
          advance st;
          List.rev acc
        end
        else items (stmt st :: acc)
      in
      items []
    end
    else [ stmt st ]
  in
  { Ast.index; lo; hi; parallel; body }

let program st =
  let params = ref [] and decls = ref [] and nests = ref [] in
  let rec const_eval e =
    (* parameters may be used in later param definitions and extents *)
    match e with
    | Ast.Int n -> n
    | Ast.Var x -> (
      match List.assoc_opt x !params with
      | Some v -> v
      | None -> raise (Error ("unknown parameter " ^ x)))
    | Ast.Neg a -> -const_eval a
    | Ast.Add (a, b) -> const_eval a + const_eval b
    | Ast.Sub (a, b) -> const_eval a - const_eval b
    | Ast.Mul (a, b) -> const_eval a * const_eval b
    | Ast.Div (a, b) -> const_eval a / const_eval b
    | Ast.Mod (a, b) -> const_eval a mod const_eval b
    | Ast.Load _ -> raise (Error "array reference in constant expression")
  in
  let rec items () =
    match peek st with
    | Lexer.EOF -> ()
    | Lexer.KW_PARAM ->
      advance st;
      let name = ident st in
      expect st Lexer.EQUALS;
      let v = const_eval (expr st) in
      expect st Lexer.SEMI;
      params := !params @ [ (name, v) ];
      items ()
    | Lexer.KW_ARRAY | Lexer.KW_INDEX ->
      let index_array = peek st = Lexer.KW_INDEX in
      advance st;
      let name = ident st in
      let extents = subscripts st in
      if extents = [] then raise (Error ("array without dimensions: " ^ name));
      expect st Lexer.SEMI;
      decls := !decls @ [ { Ast.name; extents; index_array } ];
      items ()
    | Lexer.KW_FOR | Lexer.KW_PARFOR ->
      nests := !nests @ [ stmt st ];
      items ()
    | t -> raise (Error (Format.asprintf "unexpected top-level token %a" Lexer.pp_token t))
  in
  items ();
  { Ast.params = !params; decls = !decls; nests = !nests }

(* Scope checking: every referenced array declared, with matching rank. *)
let check (p : Ast.program) =
  let ranks = Hashtbl.create 16 in
  List.iter (fun (d : Ast.decl) -> Hashtbl.replace ranks d.name (List.length d.extents)) p.decls;
  let check_ref (r : Ast.ref_) =
    match Hashtbl.find_opt ranks r.array with
    | None -> raise (Error ("undeclared array " ^ r.array))
    | Some rk ->
      if rk <> List.length r.subs then
        raise (Error (Printf.sprintf "array %s has rank %d, used with %d subscripts"
                        r.array rk (List.length r.subs)))
  in
  let rec check_expr = function
    | Ast.Int _ | Ast.Var _ -> ()
    | Ast.Neg a -> check_expr a
    | Ast.Add (a, b) | Ast.Sub (a, b) | Ast.Mul (a, b) | Ast.Div (a, b) | Ast.Mod (a, b) ->
      check_expr a;
      check_expr b
    | Ast.Load r ->
      check_ref r;
      List.iter check_expr r.subs
  in
  let rec check_stmt = function
    | Ast.Assign (r, e) ->
      check_ref r;
      List.iter check_expr r.subs;
      check_expr e
    | Ast.Loop l ->
      check_expr l.lo;
      check_expr l.hi;
      List.iter check_stmt l.body
    | Ast.If c ->
      check_expr c.Ast.lhs;
      check_expr c.Ast.rhs;
      List.iter check_stmt c.Ast.then_;
      List.iter check_stmt c.Ast.else_
  in
  List.iter check_stmt p.nests;
  p

let parse src = check (program { toks = Lexer.tokenize src })

let parse_file path =
  let ic = open_in_bin path in
  let len = in_channel_length ic in
  let src = really_input_string ic len in
  close_in ic;
  parse src
