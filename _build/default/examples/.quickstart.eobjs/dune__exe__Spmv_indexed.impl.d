examples/spmv_indexed.ml: Affine Array Core Format Lang List Printf Sim Workloads
