(* Tests for the sweep subsystem: the fork/pipe process pool (timeouts,
   crash retry, payload transport), the content-addressed result cache,
   and the headline property — a pooled sweep merges to exactly the same
   registry as the sequential reference run. *)

module Json = Obs.Json

let fresh_dir =
  let counter = ref 0 in
  fun () ->
    incr counter;
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "offchip-sweep-test.%d.%d" (Unix.getpid ()) !counter)

let rec rm_rf path =
  match Unix.lstat path with
  | { Unix.st_kind = Unix.S_DIR; _ } ->
    Array.iter (fun e -> rm_rf (Filename.concat path e)) (Sys.readdir path);
    Unix.rmdir path
  | _ -> Sys.remove path
  | exception Unix.Unix_error (Unix.ENOENT, _, _) -> ()

let with_dir f =
  let dir = fresh_dir () in
  Fun.protect ~finally:(fun () -> rm_rf dir) (fun () -> f dir)

(* Children duplicate any unflushed parent output on exit; keep the
   alcotest progress lines out of the workers. *)
let pool_run ?workers ?timeout_s ?retries ?backoff_s ?on_outcome ~jobs f =
  flush stdout;
  flush stderr;
  Sweep.Pool.run ?workers ?timeout_s ?retries ?backoff_s ?on_outcome ~jobs f

let spec_of_string s =
  match Result.bind (Json.of_string s) Sweep.Spec.of_json with
  | Ok spec -> spec
  | Error e -> Alcotest.failf "spec did not parse: %s" e

let tiny_spec ?(name = "tiny") ?(apps = [ "apsi" ]) ?(optimized = [ false ])
    ?(seed = 0) () =
  spec_of_string
    (Printf.sprintf
       {|{"name":"%s","apps":[%s],"optimized":[%s],
          "configs":[{"name":"base","width":4,"height":4,"seed":%d}]}|}
       name
       (String.concat "," (List.map (Printf.sprintf "%S") apps))
       (String.concat "," (List.map string_of_bool optimized))
       seed)

(* A config with "search": true runs the placement search at spec-load
   time and substitutes the searched machine: the job's platform carries
   a digest-bearing placement name (distinct cache identity), and two
   loads of the same spec agree byte-for-byte. *)
let test_spec_search_knob () =
  let load () =
    spec_of_string
      {|{"name":"searched","apps":["apsi"],"optimized":[false],
         "configs":[{"name":"s","platform":"mesh8x8-mc8","search":true}]}|}
  in
  let spec = load () in
  Alcotest.(check int) "one job" 1 (Array.length spec.Sweep.Spec.jobs);
  let job = spec.Sweep.Spec.jobs.(0) in
  let placement =
    (Sim.Config.placement job.Sweep.Spec.config).Noc.Placement.name
  in
  Alcotest.(check bool)
    (Printf.sprintf "digest-bearing placement name (%s)" placement)
    true
    (String.length placement > String.length "searched-"
    && String.sub placement 0 9 = "searched-");
  let identity j = Json.to_string (Sweep.Spec.job_identity j) in
  Alcotest.(check string) "deterministic across loads" (identity job)
    (identity (load ()).Sweep.Spec.jobs.(0));
  (* the searched machine's identity differs from the preset's *)
  let preset =
    spec_of_string
      {|{"name":"preset","apps":["apsi"],"optimized":[false],
         "configs":[{"name":"s","platform":"mesh8x8-mc8"}]}|}
  in
  Alcotest.(check bool) "distinct cache identity from the preset" false
    (String.equal (identity job) (identity preset.Sweep.Spec.jobs.(0)))

(* ---- pool ---- *)

let test_pool_payloads () =
  let outcomes =
    pool_run ~workers:2 ~timeout_s:30. ~retries:0 ~jobs:5 (fun i ->
        Ok (Printf.sprintf "job-%d:%d" i (i * i)))
  in
  Array.iteri
    (fun i o ->
      match o with
      | Sweep.Pool.Completed { attempts; payload } ->
        Alcotest.(check int) "one attempt" 1 attempts;
        Alcotest.(check string)
          "payload" (Printf.sprintf "job-%d:%d" i (i * i)) payload
      | Sweep.Pool.Failed { reason; _ } -> Alcotest.failf "job %d: %s" i reason)
    outcomes

let test_pool_timeout () =
  let outcomes =
    pool_run ~workers:1 ~timeout_s:0.25 ~retries:0 ~backoff_s:0.01 ~jobs:1
      (fun _ ->
        Unix.sleepf 30.;
        Ok "never")
  in
  match outcomes.(0) with
  | Sweep.Pool.Failed { attempts; reason } ->
    Alcotest.(check int) "one attempt" 1 attempts;
    Alcotest.(check bool)
      (Printf.sprintf "reason mentions timeout: %S" reason)
      true
      (Astring.String.is_infix ~affix:"timeout" reason)
  | Sweep.Pool.Completed _ -> Alcotest.fail "sleeping job completed"

let test_pool_crash_retry_exhaustion () =
  let outcomes =
    pool_run ~workers:1 ~timeout_s:30. ~retries:2 ~backoff_s:0.01 ~jobs:1
      (fun _ -> Stdlib.exit 7)
  in
  match outcomes.(0) with
  | Sweep.Pool.Failed { attempts; reason } ->
    Alcotest.(check int) "initial try + 2 retries" 3 attempts;
    Alcotest.(check string)
      "crash reason" "worker exited unexpectedly" reason
  | Sweep.Pool.Completed _ -> Alcotest.fail "crashing job completed"

let test_pool_error_payload () =
  (* An [Error _] from [f] is a failed attempt with the given reason, in
     both the forked and the in-process mode. *)
  List.iter
    (fun workers ->
      let outcomes =
        pool_run ~workers ~timeout_s:30. ~retries:1 ~backoff_s:0.01 ~jobs:1
          (fun _ -> Error "nope")
      in
      match outcomes.(0) with
      | Sweep.Pool.Failed { attempts; reason } ->
        Alcotest.(check int) "attempts" 2 attempts;
        Alcotest.(check string) "reason" "nope" reason
      | Sweep.Pool.Completed _ -> Alcotest.fail "erroring job completed")
    [ 1; 0 ]

(* ---- protocol ---- *)

let test_protocol_roundtrip () =
  let r, w = Unix.pipe () in
  Fun.protect
    ~finally:(fun () ->
      (try Unix.close r with Unix.Unix_error _ -> ());
      try Unix.close w with Unix.Unix_error _ -> ())
    (fun () ->
      let payload = "line1\nline2\x00\xffREP 9 1 3\n" in
      Sweep.Protocol.write_reply w
        { Sweep.Protocol.job = 42; ok = false; payload };
      let rd = Sweep.Protocol.reader r in
      (match Sweep.Protocol.feed rd with
      | `Data -> ()
      | `Eof -> Alcotest.fail "eof before reply");
      match Sweep.Protocol.next_reply rd with
      | Some (Ok rep) ->
        Alcotest.(check int) "job" 42 rep.Sweep.Protocol.job;
        Alcotest.(check bool) "ok" false rep.Sweep.Protocol.ok;
        Alcotest.(check string) "payload" payload rep.Sweep.Protocol.payload
      | Some (Error e) -> Alcotest.failf "corrupt frame: %s" e
      | None -> Alcotest.fail "incomplete reply")

(* ---- metrics JSON round-trip (what merge_results relies on) ---- *)

let test_metrics_snapshot_roundtrip () =
  let reg = Obs.Metrics.create () in
  let c = Obs.Metrics.counter reg "requests" in
  Obs.Metrics.add c 17;
  Obs.Metrics.set (Obs.Metrics.gauge reg "queue.max") 5.5;
  let hist reg ~buckets name =
    match Obs.Metrics.histogram reg ~buckets name with
    | Ok h -> h
    | Error e -> failwith e
  in
  let h = hist reg ~buckets:Obs.Metrics.Log2 "latency" in
  List.iter (Obs.Metrics.observe h) [ 0; 1; 3; 100; 4096 ];
  let hl =
    hist reg
      ~buckets:(Obs.Metrics.Linear { width = 4; buckets = 8 })
      "occupancy"
  in
  List.iter (Obs.Metrics.observe hl) [ 0; 7; 31; 500 ];
  let snap = Obs.Metrics.snapshot reg in
  let json = Obs.Metrics.to_json snap in
  match Obs.Metrics.snapshot_of_json json with
  | Error e -> Alcotest.failf "decode failed: %s" e
  | Ok snap' ->
    Alcotest.(check string)
      "snapshot JSON round-trips"
      (Json.to_string ~minify:true json)
      (Json.to_string ~minify:true (Obs.Metrics.to_json snap'))

(* ---- orchestration: cache, resume, degradation ---- *)

let run_sweep ?workers ?timeout_s ?retries ?backoff_s ?force ?inject_fail ~out
    spec =
  flush stdout;
  flush stderr;
  Sweep.Orchestrate.run_sweep ?workers ?timeout_s ?retries ?backoff_s ?force
    ?inject_fail ~out spec

let test_cache_hit_skips () =
  with_dir (fun out ->
      let spec = tiny_spec () in
      let first = run_sweep ~workers:0 ~out spec in
      Alcotest.(check int) "first run executes" 1 first.Sweep.Orchestrate.ran;
      let ok, cached, failed, pending =
        Sweep.Manifest.summary first.Sweep.Orchestrate.manifest
      in
      Alcotest.(check (list int)) "first summary" [ 1; 0; 0; 0 ]
        [ ok; cached; failed; pending ];
      let second = run_sweep ~workers:0 ~out spec in
      Alcotest.(check int) "second run executes nothing" 0
        second.Sweep.Orchestrate.ran;
      let ok, cached, failed, pending =
        Sweep.Manifest.summary second.Sweep.Orchestrate.manifest
      in
      Alcotest.(check (list int)) "second summary" [ 0; 1; 0; 0 ]
        [ ok; cached; failed; pending ];
      match (first.Sweep.Orchestrate.merged, second.Sweep.Orchestrate.merged) with
      | Some a, Some b ->
        Alcotest.(check string)
          "cached merge identical"
          (Json.to_string ~minify:true a)
          (Json.to_string ~minify:true b)
      | _ -> Alcotest.fail "a run produced no merged document")

let test_injected_failure_degrades () =
  with_dir (fun out ->
      let spec = tiny_spec ~apps:[ "apsi"; "swim" ] () in
      let r =
        run_sweep ~workers:2 ~retries:1 ~backoff_s:0.01
          ~inject_fail:"swim" ~out spec
      in
      let ok, cached, failed, pending =
        Sweep.Manifest.summary r.Sweep.Orchestrate.manifest
      in
      Alcotest.(check (list int)) "one survivor, one failure" [ 1; 0; 1; 0 ]
        [ ok; cached; failed; pending ];
      (match r.Sweep.Orchestrate.merged with
      | Some doc ->
        Alcotest.(check bool) "merged over the survivor" true
          (Json.member "completed" doc = Some (Json.Int 1))
      | None -> Alcotest.fail "no merged document");
      (* Resume: the failed job (and only it) runs again. *)
      let r2 = run_sweep ~workers:2 ~retries:0 ~out spec in
      Alcotest.(check int) "resume runs only the failed job" 1
        r2.Sweep.Orchestrate.ran;
      let ok, cached, failed, pending =
        Sweep.Manifest.summary r2.Sweep.Orchestrate.manifest
      in
      Alcotest.(check (list int)) "resume completes the sweep" [ 1; 1; 0; 0 ]
        [ ok; cached; failed; pending ])

(* ---- the determinism property ---- *)

let merged_string (r : Sweep.Orchestrate.report) =
  match r.Sweep.Orchestrate.merged with
  | Some doc -> Json.to_string ~minify:true doc
  | None -> Alcotest.fail "sweep produced no merged document"

let gen_prop_spec =
  QCheck.Gen.(
    let* apps = oneofl [ [ "apsi" ]; [ "swim" ]; [ "apsi"; "swim" ] ] in
    let* optimized = oneofl [ [ false ]; [ true ] ] in
    let* seed = int_range 0 3 in
    return (apps, optimized, seed))

let arb_prop_spec =
  QCheck.make
    ~print:(fun (apps, optimized, seed) ->
      Printf.sprintf "apps=[%s] optimized=[%s] seed=%d"
        (String.concat ";" apps)
        (String.concat ";" (List.map string_of_bool optimized))
        seed)
    gen_prop_spec

let prop_pool_matches_sequential =
  QCheck.Test.make ~name:"pooled sweep merges identically to sequential run"
    ~count:2 arb_prop_spec (fun (apps, optimized, seed) ->
      let spec = tiny_spec ~name:"prop" ~apps ~optimized ~seed () in
      let pooled =
        with_dir (fun out -> merged_string (run_sweep ~workers:2 ~out spec))
      in
      let sequential =
        with_dir (fun out -> merged_string (run_sweep ~workers:0 ~out spec))
      in
      pooled = sequential)

let suite =
  [
    ( "sweep",
      [
        Alcotest.test_case "spec search knob substitutes searched machine"
          `Quick test_spec_search_knob;
        Alcotest.test_case "pool transports payloads" `Quick
          test_pool_payloads;
        Alcotest.test_case "pool kills a job on timeout" `Quick
          test_pool_timeout;
        Alcotest.test_case "pool exhausts retries on worker crash" `Quick
          test_pool_crash_retry_exhaustion;
        Alcotest.test_case "pool reports Error payloads as failures" `Quick
          test_pool_error_payload;
        Alcotest.test_case "protocol reply round-trips binary payloads" `Quick
          test_protocol_roundtrip;
        Alcotest.test_case "metrics snapshot JSON round-trips" `Quick
          test_metrics_snapshot_roundtrip;
        Alcotest.test_case "cache hit skips execution" `Quick
          test_cache_hit_skips;
        Alcotest.test_case "injected failure degrades and resumes" `Quick
          test_injected_failure_degrades;
        QCheck_alcotest.to_alcotest prop_pool_matches_sequential;
      ] );
  ]
