(** Wall-clock phase timing for the compiler driver: time named phases
    (parse, analysis, Algorithm 1, codegen) and report them as a table or
    JSON. *)

type t

val create : unit -> t

val time : t -> string -> (unit -> 'a) -> 'a
(** Runs the thunk, records its wall time under the given phase name
    (accumulating across repeated calls), and returns its result.
    Exceptions propagate; the phase is still recorded. *)

val record : t -> string -> float -> unit
(** Adds [seconds] to a phase directly. *)

val phases : t -> (string * float) list
(** Phase durations in seconds, in first-recorded order. *)

val total : t -> float

val pp : Format.formatter -> t -> unit
(** One line per phase: name, milliseconds, share of the total. *)

val to_json : t -> Json.t
