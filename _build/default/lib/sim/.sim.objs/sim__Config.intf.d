lib/sim/config.mli: Core Dram Format Noc
