(** apsi (SPEC OMP): mesoscale hydrodynamics — pollutant-transport
    stencils over temperature/moisture/wind fields.  The app used for the
    paper's Fig. 13 access-distribution maps. *)

let app =
  App.make ~name:"apsi"
    ~description:"mesoscale hydrodynamics: transport stencils"
    {|
param N = 320;
array T1[N][N];
array Q1[N][N];
array S1[N][N];
// column-parallel sparse init: bad for first-touch
parfor j0 = 0 to N/16-1 {
  for i = 0 to N-1 {
    T1[i][16*j0] = i + j0;
    Q1[i][16*j0] = i - j0;
    S1[i][16*j0] = j0;
  }
}
parfor i = 1 to N-2 {
  for j = 1 to N-2 {
    T1[i][j] = T1[i][j] + Q1[i][j-1] + Q1[i][j+1] + S1[i-1][j] + S1[i+1][j];
  }
}
parfor i = 0 to N-1 {
  for j = 0 to N-1 {
    Q1[i][j] = T1[i][j] + S1[i][j];
  }
}
|}
