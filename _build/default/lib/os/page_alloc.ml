type policy =
  | Hardware_interleaved
  | First_touch of (int -> int)
  | Mc_aware of { desired : int -> int option; fallback : int -> int }

type t = {
  map : Dram.Address_map.t;
  policy : policy;
  frames_per_mc : int;
  table : (int, int) Hashtbl.t;  (** virtual page -> physical frame *)
  next_local : int array;  (** per MC: next unused local frame index *)
  mutable next_seq : int;  (** line-interleaved mode: next frame *)
  mutable fallbacks : int;
}

let create ~map ~policy ?(frames_per_mc = 1 lsl 18) () =
  {
    map;
    policy;
    frames_per_mc;
    table = Hashtbl.create 4096;
    next_local = Array.make map.Dram.Address_map.num_mcs 0;
    next_seq = 0;
    fallbacks = 0;
  }

(* Global frame number of local frame [i] on controller [m]: under page
   interleaving, frame g lives on MC (g mod num_mcs). *)
let frame_on t m i = (i * t.map.Dram.Address_map.num_mcs) + m

let alloc_on t m =
  let num_mcs = t.map.Dram.Address_map.num_mcs in
  (* try the desired controller, then the others round-robin *)
  let rec try_mc i =
    if i = num_mcs then failwith "Page_alloc: physical memory exhausted"
    else
      let m' = (m + i) mod num_mcs in
      if t.next_local.(m') < t.frames_per_mc then begin
        if i > 0 then t.fallbacks <- t.fallbacks + 1;
        let local = t.next_local.(m') in
        t.next_local.(m') <- local + 1;
        frame_on t m' local
      end
      else try_mc (i + 1)
  in
  try_mc 0

let translate t ~node ~vaddr =
  let page_bytes = t.map.Dram.Address_map.page_bytes in
  let vpage = vaddr / page_bytes in
  let frame =
    match Hashtbl.find_opt t.table vpage with
    | Some f -> f
    | None ->
      let f =
        match t.map.Dram.Address_map.interleaving with
        | Dram.Address_map.Line_interleaved ->
          (* MC bits are inside the page offset: any frame works *)
          let f = t.next_seq in
          t.next_seq <- f + 1;
          f
        | Dram.Address_map.Page_interleaved -> (
          match t.policy with
          | Hardware_interleaved ->
            alloc_on t (vpage mod t.map.Dram.Address_map.num_mcs)
          | First_touch cluster_mc -> alloc_on t (cluster_mc node)
          | Mc_aware { desired; fallback } ->
            alloc_on t
              (match desired vpage with Some m -> m | None -> fallback node))
      in
      Hashtbl.replace t.table vpage f;
      f
  in
  (frame * page_bytes) + (vaddr mod page_bytes)

let mc_of_vpage t vpage =
  match t.map.Dram.Address_map.interleaving with
  | Dram.Address_map.Line_interleaved -> None
  | Dram.Address_map.Page_interleaved ->
    Option.map
      (fun f -> f mod t.map.Dram.Address_map.num_mcs)
      (Hashtbl.find_opt t.table vpage)

let pages_allocated t = Hashtbl.length t.table

let fallback_allocations t = t.fallbacks

let reset t =
  Hashtbl.reset t.table;
  Array.fill t.next_local 0 (Array.length t.next_local) 0;
  t.next_seq <- 0;
  t.fallbacks <- 0
