test/test_cache.ml: Alcotest Cache_sim Hashtbl List QCheck QCheck_alcotest
