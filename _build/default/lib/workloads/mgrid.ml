(** mgrid (SPEC OMP): multigrid solver — seven-point stencil relaxation on
    a 3-D grid, with a coarse-grid restriction using stride-2 subscripts.
    The sparse init is parallel over the middle dimension, scrambling
    first-touch placement. *)

let app =
  App.make ~name:"mgrid"
    ~description:"multigrid: 3-D seven-point relaxation + restriction"
    ~warmup_nests:2
    {|
param M = 64;
param MH = 32;
array R[M][M][M];
array Z[M][M][M];
array RC[MH][MH][MH];
// j-parallel sparse init: bad for first-touch
parfor j = 0 to M-1 {
  for i = 0 to M-1 {
    R[i][j][0] = i + j;
    Z[i][j][0] = 0;
  }
}
parfor j = 0 to MH-1 {
  for i = 0 to MH-1 {
    RC[i][j][0] = 0;
  }
}
parfor i = 1 to M-2 {
  for j = 1 to M-2 {
    for k = 1 to M-2 {
      Z[i][j][k] = R[i][j][k] + R[i-1][j][k] + R[i+1][j][k]
                 + R[i][j-1][k] + R[i][j+1][k] + R[i][j][k-1] + R[i][j][k+1];
    }
  }
}
// restriction to the coarse grid (stride-2 affine subscripts)
parfor i = 0 to MH-1 {
  for j = 0 to MH-1 {
    for k = 0 to MH-1 {
      RC[i][j][k] = Z[2*i][2*j][2*k];
    }
  }
}
|}
