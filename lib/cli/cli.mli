(** Conventions shared by the command-line drivers (occ, simulate,
    offchip-sweep).

    Exit codes: [0] success, [1] user error (bad flags, malformed input,
    compile errors), [2] internal error (a bug — an unexpected
    exception).  [guard] enforces the last one uniformly. *)

val ok : int

val user_error : int

val internal_error : int

val guard : name:string -> (unit -> int) -> int
(** Runs the driver body; an escaping exception is reported as
    [<name>: internal error: ...] on stderr (with a backtrace when
    [OCAMLRUNPARAM] asks for one) and becomes exit code
    {!internal_error}. *)

(** {2 Shared platform flags}

    The platform knobs every driver exposes, with one spelling and one
    doc string. *)

val l2 : string Cmdliner.Term.t
(** [--l2 private|shared] *)

val interleave : string Cmdliner.Term.t
(** [--interleave line|page] *)

val policy : string Cmdliner.Term.t
(** [--policy hardware|first-touch|mc-aware] *)

val mapping : string Cmdliner.Term.t
(** [--mapping M1|M2|<mc-count>]; [""] (the default) keeps the
    platform's own mapping. *)

val platform : string Cmdliner.Term.t
(** [--platform PRESET|FILE] — a {!Core.Platform} preset name or JSON
    file; [""] (the default) is the [mesh8x8-mc4] preset. *)

val width : int Cmdliner.Term.t
(** [--width W] *)

val height : int Cmdliner.Term.t
(** [--height H] *)

val domains : int Cmdliner.Term.t
(** [--domains N] — worker-domain count for the parallel engine. *)

val check_domains : available:bool -> int -> (unit, string) result
(** Validates a [--domains] value against the build's backend
    ({!Sim.Par_backend.available}): rejects non-positive counts anywhere
    and counts above 1 on pre-OCaml-5 builds, with the canonical
    one-line message (the driver prints it and exits with
    {!user_error}). *)
