(* Tests for the off-chip attribution layer: site tables, the engine's
   per-site cube, tagged trace files, progress streams and the report
   renderer. *)

module Config = Sim.Config
module Runner = Sim.Runner
module Attr = Obs.Attr
module Json = Obs.Json

let parse src =
  match Lang.Parser.parse_result src with
  | Ok p -> p
  | Error (d :: _) -> failwith (Lang.Diag.to_string d)
  | Error [] -> failwith "parse failed"

(* the program behind the seed-0 stats golden (gen_golden.ml) *)
let small_src =
  {|
param N = 64;
array A[N][N];
array B[N][N];
parfor i = 1 to N-2 { for j = 0 to N-1 { A[i][j] = B[i][j] + B[i-1][j] + B[i+1][j]; } }
|}

(* --- site tables --- *)

let test_sites_numbering () =
  let p = parse small_src in
  let t = Lang.Sites.of_program p in
  (* rhs reads before the lhs write, in interpreter emission order *)
  let s = Lang.Sites.sites t in
  Alcotest.(check int) "four references" 4 (Array.length s);
  Alcotest.(check (list string)) "emission order (reads then write)"
    [ "B"; "B"; "B"; "A" ]
    (Array.to_list (Array.map (fun (x : Lang.Sites.site) -> x.Lang.Sites.array) s));
  Alcotest.(check (list bool)) "write flags"
    [ false; false; false; true ]
    (Array.to_list (Array.map (fun (x : Lang.Sites.site) -> x.Lang.Sites.write) s));
  (* a foreign node resolves to no site *)
  let foreign =
    { Lang.Ast.array = "A"; subs = []; ref_span = Lang.Span.dummy }
  in
  Alcotest.(check int) "foreign ref" (-1) (Lang.Sites.id_of_ref t foreign)

(* --- golden attribution table + sum cross-check --- *)

let run_attributed () =
  let cfg = Config.scaled () in
  let p = Runner.prepare cfg ~optimized:false ~attr:true (parse small_src) in
  let attr = Runner.attr_for cfg p in
  let r = Runner.run_many ~attr cfg ~jobs:[ p ] in
  (cfg, r, attr)

let test_attr_golden () =
  let _, _, attr = run_attributed () in
  let table = Format.asprintf "%a" Attr.pp_table (Attr.snapshot attr) in
  let ic = open_in_bin "golden/seed0_attr.txt" in
  let golden = really_input_string ic (in_channel_length ic) in
  close_in ic;
  Alcotest.(check string) "byte-identical to committed golden" golden table

let test_attr_sum_matches_engine () =
  let _, r, attr = run_attributed () in
  let snap = Attr.snapshot attr in
  let offchip = Sim.Stats.offchip_accesses r.Sim.Engine.stats in
  Alcotest.(check int) "cube total == sim.offchip_accesses" offchip
    (Attr.snap_total snap);
  let per_site =
    List.init
      (Array.length snap.Attr.sites + 1)
      (fun s -> Attr.site_count snap s)
  in
  Alcotest.(check int) "sum of per-site counts == total" offchip
    (List.fold_left ( + ) 0 per_site);
  Alcotest.(check int) "every access attributed (empty unknown row)" 0
    (Attr.site_count snap (Array.length snap.Attr.sites));
  (* the cube's per-controller split agrees with the stats' per-node map *)
  let node_mc = Sim.Stats.node_mc_requests r.Sim.Engine.stats in
  let mcs = snap.Attr.mcs in
  for m = 0 to mcs - 1 do
    let from_stats =
      Array.fold_left (fun acc row -> acc + row.(m)) 0 node_mc
    in
    let from_cube =
      List.fold_left ( + ) 0
        (List.init
           (Array.length snap.Attr.sites + 1)
           (fun s -> Attr.site_mc_count snap ~site:s ~mc:m))
    in
    Alcotest.(check int)
      (Printf.sprintf "controller %d split agrees" m)
      from_stats from_cube
  done

let test_attr_off_is_byte_identical () =
  (* with attribution off the registry must not even mention the
     attr-only metrics — the seed-0 stats golden (test_sim) pins the
     whole document; here we pin the specific invariant *)
  let cfg = Config.scaled () in
  let p = Runner.prepare cfg ~optimized:false (parse small_src) in
  let r = Runner.run_many cfg ~jobs:[ p ] in
  let snap = Obs.Metrics.snapshot (Sim.Stats.registry r.Sim.Engine.stats) in
  Alcotest.(check bool) "no queue-depth histogram" false
    (List.mem_assoc "mem.queue_depth" snap.Obs.Metrics.histograms);
  Alcotest.(check bool) "no link gauges" false
    (List.mem_assoc "noc.max_link_utilization" snap.Obs.Metrics.gauges)

(* --- snapshot JSON round-trip and merge --- *)

let test_attr_json_roundtrip () =
  let _, _, attr = run_attributed () in
  let snap = Attr.snapshot attr in
  match Attr.of_json (Attr.to_json snap) with
  | Error e -> Alcotest.failf "decode failed: %s" e
  | Ok snap' ->
    Alcotest.(check bool) "snapshot JSON round-trips" true
      (Json.equal (Attr.to_json snap) (Attr.to_json snap'))

let test_merge_errors () =
  let sites =
    [| { Attr.array = "A"; write = false; phase = 0; loc = "x:1-2" } |]
  in
  let a = Attr.create ~sites ~mcs:2 ~banks:2 ~max_hops:4 in
  let b = Attr.create ~sites ~mcs:4 ~banks:2 ~max_hops:4 in
  (match Attr.merge (Attr.snapshot a) (Attr.snapshot b) with
  | Ok _ -> Alcotest.fail "shape mismatch merged"
  | Error _ -> ());
  let other =
    [| { Attr.array = "B"; write = true; phase = 0; loc = "y:1-2" } |]
  in
  let c = Attr.create ~sites:other ~mcs:2 ~banks:2 ~max_hops:4 in
  match Attr.merge (Attr.snapshot a) (Attr.snapshot c) with
  | Ok _ -> Alcotest.fail "site-table mismatch merged"
  | Error _ -> ()

let test_unknown_row () =
  let sites =
    [| { Attr.array = "A"; write = false; phase = 0; loc = "x:1-2" } |]
  in
  let a = Attr.create ~sites ~mcs:2 ~banks:2 ~max_hops:4 in
  Attr.record a ~site:(-1) ~mc:0 ~bank:1 ~hops:2;
  Attr.record a ~site:7 ~mc:1 ~bank:0 ~hops:1;
  Attr.record a ~site:0 ~mc:1 ~bank:1 ~hops:0;
  let snap = Attr.snapshot a in
  Alcotest.(check int) "total counts everything" 3 (Attr.snap_total snap);
  Alcotest.(check int) "out-of-range lands in the unknown row" 2
    (Attr.site_count snap 1);
  let table = Format.asprintf "%a" Attr.pp_table snap in
  Alcotest.(check bool) "unknown row rendered" true
    (Astring.String.is_infix ~affix:"(unattributed)" table)

(* random snapshots of a fixed small shape, for the merge laws *)
let snapshot_gen =
  let sites =
    [|
      { Attr.array = "A"; write = false; phase = 0; loc = "x:1-2" };
      { Attr.array = "B"; write = true; phase = 1; loc = "x:3-9" };
    |]
  in
  QCheck.Gen.(
    let event =
      quad (int_range (-1) 3) (int_range 0 1) (int_range 0 1) (int_range 0 5)
    in
    map
      (fun events ->
        let a = Attr.create ~sites ~mcs:2 ~banks:2 ~max_hops:4 in
        List.iter
          (fun (site, mc, bank, hops) ->
            Attr.record a ~site ~mc ~bank ~hops;
            Attr.record_queue a ~site ~queue:(hops * 7))
          events;
        Attr.snapshot a)
      (list_size (int_range 0 40) event))

let merge_exn a b =
  match Attr.merge a b with Ok m -> m | Error e -> failwith e

let prop_merge_commutative =
  QCheck.Test.make ~name:"Attr.merge is commutative" ~count:100
    (QCheck.make snapshot_gen)
    (fun s ->
      (* split differently each run by merging with itself reversed *)
      let t = merge_exn s s in
      Json.equal (Attr.to_json (merge_exn s t)) (Attr.to_json (merge_exn t s)))

let prop_merge_associative =
  QCheck.Test.make ~name:"Attr.merge is associative" ~count:100
    (QCheck.make QCheck.Gen.(triple snapshot_gen snapshot_gen snapshot_gen))
    (fun (a, b, c) ->
      Json.equal
        (Attr.to_json (merge_exn (merge_exn a b) c))
        (Attr.to_json (merge_exn a (merge_exn b c))))

(* --- tagged trace files --- *)

let test_tracefile_v2_roundtrip () =
  let cfg = Config.scaled () in
  let p = Runner.prepare cfg ~optimized:false ~attr:true (parse small_src) in
  let phases = p.Runner.job.Sim.Engine.phases in
  let sites = p.Runner.job.Sim.Engine.site_streams in
  Alcotest.(check bool) "prepare ~attr:true tags the job" true (sites <> []);
  let path = Filename.temp_file "offchip" ".trace" in
  Sim.Tracefile.dump ~sites path phases;
  let tagged = Sim.Tracefile.load_tagged path in
  Alcotest.(check bool) "v2 round-trips phases" true
    (List.map fst tagged = phases);
  Alcotest.(check bool) "v2 round-trips site streams" true
    (List.map snd tagged = sites);
  Alcotest.(check bool) "load drops the tags" true
    (Sim.Tracefile.load path = phases);
  (* a v1 file reads back with all-unknown tags *)
  Sim.Tracefile.dump path phases;
  let v1 = Sim.Tracefile.load_tagged path in
  Alcotest.(check bool) "v1 phases survive" true (List.map fst v1 = phases);
  Alcotest.(check bool) "v1 tags are -1" true
    (List.for_all
       (fun (_, ss) ->
         Array.for_all (Array.for_all (fun s -> s = -1)) ss)
       v1);
  Sys.remove path

(* --- progress streams --- *)

let test_progress_roundtrip () =
  let path = Filename.temp_file "offchip" ".ndjson" in
  (match Obs.Progress.file_sink path with
  | Error e -> Alcotest.fail e
  | Ok sink ->
    Obs.Progress.emit sink (Json.obj [ ("event", Json.String "a") ]);
    Obs.Progress.emit sink
      (Json.obj [ ("event", Json.String "b"); ("n", Json.Int 3) ]);
    Obs.Progress.close sink);
  (match Obs.Progress.read path with
  | Error e -> Alcotest.fail e
  | Ok events ->
    Alcotest.(check int) "two events" 2 (List.length events);
    List.iter
      (fun ev ->
        Alcotest.(check bool) "ts stamped" true (Json.member "ts" ev <> None))
      events;
    (* a trailing partial line (concurrent writer) is not an event *)
    let oc = open_out_gen [ Open_append ] 0o644 path in
    output_string oc "{\"event\":\"tr";
    close_out oc;
    match Obs.Progress.read path with
    | Error e -> Alcotest.fail e
    | Ok events' ->
      Alcotest.(check int) "partial line ignored" 2 (List.length events'));
  Sys.remove path

let test_progress_follow () =
  let path = Filename.temp_file "offchip" ".ndjson" in
  (match Obs.Progress.file_sink path with
  | Error e -> Alcotest.fail e
  | Ok sink ->
    Obs.Progress.emit sink (Json.obj [ ("event", Json.String "job_finish") ]);
    Obs.Progress.emit sink (Json.obj [ ("event", Json.String "sweep_done") ]);
    Obs.Progress.close sink);
  let seen = ref 0 in
  (match
     Obs.Progress.follow ~poll_s:0.01 ~timeout_s:5.
       ~stop:(fun ev ->
         match Json.member "event" ev with
         | Some (Json.String "sweep_done") -> true
         | _ -> false)
       ~on_event:(fun _ -> incr seen)
       path
   with
  | Ok () -> ()
  | Error e -> Alcotest.fail e);
  Alcotest.(check int) "both events delivered" 2 !seen;
  (* a stream that never finishes times out instead of hanging *)
  let dead = Filename.temp_file "offchip" ".ndjson" in
  (match
     Obs.Progress.follow ~poll_s:0.01 ~timeout_s:0.05
       ~stop:(fun _ -> false)
       ~on_event:(fun _ -> ())
       dead
   with
  | Ok () -> Alcotest.fail "follow returned without a stop event"
  | Error _ -> ());
  Sys.remove path;
  Sys.remove dead

(* --- report --- *)

let test_report_names_hot_site () =
  let cfg, r, attr = run_attributed () in
  let doc = Sweep.Exec.result_json ~attr ~app:"golden-small" cfg r in
  match Obs.Report.build doc with
  | Error e -> Alcotest.fail e
  | Ok sections ->
    let md = Obs.Report.to_markdown ~title:"t" sections in
    let snap = Attr.snapshot attr in
    (* the report names the hottest site's (array, span, controller)
       triple with exactly the engine's count *)
    let hot =
      let best = ref 0 in
      Array.iteri
        (fun i _ ->
          if Attr.site_count snap i > Attr.site_count snap !best then best := i)
        snap.Attr.sites;
      !best
    in
    let site = snap.Attr.sites.(hot) in
    let count = Attr.site_mc_count snap ~site:hot ~mc:0 in
    Alcotest.(check bool) "names the array" true
      (Astring.String.is_infix ~affix:site.Attr.array md);
    Alcotest.(check bool) "names the source span" true
      (Astring.String.is_infix ~affix:site.Attr.loc md);
    Alcotest.(check bool) "per-controller count is exact" true
      (Astring.String.is_infix ~affix:(Printf.sprintf "mc0=%d" count) md);
    Alcotest.(check bool) "totals agree with the engine" true
      (Astring.String.is_infix ~affix:"exactly the engine's" md);
    Alcotest.(check bool) "heatmaps embedded" true
      (Astring.String.is_infix ~affix:"per-link utilization" md);
    (* html rendering stays self-contained and keeps the pre blocks *)
    let html = Obs.Report.to_html ~title:"t" sections in
    Alcotest.(check bool) "html has the table" true
      (Astring.String.is_infix ~affix:"<pre>" html)

let suite =
  [
    ( "attr",
      [
        Alcotest.test_case "site numbering" `Quick test_sites_numbering;
        Alcotest.test_case "seed-0 attribution golden" `Quick test_attr_golden;
        Alcotest.test_case "cube total == engine counters" `Quick
          test_attr_sum_matches_engine;
        Alcotest.test_case "attr off leaves registry untouched" `Quick
          test_attr_off_is_byte_identical;
        Alcotest.test_case "snapshot JSON round-trip" `Quick
          test_attr_json_roundtrip;
        Alcotest.test_case "merge refuses mismatched shapes" `Quick
          test_merge_errors;
        Alcotest.test_case "unknown row" `Quick test_unknown_row;
        QCheck_alcotest.to_alcotest prop_merge_commutative;
        QCheck_alcotest.to_alcotest prop_merge_associative;
        Alcotest.test_case "tracefile v2 round-trip" `Quick
          test_tracefile_v2_roundtrip;
        Alcotest.test_case "progress NDJSON round-trip" `Quick
          test_progress_roundtrip;
        Alcotest.test_case "progress follow" `Quick test_progress_follow;
        Alcotest.test_case "report names a hot site exactly" `Quick
          test_report_names_hot_site;
      ] );
  ]
