type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

(* ---- encoding ---- *)

let escape_string buf s =
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | '\b' -> Buffer.add_string buf "\\b"
      | '\012' -> Buffer.add_string buf "\\f"
      | c when Char.code c < 0x20 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"'

let add_float buf f =
  match Float.classify_float f with
  | FP_nan | FP_infinite -> Buffer.add_string buf "null"
  | _ ->
    (* shortest representation that round-trips the binary value *)
    let s = Printf.sprintf "%.17g" f in
    let s =
      let short = Printf.sprintf "%g" f in
      if float_of_string short = f then short else s
    in
    Buffer.add_string buf s;
    (* make sure it re-parses as a float, not an int *)
    if String.for_all (fun c -> (c >= '0' && c <= '9') || c = '-') s then
      Buffer.add_string buf ".0"

let rec write buf ~minify ~indent v =
  let nl pad =
    if not minify then begin
      Buffer.add_char buf '\n';
      Buffer.add_string buf (String.make pad ' ')
    end
  in
  match v with
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (if b then "true" else "false")
  | Int i -> Buffer.add_string buf (string_of_int i)
  | Float f -> add_float buf f
  | String s -> escape_string buf s
  | List [] -> Buffer.add_string buf "[]"
  | List items ->
    Buffer.add_char buf '[';
    List.iteri
      (fun i item ->
        if i > 0 then Buffer.add_char buf ',';
        nl (indent + 2);
        write buf ~minify ~indent:(indent + 2) item)
      items;
    nl indent;
    Buffer.add_char buf ']'
  | Obj [] -> Buffer.add_string buf "{}"
  | Obj fields ->
    Buffer.add_char buf '{';
    List.iteri
      (fun i (k, item) ->
        if i > 0 then Buffer.add_char buf ',';
        nl (indent + 2);
        escape_string buf k;
        Buffer.add_char buf ':';
        if not minify then Buffer.add_char buf ' ';
        write buf ~minify ~indent:(indent + 2) item)
      fields;
    nl indent;
    Buffer.add_char buf '}'

let to_string ?(minify = false) v =
  let buf = Buffer.create 256 in
  write buf ~minify ~indent:0 v;
  Buffer.contents buf

let to_channel oc v =
  output_string oc (to_string v);
  output_char oc '\n'

(* ---- parsing ---- *)

exception Parse_error of string

let of_string s =
  let n = String.length s in
  let pos = ref 0 in
  let fail msg = raise (Parse_error (Printf.sprintf "%s at offset %d" msg !pos)) in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let skip_ws () =
    while
      !pos < n
      && match s.[!pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false
    do
      incr pos
    done
  in
  let expect c =
    if !pos < n && s.[!pos] = c then incr pos
    else fail (Printf.sprintf "expected %c" c)
  in
  let literal lit v =
    let l = String.length lit in
    if !pos + l <= n && String.sub s !pos l = lit then begin
      pos := !pos + l;
      v
    end
    else fail ("expected " ^ lit)
  in
  let parse_string () =
    expect '"';
    let buf = Buffer.create 16 in
    let rec go () =
      if !pos >= n then fail "unterminated string";
      match s.[!pos] with
      | '"' -> incr pos
      | '\\' ->
        incr pos;
        if !pos >= n then fail "unterminated escape";
        (match s.[!pos] with
        | '"' -> Buffer.add_char buf '"'
        | '\\' -> Buffer.add_char buf '\\'
        | '/' -> Buffer.add_char buf '/'
        | 'n' -> Buffer.add_char buf '\n'
        | 'r' -> Buffer.add_char buf '\r'
        | 't' -> Buffer.add_char buf '\t'
        | 'b' -> Buffer.add_char buf '\b'
        | 'f' -> Buffer.add_char buf '\012'
        | 'u' ->
          if !pos + 4 >= n then fail "short \\u escape";
          let hex = String.sub s (!pos + 1) 4 in
          let code =
            try int_of_string ("0x" ^ hex) with _ -> fail "bad \\u escape"
          in
          pos := !pos + 4;
          (* encode the code point as UTF-8 (no surrogate pairing: the
             encoder only emits \u for control characters) *)
          if code < 0x80 then Buffer.add_char buf (Char.chr code)
          else if code < 0x800 then begin
            Buffer.add_char buf (Char.chr (0xC0 lor (code lsr 6)));
            Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
          end
          else begin
            Buffer.add_char buf (Char.chr (0xE0 lor (code lsr 12)));
            Buffer.add_char buf (Char.chr (0x80 lor ((code lsr 6) land 0x3F)));
            Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
          end
        | c -> fail (Printf.sprintf "bad escape \\%c" c));
        incr pos;
        go ()
      | c ->
        Buffer.add_char buf c;
        incr pos;
        go ()
    in
    go ();
    Buffer.contents buf
  in
  let parse_number () =
    let start = !pos in
    let is_float = ref false in
    if peek () = Some '-' then incr pos;
    while
      !pos < n
      &&
      match s.[!pos] with
      | '0' .. '9' -> true
      | '.' | 'e' | 'E' | '+' | '-' ->
        is_float := true;
        true
      | _ -> false
    do
      incr pos
    done;
    let text = String.sub s start (!pos - start) in
    if !is_float then
      match float_of_string_opt text with
      | Some f -> Float f
      | None -> fail "bad number"
    else
      match int_of_string_opt text with
      | Some i -> Int i
      | None -> (
        match float_of_string_opt text with
        | Some f -> Float f
        | None -> fail "bad number")
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | None -> fail "unexpected end of input"
    | Some 'n' -> literal "null" Null
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some '"' -> String (parse_string ())
    | Some '[' ->
      incr pos;
      skip_ws ();
      if peek () = Some ']' then begin
        incr pos;
        List []
      end
      else begin
        let items = ref [ parse_value () ] in
        skip_ws ();
        while peek () = Some ',' do
          incr pos;
          items := parse_value () :: !items;
          skip_ws ()
        done;
        expect ']';
        List (List.rev !items)
      end
    | Some '{' ->
      incr pos;
      skip_ws ();
      if peek () = Some '}' then begin
        incr pos;
        Obj []
      end
      else begin
        let field () =
          skip_ws ();
          let k = parse_string () in
          skip_ws ();
          expect ':';
          let v = parse_value () in
          (k, v)
        in
        let fields = ref [ field () ] in
        skip_ws ();
        while peek () = Some ',' do
          incr pos;
          fields := field () :: !fields;
          skip_ws ()
        done;
        expect '}';
        Obj (List.rev !fields)
      end
    | Some ('-' | '0' .. '9') -> parse_number ()
    | Some c -> fail (Printf.sprintf "unexpected %c" c)
  in
  match
    let v = parse_value () in
    skip_ws ();
    if !pos <> n then fail "trailing garbage";
    v
  with
  | v -> Ok v
  | exception Parse_error msg -> Error msg

(* ---- helpers ---- *)

let rec equal a b =
  match (a, b) with
  | Null, Null -> true
  | Bool a, Bool b -> a = b
  | Int a, Int b -> a = b
  | Float a, Float b -> a = b || (Float.is_nan a && Float.is_nan b)
  | String a, String b -> String.equal a b
  | List a, List b -> ( try List.for_all2 equal a b with Invalid_argument _ -> false)
  | Obj a, Obj b -> (
    try List.for_all2 (fun (ka, va) (kb, vb) -> String.equal ka kb && equal va vb) a b
    with Invalid_argument _ -> false)
  | _ -> false

let member key = function
  | Obj fields -> List.assoc_opt key fields
  | _ -> None

let obj fields = Obj fields

let list f items = List (List.map f items)

let array f items = List (Array.to_list (Array.map f items))

let int_array a = array (fun i -> Int i) a

let float_array a = array (fun f -> Float f) a
