lib/workloads/ammp.mli: App
