module Json = Obs.Json
module Config = Sim.Config
module Engine = Sim.Engine
module Par_engine = Sim.Par_engine
module Runner = Sim.Runner

(* each tenant owns one 256 MB virtual-address slice; slices never
   overlap, so the shared allocator can hand a departing tenant's whole
   page range back with one free_region call *)
let slice = 1 lsl 28

type tenant = {
  id : int;
  app : string;
  slot : int;
  arrival : int;
  start : int;
  finish : int;
  measured : int;
  solo : int;
  slowdown : float;
  offchip : int;
  fallbacks : int;
}

let queue_wait t = t.start - t.arrival
let completion_latency t = t.finish - t.arrival

type qos = {
  weighted_speedup : float;
  p50_latency : int;
  p95_latency : int;
  p99_latency : int;
  total_fallbacks : int;
  avg_queue_wait : float;
}

type t = {
  scenario : Scenario.t;
  cfg : Config.t;
  engine : Engine.result;
  tenants : tenant list;
  qos : qos;
  attr : Obs.Attr.t option;
}

(* ------------------------------------------------------------------ *)
(* Arrival process *)

(* xorshift64 stream seeded like the engine's jitter streams but with a
   distinct mixing constant, so serving decisions never correlate with
   issue jitter at equal seeds *)
let stream seed =
  let state = ref ((seed * 0x2545F4914F6CDD1D) lxor 0x1E3779B97F4A7C15) in
  if !state = 0 then state := 1;
  fun () ->
    let x = !state in
    let x = x lxor (x lsl 13) in
    let x = x lxor (x lsr 7) in
    let x = x lxor (x lsl 17) in
    state := x;
    (* fold high bits down: raw xorshift low bits are too regular for
       the small moduli the lottery takes *)
    (x lxor (x lsr 29)) land max_int

(* geometric inter-arrival with success probability 1/mean: the discrete
   memoryless (Poisson-like) process, in pure integer arithmetic so
   committed goldens cannot drift across libm versions *)
let interarrival draw mean =
  if mean <= 1 then 1
  else
    let rec go n = if draw () mod mean = 0 then n else go (n + 1) in
    go 1

type admission = { aid : int; aapp : string; aslot : int; at : int }

let plan (sc : Scenario.t) ~slots =
  let draw = stream sc.Scenario.seed in
  let mix = Array.of_list sc.Scenario.mix in
  let napps = Array.length mix in
  let rec go id t acc =
    if id >= sc.Scenario.tenants then List.rev acc
    else
      let arrival =
        if id = 0 then 0 else t + interarrival draw sc.Scenario.arrival_mean
      in
      match sc.Scenario.duration with
      | Some d when arrival > d -> List.rev acc
      | _ ->
        let app = mix.(draw () mod napps) in
        go (id + 1) arrival
          ({ aid = id; aapp = app; aslot = id mod slots; at = arrival } :: acc)
  in
  go 0 0 []

(* ------------------------------------------------------------------ *)
(* Run *)

let prepare_tenant cfg ~(sc : Scenario.t) ~attr a =
  let app = Workloads.Suite.by_name a.aapp in
  let program = Workloads.App.program app in
  let index_lookup = Workloads.App.index_lookup app in
  let profile =
    if sc.Scenario.optimized then
      let analysis = Lang.Analysis.analyze program in
      Some (fun arr -> Workloads.Profile.for_transform app analysis arr)
    else None
  in
  let tpc = cfg.Config.threads_per_core in
  Runner.prepare cfg ~optimized:sc.Scenario.optimized
    ~threads:sc.Scenario.threads_per_tenant
    ~core_offset:(a.aslot * (sc.Scenario.threads_per_tenant / tpc))
    ~vaddr_base:(a.aid * slice)
    ~name:(Printf.sprintf "t%d:%s" a.aid a.aapp)
    ~warmup_phases:app.Workloads.App.warmup_nests ~index_lookup ?profile ~attr
    program

(* solo golden: the tenant alone on an otherwise idle machine, same
   thread count and policy — the denominator of slowdown and the
   numerator of weighted speedup *)
let solo_time cfg ~(sc : Scenario.t) =
  let tbl = Hashtbl.create 8 in
  fun appname ->
    match Hashtbl.find_opt tbl appname with
    | Some t -> t
    | None ->
      let p =
        prepare_tenant cfg ~sc ~attr:false
          { aid = 0; aapp = appname; aslot = 0; at = 0 }
      in
      let r =
        Engine.run cfg ~desired_mc_of_vpage:p.Runner.desired_mc
          ~jobs:[ p.Runner.job ] ()
      in
      let t = max 1 r.Engine.measured_time in
      Hashtbl.replace tbl appname t;
      t

let combined_attr cfg plan preps =
  let site_arrays =
    List.map (fun p -> Lang.Sites.sites p.Runner.sites) preps
  in
  let sites =
    List.concat
      (List.map2
         (fun a arr ->
           Array.to_list
             (Array.map
                (fun (s : Lang.Sites.site) ->
                  {
                    Obs.Attr.array =
                      Printf.sprintf "t%d:%s/%s" a.aid a.aapp
                        s.Lang.Sites.array;
                    write = s.Lang.Sites.write;
                    phase = s.Lang.Sites.phase;
                    loc = Lang.Span.to_string s.Lang.Sites.span;
                  })
                arr))
         plan site_arrays)
  in
  let cube =
    Obs.Attr.create ~sites:(Array.of_list sites)
      ~mcs:(Config.num_mcs cfg) ~banks:(Config.banks_per_mc cfg)
      ~max_hops:Sim.Stats.max_hops
  in
  (* per-tenant offset of each tenant's site ids in the combined table *)
  let bases =
    let acc = ref 0 in
    List.map
      (fun arr ->
        let b = !acc in
        acc := b + Array.length arr;
        b)
      site_arrays
  in
  (cube, bases)

let offset_streams base streams =
  if base = 0 then streams
  else
    List.map
      (Array.map (Array.map (fun s -> if s >= 0 then s + base else s)))
      streams

let percentile sorted n k =
  let rank = ((k * n) + 99) / 100 in
  List.nth sorted (max 0 (rank - 1))

let run ?(attr = false) ?(progress = Obs.Progress.null) ?(domains = 1) ?on_plan
    (sc : Scenario.t) =
  let ( let* ) = Result.bind in
  let* sc = Scenario.validate sc in
  let* cfg = Scenario.config sc in
  let tpc = cfg.Config.threads_per_core in
  let cores_total = Noc.Topology.nodes (Config.topo cfg) in
  let tpt = sc.Scenario.threads_per_tenant in
  let* () =
    if tpt mod tpc <> 0 then
      Error
        (Printf.sprintf
           "serve: threads_per_tenant (%d) must be a multiple of \
            threads_per_core (%d)"
           tpt tpc)
    else Ok ()
  in
  let cores_per_tenant = tpt / tpc in
  let* () =
    if cores_per_tenant > cores_total then
      Error
        (Printf.sprintf
           "serve: a tenant needs %d cores but the platform has only %d"
           cores_per_tenant cores_total)
    else Ok ()
  in
  let slots = cores_total / cores_per_tenant in
  let plan = plan sc ~slots in
  let* () =
    if plan = [] then
      Error "serve: no tenant arrives within the scenario duration"
    else Ok ()
  in
  let preps = List.map (prepare_tenant cfg ~sc ~attr) plan in
  let* () =
    match
      List.find_opt
        (fun (a, p) ->
          List.exists
            (fun (_, base) -> base >= (a.aid + 1) * slice)
            p.Runner.bases)
        (List.combine plan preps)
    with
    | Some (a, _) ->
      Error
        (Printf.sprintf
           "serve: tenant %d (%s) overflows its %d MB address slice" a.aid
           a.aapp (slice / (1 lsl 20)))
    | None -> Ok ()
  in
  let cube, site_bases =
    if attr then
      let c, b = combined_attr cfg plan preps in
      (Some c, b)
    else (None, List.map (fun _ -> 0) preps)
  in
  let page_bytes = Config.page_bytes cfg in
  let last_on_slot = Array.make slots (-1) in
  let jobs =
    List.map2
      (fun (a, p) base ->
        let pred = last_on_slot.(a.aslot) in
        last_on_slot.(a.aslot) <- a.aid;
        let job = p.Runner.job in
        {
          job with
          Engine.site_streams = offset_streams base job.Engine.site_streams;
          start_time = a.at;
          start_after = (if pred < 0 then None else Some pred);
          free_vpage_range =
            Some
              ( a.aid * slice / page_bytes,
                (((a.aid + 1) * slice) - 1) / page_bytes );
        })
      (List.combine plan preps) site_bases
  in
  (* the co-run is the hot loop; tenants whose slots share no cluster
     decompose by partition (first-touch scenarios with cluster-sized
     tenants), everything else falls back sequentially — byte-identical
     either way.  Solo calibration runs below stay sequential. *)
  let r =
    Par_engine.run cfg
      ~desired_mc_of_vpage:(Runner.combined_hints preps)
      ?attr:cube ?on_plan ~domains ~jobs ()
  in
  let solo = solo_time cfg ~sc in
  let tenants =
    List.map
      (fun a ->
        let i = a.aid in
        let measured = max 1 r.Engine.job_measured.(i) in
        let solo = solo a.aapp in
        {
          id = i;
          app = a.aapp;
          slot = a.aslot;
          arrival = a.at;
          start = r.Engine.job_start.(i);
          finish = r.Engine.job_finish.(i);
          measured;
          solo;
          slowdown = float_of_int measured /. float_of_int solo;
          offchip = r.Engine.job_offchip.(i);
          fallbacks = r.Engine.job_fallbacks.(i);
        })
      plan
  in
  let n = List.length tenants in
  let lats = List.sort compare (List.map completion_latency tenants) in
  let qos =
    {
      weighted_speedup =
        List.fold_left
          (fun acc t -> acc +. (float_of_int t.solo /. float_of_int t.measured))
          0. tenants
        /. float_of_int n;
      p50_latency = percentile lats n 50;
      p95_latency = percentile lats n 95;
      p99_latency = percentile lats n 99;
      total_fallbacks = List.fold_left (fun acc t -> acc + t.fallbacks) 0 tenants;
      avg_queue_wait =
        float_of_int (List.fold_left (fun acc t -> acc + queue_wait t) 0 tenants)
        /. float_of_int n;
    }
  in
  let result = { scenario = sc; cfg; engine = r; tenants; qos; attr = cube } in
  (* lifecycle events in simulated-time order (arrive < start < finish at
     equal times, then tenant id) — the same NDJSON framing sweeps use *)
  let events =
    List.concat_map
      (fun t -> [ (t.arrival, 0, t); (t.start, 1, t); (t.finish, 2, t) ])
      tenants
    |> List.sort (fun (ta, ka, a) (tb, kb, b) ->
           compare (ta, ka, a.id) (tb, kb, b.id))
  in
  List.iter
    (fun (time, kind, t) ->
      let event =
        match kind with
        | 0 -> "tenant_arrive"
        | 1 -> "tenant_start"
        | _ -> "tenant_finish"
      in
      let tail =
        if kind = 2 then
          [
            ("completion_latency", Json.Int (completion_latency t));
            ("slowdown", Json.Float t.slowdown);
          ]
        else []
      in
      Obs.Progress.emit progress
        (Json.obj
           ([
              ("event", Json.String event);
              ("time", Json.Int time);
              ("tenant", Json.Int t.id);
              ("app", Json.String t.app);
              ("slot", Json.Int t.slot);
            ]
           @ tail)))
    events;
  Obs.Progress.emit progress
    (Json.obj
       [
         ("event", Json.String "serve_done");
         ("scenario", Json.String sc.Scenario.name);
         ("tenants", Json.Int n);
         ("weighted_speedup", Json.Float qos.weighted_speedup);
       ]);
  Ok result

(* ------------------------------------------------------------------ *)
(* Result document *)

let tenant_json t =
  Json.obj
    [
      ("id", Json.Int t.id);
      ("app", Json.String t.app);
      ("slot", Json.Int t.slot);
      ("arrival", Json.Int t.arrival);
      ("start", Json.Int t.start);
      ("finish", Json.Int t.finish);
      ("queue_wait", Json.Int (queue_wait t));
      ("completion_latency", Json.Int (completion_latency t));
      ("measured_time", Json.Int t.measured);
      ("solo_time", Json.Int t.solo);
      ("slowdown", Json.Float t.slowdown);
      ("offchip_accesses", Json.Int t.offchip);
      ("fallback_allocations", Json.Int t.fallbacks);
    ]

let qos_json q =
  Json.obj
    [
      ("weighted_speedup", Json.Float q.weighted_speedup);
      ("p50_latency", Json.Int q.p50_latency);
      ("p95_latency", Json.Int q.p95_latency);
      ("p99_latency", Json.Int q.p99_latency);
      ("total_fallbacks", Json.Int q.total_fallbacks);
      ("avg_queue_wait", Json.Float q.avg_queue_wait);
    ]

let result_json run =
  Sweep.Exec.result_json ?attr:run.attr
    ~extra:
      [
        ("scenario", Scenario.to_json run.scenario);
        ("tenants", Json.list tenant_json run.tenants);
        ("qos", qos_json run.qos);
      ]
    ~app:("serve:" ^ run.scenario.Scenario.name)
    run.cfg run.engine
