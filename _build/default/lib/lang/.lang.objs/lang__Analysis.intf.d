lib/lang/analysis.mli: Affine Ast
