(** Hand-written lexer for the mini language. *)

type token =
  | IDENT of string
  | INT of int
  | KW_PARAM
  | KW_ARRAY
  | KW_INDEX
  | KW_FOR
  | KW_PARFOR
  | KW_TO
  | KW_IF
  | KW_ELSE
  | LBRACKET
  | RBRACKET
  | LBRACE
  | RBRACE
  | LPAREN
  | RPAREN
  | PLUS
  | MINUS
  | STAR
  | SLASH
  | PERCENT
  | EQUALS
  | LT
  | LE
  | GT
  | GE
  | EQEQ
  | NE
  | SEMI
  | EOF

exception Error of string * int
(** [Error (message, position)] — lexical error with byte offset. *)

val tokenize : string -> token list
(** Tokenizes a full source string.  Comments run from [//] to end of
    line.  Raises {!Error} on an unexpected character. *)

val pp_token : Format.formatter -> token -> unit
