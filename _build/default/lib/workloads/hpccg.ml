(** hpccg (Mantevo): conjugate gradient — sparse matrix-vector product in
    CRS form.  The source vector is accessed through the column-index
    array; the profile-based approximation (Section 5.4) fits the banded
    structure well, so the reference is optimized. *)

let n = 32768

let clamp lo hi x = max lo (min hi x)

let cols v =
  (* seven-point band: row i touches columns i-3 .. i+3 *)
  clamp 0 (n - 1) (v.(0) - 3 + v.(1))

let app =
  App.make ~name:"hpccg"
    ~description:"conjugate gradient: banded SpMV through index arrays"
    ~index:[ ("COLS", cols) ]
    {|
param N = 32768;
param NZ = 7;
array VALS[N][NZ];
index COLS[N][NZ];
array XV[N];
array PV[N];
array RV[N];
// reversed sparse init scrambles first-touch
parfor i = 0 to N/16-1 {
  XV[N-1-16*i] = i;
  PV[N-1-16*i] = 0;
  RV[N-1-16*i] = 0;
  VALS[N-16*i-1][0] = i;
}
parfor i = 0 to N-1 {
  RV[i] = 0;
  for z = 0 to NZ-1 {
    RV[i] = RV[i] + VALS[i][z]*XV[COLS[i][z]];
  }
}
parfor i = 0 to N-1 {
  PV[i] = RV[i] + PV[i];
}
|}
