lib/workloads/applu.ml: App
