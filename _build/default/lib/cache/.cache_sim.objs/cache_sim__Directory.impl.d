lib/cache/directory.ml: Hashtbl List Option
