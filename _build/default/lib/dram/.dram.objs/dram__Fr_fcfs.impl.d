lib/dram/fr_fcfs.ml: Array List Timing
