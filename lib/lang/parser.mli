(** Recursive-descent parser for the mini language.

    Grammar (see README for examples):
    {v
    program  ::= item*
    item     ::= "param" IDENT "=" expr ";"
               | ("array"|"index") IDENT ("[" expr "]")+ ";"
               | loop
    loop     ::= ("for"|"parfor") IDENT "=" expr "to" expr body
    body     ::= "{" stmt* "}" | stmt
    stmt     ::= loop | "if" "(" expr relop expr ")" block ("else" block)?
               | ref "=" expr ";"
    ref      ::= IDENT ("[" expr "]")+
    expr     ::= term (("+"|"-") term)*
    term     ::= factor (("*"|"/"|"%") factor)*
    factor   ::= INT | "-" factor | "(" expr ")" | IDENT | ref
    v}

    The [_result] entry points return located diagnostics; [parse] and
    [parse_file] are raising wrappers kept for callers that treat any
    malformed input as fatal. *)

exception Error of Diag.t
(** Syntax or scoping error, raised by {!parse} / {!parse_file}. *)

val parse_program_result :
  ?file:string -> string -> (Ast.program, Diag.t list) result
(** Lex and parse only — no scope check.  The pipeline runs the check as
    its own pass. *)

val parse_result :
  ?file:string -> string -> (Ast.program, Diag.t list) result
(** Parses a full source string and scope-checks it: every referenced
    array must be declared with a matching subscript count.  Lexical and
    syntax errors stop at the first diagnostic; semantic checking
    collects one located diagnostic per offending reference. *)

val parse_file_result : string -> (Ast.program, Diag.t list) result
(** Reads and parses a file; an unreadable file is a [P000] diagnostic. *)

val check_result : Ast.program -> (Ast.program, Diag.t list) result
(** Scope check alone, for programmatically constructed programs. *)

val parse : ?file:string -> string -> Ast.program
(** Raising wrapper over {!parse_result}: raises {!Error} with the first
    diagnostic. *)

val parse_file : string -> Ast.program
(** Reads and parses a file. *)

val check : Ast.program -> Ast.program
(** Raising wrapper over {!check_result}. *)
