lib/workloads/hpccg.ml: App Array
