(* serve — run an open-system multi-tenant consolidation scenario on the
   shared simulator and print per-tenant QoS.

     serve examples/serve/smoke.json
     serve examples/serve/smoke.json --policy interleaved
     serve examples/serve/smoke.json --seed 7 --stats-json out.json
     serve --smoke --attr --progress serve.ndjson *)

open Cmdliner

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let load_scenario path smoke =
  match (path, smoke) with
  | None, false ->
    Error "serve: pass a scenario JSON file (or --smoke for the built-in one)"
  | Some _, true -> Error "serve: --smoke conflicts with a scenario file"
  | None, true -> Ok (Serve.Scenario.smoke ())
  | Some path, false -> (
    match read_file path with
    | exception Sys_error e -> Error ("serve: " ^ e)
    | text -> (
      match Obs.Json.of_string text with
      | Error e -> Error (Printf.sprintf "serve: %s: %s" path e)
      | Ok doc -> (
        match Serve.Scenario.of_json doc with
        | Error e -> Error (Printf.sprintf "serve: %s: %s" path e)
        | Ok sc -> Ok sc)))

let override sc policy seed =
  let sc =
    match policy with
    | None -> Ok sc
    | Some p ->
      Result.map
        (fun policy -> { sc with Serve.Scenario.policy })
        (Serve.Scenario.policy_of_string p)
  in
  Result.map
    (fun sc ->
      match seed with
      | None -> sc
      | Some seed -> { sc with Serve.Scenario.seed })
    sc

let print_tenants fmt (run : Serve.Server.t) =
  Format.fprintf fmt "@[<v>%-3s %-12s %4s %9s %9s %9s %9s %8s %9s %9s@,"
    "id" "app" "slot" "arrival" "start" "finish" "latency" "slowdown"
    "offchip" "fallback";
  List.iter
    (fun (t : Serve.Server.tenant) ->
      Format.fprintf fmt "%-3d %-12s %4d %9d %9d %9d %9d %8.3f %9d %9d@,"
        t.Serve.Server.id t.app t.slot t.arrival t.start t.finish
        (Serve.Server.completion_latency t)
        t.slowdown t.offchip t.fallbacks)
    run.Serve.Server.tenants;
  Format.fprintf fmt "@]"

let run_cmd path smoke policy seed attr progress stats_json domains =
  Cli.guard ~name:"serve" @@ fun () ->
  match Cli.check_domains ~available:Sim.Par_backend.available domains with
  | Error e ->
    Printf.eprintf "serve: %s\n" e;
    Cli.user_error
  | Ok () -> (
  match Result.bind (load_scenario path smoke) (fun sc -> override sc policy seed)
  with
  | Error e ->
    prerr_endline e;
    Cli.user_error
  | Ok sc -> (
    let progress_sink =
      match progress with
      | None -> Ok Obs.Progress.null
      | Some path -> Obs.Progress.file_sink path
    in
    match progress_sink with
    | Error e ->
      prerr_endline ("serve: " ^ e);
      Cli.user_error
    | Ok sink -> (
      let on_plan =
        if domains > 1 then Some (fun s -> Format.printf "engine: %s@." s)
        else None
      in
      let result = Serve.Server.run ~attr ~progress:sink ~domains ?on_plan sc in
      Obs.Progress.close sink;
      match result with
      | Error e ->
        prerr_endline ("serve: " ^ e);
        Cli.user_error
      | Ok run ->
        Format.printf "scenario %s: %d tenants, policy %s, seed %d on %a@."
          sc.Serve.Scenario.name
          (List.length run.Serve.Server.tenants)
          (Serve.Scenario.policy_to_string sc.Serve.Scenario.policy)
          sc.Serve.Scenario.seed Sim.Config.pp run.Serve.Server.cfg;
        Format.printf "%a@." print_tenants run;
        let q = run.Serve.Server.qos in
        Format.printf
          "weighted speedup %.3f | completion latency p50 %d p95 %d p99 %d | \
           fallback allocations %d | avg queue wait %.1f@."
          q.Serve.Server.weighted_speedup q.p50_latency q.p95_latency
          q.p99_latency q.total_fallbacks q.avg_queue_wait;
        (match run.Serve.Server.attr with
        | Some a ->
          Format.printf "off-chip attribution:@.%a@." Obs.Attr.pp_table
            (Obs.Attr.snapshot a)
        | None -> ());
        (match stats_json with
        | None -> Cli.ok
        | Some out -> (
          try
            let oc = open_out out in
            Obs.Json.to_channel oc (Serve.Server.result_json run);
            close_out oc;
            Format.printf "stats written to %s@." out;
            Cli.ok
          with Sys_error e ->
            Printf.eprintf "serve: cannot write output: %s\n" e;
            exit 1)))))

let scenario_arg =
  Arg.(
    value
    & pos 0 (some string) None
    & info [] ~docv:"SCENARIO" ~doc:"Scenario JSON file.")

let smoke_arg =
  Arg.(
    value & flag
    & info [ "smoke" ] ~doc:"Run the built-in golden smoke scenario.")

let policy_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "policy" ] ~docv:"POLICY"
        ~doc:
          "Override the scenario's placement policy (interleaved, \
           first-touch or mc-aware).")

let seed_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "seed" ] ~docv:"N"
        ~doc:
          "Override the scenario's seed (arrival process, app lottery and \
           engine jitter).")

let attr_arg =
  Arg.(
    value & flag
    & info [ "attr" ]
        ~doc:
          "Attribute off-chip accesses to tenants' access sites (arrays \
           prefixed t<id>:<app>/) and print the table.")

let progress_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "progress" ] ~docv:"FILE"
        ~doc:
          "Write tenant lifecycle events (arrive/start/finish, NDJSON) to \
           a progress file.")

let stats_json_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "stats-json" ] ~docv:"FILE"
        ~doc:
          "Write the full result document (engine stats plus scenario, \
           per-tenant and QoS sections) as JSON.")

let cmd =
  let doc = "serve a multi-tenant consolidation scenario" in
  Cmd.v
    (Cmd.info "serve" ~doc)
    Term.(
      const run_cmd $ scenario_arg $ smoke_arg $ policy_arg $ seed_arg
      $ attr_arg $ progress_arg $ stats_json_arg $ Cli.domains)

let () = exit (Cmd.eval' cmd)
