type site = { array : string; write : bool; phase : int; loc : string }

type t = {
  t_sites : site array;
  t_mcs : int;
  t_banks : int;
  t_max_hops : int;
  t_counts : int array;
  t_hops : int array;
  t_queue_counts : int array;
  t_queue_sum : int array;
  t_queue_total : int array;
  mutable t_total : int;
}

type snapshot = {
  sites : site array;
  mcs : int;
  banks : int;
  max_hops : int;
  counts : int array;
  hops : int array;
  queue_counts : int array;
  queue_sum : int array;
  queue_total : int array;
}

let queue_buckets = Metrics.max_log2_buckets

let create ~sites ~mcs ~banks ~max_hops =
  if mcs <= 0 || banks <= 0 || max_hops <= 0 then
    invalid_arg "Attr.create: platform shape must be positive";
  let rows = Array.length sites + 1 in
  {
    t_sites = Array.copy sites;
    t_mcs = mcs;
    t_banks = banks;
    t_max_hops = max_hops;
    t_counts = Array.make (rows * mcs * banks) 0;
    t_hops = Array.make (rows * (max_hops + 1)) 0;
    t_queue_counts = Array.make (rows * queue_buckets) 0;
    t_queue_sum = Array.make rows 0;
    t_queue_total = Array.make rows 0;
    t_total = 0;
  }

let create_like t =
  create ~sites:t.t_sites ~mcs:t.t_mcs ~banks:t.t_banks ~max_hops:t.t_max_hops

(* out-of-range site ids (untagged streams, foreign refs) clamp into the
   trailing unknown row so the cube total stays exhaustive *)
let row t site =
  let n = Array.length t.t_sites in
  if site < 0 || site >= n then n else site

let record t ~site ~mc ~bank ~hops =
  let s = row t site in
  let mc = if mc < 0 || mc >= t.t_mcs then 0 else mc in
  let bank = if bank < 0 || bank >= t.t_banks then 0 else bank in
  let i = (((s * t.t_mcs) + mc) * t.t_banks) + bank in
  t.t_counts.(i) <- t.t_counts.(i) + 1;
  let h = min (max 0 hops) t.t_max_hops in
  let j = (s * (t.t_max_hops + 1)) + h in
  t.t_hops.(j) <- t.t_hops.(j) + 1;
  t.t_total <- t.t_total + 1

let record_queue t ~site ~queue =
  let s = row t site in
  let q = max 0 queue in
  let b = Metrics.bucket_index Metrics.Log2 q in
  let i = (s * queue_buckets) + b in
  t.t_queue_counts.(i) <- t.t_queue_counts.(i) + 1;
  t.t_queue_sum.(s) <- t.t_queue_sum.(s) + q;
  t.t_queue_total.(s) <- t.t_queue_total.(s) + 1

let total t = t.t_total

let snapshot t =
  {
    sites = Array.copy t.t_sites;
    mcs = t.t_mcs;
    banks = t.t_banks;
    max_hops = t.t_max_hops;
    counts = Array.copy t.t_counts;
    hops = Array.copy t.t_hops;
    queue_counts = Array.copy t.t_queue_counts;
    queue_sum = Array.copy t.t_queue_sum;
    queue_total = Array.copy t.t_queue_total;
  }

let site_equal (a : site) (b : site) =
  String.equal a.array b.array
  && a.write = b.write && a.phase = b.phase
  && String.equal a.loc b.loc

let merge a b =
  if
    a.mcs <> b.mcs || a.banks <> b.banks || a.max_hops <> b.max_hops
    || Array.length a.sites <> Array.length b.sites
  then Error "Attr.merge: platform or site-table shapes differ"
  else if not (Array.for_all2 site_equal a.sites b.sites) then
    Error "Attr.merge: site tables differ"
  else
    let add x y = Array.mapi (fun i v -> v + y.(i)) x in
    Ok
      {
        a with
        counts = add a.counts b.counts;
        hops = add a.hops b.hops;
        queue_counts = add a.queue_counts b.queue_counts;
        queue_sum = add a.queue_sum b.queue_sum;
        queue_total = add a.queue_total b.queue_total;
      }

let absorb t (s : snapshot) =
  if
    t.t_mcs <> s.mcs || t.t_banks <> s.banks || t.t_max_hops <> s.max_hops
    || Array.length t.t_sites <> Array.length s.sites
  then Error "Attr.absorb: platform or site-table shapes differ"
  else if not (Array.for_all2 site_equal t.t_sites s.sites) then
    Error "Attr.absorb: site tables differ"
  else begin
    let add dst src = Array.iteri (fun i v -> dst.(i) <- dst.(i) + v) src in
    add t.t_counts s.counts;
    add t.t_hops s.hops;
    add t.t_queue_counts s.queue_counts;
    add t.t_queue_sum s.queue_sum;
    add t.t_queue_total s.queue_total;
    t.t_total <- t.t_total + Array.fold_left ( + ) 0 s.counts;
    Ok ()
  end

(* ---- snapshot readers ---- *)

let snap_total s = Array.fold_left ( + ) 0 s.counts

let site_count s i =
  let stride = s.mcs * s.banks in
  let base = i * stride in
  let acc = ref 0 in
  for k = base to base + stride - 1 do
    acc := !acc + s.counts.(k)
  done;
  !acc

let cell s ~site ~mc ~bank = s.counts.((((site * s.mcs) + mc) * s.banks) + bank)

let site_mc_count s ~site ~mc =
  let acc = ref 0 in
  for b = 0 to s.banks - 1 do
    acc := !acc + cell s ~site ~mc ~bank:b
  done;
  !acc

let bank_load s =
  let rows = Array.length s.sites + 1 in
  Array.init s.mcs (fun m ->
      Array.init s.banks (fun b ->
          let acc = ref 0 in
          for i = 0 to rows - 1 do
            acc := !acc + cell s ~site:i ~mc:m ~bank:b
          done;
          !acc))

(* ---- JSON ---- *)

let site_to_json (s : site) =
  Json.obj
    [
      ("array", Json.String s.array);
      ("write", Json.Bool s.write);
      ("phase", Json.Int s.phase);
      ("loc", Json.String s.loc);
    ]

let to_json s =
  Json.obj
    [
      ("sites", Json.array site_to_json s.sites);
      ("mcs", Json.Int s.mcs);
      ("banks", Json.Int s.banks);
      ("max_hops", Json.Int s.max_hops);
      ("total", Json.Int (snap_total s));
      ("counts", Json.int_array s.counts);
      ("hops", Json.int_array s.hops);
      ("queue_counts", Json.int_array s.queue_counts);
      ("queue_sum", Json.int_array s.queue_sum);
      ("queue_total", Json.int_array s.queue_total);
    ]

let ( let* ) = Result.bind

let field ctx name j =
  match Json.member name j with
  | Some v -> Ok v
  | None -> Error ("Attr.of_json: " ^ ctx ^ " lacks " ^ name)

let as_int ctx = function
  | Json.Int i -> Ok i
  | _ -> Error ("Attr.of_json: " ^ ctx ^ " is not an integer")

let int_field ctx name j = Result.bind (field ctx name j) (as_int name)

let int_array_field ctx name j =
  let* v = field ctx name j in
  match v with
  | Json.List l ->
    let a = Array.make (List.length l) 0 in
    let rec fill i = function
      | [] -> Ok a
      | Json.Int v :: tl ->
        a.(i) <- v;
        fill (i + 1) tl
      | _ -> Error ("Attr.of_json: " ^ name ^ " holds a non-integer")
    in
    fill 0 l
  | _ -> Error ("Attr.of_json: " ^ ctx ^ "." ^ name ^ " is not a list")

let site_of_json j =
  let* array =
    match Json.member "array" j with
    | Some (Json.String s) -> Ok s
    | _ -> Error "Attr.of_json: site lacks array"
  in
  let* write =
    match Json.member "write" j with
    | Some (Json.Bool b) -> Ok b
    | _ -> Error "Attr.of_json: site lacks write"
  in
  let* phase = int_field "site" "phase" j in
  let* loc =
    match Json.member "loc" j with
    | Some (Json.String s) -> Ok s
    | _ -> Error "Attr.of_json: site lacks loc"
  in
  Ok { array; write; phase; loc }

let of_json j =
  let* sites =
    let* v = field "attribution" "sites" j in
    match v with
    | Json.List l ->
      let* sl =
        List.fold_left
          (fun acc sj ->
            let* acc = acc in
            let* s = site_of_json sj in
            Ok (s :: acc))
          (Ok []) l
      in
      Ok (Array.of_list (List.rev sl))
    | _ -> Error "Attr.of_json: sites is not a list"
  in
  let* mcs = int_field "attribution" "mcs" j in
  let* banks = int_field "attribution" "banks" j in
  let* max_hops = int_field "attribution" "max_hops" j in
  let* counts = int_array_field "attribution" "counts" j in
  let* hops = int_array_field "attribution" "hops" j in
  let* queue_counts = int_array_field "attribution" "queue_counts" j in
  let* queue_sum = int_array_field "attribution" "queue_sum" j in
  let* queue_total = int_array_field "attribution" "queue_total" j in
  let rows = Array.length sites + 1 in
  if
    mcs <= 0 || banks <= 0 || max_hops <= 0
    || Array.length counts <> rows * mcs * banks
    || Array.length hops <> rows * (max_hops + 1)
    || Array.length queue_counts <> rows * queue_buckets
    || Array.length queue_sum <> rows
    || Array.length queue_total <> rows
  then Error "Attr.of_json: inconsistent shape"
  else
    Ok
      {
        sites;
        mcs;
        banks;
        max_hops;
        counts;
        hops;
        queue_counts;
        queue_sum;
        queue_total;
      }

(* ---- attribution table ---- *)

let avg_hops s i =
  let base = i * (s.max_hops + 1) in
  let n = ref 0 and sum = ref 0 in
  for h = 0 to s.max_hops do
    let c = s.hops.(base + h) in
    n := !n + c;
    sum := !sum + (h * c)
  done;
  if !n = 0 then 0. else float_of_int !sum /. float_of_int !n

let avg_queue s i =
  if s.queue_total.(i) = 0 then 0.
  else float_of_int s.queue_sum.(i) /. float_of_int s.queue_total.(i)

let pp_table ppf s =
  let nsites = Array.length s.sites in
  Format.fprintf ppf "@[<v>";
  let pp_row name rw array phase loc i =
    Format.fprintf ppf "%-4s %s %-8s %-5s %-20s %8d  hops %5.2f  queue %7.2f "
      name rw array phase loc (site_count s i) (avg_hops s i) (avg_queue s i);
    for m = 0 to s.mcs - 1 do
      Format.fprintf ppf " mc%d=%d" m (site_mc_count s ~site:i ~mc:m)
    done;
    Format.fprintf ppf "@,"
  in
  Format.fprintf ppf "%-4s %s %-8s %-5s %-20s %8s@," "site" "rw" "array"
    "phase" "loc" "count";
  Array.iteri
    (fun i (site : site) ->
      pp_row
        (Printf.sprintf "s%d" i)
        (if site.write then "W" else "R")
        site.array
        (string_of_int site.phase)
        site.loc i)
    s.sites;
  if site_count s nsites > 0 then pp_row "?" "-" "-" "-" "(unattributed)" nsites;
  Format.fprintf ppf "total %d@]" (snap_total s)
