(** Unix-fork process pool with per-job timeouts and bounded retry.

    [run ~jobs f] shards job indices [0 .. jobs-1] across [workers]
    forked children over a pipe-based queue: each worker loops reading a
    job index, evaluates [f] {e in the child process}, and streams the
    payload back.  The parent multiplexes replies with [select], enforces
    a wall-clock budget per job (SIGKILL + respawn on overrun), and
    retries crashed or failed jobs with exponential backoff up to
    [retries] extra attempts; a job that exhausts its budget is reported
    as {!Failed} instead of aborting the pool.

    [workers <= 0] degrades to in-process sequential execution (no
    isolation, no timeouts — the reference mode the property tests
    compare against).

    [f] returning [Error _] (or raising) counts as a failed attempt just
    like a crash; only [Ok payload] completes a job. *)

type outcome =
  | Completed of { attempts : int; payload : string }
      (** the payload [f] returned in the worker *)
  | Failed of { attempts : int; reason : string }

type event =
  | Started of { job : int; attempt : int }
      (** the job was handed to a worker (attempt numbers start at 1) *)
  | Retrying of { job : int; attempt : int; reason : string }
      (** attempt [attempt] failed and the job is queued for another try
          (retry exhaustion surfaces through [on_outcome] instead) *)

val run :
  ?workers:int ->
  ?timeout_s:float ->
  ?retries:int ->
  ?backoff_s:float ->
  ?on_outcome:(int -> outcome -> unit) ->
  ?on_event:(event -> unit) ->
  jobs:int ->
  (int -> (string, string) result) ->
  outcome array
(** Defaults: 4 workers, 300 s timeout, 2 retries, 0.5 s base backoff
    (doubling per attempt).  [on_outcome] fires in completion order as
    jobs resolve; [on_event] additionally reports assignments and retry
    scheduling as they happen (both run in the parent, so they may do
    IO).  The returned array is indexed by job. *)
