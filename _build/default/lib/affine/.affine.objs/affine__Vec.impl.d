lib/affine/vec.ml: Array Format
