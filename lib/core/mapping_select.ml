type metrics = {
  avg_distance : float;
  avg_chiplet_hops : float;
  mcs_per_cluster : int;
}

let evaluate topo (c : Cluster.t) placement =
  let cores = Cluster.num_cores c in
  let total = ref 0 and cross = ref 0 and count = ref 0 in
  for t = 0 to cores - 1 do
    let node = Cluster.node_of_thread c topo t in
    let cluster = Cluster.cluster_of_node c topo node in
    List.iter
      (fun m ->
        let mc = Noc.Placement.mc_node placement m in
        total := !total + Noc.Topology.distance topo node mc;
        cross := !cross + Noc.Topology.chiplet_hops topo node mc;
        incr count)
      (Cluster.mcs_of_cluster c cluster)
  done;
  {
    avg_distance = float_of_int !total /. float_of_int !count;
    avg_chiplet_hops = float_of_int !cross /. float_of_int !count;
    mcs_per_cluster = c.k;
  }

(* Cost model constants: per-hop latency from the NoC config, the
   calibrated marginal queue cost per unit of bank-queue pressure, and the
   per-controller transfer cost.

   The queue term divides the profiled pressure across every controller a
   request can be served by ([num_mcs · k] queue positions); at the
   4-controller baseline it reduces to the historical [6 · p / k].  The
   transfer term prices activating more controllers: the package's
   channel/pin budget is fixed, so a mapping that spreads the same budget
   over N controllers leaves each with [1/N] of the transfer bandwidth —
   without it, the Fig. 27 8/16-MC configurations would dominate on
   distance alone and the calibrated pressure could never change the
   choice.  Both weights are calibrated so that, among the 4-MC mappings,
   the M1/M2 crossover sits between the moderate-pressure stencils and the
   two bank-hammering applications (fma3d, minighost) — the choice the
   paper reports its analysis makes. *)
let per_hop = 4.

let queue_weight = 24.0

let xfer_per_mc = 3.0

let estimated_cost topo c placement ~bank_pressure =
  let m = evaluate topo c placement in
  let mcs = Cluster.num_mcs c in
  (* every hop is priced at the on-die latency; a hop that crosses a
     chiplet boundary additionally pays the link class's extra latency.
     The term is exactly zero on a flat mesh, so flat costs (and the
     selection notes pinned by dev-check) are unchanged. *)
  let cross_extra =
    match topo.Noc.Topology.chiplets with
    | None -> 0.
    | Some g -> float_of_int g.Noc.Topology.link_latency -. per_hop
  in
  let network =
    2. *. ((m.avg_distance *. per_hop) +. (m.avg_chiplet_hops *. cross_extra))
  in
  (* queue wait grows with pressure; every controller splits the load *)
  let queue =
    bank_pressure *. queue_weight /. float_of_int (mcs * m.mcs_per_cluster)
  in
  let transfer = xfer_per_mc *. float_of_int mcs in
  network +. queue +. transfer

type scored = {
  cluster : Cluster.t;
  placement : Noc.Placement.t;
  cost : float;
}

let score topo ~candidates ~bank_pressure =
  let scored =
    List.map
      (fun (c, p) ->
        { cluster = c; placement = p;
          cost = estimated_cost topo c p ~bank_pressure })
      candidates
  in
  (* deterministic order: cost, then cluster name — selection must not
     depend on how the caller happened to order the candidate list *)
  List.stable_sort
    (fun a b ->
      match compare a.cost b.cost with
      | 0 -> compare a.cluster.Cluster.name b.cluster.Cluster.name
      | c -> c)
    scored

let choose_opt topo ~candidates ~bank_pressure =
  match score topo ~candidates ~bank_pressure with
  | [] -> None
  | best :: _ -> Some (best.cluster, best.placement)

(* --- bank-pressure calibration ----------------------------------------- *)

let queue_cycles_name = "mem.queue_cycles"

let finish_time_name = "sim.finish_time"

let bank_pressure_of_snapshot (s : Obs.Metrics.snapshot) =
  match
    ( List.assoc_opt queue_cycles_name s.Obs.Metrics.counters,
      List.assoc_opt finish_time_name s.Obs.Metrics.gauges )
  with
  | None, _ -> Error ("stats have no counter " ^ queue_cycles_name)
  | _, None -> Error ("stats have no gauge " ^ finish_time_name)
  | Some _, Some finish when finish <= 0. ->
    Error "stats report a non-positive finish time"
  | Some queued, Some finish -> Ok (float_of_int queued /. finish)

let bank_pressure_of_stats j =
  (* accept either a full stats file (simulate --stats-json / sweep results:
     the snapshot lives at .stats.metrics) or a bare metrics snapshot *)
  let metrics =
    match Obs.Json.member "stats" j with
    | Some stats -> (
      match Obs.Json.member "metrics" stats with Some m -> m | None -> stats)
    | None -> (
      match Obs.Json.member "metrics" j with Some m -> m | None -> j)
  in
  match Obs.Metrics.snapshot_of_json metrics with
  | Error e -> Error ("not a stats file or metrics snapshot: " ^ e)
  | Ok s -> bank_pressure_of_snapshot s
