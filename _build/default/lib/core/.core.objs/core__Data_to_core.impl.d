lib/core/data_to_core.ml: Affine List
