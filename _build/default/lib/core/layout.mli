(** Transformed data layouts.

    A layout describes where each element of one array lives after the
    pass: first the unimodular transformation [a' = U·a] (Data-to-Core
    mapping), then the strip-mining/permutation customization that turns
    [a'] into the final multi-dimensional index vector, laid out row-major
    (Section 5.3).  Output dimensions are expressions over the components
    of [a'] built from integer division and modulo — exactly the
    subscripts of the transformed source code (Fig. 9c).

    For the shared-L2 case a layout additionally carries the δ-skip table:
    an order-preserving forward shift of [p]-element blocks that moves
    data off controllers that are not adjacent to the desired one
    (Section 5.3, "shared L2 case"). *)

type dim_expr =
  | D of int  (** component [i] of [a' = U·a] *)
  | Div of dim_expr * int
  | Mod of dim_expr * int
  | Perm of dim_expr * int array
      (** table lookup: remaps a bounded index through a permutation.
          Used by the shared-L2 customization to send each data block to
          a home bank near its owning core whose controller is acceptable
          - the bounded-drift equivalent of the paper's running delta skip
          (see DESIGN.md).  In generated code this appears as a small
          compiler-emitted index array. *)

type out_dim = { expr : dim_expr; extent : int }

type t = {
  array : string;
  u : Affine.Matrix.t;
  a_shift : Affine.Vec.t;
      (** constant added after [U]: [a' = U·a + a_shift], normalizing
          every component to start at 0 when [U] is not a permutation *)
  out : out_dim array;  (** output dimensions, slowest-varying first *)
  orig_extents : int array;
  elem_bytes : int;
  p_elems : int;  (** interleaving unit in elements *)
}

val identity : array:string -> extents:int array -> elem_bytes:int -> t
(** The untransformed row-major layout. *)

val is_identity : t -> bool

val make :
  array:string ->
  u:Affine.Matrix.t ->
  ?a_shift:Affine.Vec.t ->
  out:out_dim array ->
  orig_extents:int array ->
  elem_bytes:int ->
  p_elems:int ->
  unit ->
  t

val simplify : t -> t
(** Removes degenerate output dimensions (extent 1) and rewrites
    [e/1 -> e]: cosmetic, the linearized offsets are unchanged. *)

val size_elems : t -> int
(** Padded size in elements (product of output extents, plus δ-skip
    growth). *)

val size_bytes : t -> int

val eval_dim : dim_expr -> Affine.Vec.t -> int

val offset_of_index : t -> Affine.Vec.t -> int
(** Element offset (within the array allocation) of an {e original} data
    vector.  Injective on the original data space. *)

val pp_dim_expr : names:string list -> Format.formatter -> dim_expr -> unit
(** Prints with [D i] rendered as the [i]-th of [names]. *)

val transformed_subscripts : t -> Lang.Ast.expr list -> Lang.Ast.expr list
(** Rewrites the subscript expressions of a reference: given the original
    subscripts [s], produces the transformed subscripts (one per output
    dimension) over [U·s] — this is what turns Fig. 9b into Fig. 9c. *)

val pp : Format.formatter -> t -> unit
