(** Trace-generating interpreter.

    Runs a mini-language program with OpenMP-style static scheduling:
    the iterations of each [parfor] are split into contiguous chunks, one
    per thread, threads bound to cores in order (paper, footnote 5).  The
    interpreter does not compute array values — it enumerates the memory
    accesses each thread performs and encodes each as a virtual address,
    using a caller-supplied address function (which is where the layout
    transformation plugs in).

    A top-level nest is a {e phase}; phases are separated by barriers
    (OpenMP join), which the downstream engine honours. *)

type access = int
(** [(vaddr lsl 1) lor w] with [w = 1] for writes. *)

val addr_of_access : access -> int

val is_write : access -> bool

type phase = access array array
(** [phase.(t)] is thread [t]'s access stream for one top-level nest, in
    program order. *)

val trace :
  threads:int ->
  ?threads_per_core:int ->
  addr_of:(string -> Affine.Vec.t -> int) ->
  ?index_lookup:(string -> Affine.Vec.t -> int) ->
  Ast.program ->
  phase list
(** [trace ~threads ~addr_of p] runs [p] with [threads] threads.
    [addr_of array index_vector] must give the virtual address of an array
    element (layout-dependent).  [index_lookup] supplies the {e values} of
    index arrays (default: 0), used to resolve indexed subscripts; reads
    of index arrays still appear in the trace via [addr_of].

    [threads_per_core] (default 1) only affects how a [parfor] is split:
    with [t] threads per core, threads [c·t .. c·t+t-1] share core [c] and
    split that core's chunk among themselves, so the Data-to-Core mapping
    is the same as with one thread per core (the paper's Fig. 24 setup).

    Loops whose bounds are not constant at entry (they may depend on outer
    iterators) are evaluated dynamically.  Statements outside any [parfor]
    run on thread 0. *)

val trace_tagged :
  threads:int ->
  ?threads_per_core:int ->
  addr_of:(string -> Affine.Vec.t -> int) ->
  ?index_lookup:(string -> Affine.Vec.t -> int) ->
  site_of:(Ast.ref_ -> int) ->
  Ast.program ->
  (phase * int array array) list
(** Like {!trace}, but each phase additionally carries a {e site stream}
    per thread, index-parallel to the access stream: element [i] is
    [site_of r] for the reference that emitted access [i] (typically
    {!Sites.id_of_ref}).  Site ids travel in this side band — not in the
    access encoding — because the verifier's synthetic replay addresses
    own the access int's high bits. *)
