lib/workloads/art.mli: App
