(** ammp (SPEC OMP): molecular dynamics — short-range force accumulation
    over neighboring particles, modeled with a 1-D window (this also
    exercises the one-dimensional layout-customization path).  The
    reversed initialization models allocation order differing from
    compute order, defeating first-touch. *)

let app =
  App.make ~name:"ammp"
    ~description:"molecular dynamics: windowed force accumulation (1-D)"
    {|
param N = 131072;
array AX[N];
array AF[N];
array AV[N];
// reversed-order init: first touch lands on the wrong cluster
parfor i = 0 to N/16-1 {
  AX[N-1-16*i] = i;
  AF[N-1-16*i] = 0;
  AV[N-1-16*i] = 0;
}
parfor i = 2 to N-3 {
  AF[i] = AF[i] + AX[i-2] + AX[i-1] + AX[i] + AX[i+1] + AX[i+2];
}
parfor i = 0 to N-1 {
  AV[i] = AV[i] + AF[i] + AX[i];
}
|}
