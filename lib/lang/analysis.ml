module Vec = Affine.Vec
module Matrix = Affine.Matrix
module Access = Affine.Access

type kind = Affine_ref of Affine.Access.t | Indexed_ref

type occurrence = {
  array : string;
  kind : kind;
  iters : string list;
  par_dim : int option;
  trip_count : int;
  is_write : bool;
  nest_id : int;
}

type array_info = {
  decl : Ast.decl;
  extents : int array;
  occurrences : occurrence list;
}

type t = {
  program : Ast.program;
  params : (string * int) list;
  arrays : array_info list;
}

exception Unsupported of string

let rec const_expr env = function
  | Ast.Int n -> Some n
  | Ast.Var x -> List.assoc_opt x env
  | Ast.Neg a -> Option.map (fun v -> -v) (const_expr env a)
  | Ast.Add (a, b) -> combine env a b ( + )
  | Ast.Sub (a, b) -> combine env a b ( - )
  | Ast.Mul (a, b) -> combine env a b ( * )
  | Ast.Div (a, b) -> combine env a b ( / )
  | Ast.Mod (a, b) -> combine env a b (fun x y -> x mod y)
  | Ast.Load _ -> None

and combine env a b op =
  match (const_expr env a, const_expr env b) with
  | Some x, Some y -> Some (op x y)
  | _ -> None

let affine_of_expr ~params ~iters e =
  let m = List.length iters in
  let pos x =
    let rec go i = function
      | [] -> None
      | y :: r -> if String.equal x y then Some i else go (i + 1) r
    in
    go 0 iters
  in
  let rec go = function
    | Ast.Int n -> Some (Vec.zero m, n)
    | Ast.Var x -> (
      match pos x with
      | Some i -> Some (Vec.unit m i, 0)
      | None -> (
        match List.assoc_opt x params with
        | Some v -> Some (Vec.zero m, v)
        | None -> None))
    | Ast.Neg a ->
      Option.map (fun (c, k) -> (Vec.neg c, -k)) (go a)
    | Ast.Add (a, b) -> (
      match (go a, go b) with
      | Some (ca, ka), Some (cb, kb) -> Some (Vec.add ca cb, ka + kb)
      | _ -> None)
    | Ast.Sub (a, b) -> (
      match (go a, go b) with
      | Some (ca, ka), Some (cb, kb) -> Some (Vec.sub ca cb, ka - kb)
      | _ -> None)
    | Ast.Mul (a, b) -> (
      match (go a, go b) with
      | Some (ca, ka), Some (cb, kb) ->
        (* affine × affine is affine only if one side is constant *)
        if Vec.is_zero ca then Some (Vec.scale ka cb, ka * kb)
        else if Vec.is_zero cb then Some (Vec.scale kb ca, ka * kb)
        else None
      | _ -> None)
    | Ast.Div (a, b) -> (
      (* only constant/constant stays affine *)
      match (go a, go b) with
      | Some (ca, ka), Some (cb, kb)
        when Vec.is_zero ca && Vec.is_zero cb && kb <> 0 ->
        Some (Vec.zero m, ka / kb)
      | _ -> None)
    | Ast.Mod (a, b) -> (
      match (go a, go b) with
      | Some (ca, ka), Some (cb, kb)
        when Vec.is_zero ca && Vec.is_zero cb && kb <> 0 ->
        Some (Vec.zero m, ka mod kb)
      | _ -> None)
    | Ast.Load _ -> None
  in
  go e

(* Estimated trip count of a loop whose bounds may mention outer iterators:
   outer iterators are bound to the midpoint of their own ranges. *)
let loop_trip env (l : Ast.loop) =
  match (const_expr env l.lo, const_expr env l.hi) with
  | Some lo, Some hi -> max 0 (hi - lo + 1)
  | _ -> 1

let analyze (p : Ast.program) =
  let params = p.params in
  let occs : (string, occurrence list ref) Hashtbl.t = Hashtbl.create 16 in
  List.iter (fun (d : Ast.decl) -> Hashtbl.replace occs d.name (ref [])) p.decls;
  let record occ =
    match Hashtbl.find_opt occs occ.array with
    | Some r -> r := occ :: !r
    | None -> () (* parser guarantees declaredness *)
  in
  let classify_ref ~iters (r : Ast.ref_) =
    let subs =
      List.map (fun s -> affine_of_expr ~params ~iters s) r.subs
    in
    if List.for_all Option.is_some subs then begin
      let rows = List.map (fun s -> fst (Option.get s)) subs in
      let offs = List.map (fun s -> snd (Option.get s)) subs in
      Affine_ref (Access.make (Matrix.of_rows rows) (Vec.of_list offs))
    end
    else Indexed_ref
  in
  (* Walk a nest, tracking: iterator names (outermost first), the position
     of the innermost parallel loop, the environment of midpoint bindings
     for trip estimation, and the cumulative trip count. *)
  let rec walk_stmt nest_id iters par_dim env trip stmt =
    match stmt with
    | Ast.If c ->
      (* conservative: both branches assumed taken (Section 4); references
         in the condition itself are reads too *)
      let record_cond_refs e =
        let rec go = function
          | Ast.Int _ | Ast.Var _ -> ()
          | Ast.Neg a -> go a
          | Ast.Add (a, b) | Ast.Sub (a, b) | Ast.Mul (a, b)
          | Ast.Div (a, b) | Ast.Mod (a, b) ->
            go a;
            go b
          | Ast.Load r ->
            record
              {
                array = r.Ast.array;
                kind = classify_ref ~iters r;
                iters;
                par_dim;
                trip_count = trip;
                is_write = false;
                nest_id;
              };
            List.iter go r.Ast.subs
        in
        go e
      in
      record_cond_refs c.Ast.lhs;
      record_cond_refs c.Ast.rhs;
      List.iter (walk_stmt nest_id iters par_dim env trip) c.Ast.then_;
      List.iter (walk_stmt nest_id iters par_dim env trip) c.Ast.else_
    | Ast.Loop l ->
      let t = loop_trip env l in
      let mid =
        match (const_expr env l.lo, const_expr env l.hi) with
        | Some lo, Some hi -> (lo + hi) / 2
        | _ -> 0
      in
      let iters' = iters @ [ l.index ] in
      let par_dim' = if l.parallel then Some (List.length iters) else par_dim in
      let env' = (l.index, mid) :: env in
      List.iter (walk_stmt nest_id iters' par_dim' env' (trip * t)) l.body
    | Ast.Assign (lhs, rhs) ->
      let rec emit_ref is_write (r : Ast.ref_) =
        record
          {
            array = r.array;
            kind = classify_ref ~iters r;
            iters;
            par_dim;
            trip_count = trip;
            is_write;
            nest_id;
          };
        (* subscripts through index arrays are themselves reads *)
        List.iter (collect_expr ~iters) r.subs
      and collect_expr ~iters e =
        let rec go = function
          | Ast.Int _ | Ast.Var _ -> ()
          | Ast.Neg a -> go a
          | Ast.Add (a, b) | Ast.Sub (a, b) | Ast.Mul (a, b)
          | Ast.Div (a, b) | Ast.Mod (a, b) ->
            go a;
            go b
          | Ast.Load r ->
            record
              {
                array = r.array;
                kind = classify_ref ~iters r;
                iters;
                par_dim;
                trip_count = trip;
                is_write = false;
                nest_id;
              };
            List.iter go r.subs
        in
        go e
      in
      emit_ref true lhs;
      collect_expr ~iters rhs
  in
  List.iteri (fun i nest -> walk_stmt i [] None params 1 nest) p.nests;
  let arrays =
    List.map
      (fun (d : Ast.decl) ->
        let extents =
          List.map
            (fun e ->
              match const_expr params e with
              | Some v -> v
              | None -> raise (Unsupported ("non-constant extent for " ^ d.name)))
            d.extents
        in
        let os = match Hashtbl.find_opt occs d.name with
          | Some r -> List.rev !r
          | None -> []
        in
        { decl = d; extents = Array.of_list extents; occurrences = os })
      p.decls
  in
  { program = p; params; arrays }

(* Pre-checks the one Unsupported condition with a located diagnostic per
   offending declaration, then runs the (infallible) analysis. *)
let analyze_result (p : Ast.program) =
  let bad =
    List.filter_map
      (fun (d : Ast.decl) ->
        if List.exists (fun e -> const_expr p.params e = None) d.extents then
          Some
            (Diag.error ~code:"S006" d.decl_span
               ("non-constant extent for " ^ d.name))
        else None)
      p.decls
  in
  if bad <> [] then Error bad
  else
    match analyze p with
    | t -> Ok t
    | exception Unsupported msg ->
      Error [ Diag.error ~code:"S006" Span.dummy msg ]

let array_info t name =
  List.find (fun a -> String.equal a.decl.name name) t.arrays
