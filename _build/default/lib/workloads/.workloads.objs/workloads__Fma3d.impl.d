lib/workloads/fma3d.ml: App
