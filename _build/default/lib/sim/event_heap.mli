(** Binary min-heap of timestamped events.

    Ties are broken by insertion order, which keeps runs deterministic. *)

type 'a t

val create : unit -> 'a t

val push : 'a t -> time:int -> 'a -> unit

val pop : 'a t -> (int * 'a) option
(** The earliest event, or [None] when empty. *)

val is_empty : 'a t -> bool

val size : 'a t -> int
