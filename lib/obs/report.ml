type item =
  | Text of string
  | Pre of string
  | Table of { header : string list; rows : string list list }

type section = { title : string; items : item list }

let shades = [| ' '; '.'; ':'; '-'; '='; '+'; '*'; '#' |]

let bank_heat load =
  let vmax =
    Array.fold_left
      (fun acc row -> Array.fold_left max acc row)
      0 load
  in
  let buf = Buffer.create 256 in
  Buffer.add_string buf
    (Printf.sprintf
       "  bank pressure, peak %d accesses/bank (shades relative to peak)\n"
       vmax);
  Array.iteri
    (fun m row ->
      let cells =
        String.init (Array.length row) (fun b ->
            if vmax = 0 then shades.(0)
            else shades.(row.(b) * (Array.length shades - 1) / vmax))
      in
      Buffer.add_string buf
        (Printf.sprintf "  mc%-2d |%s| %d\n" m cells
           (Array.fold_left ( + ) 0 row)))
    load;
  Buffer.contents buf

(* ---- stats-JSON access helpers ---- *)

let num_str = function
  | Json.Int n -> string_of_int n
  | Json.Float f -> Printf.sprintf "%.4g" f
  | v -> Json.to_string ~minify:true v

let find_sub s sub =
  let n = String.length s and m = String.length sub in
  let rec go i =
    if i + m > n then None
    else if String.sub s i m = sub then Some i
    else go (i + 1)
  in
  go 0

(* The C002 note's "(estimated cost: M1=12.3, M2=45.6)" tail, as rows. *)
let cost_rows msg =
  match find_sub msg "estimated cost: " with
  | None -> []
  | Some i ->
    let start = i + String.length "estimated cost: " in
    let stop =
      match String.index_from_opt msg start ')' with
      | Some j -> j
      | None -> String.length msg
    in
    String.sub msg start (stop - start)
    |> String.split_on_char ','
    |> List.filter_map (fun entry ->
           match String.split_on_char '=' (String.trim entry) with
           | [ name; cost ] -> Some [ name; cost ]
           | _ -> None)

(* Platform header: the machine the document came from — mesh geometry,
   hierarchy, mapping and placement, plus a short geometry digest so two
   reports can be compared at a glance.  Reads the embedded "config"
   object; documents without one (or without mesh dims) get no header. *)
let platform_section doc =
  match Json.member "config" doc with
  | Some (Json.Obj _ as cfg) -> (
    let int_of name =
      match Json.member name cfg with Some (Json.Int n) -> Some n | _ -> None
    in
    let str_of name =
      match Json.member name cfg with
      | Some (Json.String s) -> Some s
      | _ -> None
    in
    match (int_of "mesh_width", int_of "mesh_height") with
    | Some w, Some h ->
      let hier = Json.member "hierarchy" cfg in
      let hier_int j name =
        match Json.member name j with Some (Json.Int n) -> n | _ -> 0
      in
      let hier_text =
        match hier with
        | Some hj ->
          Printf.sprintf "%dx%d chiplets, inter-chiplet links %d cycles / %d B"
            (hier_int hj "chiplets_x") (hier_int hj "chiplets_y")
            (hier_int hj "link_latency") (hier_int hj "link_bytes")
        | None -> "flat (single die)"
      in
      let cluster = Option.value ~default:"?" (str_of "cluster") in
      let placement = Option.value ~default:"?" (str_of "placement") in
      let mcs = Option.value ~default:0 (int_of "num_mcs") in
      (* djb2 over the geometry fields, in the spirit of the placement
         search's site digest *)
      let dg = ref 5381 in
      let addi v = dg := ((!dg * 33) + v) land 0xFFFFFF in
      let adds s = String.iter (fun c -> addi (Char.code c)) s in
      addi w;
      addi h;
      addi mcs;
      adds cluster;
      adds placement;
      (match hier with
      | Some hj ->
        List.iter
          (fun n -> addi (hier_int hj n))
          [ "chiplets_x"; "chiplets_y"; "link_latency"; "link_bytes" ]
      | None -> ());
      [
        {
          title = "Platform";
          items =
            [
              Text
                (Printf.sprintf
                   "Machine: %dx%d mesh, mapping %s, placement %s, %d MCs" w h
                   cluster placement mcs);
              Text (Printf.sprintf "Hierarchy: %s" hier_text);
              Text (Printf.sprintf "Geometry digest: %06x" !dg);
            ];
        };
      ]
    | _ -> [])
  | _ -> []

let run_section doc =
  let items = ref [] in
  let add i = items := i :: !items in
  (match Json.member "app" doc with
  | Some (Json.String a) -> add (Text (Printf.sprintf "Application: %s" a))
  | _ -> ());
  (match Json.member "measured_time" doc with
  | Some v -> add (Text (Printf.sprintf "Measured time: %s cycles" (num_str v)))
  | None -> ());
  (match Option.bind (Json.member "stats" doc) (Json.member "metrics") with
  | Some m -> (
    match Metrics.snapshot_of_json m with
    | Ok snap ->
      add
        (Table
           {
             header = [ "counter"; "value" ];
             rows =
               List.map
                 (fun (n, v) -> [ n; string_of_int v ])
                 snap.Metrics.counters;
           });
      if snap.Metrics.gauges <> [] then
        add
          (Table
             {
               header = [ "gauge"; "value" ];
               rows =
                 List.map
                   (fun (n, v) -> [ n; Printf.sprintf "%.4g" v ])
                   snap.Metrics.gauges;
             })
    | Error e -> add (Text ("metrics not decodable: " ^ e)))
  | None -> ());
  (match Option.bind (Json.member "stats" doc) (Json.member "derived") with
  | Some (Json.Obj kvs) ->
    add
      (Table
         {
           header = [ "derived"; "value" ];
           rows = List.map (fun (n, v) -> [ n; num_str v ]) kvs;
         })
  | _ -> ());
  { title = "Run"; items = List.rev !items }

let offchip_counter doc =
  match Option.bind (Json.member "stats" doc) (Json.member "metrics") with
  | Some m -> (
    match Metrics.snapshot_of_json m with
    | Ok snap -> List.assoc_opt "sim.offchip_accesses" snap.Metrics.counters
    | Error _ -> None)
  | None -> None

(* Consolidation-server documents carry "tenants" and "qos" sections;
   render the per-tenant QoS table and certify that the per-tenant
   off-chip split covers the engine's counter exactly. *)
let tenants_section doc =
  match Json.member "tenants" doc with
  | Some (Json.List (_ :: _ as tenants)) ->
    let str name t =
      match Json.member name t with
      | Some (Json.String s) -> s
      | Some v -> num_str v
      | None -> "-"
    in
    let int_of name t =
      match Json.member name t with Some (Json.Int n) -> n | _ -> 0
    in
    let rows =
      List.map
        (fun t ->
          [
            str "id" t;
            str "app" t;
            str "slot" t;
            str "arrival" t;
            str "queue_wait" t;
            str "completion_latency" t;
            str "slowdown" t;
            str "offchip_accesses" t;
            str "fallback_allocations" t;
          ])
        tenants
    in
    let total = List.fold_left (fun acc t -> acc + int_of "offchip_accesses" t) 0 tenants in
    let agree =
      match offchip_counter doc with
      | Some n when n = total ->
        Printf.sprintf
          "Per-tenant off-chip totals sum to %d — exactly the engine's \
           sim.offchip_accesses counter."
          total
      | Some n ->
        Printf.sprintf
          "Per-tenant off-chip totals sum to %d, but the engine counted %d \
           — the per-tenant split lost or double-counted accesses."
          total n
      | None -> Printf.sprintf "Per-tenant off-chip totals sum to %d." total
    in
    let qos_items =
      match Json.member "qos" doc with
      | Some (Json.Obj kvs) ->
        [
          Text
            (String.concat " | "
               (List.map (fun (n, v) -> Printf.sprintf "%s %s" n (num_str v)) kvs));
        ]
      | _ -> []
    in
    [
      {
        title = "Tenants";
        items =
          (Table
             {
               header =
                 [
                   "id";
                   "app";
                   "slot";
                   "arrival";
                   "queue wait";
                   "latency";
                   "slowdown";
                   "off-chip";
                   "fallbacks";
                 ];
               rows;
             }
          :: qos_items)
          @ [ Text agree ];
      };
    ]
  | _ -> []

let attribution_section doc =
  match Json.member "attribution" doc with
  | None -> []
  | Some a -> (
    match Attr.of_json a with
    | Error e ->
      [ { title = "Attribution"; items = [ Text ("undecodable: " ^ e) ] } ]
    | Ok snap ->
      let total = Attr.snap_total snap in
      let agree =
        match offchip_counter doc with
        | Some n when n = total ->
          Printf.sprintf
            "Attributed %d off-chip accesses — exactly the engine's \
             sim.offchip_accesses counter."
            total
        | Some n ->
          Printf.sprintf
            "Attributed %d off-chip accesses, but the engine counted %d — \
             the cube lost or double-counted accesses."
            total n
        | None ->
          Printf.sprintf "Attributed %d off-chip accesses." total
      in
      [
        {
          title = "Attribution";
          items =
            [
              Text agree;
              Pre (Format.asprintf "%a" Attr.pp_table snap);
              Pre (bank_heat (Attr.bank_load snap));
            ];
        };
      ])

let heatmap_section doc =
  match Json.member "heatmaps" doc with
  | Some (Json.Obj kvs) ->
    let items =
      List.concat_map
        (fun (name, v) ->
          match v with
          | Json.String s -> [ Text name; Pre s ]
          | _ -> [])
        kvs
    in
    if items = [] then [] else [ { title = "Heatmaps"; items } ]
  | _ -> []

let mapping_section diags =
  match diags with
  | Some (Json.List ds) -> (
    let msg_of code d =
      match (Json.member "code" d, Json.member "message" d) with
      | Some (Json.String c), Some (Json.String m) when c = code -> Some m
      | _ -> None
    in
    let items =
      (match List.find_map (msg_of "C002") ds with
      | Some m ->
        let rows = cost_rows m in
        Text m
        ::
        (if rows = [] then []
         else [ Table { header = [ "mapping"; "estimated cost" ]; rows } ])
      | None -> [])
      @ List.filter_map
          (fun d -> Option.map (fun m -> Text ("warning: " ^ m)) (msg_of "C003" d))
          ds
    in
    if items = [] then []
    else [ { title = "Mapping selection"; items } ])
  | _ -> []

(* The C004 notes: the placement-search summary as text, the trajectory
   (steps joined by " | ") as a preformatted block, one step per line. *)
let search_section diags =
  match diags with
  | Some (Json.List ds) ->
    let msg_of code d =
      match (Json.member "code" d, Json.member "message" d) with
      | Some (Json.String c), Some (Json.String m) when c = code -> Some m
      | _ -> None
    in
    let split_steps s =
      let sep = " | " in
      let rec go acc s =
        match find_sub s sep with
        | None -> List.rev (s :: acc)
        | Some i ->
          go
            (String.sub s 0 i :: acc)
            (String.sub s (i + String.length sep)
               (String.length s - i - String.length sep))
      in
      go [] s
    in
    let items =
      List.concat_map
        (fun m ->
          let prefix = "search trajectory: " in
          match find_sub m prefix with
          | Some 0 ->
            let body =
              String.sub m (String.length prefix)
                (String.length m - String.length prefix)
            in
            [ Text "Trajectory:"; Pre (String.concat "\n" (split_steps body)) ]
          | _ -> [ Text m ])
        (List.filter_map (msg_of "C004") ds)
    in
    if items = [] then [] else [ { title = "Placement search"; items } ]
  | _ -> []

let build ?diags doc =
  match doc with
  | Json.Obj _ ->
    Ok
      (platform_section doc
      @ (run_section doc :: tenants_section doc)
      @ attribution_section doc @ heatmap_section doc @ mapping_section diags
      @ search_section diags)
  | _ -> Error "Report.build: not a stats-JSON object"

(* ---- rendering ---- *)

let to_markdown ~title sections =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf (Printf.sprintf "# %s\n" title);
  List.iter
    (fun s ->
      Buffer.add_string buf (Printf.sprintf "\n## %s\n" s.title);
      List.iter
        (fun item ->
          Buffer.add_char buf '\n';
          match item with
          | Text t -> Buffer.add_string buf (t ^ "\n")
          | Pre p ->
            Buffer.add_string buf "```\n";
            Buffer.add_string buf p;
            if p <> "" && p.[String.length p - 1] <> '\n' then
              Buffer.add_char buf '\n';
            Buffer.add_string buf "```\n"
          | Table { header; rows } ->
            let row cells =
              Buffer.add_string buf ("| " ^ String.concat " | " cells ^ " |\n")
            in
            row header;
            row (List.map (fun _ -> "---") header);
            List.iter row rows)
        s.items)
    sections;
  Buffer.contents buf

let html_escape s =
  let buf = Buffer.create (String.length s) in
  String.iter
    (fun c ->
      match c with
      | '<' -> Buffer.add_string buf "&lt;"
      | '>' -> Buffer.add_string buf "&gt;"
      | '&' -> Buffer.add_string buf "&amp;"
      | '"' -> Buffer.add_string buf "&quot;"
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let to_html ~title sections =
  let buf = Buffer.create 8192 in
  Buffer.add_string buf
    (Printf.sprintf
       "<!DOCTYPE html>\n\
        <html><head><meta charset=\"utf-8\"><title>%s</title>\n\
        <style>\n\
        body { font-family: sans-serif; margin: 2em auto; max-width: 60em; }\n\
        pre { background: #f4f4f4; padding: 0.8em; overflow-x: auto; }\n\
        table { border-collapse: collapse; }\n\
        td, th { border: 1px solid #999; padding: 0.2em 0.6em; text-align: left; }\n\
        </style></head><body>\n\
        <h1>%s</h1>\n"
       (html_escape title) (html_escape title));
  List.iter
    (fun s ->
      Buffer.add_string buf
        (Printf.sprintf "<h2>%s</h2>\n" (html_escape s.title));
      List.iter
        (fun item ->
          match item with
          | Text t ->
            Buffer.add_string buf
              (Printf.sprintf "<p>%s</p>\n" (html_escape t))
          | Pre p ->
            Buffer.add_string buf
              (Printf.sprintf "<pre>%s</pre>\n" (html_escape p))
          | Table { header; rows } ->
            Buffer.add_string buf "<table>\n<tr>";
            List.iter
              (fun h ->
                Buffer.add_string buf
                  (Printf.sprintf "<th>%s</th>" (html_escape h)))
              header;
            Buffer.add_string buf "</tr>\n";
            List.iter
              (fun cells ->
                Buffer.add_string buf "<tr>";
                List.iter
                  (fun c ->
                    Buffer.add_string buf
                      (Printf.sprintf "<td>%s</td>" (html_escape c)))
                  cells;
                Buffer.add_string buf "</tr>\n")
              rows;
            Buffer.add_string buf "</table>\n")
        s.items)
    sections;
  Buffer.add_string buf "</body></html>\n";
  Buffer.contents buf
