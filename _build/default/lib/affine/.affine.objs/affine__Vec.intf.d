lib/affine/vec.mli: Format
