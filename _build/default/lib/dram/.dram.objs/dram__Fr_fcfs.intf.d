lib/dram/fr_fcfs.mli: Timing
