(** Recursive-descent parser for the mini language.

    Grammar (see README for examples):
    {v
    program  ::= item*
    item     ::= "param" IDENT "=" expr ";"
               | ("array"|"index") IDENT ("[" expr "]")+ ";"
               | loop
    loop     ::= ("for"|"parfor") IDENT "=" expr "to" expr body
    body     ::= "{" stmt* "}" | stmt
    stmt     ::= loop | "if" "(" expr relop expr ")" block ("else" block)?
               | ref "=" expr ";"
    ref      ::= IDENT ("[" expr "]")+
    expr     ::= term (("+"|"-") term)*
    term     ::= factor (("*"|"/"|"%") factor)*
    factor   ::= INT | "-" factor | "(" expr ")" | IDENT | ref
    v}

    All entry points return located diagnostics as [Result] values — there
    are no raising variants. *)

val parse_program_result :
  ?file:string -> string -> (Ast.program, Diag.t list) result
(** Lex and parse only — no scope check.  The pipeline runs the check as
    its own pass. *)

val parse_result :
  ?file:string -> string -> (Ast.program, Diag.t list) result
(** Parses a full source string and scope-checks it: every referenced
    array must be declared with a matching subscript count.  Lexical and
    syntax errors stop at the first diagnostic; semantic checking
    collects one located diagnostic per offending reference. *)

val parse_file_result : string -> (Ast.program, Diag.t list) result
(** Reads and parses a file; an unreadable file is a [P000] diagnostic. *)

val check_result : Ast.program -> (Ast.program, Diag.t list) result
(** Scope check alone, for programmatically constructed programs. *)
