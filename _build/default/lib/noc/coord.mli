(** Mesh coordinates.

    [(x, y)] with [x] the column (0 at the left) and [y] the row (0 at the
    top), matching the paper's figures of the 8×8 mesh. *)

type t = { x : int; y : int }

val make : int -> int -> t

val manhattan : t -> t -> int

val equal : t -> t -> bool

val pp : Format.formatter -> t -> unit
