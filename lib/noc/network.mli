(** Link-level contention model for the mesh.

    A message reserves, hop by hop, the directed links of its XY route.
    Each link can start forwarding one message per [serialization] window
    (packet length in flits over a 16-byte link); a message arriving at a
    busy link waits for the link to free.  Per-hop latency covers the
    2-cycle router pipeline plus wire traversal (the aggregate 4-cycle
    per-hop figure of Table 1).

    This is a wormhole approximation: it captures queueing delay — the
    quantity the paper's localization attacks — without per-flit
    simulation, and it makes off-chip and on-chip traffic contend for the
    same links, which is the paper's second effect (off-chip traffic slows
    on-chip accesses).

    On a hierarchical topology ([Topology.chiplets]), links whose
    endpoints lie in different chiplets form a second link class: they
    charge the chiplet grid's [link_latency] per hop and serialize the
    message over its [link_bytes] width.  Flat topologies are charged
    exactly as before. *)

type config = {
  per_hop_latency : int;  (** cycles per link traversal, default 4 *)
  link_bytes : int;  (** link width, default 16 *)
}

val default_config : config

type t

val create : ?config:config -> Topology.t -> t

val transfer :
  ?on_hop:(link:int -> start:int -> finish:int -> unit) ->
  t ->
  now:int ->
  src:int ->
  dst:int ->
  bytes:int ->
  int
(** Like {!send} but returns only the arrival time, allocating nothing:
    the variant the simulator's event loop uses.  The hop count equals
    [Topology.distance] (memoizable by the caller) and the contention
    delay is [arrival - now - unloaded latency].  Routes are memoized per
    (src, dst) in a flat table built from the topology on first use, so
    XY routing is not recomputed per leg. *)

val send :
  ?on_hop:(link:int -> start:int -> finish:int -> unit) ->
  t ->
  now:int ->
  src:int ->
  dst:int ->
  bytes:int ->
  int * int * int
(** [send net ~now ~src ~dst ~bytes] routes one message and returns
    [(arrival_time, hops, contention_delay)] where [contention_delay] is
    the extra time spent waiting for busy links beyond the unloaded
    latency [hops · per_hop_latency].  [src = dst] delivers instantly.

    [on_hop] is invoked once per traversed link with its link id, the
    cycle the header started on the link and the cycle it reached the next
    router — the per-link detail the request-path tracer records.  The
    default does nothing and costs nothing. *)

val reset : t -> unit
(** Clears all link reservations (between experiment runs). *)

val total_link_busy : t -> int
(** Sum over links of cycles reserved so far — a load indicator used by
    utilization statistics. *)

val link_busy : t -> int array
(** Per-link-id cycles reserved so far (a copy). *)

val utilization : t -> at:int -> float array
(** Per-link fraction of [0, at] the link was reserved — the per-link
    utilization profile behind the paper's contention analysis. *)
