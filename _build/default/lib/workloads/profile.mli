(** Profile extraction for indexed references (Section 5.4).

    Samples the iteration space of every nest containing an indexed
    reference to the given array, evaluating the subscripts (through the
    app's index-array contents) to produce the (iteration, data-vector)
    pairs the affine approximation is fitted on. *)

val samples :
  App.t -> Lang.Analysis.t -> string -> (Affine.Vec.t * Affine.Vec.t) list
(** [samples app analysis array] — at most ~1000 samples, strided evenly
    over each relevant nest's iteration space.  Empty when the array has
    no indexed occurrence or bounds cannot be evaluated. *)

val for_transform :
  App.t -> Lang.Analysis.t -> string -> (Affine.Vec.t * Affine.Vec.t) list
(** The [profile] argument shape expected by {!Core.Transform.run}. *)
