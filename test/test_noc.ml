(* Tests for the NoC substrate: topology, XY routing, placements, and the
   link-contention model. *)

module Coord = Noc.Coord
module Topology = Noc.Topology
module Placement = Noc.Placement
module Network = Noc.Network

let topo8 = Topology.make ~width:8 ~height:8 ()

let ok = function Ok v -> v | Error e -> failwith e

let test_node_coord_roundtrip () =
  for n = 0 to Topology.nodes topo8 - 1 do
    Alcotest.(check int) "roundtrip" n
      (Topology.node_of_coord topo8 (Topology.coord_of_node topo8 n))
  done

let test_distance () =
  let n00 = Topology.node_of_coord topo8 (Coord.make 0 0) in
  let n77 = Topology.node_of_coord topo8 (Coord.make 7 7) in
  Alcotest.(check int) "corner to corner" 14 (Topology.distance topo8 n00 n77);
  Alcotest.(check int) "self" 0 (Topology.distance topo8 n00 n00)

let prop_route_length =
  let arb =
    QCheck.make
      ~print:(fun (a, b) -> Printf.sprintf "%d->%d" a b)
      QCheck.Gen.(pair (int_range 0 63) (int_range 0 63))
  in
  QCheck.Test.make ~name:"XY route length = manhattan distance" ~count:500 arb
    (fun (src, dst) ->
      List.length (Topology.xy_route topo8 ~src ~dst)
      = Topology.distance topo8 src dst)

let prop_route_valid =
  let arb =
    QCheck.make
      ~print:(fun (a, b) -> Printf.sprintf "%d->%d" a b)
      QCheck.Gen.(pair (int_range 0 63) (int_range 0 63))
  in
  QCheck.Test.make ~name:"XY route: X links first, then Y, ends at dst" ~count:500
    arb
    (fun (src, dst) ->
      let route = Topology.xy_route topo8 ~src ~dst in
      let is_x l = l.Topology.dir = Topology.East || l.Topology.dir = Topology.West in
      let rec check_order seen_y = function
        | [] -> true
        | l :: r ->
          if is_x l then (not seen_y) && check_order false r
          else check_order true r
      in
      let step n (l : Topology.link) =
        assert (l.Topology.from_node = n);
        match l.Topology.dir with
        | Topology.East -> n + 1
        | Topology.West -> n - 1
        | Topology.South -> n + 8
        | Topology.North -> n - 8
      in
      check_order false route && List.fold_left step src route = dst)

let test_link_ids_distinct () =
  let seen = Hashtbl.create 64 in
  List.iter
    (fun (src, dst) ->
      List.iter
        (fun l ->
          let id = Topology.link_id topo8 l in
          Alcotest.(check bool) "id in range" true (id >= 0 && id < Topology.num_link_ids topo8);
          Hashtbl.replace seen (l.Topology.from_node, l.Topology.dir) id)
        (Topology.xy_route topo8 ~src ~dst))
    [ (0, 63); (63, 0); (7, 56); (56, 7) ];
  let ids = Hashtbl.fold (fun _ id acc -> id :: acc) seen [] in
  Alcotest.(check int) "distinct ids" (List.length ids)
    (List.length (List.sort_uniq compare ids))

let test_placements () =
  let p1 = Placement.corners topo8 in
  Alcotest.(check int) "P1 has 4 MCs" 4 (Placement.count p1);
  let p2 = Placement.edge_centers topo8 in
  let p3 = Placement.top_bottom topo8 in
  (* P2 has the lowest average distance to the nearest controller *)
  Alcotest.(check bool) "P2 beats P1" true
    (Placement.avg_distance p2 topo8 < Placement.avg_distance p1 topo8);
  Alcotest.(check bool) "P2 beats P3" true
    (Placement.avg_distance p2 topo8 <= Placement.avg_distance p3 topo8)

let test_nearest () =
  let p1 = Placement.corners topo8 in
  let at x y = Topology.node_of_coord topo8 (Coord.make x y) in
  (* corners order: assign puts MC0 at NW *)
  let m = Placement.nearest p1 topo8 (at 1 1) in
  Alcotest.(check int) "NW node goes to the NW corner MC"
    (Topology.node_of_coord topo8 (Coord.make 0 0))
    (Placement.mc_node p1 m)

let test_ring () =
  let r8 = ok (Placement.ring_result topo8 ~count:8) in
  Alcotest.(check int) "8 MCs" 8 (Placement.count r8);
  (* all attachment nodes distinct and on the perimeter *)
  let nodes = Array.to_list r8.Placement.nodes in
  Alcotest.(check int) "distinct" 8 (List.length (List.sort_uniq compare nodes));
  List.iter
    (fun n ->
      let c = Topology.coord_of_node topo8 n in
      Alcotest.(check bool) "on perimeter" true
        (c.Coord.x = 0 || c.Coord.x = 7 || c.Coord.y = 0 || c.Coord.y = 7))
    nodes;
  match Placement.ring_result topo8 ~count:100 with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "more MCs than perimeter nodes must be a value error"

let test_assign_alignment () =
  (* assign keeps MC index <-> centroid correspondence: MC j lands on the
     site closest to centroid j (greedy) *)
  let sites = [| Coord.make 0 0; Coord.make 7 0; Coord.make 0 7; Coord.make 7 7 |] in
  let centroids = [| Coord.make 6 6; Coord.make 1 1; Coord.make 6 1; Coord.make 1 6 |] in
  let p = ok (Placement.assign_result topo8 ~name:"t" ~sites ~centroids) in
  Alcotest.(check int) "MC0 at SE" (Topology.node_of_coord topo8 (Coord.make 7 7))
    (Placement.mc_node p 0);
  Alcotest.(check int) "MC1 at NW" (Topology.node_of_coord topo8 (Coord.make 0 0))
    (Placement.mc_node p 1)

(* --- assignment properties (qcheck) --- *)

(* Random assignment instances: n centroids anywhere in the mesh, and a
   shuffled subset of the perimeter (at least n sites) to place on. *)
let assign_arb =
  let gen =
    QCheck.Gen.(
      let* n = int_range 2 8 in
      let* extra = int_range 0 8 in
      let* perm =
        shuffle_l (Array.to_list (Placement.perimeter_sites topo8))
      in
      let* centroids =
        list_repeat n (map (fun (x, y) -> Coord.make x y)
                         (pair (int_range 0 7) (int_range 0 7)))
      in
      let sites = List.filteri (fun i _ -> i < n + extra) perm in
      return (Array.of_list sites, Array.of_list centroids))
  in
  QCheck.make
    ~print:(fun (sites, centroids) ->
      let s a =
        String.concat ";"
          (Array.to_list
             (Array.map (fun c -> Printf.sprintf "(%d,%d)" c.Coord.x c.Coord.y) a))
      in
      Printf.sprintf "sites=%s centroids=%s" (s sites) (s centroids))
    gen

let placement_sites p =
  Array.map (Topology.coord_of_node topo8) p.Placement.nodes

(* The 2-opt refinement never produces a costlier assignment than the
   plain greedy seed it starts from. *)
let prop_twoopt_not_worse =
  QCheck.Test.make ~name:"assign: 2-opt <= greedy (centroid distance)"
    ~count:300 assign_arb (fun (sites, centroids) ->
      let refined =
        ok (Placement.assign_result topo8 ~name:"r" ~sites ~centroids)
      in
      let greedy =
        ok (Placement.greedy_assign_result topo8 ~name:"g" ~sites ~centroids)
      in
      Placement.centroid_distance ~sites:(placement_sites refined) ~centroids
      <= Placement.centroid_distance ~sites:(placement_sites greedy) ~centroids)

(* The refinement permutes site assignments but never forgets the
   MC-index <-> cluster-index correspondence the interleaved layout needs:
   one distinct site per centroid, every site drawn from the given set. *)
let prop_assign_correspondence =
  QCheck.Test.make ~name:"assign: one distinct in-set site per MC" ~count:300
    assign_arb (fun (sites, centroids) ->
      let p = ok (Placement.assign_result topo8 ~name:"c" ~sites ~centroids) in
      let chosen = placement_sites p in
      Placement.count p = Array.length centroids
      && Array.for_all
           (fun c -> Array.exists (Coord.equal c) sites)
           chosen
      &&
      let distinct = ref true in
      Array.iteri
        (fun i a ->
          Array.iteri
            (fun j b -> if i < j && Coord.equal a b then distinct := false)
            chosen)
        chosen;
      !distinct)

(* Every neighborhood move is legal, and the enumeration is deterministic. *)
let prop_neighborhood_legal =
  QCheck.Test.make ~name:"neighborhood: all moves legal, order stable"
    ~count:100 assign_arb (fun (sites, centroids) ->
      let p = ok (Placement.assign_result topo8 ~name:"n" ~sites ~centroids) in
      let state = placement_sites p in
      let pool = Placement.pool_sites topo8 Placement.Perimeter in
      let moves = Placement.neighborhood ~pool ~sites:state in
      moves = Placement.neighborhood ~pool ~sites:state
      && List.for_all
           (fun m ->
             match Placement.apply_move_result topo8 ~sites:state m with
             | Ok next ->
               (* a move changes the state but never its size *)
               Array.length next = Array.length state && next <> state
             | Error _ -> false)
           moves)

(* --- chiplet level --- *)

let chip_grid =
  { Topology.grid_x = 2; grid_y = 2; link_latency = 12; link_bytes = 8 }

let topo_chip = Topology.make ~chiplets:chip_grid ~width:8 ~height:8 ()

let test_chiplet_indexing () =
  Alcotest.(check int) "flat mesh has one chiplet" 1 (Topology.num_chiplets topo8);
  Alcotest.(check int) "2x2 grid has four" 4 (Topology.num_chiplets topo_chip);
  let at x y = Topology.node_of_coord topo_chip (Coord.make x y) in
  (* row-major chiplet indices over 4x4 tiles *)
  Alcotest.(check int) "NW tile" 0 (Topology.chiplet_of_node topo_chip (at 0 0));
  Alcotest.(check int) "NE tile" 1 (Topology.chiplet_of_node topo_chip (at 4 0));
  Alcotest.(check int) "SW tile" 2 (Topology.chiplet_of_node topo_chip (at 0 7));
  Alcotest.(check int) "SE tile" 3 (Topology.chiplet_of_node topo_chip (at 7 7));
  Alcotest.(check int) "interior stays home" 0
    (Topology.chiplet_of_node topo_chip (at 3 3));
  Alcotest.(check int) "flat nodes all map to 0" 0
    (Topology.chiplet_of_node topo8 (Topology.nodes topo8 - 1))

let test_chiplet_hops () =
  let at x y = Topology.node_of_coord topo_chip (Coord.make x y) in
  (* chiplet-grid manhattan distance = boundary crossings under XY *)
  Alcotest.(check int) "within a chiplet" 0
    (Topology.chiplet_hops topo_chip (at 0 0) (at 3 3));
  Alcotest.(check int) "one crossing east" 1
    (Topology.chiplet_hops topo_chip (at 3 0) (at 4 0));
  Alcotest.(check int) "diagonal crosses twice" 2
    (Topology.chiplet_hops topo_chip (at 0 0) (at 7 7));
  Alcotest.(check int) "flat mesh never crosses" 0
    (Topology.chiplet_hops topo8 0 63);
  (* crossing count is a lower bound refined by the actual route *)
  List.iter
    (fun (src, dst) ->
      let crossings =
        List.length
          (List.filter
             (Topology.link_crosses_chiplet topo_chip)
             (Topology.xy_route topo_chip ~src ~dst))
      in
      Alcotest.(check int)
        (Printf.sprintf "route %d->%d crossings" src dst)
        (Topology.chiplet_hops topo_chip src dst)
        crossings)
    [ (0, 63); (63, 0); (7, 56); (27, 36); (0, 7); (12, 51) ]

let test_chiplet_normalization () =
  (* a 1x1 grid is the flat machine, structurally *)
  let degenerate =
    Topology.make
      ~chiplets:
        { Topology.grid_x = 1; grid_y = 1; link_latency = 99; link_bytes = 2 }
      ~width:8 ~height:8 ()
  in
  Alcotest.(check bool) "1x1 grid normalizes to None" true
    (degenerate = topo8 && degenerate.Topology.chiplets = None);
  (* chiplets_result rejects the malformed grids with a value *)
  List.iter
    (fun (label, gx, gy, lat, by) ->
      match
        Topology.chiplets_result topo8 ~grid_x:gx ~grid_y:gy ~link_latency:lat
          ~link_bytes:by
      with
      | Ok _ -> Alcotest.failf "%s must be rejected" label
      | Error e ->
        Alcotest.(check bool) (label ^ " error non-empty") true
          (String.length e > 0))
    [
      ("non-dividing grid", 3, 3, 12, 8);
      ("zero grid", 0, 2, 12, 8);
      ("zero latency", 2, 2, 0, 8);
      ("zero width", 2, 2, 12, 0);
    ]

let test_network_chiplet_link_class () =
  let flat = Network.create topo8 in
  let hier = Network.create topo_chip in
  let at topo x y = Topology.node_of_coord topo (Coord.make x y) in
  (* a route confined to one chiplet is charged exactly like the flat mesh *)
  let a_flat, h_flat, _ =
    Network.send flat ~now:0 ~src:(at topo8 0 0) ~dst:(at topo8 3 3) ~bytes:8
  in
  let a_conf, h_conf, _ =
    Network.send hier ~now:0 ~src:(at topo_chip 0 0) ~dst:(at topo_chip 3 3)
      ~bytes:8
  in
  Alcotest.(check int) "same hops" h_flat h_conf;
  Alcotest.(check int) "on-die route charged as flat" a_flat a_conf;
  (* a crossing route pays the inter-chiplet latency: strictly slower *)
  let a_flat_x, _, _ =
    Network.send flat ~now:0 ~src:(at topo8 3 0) ~dst:(at topo8 4 0) ~bytes:8
  in
  let a_cross, h_cross, _ =
    Network.send hier ~now:0 ~src:(at topo_chip 3 0) ~dst:(at topo_chip 4 0)
      ~bytes:8
  in
  Alcotest.(check int) "one hop" 1 h_cross;
  Alcotest.(check bool)
    (Printf.sprintf "crossing link slower (%d > %d)" a_cross a_flat_x)
    true (a_cross > a_flat_x);
  (* the narrow inter-chiplet link also serializes wide messages harder *)
  Network.reset hier;
  let small = Network.transfer hier ~now:0 ~src:(at topo_chip 3 0)
      ~dst:(at topo_chip 4 0) ~bytes:8
  in
  Network.reset hier;
  let wide = Network.transfer hier ~now:0 ~src:(at topo_chip 3 0)
      ~dst:(at topo_chip 4 0) ~bytes:64
  in
  Alcotest.(check bool)
    (Printf.sprintf "8-byte link serializes 64 B (%d > %d)" wide small)
    true (wide > small)

let test_neighborhood_on_chiplets () =
  let sites = [| Coord.make 0 0; Coord.make 7 0; Coord.make 0 7; Coord.make 7 7 |] in
  let pool = Placement.pool_sites topo8 Placement.Perimeter in
  let flat_moves = Placement.neighborhood ~pool ~sites in
  let ordered = Placement.neighborhood_on topo_chip ~pool ~sites in
  (* same move set, chiplet-confined moves enumerated first *)
  Alcotest.(check int) "same move count" (List.length flat_moves)
    (List.length ordered);
  Alcotest.(check bool) "same move set" true
    (List.sort compare flat_moves = List.sort compare ordered);
  let rec confined_prefix = function
    | [] -> true
    | m :: rest ->
      if Placement.move_crosses_chiplet topo_chip ~sites m then
        List.for_all (Placement.move_crosses_chiplet topo_chip ~sites) rest
      else confined_prefix rest
  in
  Alcotest.(check bool) "confined moves lead" true (confined_prefix ordered);
  (* on a flat mesh the ordering is untouched *)
  Alcotest.(check bool) "flat order unchanged" true
    (Placement.neighborhood_on topo8 ~pool ~sites = flat_moves);
  (* per-chiplet site pools partition the perimeter *)
  let local c =
    Placement.sites_in_chiplet topo_chip Placement.Perimeter ~chiplet:c
  in
  Alcotest.(check int) "NW chiplet perimeter sites" 7 (Array.length (local 0));
  Alcotest.(check int) "chiplet pools cover the perimeter" 28
    (Array.length (local 0) + Array.length (local 1) + Array.length (local 2)
    + Array.length (local 3));
  Alcotest.(check int) "flat chiplet 0 holds the whole pool" 28
    (Array.length (Placement.sites_in_chiplet topo8 Placement.Perimeter ~chiplet:0))

(* --- move operators and site pools --- *)

let test_site_pools () =
  Alcotest.(check int) "perimeter 8x8" 28
    (Array.length (Placement.pool_sites topo8 Placement.Perimeter));
  Alcotest.(check int) "flip-chip 8x8 = all nodes" 64
    (Array.length (Placement.pool_sites topo8 Placement.Flip_chip));
  Alcotest.(check string) "to_string" "flip-chip"
    (Placement.pool_to_string Placement.Flip_chip);
  (match Placement.pool_of_string "perimeter" with
  | Ok Placement.Perimeter -> ()
  | _ -> Alcotest.fail "perimeter should parse");
  match Placement.pool_of_string "nope" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "unknown pool should be an error"

let test_moves () =
  let sites = [| Coord.make 0 0; Coord.make 7 0 |] in
  (* swap exchanges, leaving the input untouched *)
  (match
     Placement.apply_move_result topo8 ~sites (Placement.Swap { a = 0; b = 1 })
   with
  | Ok next ->
    Alcotest.(check bool) "swapped" true
      (Coord.equal next.(0) (Coord.make 7 0) && Coord.equal next.(1) (Coord.make 0 0));
    Alcotest.(check bool) "input intact" true (Coord.equal sites.(0) (Coord.make 0 0))
  | Error e -> Alcotest.fail e);
  (* relocate moves one MC to a free site *)
  (match
     Placement.apply_move_result topo8 ~sites
       (Placement.Relocate { mc = 1; site = Coord.make 3 7 })
   with
  | Ok next -> Alcotest.(check bool) "relocated" true (Coord.equal next.(1) (Coord.make 3 7))
  | Error e -> Alcotest.fail e);
  (* the error cases are values, not exceptions *)
  let expect_error name = function
    | Error _ -> ()
    | Ok _ -> Alcotest.failf "%s should be an error" name
  in
  expect_error "self-swap"
    (Placement.apply_move_result topo8 ~sites (Placement.Swap { a = 1; b = 1 }));
  expect_error "swap out of range"
    (Placement.apply_move_result topo8 ~sites (Placement.Swap { a = 0; b = 9 }));
  expect_error "occupied target"
    (Placement.apply_move_result topo8 ~sites
       (Placement.Relocate { mc = 0; site = Coord.make 7 0 }));
  expect_error "off-mesh target"
    (Placement.apply_move_result topo8 ~sites
       (Placement.Relocate { mc = 0; site = Coord.make 9 9 }))

(* --- network contention --- *)

let test_network_unloaded () =
  let net = Network.create topo8 in
  let arrival, hops, contention = Network.send net ~now:100 ~src:0 ~dst:7 ~bytes:8 in
  Alcotest.(check int) "hops" 7 hops;
  Alcotest.(check int) "no contention" 0 contention;
  Alcotest.(check int) "arrival = now + hops*4 (1 flit)" (100 + 28) arrival

let test_network_serialization () =
  let net = Network.create topo8 in
  (* 264 bytes over 16-byte links = 17 flits: body pipelines behind header *)
  let arrival, hops, contention = Network.send net ~now:0 ~src:0 ~dst:1 ~bytes:264 in
  Alcotest.(check int) "hops" 1 hops;
  Alcotest.(check int) "no queueing on idle link" 0 contention;
  Alcotest.(check int) "arrival includes serialization" (4 + 16) arrival

let test_network_contention () =
  let net = Network.create topo8 in
  let a1, _, c1 = Network.send net ~now:0 ~src:0 ~dst:1 ~bytes:264 in
  let a2, _, c2 = Network.send net ~now:0 ~src:0 ~dst:1 ~bytes:264 in
  Alcotest.(check int) "first unqueued" 0 c1;
  Alcotest.(check bool) "second waits for the link" true (c2 > 0);
  Alcotest.(check bool) "second arrives later" true (a2 > a1);
  (* disjoint paths do not contend *)
  let _, _, c3 = Network.send net ~now:0 ~src:56 ~dst:57 ~bytes:264 in
  Alcotest.(check int) "disjoint path unaffected" 0 c3

let test_network_same_node () =
  let net = Network.create topo8 in
  let arrival, hops, contention = Network.send net ~now:42 ~src:5 ~dst:5 ~bytes:264 in
  Alcotest.(check (triple int int int)) "instant local delivery" (42, 0, 0)
    (arrival, hops, contention)

let test_network_reset () =
  let net = Network.create topo8 in
  ignore (Network.send net ~now:0 ~src:0 ~dst:7 ~bytes:264);
  Alcotest.(check bool) "busy recorded" true (Network.total_link_busy net > 0);
  Network.reset net;
  Alcotest.(check int) "reset clears" 0 (Network.total_link_busy net);
  let _, _, c = Network.send net ~now:0 ~src:0 ~dst:7 ~bytes:264 in
  Alcotest.(check int) "no stale reservations" 0 c

let qsuite = List.map QCheck_alcotest.to_alcotest

let suite =
  [
    ( "noc.topology",
      [
        Alcotest.test_case "node/coord roundtrip" `Quick test_node_coord_roundtrip;
        Alcotest.test_case "distance" `Quick test_distance;
        Alcotest.test_case "link ids" `Quick test_link_ids_distinct;
        Alcotest.test_case "chiplet indexing" `Quick test_chiplet_indexing;
        Alcotest.test_case "chiplet hops" `Quick test_chiplet_hops;
        Alcotest.test_case "1x1 grid normalization" `Quick
          test_chiplet_normalization;
      ]
      @ qsuite [ prop_route_length; prop_route_valid ] );
    ( "noc.placement",
      [
        Alcotest.test_case "P1/P2/P3" `Quick test_placements;
        Alcotest.test_case "nearest" `Quick test_nearest;
        Alcotest.test_case "ring" `Quick test_ring;
        Alcotest.test_case "assign alignment" `Quick test_assign_alignment;
        Alcotest.test_case "site pools" `Quick test_site_pools;
        Alcotest.test_case "move operators" `Quick test_moves;
        Alcotest.test_case "chiplet-aware neighborhood" `Quick
          test_neighborhood_on_chiplets;
      ]
      @ qsuite
          [
            prop_twoopt_not_worse;
            prop_assign_correspondence;
            prop_neighborhood_legal;
          ] );
    ( "noc.network",
      [
        Alcotest.test_case "unloaded latency" `Quick test_network_unloaded;
        Alcotest.test_case "serialization" `Quick test_network_serialization;
        Alcotest.test_case "contention" `Quick test_network_contention;
        Alcotest.test_case "local delivery" `Quick test_network_same_node;
        Alcotest.test_case "reset" `Quick test_network_reset;
        Alcotest.test_case "inter-chiplet link class" `Quick
          test_network_chiplet_link_class;
      ] );
  ]
