(** Simulation parameters over a {!Core.Platform} (Table 1).

    The machine description — topology, cluster mapping, controller
    placement, interleaving and address-map sizes — lives in the embedded
    {!Core.Platform.t}; this record adds only the simulation-side knobs
    (cache sizes, latencies, DRAM timing, scheduling policies, seeds).
    The simulator reads the platform through the accessors below so the
    compiler and simulator consume one shared description.

    The [default] configuration reproduces Table 1: 8×8 mesh, two-issue
    in-order cores, 16 KB 2-way L1s with 64 B lines, 256 KB 16-way L2s
    with 256 B lines (per node), latencies 2/10/4 (L1/L2/hop), four
    corner controllers with FR-FCFS and DDR3-1600 timing, 4 KB pages and
    row buffers, cache-line interleaving, mapping M1.

    The [scaled] configuration shrinks the caches (keeping line sizes and
    associativity ratios) so that the scaled-down working sets of the
    workload models exercise the off-chip path in seconds instead of
    hours; every experiment uses it unless stated otherwise.  Relative
    results are what the paper's evaluation is about. *)

type l2_org = Private_l2 | Shared_l2

type page_policy = Hardware | First_touch | Mc_aware

type t = {
  platform : Core.Platform.t;
  l2_org : l2_org;
  page_policy : page_policy;
  l1_size : int;
  l1_line : int;
  l1_ways : int;
  l2_size : int;  (** per node *)
  l2_ways : int;
  l1_latency : int;
  l2_latency : int;
  directory_latency : int;
  noc : Noc.Network.config;
  timing : Dram.Timing.t;
  mc_scheduler : Dram.Fr_fcfs.scheduler;
  mc_row_policy : Dram.Fr_fcfs.row_policy;
  compute_cycles : int;  (** issue cost charged per access *)
  jitter : bool;
      (** add deterministic per-thread issue jitter (0..compute_cycles-1
          extra cycles per access).  Identical replayed streams would
          otherwise keep a cluster's threads in perfect lockstep, sending
          synchronized miss bursts to one controller — decorrelation real
          cores get for free from microarchitectural noise *)
  threads_per_core : int;
  optimal : bool;  (** Section 2's optimal scheme *)
  frames_per_mc : int;
  seed : int;
      (** deterministic seed mixed into the per-thread jitter streams:
          runs with equal configurations and seeds are bit-reproducible,
          different seeds decorrelate replicated experiments.  [0] (the
          default) reproduces the historical jitter streams exactly *)
}

val default : unit -> t

val scaled : unit -> t

(** {2 Platform accessors} *)

val platform : t -> Core.Platform.t

val topo : t -> Noc.Topology.t

val cluster : t -> Core.Cluster.t

val placement : t -> Noc.Placement.t

val interleaving : t -> Dram.Address_map.interleaving
(** The platform's interleaving, as the DRAM layer's variant. *)

val l2_line : t -> int
(** The platform's [line_bytes]. *)

val page_bytes : t -> int

val elem_bytes : t -> int

val banks_per_mc : t -> int

val channels_per_mc : t -> int

val num_mcs : t -> int

(** {2 Functional updates} *)

val with_platform : t -> Core.Platform.t -> t

val with_cluster : t -> Core.Cluster.t -> (t, string) result
(** Replaces the mapping and recomputes a matching placement; a cluster
    that does not tile the platform's mesh is a value error. *)

val with_placement : t -> Noc.Placement.t -> (t, string) result
(** Replaces the controller placement; a site count that differs from the
    platform's controller count is a value error. *)

val with_interleaving : t -> Dram.Address_map.interleaving -> t

val with_channels_per_mc : t -> int -> t

val mesh : width:int -> height:int -> t -> (t, string) result
(** Re-targets the configuration to another mesh size (Fig. 21),
    rebuilding cluster and placement; a mesh M1 cannot tile evenly is a
    value error. *)

(** {2 Derived views} *)

val address_map : t -> Dram.Address_map.t

val customize_config : t -> Core.Customize.config
(** The pass-side view of this platform (p = line or page in elements). *)

val build :
  ?scaled:bool ->
  ?platform:string ->
  ?l2:string ->
  ?interleave:string ->
  ?policy:string ->
  ?mapping:string ->
  ?width:int ->
  ?height:int ->
  ?tpc:int ->
  ?optimal:bool ->
  ?seed:int ->
  unit ->
  (t, string) result
(** Builds a configuration from the string/scalar knobs the CLIs and
    sweep specs expose ([platform] a preset name or JSON file per
    {!Core.Platform.of_spec}, taking precedence over [width]/[height];
    [l2] private|shared, [interleave] line|page, [policy]
    hardware|first-touch|mc-aware, [mapping] M1|M2|MC-count, or [""] to
    keep the platform's own mapping).  Returns a one-line error instead
    of raising on invalid values. *)

val to_json : t -> Obs.Json.t
(** Scalar platform parameters (mesh, caches, controllers, policies) —
    embedded in the machine-readable stats so a results file records the
    configuration that produced it.  Hierarchical platforms additionally
    carry a ["hierarchy"] member (chiplet grid and inter-chiplet link
    class); flat platforms' documents are byte-identical to the
    pre-chiplet format. *)

val pp : Format.formatter -> t -> unit
