type t = { lo : Vec.t; hi : Vec.t }

let make ~lo ~hi =
  if Vec.dim lo <> Vec.dim hi then invalid_arg "Space.make: dimension mismatch";
  Array.iteri
    (fun d l -> if l > hi.(d) + 1 then invalid_arg "Space.make: bad bounds")
    lo;
  { lo; hi }

let of_extents ns =
  let lo = Vec.zero (List.length ns)
  and hi = Vec.of_list (List.map (fun n -> n - 1) ns) in
  make ~lo ~hi

let rank s = Vec.dim s.lo

let extent s d = s.hi.(d) - s.lo.(d) + 1

let size s =
  let n = ref 1 in
  for d = 0 to rank s - 1 do
    n := !n * max 0 (extent s d)
  done;
  !n

let mem s p =
  Vec.dim p = rank s
  && Array.for_all (fun d -> s.lo.(d) <= p.(d) && p.(d) <= s.hi.(d))
       (Array.init (rank s) Fun.id)

let iter f s =
  let r = rank s in
  if size s > 0 then begin
    let p = Vec.copy s.lo in
    let rec loop d =
      if d = r then f p
      else
        for x = s.lo.(d) to s.hi.(d) do
          p.(d) <- x;
          loop (d + 1)
        done
    in
    loop 0
  end

(* Even partition of [n] points into [chunks]: the first [n mod chunks]
   chunks get one extra point. *)
let chunk_bounds n chunks index =
  let base = n / chunks and rem = n mod chunks in
  let start =
    (index * base) + min index rem
  in
  let len = base + (if index < rem then 1 else 0) in
  (start, start + len - 1)

let chunk s ~dim ~chunks ~index =
  if chunks <= 0 || index < 0 || index >= chunks then invalid_arg "Space.chunk";
  let n = extent s dim in
  let st, en = chunk_bounds n chunks index in
  let lo = Vec.copy s.lo and hi = Vec.copy s.hi in
  lo.(dim) <- s.lo.(dim) + st;
  hi.(dim) <- s.lo.(dim) + en;
  { lo; hi }

let chunk_of_point s ~dim ~chunks x =
  let n = extent s dim in
  let off = x - s.lo.(dim) in
  if off < 0 || off >= n then invalid_arg "Space.chunk_of_point";
  let base = n / chunks and rem = n mod chunks in
  (* The first [rem] chunks have [base+1] points. *)
  let boundary = rem * (base + 1) in
  if off < boundary then off / (base + 1)
  else if base = 0 then chunks - 1
  else rem + ((off - boundary) / base)

let pp ppf s =
  Format.fprintf ppf "[%a .. %a]" Vec.pp s.lo Vec.pp s.hi
