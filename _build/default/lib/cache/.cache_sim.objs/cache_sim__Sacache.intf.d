lib/cache/sacache.mli:
