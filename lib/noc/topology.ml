type t = { width : int; height : int }

type dir = East | West | North | South

type link = { from_node : int; dir : dir }

let make ~width ~height =
  if width <= 0 || height <= 0 then invalid_arg "Topology.make";
  { width; height }

let nodes t = t.width * t.height

let node_of_coord t (c : Coord.t) = (c.y * t.width) + c.x

let coord_of_node t n = Coord.make (n mod t.width) (n / t.width)

let in_mesh t (c : Coord.t) =
  c.x >= 0 && c.x < t.width && c.y >= 0 && c.y < t.height

let distance t a b = Coord.manhattan (coord_of_node t a) (coord_of_node t b)

let step t n = function
  | East -> n + 1
  | West -> n - 1
  | South -> n + t.width
  | North -> n - t.width

let xy_route t ~src ~dst =
  let cs = coord_of_node t src and cd = coord_of_node t dst in
  let route = ref [] in
  let cur = ref src in
  let move dir =
    route := { from_node = !cur; dir } :: !route;
    cur := step t !cur dir
  in
  (* X first *)
  for _ = 1 to abs (cd.x - cs.x) do
    move (if cd.x > cs.x then East else West)
  done;
  for _ = 1 to abs (cd.y - cs.y) do
    move (if cd.y > cs.y then South else North)
  done;
  List.rev !route

let dir_index = function East -> 0 | West -> 1 | North -> 2 | South -> 3

let link_id _t l = (l.from_node * 4) + dir_index l.dir

let num_link_ids t = 4 * nodes t

(* The XY route as a dense array of link ids, written without the
   intermediate link list: the representation the network's route table
   memoizes. *)
let link_ids t ~src ~dst =
  let cs = coord_of_node t src and cd = coord_of_node t dst in
  let ids = Array.make (Coord.manhattan cs cd) 0 in
  let cur = ref src in
  let k = ref 0 in
  let move dir =
    ids.(!k) <- (!cur * 4) + dir_index dir;
    incr k;
    cur := step t !cur dir
  in
  for _ = 1 to abs (cd.x - cs.x) do
    move (if cd.x > cs.x then East else West)
  done;
  for _ = 1 to abs (cd.y - cs.y) do
    move (if cd.y > cs.y then South else North)
  done;
  ids
