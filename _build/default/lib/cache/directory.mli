(** L2 tag directory for the private-L2 organization.

    With per-core private L2s, an L2 miss consults a centralized directory
    cached at the memory controller that owns the line (paper, Fig. 2a).
    The directory knows which private L2s hold a copy and either forwards
    the request to a sharer (on-chip transfer) or issues an off-chip
    access.  Holders are tracked as a bitmask, supporting up to 63 nodes
    in a native int and arbitrarily many via the two-word representation
    used here (the default platform has 64 nodes). *)

type t

val create : nodes:int -> t

val add_holder : t -> line:int -> node:int -> unit

val remove_holder : t -> line:int -> node:int -> unit

val holders : t -> line:int -> int list
(** Nodes currently holding the line, ascending. *)

val closest_holder :
  t -> line:int -> ?excluding:int -> distance:(int -> int) -> unit -> int option
(** The holder minimizing [distance] (e.g. hops from the requester), or
    [None] if no other L2 holds the line.  [excluding] removes the
    requester itself from consideration (it is registered as a holder as
    soon as its fill is in flight). *)

val clear : t -> unit
