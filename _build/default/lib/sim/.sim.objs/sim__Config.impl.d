lib/sim/config.ml: Array Core Dram Format Noc Printf
