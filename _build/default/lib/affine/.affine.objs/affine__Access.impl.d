lib/affine/access.ml: Format Matrix Vec
