lib/affine/hyperplane.ml: Format Vec
