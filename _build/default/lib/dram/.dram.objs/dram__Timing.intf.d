lib/dram/timing.mli:
