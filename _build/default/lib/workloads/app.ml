type t = {
  name : string;
  description : string;
  source : string;
  index_contents : (string * (int array -> int)) list;
  first_touch_friendly : bool;
  warmup_nests : int;
}

let make ~name ~description ?(index = []) ?(first_touch_friendly = false)
    ?(warmup_nests = 1) source =
  {
    name;
    description;
    source;
    index_contents = index;
    first_touch_friendly;
    warmup_nests;
  }

let program t = Lang.Parser.parse t.source

let index_lookup t name v = (List.assoc name t.index_contents) v
