module Json = Obs.Json

let code_version =
  let v = ref None in
  fun () ->
    match !v with
    | Some s -> s
    | None ->
      let s =
        match Sys.getenv_opt "OFFCHIP_SWEEP_CODEVERSION" with
        | Some s when s <> "" -> s
        | _ -> (
          try Digest.to_hex (Digest.file Sys.executable_name)
          with Sys_error _ -> "unknown")
      in
      v := Some s;
      s

let key job =
  let identity =
    Json.Obj
      [
        ("identity", Spec.job_identity job);
        ("code_version", Json.String (code_version ()));
      ]
  in
  Digest.to_hex (Digest.string (Json.to_string ~minify:true identity))

let cache_dir dir = Filename.concat dir "cache"

let path ~dir key = Filename.concat (cache_dir dir) (key ^ ".json")

let find ~dir key =
  let p = path ~dir key in
  match
    let ic = open_in_bin p in
    let n = in_channel_length ic in
    let s = really_input_string ic n in
    close_in ic;
    Json.of_string s
  with
  | Ok j -> Some j
  | Error _ | (exception Sys_error _) -> None

let rec mkdir_p d =
  if d <> "" && d <> "." && d <> "/" && not (Sys.file_exists d) then begin
    mkdir_p (Filename.dirname d);
    try Unix.mkdir d 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ()
  end

let ensure ~dir = mkdir_p (cache_dir dir)

let store ~dir key doc =
  mkdir_p (cache_dir dir);
  let final = path ~dir key in
  (* unique temp name per process: concurrent workers never collide *)
  let tmp = Printf.sprintf "%s.%d.tmp" final (Unix.getpid ()) in
  let oc = open_out_bin tmp in
  Json.to_channel oc doc;
  close_out oc;
  Sys.rename tmp final
