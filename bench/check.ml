(* The performance-regression gate behind `bench --check`.

   Measures a small, fixed set of entries — a seed-0 smoke simulation
   (engine wall time and minor words per access) plus the Bechamel
   microbenchmarks of the simulator's hot primitives — and compares each
   against the committed bench/baseline.json.  An entry regresses when

     measured > baseline.value * baseline.tolerance

   Tolerances are per entry: wall-clock entries get generous headroom
   because CI machines differ, allocation counts are deterministic and
   get a tight bound.  The caller exits 2 on any regression — the knob
   scripts/dev-check and the CI perf job both pull.

   `--update` rewrites the baseline with the measured values (see
   EXPERIMENTS.md for when bumping the baseline is legitimate). *)

module Config = Sim.Config
module Engine = Sim.Engine
module Stats = Sim.Stats
module Heap = Sim.Event_heap
module Json = Obs.Json

type entry = {
  name : string;
  value : float;
  tolerance : float;
  min_floor : bool;
      (* true: [value] is a required floor (measured >= value passes) —
         used by the parallel-speedup entries, where bigger is better.
         false (default): [measured <= value * tolerance] passes. *)
}

let min_floor_of name = String.length name >= 4 && String.sub name 0 4 = "par."

(* --- measurements --- *)

(* Deterministic seed-0 smoke run: the apsi model on the scaled platform,
   prepared once; the engine is what the gate watches. *)
let smoke_entries () =
  let cfg = Config.scaled () in
  let app = Workloads.Suite.by_name "apsi" in
  let program = Workloads.App.program app in
  let index_lookup = Workloads.App.index_lookup app in
  let prepared =
    Sim.Runner.prepare cfg ~optimized:false
      ~warmup_phases:app.Workloads.App.warmup_nests ~index_lookup program
  in
  let jobs = [ prepared.Sim.Runner.job ] in
  let run () = Engine.run cfg ~jobs () in
  ignore (run ());
  (* warm *)
  let minor0 = Gc.minor_words () in
  let r = run () in
  let minor = Gc.minor_words () -. minor0 in
  let accesses = float_of_int (Stats.total_accesses r.Engine.stats) in
  let best = ref infinity in
  for _ = 1 to 3 do
    let t0 = Unix.gettimeofday () in
    ignore (run ());
    let dt = Unix.gettimeofday () -. t0 in
    if dt < !best then best := dt
  done;
  [
    ("smoke.engine_wall_s", !best);
    ("smoke.minor_words_per_access", minor /. accesses);
  ]

(* Bechamel micro section: ns/run estimates of the event-loop primitives.
   The churn benchmark is the event-loop microbenchmark of the regression
   gate: push/pop 4096 timestamped events through the heap. *)
let heap_churn () =
  let h : int Heap.t = Heap.create () in
  for i = 0 to 4095 do
    Heap.push h ~time:(i * 37 mod 1009) i
  done;
  let acc = ref 0 in
  let rec drain () =
    match Heap.pop h with
    | None -> ()
    | Some (t, v) ->
      acc := !acc + t + v;
      drain ()
  in
  drain ();
  !acc

let micro_entries () =
  let open Bechamel in
  let topo = Noc.Topology.make ~width:8 ~height:8 () in
  let net = Noc.Network.create topo in
  let tests =
    [
      ( "micro.event_heap.churn4k_ns",
        Test.make ~name:"churn" (Staged.stage (fun () -> ignore (heap_churn ())))
      );
      ( "micro.network.send_corner_ns",
        Test.make ~name:"send"
          (Staged.stage (fun () ->
               ignore (Noc.Network.send net ~now:0 ~src:0 ~dst:63 ~bytes:264)))
      );
    ]
  in
  let instance = Toolkit.Instance.monotonic_clock in
  let cfg = Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.5) () in
  let ols =
    Analyze.ols ~r_square:false ~bootstrap:0 ~predictors:[| Measure.run |]
  in
  List.map
    (fun (entry_name, test) ->
      let raw = Benchmark.all cfg [ instance ] (Test.make_grouped ~name:"g" [ test ]) in
      let results = Analyze.all ols instance raw in
      let est =
        Hashtbl.fold
          (fun _ result acc ->
            match Analyze.OLS.estimates result with
            | Some (e :: _) -> e
            | _ -> acc)
          results nan
      in
      (entry_name, est))
    tests

(* Parallel smoke: 4 cluster-confined apsi replicas on the page-interleaved
   first-touch platform — the canonical decomposable workload the parallel
   engine speeds up.  Two things are checked:

   - byte-equality of the 4-domain and sequential result documents, on
     EVERY host — the fallback backend still runs the partitioned merge
     path (serialized), so the oracle is meaningful even on OCaml 4;
   - the 4-domain wall-clock speedup against the committed floor, only
     where it can be measured (an OCaml 5 build on a >= 4-core host);
     elsewhere the entry is reported as skipped with the reason. *)
let par_speedup_name = "par.smoke_speedup_x4"

let par_entries () =
  let cfg =
    match
      Config.build ~scaled:true ~platform:"" ~l2:"private" ~interleave:"page"
        ~policy:"first-touch" ~mapping:"" ~width:8 ~height:8 ~tpc:1
        ~optimal:false ~seed:0 ()
    with
    | Ok c -> c
    | Error e -> failwith ("par smoke config: " ^ e)
  in
  let app = Workloads.Suite.by_name "apsi" in
  let jobs =
    Sim.Runner.prepare_replicas cfg ~optimized:false
      ~warmup_phases:app.Workloads.App.warmup_nests
      ~index_lookup:(Workloads.App.index_lookup app)
      (Workloads.App.program app)
  in
  let plan = ref "" in
  let run ~domains () =
    Sim.Runner.run_many ~domains ~on_plan:(fun s -> plan := s) cfg ~jobs
  in
  let doc r = Json.to_string (Sweep.Exec.result_json ~app:"apsi" cfg r) in
  let seq = run ~domains:1 () in
  let par = run ~domains:4 () in
  if String.length !plan < 9 || String.sub !plan 0 9 <> "parallel:" then
    failwith ("par smoke did not plan parallel: " ^ !plan);
  if doc seq <> doc par then
    failwith "par smoke: 4-domain result differs from the sequential oracle";
  if not Sim.Par_backend.available then
    ([], [ (par_speedup_name, "no domain support in this build") ])
  else
    let cores = Sim.Par_backend.cpu_count () in
    if cores < 4 then
      ( [],
        [
          ( par_speedup_name,
            Printf.sprintf "host has %d core%s (need 4)" cores
              (if cores = 1 then "" else "s") );
        ] )
    else begin
      let best f =
        let best = ref infinity in
        for _ = 1 to 3 do
          let t0 = Unix.gettimeofday () in
          ignore (f ());
          let dt = Unix.gettimeofday () -. t0 in
          if dt < !best then best := dt
        done;
        !best
      in
      let seq_s = best (run ~domains:1) in
      let par_s = best (run ~domains:4) in
      ([ (par_speedup_name, seq_s /. par_s) ], [])
    end

(* Chiplet smoke: the chiplet2x2-mc4 tiled-GEMM run (EXPERIMENTS.md's
   committed experiment) has no committed timing baseline yet, so the
   gate carries its entries as explicit skip rows — --check output shows
   the hierarchical platform exists and why it is ungated instead of
   silently omitting it.  To arm the gate: measure the entries here,
   record values with --update, and drop the skip. *)
let chiplet_skip_reason =
  "no committed chiplet2x2-mc4 baseline yet (see EXPERIMENTS.md)"

let chiplet_entries () =
  ( [],
    [
      ("chiplet.gemm_wall_s", chiplet_skip_reason);
      ("chiplet.gemm_cross_share", chiplet_skip_reason);
    ] )

let measure () =
  let par, par_skipped = par_entries () in
  let chip, chip_skipped = chiplet_entries () in
  ( smoke_entries () @ micro_entries () @ par @ chip,
    par_skipped @ chip_skipped )

(* --- baseline I/O --- *)

let default_tolerance name =
  if String.length name >= 6 && String.sub name 0 6 = "micro." then 1.75
  else if name = "smoke.engine_wall_s" then 1.6
  else if name = "smoke.minor_words_per_access" then 1.15
  else if min_floor_of name then 1.0
  else 1.5

(* The committed speedup floor: never overwritten by --update (it is a
   policy threshold, not a measurement). *)
let default_floor _name = 1.5

let entry_json e =
  Json.obj
    ([
       ("name", Json.String e.name);
       ("value", Json.Float e.value);
       ("tolerance", Json.Float e.tolerance);
     ]
    @ if e.min_floor then [ ("min", Json.Bool true) ] else [])

let baseline_json entries = Json.obj [ ("entries", Json.list entry_json entries) ]

let number = function
  | Some (Json.Float f) -> Some f
  | Some (Json.Int i) -> Some (float_of_int i)
  | _ -> None

let parse_baseline path =
  let ic = open_in path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  match Json.of_string s with
  | Error e -> Error (Printf.sprintf "%s: %s" path e)
  | Ok doc -> (
    match Json.member "entries" doc with
    | Some (Json.List es) -> (
      try
        Ok
          (List.map
             (fun e ->
               match
                 ( Json.member "name" e,
                   number (Json.member "value" e),
                   number (Json.member "tolerance" e) )
               with
               | Some (Json.String name), Some value, Some tolerance ->
                 let min_floor =
                   match Json.member "min" e with
                   | Some (Json.Bool b) -> b
                   | _ -> false
                 in
                 { name; value; tolerance; min_floor }
               | _ -> failwith "entry")
             es)
      with Failure _ -> Error (path ^ ": malformed entry"))
    | _ -> Error (path ^ ": missing \"entries\""))

let write_json path doc =
  let oc = open_out path in
  Json.to_channel oc doc;
  close_out oc

(* --- the gate --- *)

(* Returns the process exit code: 0 ok, 2 regression, 1 bad baseline. *)
let run ~baseline_path ~update ~report_out () =
  let measured, skipped = measure () in
  if update then begin
    (* min-floor ("par." prefixed) entries keep their committed policy value — and
       stay in the baseline even when this host could not measure them —
       so updating on a 1-core laptop never weakens the CI speedup gate *)
    let old =
      match parse_baseline baseline_path with Ok es -> es | Error _ -> []
    in
    let committed name =
      match List.find_opt (fun e -> e.name = name) old with
      | Some e -> e.value
      | None -> default_floor name
    in
    let entry_of name value =
      let min_floor = min_floor_of name in
      let value =
        if min_floor then committed name
        else if Float.is_nan value then
          (* skipped on this host: keep the committed value (0 when the
             entry is new) — Float nan would encode as JSON null and
             break the next parse *)
          match List.find_opt (fun e -> e.name = name) old with
          | Some e -> e.value
          | None -> 0.
        else value
      in
      { name; value; tolerance = default_tolerance name; min_floor }
    in
    let entries =
      List.map (fun (name, value) -> entry_of name value) measured
      @ List.map (fun (name, _reason) -> entry_of name nan) skipped
    in
    write_json baseline_path (baseline_json entries);
    Printf.printf "baseline updated: %s\n" baseline_path;
    List.iter (fun e -> Printf.printf "  %-32s %14.2f\n" e.name e.value) entries;
    0
  end
  else
    match parse_baseline baseline_path with
    | Error e ->
      Printf.eprintf "bench --check: %s\n" e;
      1
    | Ok entries ->
      Printf.printf "== bench --check (baseline %s) ==\n" baseline_path;
      Printf.printf "  %-32s %14s %14s %7s %6s\n" "entry" "baseline"
        "measured" "ratio" "";
      let rows =
        List.map
          (fun e ->
            match List.assoc_opt e.name measured with
            | None ->
              (* an unmeasured entry passes only when the measurement
                 explicitly skipped it (host cannot run it) *)
              (e, nan, List.mem_assoc e.name skipped)
            | Some m ->
              let ok =
                if e.min_floor then m >= e.value
                else m /. e.value <= e.tolerance
              in
              (e, m, ok))
          entries
      in
      List.iter
        (fun (e, m, ok) ->
          match List.assoc_opt e.name skipped with
          | Some reason ->
            Printf.printf "  %-32s %14.2f %14s %7s skipped: %s\n" e.name
              e.value "-" "-" reason
          | None ->
            Printf.printf "  %-32s %14.2f %14.2f %6.2fx %6s\n" e.name e.value
              m (m /. e.value)
              (if ok then if e.min_floor then "ok (floor)" else "ok"
               else "REGRESSED"))
        rows;
      (match report_out with
      | None -> ()
      | Some path ->
        let doc =
          Json.obj
            [
              ("baseline", Json.String baseline_path);
              ( "entries",
                Json.list
                  (fun (e, m, ok) ->
                    Json.obj
                      ([ ("name", Json.String e.name);
                         ("baseline", Json.Float e.value) ]
                      @ (match List.assoc_opt e.name skipped with
                        | Some reason ->
                          [ ("skipped", Json.String reason) ]
                        | None ->
                          [
                            ("measured", Json.Float m);
                            ("ratio", Json.Float (m /. e.value));
                          ])
                      @ [
                          ("tolerance", Json.Float e.tolerance);
                          ("min", Json.Bool e.min_floor);
                          ("ok", Json.Bool ok);
                        ]))
                  rows );
            ]
        in
        write_json path doc;
        Printf.printf "  report written to %s\n" path);
      if List.for_all (fun (_, _, ok) -> ok) rows then begin
        Printf.printf "bench --check: all entries within tolerance\n";
        0
      end
      else begin
        Printf.printf "bench --check: performance regression detected\n";
        2
      end
