(** Recursive-descent parser for the mini language.

    Grammar (see README for examples):
    {v
    program  ::= item*
    item     ::= "param" IDENT "=" expr ";"
               | ("array"|"index") IDENT ("[" expr "]")+ ";"
               | loop
    loop     ::= ("for"|"parfor") IDENT "=" expr "to" expr body
    body     ::= "{" stmt* "}" | stmt
    stmt     ::= loop | ref "=" expr ";"
    ref      ::= IDENT ("[" expr "]")+
    expr     ::= term (("+"|"-") term)*
    term     ::= factor (("*"|"/"|"%") factor)*
    factor   ::= INT | "-" factor | "(" expr ")" | IDENT | ref
    v} *)

exception Error of string
(** Syntax or scoping error. *)

val parse : string -> Ast.program
(** Parses a full source string.  Checks that every referenced array is
    declared and that subscript counts match declarations.  Raises
    {!Error} or {!Lexer.Error} on malformed input. *)

val parse_file : string -> Ast.program
(** Reads and parses a file. *)
