lib/affine/smith.mli: Matrix
