(** Byte-offset source spans for located diagnostics.

    A span names a half-open byte range [\[lo, hi)] of one source file.
    AST nodes carry spans so every later pass — semantic checking,
    analysis, the solver and the inter-pass verifier — can point its
    diagnostics back at the source line that caused them.  Line/column
    positions are computed lazily from the source text when rendering. *)

type t = { file : string; lo : int; hi : int }

val dummy : t
(** The span of programmatically-built AST nodes (workload rewrites, the
    compiler-emitted [__home] declaration).  Renders as [<none>]. *)

val make : file:string -> lo:int -> hi:int -> t

val is_dummy : t -> bool

val join : t -> t -> t
(** Smallest span covering both; a dummy operand yields the other span. *)

type position = { line : int; col : int }  (** both 1-based *)

val position_of : src:string -> int -> position
(** Line/column of a byte offset within the source text. *)

val line_at : src:string -> int -> string
(** The source line containing the offset, without its newline. *)

val pp : ?src:string -> Format.formatter -> t -> unit
(** [file:line:col] when the source is available, [file:lo-hi] otherwise. *)

val to_string : ?src:string -> t -> string
