examples/page_placement.ml: Dram Printf Sim Workloads
