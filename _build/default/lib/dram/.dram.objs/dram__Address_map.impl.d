lib/dram/address_map.ml:
