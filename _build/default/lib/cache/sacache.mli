(** Set-associative cache with LRU replacement.

    Used for the per-node L1s, the per-node private L2s, and the banks of
    the shared SNUCA L2.  Addresses are byte addresses; the cache operates
    on whole lines. *)

type t

type result =
  | Hit
  | Miss of { evicted : int option; evicted_dirty : bool }
      (** [evicted] is the base address of the line displaced by this
          fill, if any; [evicted_dirty] says whether it must be written
          back. *)

val create : ?hash_sets:bool -> size_bytes:int -> line_bytes:int -> ways:int -> unit -> t
(** Raises [Invalid_argument] unless sizes are positive, [line_bytes] a
    power of two, and the geometry yields at least one set.

    [hash_sets] (default false) XOR-folds the upper line-address bits
    into the set index, as many real caches do.  The simulator enables it
    to avoid systematic set aliasing: the customized layouts make array
    strides exact multiples of [num_mcs * line_bytes] by construction,
    which on the scaled-down caches would otherwise alias whole columns
    into one set. *)

val line_bytes : t -> int

val sets : t -> int

val line_addr : t -> int -> int
(** Base address of the line containing a byte address. *)

val access : t -> addr:int -> write:bool -> result
(** Looks up [addr]; on a miss the line is filled (allocate-on-write).
    Writes mark the line dirty. *)

val probe : t -> addr:int -> bool
(** Lookup without any state change. *)

val invalidate : t -> addr:int -> bool
(** Drops the line if present; returns whether it was dirty. *)

val clear : t -> unit

val stats : t -> int * int
(** [(hits, misses)] since creation or the last [clear]. *)
