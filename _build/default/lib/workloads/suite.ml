let all =
  [
    Wupwise.app;
    Swim.app;
    Mgrid.app;
    Applu.app;
    Galgel.app;
    Apsi.app;
    Gafort.app;
    Fma3d.app;
    Art.app;
    Ammp.app;
    Hpccg.app;
    Minighost.app;
    Minimd.app;
  ]

let by_name name = List.find (fun (a : App.t) -> String.equal a.App.name name) all

let names = List.map (fun (a : App.t) -> a.App.name) all
