module Vec = Affine.Vec
module Matrix = Affine.Matrix
module Ast = Lang.Ast
module Diag = Lang.Diag
module Span = Lang.Span
module Analysis = Lang.Analysis

let decl_span (d : Transform.decision) =
  d.Transform.info.Analysis.decl.Ast.decl_span

let name_of (d : Transform.decision) =
  d.Transform.info.Analysis.decl.Ast.name

(* V001: the layout transformation must be a bijection of the data space,
   i.e. |det U| = 1. *)
let check_unimodular diags (d : Transform.decision) =
  if d.Transform.optimized then begin
    let u = d.Transform.layout.Layout.u in
    if not (Matrix.is_unimodular u) then
      diags :=
        Diag.error ~code:"V001" (decl_span d)
          (Printf.sprintf "layout matrix for %s is not unimodular (det = %d)"
             (name_of d) (Matrix.det u))
        :: !diags
  end

(* V002: re-derive what the solver claimed.  The solution row g must be
   row v of U, must solve the system of every reference counted as
   satisfied, and the satisfied weight must add up. *)
let check_solution diags (s : Transform.solved) =
  match s.Transform.s_outcome with
  | Transform.Kept _ -> ()
  | Transform.Solved sol ->
    let span = s.Transform.s_info.Analysis.decl.Ast.decl_span in
    let name = s.Transform.s_info.Analysis.decl.Ast.name in
    let g = sol.Data_to_core.g in
    if Matrix.row sol.Data_to_core.u_matrix Transform.v_dim <> g then
      diags :=
        Diag.error ~code:"V002" span
          (Printf.sprintf
             "row %d of %s's layout matrix is not the data-partition vector g"
             Transform.v_dim name)
        :: !diags;
    let recomputed =
      List.fold_left
        (fun acc (r : Data_to_core.weighted_ref) ->
          if Data_to_core.satisfies g r.Data_to_core.access ~u:r.Data_to_core.u
          then acc + r.Data_to_core.weight
          else acc)
        0 s.Transform.s_refs
    in
    if recomputed <> sol.Data_to_core.satisfied_weight then
      diags :=
        Diag.error ~code:"V002" span
          (Printf.sprintf
             "g for %s satisfies reference weight %d, solver claimed %d"
             name recomputed sol.Data_to_core.satisfied_weight)
        :: !diags

let rec perm_tables_of_expr acc = function
  | Layout.D _ -> acc
  | Layout.Div (e, _) | Layout.Mod (e, _) -> perm_tables_of_expr acc e
  | Layout.Perm (e, t) -> perm_tables_of_expr (t :: acc) e

let perm_tables (l : Layout.t) =
  Array.fold_left
    (fun acc (od : Layout.out_dim) -> perm_tables_of_expr acc od.Layout.expr)
    [] l.Layout.out

let is_permutation t =
  let n = Array.length t in
  let seen = Array.make n false in
  Array.for_all
    (fun v ->
      v >= 0 && v < n
      &&
      if seen.(v) then false
      else begin
        seen.(v) <- true;
        true
      end)
    t

(* V003: every home table must be a permutation (the δ-skip relocates
   blocks, it must not alias them), and all layouts must agree on the
   table because the rewrite emits a single __home array. *)
let check_home_tables diags decisions =
  let first = ref None in
  List.iter
    (fun (d : Transform.decision) ->
      List.iter
        (fun t ->
          if not (is_permutation t) then
            diags :=
              Diag.error ~code:"V003" (decl_span d)
                (Printf.sprintf "home table for %s is not a permutation of 0..%d"
                   (name_of d)
                   (Array.length t - 1))
              :: !diags;
          match !first with
          | None -> first := Some (name_of d, t)
          | Some (first_name, t0) ->
            if t <> t0 then
              diags :=
                Diag.error ~code:"V003" (decl_span d)
                  (Printf.sprintf
                     "home table for %s differs from %s's; a single __home \
                      array cannot serve both"
                     (name_of d) first_name)
                :: !diags)
        (perm_tables d.Transform.layout))
    decisions

(* Sampled original index vectors: all corners plus the center point. *)
let sample_indices extents =
  let rank = Array.length extents in
  if rank = 0 || Array.exists (fun e -> e <= 0) extents then []
  else begin
    let corners = ref [] in
    let n = 1 lsl rank in
    for mask = 0 to n - 1 do
      let v =
        Array.init rank (fun i ->
            if mask land (1 lsl i) <> 0 then extents.(i) - 1 else 0)
      in
      corners := v :: !corners
    done;
    let center = Array.map (fun e -> e / 2) extents in
    (* dedupe (corners collapse when an extent is 1) *)
    List.sort_uniq compare (center :: !corners)
  end

(* V004: sampled indices must land inside the (padded) allocation, and
   distinct indices at distinct offsets — offset_of_index is injective. *)
let check_layout_bounds diags (d : Transform.decision) =
  if d.Transform.optimized then begin
    let l = d.Transform.layout in
    let size = Layout.size_elems l in
    let seen = Hashtbl.create 32 in
    List.iter
      (fun a ->
        match Layout.offset_of_index l a with
        | off ->
          if off < 0 || off >= size then
            diags :=
              Diag.error ~code:"V004" (decl_span d)
                (Printf.sprintf
                   "%s[%s] maps to offset %d outside the %d-element allocation"
                   (name_of d)
                   (String.concat ","
                      (Array.to_list (Array.map string_of_int a)))
                   off size)
              :: !diags
          else begin
            match Hashtbl.find_opt seen off with
            | Some b when b <> a ->
              diags :=
                Diag.error ~code:"V004" (decl_span d)
                  (Printf.sprintf
                     "layout for %s is not injective: two sampled indices \
                      share offset %d"
                     (name_of d) off)
                :: !diags
            | _ -> Hashtbl.replace seen off a
          end
        | exception Invalid_argument _ ->
          diags :=
            Diag.error ~code:"V004" (decl_span d)
              (Printf.sprintf "layout for %s rejects an in-bounds index"
                 (name_of d))
            :: !diags)
      (sample_indices l.Layout.orig_extents)
  end

(* V005: threads and mesh nodes must be in bijection under the cluster
   enumeration (footnote 5) — the layout's chunk arithmetic relies on it. *)
let check_cluster diags (cfg : Customize.config) =
  let cl = cfg.Customize.cluster and topo = cfg.Customize.topo in
  let n = Cluster.num_cores cl in
  let ok = ref true in
  (try
     for t = 0 to n - 1 do
       let node = Cluster.node_of_thread cl topo t in
       if Cluster.thread_of_node cl topo node <> t then ok := false
     done
   with _ -> ok := false);
  if not !ok then
    diags :=
      Diag.error ~code:"V005" Span.dummy
        (Printf.sprintf "cluster map %s is not a thread/node bijection on %dx%d"
           cl.Cluster.name cl.Cluster.width cl.Cluster.height)
      :: !diags

(* --- V006: sampled semantic equivalence ------------------------------- *)

(* Evaluate an expression under an environment of iterator/parameter
   bindings.  Loads resolve through [resolve] — index-array values are
   not modelled, so both sides resolve them identically (to 0), which
   still exercises all the affine arithmetic around them. *)
let rec eval_expr ~resolve env = function
  | Ast.Int n -> n
  | Ast.Var x -> ( match List.assoc_opt x env with Some v -> v | None -> 0)
  | Ast.Neg a -> -eval_expr ~resolve env a
  | Ast.Add (a, b) -> eval_expr ~resolve env a + eval_expr ~resolve env b
  | Ast.Sub (a, b) -> eval_expr ~resolve env a - eval_expr ~resolve env b
  | Ast.Mul (a, b) -> eval_expr ~resolve env a * eval_expr ~resolve env b
  | Ast.Div (a, b) ->
    let d = eval_expr ~resolve env b in
    if d = 0 then 0 else eval_expr ~resolve env a / d
  | Ast.Mod (a, b) ->
    let d = eval_expr ~resolve env b in
    if d = 0 then 0 else eval_expr ~resolve env a mod d
  | Ast.Load r ->
    resolve r.Ast.array (List.map (eval_expr ~resolve env) r.Ast.subs)

exception Home_index_out_of_range of int

let resolve_orig _array _subs = 0

let resolve_trans ~home array subs =
  if String.equal array "__home" then begin
    match (home, subs) with
    | Some t, [ x ] ->
      if x < 0 || x >= Array.length t then raise (Home_index_out_of_range x)
      else t.(x)
    | _ -> 0
  end
  else 0

type equiv_ctx = {
  diags : Diag.t list ref;
  decision_of : string -> Transform.decision option;
  home : int array option;
  mutable reported : Span.t list;  (* one diagnostic per source reference *)
}

let report ctx span msg =
  if not (List.mem span ctx.reported) then begin
    ctx.reported <- span :: ctx.reported;
    ctx.diags := Diag.error ~code:"V006" span msg :: !(ctx.diags)
  end

(* Check one statement-level reference pair at one sampled iteration:
   the transformed subscripts, flattened row-major over the transformed
   extents, must equal what offset_of_index predicts for the original
   index vector. *)
let check_ref ctx env (ro : Ast.ref_) (rt : Ast.ref_) =
  let a =
    Array.of_list (List.map (eval_expr ~resolve:resolve_orig env) ro.Ast.subs)
  in
  match ctx.decision_of ro.Ast.array with
  | Some d when d.Transform.optimized ->
    let l = d.Transform.layout in
    let in_bounds =
      Array.length a = Array.length l.Layout.orig_extents
      && Array.for_all2 (fun v e -> v >= 0 && v < e) a l.Layout.orig_extents
    in
    if in_bounds then begin
      match
        List.map (eval_expr ~resolve:(resolve_trans ~home:ctx.home) env)
          rt.Ast.subs
      with
      | subs' ->
        let expected = Layout.offset_of_index l a in
        let actual =
          List.fold_left2
            (fun acc v (od : Layout.out_dim) -> (acc * od.Layout.extent) + v)
            0 subs'
            (Array.to_list l.Layout.out)
        in
        if actual <> expected then
          report ctx ro.Ast.ref_span
            (Printf.sprintf
               "transformed reference to %s disagrees with its layout at \
                index [%s]: subscripts give offset %d, layout says %d"
               ro.Ast.array
               (String.concat "," (Array.to_list (Array.map string_of_int a)))
               actual expected)
      | exception Home_index_out_of_range x ->
        report ctx ro.Ast.ref_span
          (Printf.sprintf "reference to %s indexes __home out of range (%d)"
             ro.Ast.array x)
      | exception Invalid_argument _ ->
        report ctx ro.Ast.ref_span
          (Printf.sprintf
             "transformed reference to %s has %d subscripts, layout has %d \
              dimensions"
             ro.Ast.array
             (List.length rt.Ast.subs)
             (Array.length l.Layout.out))
    end
  | _ ->
    (* untransformed array: subscripts must evaluate identically *)
    let b =
      List.map (eval_expr ~resolve:(resolve_trans ~home:ctx.home) env) rt.Ast.subs
    in
    if Array.to_list a <> b then
      report ctx ro.Ast.ref_span
        (Printf.sprintf "reference to untransformed array %s was rewritten"
           ro.Ast.array)

let structure_mismatch ctx span =
  report ctx span "transformed program structure diverges from the original"

(* Walk original and transformed expressions in lockstep; references are
   checked where the trees align.  Subscript-internal loads (index
   arrays) are not paired — both evaluators resolve them to 0. *)
let rec walk_expr ctx env o t =
  match (o, t) with
  | Ast.Int _, Ast.Int _ | Ast.Var _, Ast.Var _ -> ()
  | Ast.Neg a, Ast.Neg a' -> walk_expr ctx env a a'
  | Ast.Add (a, b), Ast.Add (a', b')
  | Ast.Sub (a, b), Ast.Sub (a', b')
  | Ast.Mul (a, b), Ast.Mul (a', b')
  | Ast.Div (a, b), Ast.Div (a', b')
  | Ast.Mod (a, b), Ast.Mod (a', b') ->
    walk_expr ctx env a a';
    walk_expr ctx env b b'
  | Ast.Load ro, Ast.Load rt -> check_ref ctx env ro rt
  | _ -> ()

(* Three sampled values per loop level: first, middle, last iteration. *)
let loop_samples lo hi =
  if lo > hi then []
  else List.sort_uniq compare [ lo; (lo + hi) / 2; hi ]

let rec walk_stmt ctx env o t =
  match (o, t) with
  | Ast.Assign (ro, eo), Ast.Assign (rt, et) ->
    check_ref ctx env ro rt;
    walk_expr ctx env eo et
  | Ast.Loop lo_, Ast.Loop lt ->
    if lo_.Ast.index <> lt.Ast.index then
      structure_mismatch ctx lo_.Ast.loop_span
    else begin
      let lo = eval_expr ~resolve:resolve_orig env lo_.Ast.lo in
      let hi = eval_expr ~resolve:resolve_orig env lo_.Ast.hi in
      List.iter
        (fun v ->
          let env = (lo_.Ast.index, v) :: env in
          walk_body ctx env lo_.Ast.loop_span lo_.Ast.body lt.Ast.body)
        (loop_samples lo hi)
    end
  | Ast.If co, Ast.If ct ->
    walk_expr ctx env co.Ast.lhs ct.Ast.lhs;
    walk_expr ctx env co.Ast.rhs ct.Ast.rhs;
    walk_body ctx env co.Ast.cond_span co.Ast.then_ ct.Ast.then_;
    walk_body ctx env co.Ast.cond_span co.Ast.else_ ct.Ast.else_
  | (Ast.Assign _ | Ast.Loop _ | Ast.If _), _ ->
    structure_mismatch ctx (Ast.span_of_stmt o)

and walk_body ctx env span o t =
  if List.length o <> List.length t then structure_mismatch ctx span
  else List.iter2 (walk_stmt ctx env) o t

let check_equivalence diags report_ (original : Ast.program)
    (transformed : Ast.program) =
  let decision_of name =
    List.find_opt
      (fun (d : Transform.decision) -> String.equal (name_of d) name)
      report_.Transform.decisions
  in
  let home =
    List.fold_left
      (fun acc (d : Transform.decision) ->
        match acc with
        | Some _ -> acc
        | None -> (
          match perm_tables d.Transform.layout with t :: _ -> Some t | [] -> acc))
      None report_.Transform.decisions
  in
  let ctx = { diags; decision_of; home; reported = [] } in
  let env = original.Ast.params in
  if List.length original.Ast.nests <> List.length transformed.Ast.nests then
    structure_mismatch ctx Span.dummy
  else
    List.iter2 (walk_stmt ctx env) original.Ast.nests transformed.Ast.nests

(* --- V007: emitted-C access replay ------------------------------------ *)

(* The C back end flattens every array row-major over the transformed
   declaration's (padded) extents.  Replay that addressing convention on
   the transformed program and compare, access by access and thread by
   thread, with the trace the compiler intends: the original program under
   [Layout.offset_of_index].  V006 checks the subscript algebra at sampled
   points; this replays whole nests through the interpreter, so the
   parallel chunking, loop structure and write bits are compared too. *)

(* A synthetic address space: array id in the high bits, flat offset in
   the low bits, so both traces agree on a name <-> base correspondence
   without modelling real allocation. *)
let id_shift = 40

(* [__home] reads appear only in the transformed trace (the rewrite
   introduces the lookup); tag them so they can be dropped before the
   comparison. *)
let home_marker = 1 lsl 60

let row_major extents idx =
  let off = ref 0 in
  Array.iteri
    (fun i e ->
      off := (!off * e) + if i < Array.length idx then idx.(i) else 0)
    extents;
  !off

let decl_extents (p : Ast.program) =
  List.map
    (fun (d : Ast.decl) ->
      ( d.Ast.name,
        Array.of_list
          (List.map
             (eval_expr ~resolve:resolve_orig p.Ast.params)
             d.Ast.extents) ))
    p.Ast.decls

(* Cap on element-wise comparison per thread per nest; stream lengths are
   always compared in full. *)
let replay_cap = 1 lsl 16

let check_codegen ~report:(report_ : Transform.report)
    ~(original : Ast.program) ~(transformed : Ast.program) =
  let decision_of name =
    List.find_opt
      (fun (d : Transform.decision) -> String.equal (name_of d) name)
      report_.Transform.decisions
  in
  let home =
    List.fold_left
      (fun acc (d : Transform.decision) ->
        match acc with
        | Some _ -> acc
        | None -> (
          match perm_tables d.Transform.layout with t :: _ -> Some t | [] -> acc))
      None report_.Transform.decisions
  in
  let ids = Hashtbl.create 16 in
  List.iteri
    (fun i (d : Ast.decl) -> Hashtbl.replace ids d.Ast.name i)
    transformed.Ast.decls;
  let base name =
    (match Hashtbl.find_opt ids name with Some i -> i | None -> Hashtbl.length ids)
    lsl id_shift
  in
  let name_of_addr a =
    let id = a lsr id_shift in
    match
      List.find_opt
        (fun (d : Ast.decl) -> Hashtbl.find_opt ids d.Ast.name = Some id)
        transformed.Ast.decls
    with
    | Some d -> Printf.sprintf "%s+%d" d.Ast.name (a land ((1 lsl id_shift) - 1))
    | None -> string_of_int a
  in
  let trans_extents = decl_extents transformed in
  let orig_extents = decl_extents original in
  (* what the emitted C computes: row-major over the padded declaration *)
  let addr_c name idx =
    if String.equal name "__home" then home_marker
    else
      match List.assoc_opt name trans_extents with
      | Some e -> base name + row_major e idx
      | None -> base name
  in
  (* what the compiler intends: the customized layout's offset *)
  let addr_intended name idx =
    match decision_of name with
    | Some d when d.Transform.optimized ->
      base name + Layout.offset_of_index d.Transform.layout idx
    | _ -> (
      match List.assoc_opt name orig_extents with
      | Some e -> base name + row_major e idx
      | None -> base name)
  in
  let lookup_home name idx =
    if String.equal name "__home" then
      match (home, idx) with
      | Some t, [| x |] when x >= 0 && x < Array.length t -> t.(x)
      | _ -> 0
    else 0
  in
  (* a handful of threads exercises the parfor chunk arithmetic; the
     trace length itself does not depend on the thread count *)
  let threads = 4 in
  let diags = ref [] in
  let nest_span k =
    match List.nth_opt original.Ast.nests k with
    | Some s -> Ast.span_of_stmt s
    | None -> Span.dummy
  in
  let not_home a = Lang.Interp.addr_of_access a lsr 1 <> home_marker lsr 1 in
  (match
     ( Lang.Interp.trace ~threads ~addr_of:addr_intended original,
       Lang.Interp.trace ~threads ~addr_of:addr_c ~index_lookup:lookup_home
         transformed )
   with
  | exception e ->
    diags :=
      [
        Diag.error ~code:"V007" Span.dummy
          ("codegen replay failed to trace: " ^ Printexc.to_string e);
      ]
  | want, got ->
    if List.length want <> List.length got then
      diags :=
        [
          Diag.error ~code:"V007" Span.dummy
            (Printf.sprintf
               "emitted program has %d top-level nests, original has %d"
               (List.length got) (List.length want));
        ]
    else
      List.iteri
        (fun k (pw, pg) ->
          if !diags = [] then begin
            let pg =
              Array.map
                (fun s -> Array.of_seq (Seq.filter not_home (Array.to_seq s)))
                pg
            in
            Array.iteri
              (fun t sw ->
                if !diags = [] then begin
                  let sg = pg.(t) in
                  if Array.length sw <> Array.length sg then
                    diags :=
                      Diag.error ~code:"V007" (nest_span k)
                        (Printf.sprintf
                           "emitted C replays %d accesses on thread %d of nest \
                            %d, the compiler's layout implies %d"
                           (Array.length sg) t k (Array.length sw))
                      :: !diags
                  else begin
                    let n = min (Array.length sw) replay_cap in
                    let i = ref 0 in
                    while !i < n && !diags = [] do
                      if sw.(!i) <> sg.(!i) then begin
                        let dir a =
                          if Lang.Interp.is_write a then "write" else "read"
                        in
                        diags :=
                          Diag.error ~code:"V007" (nest_span k)
                            (Printf.sprintf
                               "emitted C diverges from the chosen layout at \
                                access %d of thread %d, nest %d: C performs a \
                                %s of %s, the layout implies a %s of %s"
                               !i t k
                               (dir sg.(!i))
                               (name_of_addr (Lang.Interp.addr_of_access sg.(!i)))
                               (dir sw.(!i))
                               (name_of_addr (Lang.Interp.addr_of_access sw.(!i))))
                          :: !diags
                      end;
                      incr i
                    done
                  end
                end)
              pw
          end)
        (List.combine want got));
  List.rev !diags

let run ~cfg ~solved ~report ~original ~transformed =
  let diags = ref [] in
  check_cluster diags cfg;
  List.iter (check_solution diags) solved;
  List.iter
    (fun d ->
      check_unimodular diags d;
      check_layout_bounds diags d)
    report.Transform.decisions;
  check_home_tables diags report.Transform.decisions;
  check_equivalence diags report original transformed;
  List.rev !diags
