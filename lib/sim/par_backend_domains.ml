(* OCaml >= 5 backend: one domain per worker (see par_backend.mli; this
   file becomes par_backend.ml via a dune copy rule). *)

let available = true

let cpu_count () = Domain.recommended_domain_count ()

let map_workers ~workers f xs =
  let n = Array.length xs in
  let w = max 1 (min workers n) in
  if w <= 1 then Array.map f xs
  else begin
    (* worker k owns indices k, k+w, k+2w, ... ; the calling domain is
       worker 0, so w workers cost w-1 spawns *)
    let strip k =
      let out = ref [] in
      let i = ref k in
      while !i < n do
        out := (!i, f xs.(!i)) :: !out;
        i := !i + w
      done;
      !out
    in
    let spawned =
      Array.init (w - 1) (fun k -> Domain.spawn (fun () -> strip (k + 1)))
    in
    let own = try Ok (strip 0) with e -> Error e in
    (* join every domain before propagating any failure *)
    let joined =
      Array.map (fun d -> try Ok (Domain.join d) with e -> Error e) spawned
    in
    let results = Array.make n None in
    let place = function
      | Ok pairs -> List.iter (fun (i, r) -> results.(i) <- Some r) pairs
      | Error _ -> ()
    in
    place own;
    Array.iter place joined;
    let raise_first = function Error e -> raise e | Ok _ -> () in
    raise_first own;
    Array.iter raise_first joined;
    Array.map (function Some r -> r | None -> assert false) results
  end
