(* Holder sets as pairs of 62-bit words: word 0 covers nodes 0..61, word 1
   nodes 62..123.  124 nodes is ample for every configuration evaluated. *)

type t = { nodes : int; table : (int, int * int) Hashtbl.t }

let bits_per_word = 62

let create ~nodes =
  if nodes <= 0 || nodes > 2 * bits_per_word then invalid_arg "Directory.create";
  { nodes; table = Hashtbl.create 4096 }

let mask node =
  if node < bits_per_word then (1 lsl node, 0) else (0, 1 lsl (node - bits_per_word))

let add_holder d ~line ~node =
  if node < 0 || node >= d.nodes then invalid_arg "Directory.add_holder";
  let m0, m1 = mask node in
  let w0, w1 = Option.value (Hashtbl.find_opt d.table line) ~default:(0, 0) in
  Hashtbl.replace d.table line (w0 lor m0, w1 lor m1)

let remove_holder d ~line ~node =
  match Hashtbl.find_opt d.table line with
  | None -> ()
  | Some (w0, w1) ->
    let m0, m1 = mask node in
    let w0 = w0 land lnot m0 and w1 = w1 land lnot m1 in
    if w0 = 0 && w1 = 0 then Hashtbl.remove d.table line
    else Hashtbl.replace d.table line (w0, w1)

let holders d ~line =
  match Hashtbl.find_opt d.table line with
  | None -> []
  | Some (w0, w1) ->
    let acc = ref [] in
    for n = d.nodes - 1 downto 0 do
      let m0, m1 = mask n in
      if w0 land m0 <> 0 || w1 land m1 <> 0 then acc := n :: !acc
    done;
    !acc

let closest_holder d ~line ?(excluding = -1) ~distance () =
  let ns = List.filter (fun n -> n <> excluding) (holders d ~line) in
  List.fold_left
    (fun b n ->
      match b with
      | None -> Some n
      | Some m -> if distance n < distance m then Some n else Some m)
    None ns

let clear d = Hashtbl.reset d.table
