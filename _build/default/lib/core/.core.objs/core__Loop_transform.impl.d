lib/core/loop_transform.ml: Affine Array Fun Lang List String
