type result = Hit | Miss of { evicted : int option; evicted_dirty : bool }

type t = {
  line_bytes : int;
  line_shift : int;
  num_sets : int;
  hash_sets : bool;
  ways : int;
  tags : int array;  (** [(set * ways) + way] -> line address, or -1 *)
  dirty : bool array;
  last_use : int array;
  mutable tick : int;
  mutable hits : int;
  mutable misses : int;
}

let is_pow2 n = n > 0 && n land (n - 1) = 0

let log2 n =
  let rec go acc n = if n = 1 then acc else go (acc + 1) (n lsr 1) in
  go 0 n

let create ?(hash_sets = false) ~size_bytes ~line_bytes ~ways () =
  if size_bytes <= 0 || ways <= 0 || not (is_pow2 line_bytes) then
    invalid_arg "Sacache.create";
  let lines = size_bytes / line_bytes in
  let num_sets = lines / ways in
  if num_sets <= 0 then invalid_arg "Sacache.create: geometry too small";
  {
    line_bytes;
    line_shift = log2 line_bytes;
    num_sets;
    hash_sets;
    ways;
    tags = Array.make (num_sets * ways) (-1);
    dirty = Array.make (num_sets * ways) false;
    last_use = Array.make (num_sets * ways) 0;
    tick = 0;
    hits = 0;
    misses = 0;
  }

let line_bytes c = c.line_bytes

let sets c = c.num_sets

let line_addr c addr = addr land lnot (c.line_bytes - 1)

let set_of c line =
  let idx = line lsr c.line_shift in
  let idx = if c.hash_sets then idx lxor (idx / c.num_sets) lxor (idx / (c.num_sets * c.num_sets)) else idx in
  ((idx mod c.num_sets) + c.num_sets) mod c.num_sets

let find c line =
  let s = set_of c line in
  let base = s * c.ways in
  let rec go w =
    if w = c.ways then None
    else if c.tags.(base + w) = line then Some (base + w)
    else go (w + 1)
  in
  go 0

let access c ~addr ~write =
  c.tick <- c.tick + 1;
  let line = line_addr c addr in
  match find c line with
  | Some slot ->
    c.hits <- c.hits + 1;
    c.last_use.(slot) <- c.tick;
    if write then c.dirty.(slot) <- true;
    Hit
  | None ->
    c.misses <- c.misses + 1;
    let s = set_of c line in
    let base = s * c.ways in
    (* victim: an invalid way, else the LRU way *)
    let victim = ref base in
    for w = 0 to c.ways - 1 do
      let i = base + w in
      if c.tags.(i) = -1 then begin
        if c.tags.(!victim) <> -1 then victim := i
      end
      else if c.tags.(!victim) <> -1 && c.last_use.(i) < c.last_use.(!victim)
      then victim := i
    done;
    let v = !victim in
    let evicted = if c.tags.(v) <> -1 then Some c.tags.(v) else None in
    let evicted_dirty = c.tags.(v) <> -1 && c.dirty.(v) in
    c.tags.(v) <- line;
    c.dirty.(v) <- write;
    c.last_use.(v) <- c.tick;
    Miss { evicted; evicted_dirty }

let probe c ~addr = Option.is_some (find c (line_addr c addr))

let invalidate c ~addr =
  match find c (line_addr c addr) with
  | None -> false
  | Some slot ->
    let was_dirty = c.dirty.(slot) in
    c.tags.(slot) <- -1;
    c.dirty.(slot) <- false;
    was_dirty

let clear c =
  Array.fill c.tags 0 (Array.length c.tags) (-1);
  Array.fill c.dirty 0 (Array.length c.dirty) false;
  Array.fill c.last_use 0 (Array.length c.last_use) 0;
  c.tick <- 0;
  c.hits <- 0;
  c.misses <- 0

let stats c = (c.hits, c.misses)
