(** The ammp application model; see the implementation header for what it
    models and which of the paper's per-app characteristics it carries. *)

val app : App.t
