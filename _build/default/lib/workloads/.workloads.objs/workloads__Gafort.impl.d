lib/workloads/gafort.ml: App
