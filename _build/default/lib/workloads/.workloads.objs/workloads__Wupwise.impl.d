lib/workloads/wupwise.ml: App
