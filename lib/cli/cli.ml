open Cmdliner

let ok = 0

let user_error = 1

let internal_error = 2

let guard ~name f =
  try f ()
  with e ->
    Printf.eprintf "%s: internal error: %s\n" name (Printexc.to_string e);
    if Printexc.backtrace_status () then
      prerr_string (Printexc.get_backtrace ());
    internal_error

let l2 =
  Arg.(
    value & opt string "private"
    & info [ "l2" ] ~docv:"ORG" ~doc:"L2 organization: private or shared.")

let interleave =
  Arg.(
    value & opt string "line"
    & info [ "interleave" ] ~docv:"GRAN" ~doc:"Interleaving: line or page.")

let policy =
  Arg.(
    value & opt string "hardware"
    & info [ "policy" ] ~docv:"POL"
        ~doc:"Page policy: hardware, first-touch or mc-aware.")

let mapping =
  Arg.(
    value & opt string ""
    & info [ "mapping" ] ~docv:"MAP"
        ~doc:
          "L2-to-MC mapping override: M1, M2, or a controller count (8, \
           16).  Default: the platform's own mapping (M1 on the presets).")

let platform =
  Arg.(
    value & opt string ""
    & info [ "platform" ] ~docv:"PRESET|FILE"
        ~doc:
          "Platform description: a named preset (mesh8x8-mc4, mesh8x8-mc8, \
           mesh8x8-mc16, mesh8x8-m2, or the hierarchical chiplet2x2-mc4 \
           and chiplet2x2-mc8 — a 2x2 grid of 4x4-core chiplets joined by \
           12-cycle 8-byte inter-chiplet links) or a platform JSON file.  \
           Default: mesh8x8-mc4, the Table 1 machine.  Overrides \
           --width/--height; --mapping still re-maps it.")

let width =
  Arg.(value & opt int 8 & info [ "width" ] ~docv:"W" ~doc:"Mesh width.")

let height =
  Arg.(value & opt int 8 & info [ "height" ] ~docv:"H" ~doc:"Mesh height.")

let domains =
  Arg.(
    value & opt int 1
    & info [ "domains" ] ~docv:"N"
        ~doc:
          "Simulate with N worker domains (parallel engine; requires an \
           OCaml 5 build).  Results are byte-identical to --domains 1 for \
           every N; workloads the partitioner cannot prove decomposable \
           fall back to the sequential engine with a printed reason.")

let check_domains ~available n =
  if n < 1 then
    Error (Printf.sprintf "--domains must be at least 1 (got %d)" n)
  else if n > 1 && not available then
    Error
      (Printf.sprintf
         "--domains %d needs OCaml 5 domains; this binary was built on %s \
          (sequential only, use --domains 1)"
         n Sys.ocaml_version)
  else Ok ()
