(** Access-trace files.

    Serializes the per-thread access streams the interpreter produces so
    they can be inspected, diffed across layouts, or replayed by external
    tools.  The format is line-oriented text:

    {v
    # offchip trace v1
    phase <n-threads>
    t <thread> <n-accesses>
    <vaddr> R|W
    ...
    v}

    A v2 file carries the access-site id of each reference as a third
    column ([<vaddr> R|W <site>]) — the side band that ties a dynamic
    access back to its {!Lang.Sites} entry.  [simulate --dump-trace FILE]
    writes one; {!load} reads either version back into the exact phases,
    so a round trip is the identity. *)

val dump : ?sites:int array array list -> string -> Lang.Interp.phase list -> unit
(** Writes the phases to a path; with [sites] (per-phase site-id streams,
    index-parallel to the phases as in {!Engine.job}) writes a v2 file
    tagging each access.  Raises [Sys_error] on IO failure. *)

val load : string -> Lang.Interp.phase list
(** Reads a trace file (either version) back, discarding site tags.
    Raises [Failure] on a malformed file. *)

val load_tagged : string -> (Lang.Interp.phase * int array array) list
(** Like {!load} but keeps the per-access site ids (all [-1] for a v1
    file), shaped for {!Engine.job}'s [phases]/[site_streams]. *)

val total_accesses : Lang.Interp.phase list -> int
