(** End-to-end experiment runner: compile (optionally) with the layout
    pass, lay the arrays out in virtual memory, generate the access
    trace, and simulate it. *)

type prepared = {
  program : Lang.Ast.program;  (** original program *)
  analysis : Lang.Analysis.t;
  report : Core.Transform.report option;  (** [Some] when optimized *)
  job : Engine.job;
  bases : (string * int) list;  (** virtual base address of each array *)
  desired_mc : int -> int option;
      (** compiler page hints for the MC-aware policy: [Some m] for pages
          of layout-optimized arrays, [None] (OS decides by first touch)
          for everything else *)
  sites : Lang.Sites.t;
      (** access-site table of the program; the job's site streams (when
          prepared with [~attr:true]) index into it *)
}

val prepare :
  Config.t ->
  optimized:bool ->
  ?threads:int ->
  ?core_offset:int ->
  ?vaddr_base:int ->
  ?name:string ->
  ?warmup_phases:int ->
  ?index_lookup:(string -> int array -> int) ->
  ?profile:(string -> (Affine.Vec.t * Affine.Vec.t) list) ->
  ?attr:bool ->
  Lang.Ast.program ->
  prepared
(** [threads] defaults to all cores × threads-per-core; [core_offset]
    shifts the thread→core binding (multiprogrammed runs).  Array bases
    are aligned to [num_mcs] interleaving units {e and} to [num_mcs]
    pages — the paper's base-address padding — starting at
    [vaddr_base].

    [attr] (default false) generates the trace with per-access site-id
    side streams so the engine can attribute off-chip traffic (see
    {!attr_for}); plain preparation leaves the job untagged. *)

val combined_hints : prepared list -> int -> int option
(** Page hints of several prepared jobs, first match wins — sound because
    their virtual ranges are disjoint.  This is what {!run_many} passes
    to the engine; exposed for callers (the consolidation server) that
    build their own job lists. *)

val attr_for : Config.t -> prepared -> Obs.Attr.t
(** An attribution aggregator shaped for [cfg]'s platform (controllers ×
    banks) and the prepared program's site table — pass it to {!run_many}
    as [~attr].  Aggregators of separate runs compose with
    {!Obs.Attr.merge} when their site tables match. *)

val confine : Config.t -> cluster:int -> prepared -> prepared
(** Rebind the prepared job's threads onto the cores of one cluster
    (ascending node ids, threads-per-core consecutive), so replicated
    jobs become partition-confined for {!Par_engine}.  With more threads
    than cluster cores × threads-per-core, the binding wraps. *)

val prepare_replicas :
  Config.t ->
  optimized:bool ->
  ?threads:int ->
  ?name:string ->
  ?warmup_phases:int ->
  ?index_lookup:(string -> int array -> int) ->
  ?profile:(string -> (Affine.Vec.t * Affine.Vec.t) list) ->
  ?attr:bool ->
  Lang.Ast.program ->
  prepared list
(** One {!confine}d copy of the program per cluster, on disjoint 256 MB
    virtual slices — the canonical decomposable workload: under page
    interleaving with the first-touch policy, {!Par_engine.plan} proves
    it parallel.  [threads] defaults to one cluster's cores ×
    threads-per-core. *)

val run :
  Config.t ->
  optimized:bool ->
  ?warmup_phases:int ->
  ?index_lookup:(string -> int array -> int) ->
  ?profile:(string -> (Affine.Vec.t * Affine.Vec.t) list) ->
  ?trace:Obs.Trace.t ->
  ?domains:int ->
  ?on_plan:(string -> unit) ->
  Lang.Ast.program ->
  Engine.result
(** Prepare + simulate one program alone on the whole machine.  [trace]
    is handed to {!Engine.run} (request-path spans; default disabled).
    [domains] (default 1) routes through {!Par_engine.run} — the result
    is byte-identical for every value; [on_plan] receives its one-line
    plan description. *)

val run_many :
  ?trace:Obs.Trace.t ->
  ?attr:Obs.Attr.t ->
  ?domains:int ->
  ?on_plan:(string -> unit) ->
  Config.t ->
  jobs:prepared list ->
  Engine.result
(** Simulate several prepared programs concurrently (multiprogrammed
    workloads, Fig. 25).  Their virtual ranges must not overlap — use
    distinct [vaddr_base]s.  [attr] collects off-chip attribution (jobs
    prepared without [~attr:true] land in its unknown row); with several
    tagged jobs, attribute runs separately and compose with
    {!Obs.Attr.merge} instead, since site ids are per-program. *)
