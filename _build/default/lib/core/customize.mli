(** Layout customization (Section 5.3).

    Starting from the Data-to-Core matrix [U] for an array, build the
    final layout that realizes the desired Data-to-MC mapping under the
    hardware's address interleaving:

    - {b Private L2}: strip-mine the data-partition dimension into
      cluster/core coordinates [R(r_v)] and interleave the fastest
      dimension in [k·p]-element chunks, so that consecutive chunks
      rotate over clusters in enumeration order and every off-chip access
      from cluster [j] targets controllers [j·k .. j·k+k-1].
    - {b Shared L2}: first localize on-chip accesses (home bank = owning
      core via [R'(r_v)]), then apply the δ-skip: p-blocks whose mapped
      controller is not adjacent to the desired one are pushed forward,
      trading a small home-bank drift for off-chip locality (localizing
      both perfectly is impossible — Eqs. 4–5).

    Strip-mined extents are padded up to multiples of the strip sizes
    (the paper's intra-array padding), and the simulator aligns array
    bases to [num_mcs·p] elements (base-address padding), which together
    guarantee the chunk-to-controller arithmetic. *)

type l2_kind = Private_l2 | Shared_l2

type config = {
  cluster : Cluster.t;
  topo : Noc.Topology.t;
  placement : Noc.Placement.t;
  l2 : l2_kind;
  p_elems : int;
      (** interleaving unit in elements: L2 line for cache-line
          interleaving, page for page interleaving *)
  elem_bytes : int;
}

val transformed_extents :
  u:Affine.Matrix.t -> extents:int array -> int array * Affine.Vec.t
(** Bounding box of [U] applied to the data space: per-dimension extents
    of [a' = U·a + shift] and the normalizing [shift]. *)

val customize :
  config -> array:string -> extents:int array -> u:Affine.Matrix.t -> v:int -> Layout.t
(** The full customization for one array.  [v] is the data-partition
    dimension (of the transformed space). *)

val allowed_mcs : config -> home_thread:int -> bool array
(** For the shared-L2 δ-skip: which controllers are acceptable for data
    whose home bank is [home_thread]'s node — the desired (cluster)
    controllers plus those adjacent to them.  [C] in Algorithm 1 is the
    complement of this set. *)

val ceil_div : int -> int -> int
