(* Tests for the 13-application suite: every kernel parses, analyzes,
   traces and transforms; per-app characteristics match what the paper
   reports about them. *)

module App = Workloads.App
module Suite = Workloads.Suite
module Profile = Workloads.Profile
module Analysis = Lang.Analysis

let paper_names =
  [
    "wupwise"; "swim"; "mgrid"; "applu"; "galgel"; "apsi"; "gafort"; "fma3d";
    "art"; "ammp"; "hpccg"; "minighost"; "minimd";
  ]

let cfg_private =
  Sim.Config.customize_config (Sim.Config.scaled ())

let test_thirteen_apps () =
  Alcotest.(check int) "13 applications" 13 (List.length Suite.all);
  Alcotest.(check (list string)) "paper's suite (minus equake)" paper_names Suite.names

let test_all_parse_and_analyze () =
  List.iter
    (fun app ->
      let a = Analysis.analyze (App.program app) in
      Alcotest.(check bool)
        (app.App.name ^ " has arrays")
        true
        (List.length a.Analysis.arrays > 0);
      (* every app has at least one parallel affine reference *)
      let has_parallel =
        List.exists
          (fun (info : Analysis.array_info) ->
            List.exists
              (fun (o : Analysis.occurrence) ->
                o.Analysis.par_dim <> None
                && match o.Analysis.kind with
                   | Analysis.Affine_ref _ -> true
                   | Analysis.Indexed_ref -> false)
              info.Analysis.occurrences)
          a.Analysis.arrays
      in
      Alcotest.(check bool) (app.App.name ^ " parallel refs") true has_parallel)
    Suite.all

let test_all_trace () =
  List.iter
    (fun app ->
      let p = App.program app in
      let phases =
        Lang.Interp.trace ~threads:4
          ~addr_of:(fun _ v -> Array.fold_left (fun a x -> (a * 1024) + (x land 1023)) 0 v)
          ~index_lookup:(fun name v -> App.index_lookup app name v)
          p
      in
      let total =
        List.fold_left
          (fun a ph -> a + Array.fold_left (fun a s -> a + Array.length s) 0 ph)
          0 phases
      in
      Alcotest.(check bool) (app.App.name ^ " nonempty trace") true (total > 1000);
      Alcotest.(check bool)
        (app.App.name ^ " warmup phases within range")
        true
        (app.App.warmup_nests < List.length phases))
    Suite.all

let test_all_transform () =
  List.iter
    (fun app ->
      let a = Analysis.analyze (App.program app) in
      let profile arr = Profile.for_transform app a arr in
      let report = Core.Transform.run ~profile cfg_private a in
      Alcotest.(check bool)
        (app.App.name ^ " optimizes some arrays")
        true
        (report.Core.Transform.pct_arrays_optimized > 0.);
      Alcotest.(check bool)
        (app.App.name ^ " satisfies some references")
        true
        (report.Core.Transform.pct_refs_satisfied > 0.))
    Suite.all

let test_index_arrays () =
  (* hpccg and minimd are the indexed-access apps *)
  let has_index app =
    List.exists (fun (d : Lang.Ast.decl) -> d.Lang.Ast.index_array)
      (App.program app).Lang.Ast.decls
  in
  Alcotest.(check bool) "hpccg" true (has_index (Suite.by_name "hpccg"));
  Alcotest.(check bool) "minimd" true (has_index (Suite.by_name "minimd"));
  Alcotest.(check bool) "swim has none" false (has_index (Suite.by_name "swim"))

let test_index_contents_bounded () =
  List.iter
    (fun (name, arr, shape) ->
      let app = Suite.by_name name in
      let a = Analysis.analyze (App.program app) in
      let info = Analysis.array_info a arr in
      let n = info.Analysis.extents.(0) and k = info.Analysis.extents.(1) in
      for i = 0 to n - 1 do
        for z = 0 to k - 1 do
          let v = App.index_lookup app arr [| i; z |] in
          if v < 0 || v >= shape then
            Alcotest.failf "%s.%s[%d][%d] = %d out of range" name arr i z v
        done
      done)
    [ ("hpccg", "COLS", 32768); ("minimd", "NEIGH", 16384) ]

let test_profiles_approximate () =
  (* the banded/cell-sorted index structures fit within the threshold *)
  List.iter
    (fun (name, arr) ->
      let app = Suite.by_name name in
      let a = Analysis.analyze (App.program app) in
      let target =
        List.find
          (fun (info : Analysis.array_info) ->
            List.exists
              (fun (o : Analysis.occurrence) -> o.Analysis.kind = Analysis.Indexed_ref)
              info.Analysis.occurrences)
          a.Analysis.arrays
      in
      let samples = Profile.samples app a target.Analysis.decl.Lang.Ast.name in
      Alcotest.(check bool) (name ^ " has samples") true (List.length samples > 100);
      match Core.Indexed.approximate ~samples with
      | Some (_, inacc) ->
        Alcotest.(check bool)
          (Printf.sprintf "%s.%s approximates (%.2f)" name arr inacc)
          true
          (inacc <= Core.Indexed.default_threshold)
      | None -> Alcotest.fail "expected a fit")
    [ ("hpccg", "XV"); ("minimd", "PX") ]

let test_first_touch_flags () =
  let friendly =
    List.filter_map
      (fun a -> if a.App.first_touch_friendly then Some a.App.name else None)
      Suite.all
  in
  (* Section 6.3: first-touch works only for wupwise, gafort and minimd *)
  Alcotest.(check (list string)) "paper's first-touch apps"
    [ "wupwise"; "gafort"; "minimd" ] friendly

let test_by_name () =
  Alcotest.(check string) "lookup" "apsi" (Suite.by_name "apsi").App.name;
  Alcotest.check_raises "unknown app" Not_found (fun () ->
      ignore (Suite.by_name "equake"))

(* --- the tiled-GEMM generator family --- *)

let test_gemm_generator () =
  let module Gemm = Workloads.Gemm in
  (* the default instance parses, analyzes and has the strip-parallel
     structure the mapping experiments rely on *)
  let app = Suite.by_name "gemm" in
  Alcotest.(check string) "default name" "gemm" app.App.name;
  Alcotest.(check bool) "strips localize A and C: first-touch friendly" true
    app.App.first_touch_friendly;
  let a = Analysis.analyze (App.program app) in
  Alcotest.(check int) "A, B, C" 3 (List.length a.Analysis.arrays);
  (* gemm is a generator, not a suite member: the fixed 13 are unchanged *)
  Alcotest.(check bool) "not in Suite.all" false
    (List.exists (fun (x : App.t) -> String.equal x.App.name "gemm") Suite.all);
  (* knobbed instances carry their knobs in the canonical name *)
  let shaped = Suite.by_name "gemm-n128t8p64" in
  Alcotest.(check string) "canonical name" "gemm-n128t8p64" shaped.App.name;
  (match Gemm.of_name "gemm-n128t4" with
  | Some (Ok app) ->
    Alcotest.(check string) "strip knob optional" "gemm-n128t4" app.App.name
  | Some (Error e) -> Alcotest.fail e
  | None -> Alcotest.fail "gemm-n128t4 is in the family");
  (* shaping to a hierarchical platform picks strips = chiplets x tpc *)
  (match Gemm.for_chiplets ~n:128 ~chiplets:4 () with
  | Ok app -> Alcotest.(check string) "4 chiplets x 16" "gemm-n128t8p64" app.App.name
  | Error e -> Alcotest.fail e);
  Alcotest.(check bool) "non-family names are not claimed" true
    (Gemm.of_name "swim" = None && Gemm.of_name "gemmology" = None)

let test_gemm_bad_knobs () =
  let module Gemm = Workloads.Gemm in
  let expect_error label = function
    | Some (Error e) ->
      Alcotest.(check bool) (label ^ " message non-empty") true
        (String.length e > 0)
    | Some (Ok _) -> Alcotest.failf "%s must be rejected" label
    | None -> Alcotest.failf "%s is in the family" label
  in
  expect_error "tile does not divide n" (Gemm.of_name "gemm-n64t7");
  expect_error "strips do not divide n" (Gemm.of_name "gemm-n64t8p7");
  expect_error "zero tile" (Gemm.of_name "gemm-n64t0");
  (* by_name surfaces the knob error instead of Not_found *)
  (try
     ignore (Suite.by_name "gemm-n64t7");
     Alcotest.fail "bad knobs must raise Invalid_argument"
   with
  | Invalid_argument _ -> ()
  | Not_found -> Alcotest.fail "family names must not fall through to Not_found")

let suite =
  [
    ( "workloads",
      [
        Alcotest.test_case "13 apps" `Quick test_thirteen_apps;
        Alcotest.test_case "parse + analyze" `Quick test_all_parse_and_analyze;
        Alcotest.test_case "trace" `Quick test_all_trace;
        Alcotest.test_case "transform" `Quick test_all_transform;
        Alcotest.test_case "index arrays" `Quick test_index_arrays;
        Alcotest.test_case "index contents bounded" `Quick test_index_contents_bounded;
        Alcotest.test_case "profiles approximate" `Quick test_profiles_approximate;
        Alcotest.test_case "first-touch flags" `Quick test_first_touch_flags;
        Alcotest.test_case "by_name" `Quick test_by_name;
        Alcotest.test_case "gemm generator" `Quick test_gemm_generator;
        Alcotest.test_case "gemm knob validation" `Quick test_gemm_bad_knobs;
      ] );
  ]
