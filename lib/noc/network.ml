type config = { per_hop_latency : int; link_bytes : int }

let default_config = { per_hop_latency = 4; link_bytes = 16 }

type t = {
  topo : Topology.t;
  config : config;
  nodes : int;
  free_at : int array;  (** per link-id: earliest cycle it can accept *)
  link_busy : int array;  (** per link-id: cycles reserved so far *)
  routes : int array array;
      (** memoized XY routes as link-id arrays, indexed [src·nodes + dst];
          a pair is computed from the topology once, on first use ([||]
          marks an unfilled slot — every src ≠ dst route has ≥ 1 link) *)
  mutable busy : int;
}

let create ?(config = default_config) topo =
  let links = Topology.num_link_ids topo in
  let nodes = Topology.nodes topo in
  {
    topo;
    config;
    nodes;
    free_at = Array.make links 0;
    link_busy = Array.make links 0;
    routes = Array.make (nodes * nodes) [||];
    busy = 0;
  }

let route net ~src ~dst =
  let idx = (src * net.nodes) + dst in
  let r = net.routes.(idx) in
  if Array.length r > 0 then r
  else begin
    let r = Topology.link_ids net.topo ~src ~dst in
    net.routes.(idx) <- r;
    r
  end

(* Arrival time only — the allocation-free variant the simulator's event
   loop uses (hop counts are Manhattan distances the caller can memoize;
   the contention component is derivable from the arrival time). *)
let transfer ?on_hop net ~now ~src ~dst ~bytes =
  if src = dst then now
  else begin
    let serialization =
      max 1 ((bytes + net.config.link_bytes - 1) / net.config.link_bytes)
    in
    let route = route net ~src ~dst in
    let t = ref now in
    for k = 0 to Array.length route - 1 do
      let id = Array.unsafe_get route k in
      let start = max !t net.free_at.(id) in
      net.free_at.(id) <- start + serialization;
      net.link_busy.(id) <- net.link_busy.(id) + serialization;
      net.busy <- net.busy + serialization;
      t := start + net.config.per_hop_latency;
      match on_hop with None -> () | Some f -> f ~link:id ~start ~finish:!t
    done;
    (* wormhole pipelining: header latency per hop, body flits pipeline
       behind it and arrive [serialization-1] cycles after the header *)
    !t + serialization - 1
  end

let send ?on_hop net ~now ~src ~dst ~bytes =
  if src = dst then (now, 0, 0)
  else begin
    let serialization =
      max 1 ((bytes + net.config.link_bytes - 1) / net.config.link_bytes)
    in
    let t = transfer ?on_hop net ~now ~src ~dst ~bytes in
    let hops = Topology.distance net.topo src dst in
    let unloaded = (hops * net.config.per_hop_latency) + serialization - 1 in
    (t, hops, t - now - unloaded)
  end

let reset net =
  Array.fill net.free_at 0 (Array.length net.free_at) 0;
  Array.fill net.link_busy 0 (Array.length net.link_busy) 0;
  net.busy <- 0

let total_link_busy net = net.busy

let link_busy net = Array.copy net.link_busy

let utilization net ~at =
  let at = max 1 at in
  Array.map (fun b -> float_of_int b /. float_of_int at) net.link_busy
