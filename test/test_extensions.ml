(* Tests for the extension components: the integer linear-system solver,
   the C code generator, and the loop-restructuring comparator. *)

module Vec = Affine.Vec
module Matrix = Affine.Matrix
module Gauss = Affine.Gauss
module Ast = Lang.Ast
module Loop_transform = Core.Loop_transform

(* --- Gauss.solve --- *)

let test_solve_identity () =
  match Gauss.solve (Matrix.identity 3) (Vec.of_list [ 4; -2; 7 ]) with
  | Some x -> Alcotest.(check (list int)) "x = b" [ 4; -2; 7 ] (Vec.to_list x)
  | None -> Alcotest.fail "identity system must be solvable"

let test_solve_stencil_distance () =
  (* A = antidiagonal, offsets differ by (1,0): A·d = (1,0) → d = (0,1) *)
  let a = Matrix.of_rows [ Vec.of_list [ 0; 1 ]; Vec.of_list [ 1; 0 ] ] in
  match Gauss.solve a (Vec.of_list [ 1; 0 ]) with
  | Some d -> Alcotest.(check (list int)) "distance" [ 0; 1 ] (Vec.to_list d)
  | None -> Alcotest.fail "solvable"

let test_solve_no_integer_solution () =
  (* 2x = 1 has no integer solution *)
  let a = Matrix.of_rows [ Vec.of_list [ 2 ] ] in
  Alcotest.(check bool) "2x=1 unsolvable" true (Gauss.solve a (Vec.of_list [ 1 ]) = None);
  Alcotest.(check bool) "2x=6 solvable" true
    (match Gauss.solve a (Vec.of_list [ 6 ]) with
    | Some x -> x.(0) = 3
    | None -> false)

let test_solve_inconsistent () =
  (* x = 1 and x = 2 simultaneously *)
  let a = Matrix.of_rows [ Vec.of_list [ 1 ]; Vec.of_list [ 1 ] ] in
  Alcotest.(check bool) "inconsistent" true (Gauss.solve a (Vec.of_list [ 1; 2 ]) = None)

let prop_solve_roundtrip =
  let gen =
    QCheck.Gen.(
      let* m =
        array_size (return 3) (array_size (return 3) (int_range (-4) 4))
      in
      let* x = array_size (return 3) (int_range (-5) 5) in
      return (m, x))
  in
  QCheck.Test.make ~name:"solve(m, m·x) finds a solution of m·y = m·x" ~count:300
    (QCheck.make gen)
    (fun (m, x) ->
      let b = Matrix.mul_vec m x in
      match Gauss.solve m b with
      | Some y -> Vec.equal (Matrix.mul_vec m y) b
      | None -> false)

(* --- Codegen --- *)

let parse src =
  match Lang.Parser.parse_result src with
  | Ok p -> p
  | Error _ -> failwith "parse failed"

let emit ?name p =
  match Lang.Codegen.emit_result ?name p with
  | Ok c -> c
  | Error _ -> failwith "codegen failed"

let jacobi =
  parse
    {|
param N = 32;
array Z[N][N];
index IDX[N];
parfor i = 1 to N-2 {
  for j = 1 to N-2 {
    Z[i][j] = Z[i-1][j] + Z[i][IDX[j]];
  }
}
|}

let test_codegen_structure () =
  let c = emit ~name:"jacobi" jacobi in
  let has s = Astring.String.is_infix ~affix:s c in
  Alcotest.(check bool) "defines N" true (has "#define N 32");
  Alcotest.(check bool) "flattens Z" true (has "static double Z[1024];");
  Alcotest.(check bool) "index array is long" true (has "static long IDX[32];");
  Alcotest.(check bool) "openmp pragma" true
    (has "#pragma omp parallel for schedule(static)");
  Alcotest.(check bool) "run function" true (has "void run_jacobi(void)");
  Alcotest.(check bool) "init hook" true (has "init_jacobi_index_arrays");
  Alcotest.(check bool) "flattened subscript" true (has "Z[(i - 1) * 32 + (j)]")

let test_codegen_transformed () =
  (* the strip-mined output of the pass also renders (div/mod in C) *)
  let cfg = Sim.Config.customize_config (Sim.Config.scaled ()) in
  let p =
    parse
      {|
param N = 128;
array A[N][N];
parfor i = 0 to N-1 { for j = 0 to N-1 { A[i][j] = A[i][j] + 1; } }
|}
  in
  let report = Core.Transform.run cfg (Lang.Analysis.analyze p) in
  let c = emit (Core.Transform.rewrite_program report p) in
  Alcotest.(check bool) "division appears" true
    (Astring.String.is_infix ~affix:"/ 32" c
    || Astring.String.is_infix ~affix:"/32" c);
  Alcotest.(check bool) "modulo appears" true
    (Astring.String.is_infix ~affix:"% 32" c)

let test_codegen_all_apps () =
  List.iter
    (fun app ->
      let c = emit ~name:app.Workloads.App.name (Workloads.App.program app) in
      Alcotest.(check bool) (app.Workloads.App.name ^ " nonempty") true
        (String.length c > 200))
    Workloads.Suite.all

(* --- Loop_transform --- *)

let analyze src = Lang.Analysis.analyze (parse src)

let test_interchange_applies () =
  (* parallel loop indexes the fastest dimension; interchange is legal
     (no loop-carried dependence) and moves the row driver outward *)
  let a =
    analyze
      {|
param N = 32;
array A[N][N];
parfor j = 0 to N-1 { for i = 0 to N-1 { A[i][j] = A[i][j] + 1; } }
|}
  in
  let r = Loop_transform.run a in
  Alcotest.(check int) "one nest permuted" 1 r.Loop_transform.permuted_nests;
  match r.Loop_transform.program.Ast.nests with
  | [ Ast.Loop outer ] ->
    Alcotest.(check string) "i is now outermost" "i" outer.Ast.index;
    Alcotest.(check bool) "outermost is parallel" true outer.Ast.parallel;
    (match outer.Ast.body with
    | [ Ast.Loop inner ] ->
      Alcotest.(check string) "j inside" "j" inner.Ast.index;
      Alcotest.(check bool) "inner sequential" false inner.Ast.parallel
    | _ -> Alcotest.fail "inner loop expected")
  | _ -> Alcotest.fail "nest expected"

let test_interchange_blocked_by_dependence () =
  (* A[i][j] depends on A[i-1][j+1]: distance (1,-1); moving j outward
     would make it lexicographically negative *)
  let a =
    analyze
      {|
param N = 32;
array A[N][N];
parfor j = 1 to N-2 { for i = 1 to N-2 { A[j][i] = A[j-1][i+1] + 1; } }
|}
  in
  let distances = Loop_transform.dependence_distances a ~nest_id:0 in
  Alcotest.(check bool) "distance found" true (List.length distances >= 1);
  let r = Loop_transform.run a in
  Alcotest.(check int) "nothing permuted" 0 r.Loop_transform.permuted_nests

let test_already_aligned () =
  let a =
    analyze
      {|
param N = 32;
array A[N][N];
parfor i = 0 to N-1 { for j = 0 to N-1 { A[i][j] = 1; } }
|}
  in
  let r = Loop_transform.run a in
  Alcotest.(check int) "aligned" 1 r.Loop_transform.already_aligned;
  Alcotest.(check int) "not permuted" 0 r.Loop_transform.permuted_nests

let test_imperfect_blocked () =
  let a =
    analyze
      {|
param N = 32;
array A[N][N];
array B[N];
parfor i = 0 to N-1 {
  B[i] = 0;
  for j = 0 to N-1 { A[i][j] = 1; }
}
|}
  in
  let r = Loop_transform.run a in
  Alcotest.(check int) "imperfect nest blocked" 1 r.Loop_transform.blocked

let test_legal_permutation () =
  let d = [ Vec.of_list [ 1; -1 ] ] in
  Alcotest.(check bool) "identity legal" true
    (Loop_transform.legal_permutation d [| 0; 1 |]);
  Alcotest.(check bool) "swap illegal" false
    (Loop_transform.legal_permutation d [| 1; 0 |])

let test_transformed_program_runs () =
  (* the restructured program still traces and simulates *)
  let a =
    analyze
      {|
param N = 64;
array A[N][N];
parfor j = 0 to N-1 { for i = 0 to N-1 { A[i][j] = A[i][j] + 1; } }
|}
  in
  let r = Loop_transform.run a in
  let cfg = Sim.Config.scaled () in
  let before = Sim.Runner.run cfg ~optimized:false a.Lang.Analysis.program in
  let after = Sim.Runner.run cfg ~optimized:false r.Loop_transform.program in
  Alcotest.(check int) "same access count"
    ((Sim.Stats.total_accesses) before.Sim.Engine.stats)
    ((Sim.Stats.total_accesses) after.Sim.Engine.stats);
  (* row-order traversal has far better spatial locality *)
  Alcotest.(check bool) "interchange improves L1 hits" true
    (((Sim.Stats.l1_hits) after.Sim.Engine.stats)
    > ((Sim.Stats.l1_hits) before.Sim.Engine.stats))

let qsuite = List.map QCheck_alcotest.to_alcotest

let suite =
  [
    ( "affine.solve",
      [
        Alcotest.test_case "identity" `Quick test_solve_identity;
        Alcotest.test_case "stencil distance" `Quick test_solve_stencil_distance;
        Alcotest.test_case "no integer solution" `Quick test_solve_no_integer_solution;
        Alcotest.test_case "inconsistent" `Quick test_solve_inconsistent;
      ]
      @ qsuite [ prop_solve_roundtrip ] );
    ( "lang.codegen",
      [
        Alcotest.test_case "structure" `Quick test_codegen_structure;
        Alcotest.test_case "transformed subscripts" `Quick test_codegen_transformed;
        Alcotest.test_case "all apps emit" `Quick test_codegen_all_apps;
      ] );
    ( "core.loop_transform",
      [
        Alcotest.test_case "interchange applies" `Quick test_interchange_applies;
        Alcotest.test_case "blocked by dependence" `Quick test_interchange_blocked_by_dependence;
        Alcotest.test_case "already aligned" `Quick test_already_aligned;
        Alcotest.test_case "imperfect blocked" `Quick test_imperfect_blocked;
        Alcotest.test_case "legal_permutation" `Quick test_legal_permutation;
        Alcotest.test_case "restructured program runs" `Quick test_transformed_program_runs;
      ] );
  ]
