(** Hyperplanes in iteration and data spaces.

    A hyperplane in a [k]-dimensional space is the set of points [p] with
    [h·p = c] for a normal vector [h] and offset [c] (paper, Section 5.1).
    Families of parallel hyperplanes orthogonal to a chosen dimension
    partition the iteration space into per-core chunks and the data space
    into per-core data blocks. *)

type t = { normal : Vec.t; offset : int }

val make : Vec.t -> int -> t

val orthogonal_to_dim : dim:int -> rank:int -> offset:int -> t
(** The hyperplane [{p | p.(dim) = offset}] in a [rank]-dimensional space:
    the normal is the unit vector along [dim]. *)

val contains : t -> Vec.t -> bool
(** [contains h p] is [h.normal·p = h.offset]. *)

val same_family : t -> t -> bool
(** Two hyperplanes are in the same parallel family when their primitive
    normals coincide. *)

val pp : Format.formatter -> t -> unit
