(** Location of a sweep directory's NDJSON progress stream. *)

val path : string -> string
(** [path dir] is [dir/progress.ndjson]. *)

val sink_for : string -> (Obs.Progress.sink, string) result
(** Opens (truncating) the progress stream of a sweep directory. *)
