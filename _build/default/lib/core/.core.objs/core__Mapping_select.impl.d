lib/core/mapping_select.ml: Cluster List Noc
