(* Tests for the paper's contribution: cluster/L2-to-MC machinery, the
   Data-to-Core solver, layout customization, indexed-access
   approximation, mapping selection and the Algorithm 1 driver. *)

module Vec = Affine.Vec
module Matrix = Affine.Matrix
module Access = Affine.Access
module Cluster = Core.Cluster
module Layout = Core.Layout
module Data_to_core = Core.Data_to_core
module Customize = Core.Customize
module Indexed = Core.Indexed
module Transform = Core.Transform
module Mapping_select = Core.Mapping_select

let topo8 = Noc.Topology.make ~width:8 ~height:8 ()

let ok = function Ok v -> v | Error e -> failwith e

let m1 = ok (Cluster.m1 ~width:8 ~height:8)

let m2 = ok (Cluster.m2 ~width:8 ~height:8)

let corner_sites =
  [| Noc.Coord.make 0 0; Noc.Coord.make 7 0; Noc.Coord.make 0 7; Noc.Coord.make 7 7 |]

let placement_for cluster =
  let centroids =
    Array.init (Cluster.num_mcs cluster) (fun m ->
        Cluster.centroid_of_cluster cluster (Cluster.cluster_of_mc cluster m))
  in
  ok (Noc.Placement.assign_result topo8 ~name:"corners" ~sites:corner_sites ~centroids)

let p1 = placement_for m1

let cfg_private =
  {
    Customize.cluster = m1;
    topo = topo8;
    placement = p1;
    l2 = Customize.Private_l2;
    p_elems = 32;
    elem_bytes = 8;
  }

let cfg_shared = { cfg_private with Customize.l2 = Customize.Shared_l2 }

(* --- Cluster --- *)

let test_cluster_validity () =
  Alcotest.(check int) "M1 clusters" 4 (Cluster.num_clusters m1);
  Alcotest.(check int) "M1 MCs" 4 (Cluster.num_mcs m1);
  Alcotest.(check int) "M1 cores/cluster" 16 (Cluster.cores_per_cluster m1);
  Alcotest.(check int) "M2 clusters" 2 (Cluster.num_clusters m2);
  Alcotest.(check int) "M2 MCs" 4 (Cluster.num_mcs m2);
  Alcotest.(check (list int)) "M2 cluster 1 gets MCs 2,3" [ 2; 3 ]
    (Cluster.mcs_of_cluster m2 1);
  match Cluster.make_result ~name:"bad" ~width:8 ~height:8 ~cx:3 ~cy:2 ~k:1 with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "uneven tiling must be a value error"

let test_thread_node_bijection () =
  let seen = Hashtbl.create 64 in
  for t = 0 to 63 do
    let n = Cluster.node_of_thread m1 topo8 t in
    Alcotest.(check bool) "in range" true (n >= 0 && n < 64);
    Alcotest.(check bool) "fresh" false (Hashtbl.mem seen n);
    Hashtbl.replace seen n ();
    Alcotest.(check int) "inverse" t (Cluster.thread_of_node m1 topo8 n)
  done

let test_thread_cluster_order () =
  (* the R(r_v) enumeration: every group of ny=4 consecutive threads
     shares a cluster, clusters rotate along Y then X, and each cluster
     receives exactly cores_per_cluster threads *)
  let counts = Array.make 4 0 in
  for t = 0 to 63 do
    let cl = Cluster.cluster_of_node m1 topo8 (Cluster.node_of_thread m1 topo8 t) in
    counts.(cl) <- counts.(cl) + 1;
    let cl0 =
      Cluster.cluster_of_node m1 topo8 (Cluster.node_of_thread m1 topo8 (t / 4 * 4))
    in
    Alcotest.(check int) "groups of ny stay together" cl0 cl
  done;
  Array.iter (fun n -> Alcotest.(check int) "16 threads per cluster" 16 n) counts;
  Alcotest.(check int) "thread 0 in cluster 0" 0
    (Cluster.cluster_of_node m1 topo8 (Cluster.node_of_thread m1 topo8 0));
  Alcotest.(check int) "thread 4 rotates to cluster 1" 1
    (Cluster.cluster_of_node m1 topo8 (Cluster.node_of_thread m1 topo8 4))

let test_placement_alignment () =
  (* MC j must be at the corner of cluster j *)
  for j = 0 to 3 do
    let mc_node = Noc.Placement.mc_node p1 j in
    Alcotest.(check int) "controller in its own cluster" j
      (Cluster.cluster_of_node m1 topo8 mc_node)
  done

let test_with_mcs () =
  let c8 = ok (Cluster.with_mcs_result ~width:8 ~height:8 ~mcs:8) in
  Alcotest.(check int) "8 clusters" 8 (Cluster.num_clusters c8);
  Alcotest.(check int) "8 cores each" 8 (Cluster.cores_per_cluster c8);
  let c16 = ok (Cluster.with_mcs_result ~width:8 ~height:8 ~mcs:16) in
  Alcotest.(check int) "16 clusters of 4" 4 (Cluster.cores_per_cluster c16)

(* --- Data_to_core --- *)

let antidiag = Matrix.of_rows [ Vec.of_list [ 0; 1 ]; Vec.of_list [ 1; 0 ] ]

let test_solve_single_fig9 () =
  (* Z[j][i] under parallel i (u=0): g = (0,1), U antidiagonal *)
  let access = Access.make antidiag (Vec.zero 2) in
  (match Data_to_core.solve_single access ~u:0 ~v:0 with
  | Some g -> Alcotest.(check (list int)) "g" [ 0; 1 ] (Vec.to_list g)
  | None -> Alcotest.fail "expected a solution");
  (* row-major friendly reference A[i][j]: g = e0, U = I *)
  let access = Access.make (Matrix.identity 2) (Vec.zero 2) in
  match Data_to_core.solve_single access ~u:0 ~v:0 with
  | Some g -> Alcotest.(check (list int)) "identity g" [ 1; 0 ] (Vec.to_list g)
  | None -> Alcotest.fail "expected a solution"

let test_solve_single_unsolvable () =
  (* X[j] under parallel i in a 2-deep nest: B = (1) has no nontrivial
     solution for a 1-D array *)
  let access = Access.make (Matrix.of_rows [ Vec.of_list [ 0; 1 ] ]) (Vec.zero 1) in
  Alcotest.(check (option (list int))) "no solution" None
    (Option.map Vec.to_list (Data_to_core.solve_single access ~u:0 ~v:0))

let test_solve_depth1 () =
  (* X[i], parallel i, depth 1: no constraints, unit vector solution *)
  let access = Access.make (Matrix.identity 1) (Vec.zero 1) in
  match Data_to_core.solve_single access ~u:0 ~v:0 with
  | Some g -> Alcotest.(check (list int)) "unit" [ 1 ] (Vec.to_list g)
  | None -> Alcotest.fail "depth-1 parallel reference must be solvable"

let test_weighted_majority () =
  (* conflicting references: the heavier group wins (Section 5.2) *)
  let ref_rowwise u w =
    { Data_to_core.access = Access.make (Matrix.identity 2) (Vec.zero 2); u; weight = w }
  in
  let ref_transposed u w =
    { Data_to_core.access = Access.make antidiag (Vec.zero 2); u; weight = w }
  in
  (match Data_to_core.solve ~refs:[ ref_rowwise 0 100; ref_transposed 0 10 ] ~v:0 with
  | Some sol ->
    Alcotest.(check (list int)) "heavy row-wise wins" [ 1; 0 ] (Vec.to_list sol.Data_to_core.g);
    Alcotest.(check int) "satisfied weight" 100 sol.Data_to_core.satisfied_weight;
    Alcotest.(check int) "total weight" 110 sol.Data_to_core.total_weight
  | None -> Alcotest.fail "expected a solution");
  match Data_to_core.solve ~refs:[ ref_rowwise 0 10; ref_transposed 0 100 ] ~v:0 with
  | Some sol ->
    Alcotest.(check (list int)) "heavy transposed wins" [ 0; 1 ]
      (Vec.to_list sol.Data_to_core.g)
  | None -> Alcotest.fail "expected a solution"

let test_satisfies () =
  let acc = Access.make antidiag (Vec.zero 2) in
  Alcotest.(check bool) "g=(0,1) satisfies the Fig9 system" true
    (Data_to_core.satisfies (Vec.of_list [ 0; 1 ]) acc ~u:0);
  Alcotest.(check bool) "g=(1,0) does not" false
    (Data_to_core.satisfies (Vec.of_list [ 1; 0 ]) acc ~u:0)

(* --- Layout / Customize --- *)

let check_bijective layout extents =
  let seen = Hashtbl.create 4096 in
  let dup = ref 0 and out_of_range = ref 0 in
  let size = Layout.size_elems layout in
  let rec walk v d =
    if d = Array.length extents then begin
      let off = Layout.offset_of_index layout (Array.of_list (List.rev v)) in
      if off < 0 || off >= size then incr out_of_range;
      if Hashtbl.mem seen off then incr dup;
      Hashtbl.replace seen off ()
    end
    else
      for x = 0 to extents.(d) - 1 do
        walk (x :: v) (d + 1)
      done
  in
  walk [] 0;
  Alcotest.(check int) "no duplicate offsets" 0 !dup;
  Alcotest.(check int) "offsets in range" 0 !out_of_range

let test_identity_layout () =
  let l = Layout.identity ~array:"A" ~extents:[| 6; 10 |] ~elem_bytes:8 in
  Alcotest.(check bool) "is_identity" true (Layout.is_identity l);
  Alcotest.(check int) "row-major offset" 25
    (Layout.offset_of_index l (Vec.of_list [ 2; 5 ]));
  Alcotest.(check int) "size" 60 (Layout.size_elems l);
  Alcotest.(check int) "bytes" 480 (Layout.size_bytes l)

let test_private_layout_bijective () =
  let u = Matrix.identity 2 in
  let layout = Customize.customize cfg_private ~array:"A" ~extents:[| 128; 128 |] ~u ~v:0 in
  Alcotest.(check bool) "not identity" false (Layout.is_identity layout);
  check_bijective layout [| 128; 128 |]

let test_private_layout_mc_rotation () =
  (* the defining property: an element owned by thread t lands on a line
     whose controller serves t's cluster *)
  let u = Matrix.identity 2 in
  let extents = [| 128; 128 |] in
  let layout = Customize.customize cfg_private ~array:"A" ~extents ~u ~v:0 in
  let b = 2 (* 128 rows / 64 threads *) in
  let errors = ref 0 in
  for x = 0 to 127 do
    for y = 0 to 127 do
      let off = Layout.offset_of_index layout (Vec.of_list [ x; y ]) in
      let line = off * 8 / 256 in
      let mc = line mod 4 in
      let owner = x / b in
      let cl = Cluster.cluster_of_node m1 topo8 (Cluster.node_of_thread m1 topo8 owner) in
      if not (List.mem mc (Cluster.mcs_of_cluster m1 cl)) then incr errors
    done
  done;
  Alcotest.(check int) "every element on its cluster's controller" 0 !errors

let test_private_layout_m2_rotation () =
  (* under M2 (k=2) each cluster's data covers exactly its two MCs *)
  let cfg = { cfg_private with Customize.cluster = m2; placement = placement_for m2 } in
  let layout = Customize.customize cfg ~array:"A" ~extents:[| 128; 128 |] ~u:(Matrix.identity 2) ~v:0 in
  check_bijective layout [| 128; 128 |];
  let b = 2 in
  let errors = ref 0 in
  let mcs_seen = Array.make 4 0 in
  for x = 0 to 127 do
    for y = 0 to 127 do
      let off = Layout.offset_of_index layout (Vec.of_list [ x; y ]) in
      let mc = off * 8 / 256 mod 4 in
      mcs_seen.(mc) <- mcs_seen.(mc) + 1;
      let owner = x / b in
      let cl = Cluster.cluster_of_node m2 topo8 (Cluster.node_of_thread m2 topo8 owner) in
      if not (List.mem mc (Cluster.mcs_of_cluster m2 cl)) then incr errors
    done
  done;
  Alcotest.(check int) "M2: data on the cluster's two controllers" 0 !errors;
  Array.iter (fun n -> Alcotest.(check bool) "all controllers used" true (n > 0)) mcs_seen

let test_private_layout_transposed () =
  (* with U antidiagonal (Fig 9) ownership follows the second subscript *)
  let layout = Customize.customize cfg_private ~array:"Z" ~extents:[| 128; 128 |] ~u:antidiag ~v:0 in
  check_bijective layout [| 128; 128 |];
  let errors = ref 0 in
  for x = 0 to 127 do
    for y = 0 to 127 do
      let off = Layout.offset_of_index layout (Vec.of_list [ x; y ]) in
      let mc = off * 8 / 256 mod 4 in
      let owner = y / 2 in
      let cl = Cluster.cluster_of_node m1 topo8 (Cluster.node_of_thread m1 topo8 owner) in
      if not (List.mem mc (Cluster.mcs_of_cluster m1 cl)) then incr errors
    done
  done;
  Alcotest.(check int) "transposed ownership localized" 0 !errors

let test_1d_layout () =
  let layout =
    Customize.customize cfg_private ~array:"X" ~extents:[| 4096 |] ~u:(Matrix.identity 1) ~v:0
  in
  check_bijective layout [| 4096 |];
  let errors = ref 0 in
  for x = 0 to 4095 do
    let off = Layout.offset_of_index layout (Vec.of_list [ x ]) in
    let mc = off * 8 / 256 mod 4 in
    let owner = x / 64 in
    let cl = Cluster.cluster_of_node m1 topo8 (Cluster.node_of_thread m1 topo8 owner) in
    if not (List.mem mc (Cluster.mcs_of_cluster m1 cl)) then incr errors
  done;
  Alcotest.(check int) "1-D localization" 0 !errors

let test_shared_layout () =
  let layout =
    Customize.customize cfg_shared ~array:"A" ~extents:[| 128; 128 |] ~u:(Matrix.identity 2) ~v:0
  in
  check_bijective layout [| 128; 128 |];
  (* home-bank locality: most elements are homed at (or adjacent to) the
     node of their owning thread; every mapped controller is allowed *)
  let bad_mc = ref 0 and total = ref 0 and home_dist = ref 0 in
  for x = 0 to 127 do
    for y = 0 to 127 do
      incr total;
      let off = Layout.offset_of_index layout (Vec.of_list [ x; y ]) in
      let home = off / 32 mod 64 in
      let mc = off * 8 / 256 mod 4 in
      let owner = x / 2 in
      let owner_node = Cluster.node_of_thread m1 topo8 owner in
      home_dist := !home_dist + Noc.Topology.distance topo8 home owner_node;
      let allowed = Customize.allowed_mcs cfg_shared ~home_thread:owner in
      if not allowed.(mc) then incr bad_mc
    done
  done;
  Alcotest.(check int) "mapped controller always allowed" 0 !bad_mc;
  let avg = float_of_int !home_dist /. float_of_int !total in
  Alcotest.(check bool) "average home distance below one hop" true (avg < 1.0)

let test_allowed_mcs () =
  (* corner placement: the diagonal controller is not allowed *)
  let allowed = Customize.allowed_mcs cfg_shared ~home_thread:0 in
  Alcotest.(check bool) "own controller allowed" true allowed.(0);
  (* cluster 0 is NW; its diagonal is cluster 3's SE controller *)
  Alcotest.(check bool) "diagonal excluded" false allowed.(3);
  Alcotest.(check int) "three of four allowed" 3
    (Array.fold_left (fun a b -> if b then a + 1 else a) 0 allowed)

let test_padding () =
  (* extents that do not divide evenly get padded, never truncated *)
  let layout = Customize.customize cfg_private ~array:"A" ~extents:[| 100; 100 |] ~u:(Matrix.identity 2) ~v:0 in
  Alcotest.(check bool) "padded size at least original" true
    (Layout.size_elems layout >= 100 * 100);
  check_bijective layout [| 100; 100 |]

let test_transformed_subscripts () =
  let layout = Customize.customize cfg_private ~array:"Z" ~extents:[| 64; 64 |] ~u:antidiag ~v:0 in
  let subs = [ Lang.Ast.Var "j"; Lang.Ast.Var "i" ] in
  let out = Layout.transformed_subscripts layout subs in
  Alcotest.(check int) "one subscript per output dim" (Array.length layout.Layout.out)
    (List.length out);
  (* the printed form contains the strip-mined i and j expressions *)
  let printed =
    String.concat "," (List.map (fun e -> Format.asprintf "%a" Lang.Ast.pp_expr e) out)
  in
  Alcotest.(check bool) "mentions i" true
    (Astring.String.is_infix ~affix:"i" printed)

let test_page_granularity_layout () =
  (* page interleaving: p = 512 elements; every virtual page of the
     transformed array must belong entirely to one cluster, and pages
     rotate over clusters in enumeration order *)
  let cfg = { cfg_private with Customize.p_elems = 512 } in
  let extents = [| 128; 128 |] in
  let layout = Customize.customize cfg ~array:"A" ~extents ~u:(Matrix.identity 2) ~v:0 in
  check_bijective layout extents;
  let b = 2 in
  let errors = ref 0 in
  for x = 0 to 127 do
    for y = 0 to 127 do
      let off = Layout.offset_of_index layout (Vec.of_list [ x; y ]) in
      let page = off / 512 in
      let owner = x / b in
      let cl = Cluster.cluster_of_node m1 topo8 (Cluster.node_of_thread m1 topo8 owner) in
      if page mod 4 <> cl then incr errors
    done
  done;
  Alcotest.(check int) "pages cluster-aligned" 0 !errors

let test_1d_small_block_layout () =
  (* the minimd case: per-thread block smaller than the interleaving
     unit; blocks must still map to their own thread's cluster, padding
     each block up to a full unit *)
  let cfg = { cfg_private with Customize.p_elems = 512 } in
  let extents = [| 16384 |] in
  let layout =
    Customize.customize cfg ~array:"X" ~extents ~u:(Matrix.identity 1) ~v:0
  in
  check_bijective layout extents;
  Alcotest.(check bool) "padded (one unit per block)" true
    (Layout.size_elems layout >= 64 * 512);
  let errors = ref 0 in
  let b0 = 16384 / 64 in
  for x = 0 to 16383 do
    let off = Layout.offset_of_index layout (Vec.of_list [ x ]) in
    let page = off / 512 in
    let owner = x / b0 in
    let cl = Cluster.cluster_of_node m1 topo8 (Cluster.node_of_thread m1 topo8 owner) in
    if page mod 4 <> cl then incr errors
  done;
  Alcotest.(check int) "small blocks cluster-aligned" 0 !errors

(* --- Indexed --- *)

let test_indexed_exact_fit () =
  (* samples from an exactly affine map are fitted with zero inaccuracy *)
  let samples =
    List.concat_map
      (fun i -> List.map (fun j -> (Vec.of_list [ i; j ], Vec.of_list [ (2 * i) + 1; j ])) [ 0; 3; 7 ])
      [ 0; 1; 5; 9 ]
  in
  match Indexed.approximate ~samples with
  | Some (access, inacc) ->
    Alcotest.(check (float 1e-9)) "exact" 0.0 inacc;
    Alcotest.(check (list int)) "offset" [ 1; 0 ] (Vec.to_list access.Access.offset)
  | None -> Alcotest.fail "expected a fit"

let test_indexed_banded_fit () =
  (* banded sparse pattern with clamped edges: small inaccuracy *)
  let n = 100 in
  let samples =
    List.concat_map
      (fun i ->
        List.map
          (fun z -> (Vec.of_list [ i; z ], Vec.of_list [ max 0 (min (n - 1) (i + z - 3)) ]))
          [ 0; 1; 2; 3; 4; 5; 6 ])
      (List.init 25 (fun k -> k * 4))
  in
  match Indexed.approximate ~samples with
  | Some (_, inacc) ->
    Alcotest.(check bool) "below threshold" true (inacc <= Indexed.default_threshold);
    Alcotest.(check bool) "not exact (edge clamps)" true (inacc > 0.)
  | None -> Alcotest.fail "expected a fit"

let test_indexed_random_rejected () =
  (* a pseudo-random pattern fits badly *)
  let samples =
    List.init 200 (fun i -> (Vec.of_list [ i ], Vec.of_list [ (i * 7919) mod 200 ]))
  in
  match Indexed.approximate ~samples with
  | Some (_, inacc) ->
    Alcotest.(check bool) "above threshold" true (inacc > Indexed.default_threshold)
  | None -> ()

let test_indexed_empty () =
  Alcotest.(check bool) "no samples" true (Indexed.approximate ~samples:[] = None)

(* --- Transform (Algorithm 1) --- *)

let parse src =
  match Lang.Parser.parse_result src with
  | Ok p -> p
  | Error _ -> Alcotest.fail "parse failed"

let analyze src = Lang.Analysis.analyze (parse src)

let test_transform_fig9 () =
  let report =
    Transform.run cfg_private
      (analyze
         {|
param N = 128;
array Z[N][N];
parfor i = 2 to N-2 { for j = 2 to N-2 { Z[j][i] = Z[j-1][i] + Z[j][i] + Z[j+1][i]; } }
|})
  in
  Alcotest.(check (float 0.01)) "100% arrays" 100.0 report.Transform.pct_arrays_optimized;
  Alcotest.(check (float 0.01)) "100% refs" 100.0 report.Transform.pct_refs_satisfied;
  let layout = Transform.layout_of report "Z" in
  Alcotest.(check bool) "U is the antidiagonal" true
    (Matrix.equal layout.Layout.u antidiag)

let test_transform_keeps () =
  let report =
    Transform.run cfg_private
      (analyze
         {|
param N = 64;
array A[N];
array B[N][N];
index IDX[N];
for i = 0 to N-1 { A[i] = 1; }
parfor i = 0 to N-1 { for j = 0 to N-1 { B[i][j] = B[i][j] + A[IDX[j]]; } }
|})
  in
  let decision name =
    List.find
      (fun d -> String.equal d.Transform.info.Lang.Analysis.decl.Lang.Ast.name name)
      report.Transform.decisions
  in
  Alcotest.(check bool) "B optimized" true (decision "B").Transform.optimized;
  (* A: only a sequential reference and an unprofiled indexed one *)
  Alcotest.(check bool) "A kept" false (decision "A").Transform.optimized;
  Alcotest.(check bool) "IDX kept (index array)" false (decision "IDX").Transform.optimized;
  match (decision "IDX").Transform.kept with
  | Some Transform.Index_array -> ()
  | _ -> Alcotest.fail "index array reason"

let test_transform_rewrite () =
  let program =
    parse
      {|
param N = 128;
array Z[N][N];
parfor i = 2 to N-2 { for j = 2 to N-2 { Z[j][i] = Z[j-1][i] + Z[j][i] + Z[j+1][i]; } }
|}
  in
  let report = Transform.run cfg_private (Lang.Analysis.analyze program) in
  let p' = Transform.rewrite_program report program in
  (* the rewritten program must still parse and type-check *)
  let printed = Lang.Ast.program_to_string p' in
  let reparsed = parse printed in
  Alcotest.(check int) "declarations preserved" 1 (List.length reparsed.Lang.Ast.decls);
  (* the declaration gained strip-mined dimensions *)
  let d = List.hd reparsed.Lang.Ast.decls in
  Alcotest.(check bool) "more dimensions than original" true
    (List.length d.Lang.Ast.extents > 2)

let test_transform_profile_path () =
  let src =
    {|
param N = 256;
array VALS[N];
array X[N];
index COLS[N];
parfor i = 0 to N-1 { VALS[i] = VALS[i] + X[COLS[i]]; }
|}
  in
  let profile_good _ =
    List.init 200 (fun i -> (Vec.of_list [ i ], Vec.of_list [ min 255 (i + 1) ]))
  in
  let profile_bad _ =
    List.init 200 (fun i -> (Vec.of_list [ i ], Vec.of_list [ (i * 7919) mod 256 ]))
  in
  let report = Transform.run ~profile:profile_good cfg_private (analyze src) in
  let x_decision r =
    List.find
      (fun d -> String.equal d.Transform.info.Lang.Analysis.decl.Lang.Ast.name "X")
      r.Transform.decisions
  in
  Alcotest.(check bool) "good profile: X optimized" true (x_decision report).Transform.optimized;
  let report = Transform.run ~profile:profile_bad cfg_private (analyze src) in
  (match (x_decision report).Transform.kept with
  | Some (Transform.Bad_approximation f) ->
    Alcotest.(check bool) "inaccuracy recorded" true (f > 0.3)
  | _ -> Alcotest.fail "expected Bad_approximation");
  let report = Transform.run cfg_private (analyze src) in
  match (x_decision report).Transform.kept with
  | Some Transform.No_parallel_reference -> ()
  | _ -> Alcotest.fail "no profile means the indexed ref is dropped"

(* --- Mapping selection --- *)

let test_mapping_metrics () =
  let p2 = placement_for m2 in
  let mm1 = Mapping_select.evaluate topo8 m1 p1 in
  let mm2 = Mapping_select.evaluate topo8 m2 p2 in
  Alcotest.(check bool) "M1 has shorter distance" true
    (mm1.Mapping_select.avg_distance < mm2.Mapping_select.avg_distance);
  Alcotest.(check int) "M1 k" 1 mm1.Mapping_select.mcs_per_cluster;
  Alcotest.(check int) "M2 k" 2 mm2.Mapping_select.mcs_per_cluster

let choose_name candidates pressure =
  match Mapping_select.choose_opt topo8 ~candidates ~bank_pressure:pressure with
  | Some (c, _) -> c.Cluster.name
  | None -> Alcotest.fail "empty candidate list"

let test_mapping_choice () =
  let p2 = placement_for m2 in
  let candidates = [ (m1, p1); (m2, p2) ] in
  (* moderate bank pressure (the stencils): locality wins, M1 *)
  Alcotest.(check string) "M1 at moderate pressure" "M1"
    (choose_name candidates 3.5);
  (* heavy pressure (fma3d, minighost): parallelism wins, M2 *)
  Alcotest.(check string) "M2 at high pressure" "M2"
    (choose_name candidates 7.0);
  Alcotest.(check bool) "empty candidates -> None" true
    (Mapping_select.choose_opt topo8 ~candidates:[] ~bank_pressure:1.0 = None)

let platform_candidates spec =
  let p = ok (Core.Platform.of_spec spec) in
  List.map (fun q -> (q.Core.Platform.cluster, q.Core.Platform.placement))
    (Core.Platform.candidates p)

let test_mapping_choice_8mc () =
  (* the mesh8x8-mc8 candidate set adds the Fig. 27 8-MC configuration;
     it overtakes M1 once the queueing term dominates (crossover at
     bank pressure 4/3 under the cost model's constants) *)
  let candidates = platform_candidates "mesh8x8-mc8" in
  Alcotest.(check int) "three candidates" 3 (List.length candidates);
  Alcotest.(check string) "light pressure keeps M1" "M1"
    (choose_name candidates 0.5);
  Alcotest.(check string) "8 MCs win at moderate pressure" "M1x8"
    (choose_name candidates 2.0)

let test_mapping_choice_16mc () =
  (* 16 controllers only pay off under very heavy pressure (crossover vs
     the 8-MC configuration at bank pressure 15) *)
  let candidates = platform_candidates "mesh8x8-mc16" in
  Alcotest.(check int) "four candidates" 4 (List.length candidates);
  Alcotest.(check string) "8 MCs below the crossover" "M1x8"
    (choose_name candidates 10.0);
  Alcotest.(check string) "16 MCs at extreme pressure" "M1x16"
    (choose_name candidates 20.0)

let test_score_sorted_and_invariant () =
  let candidates = platform_candidates "mesh8x8-mc16" in
  let scored = Mapping_select.score topo8 ~candidates ~bank_pressure:2.0 in
  let costs = List.map (fun s -> s.Mapping_select.cost) scored in
  Alcotest.(check bool) "costs ascending" true
    (List.sort compare costs = costs);
  (* permutation invariance: reversing the candidate list must not change
     the scored order *)
  let scored' =
    Mapping_select.score topo8 ~candidates:(List.rev candidates)
      ~bank_pressure:2.0
  in
  Alcotest.(check (list string)) "order invariant under permutation"
    (List.map (fun s -> s.Mapping_select.cluster.Cluster.name) scored)
    (List.map (fun s -> s.Mapping_select.cluster.Cluster.name) scored')

let suite =
  [
    ( "core.cluster",
      [
        Alcotest.test_case "validity" `Quick test_cluster_validity;
        Alcotest.test_case "thread/node bijection" `Quick test_thread_node_bijection;
        Alcotest.test_case "cluster order" `Quick test_thread_cluster_order;
        Alcotest.test_case "placement alignment" `Quick test_placement_alignment;
        Alcotest.test_case "with_mcs" `Quick test_with_mcs;
      ] );
    ( "core.data_to_core",
      [
        Alcotest.test_case "fig9 solution" `Quick test_solve_single_fig9;
        Alcotest.test_case "unsolvable" `Quick test_solve_single_unsolvable;
        Alcotest.test_case "depth-1" `Quick test_solve_depth1;
        Alcotest.test_case "weighted majority" `Quick test_weighted_majority;
        Alcotest.test_case "satisfies" `Quick test_satisfies;
      ] );
    ( "core.layout",
      [
        Alcotest.test_case "identity" `Quick test_identity_layout;
        Alcotest.test_case "private bijective" `Quick test_private_layout_bijective;
        Alcotest.test_case "private MC rotation" `Quick test_private_layout_mc_rotation;
        Alcotest.test_case "M2 rotation" `Quick test_private_layout_m2_rotation;
        Alcotest.test_case "transposed" `Quick test_private_layout_transposed;
        Alcotest.test_case "1-D arrays" `Quick test_1d_layout;
        Alcotest.test_case "shared L2" `Quick test_shared_layout;
        Alcotest.test_case "allowed MCs" `Quick test_allowed_mcs;
        Alcotest.test_case "padding" `Quick test_padding;
        Alcotest.test_case "page granularity" `Quick test_page_granularity_layout;
        Alcotest.test_case "1-D small blocks" `Quick test_1d_small_block_layout;
        Alcotest.test_case "subscript rewriting" `Quick test_transformed_subscripts;
      ] );
    ( "core.indexed",
      [
        Alcotest.test_case "exact fit" `Quick test_indexed_exact_fit;
        Alcotest.test_case "banded fit" `Quick test_indexed_banded_fit;
        Alcotest.test_case "random rejected" `Quick test_indexed_random_rejected;
        Alcotest.test_case "empty" `Quick test_indexed_empty;
      ] );
    ( "core.transform",
      [
        Alcotest.test_case "fig9 end to end" `Quick test_transform_fig9;
        Alcotest.test_case "kept arrays" `Quick test_transform_keeps;
        Alcotest.test_case "rewrite round-trips" `Quick test_transform_rewrite;
        Alcotest.test_case "profile path" `Quick test_transform_profile_path;
      ] );
    ( "core.mapping_select",
      [
        Alcotest.test_case "metrics" `Quick test_mapping_metrics;
        Alcotest.test_case "choice" `Quick test_mapping_choice;
        Alcotest.test_case "8-MC crossover" `Quick test_mapping_choice_8mc;
        Alcotest.test_case "16-MC crossover" `Quick test_mapping_choice_16mc;
        Alcotest.test_case "score order" `Quick test_score_sorted_and_invariant;
      ] );
  ]
