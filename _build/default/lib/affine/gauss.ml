(* Column echelon form by unimodular column operations, with the column
   transformation accumulated.  All operations are exact. *)

let swap_cols m i j =
  Array.iter
    (fun r ->
      let t = r.(i) in
      r.(i) <- r.(j);
      r.(j) <- t)
    m

(* col_j <- col_j - q * col_i *)
let submul_col m q i j =
  Array.iter (fun r -> r.(j) <- r.(j) - (q * r.(i))) m

let negate_col m j = Array.iter (fun r -> r.(j) <- -r.(j)) m

let column_echelon m0 =
  let h = Matrix.copy m0 in
  let nr = Matrix.rows h and nc = Matrix.cols h in
  let c = Matrix.identity nc in
  let pivot_col = ref 0 in
  for r = 0 to nr - 1 do
    if !pivot_col < nc then begin
      (* Euclidean elimination within row [r] over columns >= !pivot_col:
         reduce until at most one nonzero remains, then move it to the
         pivot position. *)
      let nonzero () =
        let acc = ref [] in
        for j = nc - 1 downto !pivot_col do
          if h.(r).(j) <> 0 then acc := j :: !acc
        done;
        !acc
      in
      let rec reduce () =
        match nonzero () with
        | [] | [ _ ] -> ()
        | js ->
          (* pick the column with the smallest |entry| as the reducer *)
          let best =
            List.fold_left
              (fun b j -> if abs h.(r).(j) < abs h.(r).(b) then j else b)
              (List.hd js) js
          in
          List.iter
            (fun j ->
              if j <> best then begin
                let q = h.(r).(j) / h.(r).(best) in
                if q <> 0 then begin
                  submul_col h q best j;
                  submul_col c q best j
                end
              end)
            js;
          reduce ()
      in
      reduce ();
      match nonzero () with
      | [] -> () (* row has no pivot; kernel unaffected *)
      | [ j ] ->
        if j <> !pivot_col then begin
          swap_cols h j !pivot_col;
          swap_cols c j !pivot_col
        end;
        if h.(r).(!pivot_col) < 0 then begin
          negate_col h !pivot_col;
          negate_col c !pivot_col
        end;
        incr pivot_col
      | _ -> assert false
    end
  done;
  (h, c, !pivot_col)

let nullspace m =
  let _, c, rank = column_echelon m in
  let nc = Matrix.cols m in
  let basis = ref [] in
  for j = nc - 1 downto rank do
    basis := Matrix.col c j :: !basis
  done;
  !basis

let count_nonzero v = Array.fold_left (fun n x -> if x = 0 then n else n + 1) 0 v

let max_norm v = Array.fold_left (fun n x -> max n (abs x)) 0 v

let kernel_vector m =
  match nullspace m with
  | [] -> None
  | b :: rest ->
    let better u v =
      let cu = count_nonzero u and cv = count_nonzero v in
      if cu <> cv then cu < cv else max_norm u < max_norm v
    in
    let best = List.fold_left (fun b v -> if better v b then v else b) b rest in
    Some (Vec.primitive best)

(* Particular integer solution of m·x = b: with m·c = h in column echelon
   form, solve h·y = b by forward substitution (checking integrality),
   then x = c·y. *)
let solve m b =
  if Matrix.rows m <> Vec.dim b then invalid_arg "Gauss.solve";
  let h, c, rank = column_echelon m in
  let nr = Matrix.rows m and nc = Matrix.cols m in
  let y = Array.make nc 0 in
  let ok = ref true in
  let col = ref 0 in
  (* h is in column echelon form: walk rows, matching pivots *)
  for r = 0 to nr - 1 do
    if !ok then begin
      let residual = ref b.(r) in
      for j = 0 to !col - 1 do
        residual := !residual - (h.(r).(j) * y.(j))
      done;
      if !col < rank && h.(r).(!col) <> 0 then begin
        if !residual mod h.(r).(!col) <> 0 then ok := false
        else begin
          y.(!col) <- !residual / h.(r).(!col);
          incr col
        end
      end
      else if !residual <> 0 then ok := false
    end
  done;
  if !ok then Some (Matrix.mul_vec c y) else None
