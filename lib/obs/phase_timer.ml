type t = { mutable entries : (string * float) list (* reverse order *) }

let create () = { entries = [] }

let record t name seconds =
  let rec bump = function
    | [] -> [ (name, seconds) ]
    | (n, s) :: rest when String.equal n name -> (n, s +. seconds) :: rest
    | e :: rest -> e :: bump rest
  in
  t.entries <- bump t.entries

let time t name f =
  let t0 = Unix.gettimeofday () in
  Fun.protect
    ~finally:(fun () -> record t name (Unix.gettimeofday () -. t0))
    f

let phases t = t.entries

let total t = List.fold_left (fun acc (_, s) -> acc +. s) 0. t.entries

let pp ppf t =
  let all = total t in
  Format.fprintf ppf "@[<v>";
  List.iteri
    (fun i (name, s) ->
      if i > 0 then Format.fprintf ppf "@,";
      Format.fprintf ppf "%-12s %8.2f ms  %5.1f%%" name (1000. *. s)
        (if all = 0. then 0. else 100. *. s /. all))
    t.entries;
  Format.fprintf ppf "@,%-12s %8.2f ms@]" "total" (1000. *. all)

let to_json t =
  Json.obj
    (List.map (fun (name, s) -> (name, Json.Float (1000. *. s))) t.entries
    @ [ ("total_ms", Json.Float (1000. *. total t)) ])
