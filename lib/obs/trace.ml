type event =
  | Complete of {
      cat : string;
      name : string;
      pid : int;
      tid : int;
      ts : int;
      dur : int;
      args : (string * Json.t) list;
    }
  | Counter of { name : string; pid : int; ts : int; value : int }

type sink = {
  buf : event array;  (** ring buffer *)
  s_sample : int;
  mutable next : int;  (** write position *)
  mutable total : int;  (** events ever recorded *)
}

type t = Disabled | Ring of sink

let disabled = Disabled

let dummy = Counter { name = ""; pid = 0; ts = 0; value = 0 }

let create ?(capacity = 65536) ?(sample = 1) () =
  if capacity <= 0 then invalid_arg "Trace.create: capacity must be positive";
  if sample <= 0 then invalid_arg "Trace.create: sample must be positive";
  Ring { buf = Array.make capacity dummy; s_sample = sample; next = 0; total = 0 }

let enabled = function Disabled -> false | Ring _ -> true

let sample = function Disabled -> 1 | Ring s -> s.s_sample

let hit t id =
  match t with Disabled -> false | Ring s -> id mod s.s_sample = 0

let push t ev =
  match t with
  | Disabled -> ()
  | Ring s ->
    s.buf.(s.next) <- ev;
    s.next <- (s.next + 1) mod Array.length s.buf;
    s.total <- s.total + 1

let span t ~cat ~name ~pid ~tid ~ts ~dur ?(args = []) () =
  match t with
  | Disabled -> ()
  | Ring _ -> push t (Complete { cat; name; pid; tid; ts; dur; args })

let counter t ~name ~pid ~ts ~value =
  match t with
  | Disabled -> ()
  | Ring _ -> push t (Counter { name; pid; ts; value })

let recorded = function Disabled -> 0 | Ring s -> s.total

let dropped = function
  | Disabled -> 0
  | Ring s -> max 0 (s.total - Array.length s.buf)

let events t =
  match t with
  | Disabled -> []
  | Ring s ->
    let cap = Array.length s.buf in
    let n = min s.total cap in
    let first = if s.total <= cap then 0 else s.next in
    List.init n (fun i -> s.buf.((first + i) mod cap))

let event_to_json = function
  | Complete { cat; name; pid; tid; ts; dur; args } ->
    Json.obj
      ([
         ("name", Json.String name);
         ("cat", Json.String cat);
         ("ph", Json.String "X");
         ("pid", Json.Int pid);
         ("tid", Json.Int tid);
         ("ts", Json.Int ts);
         ("dur", Json.Int (max 1 dur));
       ]
      @ if args = [] then [] else [ ("args", Json.Obj args) ])
  | Counter { name; pid; ts; value } ->
    Json.obj
      [
        ("name", Json.String name);
        ("ph", Json.String "C");
        ("pid", Json.Int pid);
        ("tid", Json.Int 0);
        ("ts", Json.Int ts);
        ("args", Json.Obj [ ("value", Json.Int value) ]);
      ]

let to_json t =
  Json.obj
    [
      ("traceEvents", Json.list event_to_json (events t));
      ("displayTimeUnit", Json.String "ms");
      ( "otherData",
        Json.Obj
          [
            ("timeUnit", Json.String "1 cycle = 1 us");
            ("sample", Json.Int (sample t));
            ("recorded", Json.Int (recorded t));
            ("dropped", Json.Int (dropped t));
          ] );
    ]

let write_file t path =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> Json.to_channel oc (to_json t))
