lib/core/customize.ml: Affine Array Cluster Fun Layout List Noc
