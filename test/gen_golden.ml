(* gen_golden — regenerate the committed golden snapshots under
   test/golden/.

     dune exec test/gen_golden.exe -- golden/seed0_stats.json
     dune exec test/gen_golden.exe -- --attr golden/seed0_attr.txt
     dune exec test/gen_golden.exe -- --emits test/golden

   The seed-0 stats golden pins the simulator's observable behavior: the
   engine refactors (event heap, request pool, route memoization) must
   keep it byte-identical.  The --emits goldens pin the compiler
   pipeline's stage dumps (occ --emit) for jacobi and hpccg.
   Regenerating either is legitimate only when a change intentionally
   alters the simulated timing model or the pass artifacts — never to
   absorb an accidental behavior change; say why in the commit that
   updates them. *)

let small_src =
  {|
param N = 64;
array A[N][N];
array B[N][N];
parfor i = 1 to N-2 { for j = 0 to N-1 { A[i][j] = B[i][j] + B[i-1][j] + B[i+1][j]; } }
|}

let parse src =
  match Lang.Parser.parse_result src with
  | Ok p -> p
  | Error (d :: _) -> failwith (Lang.Diag.to_string d)
  | Error [] -> failwith "parse failed"

let stats_golden path =
  let cfg = Sim.Config.scaled () in
  let program = parse small_src in
  let r = Sim.Runner.run cfg ~optimized:false program in
  let doc = Sweep.Exec.result_json ~app:"golden-small" cfg r in
  match path with
  | Some path ->
    let oc = open_out path in
    Obs.Json.to_channel oc doc;
    close_out oc;
    Printf.printf "golden written to %s\n" path
  | None -> print_string (Obs.Json.to_string doc)

(* The seed-0 attribution table: the same run as the stats golden but
   with site tagging on, so the table pins site numbering, per-site
   counts and the pp_table rendering all at once.  The stats golden
   itself stays attribution-free — its byte-identity across the
   attribution feature is part of what the suite checks. *)
let attr_golden path =
  let cfg = Sim.Config.scaled () in
  let program = parse small_src in
  let p = Sim.Runner.prepare cfg ~optimized:false ~attr:true program in
  let attr = Sim.Runner.attr_for cfg p in
  let (_ : Sim.Engine.result) =
    Sim.Runner.run_many ~attr cfg ~jobs:[ p ]
  in
  let table =
    Format.asprintf "%a" Obs.Attr.pp_table (Obs.Attr.snapshot attr)
  in
  match path with
  | Some path ->
    let oc = open_out path in
    output_string oc table;
    close_out oc;
    Printf.printf "golden written to %s\n" path
  | None -> print_string table

(* The pipeline stage dumps the test suite compares against
   (test_pipeline.ml): default platform, same stages as occ --emit. *)
let emit_goldens dir =
  let cfg =
    match Sim.Config.build ~scaled:false () with
    | Ok c -> Sim.Config.customize_config c
    | Error e -> failwith e
  in
  let write name dump =
    let path = Filename.concat dir name in
    let oc = open_out path in
    output_string oc dump;
    output_char oc '\n';
    close_out oc;
    Printf.printf "golden written to %s\n" path
  in
  let emit r stage =
    match Core.Pipeline.emit r stage with
    | Some s -> s
    | None -> failwith "pipeline did not reach the requested stage"
  in
  let jacobi = "examples/jacobi.mc" in
  let src =
    let ic = open_in_bin jacobi in
    let s = really_input_string ic (in_channel_length ic) in
    close_in ic;
    s
  in
  let rj =
    Core.Pipeline.compile ~cfg (Core.Pipeline.Source { file = jacobi; src })
  in
  write "jacobi_solve.txt" (emit rj Core.Pipeline.Solve);
  write "jacobi_transformed.txt" (emit rj Core.Pipeline.Transformed);
  let app = Workloads.Suite.by_name "hpccg" in
  let program = Workloads.App.program app in
  let analysis = Lang.Analysis.analyze program in
  let profile arr = Workloads.Profile.for_transform app analysis arr in
  let rh = Core.Pipeline.compile ~profile ~cfg (Core.Pipeline.Program program) in
  write "hpccg_solve.txt" (emit rh Core.Pipeline.Solve)

(* The consolidation-server goldens: the smoke scenario at two seeds,
   full result documents (engine stats + scenario + per-tenant + QoS).
   They pin the arrival stream, the shared-pool placement, the admission
   chains and the reclaim path all at once. *)
let serve_goldens dir =
  List.iter
    (fun seed ->
      let sc = Serve.Scenario.smoke ~seed () in
      match Serve.Server.run sc with
      | Error e -> failwith ("serve golden: " ^ e)
      | Ok run ->
        let path = Filename.concat dir (Printf.sprintf "serve_seed%d.json" seed) in
        let oc = open_out path in
        Obs.Json.to_channel oc (Serve.Server.result_json run);
        close_out oc;
        Printf.printf "golden written to %s\n" path)
    [ 0; 1 ]

let () =
  match Array.to_list Sys.argv with
  | _ :: "--emits" :: dir :: _ -> emit_goldens dir
  | _ :: "--attr" :: rest -> attr_golden (List.nth_opt rest 0)
  | _ :: "--serve" :: dir :: _ -> serve_goldens dir
  | _ :: path :: _ -> stats_golden (Some path)
  | _ -> stats_golden None
