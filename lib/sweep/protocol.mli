(** Parent↔worker wire protocol of the process pool.

    Requests (parent → worker) are single lines; replies (worker →
    parent) are a header line followed by a length-prefixed payload, so
    arbitrary bytes (JSON, captured output) pass through unmangled:

    {v
    RUN <job-index>\n
    QUIT\n
    REP <job-index> <0|1> <payload-length>\n<payload bytes>
    v}

    The parent multiplexes many workers with [select], so its side of the
    reply stream is an incremental {!reader} fed by whatever bytes are
    available; the worker side is plain blocking I/O. *)

type request = Run of int | Quit

type reply = { job : int; ok : bool; payload : string }

val write_request : Unix.file_descr -> request -> unit

val read_request : in_channel -> request option
(** Blocking; [None] on EOF (parent died or closed the queue) or on a
    malformed line — either way the worker should exit. *)

val write_reply : Unix.file_descr -> reply -> unit

type reader
(** Incremental reply parser over one worker's pipe. *)

val reader : Unix.file_descr -> reader

val reader_fd : reader -> Unix.file_descr

val feed : reader -> [ `Data | `Eof ]
(** Reads whatever is available on the fd (call after [select] marks it
    readable) into the internal buffer. *)

val next_reply : reader -> (reply, string) result option
(** Extracts the next complete reply, [None] while incomplete,
    [Some (Error _)] on a corrupt frame (treat the worker as crashed). *)
