(** DDR3-1600 timing model, expressed in CPU cycles.

    The platform of Table 1 uses Micron DDR3-1600 parts (tCK = 1.25 ns)
    with a 2 GHz core clock (0.5 ns), i.e. 2.5 CPU cycles per memory
    cycle.  We precompute the three service times the controller needs:

    - row-buffer hit: tCAS + tBURST
    - empty row (closed bank): tRCD + tCAS + tBURST
    - row conflict: tRP + tRCD + tCAS + tBURST

    with the JEDEC DDR3-1600 11-11-11 grade (tCAS = tRCD = tRP = 11 memory
    cycles).  The transfer unit is one 256 B L2 line = four BL8 bursts =
    16 memory cycles of data-bus occupancy. *)

type t = {
  row_hit : int;  (** service time on a row-buffer hit *)
  row_empty : int;  (** service time when the bank has no open row *)
  row_conflict : int;  (** service time when another row is open *)
  burst : int;  (** data-bus occupancy per access *)
}

val ddr3_1600 : t

val scale : float -> t -> t
(** Uniformly scales all parameters (sensitivity studies). *)
