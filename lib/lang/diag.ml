(* Structured compiler diagnostics: severity, stable error code, source
   span, message and secondary notes.  Replaces the bare-string
   exceptions the seed compiler threw from fifteen scattered sites. *)

type severity = Error | Warning | Note

type note = { note_span : Span.t option; note_text : string }

type t = {
  severity : severity;
  code : string;
  span : Span.t;
  message : string;
  notes : note list;
}

exception Fatal of t
(** Internal abort carrier for the [_result] entry points; callers only
    ever see the [Error] value it is converted into. *)

let make ?(severity = Error) ?(code = "E000") ?(notes = []) span message =
  { severity; code; span; message; notes }

let error ?code ?notes span message = make ~severity:Error ?code ?notes span message

let warning ?code ?notes span message =
  make ~severity:Warning ?code ?notes span message

let note ?span text = { note_span = span; note_text = text }

let severity_string = function
  | Error -> "error"
  | Warning -> "warning"
  | Note -> "note"

let is_error d = d.severity = Error

let has_errors ds = List.exists is_error ds

(* Sort by file, then span start, then severity (errors first). *)
let by_position a b =
  match compare a.span.Span.file b.span.Span.file with
  | 0 -> (
    match compare a.span.Span.lo b.span.Span.lo with
    | 0 -> compare a.severity b.severity
    | c -> c)
  | c -> c

let sorted ds = List.stable_sort by_position ds

(* Caret rendering:

     examples/jacobi.mc:4:9: error[S002]: array Z has rank 2, used with 1 subscript
       Z[j] = Z[j-1][i] + 1;
         ^^^
     note: Z declared here
*)
let pp_caret ~src ppf (span : Span.t) =
  if not (Span.is_dummy span) then begin
    let lo = Span.position_of ~src span.Span.lo in
    let line = Span.line_at ~src span.Span.lo in
    let width =
      let hi = Span.position_of ~src (max span.Span.lo (span.Span.hi - 1)) in
      if hi.Span.line = lo.Span.line then max 1 (hi.Span.col - lo.Span.col + 1)
      else max 1 (String.length line - lo.Span.col + 1)
    in
    Format.fprintf ppf "@,  %s@,  %s%s" line
      (String.make (lo.Span.col - 1) ' ')
      (String.make width '^')
  end

let pp ?src ppf d =
  Format.fprintf ppf "@[<v>%a: %s[%s]: %s" (Span.pp ?src) d.span
    (severity_string d.severity) d.code d.message;
  (match src with Some src -> pp_caret ~src ppf d.span | None -> ());
  List.iter
    (fun n ->
      (match n.note_span with
      | Some s -> Format.fprintf ppf "@,%a: note: %s" (Span.pp ?src) s n.note_text
      | None -> Format.fprintf ppf "@,note: %s" n.note_text);
      match (src, n.note_span) with
      | Some src, Some s -> pp_caret ~src ppf s
      | _ -> ())
    d.notes;
  Format.fprintf ppf "@]"

let to_string ?src d = Format.asprintf "%a" (pp ?src) d

let span_json ?src (s : Span.t) =
  let base =
    [
      ("file", Obs.Json.String s.Span.file);
      ("lo", Obs.Json.Int s.Span.lo);
      ("hi", Obs.Json.Int s.Span.hi);
    ]
  in
  let pos =
    match src with
    | None -> []
    | Some src ->
      let p = Span.position_of ~src s.Span.lo in
      [ ("line", Obs.Json.Int p.Span.line); ("col", Obs.Json.Int p.Span.col) ]
  in
  Obs.Json.obj (base @ pos)

let to_json ?src d =
  Obs.Json.obj
    [
      ("severity", Obs.Json.String (severity_string d.severity));
      ("code", Obs.Json.String d.code);
      ("span", span_json ?src d.span);
      ("message", Obs.Json.String d.message);
      ( "notes",
        Obs.Json.list
          (fun n ->
            Obs.Json.obj
              ((match n.note_span with
               | Some s -> [ ("span", span_json ?src s) ]
               | None -> [])
              @ [ ("text", Obs.Json.String n.note_text) ]))
          d.notes );
    ]

let list_to_json ?src ds = Obs.Json.list (to_json ?src) (sorted ds)
