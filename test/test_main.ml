(* Aggregated test runner: one suite per library. *)

let () =
  Alcotest.run "offchip"
    (Test_affine.suite @ Test_lang.suite @ Test_noc.suite @ Test_cache.suite
   @ Test_dram.suite @ Test_os.suite @ Test_core.suite @ Test_sim.suite
   @ Test_workloads.suite @ Test_obs.suite @ Test_integration.suite
   @ Test_extensions.suite @ Test_fuzz.suite @ Test_misc.suite
   @ Test_sweep.suite @ Test_pipeline.suite @ Test_platform.suite
   @ Test_attr.suite @ Test_serve.suite @ Test_par.suite
   @ Test_place_search.suite)
