examples/loop_vs_data.ml: Affine Core Lang List Printf Sim String
