(** Parallel execution substrate for {!Par_engine}.

    The implementation is selected at build time by a pair of dune
    [copy] rules gated on [%{ocaml_version}]: on OCaml >= 5.0
    [par_backend_domains.ml] spawns one domain per worker; on older
    compilers [par_backend_fallback.ml] degrades to a plain sequential
    map with {!available} = [false].  Either way the partitioned
    run/merge path of {!Par_engine} (and its oracle tests) compiles and
    runs everywhere — the fallback just yields no wall-clock speedup,
    and the CLIs refuse [--domains > 1] up front on pre-5 builds. *)

val available : bool
(** Whether {!map_workers} actually runs workers concurrently. *)

val cpu_count : unit -> int
(** Best-effort number of CPUs usable for domains ([1] on the
    fallback backend) — the perf gate skips its speedup assertion when
    the host cannot physically exhibit one. *)

val map_workers : workers:int -> ('a -> 'b) -> 'a array -> 'b array
(** [map_workers ~workers f xs] computes [Array.map f xs] with up to
    [workers] concurrent workers.  Element [i] is processed by worker
    [i mod workers], each worker walks its indices in increasing order,
    and results land at their input's index — the schedule is
    deterministic, so any per-worker state (none today) could not leak
    ordering into results.  An exception in any worker is re-raised in
    the caller after every worker has been joined. *)
