module Vec = Affine.Vec
module Analysis = Lang.Analysis
module Ast = Lang.Ast

type why_kept =
  | Index_array
  | No_parallel_reference
  | No_solution
  | Bad_approximation of float

type decision = {
  info : Analysis.array_info;
  layout : Layout.t;
  optimized : bool;
  kept : why_kept option;
  satisfied_weight : int;
  total_weight : int;
}

type report = {
  decisions : decision list;
  pct_arrays_optimized : float;
  pct_refs_satisfied : float;
}

(* Collect the weighted references that participate in solving: affine
   references under a parallel loop, plus profiled approximations of
   indexed references.  Returns the refs and the worst approximation
   inaccuracy encountered (to report arrays dropped for bad fits). *)
let weighted_refs ?profile ~threshold (info : Analysis.array_info) =
  let refs = ref [] and worst_fit = ref None in
  let total = ref 0 in
  List.iter
    (fun (o : Analysis.occurrence) ->
      match (o.kind, o.par_dim) with
      | Analysis.Affine_ref access, Some u ->
        total := !total + o.trip_count;
        refs :=
          { Data_to_core.access; u; weight = o.trip_count } :: !refs
      | Analysis.Affine_ref _, None -> ()
      | Analysis.Indexed_ref, Some u -> (
        total := !total + o.trip_count;
        match profile with
        | None -> ()
        | Some f -> (
          match Indexed.approximate ~samples:(f info.decl.Ast.name) with
          | Some (access, inaccuracy) when inaccuracy <= threshold ->
            refs :=
              { Data_to_core.access; u; weight = o.trip_count } :: !refs
          | Some (_, inaccuracy) ->
            worst_fit :=
              Some
                (match !worst_fit with
                | None -> inaccuracy
                | Some w -> max w inaccuracy)
          | None -> ()))
      | Analysis.Indexed_ref, None -> ())
    info.occurrences;
  (List.rev !refs, !total, !worst_fit)

(* partition-dimension of the transformed space: the slowest-varying
   (footnote 3) *)
let v_dim = 0

type outcome = Solved of Data_to_core.solution | Kept of why_kept

type solved = {
  s_info : Analysis.array_info;
  s_refs : Data_to_core.weighted_ref list;
      (** the weighted references the solver saw (after indexed
          approximation) — kept for the inter-pass verifier *)
  s_total : int;
  s_outcome : outcome;
}

(* Stage 1 of Algorithm 1: platform-independent.  Collect each array's
   weighted references (approximating indexed ones from the profile) and
   solve the Data-to-Core system. *)
let solve_one ?profile ~threshold (info : Analysis.array_info) =
  if info.decl.Ast.index_array then
    { s_info = info; s_refs = []; s_total = 0; s_outcome = Kept Index_array }
  else begin
    let refs, total, worst_fit = weighted_refs ?profile ~threshold info in
    let outcome =
      match refs with
      | [] -> (
        match worst_fit with
        | Some w -> Kept (Bad_approximation w)
        | None -> Kept No_parallel_reference)
      | _ -> (
        match Data_to_core.solve ~refs ~v:v_dim with
        | None -> Kept No_solution
        | Some sol -> Solved sol)
    in
    { s_info = info; s_refs = refs; s_total = total; s_outcome = outcome }
  end

let solve_all ?profile ?(threshold = Indexed.default_threshold)
    (analysis : Analysis.t) =
  List.map (solve_one ?profile ~threshold) analysis.Analysis.arrays

(* Stage 2: platform-dependent customization of each solved mapping. *)
let customize_one (cfg : Customize.config) (s : solved) =
  let name = s.s_info.decl.Ast.name in
  match s.s_outcome with
  | Kept why ->
    {
      info = s.s_info;
      layout =
        Layout.identity ~array:name ~extents:s.s_info.extents
          ~elem_bytes:cfg.Customize.elem_bytes;
      optimized = false;
      kept = Some why;
      satisfied_weight = 0;
      total_weight = s.s_total;
    }
  | Solved sol ->
    {
      info = s.s_info;
      layout =
        Customize.customize cfg ~array:name ~extents:s.s_info.extents
          ~u:sol.Data_to_core.u_matrix ~v:v_dim;
      optimized = true;
      kept = None;
      satisfied_weight = sol.Data_to_core.satisfied_weight;
      total_weight = s.s_total;
    }

let report_of decisions =
  let data_arrays =
    List.filter (fun d -> not d.info.Analysis.decl.Ast.index_array) decisions
  in
  let n_opt = List.length (List.filter (fun d -> d.optimized) data_arrays) in
  let n_all = List.length data_arrays in
  let sat = List.fold_left (fun a d -> a + d.satisfied_weight) 0 data_arrays in
  let tot = List.fold_left (fun a d -> a + d.total_weight) 0 data_arrays in
  {
    decisions;
    pct_arrays_optimized =
      (if n_all = 0 then 0. else 100. *. float_of_int n_opt /. float_of_int n_all);
    pct_refs_satisfied =
      (if tot = 0 then 0. else 100. *. float_of_int sat /. float_of_int tot);
  }

let customize_all cfg solved = report_of (List.map (customize_one cfg) solved)

let run ?profile ?threshold (cfg : Customize.config) (analysis : Analysis.t) =
  customize_all cfg (solve_all ?profile ?threshold analysis)

let layout_of report name =
  let d =
    List.find
      (fun d -> String.equal d.info.Analysis.decl.Ast.name name)
      report.decisions
  in
  d.layout

(* Does any chosen layout use a Perm dimension (the shared-L2 home
   lookup)?  If so the rewritten program needs the compiler-emitted
   __home index array declared. *)
let uses_home_lookup report =
  let rec expr_uses = function
    | Layout.D _ -> false
    | Layout.Div (e, _) | Layout.Mod (e, _) -> expr_uses e
    | Layout.Perm _ -> true
  in
  List.exists
    (fun d ->
      d.optimized
      && Array.exists
           (fun (od : Layout.out_dim) -> expr_uses od.Layout.expr)
           d.layout.Layout.out)
    report.decisions

let home_table_size report =
  List.fold_left
    (fun acc d ->
      let rec expr_size = function
        | Layout.D _ -> 0
        | Layout.Div (e, _) | Layout.Mod (e, _) -> expr_size e
        | Layout.Perm (_, t) -> Array.length t
      in
      Array.fold_left
        (fun acc (od : Layout.out_dim) -> max acc (expr_size od.Layout.expr))
        acc d.layout.Layout.out)
    0 report.decisions

let rewrite_program report (p : Ast.program) =
  let layout name =
    List.find_opt
      (fun d -> String.equal d.info.Analysis.decl.Ast.name name)
      report.decisions
  in
  let rewrite_ref (r : Ast.ref_) subs' =
    match layout r.Ast.array with
    | Some d when d.optimized ->
      { r with Ast.subs = Layout.transformed_subscripts d.layout subs' }
    | _ -> { r with Ast.subs = subs' }
  in
  let rec rewrite_expr = function
    | (Ast.Int _ | Ast.Var _) as e -> e
    | Ast.Neg a -> Ast.Neg (rewrite_expr a)
    | Ast.Add (a, b) -> Ast.Add (rewrite_expr a, rewrite_expr b)
    | Ast.Sub (a, b) -> Ast.Sub (rewrite_expr a, rewrite_expr b)
    | Ast.Mul (a, b) -> Ast.Mul (rewrite_expr a, rewrite_expr b)
    | Ast.Div (a, b) -> Ast.Div (rewrite_expr a, rewrite_expr b)
    | Ast.Mod (a, b) -> Ast.Mod (rewrite_expr a, rewrite_expr b)
    | Ast.Load r -> Ast.Load (rewrite_ref r (List.map rewrite_expr r.Ast.subs))
  in
  let rec rewrite_stmt = function
    | Ast.Assign (lhs, rhs) ->
      Ast.Assign
        (rewrite_ref lhs (List.map rewrite_expr lhs.Ast.subs), rewrite_expr rhs)
    | Ast.Loop l -> Ast.Loop { l with Ast.body = List.map rewrite_stmt l.body }
    | Ast.If c ->
      Ast.If
        {
          c with
          Ast.lhs = rewrite_expr c.Ast.lhs;
          rhs = rewrite_expr c.Ast.rhs;
          then_ = List.map rewrite_stmt c.Ast.then_;
          else_ = List.map rewrite_stmt c.Ast.else_;
        }
  in
  let rewrite_decl (d : Ast.decl) =
    match layout d.Ast.name with
    | Some dec when dec.optimized ->
      {
        d with
        Ast.extents =
          Array.to_list
            (Array.map
               (fun (od : Layout.out_dim) -> Ast.Int od.Layout.extent)
               dec.layout.Layout.out);
      }
    | _ -> d
  in
  let decls = List.map rewrite_decl p.Ast.decls in
  let decls =
    if uses_home_lookup report then
      (* the compiler-emitted home-bank lookup (shared L2) *)
      Ast.mk_decl ~name:"__home"
        ~extents:[ Ast.Int (home_table_size report) ]
        ~index_array:true ()
      :: decls
    else decls
  in
  { p with Ast.decls; Ast.nests = List.map rewrite_stmt p.Ast.nests }

let pp_solved ppf (s : solved) =
  let name = s.s_info.Analysis.decl.Ast.name in
  match s.s_outcome with
  | Solved sol ->
    Format.fprintf ppf "@[<v>%s: g = %a (weight %d/%d), U =@,%a@]" name
      Vec.pp sol.Data_to_core.g sol.Data_to_core.satisfied_weight s.s_total
      Affine.Matrix.pp sol.Data_to_core.u_matrix
  | Kept why ->
    let reason =
      match why with
      | Index_array -> "index array"
      | No_parallel_reference -> "no parallel affine reference"
      | No_solution -> "no non-trivial solution"
      | Bad_approximation f ->
        Printf.sprintf "approximation inaccuracy %.0f%%" (100. *. f)
    in
    Format.fprintf ppf "%s: kept (%s)" name reason

let pp_report ppf r =
  Format.fprintf ppf "@[<v>arrays optimized: %.1f%%, references satisfied: %.1f%%"
    r.pct_arrays_optimized r.pct_refs_satisfied;
  List.iter
    (fun d ->
      let name = d.info.Analysis.decl.Ast.name in
      if d.optimized then
        Format.fprintf ppf "@,  %s: optimized (%d/%d weight satisfied)" name
          d.satisfied_weight d.total_weight
      else
        let why =
          match d.kept with
          | Some Index_array -> "index array"
          | Some No_parallel_reference -> "no parallel affine reference"
          | Some No_solution -> "no non-trivial solution"
          | Some (Bad_approximation f) ->
            Printf.sprintf "approximation inaccuracy %.0f%%" (100. *. f)
          | None -> "?"
        in
        Format.fprintf ppf "@,  %s: kept (%s)" name why)
    r.decisions;
  Format.fprintf ppf "@]"
