test/test_integration.ml: Affine Alcotest Array Core Dram Hashtbl Lang List Printexc Printf QCheck QCheck_alcotest Sim Workloads
