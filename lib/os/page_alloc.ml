type policy =
  | Hardware_interleaved
  | First_touch of (int -> int)
  | Mc_aware of { desired : int -> int option; fallback : int -> int }

type t = {
  map : Dram.Address_map.t;
  policy : policy;
  frames_per_mc : int;
  table : (int, int) Hashtbl.t;  (** virtual page -> physical frame *)
  next_local : int array;  (** per MC: next never-used local frame index *)
  free_local : int list array;
      (** per MC: reclaimed local frame indices, reused LIFO before the
          bump pointer advances *)
  in_use : int array;  (** per MC: frames currently mapped *)
  mutable next_seq : int;  (** line-interleaved mode: next frame *)
  mutable free_seq : int list;  (** line-interleaved mode: reclaimed *)
  mutable seq_in_use : int;
  mutable fallbacks : int;
  owner_fallbacks : (int, int) Hashtbl.t;
      (** fallbacks charged to each owner tag (a tenant/job id) *)
}

let create ~map ~policy ?(frames_per_mc = 1 lsl 18) () =
  {
    map;
    policy;
    frames_per_mc;
    table = Hashtbl.create 4096;
    next_local = Array.make map.Dram.Address_map.num_mcs 0;
    free_local = Array.make map.Dram.Address_map.num_mcs [];
    in_use = Array.make map.Dram.Address_map.num_mcs 0;
    next_seq = 0;
    free_seq = [];
    seq_in_use = 0;
    fallbacks = 0;
    owner_fallbacks = Hashtbl.create 16;
  }

(* Global frame number of local frame [i] on controller [m]: under page
   interleaving, frame g lives on MC (g mod num_mcs). *)
let frame_on t m i = (i * t.map.Dram.Address_map.num_mcs) + m

let note_fallback t owner =
  t.fallbacks <- t.fallbacks + 1;
  if owner >= 0 then
    Hashtbl.replace t.owner_fallbacks owner
      (1 + Option.value (Hashtbl.find_opt t.owner_fallbacks owner) ~default:0)

(* A controller has room when its live-frame count is under budget —
   counting live frames (not the bump pointer) is what lets a full
   controller refill from reclaimed frames instead of over-allocating. *)
let has_room t m = t.in_use.(m) < t.frames_per_mc

let take_frame t m =
  t.in_use.(m) <- t.in_use.(m) + 1;
  match t.free_local.(m) with
  | i :: rest ->
    t.free_local.(m) <- rest;
    frame_on t m i
  | [] ->
    let i = t.next_local.(m) in
    t.next_local.(m) <- i + 1;
    frame_on t m i

let alloc_on t ~owner m =
  let num_mcs = t.map.Dram.Address_map.num_mcs in
  (* try the desired controller, then the others round-robin *)
  let rec try_mc i =
    if i = num_mcs then failwith "Page_alloc: physical memory exhausted"
    else
      let m' = (m + i) mod num_mcs in
      if has_room t m' then begin
        if i > 0 then note_fallback t owner;
        take_frame t m'
      end
      else try_mc (i + 1)
  in
  try_mc 0

let translate_owned t ~owner ~node ~vaddr =
  let page_bytes = t.map.Dram.Address_map.page_bytes in
  let vpage = vaddr / page_bytes in
  let frame =
    match Hashtbl.find_opt t.table vpage with
    | Some f -> f
    | None ->
      let f =
        match t.map.Dram.Address_map.interleaving with
        | Dram.Address_map.Line_interleaved ->
          (* MC bits are inside the page offset: any frame works, but the
             total capacity is still bounded *)
          if
            t.seq_in_use
            >= t.frames_per_mc * t.map.Dram.Address_map.num_mcs
          then failwith "Page_alloc: physical memory exhausted"
          else begin
            t.seq_in_use <- t.seq_in_use + 1;
            match t.free_seq with
            | f :: rest ->
              t.free_seq <- rest;
              f
            | [] ->
              let f = t.next_seq in
              t.next_seq <- f + 1;
              f
          end
        | Dram.Address_map.Page_interleaved -> (
          match t.policy with
          | Hardware_interleaved ->
            alloc_on t ~owner (vpage mod t.map.Dram.Address_map.num_mcs)
          | First_touch cluster_mc -> alloc_on t ~owner (cluster_mc node)
          | Mc_aware { desired; fallback } ->
            alloc_on t ~owner
              (match desired vpage with Some m -> m | None -> fallback node))
      in
      Hashtbl.replace t.table vpage f;
      f
  in
  (frame * page_bytes) + (vaddr mod page_bytes)

let translate t ~node ~vaddr = translate_owned t ~owner:(-1) ~node ~vaddr

let free_region t ~first_vpage ~last_vpage =
  let freed = ref 0 in
  for vpage = first_vpage to last_vpage do
    match Hashtbl.find_opt t.table vpage with
    | None -> ()
    | Some f ->
      Hashtbl.remove t.table vpage;
      incr freed;
      (match t.map.Dram.Address_map.interleaving with
      | Dram.Address_map.Line_interleaved ->
        t.free_seq <- f :: t.free_seq;
        t.seq_in_use <- t.seq_in_use - 1
      | Dram.Address_map.Page_interleaved ->
        let num_mcs = t.map.Dram.Address_map.num_mcs in
        let m = f mod num_mcs in
        t.free_local.(m) <- (f / num_mcs) :: t.free_local.(m);
        t.in_use.(m) <- t.in_use.(m) - 1)
  done;
  !freed

let mc_of_vpage t vpage =
  match t.map.Dram.Address_map.interleaving with
  | Dram.Address_map.Line_interleaved -> None
  | Dram.Address_map.Page_interleaved ->
    Option.map
      (fun f -> f mod t.map.Dram.Address_map.num_mcs)
      (Hashtbl.find_opt t.table vpage)

let pages_allocated t = Hashtbl.length t.table

let fallback_allocations t = t.fallbacks

let fallback_allocations_of t ~owner =
  Option.value (Hashtbl.find_opt t.owner_fallbacks owner) ~default:0

let reset t =
  Hashtbl.reset t.table;
  Array.fill t.next_local 0 (Array.length t.next_local) 0;
  Array.fill t.free_local 0 (Array.length t.free_local) [];
  Array.fill t.in_use 0 (Array.length t.in_use) 0;
  t.next_seq <- 0;
  t.free_seq <- [];
  t.seq_in_use <- 0;
  t.fallbacks <- 0;
  Hashtbl.reset t.owner_fallbacks
