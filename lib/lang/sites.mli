(** Access-site table: one entry per static array reference of a program.

    The attribution layer ties every memory access a run performs back to
    the source construct that issued it.  A {e site} is a static array
    reference — the [B[i-1][j]] of a stencil — identified by a small dense
    id.  {!of_program} numbers the references of a program in the order
    the interpreter emits their accesses (reads of a statement before its
    write, subscript loads before the enclosing reference), so the table
    doubles as a legend for tagged traces.

    Site ids are attached to dynamic accesses through {!id_of_ref}: the
    interpreter holds the very [Ast.ref_] node it is about to emit, and
    the table resolves it by physical identity — no id field on the AST,
    no structural collisions between equal-looking references at different
    source locations. *)

type site = {
  id : int;
  array : string;  (** referenced array *)
  write : bool;
  span : Span.t;  (** source location of the reference *)
  phase : int;  (** index of the top-level nest containing it *)
}

type t

val of_program : Ast.program -> t
(** Numbers every array reference of the program (loop bounds, condition
    operands, subscripts, right-hand sides, left-hand sides), densely from
    0, in interpreter emission order.  A physically shared reference node
    gets one site. *)

val sites : t -> site array
(** All sites, index = id. *)

val length : t -> int

val id_of_ref : t -> Ast.ref_ -> int
(** The site id of a reference node of the program the table was built
    from, by physical identity; [-1] for foreign nodes. *)

val site_of : t -> Ast.ref_ -> site option

val pp : ?src:string -> Format.formatter -> t -> unit
(** One line per site: id, array, R/W, phase, location ([src] renders
    line:column positions, as in {!Span.pp}). *)

val to_json : ?src:string -> t -> Obs.Json.t
