module Ast = Lang.Ast
module Diag = Lang.Diag
module Span = Lang.Span
module Analysis = Lang.Analysis

type source = Source of { file : string; src : string } | Program of Ast.program

type ('a, 'b) pass = { name : string; run : 'a -> ('b, Diag.t list) result }

let pass name run = { name; run }

type artifacts = {
  mutable program : Ast.program option;
  mutable analysis : Analysis.t option;
  mutable solved : Transform.solved list option;
  mutable cfg : Customize.config option;
  mutable mapping_scores : Mapping_select.scored list option;
  mutable search : Place_search.outcome option;
  mutable report : Transform.report option;
  mutable transformed : Ast.program option;
  mutable sites : Lang.Sites.t option;
  mutable c_code : string option;
}

type t = {
  artifacts : artifacts;
  diags : Diag.t list;
  timer : Obs.Phase_timer.t;
  ok : bool;
}

(* The manager: run one pass, time it, fold its diagnostics into the
   accumulator.  [None] means the pass failed and the chain stops; the
   artifacts recorded so far stay available (for --emit). *)
type ctx = { timer : Obs.Phase_timer.t; mutable diags : Diag.t list }

let run_pass ctx p x =
  match Obs.Phase_timer.time ctx.timer p.name (fun () -> p.run x) with
  | Ok y -> Some y
  | Error ds ->
    ctx.diags <- ctx.diags @ ds;
    None

let parse_pass =
  pass "parse" (function
    | Source { file; src } -> Lang.Parser.parse_program_result ~file src
    | Program p -> Ok p)

let check_pass = pass "check" Lang.Parser.check_result

let analyze_pass = pass "analyze" Analysis.analyze_result

let solve_pass ?profile ?threshold () =
  pass "solve" (fun analysis ->
      Ok (Transform.solve_all ?profile ?threshold analysis))

(* Candidate selection (Section 4): with one candidate this is the
   identity; with several, Mapping_select's estimated-cost model ranks
   them all (the ranking lands in [artifacts.mapping_scores] and, as a
   C002 note, in the diagnostic stream) and the cheapest wins. *)
let mapping_pass ~bank_pressure ~art =
  pass "mapping" (fun candidates ->
      match candidates with
      | [] ->
        Error
          [ Diag.error ~code:"C001" Span.dummy "no candidate cluster mapping" ]
      | [ cfg ] -> Ok cfg
      | cfgs ->
        let topo = (List.hd cfgs).Customize.topo in
        let scored =
          Mapping_select.score topo
            ~candidates:
              (List.map
                 (fun (c : Customize.config) ->
                   (c.Customize.cluster, c.Customize.placement))
                 cfgs)
            ~bank_pressure
        in
        art.mapping_scores <- Some scored;
        let best = List.hd scored in
        (* candidates can share a cluster name once searched placements
           join the pool, so the placement nodes are part of the match *)
        let chosen =
          List.find
            (fun (c : Customize.config) ->
              String.equal c.Customize.cluster.Cluster.name
                best.Mapping_select.cluster.Cluster.name
              && c.Customize.placement.Noc.Placement.nodes
                 = best.Mapping_select.placement.Noc.Placement.nodes)
            cfgs
        in
        Ok chosen)

(* Cost-table label: the cluster name, qualified by the placement name
   only when another candidate shares the cluster name (a searched
   placement alongside the preset with the same cluster shape). *)
let candidate_label ~scored (s : Mapping_select.scored) =
  let shared =
    List.length
      (List.filter
         (fun (t : Mapping_select.scored) ->
           String.equal t.Mapping_select.cluster.Cluster.name
             s.Mapping_select.cluster.Cluster.name)
         scored)
    > 1
  in
  if shared then
    s.Mapping_select.cluster.Cluster.name ^ "@"
    ^ s.Mapping_select.placement.Noc.Placement.name
  else s.Mapping_select.cluster.Cluster.name

(* C002 (note): which mapping the cost model picked, against what field,
   under what calibrated pressure — so --diag-json records the selection. *)
let selection_note ~bank_pressure (scored : Mapping_select.scored list) =
  match scored with
  | [] | [ _ ] -> []
  | best :: _ ->
    [
      Diag.make ~severity:Diag.Note ~code:"C002" Span.dummy
        (Printf.sprintf
           "mapping %s selected among %d candidates at bank pressure %.3f \
            (estimated cost: %s)"
           (candidate_label ~scored best)
           (List.length scored) bank_pressure
           (String.concat ", "
              (List.map
                 (fun (s : Mapping_select.scored) ->
                   Printf.sprintf "%s=%.1f" (candidate_label ~scored s)
                     s.Mapping_select.cost)
                 scored)));
    ]

(* C004 (notes): what the placement search found — winning placement and
   machine, cost against the best preset, and the descent trajectory.
   The summary line's "estimated cost X vs best preset N=Y" shape is
   relied on by scripts/dev-check. *)
let search_notes ~bank_pressure (o : Place_search.outcome) =
  let summary =
    Diag.make ~severity:Diag.Note ~code:"C004" Span.dummy
      (Printf.sprintf
         "placement search selected %s (cluster %s, %d MCs): estimated cost \
          %.1f vs best preset %s=%.1f at bank pressure %.3f (%d cost \
          evaluations)"
         o.Place_search.platform.Platform.placement.Noc.Placement.name
         o.Place_search.platform.Platform.cluster.Cluster.name
         (Platform.num_mcs o.Place_search.platform)
         o.Place_search.cost
         o.Place_search.preset_best.Mapping_select.cluster.Cluster.name
         o.Place_search.preset_best.Mapping_select.cost bank_pressure
         o.Place_search.evaluations)
  in
  let max_steps = 40 in
  let steps = o.Place_search.trajectory in
  let shown, elided =
    if List.length steps <= max_steps then (steps, 0)
    else (List.filteri (fun i _ -> i < max_steps) steps,
          List.length steps - max_steps)
  in
  let trajectory =
    Diag.make ~severity:Diag.Note ~code:"C004" Span.dummy
      (Printf.sprintf "search trajectory: %s%s"
         (String.concat " | " shown)
         (if elided = 0 then ""
          else Printf.sprintf " | ... (%d more steps)" elided))
  in
  [ summary; trajectory ]

(* C003 (warning): an array kept its original layout for a reason the
   user can fix — a profile fit just over the threshold, or indexed
   references with no profile to approximate them from.  Structural
   reasons (index arrays, no non-trivial solution) stay silent. *)
let keep_warnings ~have_profile (report : Transform.report) =
  List.filter_map
    (fun (d : Transform.decision) ->
      let name = d.Transform.info.Analysis.decl.Ast.name in
      let span = d.Transform.info.Analysis.decl.Ast.decl_span in
      match d.Transform.kept with
      | Some (Transform.Bad_approximation fit) ->
        Some
          (Diag.warning ~code:"C003" span
             (Printf.sprintf
                "array %s kept its original layout: the affine approximation \
                 of its indexed references misses the profile by %.2f; raise \
                 --threshold or profile a more representative run to let the \
                 layout pass transform it"
                name fit))
      | Some Transform.No_parallel_reference
        when (not have_profile)
             && List.exists
                  (fun (o : Analysis.occurrence) ->
                    o.Analysis.kind = Analysis.Indexed_ref)
                  d.Transform.info.Analysis.occurrences ->
        Some
          (Diag.warning ~code:"C003" span
             (Printf.sprintf
                "array %s kept its original layout: its parallel references \
                 are indexed and no access profile was supplied to \
                 approximate them (built-in models provide one via --app)"
                name))
      | _ -> None)
    report.Transform.decisions

let customize_pass =
  pass "customize" (fun (cfg, solved) -> Ok (Transform.customize_all cfg solved))

let rewrite_pass =
  pass "rewrite" (fun (report, program) ->
      Ok (Transform.rewrite_program report program))

let codegen_pass ~name ?site_of () =
  pass "codegen" (Lang.Codegen.emit_result ~name ?site_of)

(* The access-site table is an artifact of the transformed program (the
   one codegen emits and the simulator traces), so its ids line up with
   tagged traces of the compiled kernel. *)
let sites_pass =
  pass "sites" (fun program -> Ok (Lang.Sites.of_program program))

let compile ?(verify = true) ?profile ?threshold ?(bank_pressure = 1.0)
    ?platform ?search ?(candidates = []) ?codegen ~cfg source =
  let ctx = { timer = Obs.Phase_timer.create (); diags = [] } in
  let art =
    {
      program = None;
      analysis = None;
      solved = None;
      cfg = None;
      mapping_scores = None;
      search = None;
      report = None;
      transformed = None;
      sites = None;
      c_code = None;
    }
  in
  (* Placement search (--mapping search): explore the site × cluster ×
     MC-count space the platform can realize, record the outcome as an
     artifact plus C004 notes, and let the winner compete with the
     presets in the mapping pass below. *)
  (match (search, platform) with
  | Some params, Some p ->
    (match
       Obs.Phase_timer.time ctx.timer "search" (fun () ->
           Place_search.search ~params ~bank_pressure p)
     with
    | Ok o ->
      art.search <- Some o;
      ctx.diags <- ctx.diags @ search_notes ~bank_pressure o
    | Error e ->
      ctx.diags <-
        ctx.diags
        @ [ Diag.error ~code:"C004" Span.dummy ("placement search failed: " ^ e) ])
  | Some _, None ->
    ctx.diags <-
      ctx.diags
      @ [
          Diag.error ~code:"C004" Span.dummy
            "placement search requires a platform";
        ]
  | None, _ -> ());
  (* Candidate mappings: explicit [candidates] win; otherwise the platform
     enumerates every Section 4 / Fig. 27 configuration it can realize
     (plus the searched machine, when search ran); with neither, the
     single [cfg] passes through unchanged. *)
  let candidates =
    if candidates <> [] then candidates
    else
      match platform with
      | None -> [ cfg ]
      | Some p ->
        let extra =
          match art.search with
          | Some o -> [ o.Place_search.platform ]
          | None -> []
        in
        List.map
          (fun (q : Platform.t) ->
            {
              cfg with
              Customize.topo = q.Platform.topo;
              cluster = q.Platform.cluster;
              placement = q.Platform.placement;
            })
          (Platform.candidates ~extra p)
  in
  let ( let* ) x f = match x with Some v -> f v | None -> None in
  let (_ : unit option) =
    let* program = run_pass ctx parse_pass source in
    art.program <- Some program;
    let* program = run_pass ctx check_pass program in
    art.program <- Some program;
    let* analysis = run_pass ctx analyze_pass program in
    art.analysis <- Some analysis;
    let* solved = run_pass ctx (solve_pass ?profile ?threshold ()) analysis in
    art.solved <- Some solved;
    let* cfg = run_pass ctx (mapping_pass ~bank_pressure ~art) candidates in
    art.cfg <- Some cfg;
    (match art.mapping_scores with
    | Some scored -> ctx.diags <- ctx.diags @ selection_note ~bank_pressure scored
    | None -> ());
    let* report = run_pass ctx customize_pass (cfg, solved) in
    art.report <- Some report;
    ctx.diags <-
      ctx.diags @ keep_warnings ~have_profile:(Option.is_some profile) report;
    let* transformed = run_pass ctx rewrite_pass (report, program) in
    art.transformed <- Some transformed;
    let* sites = run_pass ctx sites_pass transformed in
    art.sites <- Some sites;
    if verify then begin
      let ds =
        Obs.Phase_timer.time ctx.timer "verify" (fun () ->
            Verify.run ~cfg ~solved ~report ~original:program ~transformed)
      in
      ctx.diags <- ctx.diags @ ds
    end;
    match codegen with
    | None -> Some ()
    | Some name ->
      let* c =
        run_pass ctx
          (codegen_pass ~name ~site_of:(Lang.Sites.id_of_ref sites) ())
          transformed
      in
      art.c_code <- Some c;
      if verify then begin
        let ds =
          Obs.Phase_timer.time ctx.timer "verify-codegen" (fun () ->
              Verify.check_codegen ~report ~original:program ~transformed)
        in
        ctx.diags <- ctx.diags @ ds
      end;
      Some ()
  in
  {
    artifacts = art;
    diags = Diag.sorted ctx.diags;
    timer = ctx.timer;
    ok = not (Diag.has_errors ctx.diags);
  }

(* --- stage dumps (--emit) --------------------------------------------- *)

type stage = Ast_ | Analysis_ | Solve | Mapping | Report | Transformed | Sites_ | C

let stages =
  [
    ("ast", Ast_);
    ("analysis", Analysis_);
    ("solve", Solve);
    ("mapping", Mapping);
    ("report", Report);
    ("transformed", Transformed);
    ("sites", Sites_);
    ("c", C);
  ]

let stage_names = List.map fst stages

let stage_of_string s = List.assoc_opt (String.lowercase_ascii s) stages

let pp_analysis ppf (a : Analysis.t) =
  Format.fprintf ppf "@[<v>";
  List.iter
    (fun (info : Analysis.array_info) ->
      let dims =
        String.concat "x"
          (Array.to_list (Array.map string_of_int info.Analysis.extents))
      in
      Format.fprintf ppf "%s [%s]%s:@," info.Analysis.decl.Ast.name dims
        (if info.Analysis.decl.Ast.index_array then " (index)" else "");
      List.iter
        (fun (o : Analysis.occurrence) ->
          Format.fprintf ppf "  %s %s par_dim=%s weight=%d@,"
            (if o.Analysis.is_write then "write" else "read")
            (match o.Analysis.kind with
            | Analysis.Affine_ref _ -> "affine"
            | Analysis.Indexed_ref -> "indexed")
            (match o.Analysis.par_dim with
            | Some u -> string_of_int u
            | None -> "-")
            o.Analysis.trip_count)
        info.Analysis.occurrences)
    a.Analysis.arrays;
  Format.fprintf ppf "@]"

let emit t stage =
  let str pp x = Format.asprintf "%a" pp x in
  match stage with
  | Ast_ -> Option.map (str Ast.pp_program) t.artifacts.program
  | Analysis_ -> Option.map (str pp_analysis) t.artifacts.analysis
  | Solve ->
    Option.map
      (fun solved ->
        String.concat "\n" (List.map (str Transform.pp_solved) solved))
      t.artifacts.solved
  | Mapping ->
    Option.map
      (fun (c : Customize.config) ->
        let m =
          Mapping_select.evaluate c.Customize.topo c.Customize.cluster
            c.Customize.placement
        in
        Format.asprintf "%a@,avg distance to MC: %.2f hops, MCs per cluster: %d"
          Cluster.pp c.Customize.cluster m.Mapping_select.avg_distance
          m.Mapping_select.mcs_per_cluster)
      t.artifacts.cfg
  | Report -> Option.map (str Transform.pp_report) t.artifacts.report
  | Transformed -> Option.map (str Ast.pp_program) t.artifacts.transformed
  | Sites_ -> Option.map (str (Lang.Sites.pp ?src:None)) t.artifacts.sites
  | C -> t.artifacts.c_code
