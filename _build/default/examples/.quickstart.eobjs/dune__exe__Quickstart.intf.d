examples/quickstart.mli:
