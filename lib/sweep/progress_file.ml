(* The conventional location of a sweep directory's live progress
   stream, shared by `sweep run` (writer) and `sweep status --follow`
   (reader). *)

let path dir = Filename.concat dir "progress.ndjson"

let sink_for dir = Obs.Progress.file_sink (path dir)
