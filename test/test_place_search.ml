(* Core.Place_search: determinism, searched-vs-preset dominance, and the
   pipeline's `search` mapping mode. *)

open Core

let json_of_platform p = Obs.Json.to_string (Platform.to_json p)

(* Same seed => byte-identical emitted platform JSON (the dev-check /CI
   invariant); a different seed still never beats determinism — it may
   find the same optimum, but each seed reproduces itself exactly. *)
let test_deterministic () =
  let base = Platform.default () in
  let run () =
    match Place_search.search ~bank_pressure:1.0 base with
    | Error e -> Alcotest.fail e
    | Ok o -> o
  in
  let a = run () and b = run () in
  Alcotest.(check string) "same JSON" (json_of_platform a.platform)
    (json_of_platform b.platform);
  Alcotest.(check (float 1e-9)) "same cost" a.cost b.cost;
  Alcotest.(check int) "same evaluations" a.evaluations b.evaluations;
  Alcotest.(check (list string)) "same trajectory" a.trajectory b.trajectory

(* The descent starts from every preset candidate, so the searched cost
   can never exceed the best preset's — at any pressure, on any preset
   platform. *)
let test_dominates_presets () =
  List.iter
    (fun (spec, pressure) ->
      match Platform.of_spec spec with
      | Error e -> Alcotest.fail e
      | Ok base ->
        (match Place_search.search ~bank_pressure:pressure base with
         | Error e -> Alcotest.fail e
         | Ok o ->
           if o.cost > o.preset_best.Mapping_select.cost +. 1e-9 then
             Alcotest.failf "%s @ %.2f: searched %.3f > preset %.3f" spec
               pressure o.cost o.preset_best.Mapping_select.cost))
    [
      ("mesh8x8-mc4", 0.25);
      ("mesh8x8-mc4", 1.0);
      ("mesh8x8-mc4", 4.0);
      ("mesh8x8-mc8", 1.0);
      ("mesh8x8-mc16", 2.0);
      ("mesh4x4-m1", 1.0);
    ]

(* The searched platform is a valid machine: it round-trips through JSON
   and its placement keeps one site per controller. *)
let test_roundtrip () =
  let base = Platform.default () in
  match Place_search.search ~bank_pressure:2.0 base with
  | Error e -> Alcotest.fail e
  | Ok o ->
    (match Platform.of_json (Platform.to_json o.platform) with
     | Error e -> Alcotest.fail e
     | Ok p ->
       Alcotest.(check bool) "same machine" true
         (Platform.same_machine p o.platform);
       Alcotest.(check int) "one site per MC"
         (Platform.num_mcs o.platform)
         (Noc.Placement.count o.platform.Platform.placement))

let suite =
  [
    ( "place_search",
      [
        Alcotest.test_case "deterministic" `Quick test_deterministic;
        Alcotest.test_case "dominates presets" `Quick test_dominates_presets;
        Alcotest.test_case "json roundtrip" `Quick test_roundtrip;
      ] );
  ]
