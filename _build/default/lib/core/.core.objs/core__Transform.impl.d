lib/core/transform.ml: Affine Array Customize Data_to_core Format Indexed Lang Layout List Printf String
