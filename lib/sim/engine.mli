(** Discrete-event full-system simulation.

    Each thread replays its access stream on an in-order core with
    blocking misses: L1 hits are charged inline; an L1 miss walks the
    Fig. 2 path for the configured L2 organization, with every network
    leg reserving mesh links (contention) and every off-chip request
    queueing at its FR-FCFS controller.  Top-level nests are separated by
    per-job barriers (OpenMP join).

    Model simplifications (documented in DESIGN.md): L1 writebacks are
    not simulated; concurrent misses to the same line merge (an implicit
    MSHR); caches fill at miss detection.  Under the optimal scheme
    (Section 2), off-chip requests go to the nearest controller and
    complete after an uncontended row-empty access, and writebacks are
    dropped — exactly the idealization the paper describes. *)

type job = {
  name : string;
  phases : Lang.Interp.phase list;
  node_of_thread : int array;
      (** mesh node of each of the job's threads (thread binding) *)
  warmup_phases : int;
      (** leading phases (initialization nests) excluded from statistics:
          the real applications amortize initialization over thousands of
          compute iterations while the models run only a few, so counting
          it would grossly overweight transients *)
  site_streams : int array array list;
      (** per-phase access-site id streams, index-parallel to [phases]
          (element [i] of a thread's stream tags access [i]); [[]] runs
          the job untagged — the miss path then skips the site lookup
          entirely *)
  start_time : int;
      (** earliest cycle the job may start — a tenant's arrival time in
          the consolidation server; 0 starts the job at boot (the
          historical behavior) *)
  start_after : int option;
      (** index of a job in the same run that must finish before this
          one starts (a per-slot FIFO admission chain); the job then
          starts at [max start_time predecessor_finish].  [None] (or an
          out-of-range/self index) starts the job at [start_time].
          Chains must be acyclic — a cycle leaves its jobs unstarted. *)
  free_vpage_range : (int * int) option;
      (** inclusive virtual-page range handed back to the shared page
          allocator when the job finishes (tenant departure) — later
          jobs can then reuse the frames *)
}

type result = {
  stats : Stats.t;
  measured_time : int;
      (** finish time minus the warmup barrier: the steady-state execution
          time compared across configurations (max over jobs) *)
  job_measured : int array;  (** per-job steady-state time *)
  job_finish : int array;  (** finish time of each job *)
  job_start : int array;
      (** actual start time of each job — [start_time], or its
          admission-chain predecessor's finish, whichever is later *)
  job_offchip : int array;
      (** per-job measured off-chip accesses; the per-job split of the
          [sim.offchip_accesses] counter, so the sum over jobs always
          equals it *)
  job_fallbacks : int array;
      (** per-job fallback page allocations: pages the job first-touched
          that the allocator could not place on the desired controller *)
  mc_occupancy : float array;  (** per-controller mean queue length *)
  mc_row_hit_rate : float array;
  mc_max_queue : int array;  (** per-controller queue-depth high-water mark *)
  mc_occ_integral : float array;
      (** raw per-controller queue-length integrals (∫depth·dt) behind
          [mc_occupancy] — {!Par_engine} re-divides them by the merged
          run's global horizon so partition occupancies land on the same
          denominator as a sequential run *)
  link_utilization : float array;
      (** per-link-id busy fraction of the run (mesh contention profile) *)
  link_busy : int array;
      (** raw per-link busy cycles behind [link_utilization], summable
          across partitions whose link sets are disjoint *)
  pages_allocated : int;
}

val run :
  Config.t ->
  ?desired_mc_of_vpage:(int -> int option) ->
  ?trace:Obs.Trace.t ->
  ?attr:Obs.Attr.t ->
  jobs:job list ->
  unit ->
  result
(** [desired_mc_of_vpage] feeds the {e MC-aware} page policy (ignored by
    the others); [None] for a page means "no compiler hint" and the page
    is placed by first touch.

    [trace] (default {!Obs.Trace.disabled}) receives one span per pipeline
    stage of every sampled L1 miss — categories [cache], [noc],
    [mc-queue], [dram] — plus controller queue-depth counter series; the
    sink's sampling knob picks which misses are traced.  With the default
    sink every instrumentation point is a single branch.

    [attr] receives every {e measured} off-chip access — the same gate as
    [sim.offchip_accesses], so the aggregator's total always equals that
    counter — attributed to the access site carried by the job's
    [site_streams] (or the unknown row when untagged).  Supplying [attr]
    also registers the [mem.queue_depth] histogram and the
    [noc.*_link_utilization] gauges in the run's {!Stats} registry; with
    [attr] absent the registry contents (and hence the stats JSON) are
    bit-for-bit those of a plain run, and the record path costs one
    branch per request.

    On a hierarchical platform (a chiplet grid in the topology) the run
    additionally registers the [sim.offchip_cross_chiplet] counter — the
    measured off-chip accesses whose requesting node and serving
    controller sit in different chiplets.  Flat platforms never register
    it, keeping their stats documents byte-identical to the pre-chiplet
    format. *)
