(* Indexed accesses (Section 5.4): the hpccg sparse matrix-vector product.

   The source vector of the SpMV is accessed through the CRS column-index
   array, so its references are not affine.  This example shows the
   profiling-based approximation at work: the extracted samples, the
   fitted affine access function and its inaccuracy, the pass's decision,
   and the resulting simulated improvement.

     dune exec examples/spmv_indexed.exe *)

let () =
  let app = Workloads.Suite.by_name "hpccg" in
  let program = Workloads.App.program app in
  let analysis = Lang.Analysis.analyze program in

  (* 1. profile the indexed reference X[COLS[i][z]] *)
  let samples = Workloads.Profile.samples app analysis "XV" in
  Printf.printf "profiled %d (iteration -> element) samples; first few:\n"
    (List.length samples);
  List.iteri
    (fun k (i, a) ->
      if k < 5 then
        Printf.printf "  iteration %s touches XV[%d]\n"
          (Affine.Vec.to_string i) a.(0))
    samples;

  (* 2. fit an affine approximation *)
  (match Core.Indexed.approximate ~samples with
  | Some (access, inaccuracy) ->
    Format.printf "fitted access function:@.%a@." Affine.Access.pp access;
    Printf.printf "inaccuracy: %.1f%% (threshold %.0f%%)\n\n"
      (100. *. inaccuracy)
      (100. *. Core.Indexed.default_threshold)
  | None -> print_endline "no fit found");

  (* 3. the full pass uses the fit to optimize the array *)
  let cfg = Sim.Config.scaled () in
  let profile a = Workloads.Profile.for_transform app analysis a in
  let report =
    Core.Transform.run ~profile (Sim.Config.customize_config cfg) analysis
  in
  Format.printf "pass report:@.%a@.@." Core.Transform.pp_report report;

  (* 4. simulate *)
  let index_lookup = Workloads.App.index_lookup app in
  let orig =
    Sim.Runner.run cfg ~optimized:false ~warmup_phases:1 ~index_lookup program
  in
  let opt =
    Sim.Runner.run cfg ~optimized:true ~warmup_phases:1 ~index_lookup ~profile
      program
  in
  Printf.printf "execution time: %d -> %d cycles (%.1f%% better)\n"
    orig.Sim.Engine.measured_time opt.Sim.Engine.measured_time
    (100.
    *. (1.
       -. float_of_int opt.Sim.Engine.measured_time
          /. float_of_int orig.Sim.Engine.measured_time))
