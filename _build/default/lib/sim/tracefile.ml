let dump path phases =
  let oc = open_out path in
  output_string oc "# offchip trace v1\n";
  List.iter
    (fun (phase : Lang.Interp.phase) ->
      Printf.fprintf oc "phase %d\n" (Array.length phase);
      Array.iteri
        (fun t stream ->
          Printf.fprintf oc "t %d %d\n" t (Array.length stream);
          Array.iter
            (fun a ->
              Printf.fprintf oc "%d %c\n"
                (Lang.Interp.addr_of_access a)
                (if Lang.Interp.is_write a then 'W' else 'R'))
            stream)
        phase)
    phases;
  close_out oc

let load path =
  let ic = open_in path in
  let line () = try Some (input_line ic) with End_of_file -> None in
  let fail msg =
    close_in ic;
    failwith ("Tracefile.load: " ^ msg)
  in
  (match line () with
  | Some "# offchip trace v1" -> ()
  | _ -> fail "bad header");
  let phases = ref [] in
  let rec read_phases () =
    match line () with
    | None -> ()
    | Some l -> (
      match String.split_on_char ' ' l with
      | [ "phase"; n ] ->
        let nthreads = int_of_string n in
        let streams =
          Array.init nthreads (fun expect ->
              match line () with
              | Some tl -> (
                match String.split_on_char ' ' tl with
                | [ "t"; t; count ] when int_of_string t = expect ->
                  Array.init (int_of_string count) (fun _ ->
                      match line () with
                      | Some al -> (
                        match String.split_on_char ' ' al with
                        | [ addr; "R" ] -> int_of_string addr lsl 1
                        | [ addr; "W" ] -> (int_of_string addr lsl 1) lor 1
                        | _ -> fail "bad access line")
                      | None -> fail "truncated accesses")
                | _ -> fail "bad thread header")
              | None -> fail "truncated phase")
        in
        phases := streams :: !phases;
        read_phases ()
      | _ -> fail "bad phase header")
  in
  read_phases ();
  close_in ic;
  List.rev !phases

let total_accesses phases =
  List.fold_left
    (fun acc ph -> acc + Array.fold_left (fun a s -> a + Array.length s) 0 ph)
    0 phases
