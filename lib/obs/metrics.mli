(** Metrics registry: named counters, gauges and histograms with O(1)
    record paths and a typed snapshot/merge.

    A metric is registered once (by name) and then recorded through its
    handle — the record path is a single field mutation or array store, so
    instrumented hot loops pay no lookup, no allocation and no branch on
    an "enabled" flag.  Snapshots are taken at the end of a run for
    reporting and JSON export. *)

type counter

type gauge

type histogram

type registry

(** Bucketing scheme for histograms.

    [Log2] buckets observation [v >= 0] into [floor(log2 v) + 1] (bucket 0
    holds v = 0), clamped to [max_log2_buckets - 1] — constant bucket
    count, O(1) record, covers any int.  [Linear { width; buckets }] holds
    [v / width], clamped into the last bucket. *)
type buckets = Log2 | Linear of { width : int; buckets : int }

val max_log2_buckets : int

type hist_snapshot = {
  kind : buckets;
  counts : int array;
  sum : int;  (** sum of observed values *)
  total : int;  (** number of observations *)
}

type snapshot = {
  counters : (string * int) list;  (** sorted by name *)
  gauges : (string * float) list;
  histograms : (string * hist_snapshot) list;
}

val create : unit -> registry

val counter : registry -> string -> counter
(** Registers (or returns the existing) counter under [name]. *)

val gauge : registry -> string -> gauge

val histogram :
  registry -> buckets:buckets -> string -> (histogram, string) result
(** [Error] when re-registering an existing name with a different
    bucketing (or kind), or on a malformed [Linear] spec — registration
    conflicts come from configuration, so they surface as values instead
    of exceptions (repo policy: no raising APIs). *)

val incr : counter -> unit

val add : counter -> int -> unit

val value : counter -> int

val set : gauge -> float -> unit

val set_max : gauge -> float -> unit
(** Keeps the maximum of the current and the given value. *)

val gauge_value : gauge -> float

val observe : histogram -> int -> unit
(** O(1); negative observations clamp into bucket 0. *)

val bucket_index : buckets -> int -> int
(** The bucket [observe] files a value under (exposed for tests). *)

val bucket_bounds : buckets -> int -> int * int
(** [(lo, hi)] of a bucket: values [v] with [lo <= v < hi] land in it
    ([hi] of the last bucket is [max_int]). *)

val hist_count : histogram -> int

val hist_sum : histogram -> int

val snapshot : registry -> snapshot

val merge : snapshot -> snapshot -> snapshot
(** Counters and histograms add; gauges keep the maximum.  Metrics present
    on one side only pass through.  Raises [Invalid_argument] on
    incompatible histogram bucketing. *)

val merge_into : into:registry -> registry -> unit
(** Folds a source registry into [into] with {!merge} semantics,
    registering missing metrics on the fly. *)

val to_json : snapshot -> Json.t

val snapshot_of_json : Json.t -> (snapshot, string) result
(** Inverse of {!to_json} — [snapshot_of_json (to_json s)] restores [s]
    exactly (trimmed histogram tails are re-padded to the full bucket
    count).  Used by the sweep aggregator to merge the per-job stats
    files written by worker processes. *)
