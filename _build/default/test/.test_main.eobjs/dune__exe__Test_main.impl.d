test/test_main.ml: Alcotest Test_affine Test_cache Test_core Test_dram Test_extensions Test_fuzz Test_integration Test_lang Test_misc Test_noc Test_os Test_sim Test_workloads
