lib/workloads/minimd.mli: App
