(* The performance-regression gate behind `bench --check`.

   Measures a small, fixed set of entries — a seed-0 smoke simulation
   (engine wall time and minor words per access) plus the Bechamel
   microbenchmarks of the simulator's hot primitives — and compares each
   against the committed bench/baseline.json.  An entry regresses when

     measured > baseline.value * baseline.tolerance

   Tolerances are per entry: wall-clock entries get generous headroom
   because CI machines differ, allocation counts are deterministic and
   get a tight bound.  The caller exits 2 on any regression — the knob
   scripts/dev-check and the CI perf job both pull.

   `--update` rewrites the baseline with the measured values (see
   EXPERIMENTS.md for when bumping the baseline is legitimate). *)

module Config = Sim.Config
module Engine = Sim.Engine
module Stats = Sim.Stats
module Heap = Sim.Event_heap
module Json = Obs.Json

type entry = { name : string; value : float; tolerance : float }

(* --- measurements --- *)

(* Deterministic seed-0 smoke run: the apsi model on the scaled platform,
   prepared once; the engine is what the gate watches. *)
let smoke_entries () =
  let cfg = Config.scaled () in
  let app = Workloads.Suite.by_name "apsi" in
  let program = Workloads.App.program app in
  let index_lookup = Workloads.App.index_lookup app in
  let prepared =
    Sim.Runner.prepare cfg ~optimized:false
      ~warmup_phases:app.Workloads.App.warmup_nests ~index_lookup program
  in
  let jobs = [ prepared.Sim.Runner.job ] in
  let run () = Engine.run cfg ~jobs () in
  ignore (run ());
  (* warm *)
  let minor0 = Gc.minor_words () in
  let r = run () in
  let minor = Gc.minor_words () -. minor0 in
  let accesses = float_of_int (Stats.total_accesses r.Engine.stats) in
  let best = ref infinity in
  for _ = 1 to 3 do
    let t0 = Unix.gettimeofday () in
    ignore (run ());
    let dt = Unix.gettimeofday () -. t0 in
    if dt < !best then best := dt
  done;
  [
    ("smoke.engine_wall_s", !best);
    ("smoke.minor_words_per_access", minor /. accesses);
  ]

(* Bechamel micro section: ns/run estimates of the event-loop primitives.
   The churn benchmark is the event-loop microbenchmark of the regression
   gate: push/pop 4096 timestamped events through the heap. *)
let heap_churn () =
  let h : int Heap.t = Heap.create () in
  for i = 0 to 4095 do
    Heap.push h ~time:(i * 37 mod 1009) i
  done;
  let acc = ref 0 in
  let rec drain () =
    match Heap.pop h with
    | None -> ()
    | Some (t, v) ->
      acc := !acc + t + v;
      drain ()
  in
  drain ();
  !acc

let micro_entries () =
  let open Bechamel in
  let topo = Noc.Topology.make ~width:8 ~height:8 in
  let net = Noc.Network.create topo in
  let tests =
    [
      ( "micro.event_heap.churn4k_ns",
        Test.make ~name:"churn" (Staged.stage (fun () -> ignore (heap_churn ())))
      );
      ( "micro.network.send_corner_ns",
        Test.make ~name:"send"
          (Staged.stage (fun () ->
               ignore (Noc.Network.send net ~now:0 ~src:0 ~dst:63 ~bytes:264)))
      );
    ]
  in
  let instance = Toolkit.Instance.monotonic_clock in
  let cfg = Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.5) () in
  let ols =
    Analyze.ols ~r_square:false ~bootstrap:0 ~predictors:[| Measure.run |]
  in
  List.map
    (fun (entry_name, test) ->
      let raw = Benchmark.all cfg [ instance ] (Test.make_grouped ~name:"g" [ test ]) in
      let results = Analyze.all ols instance raw in
      let est =
        Hashtbl.fold
          (fun _ result acc ->
            match Analyze.OLS.estimates result with
            | Some (e :: _) -> e
            | _ -> acc)
          results nan
      in
      (entry_name, est))
    tests

let measure () = smoke_entries () @ micro_entries ()

(* --- baseline I/O --- *)

let default_tolerance name =
  if String.length name >= 6 && String.sub name 0 6 = "micro." then 1.75
  else if name = "smoke.engine_wall_s" then 1.6
  else if name = "smoke.minor_words_per_access" then 1.15
  else 1.5

let entry_json e =
  Json.obj
    [
      ("name", Json.String e.name);
      ("value", Json.Float e.value);
      ("tolerance", Json.Float e.tolerance);
    ]

let baseline_json entries = Json.obj [ ("entries", Json.list entry_json entries) ]

let number = function
  | Some (Json.Float f) -> Some f
  | Some (Json.Int i) -> Some (float_of_int i)
  | _ -> None

let parse_baseline path =
  let ic = open_in path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  match Json.of_string s with
  | Error e -> Error (Printf.sprintf "%s: %s" path e)
  | Ok doc -> (
    match Json.member "entries" doc with
    | Some (Json.List es) -> (
      try
        Ok
          (List.map
             (fun e ->
               match
                 ( Json.member "name" e,
                   number (Json.member "value" e),
                   number (Json.member "tolerance" e) )
               with
               | Some (Json.String name), Some value, Some tolerance ->
                 { name; value; tolerance }
               | _ -> failwith "entry")
             es)
      with Failure _ -> Error (path ^ ": malformed entry"))
    | _ -> Error (path ^ ": missing \"entries\""))

let write_json path doc =
  let oc = open_out path in
  Json.to_channel oc doc;
  close_out oc

(* --- the gate --- *)

(* Returns the process exit code: 0 ok, 2 regression, 1 bad baseline. *)
let run ~baseline_path ~update ~report_out () =
  let measured = measure () in
  if update then begin
    let entries =
      List.map
        (fun (name, value) ->
          { name; value; tolerance = default_tolerance name })
        measured
    in
    write_json baseline_path (baseline_json entries);
    Printf.printf "baseline updated: %s\n" baseline_path;
    List.iter (fun e -> Printf.printf "  %-32s %14.2f\n" e.name e.value) entries;
    0
  end
  else
    match parse_baseline baseline_path with
    | Error e ->
      Printf.eprintf "bench --check: %s\n" e;
      1
    | Ok entries ->
      Printf.printf "== bench --check (baseline %s) ==\n" baseline_path;
      Printf.printf "  %-32s %14s %14s %7s %6s\n" "entry" "baseline"
        "measured" "ratio" "";
      let rows =
        List.map
          (fun e ->
            match List.assoc_opt e.name measured with
            | None -> (e, nan, false)
            | Some m ->
              let ratio = m /. e.value in
              (e, m, ratio <= e.tolerance))
          entries
      in
      List.iter
        (fun (e, m, ok) ->
          Printf.printf "  %-32s %14.2f %14.2f %6.2fx %6s\n" e.name e.value m
            (m /. e.value)
            (if ok then "ok" else "REGRESSED"))
        rows;
      (match report_out with
      | None -> ()
      | Some path ->
        let doc =
          Json.obj
            [
              ("baseline", Json.String baseline_path);
              ( "entries",
                Json.list
                  (fun (e, m, ok) ->
                    Json.obj
                      [
                        ("name", Json.String e.name);
                        ("baseline", Json.Float e.value);
                        ("measured", Json.Float m);
                        ("tolerance", Json.Float e.tolerance);
                        ("ratio", Json.Float (m /. e.value));
                        ("ok", Json.Bool ok);
                      ])
                  rows );
            ]
        in
        write_json path doc;
        Printf.printf "  report written to %s\n" path);
      if List.for_all (fun (_, _, ok) -> ok) rows then begin
        Printf.printf "bench --check: all entries within tolerance\n";
        0
      end
      else begin
        Printf.printf "bench --check: performance regression detected\n";
        2
      end
