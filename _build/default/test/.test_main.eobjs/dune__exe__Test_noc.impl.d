test/test_noc.ml: Alcotest Array Hashtbl List Noc Printf QCheck QCheck_alcotest
