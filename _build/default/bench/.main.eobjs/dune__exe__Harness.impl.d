bench/harness.ml: Affine Array Core Dram Hashtbl Lang Lazy List Noc Printf Sim String Sys Workloads
