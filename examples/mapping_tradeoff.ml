(* The locality / memory-level-parallelism tradeoff (Fig. 8, Fig. 17/18).

   Mapping M1 gives every cluster its own corner controller (best
   locality); M2 gives each half of the mesh two controllers (twice the
   memory parallelism, longer distances).  The compiler analysis of
   Section 4 weighs distance-to-MC against profiled bank pressure and
   picks a mapping per application.  This example reproduces the paper's
   finding: M1 wins for a compute-bound stencil (apsi), M2 wins for the
   bank-hammering fma3d.

     dune exec examples/mapping_tradeoff.exe *)

let or_die = function
  | Ok v -> v
  | Error e ->
    prerr_endline e;
    exit 1

let () =
  let base = Sim.Config.scaled () in
  let m2cfg =
    or_die
      (Result.bind
         (Core.Cluster.m2 ~width:8 ~height:8)
         (Sim.Config.with_cluster base))
  in
  let candidates =
    [
      (Sim.Config.cluster base, Sim.Config.placement base);
      (Sim.Config.cluster m2cfg, Sim.Config.placement m2cfg);
    ]
  in
  List.iter
    (fun (cl, pl) ->
      let m = Core.Mapping_select.evaluate (Sim.Config.topo base) cl pl in
      Printf.printf "%-3s: avg distance-to-MC %.2f hops, %d controller(s) per cluster\n"
        cl.Core.Cluster.name m.Core.Mapping_select.avg_distance
        m.Core.Mapping_select.mcs_per_cluster)
    candidates;
  print_newline ();
  List.iter
    (fun name ->
      let app = Workloads.Suite.by_name name in
      let program = Workloads.App.program app in
      let w = app.Workloads.App.warmup_nests in
      let run cfg optimized = Sim.Runner.run cfg ~optimized ~warmup_phases:w program in
      let base_run = run base false in
      let p1 = run base true and p2 = run m2cfg true in
      let gain (r : Sim.Engine.result) =
        100.
        *. (1.
           -. float_of_int r.Sim.Engine.measured_time
              /. float_of_int base_run.Sim.Engine.measured_time)
      in
      (* profile bank pressure under M1 and let the compiler choose *)
      let pressure =
        let occ = p1.Sim.Engine.mc_occupancy in
        Array.fold_left ( +. ) 0. occ /. float_of_int (Array.length occ)
      in
      let chosen, _ =
        match
          Core.Mapping_select.choose_opt (Sim.Config.topo base) ~candidates
            ~bank_pressure:pressure
        with
        | Some c -> c
        | None -> assert false
      in
      Printf.printf
        "%-10s M1 gain %+6.1f%%   M2 gain %+6.1f%%   bank pressure %.2f  ->  compiler picks %s\n"
        name (gain p1) (gain p2) pressure chosen.Core.Cluster.name)
    [ "apsi"; "swim"; "fma3d"; "minighost" ]
