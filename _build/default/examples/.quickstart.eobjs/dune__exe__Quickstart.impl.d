examples/quickstart.ml: Array Core Format Lang Sim
