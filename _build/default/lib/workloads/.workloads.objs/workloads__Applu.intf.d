lib/workloads/applu.mli: App
