lib/workloads/apsi.mli: App
