examples/stencil_localization.ml: Array Core Printf Sim Workloads
