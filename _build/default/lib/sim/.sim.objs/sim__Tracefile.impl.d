lib/sim/tracefile.ml: Array Lang List Printf String
