lib/core/cluster.ml: Format List Noc Printf
