lib/affine/gauss.ml: Array List Matrix Vec
