type t = { name : string; nodes : int array }

let count p = Array.length p.nodes

let of_coords_result topo name coords =
  let off = ref None in
  let nodes =
    Array.map
      (fun c ->
        if not (Topology.in_mesh topo c) then begin
          if !off = None then off := Some c;
          0
        end
        else Topology.node_of_coord topo c)
      coords
  in
  match !off with
  | Some c ->
    Error
      (Printf.sprintf "Placement %s: site (%d,%d) is off the %dx%d mesh" name
         c.Coord.x c.Coord.y topo.Topology.width topo.Topology.height)
  | None -> Ok { name; nodes }

(* Internal helper for the fixed preset placements below, whose sites are
   in-mesh by construction on any mesh large enough to host them. *)
let of_coords topo name coords =
  match of_coords_result topo name coords with
  | Ok p -> p
  | Error e -> invalid_arg e

let corners topo =
  let w = topo.Topology.width - 1 and h = topo.Topology.height - 1 in
  of_coords topo "P1-corners"
    [| Coord.make 0 0; Coord.make w 0; Coord.make 0 h; Coord.make w h |]

let edge_centers topo =
  let w = topo.Topology.width and h = topo.Topology.height in
  of_coords topo "P2-edge-centers"
    [|
      Coord.make ((w / 2) - 1) 0;
      Coord.make (w - 1) ((h / 2) - 1);
      Coord.make 0 (h / 2);
      Coord.make (w / 2) (h - 1);
    |]

let top_bottom topo =
  let w = topo.Topology.width and h = topo.Topology.height in
  of_coords topo "P3-top-bottom"
    [|
      Coord.make 1 0;
      Coord.make (w - 2) 0;
      Coord.make 1 (h - 1);
      Coord.make (w - 2) (h - 1);
    |]

(* Perimeter nodes, clockwise from the NW corner. *)
let perimeter_sites topo =
  let w = topo.Topology.width and h = topo.Topology.height in
  let top = List.init w (fun x -> Coord.make x 0) in
  let right = List.init (h - 2) (fun i -> Coord.make (w - 1) (i + 1)) in
  let bottom = List.init w (fun x -> Coord.make (w - 1 - x) (h - 1)) in
  let left = List.init (h - 2) (fun i -> Coord.make 0 (h - 2 - i)) in
  Array.of_list (top @ right @ bottom @ left)

let interior_sites topo =
  let w = topo.Topology.width and h = topo.Topology.height in
  let sites = ref [] in
  for y = h - 2 downto 1 do
    for x = w - 2 downto 1 do
      sites := Coord.make x y :: !sites
    done
  done;
  Array.of_list !sites

type pool = Perimeter | Flip_chip

let pool_names = [ ("perimeter", Perimeter); ("flip-chip", Flip_chip) ]

let pool_to_string p =
  fst (List.find (fun (_, q) -> q = p) pool_names)

let pool_of_string s =
  match List.assoc_opt (String.lowercase_ascii s) pool_names with
  | Some p -> Ok p
  | None ->
    Error
      (Printf.sprintf "unknown site pool %S (pools: %s)" s
         (String.concat ", " (List.map fst pool_names)))

let pool_sites topo = function
  | Perimeter -> perimeter_sites topo
  | Flip_chip -> Array.append (perimeter_sites topo) (interior_sites topo)

let ring_result topo ~count =
  let per = perimeter_sites topo in
  let n = Array.length per in
  if count <= 0 || count > n then
    Error
      (Printf.sprintf
         "Placement.ring: %d MCs do not fit the %d-node perimeter" count n)
  else
    of_coords_result topo
      (Printf.sprintf "ring-%d" count)
      (Array.init count (fun j -> per.(j * n / count)))

(* Greedy seed in MC-index order: MC m takes the unused site nearest its
   centroid.  Shared by the plain-greedy and 2-opt-refined entry points;
   returns site *indices* so the refinement can keep swapping them. *)
let greedy_indices ~sites ~centroids =
  let n = Array.length centroids in
  let used = Array.make (Array.length sites) false in
  let chosen = Array.make n 0 in
  Array.iteri
    (fun m c ->
      let best = ref (-1) and bestd = ref max_int in
      Array.iteri
        (fun i pc ->
          if not used.(i) then begin
            let d = Coord.manhattan c pc in
            if d < !bestd then begin
              bestd := d;
              best := i
            end
          end)
        sites;
      assert (!best >= 0);
      used.(!best) <- true;
      chosen.(m) <- !best)
    centroids;
  chosen

let check_site_count ~sites ~centroids =
  if Array.length sites < Array.length centroids then
    Error
      (Printf.sprintf "Placement.assign: %d sites for %d controllers"
         (Array.length sites) (Array.length centroids))
  else Ok ()

let greedy_assign_result topo ~name ~sites ~centroids =
  match check_site_count ~sites ~centroids with
  | Error _ as e -> e
  | Ok () ->
    let chosen = greedy_indices ~sites ~centroids in
    of_coords_result topo name (Array.map (fun i -> sites.(i)) chosen)

let assign_result topo ~name ~sites ~centroids =
  match check_site_count ~sites ~centroids with
  | Error _ as e -> e
  | Ok () ->
    let n = Array.length centroids in
    let chosen = greedy_indices ~sites ~centroids in
    (* 2-opt refinement: greedy can strand a later controller far from its
       cluster (e.g. the edge-center placement); swap assignments while the
       total centroid distance decreases *)
    let dist m i = Coord.manhattan centroids.(m) sites.(i) in
    let improved = ref true in
    while !improved do
      improved := false;
      for a = 0 to n - 1 do
        for b = a + 1 to n - 1 do
          let cur = dist a chosen.(a) + dist b chosen.(b) in
          let swapped = dist a chosen.(b) + dist b chosen.(a) in
          if swapped < cur then begin
            let t = chosen.(a) in
            chosen.(a) <- chosen.(b);
            chosen.(b) <- t;
            improved := true
          end
        done
      done
    done;
    of_coords_result topo name (Array.map (fun i -> sites.(i)) chosen)

let for_centroids_result topo ~name ~centroids =
  assign_result topo ~name ~sites:(perimeter_sites topo) ~centroids

let centroid_distance ~sites ~centroids =
  let total = ref 0 in
  Array.iteri
    (fun m c -> total := !total + Coord.manhattan c sites.(m))
    centroids;
  !total

(* --- neighborhood moves (placement search) ----------------------------- *)

(* A search state is an *ordered* site array: MC [m] sits at [sites.(m)],
   so the MC-index <-> cluster-index correspondence the interleaved layout
   relies on is part of the state, not recomputed per move.  [Swap]
   generalizes the 2-opt refinement above to an explicit operator;
   [Relocate] extends the neighborhood to unused candidate sites. *)
type move =
  | Relocate of { mc : int; site : Coord.t }
  | Swap of { a : int; b : int }

let pp_move ppf = function
  | Relocate { mc; site } ->
    Format.fprintf ppf "relocate mc%d -> (%d,%d)" mc site.Coord.x site.Coord.y
  | Swap { a; b } -> Format.fprintf ppf "swap mc%d <-> mc%d" a b

let apply_move_result topo ~sites move =
  let n = Array.length sites in
  match move with
  | Swap { a; b } ->
    if a < 0 || a >= n || b < 0 || b >= n then
      Error (Printf.sprintf "Placement.apply_move: swap %d <-> %d out of range" a b)
    else if a = b then Error "Placement.apply_move: swap of an MC with itself"
    else begin
      let next = Array.copy sites in
      next.(a) <- sites.(b);
      next.(b) <- sites.(a);
      Ok next
    end
  | Relocate { mc; site } ->
    if mc < 0 || mc >= n then
      Error (Printf.sprintf "Placement.apply_move: mc%d out of range" mc)
    else if not (Topology.in_mesh topo site) then
      Error
        (Printf.sprintf "Placement.apply_move: site (%d,%d) is off the mesh"
           site.Coord.x site.Coord.y)
    else if Array.exists (fun s -> Coord.equal s site) sites then
      Error
        (Printf.sprintf "Placement.apply_move: site (%d,%d) is already occupied"
           site.Coord.x site.Coord.y)
    else begin
      let next = Array.copy sites in
      next.(mc) <- site;
      Ok next
    end

(* Every legal move from [sites] into [pool], in a deterministic order:
   relocations (MC-index major, pool order minor), then swaps (a < b).
   The search's descent step is therefore reproducible: candidates are
   always proposed in the same order. *)
let neighborhood ~pool ~sites =
  let n = Array.length sites in
  let occupied site = Array.exists (fun s -> Coord.equal s site) sites in
  let relocations =
    List.concat
      (List.init n (fun mc ->
           List.filter_map
             (fun site ->
               if occupied site then None else Some (Relocate { mc; site }))
             (Array.to_list pool)))
  in
  let swaps =
    List.concat
      (List.init n (fun a ->
           List.filter_map
             (fun b -> if b > a then Some (Swap { a; b }) else None)
             (List.init n Fun.id)))
  in
  relocations @ swaps

(* --- chiplet-aware pools and move ordering ----------------------------- *)

let sites_in_chiplet topo pool ~chiplet =
  Array.of_list
    (List.filter
       (fun c -> Topology.chiplet_of_coord topo c = chiplet)
       (Array.to_list (pool_sites topo pool)))

let move_crosses_chiplet topo ~sites = function
  | Relocate { mc; site } ->
    Topology.chiplet_of_coord topo site
    <> Topology.chiplet_of_coord topo sites.(mc)
  | Swap { a; b } ->
    Topology.chiplet_of_coord topo sites.(a)
    <> Topology.chiplet_of_coord topo sites.(b)

(* On a hierarchical topology the confined moves (relocations within the
   MC's own chiplet, swaps between same-chiplet MCs) come first, each
   group keeping the flat enumeration order; moves that explicitly cross
   a chiplet boundary follow.  A best- or first-improvement descent
   therefore prefers staying inside a chiplet's site pool on ties, and a
   flat topology gets exactly the historical order. *)
let neighborhood_on topo ~pool ~sites =
  let moves = neighborhood ~pool ~sites in
  match topo.Topology.chiplets with
  | None -> moves
  | Some _ ->
    let confined, crossing =
      List.partition
        (fun m -> not (move_crosses_chiplet topo ~sites m))
        moves
    in
    confined @ crossing

let mc_node p m = p.nodes.(m)

let nearest p topo node =
  let best = ref 0 and bestd = ref max_int in
  Array.iteri
    (fun m mn ->
      let d = Topology.distance topo node mn in
      if d < !bestd then begin
        bestd := d;
        best := m
      end)
    p.nodes;
  !best

let avg_distance p topo =
  let total = ref 0 in
  let n = Topology.nodes topo in
  for node = 0 to n - 1 do
    let m = nearest p topo node in
    total := !total + Topology.distance topo node p.nodes.(m)
  done;
  float_of_int !total /. float_of_int n
