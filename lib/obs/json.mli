(** Minimal JSON tree, encoder and parser — hand-rolled so the
    observability layer adds no external dependency.

    The encoder emits RFC 8259 JSON (UTF-8 pass-through for strings, full
    escaping of control characters); the parser accepts what the encoder
    produces plus ordinary whitespace, so [of_string (to_string v)]
    round-trips every finite value. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

val to_string : ?minify:bool -> t -> string
(** Default is pretty-printed (2-space indent); [~minify:true] emits the
    compact single-line form.  Non-finite floats encode as [null]. *)

val to_channel : out_channel -> t -> unit
(** Pretty-printed, with a trailing newline. *)

val of_string : string -> (t, string) result
(** Parses one JSON value (trailing whitespace allowed).  Numbers without
    fraction or exponent parse as [Int]. *)

val equal : t -> t -> bool
(** Structural equality; object fields compare in order. *)

val member : string -> t -> t option
(** Field lookup in an [Obj]; [None] elsewhere or when absent. *)

val obj : (string * t) list -> t

val list : ('a -> t) -> 'a list -> t

val array : ('a -> t) -> 'a array -> t

val int_array : int array -> t

val float_array : float array -> t
