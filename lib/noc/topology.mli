(** Two-dimensional mesh topology with dimension-ordered (XY) routing.

    Nodes are numbered row-major: node [y·width + x].  Links are directed;
    a message from [a] to [b] first travels along X, then along Y
    (deadlock-free XY routing, as in the simulated platform of Table 1).

    A topology may additionally carry a chiplet level: a [grid_x]×[grid_y]
    grid of equal rectangular tiles (NUMA domains).  Links whose endpoints
    lie in different chiplets form a second link class with its own
    latency and width ([link_latency]/[link_bytes]); everything on-die is
    unchanged.  A flat mesh simply has [chiplets = None], and a 1×1
    chiplet grid is normalized to [None] at construction, so degenerate
    hierarchical machines are structurally equal to — and behave
    byte-identically to — the flat mesh. *)

type chiplets = {
  grid_x : int;  (** chiplet columns; must divide [width] *)
  grid_y : int;  (** chiplet rows; must divide [height] *)
  link_latency : int;  (** per-hop latency of an inter-chiplet link *)
  link_bytes : int;  (** width of an inter-chiplet link *)
}

type t = { width : int; height : int; chiplets : chiplets option }

type dir = East | West | North | South

type link = { from_node : int; dir : dir }
(** The directed link leaving [from_node] towards [dir]. *)

val make : ?chiplets:chiplets -> width:int -> height:int -> unit -> t
(** Raises [Invalid_argument] on a non-positive mesh or a chiplet grid
    that does not tile it; use {!chiplets_result} for a [result]-typed
    construction with a located message. *)

val chiplets_result :
  t ->
  grid_x:int ->
  grid_y:int ->
  link_latency:int ->
  link_bytes:int ->
  (t, string) result
(** [t] with the given chiplet grid, or a message naming the offending
    field (grid must be positive and tile the mesh; latency and width
    must be positive). *)

val nodes : t -> int

val node_of_coord : t -> Coord.t -> int

val coord_of_node : t -> int -> Coord.t

val in_mesh : t -> Coord.t -> bool

val distance : t -> int -> int -> int
(** Manhattan distance between two nodes (= number of links an XY-routed
    message traverses). *)

val num_chiplets : t -> int
(** [1] on a flat mesh. *)

val chiplet_of_node : t -> int -> int
(** Row-major chiplet index of a node; [0] on a flat mesh. *)

val chiplet_of_coord : t -> Coord.t -> int

val chiplet_hops : t -> int -> int -> int
(** Number of chiplet-boundary crossings on the XY route between two
    nodes (= chiplet-grid Manhattan distance); [0] on a flat mesh. *)

val link_crosses_chiplet : t -> link -> bool
(** Whether a link's endpoints lie in different chiplets. *)

val xy_route : t -> src:int -> dst:int -> link list
(** The links traversed from [src] to [dst] under XY routing, in order.
    Empty when [src = dst]. *)

val link_id : t -> link -> int
(** Dense link identifier in [0 .. 4·nodes-1], for indexing link state. *)

val num_link_ids : t -> int

val link_ids : t -> src:int -> dst:int -> int array
(** The XY route from [src] to [dst] as dense link ids, in traversal
    order ([xy_route] composed with [link_id], without the intermediate
    list).  Empty when [src = dst]. *)
