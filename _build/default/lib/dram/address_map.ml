type interleaving = Line_interleaved | Page_interleaved

type t = {
  interleaving : interleaving;
  line_bytes : int;
  page_bytes : int;
  num_mcs : int;
  banks_per_mc : int;
}

let make ~interleaving ?(line_bytes = 256) ?(page_bytes = 4096) ~num_mcs
    ?(banks_per_mc = 4) () =
  if line_bytes <= 0 || page_bytes < line_bytes || num_mcs <= 0 || banks_per_mc <= 0
  then invalid_arg "Address_map.make";
  { interleaving; line_bytes; page_bytes; num_mcs; banks_per_mc }

let mc_of_paddr t paddr =
  match t.interleaving with
  | Line_interleaved -> paddr / t.line_bytes mod t.num_mcs
  | Page_interleaved -> paddr / t.page_bytes mod t.num_mcs

(* Channel-local address: the bits above the MC-selection field, rejoined
   with the bits below it.  Bank index interleaves at row-buffer (page)
   granularity within the channel, so consecutive rows of a channel fall in
   different banks (standard open-page mapping). *)
let channel_addr t paddr =
  match t.interleaving with
  | Line_interleaved ->
    let line = paddr / t.line_bytes in
    ((line / t.num_mcs) * t.line_bytes) + (paddr mod t.line_bytes)
  | Page_interleaved ->
    let page = paddr / t.page_bytes in
    ((page / t.num_mcs) * t.page_bytes) + (paddr mod t.page_bytes)

let bank_of_paddr t paddr = channel_addr t paddr / t.page_bytes mod t.banks_per_mc

let row_of_paddr t paddr =
  channel_addr t paddr / t.page_bytes / t.banks_per_mc

let mc_of_vaddr_line t vaddr =
  match t.interleaving with
  | Line_interleaved -> vaddr / t.line_bytes mod t.num_mcs
  | Page_interleaved ->
    invalid_arg "Address_map.mc_of_vaddr_line: page-interleaved"

let page_of_vaddr t vaddr = vaddr / t.page_bytes

let frame_of_paddr t paddr = paddr / t.page_bytes
