lib/core/indexed.mli: Affine
