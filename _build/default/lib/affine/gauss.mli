(** Exact integer elimination: column echelon form and integer nullspaces.

    The Data-to-Core mapping step of the paper (Section 5.2) reduces to
    solving the homogeneous system [Bᵀ·gᵥᵀ = 0] over the integers (Eq. 3),
    where [B] is the access matrix with the iteration-partition column
    removed.  We solve it by bringing the coefficient matrix to column
    echelon form with unimodular column operations; the columns of the
    accumulated transformation corresponding to vanished columns are an
    integer basis of the kernel lattice. *)

val column_echelon : Matrix.t -> Matrix.t * Matrix.t * int
(** [column_echelon m] is [(h, c, rank)] such that [m·c = h], [c] is
    unimodular, [h] is in column echelon form (each successive pivot row
    strictly below the previous; columns beyond [rank] are zero). *)

val nullspace : Matrix.t -> Vec.t list
(** [nullspace m] is a basis of the integer kernel lattice
    [{x | m·x = 0}].  The empty list means the kernel is trivial. *)

val kernel_vector : Matrix.t -> Vec.t option
(** [kernel_vector m] is a primitive nontrivial solution of [m·x = 0], or
    [None] when only the trivial solution exists.  Among the basis vectors
    it prefers the one with the fewest nonzero entries (and then the
    smallest max-norm), so that unit-vector solutions — which correspond to
    plain dimension permutations and therefore to the cheapest transformed
    code — are chosen when available. *)

val solve : Matrix.t -> Vec.t -> Vec.t option
(** [solve m b] is a particular integer solution of [m·x = b], or [None]
    when none exists over the integers.  Used by the loop-restructuring
    comparator to compute uniform dependence distances ([A·d = o₁-o₂]). *)
