lib/workloads/swim.ml: App
