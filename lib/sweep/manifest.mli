(** The sweep's machine-readable ledger: one entry per job recording its
    cache key, status and attempt history.  Rewritten atomically after
    every job resolution, so `sweep status` works on a live run and a
    killed sweep leaves an accurate picture behind. *)

type status =
  | Pending  (** not yet resolved in this invocation *)
  | Ok  (** executed in this invocation *)
  | Cached  (** satisfied by a previous invocation's result *)
  | Failed of string  (** retries exhausted; the payload is the reason *)

type entry = {
  id : string;
  key : string;
  status : status;
  attempts : int;
  wall_ms : float;  (** parent-measured wall clock of the final attempt *)
}

type t = {
  sweep : string;  (** spec name *)
  code_version : string;
  entries : entry array;  (** in spec order *)
}

val status_string : status -> string

val to_json : t -> Obs.Json.t

val of_json : Obs.Json.t -> (t, string) result

val path : dir:string -> string
(** [DIR/manifest.json]. *)

val store : dir:string -> t -> unit
(** Atomic write (temp + rename). *)

val load : dir:string -> (t, string) result

val summary : t -> int * int * int * int
(** [(ok, cached, failed, pending)] counts. *)
