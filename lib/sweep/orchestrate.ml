module Json = Obs.Json

type report = {
  manifest : Manifest.t;
  ran : int;
  merged : Obs.Json.t option;
}

let ( let* ) = Result.bind

let merge_results ~out (m : Manifest.t) =
  let completed =
    Array.to_list m.Manifest.entries
    |> List.filter (fun (e : Manifest.entry) ->
           match e.Manifest.status with
           | Manifest.Ok | Manifest.Cached -> true
           | _ -> false)
  in
  let* docs =
    List.fold_left
      (fun acc (e : Manifest.entry) ->
        let* acc = acc in
        match Cache.find ~dir:out e.Manifest.key with
        | Some doc -> Ok ((e, doc) :: acc)
        | None ->
          Error
            (Printf.sprintf "missing or corrupt result %s for job %s"
               (Cache.path ~dir:out e.Manifest.key)
               e.Manifest.id))
      (Ok []) completed
  in
  let docs = List.rev docs in
  let* merged_metrics =
    List.fold_left
      (fun acc ((e : Manifest.entry), doc) ->
        let* acc = acc in
        let* snap =
          match Option.bind (Json.member "stats" doc) (Json.member "metrics") with
          | Some mj -> Obs.Metrics.snapshot_of_json mj
          | None -> Error ("result of " ^ e.Manifest.id ^ " lacks stats.metrics")
        in
        Ok
          (match acc with
          | None -> Some snap
          | Some prev -> Some (Obs.Metrics.merge prev snap)))
      (Ok None) docs
  in
  let job_row ((e : Manifest.entry), doc) =
    Json.obj
      [
        ("id", Json.String e.Manifest.id);
        ( "measured_time",
          match Json.member "measured_time" doc with
          | Some v -> v
          | None -> Json.Null );
      ]
  in
  Ok
    (Json.obj
       [
         ("sweep", Json.String m.Manifest.sweep);
         ("completed", Json.Int (List.length docs));
         ( "failed",
           Json.Int
             (Array.fold_left
                (fun n (e : Manifest.entry) ->
                  match e.Manifest.status with
                  | Manifest.Failed _ -> n + 1
                  | _ -> n)
                0 m.Manifest.entries) );
         ("jobs", Json.list job_row docs);
         ( "metrics",
           match merged_metrics with
           | Some s -> Obs.Metrics.to_json s
           | None -> Json.Null );
       ])

let write_merged ~out doc =
  let final = Filename.concat out "merged.json" in
  let tmp = Printf.sprintf "%s.%d.tmp" final (Unix.getpid ()) in
  let oc = open_out_bin tmp in
  Json.to_channel oc doc;
  close_out oc;
  Sys.rename tmp final;
  final

let run_sweep ?(workers = 4) ?timeout_s ?retries ?(backoff_s = 0.5)
    ?(force = false) ?inject_fail ?domains ?(log = fun _ -> ())
    ?(progress = Obs.Progress.null) ~out (spec : Spec.t) =
  let timeout_s = Option.value timeout_s ~default:spec.Spec.timeout_s in
  let retries = Option.value retries ~default:spec.Spec.retries in
  let domains = Option.value domains ~default:spec.Spec.domains in
  Cache.ensure ~dir:out;
  let jobs = spec.Spec.jobs in
  let n = Array.length jobs in
  let keys = Array.map Cache.key jobs in
  let entries =
    Array.init n (fun i ->
        let cached = (not force) && Cache.find ~dir:out keys.(i) <> None in
        {
          Manifest.id = jobs.(i).Spec.id;
          key = keys.(i);
          status = (if cached then Manifest.Cached else Manifest.Pending);
          attempts = 0;
          wall_ms = 0.;
        })
  in
  let manifest () =
    {
      Manifest.sweep = spec.Spec.name;
      code_version = Cache.code_version ();
      entries;
    }
  in
  Manifest.store ~dir:out (manifest ());
  let to_run =
    Array.of_list
      (List.filter
         (fun i -> entries.(i).Manifest.status = Manifest.Pending)
         (List.init n (fun i -> i)))
  in
  let injected id =
    match inject_fail with
    | Some s when s <> "" ->
      (* substring match on the job id *)
      let ls = String.length s and li = String.length id in
      let rec at o = o + ls <= li && (String.sub id o ls = s || at (o + 1)) in
      at 0
    | _ -> false
  in
  let f k =
    let job = jobs.(to_run.(k)) in
    if injected job.Spec.id then
      if workers > 0 then Stdlib.exit 1
      else Error "injected failure"
    else begin
      let t0 = Unix.gettimeofday () in
      let doc = Exec.run_job ~domains job in
      Cache.store ~dir:out keys.(to_run.(k)) doc;
      let wall_ms = 1000. *. (Unix.gettimeofday () -. t0) in
      Ok (Json.to_string ~minify:true (Json.obj [ ("wall_ms", Json.Float wall_ms) ]))
    end
  in
  let started_at = Unix.gettimeofday () in
  Obs.Progress.emit progress
    (Json.obj
       [
         ("event", Json.String "sweep_start");
         ("sweep", Json.String spec.Spec.name);
         ("jobs", Json.Int n);
         ("to_run", Json.Int (Array.length to_run));
         ("cached", Json.Int (n - Array.length to_run));
         ("workers", Json.Int workers);
       ]);
  let resolved = ref 0 in
  let on_outcome k outcome =
    let i = to_run.(k) in
    let e = entries.(i) in
    (match outcome with
    | Pool.Completed { attempts; payload } ->
      let wall_ms =
        match Result.map (Json.member "wall_ms") (Json.of_string payload) with
        | Ok (Some (Json.Float f)) -> f
        | Ok (Some (Json.Int ms)) -> float_of_int ms
        | _ -> 0.
      in
      entries.(i) <- { e with Manifest.status = Manifest.Ok; attempts; wall_ms }
    | Pool.Failed { attempts; reason } ->
      entries.(i) <-
        { e with Manifest.status = Manifest.Failed reason; attempts });
    incr resolved;
    Manifest.store ~dir:out (manifest ());
    (* ETA from elapsed wall time per resolved job — parallelism folds in
       naturally since elapsed time is shared across workers *)
    let remaining = Array.length to_run - !resolved in
    let eta_s =
      (Unix.gettimeofday () -. started_at)
      /. float_of_int !resolved *. float_of_int remaining
    in
    (* per-job metric snapshot: the headline number of the stored result *)
    let measured_time =
      match entries.(i).Manifest.status with
      | Manifest.Ok -> (
        match
          Option.bind (Cache.find ~dir:out keys.(i))
            (Json.member "measured_time")
        with
        | Some (Json.Int t) -> [ ("measured_time", Json.Int t) ]
        | _ -> [])
      | _ -> []
    in
    Obs.Progress.emit progress
      (Json.obj
         ([
            ("event", Json.String "job_finish");
            ("job", Json.String jobs.(i).Spec.id);
            ( "status",
              Json.String
                (match entries.(i).Manifest.status with
                | Manifest.Failed _ -> "failed"
                | s -> Manifest.status_string s) );
            ("attempts", Json.Int entries.(i).Manifest.attempts);
            ("wall_ms", Json.Float entries.(i).Manifest.wall_ms);
            ("resolved", Json.Int !resolved);
            ("remaining", Json.Int remaining);
            ("eta_s", Json.Float eta_s);
          ]
         @ measured_time
         @
         match entries.(i).Manifest.status with
         | Manifest.Failed r -> [ ("reason", Json.String r) ]
         | _ -> []));
    log
      (Printf.sprintf "[%d/%d] %s: %s" !resolved (Array.length to_run)
         jobs.(i).Spec.id
         (match entries.(i).Manifest.status with
         | Manifest.Failed r -> "FAILED (" ^ r ^ ")"
         | s -> Manifest.status_string s))
  in
  let on_event (ev : Pool.event) =
    Obs.Progress.emit progress
      (match ev with
      | Pool.Started { job; attempt } ->
        Json.obj
          [
            ("event", Json.String "job_start");
            ("job", Json.String jobs.(to_run.(job)).Spec.id);
            ("attempt", Json.Int attempt);
          ]
      | Pool.Retrying { job; attempt; reason } ->
        Json.obj
          [
            ("event", Json.String "job_retry");
            ("job", Json.String jobs.(to_run.(job)).Spec.id);
            ("attempt", Json.Int attempt);
            ("reason", Json.String reason);
          ])
  in
  if Array.length to_run > 0 then
    ignore
      (Pool.run ~workers ~timeout_s ~retries ~backoff_s ~on_outcome ~on_event
         ~jobs:(Array.length to_run) f);
  let m = manifest () in
  Manifest.store ~dir:out m;
  let merged =
    match merge_results ~out m with
    | Ok doc ->
      ignore (write_merged ~out doc);
      Some doc
    | Error e ->
      log ("merge: " ^ e);
      None
  in
  let count st =
    Array.fold_left
      (fun acc (e : Manifest.entry) -> if st e.Manifest.status then acc + 1 else acc)
      0 entries
  in
  Obs.Progress.emit progress
    (Json.obj
       [
         ("event", Json.String "sweep_done");
         ("sweep", Json.String spec.Spec.name);
         ("ok", Json.Int (count (fun s -> s = Manifest.Ok)));
         ("cached", Json.Int (count (fun s -> s = Manifest.Cached)));
         ( "failed",
           Json.Int
             (count (function Manifest.Failed _ -> true | _ -> false)) );
         ("merged", Json.Bool (merged <> None));
         ("elapsed_s", Json.Float (Unix.gettimeofday () -. started_at));
       ]);
  { manifest = m; ran = Array.length to_run; merged }
