lib/lang/interp.mli: Affine Ast
