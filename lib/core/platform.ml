type interleaving = Line_interleaved | Page_interleaved

type t = {
  name : string;
  topo : Noc.Topology.t;
  cluster : Cluster.t;
  placement : Noc.Placement.t;
  interleaving : interleaving;
  line_bytes : int;
  page_bytes : int;
  elem_bytes : int;
  banks_per_mc : int;
  channels_per_mc : int;
}

let ( let* ) = Result.bind

let num_mcs t = Cluster.num_mcs t.cluster

let granule_bytes t =
  match t.interleaving with
  | Line_interleaved -> t.line_bytes
  | Page_interleaved -> t.page_bytes

let corner_sites (topo : Noc.Topology.t) =
  let w = topo.width - 1 and h = topo.height - 1 in
  [|
    Noc.Coord.make 0 0;
    Noc.Coord.make w 0;
    Noc.Coord.make 0 h;
    Noc.Coord.make w h;
  |]

let placement_for ?sites topo (cluster : Cluster.t) =
  let mcs = Cluster.num_mcs cluster in
  let centroids =
    Array.init mcs (fun m ->
        Cluster.centroid_of_cluster cluster (Cluster.cluster_of_mc cluster m))
  in
  match sites with
  | Some sites -> Noc.Placement.assign_result topo ~name:"custom" ~sites ~centroids
  | None ->
    if mcs <= 4 then
      Noc.Placement.assign_result topo ~name:"P1-corners"
        ~sites:(corner_sites topo) ~centroids
    else
      Noc.Placement.for_centroids_result topo
        ~name:(Printf.sprintf "perimeter-%d" mcs)
        ~centroids

let make_result ?placement ?(interleaving = Line_interleaved)
    ?(line_bytes = 256) ?(page_bytes = 4096) ?(elem_bytes = 8)
    ?(banks_per_mc = 16) ?(channels_per_mc = 4) ~name ~topo
    ~(cluster : Cluster.t) () =
  let* () =
    if cluster.Cluster.width <> topo.Noc.Topology.width
       || cluster.Cluster.height <> topo.Noc.Topology.height
    then
      Error
        (Printf.sprintf
           "platform %s: cluster %s is for a %dx%d mesh, topology is %dx%d"
           name cluster.Cluster.name cluster.Cluster.width
           cluster.Cluster.height topo.Noc.Topology.width
           topo.Noc.Topology.height)
    else Ok ()
  in
  let* () =
    if elem_bytes <= 0 then
      Error (Printf.sprintf "platform %s: elem_bytes must be positive" name)
    else if line_bytes <= 0 || line_bytes mod elem_bytes <> 0 then
      Error
        (Printf.sprintf
           "platform %s: line_bytes (%d) must be a positive multiple of \
            elem_bytes (%d)"
           name line_bytes elem_bytes)
    else if page_bytes <= 0 || page_bytes mod line_bytes <> 0 then
      Error
        (Printf.sprintf
           "platform %s: page_bytes (%d) must be a positive multiple of \
            line_bytes (%d)"
           name page_bytes line_bytes)
    else if banks_per_mc <= 0 || channels_per_mc <= 0 then
      Error
        (Printf.sprintf
           "platform %s: banks_per_mc and channels_per_mc must be positive"
           name)
    else Ok ()
  in
  let* placement =
    match placement with
    | Some (p : Noc.Placement.t) ->
      if Noc.Placement.count p <> Cluster.num_mcs cluster then
        Error
          (Printf.sprintf
             "platform %s: placement %s has %d sites for %d controllers" name
             p.Noc.Placement.name (Noc.Placement.count p)
             (Cluster.num_mcs cluster))
      else Ok p
    | None -> placement_for topo cluster
  in
  Ok
    {
      name;
      topo;
      cluster;
      placement;
      interleaving;
      line_bytes;
      page_bytes;
      elem_bytes;
      banks_per_mc;
      channels_per_mc;
    }

let with_cluster t cluster =
  let* placement = placement_for t.topo cluster in
  Ok { t with cluster; placement }

let with_mapping t spec =
  let width = t.topo.Noc.Topology.width
  and height = t.topo.Noc.Topology.height in
  match spec with
  | "" -> Ok t
  | "M1" | "m1" -> Result.bind (Cluster.m1 ~width ~height) (with_cluster t)
  | "M2" | "m2" -> Result.bind (Cluster.m2 ~width ~height) (with_cluster t)
  | s -> (
    (* "8" and "M1x8" both name the 8-controller configuration — the
       latter is the cluster name selection notes report, so a C002
       decision can be fed back verbatim. *)
    let count =
      match int_of_string_opt s with
      | Some _ as v -> v
      | None when String.length s > 3 ->
        let prefix = String.sub s 0 3 and rest = String.sub s 3 (String.length s - 3) in
        if prefix = "M1x" || prefix = "m1x" then int_of_string_opt rest else None
      | None -> None
    in
    match count with
    | Some mcs when mcs > 0 ->
      Result.bind (Cluster.with_mcs_result ~width ~height ~mcs) (with_cluster t)
    | _ -> Error ("unknown mapping " ^ s))

(* --- candidate enumeration (Section 4 / Fig. 27) ----------------------- *)

let same_geometry (a : Cluster.t) (b : Cluster.t) =
  a.Cluster.cx = b.Cluster.cx && a.Cluster.cy = b.Cluster.cy
  && a.Cluster.k = b.Cluster.k

(* Two candidates describe the same machine when both the cluster grid and
   the controller attachment sites coincide — the cluster *name* is
   presentation (the platform's own mapping can equal a preset, and a
   searched placement can converge back to the preset sites), so it is
   deliberately not part of the identity. *)
let same_machine a b =
  same_geometry a.cluster b.cluster
  && a.placement.Noc.Placement.nodes = b.placement.Noc.Placement.nodes

let candidates ?(extra = []) t =
  let width = t.topo.Noc.Topology.width
  and height = t.topo.Noc.Topology.height in
  let budget = num_mcs t in
  let pool =
    [
      Cluster.m1 ~width ~height;
      Cluster.m2 ~width ~height;
      Cluster.with_mcs_result ~width ~height ~mcs:8;
      Cluster.with_mcs_result ~width ~height ~mcs:16;
    ]
  in
  let viable =
    List.filter_map
      (function
        | Ok (c : Cluster.t) when Cluster.num_mcs c <= budget -> Some c
        | _ -> None)
      pool
  in
  let clusters =
    List.fold_left
      (fun acc c ->
        if List.exists (same_geometry c) acc then acc else acc @ [ c ])
      [ t.cluster ] viable
  in
  let presets =
    List.filter_map
      (fun c ->
        if same_geometry c t.cluster then Some t
        else match with_cluster t c with Ok p -> Some p | Error _ -> None)
      clusters
  in
  (* extras (e.g. searched placements) join the pool but never duplicate a
     machine the preset enumeration already proposes; the C002 cost table
     must not list the same machine twice *)
  let viable_extra =
    List.filter
      (fun (p : t) ->
        p.topo = t.topo && Cluster.num_mcs p.cluster <= budget)
      extra
  in
  List.fold_left
    (fun acc p ->
      if List.exists (same_machine p) acc then acc else acc @ [ p ])
    [] (presets @ viable_extra)

(* --- presets ----------------------------------------------------------- *)

let preset_names =
  [
    "mesh8x8-mc4";
    "mesh8x8-mc8";
    "mesh8x8-mc16";
    "mesh8x8-m2";
    "chiplet2x2-mc4";
    "chiplet2x2-mc8";
  ]

(* Each chiplet of a chiplet<CX>x<CY> preset is a 4x4 tile of cores, so
   chiplet2x2 is the familiar 8x8 mesh partitioned into four NUMA
   domains.  Crossing a die boundary costs 3x the on-die hop latency
   over links half as wide — the asymmetry the chiplet-GPU literature
   models. *)
let chiplet_tile = 4

let chiplet_link_latency = 12

let chiplet_link_bytes = 8

let preset_result name =
  let fail () =
    Error
      (Printf.sprintf
         "unknown platform %S (expected mesh<W>x<H>-{m1|m2|mc<N>} or \
          chiplet<CX>x<CY>-{m1|m2|mc<N>}, e.g. %s, or a platform JSON file)"
         name
         (String.concat ", " preset_names))
  in
  let mapping_of = function
    (* "mc4" is the paper's default M1 mapping (Fig. 8a): four
       controllers, one per quadrant *)
    | "m1" | "mc4" -> Some `M1
    | "m2" -> Some `M2
    | s when String.length s > 2 && String.sub s 0 2 = "mc" -> (
      match int_of_string_opt (String.sub s 2 (String.length s - 2)) with
      | Some mcs when mcs > 0 -> Some (`Mcs mcs)
      | _ -> None)
    | _ -> None
  in
  let build ~name ~topo mapping =
    let width = topo.Noc.Topology.width
    and height = topo.Noc.Topology.height in
    let cluster =
      match mapping with
      | `M1 -> Cluster.m1 ~width ~height
      | `M2 -> Cluster.m2 ~width ~height
      | `Mcs mcs -> Cluster.with_mcs_result ~width ~height ~mcs
    in
    match cluster with
    | Error e -> Error (Printf.sprintf "platform %s: %s" name e)
    | Ok cluster -> make_result ~name ~topo ~cluster ()
  in
  match String.index_opt name '-' with
  | None -> fail ()
  | Some dash ->
    let mesh = String.sub name 0 dash
    and map = String.sub name (dash + 1) (String.length name - dash - 1) in
    let dims prefix =
      let pl = String.length prefix in
      if String.length mesh < pl + 3 || String.sub mesh 0 pl <> prefix then
        None
      else
        match String.index_from_opt mesh pl 'x' with
        | None -> None
        | Some cross -> (
          let w = String.sub mesh pl (cross - pl)
          and h =
            String.sub mesh (cross + 1) (String.length mesh - cross - 1)
          in
          match (int_of_string_opt w, int_of_string_opt h) with
          | Some w, Some h when w >= 1 && h >= 1 -> Some (w, h)
          | _ -> None)
    in
    (match (dims "mesh", dims "chiplet", mapping_of map) with
    | Some (width, height), _, Some mapping ->
      build ~name ~topo:(Noc.Topology.make ~width ~height ()) mapping
    | None, Some (gx, gy), Some mapping ->
      let chiplets =
        {
          Noc.Topology.grid_x = gx;
          grid_y = gy;
          link_latency = chiplet_link_latency;
          link_bytes = chiplet_link_bytes;
        }
      in
      let topo =
        Noc.Topology.make ~chiplets ~width:(gx * chiplet_tile)
          ~height:(gy * chiplet_tile) ()
      in
      build ~name ~topo mapping
    | _ -> fail ())

let default () =
  match preset_result "mesh8x8-mc4" with
  | Ok p -> p
  | Error e ->
    (* the default preset is total by construction *)
    invalid_arg e

(* --- JSON (de)serialization -------------------------------------------- *)

let interleaving_to_string = function
  | Line_interleaved -> "line"
  | Page_interleaved -> "page"

let interleaving_of_string = function
  | "line" -> Ok Line_interleaved
  | "page" -> Ok Page_interleaved
  | s -> Error ("unknown interleaving " ^ s)

let to_json t =
  let open Obs.Json in
  let coord n =
    let c = Noc.Topology.coord_of_node t.topo n in
    List [ Int c.Noc.Coord.x; Int c.Noc.Coord.y ]
  in
  (* the "hierarchy" member exists only on hierarchical platforms: a flat
     platform's document stays byte-identical to what it was before the
     chiplet level existed *)
  let hierarchy =
    match t.topo.Noc.Topology.chiplets with
    | None -> []
    | Some g ->
      [
        ( "hierarchy",
          obj
            [
              ("chiplets_x", Int g.Noc.Topology.grid_x);
              ("chiplets_y", Int g.Noc.Topology.grid_y);
              ("link_latency", Int g.Noc.Topology.link_latency);
              ("link_bytes", Int g.Noc.Topology.link_bytes);
            ] );
      ]
  in
  obj
    ([
      ("name", String t.name);
      ("mesh_width", Int t.topo.Noc.Topology.width);
      ("mesh_height", Int t.topo.Noc.Topology.height);
    ]
    @ hierarchy
    @ [
      ( "cluster",
        obj
          [
            ("name", String t.cluster.Cluster.name);
            ("cx", Int t.cluster.Cluster.cx);
            ("cy", Int t.cluster.Cluster.cy);
            ("k", Int t.cluster.Cluster.k);
          ] );
      ( "placement",
        obj
          [
            ("name", String t.placement.Noc.Placement.name);
            ( "sites",
              List
                (Array.to_list
                   (Array.map coord t.placement.Noc.Placement.nodes)) );
          ] );
      ("interleaving", String (interleaving_to_string t.interleaving));
      ("line_bytes", Int t.line_bytes);
      ("page_bytes", Int t.page_bytes);
      ("elem_bytes", Int t.elem_bytes);
      ("banks_per_mc", Int t.banks_per_mc);
      ("channels_per_mc", Int t.channels_per_mc);
    ])

let int_field ?default j name =
  match Obs.Json.member name j with
  | Some (Obs.Json.Int i) -> Ok i
  | Some _ -> Error (Printf.sprintf "field %S must be an integer" name)
  | None -> (
    match default with
    | Some d -> Ok d
    | None -> Error (Printf.sprintf "missing field %S" name))

let str_field ?default j name =
  match Obs.Json.member name j with
  | Some (Obs.Json.String s) -> Ok s
  | Some _ -> Error (Printf.sprintf "field %S must be a string" name)
  | None -> (
    match default with
    | Some d -> Ok d
    | None -> Error (Printf.sprintf "missing field %S" name))

let of_json j =
  let* name = str_field ~default:"custom" j "name" in
  let* width = int_field j "mesh_width" in
  let* height = int_field j "mesh_height" in
  let* () =
    if width >= 1 && height >= 1 then Ok ()
    else Error (Printf.sprintf "bad mesh %dx%d" width height)
  in
  let topo = Noc.Topology.make ~width ~height () in
  let* topo =
    match Obs.Json.member "hierarchy" j with
    | None -> Ok topo
    | Some hj ->
      Result.map_error
        (fun e -> "hierarchy: " ^ e)
        (let* grid_x = int_field hj "chiplets_x" in
         let* grid_y = int_field hj "chiplets_y" in
         let* link_latency =
           int_field ~default:chiplet_link_latency hj "link_latency"
         in
         let* link_bytes =
           int_field ~default:chiplet_link_bytes hj "link_bytes"
         in
         Noc.Topology.chiplets_result topo ~grid_x ~grid_y ~link_latency
           ~link_bytes)
  in
  let* cluster =
    match Obs.Json.member "cluster" j with
    | None -> Cluster.m1 ~width ~height
    | Some cj ->
      let* cname = str_field ~default:"custom" cj "name" in
      let* cx = int_field cj "cx" in
      let* cy = int_field cj "cy" in
      let* k = int_field ~default:1 cj "k" in
      Cluster.make_result ~name:cname ~width ~height ~cx ~cy ~k
  in
  let* placement =
    match Obs.Json.member "placement" j with
    | None -> Ok None
    | Some pj ->
      let* pname = str_field ~default:"custom" pj "name" in
      let* sites =
        match Obs.Json.member "sites" pj with
        | Some (Obs.Json.List l) ->
          let rec coords acc = function
            | [] -> Ok (Array.of_list (List.rev acc))
            | Obs.Json.List [ Obs.Json.Int x; Obs.Json.Int y ] :: rest ->
              coords (Noc.Coord.make x y :: acc) rest
            | _ -> Error "placement sites must be [x, y] pairs"
          in
          coords [] l
        | _ -> Error "placement needs a \"sites\" list"
      in
      let* p = Noc.Placement.of_coords_result topo pname sites in
      Ok (Some p)
  in
  let* interleaving =
    let* s = str_field ~default:"line" j "interleaving" in
    interleaving_of_string s
  in
  let* line_bytes = int_field ~default:256 j "line_bytes" in
  let* page_bytes = int_field ~default:4096 j "page_bytes" in
  let* elem_bytes = int_field ~default:8 j "elem_bytes" in
  let* banks_per_mc = int_field ~default:16 j "banks_per_mc" in
  let* channels_per_mc = int_field ~default:4 j "channels_per_mc" in
  make_result ?placement ~interleaving ~line_bytes ~page_bytes ~elem_bytes
    ~banks_per_mc ~channels_per_mc ~name ~topo ~cluster ()

let of_file path =
  let contents () =
    let ic = open_in_bin path in
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  in
  match contents () with
  | exception Sys_error e -> Error e
  | s -> (
    match Obs.Json.of_string s with
    | Error e -> Error (Printf.sprintf "%s: %s" path e)
    | Ok j -> (
      match of_json j with
      | Error e -> Error (Printf.sprintf "%s: %s" path e)
      | Ok p -> Ok p))

let of_spec spec =
  if Sys.file_exists spec then of_file spec else preset_result spec

let pp ppf t =
  let hierarchy =
    match t.topo.Noc.Topology.chiplets with
    | None -> ""
    | Some g ->
      Printf.sprintf " (%dx%d chiplets, cross-links %d cycles/%d B)"
        g.Noc.Topology.grid_x g.Noc.Topology.grid_y g.Noc.Topology.link_latency
        g.Noc.Topology.link_bytes
  in
  Format.fprintf ppf
    "@[<v>platform %s: %dx%d mesh%s, %a, placement %s, %s interleaving (%d B \
     lines, %d B pages), %d banks/MC, %d channels/MC@]"
    t.name t.topo.Noc.Topology.width t.topo.Noc.Topology.height hierarchy
    Cluster.pp t.cluster t.placement.Noc.Placement.name
    (interleaving_to_string t.interleaving)
    t.line_bytes t.page_bytes t.banks_per_mc t.channels_per_mc
