(** The full layout-transformation pass (Algorithm 1).

    Iterates over every array of the program; for each, determines the
    Data-to-Core mapping from all its references (weighted by trip
    count), then customizes the layout for the configured L2 organization,
    interleaving granularity and L2-to-MC mapping.  Indexed references are
    approximated from a profile when one is supplied; arrays whose best
    approximation exceeds the inaccuracy threshold, or that have no
    parallel affine reference, keep their original layout. *)

type why_kept =
  | Index_array  (** auxiliary integer array, never transformed *)
  | No_parallel_reference
  | No_solution  (** only the trivial [gᵥ] exists *)
  | Bad_approximation of float  (** indexed fit above threshold *)

type decision = {
  info : Lang.Analysis.array_info;
  layout : Layout.t;
  optimized : bool;
  kept : why_kept option;  (** [Some _] iff not optimized *)
  satisfied_weight : int;  (** reference weight the chosen layout satisfies *)
  total_weight : int;
}

type report = {
  decisions : decision list;
  pct_arrays_optimized : float;  (** Table 2, column 2 (data arrays only) *)
  pct_refs_satisfied : float;  (** Table 2, column 3 (weighted) *)
}

val run :
  ?profile:(string -> (Affine.Vec.t * Affine.Vec.t) list) ->
  ?threshold:float ->
  Customize.config ->
  Lang.Analysis.t ->
  report
(** [profile array] returns (iteration, data-vector) samples for arrays
    with indexed references (default: no profile, such arrays are kept). *)

val layout_of : report -> string -> Layout.t
(** Layout chosen for an array (identity when kept).  Raises [Not_found]
    for unknown arrays. *)

val rewrite_program : report -> Lang.Ast.program -> Lang.Ast.program
(** The transformed source: every reference to an optimized array gets its
    customized subscripts (Fig. 9c) and declarations get the padded
    extents. *)

val pp_report : Format.formatter -> report -> unit
