(* Edge cases and smoke coverage for the smaller public surfaces:
   pretty-printers, file IO paths, argument validation, the platform
   renderer. *)

module Vec = Affine.Vec
module Matrix = Affine.Matrix

(* --- printers never raise and contain the essentials --- *)

let contains s sub = Astring.String.is_infix ~affix:sub s

let ok = function Ok v -> v | Error e -> failwith e

let parse src =
  match Lang.Parser.parse_result src with
  | Ok p -> p
  | Error _ -> Alcotest.fail "parse failed"

let test_pp_smoke () =
  let v = Vec.of_list [ 1; -2; 3 ] in
  Alcotest.(check string) "vec" "(1, -2, 3)" (Vec.to_string v);
  let m = Matrix.of_rows [ v; Vec.zero 3 ] in
  Alcotest.(check bool) "matrix mentions rows" true
    (contains (Matrix.to_string m) "(0, 0, 0)");
  let h = Affine.Hyperplane.make v 7 in
  Alcotest.(check bool) "hyperplane" true
    (contains (Format.asprintf "%a" Affine.Hyperplane.pp h) "= 7");
  let s = Affine.Space.of_extents [ 2; 3 ] in
  Alcotest.(check bool) "space" true
    (contains (Format.asprintf "%a" Affine.Space.pp s) "(1, 2)")

let test_cluster_pp () =
  let c = ok (Core.Cluster.m1 ~width:8 ~height:8) in
  let s = Format.asprintf "%a" Core.Cluster.pp c in
  Alcotest.(check bool) "mentions geometry" true (contains s "2x2 clusters")

let test_layout_pp () =
  let cfg = Sim.Config.customize_config (Sim.Config.scaled ()) in
  let layout =
    Core.Customize.customize cfg ~array:"A" ~extents:[| 64; 64 |]
      ~u:(Matrix.identity 2) ~v:0
  in
  let s = Format.asprintf "%a" Core.Layout.pp layout in
  Alcotest.(check bool) "mentions U" true (contains s "U =");
  Alcotest.(check bool) "mentions dims" true (contains s "dims")

let test_report_pp () =
  let cfg = Sim.Config.customize_config (Sim.Config.scaled ()) in
  let analysis =
    Lang.Analysis.analyze
      (parse
         {|
array A[64][64];
index I[8];
parfor i = 0 to 63 { for j = 0 to 63 { A[i][j] = 1; } }
|})
  in
  let report = Core.Transform.run cfg analysis in
  let s = Format.asprintf "%a" Core.Transform.pp_report report in
  Alcotest.(check bool) "optimized array listed" true (contains s "A: optimized");
  Alcotest.(check bool) "index array reason" true (contains s "index array")

let test_config_pp () =
  let s = Format.asprintf "%a" Sim.Config.pp (Sim.Config.default ()) in
  Alcotest.(check bool) "mesh size" true (contains s "mesh 8x8");
  Alcotest.(check bool) "interleaving" true (contains s "cache-line interleaved")

(* --- platform renderer --- *)

let test_platform_map () =
  let cfg = Sim.Config.scaled () in
  let s = Sim.Platform_map.render cfg in
  Alcotest.(check bool) "controller 0 marked" true (contains s "*0");
  Alcotest.(check bool) "controller 3 marked" true (contains s "*3");
  Alcotest.(check bool) "legend" true (contains s "cluster 0 -> controller(s) 0");
  (* every cluster digit appears *)
  List.iter
    (fun d -> Alcotest.(check bool) ("cluster " ^ d) true (contains s ("[ " ^ d ^ " ]")))
    [ "0"; "1"; "2"; "3" ]

let test_platform_heat () =
  let cfg = Sim.Config.scaled () in
  let values = Array.make 64 0 in
  values.(0) <- 100;
  let s = Sim.Platform_map.render_heat cfg values in
  Alcotest.(check bool) "hot corner" true (contains s "#");
  Alcotest.check_raises "size mismatch"
    (Invalid_argument "Platform_map.render_heat") (fun () ->
      ignore (Sim.Platform_map.render_heat cfg (Array.make 3 0)))

(* --- file IO paths --- *)

let test_parse_file () =
  let path = Filename.temp_file "offchip" ".mc" in
  let oc = open_out path in
  output_string oc "array A[4];\nparfor i = 0 to 3 { A[i] = i; }\n";
  close_out oc;
  let p =
    match Lang.Parser.parse_file_result path with
    | Ok p -> p
    | Error _ -> Alcotest.fail "parse_file failed"
  in
  Sys.remove path;
  Alcotest.(check int) "one nest" 1 (List.length p.Lang.Ast.nests)

let test_parse_file_missing () =
  match Lang.Parser.parse_file_result "/nonexistent/offchip.mc" with
  | Ok _ -> Alcotest.fail "expected a P000 diagnostic"
  | Error (d :: _) -> Alcotest.(check string) "code" "P000" d.Lang.Diag.code
  | Error [] -> Alcotest.fail "expected a diagnostic"

let test_codegen_emit () =
  let c =
    match
      Lang.Codegen.emit_result ~name:"t"
        (parse "array A[4];\nparfor i = 0 to 3 { A[i] = i; }")
    with
    | Ok c -> c
    | Error _ -> Alcotest.fail "codegen failed"
  in
  Alcotest.(check bool) "has run function" true (contains c "void run_t(void)")

(* --- argument validation --- *)

let test_validation () =
  Alcotest.check_raises "vec unit out of range" (Invalid_argument "Vec.unit")
    (fun () -> ignore (Vec.unit 3 5));
  Alcotest.check_raises "matrix mul mismatch" (Invalid_argument "Matrix.mul")
    (fun () -> ignore (Matrix.mul (Matrix.identity 2) (Matrix.identity 3)));
  Alcotest.check_raises "topology zero" (Invalid_argument "Topology.make")
    (fun () -> ignore (Noc.Topology.make ~width:0 ~height:4 ()));
  Alcotest.check_raises "fr_fcfs bad bank" (Invalid_argument "Fr_fcfs.enqueue")
    (fun () ->
      Dram.Fr_fcfs.enqueue (Dram.Fr_fcfs.create ~banks:2 ()) ~now:0 ~bank:7
        ~row:0 ~id:0 ());
  Alcotest.check_raises "interp bad threads"
    (Invalid_argument "Interp.trace: bad thread configuration") (fun () ->
      ignore
        (Lang.Interp.trace ~threads:3 ~threads_per_core:2
           ~addr_of:(fun _ _ -> 0)
           (parse "array A[4];\nparfor i = 0 to 3 { A[i] = i; }")));
  Alcotest.check_raises "complete_row non-primitive"
    (Invalid_argument "Unimodular.complete_row: not primitive") (fun () ->
      ignore (Affine.Unimodular.complete_row (Vec.of_list [ 2; 4 ]) ~v:0))

(* --- access functions --- *)

let test_access_transform () =
  let acc =
    Affine.Access.make
      (Matrix.of_rows [ Vec.of_list [ 1; 0 ]; Vec.of_list [ 0; 2 ] ])
      (Vec.of_list [ 0; 1 ])
  in
  Alcotest.(check (list int)) "apply" [ 1; 5 ]
    (Vec.to_list (Affine.Access.apply acc (Vec.of_list [ 1; 2 ])));
  let u = Matrix.of_rows [ Vec.of_list [ 0; 1 ]; Vec.of_list [ 1; 0 ] ] in
  let acc' = Affine.Access.transform u acc in
  (* the transformed reference touches the permuted element *)
  Alcotest.(check (list int)) "transformed apply" [ 5; 1 ]
    (Vec.to_list (Affine.Access.apply acc' (Vec.of_list [ 1; 2 ])))

let suite =
  [
    ( "misc",
      [
        Alcotest.test_case "printers" `Quick test_pp_smoke;
        Alcotest.test_case "cluster pp" `Quick test_cluster_pp;
        Alcotest.test_case "layout pp" `Quick test_layout_pp;
        Alcotest.test_case "report pp" `Quick test_report_pp;
        Alcotest.test_case "config pp" `Quick test_config_pp;
        Alcotest.test_case "platform map" `Quick test_platform_map;
        Alcotest.test_case "platform heat" `Quick test_platform_heat;
        Alcotest.test_case "parse_file" `Quick test_parse_file;
        Alcotest.test_case "parse_file missing" `Quick test_parse_file_missing;
        Alcotest.test_case "codegen emit" `Quick test_codegen_emit;
        Alcotest.test_case "argument validation" `Quick test_validation;
        Alcotest.test_case "access transform" `Quick test_access_transform;
      ] );
  ]
