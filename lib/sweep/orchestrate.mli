(** Top-level sweep orchestration: cache lookup → process pool → merged
    report.  This is what `bin/sweep run` (and the test suite) drive.

    Resume is the default: a job whose result is already in the cache is
    recorded as [Cached] and never re-executed, so re-invoking a sweep
    after an interrupt, crash or config edit only runs the missing jobs.
    Failed jobs degrade gracefully — they are recorded in the manifest
    with their reason and the rest of the sweep completes. *)

type report = {
  manifest : Manifest.t;
  ran : int;  (** jobs actually executed by this invocation *)
  merged : Obs.Json.t option;
      (** the aggregate document (also written to [DIR/merged.json]);
          [None] when no job has a usable result *)
}

val run_sweep :
  ?workers:int ->
  ?timeout_s:float ->
  ?retries:int ->
  ?backoff_s:float ->
  ?force:bool ->
  ?inject_fail:string ->
  ?domains:int ->
  ?log:(string -> unit) ->
  ?progress:Obs.Progress.sink ->
  out:string ->
  Spec.t ->
  report
(** [workers] defaults to 4; [<= 0] runs jobs in-process sequentially
    (the reference mode).  [timeout_s]/[retries] default to the spec's
    values.  [force] ignores (and overwrites) cached results.
    [inject_fail] is a testing knob: any job whose id contains the
    substring crashes its worker ([exit 1]), exercising the retry and
    degradation paths end to end.  [domains] (default the spec's) is
    handed to {!Exec.run_job} for every executed job; cached results
    remain valid because the engine output is byte-identical across
    domain counts.  [log] receives one progress line per
    job resolution.  [progress] (default {!Obs.Progress.null}) receives
    the live NDJSON event stream — [sweep_start], [job_start],
    [job_retry], [job_finish] (with wall time, ETA and the job's
    measured-time snapshot) and a final [sweep_done] — which
    [sweep status --follow] tails.  The manifest is rewritten atomically
    after every resolution, so a concurrent `sweep status` (or a
    post-mortem after `kill -9`) sees a consistent ledger. *)

val merge_results : out:string -> Manifest.t -> (Obs.Json.t, string) result
(** Re-derives the aggregate document from a directory's manifest and
    cache: per-job measured times plus the merge (via
    {!Obs.Metrics.merge}) of every completed job's metrics registry, in
    spec order — so the merged registry is identical whatever the worker
    count or completion order. *)

val write_merged : out:string -> Obs.Json.t -> string
(** Writes [DIR/merged.json] atomically; returns the path. *)
