(* Unit and property tests for the affine (integer linear algebra)
   substrate: vectors, matrices, elimination, unimodular completion,
   hyperplanes and spaces. *)

module Vec = Affine.Vec
module Matrix = Affine.Matrix
module Gauss = Affine.Gauss
module Unimodular = Affine.Unimodular
module Smith = Affine.Smith
module Hyperplane = Affine.Hyperplane
module Space = Affine.Space

let vec = Alcotest.testable (Fmt.of_to_string Vec.to_string) Vec.equal

let matrix = Alcotest.testable (Fmt.of_to_string Matrix.to_string) Matrix.equal

(* --- generators --- *)

let small_int = QCheck.Gen.int_range (-9) 9

let gen_vec n = QCheck.Gen.array_size (QCheck.Gen.return n) small_int

let gen_matrix rows cols =
  QCheck.Gen.(array_size (return rows) (gen_vec cols))

let arb_square n =
  QCheck.make
    ~print:(fun m -> Matrix.to_string m)
    (gen_matrix n n)

(* --- Vec --- *)

let test_vec_basics () =
  Alcotest.(check int) "dim" 3 (Vec.dim (Vec.of_list [ 1; 2; 3 ]));
  Alcotest.check vec "add" (Vec.of_list [ 4; 6 ])
    (Vec.add (Vec.of_list [ 1; 2 ]) (Vec.of_list [ 3; 4 ]));
  Alcotest.check vec "sub" (Vec.of_list [ -2; -2 ])
    (Vec.sub (Vec.of_list [ 1; 2 ]) (Vec.of_list [ 3; 4 ]));
  Alcotest.(check int) "dot" 11 (Vec.dot (Vec.of_list [ 1; 2 ]) (Vec.of_list [ 3; 4 ]));
  Alcotest.check vec "unit" (Vec.of_list [ 0; 1; 0 ]) (Vec.unit 3 1);
  Alcotest.(check bool) "zero is_zero" true (Vec.is_zero (Vec.zero 4));
  Alcotest.(check int) "gcd" 6 (Vec.gcd 12 18);
  Alcotest.(check int) "gcd negative" 6 (Vec.gcd (-12) 18);
  Alcotest.(check int) "gcd zero" 5 (Vec.gcd 0 5);
  Alcotest.(check int) "content" 4 (Vec.content (Vec.of_list [ 8; -12; 4 ]))

let test_vec_primitive () =
  Alcotest.check vec "primitive divides by content" (Vec.of_list [ 2; -3; 1 ])
    (Vec.primitive (Vec.of_list [ 8; -12; 4 ]));
  Alcotest.check vec "primitive normalizes sign" (Vec.of_list [ 2; -3 ])
    (Vec.primitive (Vec.of_list [ -4; 6 ]));
  Alcotest.check vec "primitive of zero" (Vec.zero 3) (Vec.primitive (Vec.zero 3))

let prop_primitive_content =
  QCheck.Test.make ~name:"primitive has content 1 (or is zero)" ~count:200
    (QCheck.make (gen_vec 4))
    (fun v ->
      let p = Vec.primitive v in
      if Vec.is_zero v then Vec.is_zero p else Vec.content p = 1)

(* --- Matrix --- *)

let test_matrix_mul () =
  let a = Matrix.of_rows [ Vec.of_list [ 1; 2 ]; Vec.of_list [ 3; 4 ] ] in
  let b = Matrix.of_rows [ Vec.of_list [ 0; 1 ]; Vec.of_list [ 1; 0 ] ] in
  Alcotest.check matrix "a*b swaps columns"
    (Matrix.of_rows [ Vec.of_list [ 2; 1 ]; Vec.of_list [ 4; 3 ] ])
    (Matrix.mul a b);
  Alcotest.check vec "mul_vec" (Vec.of_list [ 5; 11 ])
    (Matrix.mul_vec a (Vec.of_list [ 1; 2 ]))

let test_matrix_det () =
  Alcotest.(check int) "identity" 1 (Matrix.det (Matrix.identity 4));
  Alcotest.(check int) "2x2" (-2)
    (Matrix.det (Matrix.of_rows [ Vec.of_list [ 1; 2 ]; Vec.of_list [ 3; 4 ] ]));
  Alcotest.(check int) "singular" 0
    (Matrix.det (Matrix.of_rows [ Vec.of_list [ 1; 2 ]; Vec.of_list [ 2; 4 ] ]));
  Alcotest.(check int) "3x3" 1
    (Matrix.det
       (Matrix.of_rows
          [ Vec.of_list [ 1; 0; 0 ]; Vec.of_list [ 5; 1; 0 ]; Vec.of_list [ 7; 3; 1 ] ]))

let prop_det_transpose =
  QCheck.Test.make ~name:"det(m) = det(transpose m)" ~count:200 (arb_square 3)
    (fun m -> Matrix.det m = Matrix.det (Matrix.transpose m))

let prop_det_product =
  QCheck.Test.make ~name:"det(a·b) = det(a)·det(b)" ~count:200
    (QCheck.pair (arb_square 3) (arb_square 3))
    (fun (a, b) -> Matrix.det (Matrix.mul a b) = Matrix.det a * Matrix.det b)

let test_matrix_inverse () =
  let u = Matrix.of_rows [ Vec.of_list [ 0; 1 ]; Vec.of_list [ 1; 0 ] ] in
  Alcotest.check matrix "inverse of swap is swap" u (Matrix.inverse u);
  let u = Matrix.of_rows [ Vec.of_list [ 1; 3 ]; Vec.of_list [ 0; 1 ] ] in
  Alcotest.check matrix "u·u⁻¹ = I" (Matrix.identity 2)
    (Matrix.mul u (Matrix.inverse u));
  Alcotest.check_raises "non-unimodular rejected"
    (Invalid_argument "Matrix.inverse: not unimodular") (fun () ->
      ignore (Matrix.inverse (Matrix.of_rows [ Vec.of_list [ 2; 0 ]; Vec.of_list [ 0; 1 ] ])))

let test_drop_col () =
  let a = Matrix.of_rows [ Vec.of_list [ 1; 2; 3 ]; Vec.of_list [ 4; 5; 6 ] ] in
  Alcotest.check matrix "drop middle column"
    (Matrix.of_rows [ Vec.of_list [ 1; 3 ]; Vec.of_list [ 4; 6 ] ])
    (Matrix.drop_col a 1)

(* --- Gauss --- *)

let test_column_echelon () =
  let m = Matrix.of_rows [ Vec.of_list [ 2; 4; 4 ] ] in
  let h, c, rank = Gauss.column_echelon m in
  Alcotest.(check int) "rank" 1 rank;
  Alcotest.(check bool) "c unimodular" true (Matrix.is_unimodular c);
  Alcotest.check matrix "m·c = h" h (Matrix.mul m c);
  Alcotest.(check int) "pivot is gcd" 2 h.(0).(0)

let test_nullspace () =
  (* kernel of (1, 1): spanned by (1, -1) *)
  let m = Matrix.of_rows [ Vec.of_list [ 1; 1 ] ] in
  (match Gauss.nullspace m with
  | [ v ] ->
    Alcotest.(check int) "kernel vector orthogonal" 0 (Vec.dot (Vec.of_list [ 1; 1 ]) v)
  | l -> Alcotest.failf "expected 1 basis vector, got %d" (List.length l));
  (* full-rank: trivial kernel *)
  Alcotest.(check int) "full rank kernel empty" 0
    (List.length (Gauss.nullspace (Matrix.identity 3)))

let prop_nullspace_orthogonal =
  QCheck.Test.make ~name:"nullspace vectors satisfy m·x = 0" ~count:300
    (QCheck.make ~print:Matrix.to_string (gen_matrix 2 4))
    (fun m ->
      List.for_all (fun x -> Vec.is_zero (Matrix.mul_vec m x)) (Gauss.nullspace m))

let prop_nullspace_dimension =
  QCheck.Test.make ~name:"rank + kernel dimension = columns" ~count:300
    (QCheck.make ~print:Matrix.to_string (gen_matrix 3 4))
    (fun m ->
      let _, _, rank = Gauss.column_echelon m in
      rank + List.length (Gauss.nullspace m) = Matrix.cols m)

let test_kernel_vector_prefers_units () =
  (* kernel of (1, 0): (0, 1) is in the kernel; prefer the unit vector *)
  let m = Matrix.of_rows [ Vec.of_list [ 1; 0 ] ] in
  match Gauss.kernel_vector m with
  | Some v -> Alcotest.check vec "unit solution" (Vec.of_list [ 0; 1 ]) v
  | None -> Alcotest.fail "expected a kernel vector"

(* --- Unimodular --- *)

let test_complete_row_identity () =
  let u = Unimodular.complete_row (Vec.of_list [ 1; 0 ]) ~v:0 in
  Alcotest.check matrix "e0 at row 0 is identity" (Matrix.identity 2) u

let test_complete_row_fig9 () =
  (* the paper's example: g = (0,1), v = 0 gives the antidiagonal U *)
  let u = Unimodular.complete_row (Vec.of_list [ 0; 1 ]) ~v:0 in
  Alcotest.check matrix "antidiagonal"
    (Matrix.of_rows [ Vec.of_list [ 0; 1 ]; Vec.of_list [ 1; 0 ] ])
    u

let prop_complete_row =
  let arb =
    QCheck.make
      ~print:(fun (v, i) -> Printf.sprintf "%s @ %d" (Vec.to_string v) i)
      QCheck.Gen.(
        pair (gen_vec 4) (int_range 0 3) >|= fun (v, i) -> (Vec.primitive v, i))
  in
  QCheck.Test.make ~name:"complete_row: unimodular with g at row v" ~count:300 arb
    (fun (g, v) ->
      QCheck.assume (not (Vec.is_zero g));
      let u = Unimodular.complete_row g ~v in
      Matrix.is_unimodular u && Vec.equal (Matrix.row u v) g)

let test_hnf () =
  let m = Matrix.of_rows [ Vec.of_list [ 2; 1 ]; Vec.of_list [ 0; 3 ] ] in
  let h = Unimodular.hermite_normal_form m in
  Alcotest.(check bool) "lower triangular" true (h.(0).(1) = 0);
  Alcotest.(check bool) "positive diagonal" true (h.(0).(0) > 0 && h.(1).(1) > 0);
  Alcotest.(check int) "|det| preserved" (abs (Matrix.det m)) (abs (Matrix.det h))

(* --- Smith normal form --- *)

let is_snf s =
  let nr = Matrix.rows s and nc = Matrix.cols s in
  let n = min nr nc in
  let diag_ok = ref true in
  for i = 0 to nr - 1 do
    for j = 0 to nc - 1 do
      if i <> j && s.(i).(j) <> 0 then diag_ok := false
    done
  done;
  let chain_ok = ref true in
  for k = 0 to n - 2 do
    let a = s.(k).(k) and b = s.(k + 1).(k + 1) in
    if a < 0 || b < 0 then chain_ok := false;
    if a = 0 && b <> 0 then chain_ok := false;
    if a <> 0 && b mod a <> 0 then chain_ok := false
  done;
  !diag_ok && !chain_ok

let test_smith_known () =
  (* classic example: diag(2, 6) has invariant factors 2, 6... and
     [[2,4],[6,8]]: det = -8, gcd of entries 2 -> factors (2, 4) *)
  let m = Matrix.of_rows [ Vec.of_list [ 2; 4 ]; Vec.of_list [ 6; 8 ] ] in
  Alcotest.(check (list int)) "invariant factors" [ 2; 4 ] (Smith.diagonal m);
  Alcotest.(check int) "rank" 2 (Smith.rank m);
  let singular = Matrix.of_rows [ Vec.of_list [ 1; 2 ]; Vec.of_list [ 2; 4 ] ] in
  Alcotest.(check int) "rank of singular" 1 (Smith.rank singular)

let prop_smith_decomposition =
  QCheck.Test.make ~name:"u·m·v = s, u/v unimodular, s in SNF" ~count:200
    (QCheck.make ~print:Matrix.to_string (gen_matrix 3 4))
    (fun m ->
      let u, s, v = Smith.decompose m in
      Matrix.is_unimodular u && Matrix.is_unimodular v
      && Matrix.equal (Matrix.mul (Matrix.mul u m) v) s
      && is_snf s)

let prop_smith_rank_matches_gauss =
  QCheck.Test.make ~name:"Smith rank = column-echelon rank" ~count:200
    (QCheck.make ~print:Matrix.to_string (gen_matrix 3 3))
    (fun m ->
      let _, _, r = Gauss.column_echelon m in
      Smith.rank m = r)

(* --- Hyperplane --- *)

let test_hyperplane () =
  let h = Hyperplane.orthogonal_to_dim ~dim:1 ~rank:3 ~offset:5 in
  Alcotest.(check bool) "contains" true (Hyperplane.contains h (Vec.of_list [ 9; 5; 2 ]));
  Alcotest.(check bool) "not contains" false
    (Hyperplane.contains h (Vec.of_list [ 9; 4; 2 ]));
  let h2 = Hyperplane.make (Vec.of_list [ 0; 2; 0 ]) 4 in
  Alcotest.(check bool) "same family up to scale" true (Hyperplane.same_family h h2)

(* --- Space --- *)

let test_space_basics () =
  let s = Space.of_extents [ 3; 4 ] in
  Alcotest.(check int) "size" 12 (Space.size s);
  Alcotest.(check int) "extent" 4 (Space.extent s 1);
  Alcotest.(check bool) "mem" true (Space.mem s (Vec.of_list [ 2; 3 ]));
  Alcotest.(check bool) "not mem" false (Space.mem s (Vec.of_list [ 3; 0 ]));
  let count = ref 0 in
  Space.iter (fun _ -> incr count) s;
  Alcotest.(check int) "iter visits all" 12 !count

let test_space_chunks () =
  let s = Space.of_extents [ 10 ] in
  (* 10 over 4 chunks: 3,3,2,2 *)
  let sizes =
    List.init 4 (fun i -> Space.size (Space.chunk s ~dim:0 ~chunks:4 ~index:i))
  in
  Alcotest.(check (list int)) "chunk sizes" [ 3; 3; 2; 2 ] sizes

let prop_chunk_partition =
  let arb =
    QCheck.make
      ~print:(fun (n, c) -> Printf.sprintf "n=%d chunks=%d" n c)
      QCheck.Gen.(pair (int_range 1 50) (int_range 1 10))
  in
  QCheck.Test.make ~name:"chunks partition the space, inverse consistent" ~count:300
    arb
    (fun (n, chunks) ->
      let s = Space.of_extents [ n ] in
      let total =
        List.fold_left ( + ) 0
          (List.init chunks (fun i -> Space.size (Space.chunk s ~dim:0 ~chunks ~index:i)))
      in
      total = n
      && List.for_all
           (fun x ->
             let c = Space.chunk_of_point s ~dim:0 ~chunks x in
             let sub = Space.chunk s ~dim:0 ~chunks ~index:c in
             Space.mem sub (Vec.of_list [ x ]))
           (List.init n Fun.id))

let qsuite = List.map QCheck_alcotest.to_alcotest

let suite =
  [
    ( "affine.vec",
      [
        Alcotest.test_case "basics" `Quick test_vec_basics;
        Alcotest.test_case "primitive" `Quick test_vec_primitive;
      ]
      @ qsuite [ prop_primitive_content ] );
    ( "affine.matrix",
      [
        Alcotest.test_case "mul" `Quick test_matrix_mul;
        Alcotest.test_case "det" `Quick test_matrix_det;
        Alcotest.test_case "inverse" `Quick test_matrix_inverse;
        Alcotest.test_case "drop_col" `Quick test_drop_col;
      ]
      @ qsuite [ prop_det_transpose; prop_det_product ] );
    ( "affine.gauss",
      [
        Alcotest.test_case "column echelon" `Quick test_column_echelon;
        Alcotest.test_case "nullspace" `Quick test_nullspace;
        Alcotest.test_case "kernel prefers units" `Quick test_kernel_vector_prefers_units;
      ]
      @ qsuite [ prop_nullspace_orthogonal; prop_nullspace_dimension ] );
    ( "affine.unimodular",
      [
        Alcotest.test_case "complete e0" `Quick test_complete_row_identity;
        Alcotest.test_case "complete Fig9" `Quick test_complete_row_fig9;
        Alcotest.test_case "hermite normal form" `Quick test_hnf;
      ]
      @ qsuite [ prop_complete_row ] );
    ( "affine.smith",
      [ Alcotest.test_case "known factors" `Quick test_smith_known ]
      @ qsuite [ prop_smith_decomposition; prop_smith_rank_matches_gauss ] );
    ( "affine.spaces",
      [
        Alcotest.test_case "hyperplane" `Quick test_hyperplane;
        Alcotest.test_case "space basics" `Quick test_space_basics;
        Alcotest.test_case "space chunks" `Quick test_space_chunks;
      ]
      @ qsuite [ prop_chunk_partition ] );
  ]
