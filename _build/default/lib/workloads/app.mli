(** Workload models.

    Each of the paper's 13 applications (SPEC OMP minus equake, plus
    three Mantevo mini-apps) is modeled by the mini-language kernel of
    its dominant parallel loop nests, scaled down to match the scaled
    simulator caches, with per-app characteristics chosen to match what
    the paper reports: which apps share data heavily, which stress the
    bank queues, which are friendly to first-touch placement, and which
    access data through index arrays. *)

type t = {
  name : string;
  description : string;
  source : string;  (** mini-language text *)
  index_contents : (string * (int array -> int)) list;
      (** contents of each [index] array, as a function of the index
          vector *)
  first_touch_friendly : bool;
      (** documentation: does the first-touch policy place this app's
          pages well? (wupwise, gafort, minimd per Section 6.3) *)
  warmup_nests : int;
      (** leading initialization nests, excluded from measurement *)
}

val make :
  name:string ->
  description:string ->
  ?index:(string * (int array -> int)) list ->
  ?first_touch_friendly:bool ->
  ?warmup_nests:int ->
  string ->
  t

val program : t -> Lang.Ast.program
(** Parses the source (raises on malformed kernels — exercised by the
    test suite for every app). *)

val index_lookup : t -> string -> int array -> int
(** Contents of an index array element; raises [Not_found] for arrays
    without registered contents. *)
