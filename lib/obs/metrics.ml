type counter = { c_name : string; mutable c_value : int }

type gauge = { g_name : string; mutable g_value : float }

type buckets = Log2 | Linear of { width : int; buckets : int }

let max_log2_buckets = 63

type histogram = {
  h_name : string;
  h_kind : buckets;
  h_counts : int array;
  mutable h_sum : int;
  mutable h_total : int;
}

type metric = Counter of counter | Gauge of gauge | Histogram of histogram

type registry = { tbl : (string, metric) Hashtbl.t }

type hist_snapshot = {
  kind : buckets;
  counts : int array;
  sum : int;
  total : int;
}

type snapshot = {
  counters : (string * int) list;
  gauges : (string * float) list;
  histograms : (string * hist_snapshot) list;
}

let create () = { tbl = Hashtbl.create 32 }

let counter reg name =
  match Hashtbl.find_opt reg.tbl name with
  | Some (Counter c) -> c
  | Some _ -> invalid_arg ("Metrics.counter: " ^ name ^ " is not a counter")
  | None ->
    let c = { c_name = name; c_value = 0 } in
    Hashtbl.replace reg.tbl name (Counter c);
    c

let gauge reg name =
  match Hashtbl.find_opt reg.tbl name with
  | Some (Gauge g) -> g
  | Some _ -> invalid_arg ("Metrics.gauge: " ^ name ^ " is not a gauge")
  | None ->
    let g = { g_name = name; g_value = 0. } in
    Hashtbl.replace reg.tbl name (Gauge g);
    g

let num_buckets = function
  | Log2 -> max_log2_buckets
  | Linear { buckets; _ } ->
    if buckets <= 0 then invalid_arg "Metrics: Linear needs buckets > 0";
    buckets

let histogram reg ~buckets name =
  match buckets with
  | Linear { width; _ } when width <= 0 ->
    Error "Metrics: Linear needs width > 0"
  | Linear { buckets = b; _ } when b <= 0 ->
    Error "Metrics: Linear needs buckets > 0"
  | _ -> (
    match Hashtbl.find_opt reg.tbl name with
    | Some (Histogram h) ->
      if h.h_kind <> buckets then
        Error
          ("Metrics.histogram: " ^ name ^ " re-registered with different buckets")
      else Ok h
    | Some _ -> Error ("Metrics.histogram: " ^ name ^ " is not a histogram")
    | None ->
      let h =
        {
          h_name = name;
          h_kind = buckets;
          h_counts = Array.make (num_buckets buckets) 0;
          h_sum = 0;
          h_total = 0;
        }
      in
      Hashtbl.replace reg.tbl name (Histogram h);
      Ok h)

let incr c = c.c_value <- c.c_value + 1

let add c n = c.c_value <- c.c_value + n

let value c = c.c_value

let set g v = g.g_value <- v

let set_max g v = if v > g.g_value then g.g_value <- v

let gauge_value g = g.g_value

(* floor(log2 v) in O(1) via the number of leading zeros *)
let log2_floor v =
  let rec go v acc = if v <= 1 then acc else go (v lsr 1) (acc + 1) in
  go v 0

let bucket_index kind v =
  let v = max 0 v in
  match kind with
  | Log2 -> if v = 0 then 0 else min (max_log2_buckets - 1) (log2_floor v + 1)
  | Linear { width; buckets } -> min (buckets - 1) (v / width)

let bucket_bounds kind i =
  match kind with
  | Log2 ->
    (* bucket 0 = {0}; bucket i>=1 = [2^(i-1), 2^i); the last bucket is
       open-ended (its lower bound still fits: 2^61 <= max_int) *)
    if i = 0 then (0, 1)
    else if i >= max_log2_buckets - 1 then (1 lsl (max_log2_buckets - 2), max_int)
    else (1 lsl (i - 1), 1 lsl i)
  | Linear { width; buckets } ->
    if i >= buckets - 1 then ((buckets - 1) * width, max_int)
    else (i * width, (i + 1) * width)

let observe h v =
  let v = max 0 v in
  let i = bucket_index h.h_kind v in
  h.h_counts.(i) <- h.h_counts.(i) + 1;
  h.h_sum <- h.h_sum + v;
  h.h_total <- h.h_total + 1

let hist_count h = h.h_total

let hist_sum h = h.h_sum

let snapshot reg =
  let cs = ref [] and gs = ref [] and hs = ref [] in
  Hashtbl.iter
    (fun name -> function
      | Counter c -> cs := (name, c.c_value) :: !cs
      | Gauge g -> gs := (name, g.g_value) :: !gs
      | Histogram h ->
        hs :=
          ( name,
            {
              kind = h.h_kind;
              counts = Array.copy h.h_counts;
              sum = h.h_sum;
              total = h.h_total;
            } )
          :: !hs)
    reg.tbl;
  let by_name (a, _) (b, _) = String.compare a b in
  {
    counters = List.sort by_name !cs;
    gauges = List.sort by_name !gs;
    histograms = List.sort by_name !hs;
  }

(* merge two sorted assoc lists, combining values under equal keys *)
let rec merge_assoc combine a b =
  match (a, b) with
  | [], rest | rest, [] -> rest
  | (ka, va) :: ta, (kb, vb) :: tb ->
    let c = String.compare ka kb in
    if c = 0 then (ka, combine ka va vb) :: merge_assoc combine ta tb
    else if c < 0 then (ka, va) :: merge_assoc combine ta b
    else (kb, vb) :: merge_assoc combine a tb

let merge_hist name a b =
  if a.kind <> b.kind then
    invalid_arg ("Metrics.merge: histogram " ^ name ^ " has incompatible buckets");
  {
    kind = a.kind;
    counts = Array.mapi (fun i v -> v + b.counts.(i)) a.counts;
    sum = a.sum + b.sum;
    total = a.total + b.total;
  }

let merge a b =
  {
    counters = merge_assoc (fun _ x y -> x + y) a.counters b.counters;
    gauges = merge_assoc (fun _ x y -> Float.max x y) a.gauges b.gauges;
    histograms = merge_assoc merge_hist a.histograms b.histograms;
  }

let merge_into ~into src =
  Hashtbl.iter
    (fun name -> function
      | Counter c -> add (counter into name) c.c_value
      | Gauge g -> set_max (gauge into name) g.g_value
      | Histogram h -> (
        (* merge_into keeps its documented raise: a bucketing conflict
           between two live registries is a programming error, not an
           input error *)
        match histogram into ~buckets:h.h_kind name with
        | Error e -> invalid_arg e
        | Ok dst ->
          Array.iteri
            (fun i v -> dst.h_counts.(i) <- dst.h_counts.(i) + v)
            h.h_counts;
          dst.h_sum <- dst.h_sum + h.h_sum;
          dst.h_total <- dst.h_total + h.h_total))
    src.tbl

let hist_to_json (h : hist_snapshot) =
  (* trim trailing empty buckets so the export stays compact *)
  let last = ref (-1) in
  Array.iteri (fun i v -> if v > 0 then last := i) h.counts;
  let counts = Array.sub h.counts 0 (!last + 1) in
  Json.obj
    [
      ( "kind",
        match h.kind with
        | Log2 -> Json.String "log2"
        | Linear { width; buckets } ->
          Json.Obj [ ("linear_width", Json.Int width); ("buckets", Json.Int buckets) ]
      );
      ("counts", Json.int_array counts);
      ("sum", Json.Int h.sum);
      ("total", Json.Int h.total);
    ]

let to_json (s : snapshot) =
  Json.obj
    [
      ("counters", Json.Obj (List.map (fun (k, v) -> (k, Json.Int v)) s.counters));
      ("gauges", Json.Obj (List.map (fun (k, v) -> (k, Json.Float v)) s.gauges));
      ( "histograms",
        Json.Obj (List.map (fun (k, h) -> (k, hist_to_json h)) s.histograms) );
    ]

(* --- decoding (the sweep aggregator re-reads per-job stats files) --- *)

let ( let* ) = Result.bind

let rec map_result f = function
  | [] -> Ok []
  | x :: tl ->
    let* y = f x in
    let* ys = map_result f tl in
    Ok (y :: ys)

let fields_of ctx = function
  | Json.Obj fields -> Ok fields
  | _ -> Error ("Metrics.snapshot_of_json: " ^ ctx ^ " is not an object")

let int_of ctx = function
  | Json.Int i -> Ok i
  | _ -> Error ("Metrics.snapshot_of_json: " ^ ctx ^ " is not an integer")

let float_of ctx = function
  | Json.Float f -> Ok f
  | Json.Int i -> Ok (float_of_int i)
  | _ -> Error ("Metrics.snapshot_of_json: " ^ ctx ^ " is not a number")

let hist_of_json name j =
  let* fields = fields_of ("histogram " ^ name) j in
  let get k =
    match List.assoc_opt k fields with
    | Some v -> Ok v
    | None -> Error ("Metrics.snapshot_of_json: histogram " ^ name ^ " lacks " ^ k)
  in
  let* kind =
    let* k = get "kind" in
    match k with
    | Json.String "log2" -> Ok Log2
    | Json.Obj kf -> (
      match (List.assoc_opt "linear_width" kf, List.assoc_opt "buckets" kf) with
      | Some (Json.Int width), Some (Json.Int buckets) when width > 0 && buckets > 0
        -> Ok (Linear { width; buckets })
      | _ -> Error ("Metrics.snapshot_of_json: bad linear kind in " ^ name))
    | _ -> Error ("Metrics.snapshot_of_json: bad kind in " ^ name)
  in
  let* counts =
    let* c = get "counts" in
    match c with
    | Json.List l -> map_result (int_of ("count of " ^ name)) l
    | _ -> Error ("Metrics.snapshot_of_json: counts of " ^ name ^ " is not a list")
  in
  let n = num_buckets kind in
  if List.length counts > n then
    Error ("Metrics.snapshot_of_json: " ^ name ^ " has more counts than buckets")
  else begin
    (* the encoder trims trailing empty buckets; restore the full width *)
    let full = Array.make n 0 in
    List.iteri (fun i v -> full.(i) <- v) counts;
    let* sum = Result.bind (get "sum") (int_of ("sum of " ^ name)) in
    let* total = Result.bind (get "total") (int_of ("total of " ^ name)) in
    Ok { kind; counts = full; sum; total }
  end

let snapshot_of_json j =
  let* fields = fields_of "snapshot" j in
  let section k decode =
    match List.assoc_opt k fields with
    | None -> Ok []
    | Some (Json.Obj entries) ->
      map_result (fun (name, v) -> Result.map (fun d -> (name, d)) (decode name v)) entries
    | Some _ -> Error ("Metrics.snapshot_of_json: " ^ k ^ " is not an object")
  in
  let by_name (a, _) (b, _) = String.compare a b in
  let* counters = section "counters" (fun name v -> int_of ("counter " ^ name) v) in
  let* gauges = section "gauges" (fun name v -> float_of ("gauge " ^ name) v) in
  let* histograms = section "histograms" hist_of_json in
  Ok
    {
      counters = List.sort by_name counters;
      gauges = List.sort by_name gauges;
      histograms = List.sort by_name histograms;
    }
