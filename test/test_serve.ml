(* Tests for the consolidation server: solo equivalence, determinism,
   per-tenant accounting, policy comparison and the committed two-seed
   goldens. *)

module Scenario = Serve.Scenario
module Server = Serve.Server

let read_file path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

let run_exn sc =
  match Server.run sc with
  | Ok r -> r
  | Error e -> Alcotest.failf "serve failed: %s" e

(* The smoke runs are shared across several tests; memoize them. *)
let smoke_run = lazy (run_exn (Scenario.smoke ()))

let smoke_interleaved =
  lazy (run_exn (Scenario.smoke ~policy:Scenario.Interleaved ()))

let one_tenant app seed =
  {
    (Scenario.smoke ~seed ()) with
    Scenario.mix = [ app ];
    tenants = 1;
    name = "solo-" ^ app;
  }

(* A 1-tenant, zero-churn serve run is exactly a solo Sim.Runner run:
   same placement, same jitter, byte-identical steady-state stats. *)
let solo_stats_json sc =
  let cfg =
    match Scenario.config sc with
    | Ok c -> c
    | Error e -> Alcotest.failf "config: %s" e
  in
  let app = Workloads.Suite.by_name (List.hd sc.Scenario.mix) in
  let program = Workloads.App.program app in
  let analysis = Lang.Analysis.analyze program in
  let index_lookup = Workloads.App.index_lookup app in
  let profile a = Workloads.Profile.for_transform app analysis a in
  let p =
    Sim.Runner.prepare cfg ~optimized:true ~threads:sc.Scenario.threads_per_tenant
      ~warmup_phases:app.Workloads.App.warmup_nests ~index_lookup ~profile
      program
  in
  let r =
    Sim.Engine.run cfg ~desired_mc_of_vpage:p.Sim.Runner.desired_mc
      ~jobs:[ p.Sim.Runner.job ] ()
  in
  ( Obs.Json.to_string (Sim.Stats.to_json r.Sim.Engine.stats),
    r.Sim.Engine.measured_time )

let check_solo_equivalence app seed =
  let sc = one_tenant app seed in
  let run = run_exn sc in
  let solo_json, solo_time = solo_stats_json sc in
  Alcotest.(check string)
    (Printf.sprintf "%s seed %d: byte-identical stats" app seed)
    solo_json
    (Obs.Json.to_string (Sim.Stats.to_json run.Server.engine.Sim.Engine.stats));
  Alcotest.(check int) "same measured time" solo_time
    run.Server.engine.Sim.Engine.measured_time;
  match run.Server.tenants with
  | [ t ] ->
    Alcotest.(check int) "arrives at boot" 0 t.Server.arrival;
    Alcotest.(check int) "no queue wait" 0 (Server.queue_wait t);
    Alcotest.(check (float 1e-9)) "slowdown exactly 1" 1. t.Server.slowdown
  | ts -> Alcotest.failf "expected 1 tenant, got %d" (List.length ts)

let test_solo_equivalence_seed0 () = check_solo_equivalence "minimd" 0

let prop_solo_equivalence =
  QCheck.Test.make ~name:"serve(1 tenant) == solo runner, byte for byte"
    ~count:3
    (QCheck.make
       QCheck.Gen.(
         pair (oneofl [ "minimd"; "gafort"; "hpccg" ]) (int_range 1 5)))
    (fun (app, seed) ->
      check_solo_equivalence app seed;
      true)

let test_determinism () =
  (* same scenario, two fresh runs: byte-identical result documents *)
  let doc () = Obs.Json.to_string (Server.result_json (run_exn (Scenario.smoke ()))) in
  Alcotest.(check string) "byte-identical documents" (doc ()) (doc ())

let test_offchip_split () =
  let run = Lazy.force smoke_run in
  let total =
    List.fold_left (fun acc t -> acc + t.Server.offchip) 0 run.Server.tenants
  in
  Alcotest.(check int) "per-tenant off-chip sums to the engine counter"
    (Sim.Stats.offchip_accesses run.Server.engine.Sim.Engine.stats)
    total;
  Alcotest.(check bool) "tenants saw off-chip traffic" true (total > 0)

let test_reclaim_leaves_pool_empty () =
  let run = Lazy.force smoke_run in
  Alcotest.(check int) "all tenant pages reclaimed at the end" 0
    run.Server.engine.Sim.Engine.pages_allocated

let test_admission_chains () =
  let run = Lazy.force smoke_run in
  let by_id = Array.of_list run.Server.tenants in
  Array.iter
    (fun (t : Server.tenant) ->
      Alcotest.(check bool)
        (Printf.sprintf "tenant %d starts at/after arrival" t.Server.id)
        true
        (t.Server.start >= t.Server.arrival);
      Alcotest.(check bool)
        (Printf.sprintf "tenant %d finishes after start" t.Server.id)
        true
        (t.Server.finish > t.Server.start))
    by_id;
  (* 4 tenants on 2 slots: tenants 2 and 3 queue behind 0 and 1 *)
  Alcotest.(check int) "tenant 2 starts when tenant 0 departs"
    by_id.(0).Server.finish by_id.(2).Server.start;
  Alcotest.(check int) "tenant 3 starts when tenant 1 departs"
    by_id.(1).Server.finish by_id.(3).Server.start;
  Alcotest.(check bool) "queued tenants waited" true
    (Server.queue_wait by_id.(2) > 0 && Server.queue_wait by_id.(3) > 0)

let test_policy_comparison () =
  let mc = (Lazy.force smoke_run).Server.qos.Server.weighted_speedup in
  let il = (Lazy.force smoke_interleaved).Server.qos.Server.weighted_speedup in
  Alcotest.(check bool)
    (Printf.sprintf "mc-aware WS (%.3f) beats interleaved (%.3f)" mc il)
    true (mc > il)

let test_fallbacks_under_pressure () =
  (* first-touch concentrates minimd's pages on its own clusters'
     controllers; a 200-frame budget forces 2*(256-200) spills, all
     charged to the only tenant *)
  let sc =
    {
      (Scenario.smoke ()) with
      Scenario.name = "pressure";
      policy = Scenario.First_touch;
      mix = [ "minimd" ];
      tenants = 1;
      frames_per_mc = Some 200;
    }
  in
  let run = run_exn sc in
  let t = List.hd run.Server.tenants in
  Alcotest.(check int) "budget overflow spills are counted" 112
    t.Server.fallbacks;
  Alcotest.(check int) "qos aggregates them" 112
    run.Server.qos.Server.total_fallbacks

let test_progress_events () =
  let path = Filename.temp_file "serve_progress" ".ndjson" in
  let sink =
    match Obs.Progress.file_sink path with
    | Ok s -> s
    | Error e -> Alcotest.failf "sink: %s" e
  in
  let run =
    match Server.run ~progress:sink (Scenario.smoke ()) with
    | Ok r ->
      Obs.Progress.close sink;
      r
    | Error e ->
      Obs.Progress.close sink;
      Alcotest.failf "serve failed: %s" e
  in
  let events =
    match Obs.Progress.read path with
    | Ok evs -> evs
    | Error e -> Alcotest.failf "read: %s" e
  in
  Sys.remove path;
  let n = List.length run.Server.tenants in
  Alcotest.(check int) "three lifecycle events per tenant plus serve_done"
    ((3 * n) + 1)
    (List.length events);
  let kind e =
    match Obs.Json.member "event" e with
    | Some (Obs.Json.String s) -> s
    | _ -> "?"
  in
  Alcotest.(check string) "first event is an arrival" "tenant_arrive"
    (kind (List.hd events));
  Alcotest.(check string) "last event closes the run" "serve_done"
    (kind (List.nth events (3 * n)));
  (* simulated times are non-decreasing across lifecycle events *)
  let times =
    List.filter_map
      (fun e ->
        match Obs.Json.member "time" e with
        | Some (Obs.Json.Int t) -> Some t
        | _ -> None)
      events
  in
  Alcotest.(check bool) "event times sorted" true
    (List.sort compare times = times)

let test_attr_totals () =
  let run =
    match Server.run ~attr:true (Scenario.smoke ()) with
    | Ok r -> r
    | Error e -> Alcotest.failf "serve failed: %s" e
  in
  match run.Server.attr with
  | None -> Alcotest.fail "attr requested but absent"
  | Some a ->
    let snap = Obs.Attr.snapshot a in
    Alcotest.(check int) "cube total equals the off-chip counter"
      (Sim.Stats.offchip_accesses run.Server.engine.Sim.Engine.stats)
      (Obs.Attr.snap_total snap)

let check_golden seed =
  let sc = Scenario.smoke ~seed () in
  let got = Obs.Json.to_string (Server.result_json (run_exn sc)) ^ "\n" in
  let path = Printf.sprintf "golden/serve_seed%d.json" seed in
  Alcotest.(check string)
    (Printf.sprintf "seed %d byte-identical to committed golden" seed)
    (read_file path) got

let test_golden_seed0 () = check_golden 0
let test_golden_seed1 () = check_golden 1

let test_scenario_json_roundtrip () =
  let sc = { (Scenario.smoke ()) with Scenario.duration = Some 123456 } in
  match Scenario.of_json (Scenario.to_json sc) with
  | Ok sc' ->
    Alcotest.(check bool) "roundtrip preserves the scenario" true (sc = sc')
  | Error e -> Alcotest.failf "roundtrip: %s" e

let test_scenario_validation () =
  let bad mix = { (Scenario.smoke ()) with Scenario.mix } in
  (match Scenario.validate (bad []) with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "empty mix accepted");
  (match Scenario.validate (bad [ "nosuchapp" ]) with
  | Error e ->
    Alcotest.(check bool) "names the unknown app" true
      (Astring.String.is_infix ~affix:"nosuchapp" e)
  | Ok _ -> Alcotest.fail "unknown app accepted");
  match Scenario.policy_of_string "round-robin" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "unknown policy accepted"

let qsuite = List.map QCheck_alcotest.to_alcotest

let suite =
  [
    ( "serve.scenario",
      [
        Alcotest.test_case "json roundtrip" `Quick test_scenario_json_roundtrip;
        Alcotest.test_case "validation" `Quick test_scenario_validation;
      ] );
    ( "serve.server",
      [
        Alcotest.test_case "solo equivalence (seed 0)" `Quick
          test_solo_equivalence_seed0;
        Alcotest.test_case "determinism" `Quick test_determinism;
        Alcotest.test_case "off-chip split" `Quick test_offchip_split;
        Alcotest.test_case "reclaim leaves pool empty" `Quick
          test_reclaim_leaves_pool_empty;
        Alcotest.test_case "admission chains" `Quick test_admission_chains;
        Alcotest.test_case "mc-aware beats interleaved" `Quick
          test_policy_comparison;
        Alcotest.test_case "fallbacks under pressure" `Quick
          test_fallbacks_under_pressure;
        Alcotest.test_case "progress events" `Quick test_progress_events;
        Alcotest.test_case "attribution totals" `Quick test_attr_totals;
        Alcotest.test_case "golden seed 0" `Quick test_golden_seed0;
        Alcotest.test_case "golden seed 1" `Quick test_golden_seed1;
      ]
      @ qsuite [ prop_solo_equivalence ] );
  ]
