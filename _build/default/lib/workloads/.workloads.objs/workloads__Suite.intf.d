lib/workloads/suite.mli: App
