module Json = Obs.Json

let result_json ?attr ?(extra = []) ~app cfg (r : Sim.Engine.result) =
  (* the attribution and heatmap sections exist only when the run was
     attributed: a plain run's document must stay byte-identical to the
     pre-attribution format (the seed-0 golden pins this) *)
  let attr_fields =
    match attr with
    | None -> []
    | Some a ->
      let snap = Obs.Attr.snapshot a in
      let node_requests =
        Array.map
          (Array.fold_left ( + ) 0)
          (Sim.Stats.node_mc_requests r.Sim.Engine.stats)
      in
      [
        ("attribution", Obs.Attr.to_json snap);
        ( "heatmaps",
          Json.obj
            [
              ( "link_utilization",
                Json.String
                  (Sim.Platform_map.render_link_heat cfg
                     r.Sim.Engine.link_utilization) );
              ( "bank_pressure",
                Json.String (Obs.Report.bank_heat (Obs.Attr.bank_load snap)) );
              ( "node_requests",
                Json.String (Sim.Platform_map.render_heat cfg node_requests) );
            ] );
      ]
  in
  Json.obj
    ([
       ("app", Json.String app);
       ("config", Sim.Config.to_json cfg);
       ("stats", Sim.Stats.to_json r.Sim.Engine.stats);
       ("measured_time", Json.Int r.Sim.Engine.measured_time);
       ("mc_occupancy", Json.float_array r.Sim.Engine.mc_occupancy);
       ("mc_row_hit_rate", Json.float_array r.Sim.Engine.mc_row_hit_rate);
       ("mc_max_queue", Json.int_array r.Sim.Engine.mc_max_queue);
       ("link_utilization", Json.float_array r.Sim.Engine.link_utilization);
       ("pages_allocated", Json.Int r.Sim.Engine.pages_allocated);
     ]
    @ attr_fields @ extra)

let run_job ?(domains = 1) (job : Spec.job) =
  let app = Workloads.Suite.by_name job.Spec.app in
  let program = Workloads.App.program app in
  let analysis = Lang.Analysis.analyze program in
  let index_lookup = Workloads.App.index_lookup app in
  let cfg = job.Spec.config in
  let r =
    if job.Spec.optimized then
      let profile a = Workloads.Profile.for_transform app analysis a in
      Sim.Runner.run cfg ~optimized:true
        ~warmup_phases:app.Workloads.App.warmup_nests ~index_lookup ~profile
        ~domains program
    else
      Sim.Runner.run cfg ~optimized:false
        ~warmup_phases:app.Workloads.App.warmup_nests ~index_lookup ~domains
        program
  in
  result_json ~app:job.Spec.app cfg r
