lib/workloads/apsi.ml: App
