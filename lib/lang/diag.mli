(** Structured, located compiler diagnostics.

    Every compiler-side failure — lexical, syntactic, semantic, and the
    inter-pass verifier's invariant violations — is a [Diag.t]: a
    severity, a stable error code ([L...] lexical, [P...] parse, [S...]
    semantic, [C...] configuration, [V...] verifier, [G...] codegen), a
    source {!Span.t}, a message and optional secondary notes.  Passes
    return [('a, t list) result]; the caret pretty-printer and JSON
    encoder render the same value for terminals and tooling. *)

type severity = Error | Warning | Note

type note = { note_span : Span.t option; note_text : string }

type t = {
  severity : severity;
  code : string;
  span : Span.t;
  message : string;
  notes : note list;
}

exception Fatal of t
(** Internal carrier used inside [_result] entry points (parser, codegen)
    to abort to the nearest handler; it never escapes the public API. *)

val make :
  ?severity:severity -> ?code:string -> ?notes:note list -> Span.t -> string -> t

val error : ?code:string -> ?notes:note list -> Span.t -> string -> t

val warning : ?code:string -> ?notes:note list -> Span.t -> string -> t

val note : ?span:Span.t -> string -> note

val severity_string : severity -> string

val is_error : t -> bool

val has_errors : t list -> bool

val sorted : t list -> t list
(** Stable sort by file, then start offset, errors before warnings. *)

val pp : ?src:string -> Format.formatter -> t -> unit
(** [file:line:col: severity[code]: message] with a caret line under the
    offending source text when [src] is supplied. *)

val to_string : ?src:string -> t -> string

val to_json : ?src:string -> t -> Obs.Json.t

val list_to_json : ?src:string -> t list -> Obs.Json.t
(** Sorted array of diagnostics — the payload of [occ --diag-json]. *)
