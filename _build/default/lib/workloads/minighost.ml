(** minighost (Mantevo): halo-exchange finite difference — deep 27-point
    style stencils over several variables.  Together with fma3d, the
    highest inter-core sharing and bank-queue utilization; the compiler
    analysis picks mapping M2 for it. *)

let app =
  App.make ~name:"minighost"
    ~description:"halo-exchange stencil: deep halos, memory-bound"
    {|
param N = 320;
array G1[N][N];
array G2[N][N];
array G3[N][N];
// column-parallel sparse init: bad for first-touch
parfor j0 = 0 to N/16-1 {
  for i = 0 to N-1 {
    G1[i][16*j0] = i + j0;
    G2[i][16*j0] = 0;
    G3[i][16*j0] = 0;
  }
}
parfor i = 2 to N-3 {
  for j = 2 to N-3 {
    G2[i][j] = G1[i][j] + G1[i-2][j] + G1[i+2][j] + G1[i][j-2] + G1[i][j+2];
    G3[i][j] = G2[i][j] + G2[i-1][j] + G2[i+1][j] + G1[i][j];
  }
}
// boundary-buffer packing: line-strided stores with no spatial reuse;
// the store buffers keep many fills in flight, producing the sustained
// bank-queue pressure the paper reports for this app
for t0 = 0 to 31 {
  parfor i = 0 to N-1 {
    for j32 = 0 to N/32-1 {
      G3[i][32*j32] = G1[i][32*j32] + t0;
    }
  }
}
|}
