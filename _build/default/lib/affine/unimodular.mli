(** Completion of a primitive row to a unimodular matrix.

    Once the Data-to-Core step has determined the data-partition row
    [gᵥ] (Section 5.2), the layout transformation needs a full unimodular
    matrix [U] whose [v]-th row is [gᵥ]: the remaining rows are free, and
    the paper fills them "such that U is unimodular" (Algorithm 1,
    lines 7–12).  This module performs that completion constructively. *)

val complete_row : Vec.t -> v:int -> Matrix.t
(** [complete_row g ~v] is a unimodular matrix [u] with [row u v = g].
    [g] must be primitive (component gcd 1) and nonzero; raises
    [Invalid_argument] otherwise.  The other rows are chosen so that, when
    [g] is a unit vector, [u] is a pure dimension permutation (the common
    case, producing the cheapest transformed subscripts). *)

val hermite_normal_form : Matrix.t -> Matrix.t
(** Row-style Hermite normal form of a nonsingular square integer matrix
    (lower triangular, positive diagonal, entries below the diagonal
    reduced modulo it), obtained by unimodular column operations.  Used in
    tests and mirrors Algorithm 1's line 11 fallback. *)
