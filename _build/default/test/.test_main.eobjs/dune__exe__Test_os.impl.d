test/test_os.ml: Alcotest Dram List Os_sim Printf QCheck QCheck_alcotest
