(** Access-trace files.

    Serializes the per-thread access streams the interpreter produces so
    they can be inspected, diffed across layouts, or replayed by external
    tools.  The format is line-oriented text:

    {v
    # offchip trace v1
    phase <n-threads>
    t <thread> <n-accesses>
    <vaddr> R|W
    ...
    v}

    [simulate --dump-trace FILE] writes one; {!load} reads it back into
    the exact phases, so a round trip is the identity. *)

val dump : string -> Lang.Interp.phase list -> unit
(** Writes the phases to a path.  Raises [Sys_error] on IO failure. *)

val load : string -> Lang.Interp.phase list
(** Reads a trace file back.  Raises [Failure] on a malformed file. *)

val total_accesses : Lang.Interp.phase list -> int
