(* Shared plumbing for the experiment harness: per-app preparation,
   memoized simulation runs, and formatting helpers.

   Every figure/table of the paper is regenerated from combinations of a
   handful of configurations; runs are memoized on a configuration
   signature so that, e.g., the cache-line-interleaved baseline is
   simulated once and reused by Figs. 15, 16, 17 and 18. *)

module Config = Sim.Config
module Engine = Sim.Engine
module Runner = Sim.Runner
module Stats = Sim.Stats
module App = Workloads.App

type app_ctx = {
  app : App.t;
  program : Lang.Ast.program;
  analysis : Lang.Analysis.t;
  index_lookup : string -> int array -> int;
  profile : string -> (Affine.Vec.t * Affine.Vec.t) list;
}

let app_table : (string, app_ctx) Hashtbl.t = Hashtbl.create 16

let ctx_of (app : App.t) =
  match Hashtbl.find_opt app_table app.App.name with
  | Some c -> c
  | None ->
    let program = App.program app in
    let analysis = Lang.Analysis.analyze program in
    let c =
      {
        app;
        program;
        analysis;
        index_lookup = App.index_lookup app;
        profile = (fun a -> Workloads.Profile.for_transform app analysis a);
      }
    in
    Hashtbl.replace app_table app.App.name c;
    c

(* Restrict the suite via OFFCHIP_APPS="apsi,swim" for quick runs. *)
let apps () =
  match Sys.getenv_opt "OFFCHIP_APPS" with
  | None -> Workloads.Suite.all
  | Some s ->
    let names = String.split_on_char ',' s in
    List.map Workloads.Suite.by_name names

let sig_of_cfg (cfg : Config.t) =
  Printf.sprintf "%dx%d/%s/%s/%s/%s/tpc%d/opt%b/l1:%d/l2:%d/cc%d/lk%d/j%b/ch%d/bk%d/rh%d/sd%d"
    (Config.topo cfg).Noc.Topology.width (Config.topo cfg).Noc.Topology.height
    (Config.cluster cfg).Core.Cluster.name
    (Config.placement cfg).Noc.Placement.name
    (match cfg.Config.l2_org with
    | Config.Private_l2 -> "private"
    | Config.Shared_l2 -> "shared")
    ((match Config.interleaving cfg with
     | Dram.Address_map.Line_interleaved -> "line"
     | Dram.Address_map.Page_interleaved -> "page")
    ^
    match cfg.Config.page_policy with
    | Config.Hardware -> "-hw"
    | Config.First_touch -> "-ft"
    | Config.Mc_aware -> "-mc")
    cfg.Config.threads_per_core cfg.Config.optimal cfg.Config.l1_size
    cfg.Config.l2_size cfg.Config.compute_cycles
    cfg.Config.noc.Noc.Network.link_bytes cfg.Config.jitter
    (Config.channels_per_mc cfg) (Config.banks_per_mc cfg)
    (cfg.Config.timing.Dram.Timing.row_hit
    + (match cfg.Config.mc_scheduler with Dram.Fr_fcfs.Fr_fcfs -> 0 | Dram.Fr_fcfs.Fcfs -> 1000)
    + match cfg.Config.mc_row_policy with
      | Dram.Fr_fcfs.Open_page -> 0
      | Dram.Fr_fcfs.Closed_page -> 2000)
    cfg.Config.seed
  (* hierarchical platforms get a suffix so memoized runs never collide
     with a flat mesh of the same geometry; flat keys are unchanged *)
  ^
  match (Config.topo cfg).Noc.Topology.chiplets with
  | None -> ""
  | Some g ->
    Printf.sprintf "/chip%dx%d:%d:%d" g.Noc.Topology.grid_x
      g.Noc.Topology.grid_y g.Noc.Topology.link_latency
      g.Noc.Topology.link_bytes

let run_table : (string, Engine.result) Hashtbl.t = Hashtbl.create 64

(* Worker domains for every harness run (--domains N).  Not part of the
   memo key: the engine result is byte-identical across domain counts. *)
let domains = ref 1

(* One simulated run, memoized on (config, app, optimized). *)
let run cfg ~optimized (app : App.t) =
  let key = Printf.sprintf "%s|%s|%b" (sig_of_cfg cfg) app.App.name optimized in
  match Hashtbl.find_opt run_table key with
  | Some r -> r
  | None ->
    let c = ctx_of app in
    let r =
      if optimized then
        Runner.run cfg ~optimized:true ~warmup_phases:app.App.warmup_nests
          ~index_lookup:c.index_lookup ~profile:c.profile ~domains:!domains
          c.program
      else
        Runner.run cfg ~optimized:false ~warmup_phases:app.App.warmup_nests
          ~index_lookup:c.index_lookup ~domains:!domains c.program
    in
    Hashtbl.replace run_table key r;
    r

(* --- standard configurations --- *)

let or_fail = function Ok v -> v | Error e -> failwith e

(* --platform PRESET|FILE: every section regenerates on this machine
   instead of the scaled default — a preset name or a platform JSON file
   (e.g. one emitted by occ --mapping search --search-out).  The scaled
   cache/latency parameters are kept; only the machine is swapped. *)
let platform_override : Core.Platform.t option ref = ref None

let set_platform spec =
  match Core.Platform.of_spec spec with
  | Ok p ->
    platform_override := Some p;
    Ok ()
  | Error _ as e -> e

let base () =
  match !platform_override with
  | None -> Config.scaled ()
  | Some p -> Config.with_platform (Config.scaled ()) p

let platform () = Config.platform (base ())

(* Digest of the full platform description (not just its name), recorded
   in --json output so downstream tooling can tell two same-named
   machines apart. *)
let platform_digest () =
  Digest.to_hex
    (Digest.string (Obs.Json.to_string (Core.Platform.to_json (platform ()))))

let line_cfg () = base ()

let page_cfg ?(policy = Config.Hardware) () =
  {
    (Config.with_interleaving (base ()) Dram.Address_map.Page_interleaved) with
    Config.page_policy = policy;
  }

let shared_cfg () = { (base ()) with Config.l2_org = Config.Shared_l2 }

let m2_cfg () =
  let topo = Config.topo (base ()) in
  or_fail
    (Result.bind
       (Core.Cluster.m2 ~width:topo.Noc.Topology.width
          ~height:topo.Noc.Topology.height)
       (Config.with_cluster (base ())))

(* --- metrics --- *)

let pct_reduction orig opt =
  if orig = 0. then 0. else 100. *. (1. -. (opt /. orig))

let exec_improvement (o : Engine.result) (p : Engine.result) =
  pct_reduction (float_of_int o.Engine.measured_time) (float_of_int p.Engine.measured_time)

type four = {
  onchip_net : float;
  offchip_net : float;
  memory : float;
  exec : float;
}

let four_metrics (o : Engine.result) (p : Engine.result) =
  {
    onchip_net =
      pct_reduction (Stats.avg_onchip_net o.Engine.stats) (Stats.avg_onchip_net p.Engine.stats);
    offchip_net =
      pct_reduction (Stats.avg_offchip_net o.Engine.stats)
        (Stats.avg_offchip_net p.Engine.stats);
    memory =
      pct_reduction (Stats.avg_memory o.Engine.stats) (Stats.avg_memory p.Engine.stats);
    exec = exec_improvement o p;
  }

let avg_occupancy (r : Engine.result) =
  let a = r.Engine.mc_occupancy in
  Array.fold_left ( +. ) 0. a /. float_of_int (Array.length a)

(* --- formatting --- *)

(* Optional machine-readable output: OFFCHIP_CSV=path collects every
   (section, label, metric, value) the harness prints, for plotting;
   --json DIR writes the same rows as one JSON document per section. *)
let csv_channel =
  lazy
    (match Sys.getenv_opt "OFFCHIP_CSV" with
    | None -> None
    | Some path ->
      let oc = open_out path in
      output_string oc "section,label,metric,value
";
      at_exit (fun () -> close_out oc);
      Some oc)

let current_section = ref ""

let json_dir : string option ref = ref None

(* rows of the current section, newest first *)
let json_rows : (string * string * float) list ref = ref []

let flush_json_section () =
  (match (!json_dir, !json_rows) with
  | Some dir, _ :: _ ->
    let rows =
      List.rev_map
        (fun (label, metric, value) ->
          Obs.Json.Obj
            [
              ("label", Obs.Json.String label);
              ("metric", Obs.Json.String metric);
              ("value", Obs.Json.Float value);
            ])
        !json_rows
    in
    let doc =
      Obs.Json.Obj
        [
          ("section", Obs.Json.String !current_section);
          ("platform", Obs.Json.String (platform ()).Core.Platform.name);
          ("platform_digest", Obs.Json.String (platform_digest ()));
          ("rows", Obs.Json.List rows);
        ]
    in
    (* "Figure 14" -> fig14.json, "Table 2" -> table2.json: match the
       section keys accepted by --only *)
    let slug =
      let b = Buffer.create 16 in
      String.iter
        (fun c ->
          match Char.lowercase_ascii c with
          | ('a' .. 'z' | '0' .. '9') as c -> Buffer.add_char b c
          | _ -> ())
        !current_section;
      let s = Buffer.contents b in
      if String.length s >= 6 && String.sub s 0 6 = "figure" then
        "fig" ^ String.sub s 6 (String.length s - 6)
      else s
    in
    let path = Filename.concat dir (slug ^ ".json") in
    let oc = open_out path in
    Obs.Json.to_channel oc doc;
    output_char oc '\n';
    close_out oc
  | _ -> ());
  json_rows := []

let set_json_dir dir =
  (try Unix.mkdir dir 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ());
  json_dir := Some dir;
  at_exit flush_json_section

let csv_row label metric value =
  (match Lazy.force csv_channel with
  | None -> ()
  | Some oc ->
    Printf.fprintf oc "%s,%s,%s,%.3f
" !current_section label metric value);
  if !json_dir <> None then json_rows := (label, metric, value) :: !json_rows

let csv_row4 label (f : four) =
  csv_row label "onchip_net" f.onchip_net;
  csv_row label "offchip_net" f.offchip_net;
  csv_row label "memory" f.memory;
  csv_row label "exec" f.exec


let header title paper_ref =
  flush_json_section ();
  current_section := (match String.index_opt title ':' with
    | Some i -> String.sub title 0 i
    | None -> title);
  Printf.printf "\n=== %s ===\n%s\n" title paper_ref

let row4 name (f : four) =
  csv_row4 name f;
  Printf.printf "  %-10s %+8.1f%% %+8.1f%% %+8.1f%% %+8.1f%%\n" name f.onchip_net
    f.offchip_net f.memory f.exec

let row4_header () =
  Printf.printf "  %-10s %9s %9s %9s %9s\n" "" "on-net" "off-net" "memory" "exec"

let avg4 rows =
  let n = float_of_int (List.length rows) in
  {
    onchip_net = List.fold_left (fun a r -> a +. r.onchip_net) 0. rows /. n;
    offchip_net = List.fold_left (fun a r -> a +. r.offchip_net) 0. rows /. n;
    memory = List.fold_left (fun a r -> a +. r.memory) 0. rows /. n;
    exec = List.fold_left (fun a r -> a +. r.exec) 0. rows /. n;
  }

(* Aggregate across apps weighted by message/access counts: per-app
   percentage averages are distorted by apps whose optimized runs have
   almost no traffic left in a category (e.g. galgel's on-chip messages
   drop 60x, so its per-app latency ratio is computed over a tiny,
   bursty population). *)
let aggregate4 (pairs : (Engine.result * Engine.result) list) =
  let sum f = List.fold_left (fun a (o, p) -> (fst a + f o, snd a + f p)) (0, 0) pairs in
  let ratio (num_o, num_p) (den_o, den_p) =
    let avg_o = float_of_int num_o /. float_of_int (max 1 den_o) in
    let avg_p = float_of_int num_p /. float_of_int (max 1 den_p) in
    pct_reduction avg_o avg_p
  in
  let s f = sum (fun r -> f r.Engine.stats) in
  {
    onchip_net = ratio (s Stats.onchip_net_cycles) (s Stats.onchip_messages);
    offchip_net = ratio (s Stats.offchip_net_cycles) (s Stats.offchip_messages);
    memory = ratio (s Stats.memory_cycles) (s Stats.offchip_accesses);
    exec =
      (let to_, tp = sum (fun r -> r.Engine.measured_time) in
       pct_reduction (float_of_int to_) (float_of_int tp));
  }

let bar value max_value width =
  let n =
    int_of_float (float_of_int width *. value /. max_value)
    |> max 0 |> min width
  in
  String.make n '#' ^ String.make (width - n) ' '
