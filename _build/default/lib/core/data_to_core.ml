module Vec = Affine.Vec
module Matrix = Affine.Matrix
module Access = Affine.Access

type weighted_ref = { access : Access.t; u : int; weight : int }

type solution = {
  g : Vec.t;
  u_matrix : Matrix.t;
  satisfied_weight : int;
  total_weight : int;
}

let constraints_of access ~u =
  let b = Access.submatrix access ~u in
  (* columns of B, i.e. rows of Bᵀ *)
  List.init (Matrix.cols b) (fun j -> Matrix.col b j)
  |> List.filter (fun c -> not (Vec.is_zero c))

let kernel_for ~rank ~v = function
  | [] -> Some (Vec.unit rank v)
  | constraints ->
    let m = Matrix.of_rows constraints in
    Affine.Gauss.kernel_vector m

let solve_single access ~u ~v =
  kernel_for ~rank:(Access.rank access) ~v (constraints_of access ~u)

let satisfies g access ~u =
  List.for_all (fun c -> Vec.dot g c = 0) (constraints_of access ~u)

(* Group references by their (submatrix, u) signature; equal signatures
   yield the same system. *)
let group_refs refs =
  let groups : (Matrix.t * weighted_ref list ref) list ref = ref [] in
  List.iter
    (fun r ->
      let b = Access.submatrix r.access ~u:r.u in
      match List.find_opt (fun (b', _) -> Matrix.equal b b') !groups with
      | Some (_, l) -> l := r :: !l
      | None -> groups := (b, ref [ r ]) :: !groups)
    refs;
  List.map (fun (b, l) -> (b, !l)) !groups

let solve ~refs ~v =
  match refs with
  | [] -> None
  | r0 :: _ ->
    let rank = Access.rank r0.access in
    let total_weight = List.fold_left (fun a r -> a + r.weight) 0 refs in
    let groups = group_refs refs in
    let weight_of (_, members) =
      List.fold_left (fun a r -> a + r.weight) 0 members
    in
    let sorted =
      List.sort (fun a b -> compare (weight_of b) (weight_of a)) groups
    in
    (* heaviest solvable group wins (Algorithm 1, lines 18-26) *)
    let rec attempt = function
      | [] -> None
      | (_, members) :: rest -> (
        let r = List.hd members in
        match
          kernel_for ~rank ~v (constraints_of r.access ~u:r.u)
        with
        | None -> attempt rest
        | Some g ->
          let u_matrix = Affine.Unimodular.complete_row g ~v in
          let satisfied_weight =
            List.fold_left
              (fun a r -> if satisfies g r.access ~u:r.u then a + r.weight else a)
              0 refs
          in
          Some { g; u_matrix; satisfied_weight; total_weight })
    in
    attempt sorted
