lib/noc/network.ml: Array List Topology
