(** swim (SPEC OMP): shallow-water modeling — five-point stencils over
    several grids.  The initialization is parallel over the other
    dimension (a common Fortran idiom: init loops written column-major),
    so pages are first touched far from their compute owner and
    first-touch places them badly.  The init touches one element per
    16-element group, enough to claim every page cheaply. *)

let app =
  App.make ~name:"swim"
    ~description:"shallow water: five-point stencil sweeps"
    {|
param N = 320;
array U[N][N];
array V[N][N];
array P[N][N];
array UNEW[N][N];
array VNEW[N][N];
// column-parallel sparse init: scrambles first-touch placement
parfor j0 = 0 to N/16-1 {
  for i = 0 to N-1 {
    U[i][16*j0] = i + j0;
    V[i][16*j0] = i - j0;
    P[i][16*j0] = i;
    UNEW[i][16*j0] = 0;
    VNEW[i][16*j0] = 0;
  }
}
parfor i = 1 to N-2 {
  for j = 1 to N-2 {
    UNEW[i][j] = U[i][j] + P[i][j+1] - P[i][j-1] + V[i-1][j];
    VNEW[i][j] = V[i][j] + P[i+1][j] - P[i-1][j] + U[i][j-1];
  }
}
parfor i = 1 to N-2 {
  for j = 1 to N-2 {
    P[i][j] = P[i][j] - UNEW[i][j+1] + VNEW[i-1][j];
  }
}
|}
