lib/core/layout.mli: Affine Format Lang
