bench/main.mli:
