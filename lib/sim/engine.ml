module Sacache = Cache_sim.Sacache
module Directory = Cache_sim.Directory
module Fr_fcfs = Dram.Fr_fcfs
module Address_map = Dram.Address_map
module Page_alloc = Os_sim.Page_alloc

type job = {
  name : string;
  phases : Lang.Interp.phase list;
  node_of_thread : int array;
  warmup_phases : int;
      (** leading phases (initialization nests) excluded from the
          statistics: the real applications amortize initialization over
          thousands of compute iterations, the models run only a few *)
  site_streams : int array array list;
      (** per-phase site-id streams, index-parallel to [phases]; [[]]
          leaves every access unattributed (the untagged fast path) *)
  start_time : int;
      (** earliest cycle the job may start (tenant arrival; 0 = at boot) *)
  start_after : int option;
      (** index of a job in the same run that must finish first — the
          consolidation server's per-slot FIFO admission chain *)
  free_vpage_range : (int * int) option;
      (** inclusive virtual-page range returned to the shared page
          allocator when the job finishes (tenant departure) *)
}

type result = {
  stats : Stats.t;
  measured_time : int;
  job_measured : int array;
      (** finish time minus the warmup barrier — the steady-state
          execution time used for the paper's comparisons *)
  job_finish : int array;
  job_start : int array;
  job_offchip : int array;
      (** per-job measured off-chip accesses; sums to the engine's
          [sim.offchip_accesses] counter by construction *)
  job_fallbacks : int array;
      (** per-job fallback page allocations (pages a job first-touched
          that could not be placed on their desired controller) *)
  mc_occupancy : float array;
  mc_row_hit_rate : float array;
  mc_max_queue : int array;
  mc_occ_integral : float array;
      (** raw per-controller queue-length integrals behind [mc_occupancy];
          the parallel merger re-divides them by the global horizon *)
  link_utilization : float array;
  link_busy : int array;
      (** raw per-link busy cycles behind [link_utilization] *)
  pages_allocated : int;
}

(* A request walking the Fig. 2 path.  [pend_*] holds network legs whose
   on-/off-chip category is not known yet (the leg to the directory).

   Requests are pooled: the engine recycles them through a freelist so the
   steady state allocates no request state per miss.  Every field a
   request carries between pipeline stages is mutable and reinitialized on
   allocation; the [a_*] fields are the request's preallocated event
   payloads, so scheduling a pipeline stage allocates nothing either.  A
   request has at most one event in flight at a time, and its slot is
   freed only in [complete_request], after its last event has been
   dispatched — which is also what keeps the tracer's span hooks safe:
   every span of a pooled request is emitted before its slot can be
   recycled. *)
type req = {
  slot : int;  (** pool index; the controller-request id while in flight *)
  mutable rid : int;  (** miss ordinal, the tracer's sampling key *)
  mutable rjob : int;
  mutable rthread : int;
  mutable rnode : int;  (** requester node (private) / L1 node (shared) *)
  mutable rpaddr : int;
  mutable rwrite : bool;
  mutable rsite : int;  (** access site (attribution); -1 = unattributed *)
  mutable home : int;  (** shared L2: home bank node *)
  mutable pend_hops : int;
  mutable pend_net : int;
  mutable mc : int;
  mutable mc_arrival : int;
  mutable rshared : bool;  (** walking the shared-L2 organization's path *)
  mutable rowner : int;  (** sharer node an [Owner_read] reads from *)
  mutable measured : bool;  (** issued after warmup: counts towards stats *)
  mutable traced : bool;  (** sampled by the request-path tracer *)
  mutable resume : bool;
      (** blocking (load / full store buffer): the thread restarts on fill;
          non-blocking store fills just release a store-buffer slot *)
  a_dir_decide : action;
  a_owner_read : action;
  a_home_decide : action;
  a_home_return : action;
  a_mc_arrive : action;
  a_fill : action;
}

and action =
  | Step of int * int  (** job, thread *)
  | Dir_decide of req
  | Owner_read of req  (** sharer node in [rowner] *)
  | Home_decide of req
  | Home_return of req
  | Mc_arrive of req  (** organization in [rshared] *)
  | Fill of req
  | Mc_wake of int
  | Wb_arrive of int * int  (** mc, paddr *)

type jstate = {
  j : job;
  jid : int;
  jphases : Lang.Interp.phase array;  (** [j.phases] as an array *)
  jsites : int array array array;  (** site streams per phase; [||] = none *)
  nphases : int;
  mutable phase : int;
  mutable streams : Lang.Interp.phase;
  mutable cur_sites : int array array;
      (** site streams of the current phase ([[||]] when untagged) *)
  pos : int array;
  mutable remaining : int;
  mutable barrier : int;
  mutable warmup_end : int;
  mutable finished : bool;
}

let ctrl_bytes = 8

let new_req slot =
  let rec r =
    {
      slot;
      rid = 0;
      rjob = 0;
      rthread = 0;
      rnode = 0;
      rpaddr = 0;
      rwrite = false;
      rsite = -1;
      home = 0;
      pend_hops = 0;
      pend_net = 0;
      mc = 0;
      mc_arrival = 0;
      rshared = false;
      rowner = 0;
      measured = false;
      traced = false;
      resume = false;
      a_dir_decide = Dir_decide r;
      a_owner_read = Owner_read r;
      a_home_decide = Home_decide r;
      a_home_return = Home_return r;
      a_mc_arrive = Mc_arrive r;
      a_fill = Fill r;
    }
  in
  r

let run (cfg : Config.t) ?desired_mc_of_vpage ?(trace = Obs.Trace.disabled)
    ?attr ~jobs () =
  (* platform values hoisted into locals: the hot closures below must not
     pay the accessor indirection per access *)
  let topo = Config.topo cfg in
  let cluster = Config.cluster cfg in
  let placement = Config.placement cfg in
  let l2_line = Config.l2_line cfg in
  let nodes = Noc.Topology.nodes topo in
  let num_mcs = Core.Cluster.num_mcs cluster in
  let amap = Config.address_map cfg in
  let net = Noc.Network.create ~config:cfg.noc topo in
  let l1 =
    Array.init nodes (fun _ ->
        Sacache.create ~hash_sets:true ~size_bytes:cfg.l1_size
          ~line_bytes:cfg.l1_line ~ways:cfg.l1_ways ())
  in
  let l2 =
    Array.init nodes (fun _ ->
        Sacache.create ~hash_sets:true ~size_bytes:cfg.l2_size
          ~line_bytes:l2_line ~ways:cfg.l2_ways ())
  in
  let dir = Directory.create ~nodes in
  let stats = Stats.create ~nodes ~mcs:num_mcs in
  (* queue-depth distribution exported through the registry, installed
     only with attribution on: the extra metric must not perturb the
     byte-stable stats golden of plain runs *)
  let depth_hist =
    match attr with
    | None -> None
    | Some _ -> (
      match
        Obs.Metrics.histogram (Stats.registry stats) ~buckets:Obs.Metrics.Log2
          "mem.queue_depth"
      with
      | Ok h -> Some h
      | Error _ -> None)
  in
  let mcs =
    Array.init num_mcs (fun m ->
        (* queue-depth counter series for the trace viewer and (with
           attribution) the registry histogram; without either sink the
           controllers run hook-free *)
        let trace_on = Obs.Trace.enabled trace in
        let depth_hook =
          if trace_on || depth_hist <> None then
            Some
              (fun ~now ~depth ->
                if trace_on then
                  Obs.Trace.counter trace
                    ~name:(Printf.sprintf "mc%d queue depth" m)
                    ~pid:0 ~ts:now ~value:depth;
                match depth_hist with
                | Some h -> Obs.Metrics.observe h depth
                | None -> ())
          else None
        in
        Fr_fcfs.create ~timing:cfg.timing ~channels:(Config.channels_per_mc cfg)
          ~scheduler:cfg.mc_scheduler ~row_policy:cfg.mc_row_policy
          ?depth_hook ~banks:(Config.banks_per_mc cfg) ())
  in
  let mc_next_wake = Array.make num_mcs max_int in
  let policy =
    match cfg.page_policy with
    | Config.Hardware -> Page_alloc.Hardware_interleaved
    | Config.First_touch ->
      Page_alloc.First_touch
        (fun node ->
          let cl = Core.Cluster.cluster_of_node cluster topo node in
          List.hd (Core.Cluster.mcs_of_cluster cluster cl))
    | Config.Mc_aware ->
      let desired =
        match desired_mc_of_vpage with
        | Some f -> f
        | None -> fun vpage -> Some (vpage mod num_mcs)
      in
      let fallback node =
        let cl = Core.Cluster.cluster_of_node cluster topo node in
        List.hd (Core.Cluster.mcs_of_cluster cluster cl)
      in
      Page_alloc.Mc_aware { desired; fallback }
  in
  let pa =
    Page_alloc.create ~map:amap ~policy ~frames_per_mc:cfg.frames_per_mc ()
  in
  let heap : action Event_heap.t = Event_heap.create () in
  let js =
    Array.of_list
      (List.mapi
         (fun jid j ->
           let jphases = Array.of_list j.phases in
           {
             j;
             jid;
             jphases;
             jsites = Array.of_list j.site_streams;
             nphases = Array.length jphases;
             phase = -1;
             streams = [||];
             cur_sites = [||];
             pos = Array.make (Array.length j.node_of_thread) 0;
             remaining = 0;
             barrier = 0;
             warmup_end = 0;
             finished = false;
           })
         jobs)
  in
  let job_finish = Array.make (Array.length js) 0 in
  let job_start = Array.make (Array.length js) 0 in
  let job_offchip = Array.make (Array.length js) 0 in
  (* per-slot admission chains: jobs waiting on a predecessor start when
     it finishes (and never before their own start_time) *)
  let successors = Array.make (Array.length js) [] in
  Array.iter
    (fun s ->
      match s.j.start_after with
      | Some p when p >= 0 && p < Array.length js && p <> s.jid ->
        successors.(p) <- successors.(p) @ [ s.jid ]
      | _ -> ())
    js;
  (* flat memo tables, built once from the topology and placement: the
     hot path never recomputes a controller site, a nearest-controller
     choice or a hop count (XY hop count = Manhattan distance) *)
  let mc_node_tbl =
    Array.init num_mcs (fun m -> Noc.Placement.mc_node placement m)
  in
  let mc_node m = mc_node_tbl.(m) in
  let nearest_tbl =
    Array.init nodes (fun n -> Noc.Placement.nearest placement topo n)
  in
  let nearest_mc node = nearest_tbl.(node) in
  let hop_tbl =
    Array.init (nodes * nodes) (fun i ->
        Noc.Topology.distance topo (i / nodes) (i mod nodes))
  in
  let hops_between src dst = hop_tbl.((src * nodes) + dst) in
  (* inter-chiplet off-chip traffic: the counter is registered only on
     hierarchical platforms, so flat runs' stats documents stay
     byte-identical; the origin-node × MC crossing table makes the hot
     path one array load *)
  let cross_chiplet =
    if Noc.Topology.num_chiplets topo > 1 then
      Some
        (Obs.Metrics.counter (Stats.registry stats) "sim.offchip_cross_chiplet")
    else None
  in
  let cross_tbl =
    match cross_chiplet with
    | None -> [||]
    | Some _ ->
      Array.init (nodes * num_mcs) (fun i ->
          Noc.Topology.chiplet_of_node topo (i / num_mcs)
          <> Noc.Topology.chiplet_of_node topo (mc_node (i mod num_mcs)))
  in
  (* per-(job, thread) and per-controller event payloads, preallocated so
     phase starts and controller wakes push shared immutable values *)
  let step_act =
    Array.map
      (fun s ->
        Array.init (Array.length s.j.node_of_thread) (fun tid ->
            Step (s.jid, tid)))
      js
  in
  let wake_act = Array.init num_mcs (fun m -> Mc_wake m) in
  let line_of paddr = paddr land lnot (l2_line - 1) in
  let data_bytes = l2_line + ctrl_bytes in
  let l1_fill_bytes = cfg.l1_line + ctrl_bytes in
  let issue_cost = cfg.compute_cycles * cfg.threads_per_core in
  let store_buffer_depth = 8 in
  let outstanding_stores =
    Array.map (fun s -> Array.make (Array.length s.j.node_of_thread) 0) js
  in
  (* per-thread xorshift state for issue jitter (deterministic; seed 0
     reproduces the historical streams bit-for-bit) *)
  let seed_mix = cfg.seed * 0x2545F4914F6CDD1D in
  let jitter_state =
    Array.map
      (fun s ->
        Array.init (Array.length s.j.node_of_thread) (fun t ->
            let x = ((s.jid * 131) + t + 1) * 2654435761 lxor seed_mix in
            if x = 0 then 1 else x))
      js
  in
  let jitter jid tid =
    if (not cfg.jitter) || issue_cost <= 1 then 0
    else begin
      let x = jitter_state.(jid).(tid) in
      let x = x lxor (x lsl 13) in
      let x = x lxor (x lsr 7) in
      let x = x lxor (x lsl 17) in
      jitter_state.(jid).(tid) <- x;
      (x land max_int) mod issue_cost
    end
  in
  (* bank-local view of a shared-L2 bank address: strip the bank-select
     bits so a bank's sets index its own lines, not the global ones *)
  let bank_local paddr =
    let line = paddr / l2_line in
    ((line / nodes) * l2_line) + (paddr mod l2_line)
  in
  let log_leg ~measured ~offchip hops cycles =
    if measured then Stats.record_leg stats ~offchip ~hops ~cycles
  in
  let send ~now ~src ~dst ~bytes =
    Noc.Network.transfer net ~now ~src ~dst ~bytes
  in
  (* tracer plumbing: spans tagged with the request's job/node tracks; a
     request-bound send additionally records one "noc" span per link *)
  let span_req req ~cat ~name ~ts ~dur =
    if req.traced then
      Obs.Trace.span trace ~cat ~name ~pid:req.rjob ~tid:req.rnode ~ts ~dur ()
  in
  let send_req req ~now ~src ~dst ~bytes =
    if req.traced then
      Noc.Network.transfer net
        ~on_hop:(fun ~link ~start ~finish ->
          Obs.Trace.span trace ~cat:"noc"
            ~name:(Printf.sprintf "link %d" link)
            ~pid:req.rjob ~tid:req.rnode ~ts:start ~dur:(finish - start) ())
        ~now ~src ~dst ~bytes
    else send ~now ~src ~dst ~bytes
  in
  let miss_counter = ref 0 in
  (* the request pool: outstanding requests live in [pool] slots; a slot
     doubles as the controller-request id, so the former per-id Hashtbl
     becomes a direct array lookup ([pool.(completion.id)]).  Writebacks
     carry no state and use the sentinel id -1. *)
  let pool = ref [||] in
  let free_stack = ref [||] in
  let free_top = ref 0 in
  let grow_pool () =
    let old = Array.length !pool in
    let cap = max 256 (2 * old) in
    pool :=
      Array.init cap (fun i -> if i < old then !pool.(i) else new_req i);
    (* the freelist is empty when growing: refill it with the new slots *)
    free_stack := Array.make cap 0;
    free_top := 0;
    for i = cap - 1 downto old do
      !free_stack.(!free_top) <- i;
      incr free_top
    done
  in
  let alloc_req () =
    if !free_top = 0 then grow_pool ();
    decr free_top;
    !pool.(!free_stack.(!free_top))
  in
  let free_req (req : req) =
    !free_stack.(!free_top) <- req.slot;
    incr free_top
  in
  let wb_id = -1 in
  let schedule_mc_wake m tw =
    if tw < mc_next_wake.(m) then begin
      mc_next_wake.(m) <- tw;
      Event_heap.push heap ~time:tw wake_act.(m)
    end
  in
  let enqueue_mc ~now ~m ~id ?(write = false) paddr =
    Fr_fcfs.enqueue mcs.(m) ~now ~bank:(Address_map.bank_of_paddr amap paddr)
      ~row:(Address_map.row_of_paddr amap paddr)
      ~write ~id ();
    schedule_mc_wake m now
  in
  let writeback ~now ~src paddr =
    if not cfg.optimal then begin
      Stats.record_writeback stats;
      let m = Address_map.mc_of_paddr amap paddr in
      let arr = send ~now ~src ~dst:(mc_node m) ~bytes:data_bytes in
      Event_heap.push heap ~time:arr (Wb_arrive (m, paddr))
    end
  in
  (* ---- job lifecycle ---- *)
  (* A job starts when its start_time arrives and its admission-chain
     predecessor (if any) has finished; completion reclaims its pages and
     releases its successors.  An empty job completes at its start. *)
  let rec start_job s at =
    let at = max at 0 in
    job_start.(s.jid) <- at;
    if s.j.warmup_phases <= 0 then s.warmup_end <- at;
    if s.nphases = 0 then complete_job s at
    else begin
      s.phase <- 0;
      s.streams <- s.jphases.(0);
      s.cur_sites <- (if Array.length s.jsites > 0 then s.jsites.(0) else [||]);
      s.remaining <- Array.length s.j.node_of_thread;
      for tid = 0 to Array.length s.j.node_of_thread - 1 do
        Event_heap.push heap ~time:at step_act.(s.jid).(tid)
      done
    end
  and complete_job s at =
    s.finished <- true;
    job_finish.(s.jid) <- at;
    if s.nphases > 0 then Stats.note_finish stats at;
    (match s.j.free_vpage_range with
    | Some (first_vpage, last_vpage) ->
      ignore (Page_alloc.free_region pa ~first_vpage ~last_vpage)
    | None -> ());
    List.iter
      (fun sid ->
        let succ = js.(sid) in
        start_job succ (max succ.j.start_time at))
      successors.(s.jid)
  in
  (* ---- thread execution ---- *)
  let rec continue_thread jid tid t =
    let s = js.(jid) in
    let stream = s.streams.(tid) in
    let n = Array.length stream in
    let measured = s.phase >= s.j.warmup_phases in
    let rec go t =
      let i = s.pos.(tid) in
      if i >= n then finish_thread s tid t
      else begin
        s.pos.(tid) <- i + 1;
        let a = stream.(i) in
        let vaddr = Lang.Interp.addr_of_access a
        and wr = Lang.Interp.is_write a in
        let node = s.j.node_of_thread.(tid) in
        let paddr = Page_alloc.translate_owned pa ~owner:jid ~node ~vaddr in
        if measured then Stats.record_access stats;
        let t = t + issue_cost + jitter jid tid in
        match Sacache.access l1.(node) ~addr:paddr ~write:wr with
        | Sacache.Hit ->
          if measured then Stats.record_l1_hit stats;
          go (t + cfg.l1_latency)
        | Sacache.Miss _ ->
          (* L1 fills at detection; L1 writebacks are not modeled *)
          let rid = !miss_counter in
          incr miss_counter;
          let traced = Obs.Trace.hit trace rid in
          if traced then
            Obs.Trace.span trace ~cat:"cache" ~name:"L1 miss" ~pid:jid
              ~tid:node ~ts:t ~dur:cfg.l1_latency ();
          (* the side-band site stream is index-parallel to the access
             stream; untagged jobs carry none and pay one length check *)
          let site =
            if Array.length s.cur_sites = 0 then -1 else s.cur_sites.(tid).(i)
          in
          let blocking =
            (not wr) || outstanding_stores.(jid).(tid) >= store_buffer_depth
          in
          if blocking then
            miss_path jid tid node paddr wr ~rid ~site ~traced ~measured
              ~resume:true
              (t + cfg.l1_latency)
          else begin
            (* store buffer absorbs the write miss; the fill proceeds in
               the background and the thread continues *)
            outstanding_stores.(jid).(tid) <- outstanding_stores.(jid).(tid) + 1;
            miss_path jid tid node paddr wr ~rid ~site ~traced ~measured
              ~resume:false
              (t + cfg.l1_latency);
            go (t + cfg.l1_latency)
          end
      end
    in
    go t
  and finish_thread s _tid t =
    s.remaining <- s.remaining - 1;
    s.barrier <- max s.barrier t;
    if s.remaining = 0 then begin
      if s.phase = s.j.warmup_phases - 1 then s.warmup_end <- s.barrier;
      s.phase <- s.phase + 1;
      if s.phase < s.nphases then begin
        s.streams <- s.jphases.(s.phase);
        s.cur_sites <-
          (if s.phase < Array.length s.jsites then s.jsites.(s.phase)
           else [||]);
        Array.fill s.pos 0 (Array.length s.pos) 0;
        s.remaining <- Array.length s.j.node_of_thread;
        for tid = 0 to Array.length s.j.node_of_thread - 1 do
          Event_heap.push heap ~time:s.barrier step_act.(s.jid).(tid)
        done
      end
      else complete_job s s.barrier
    end
  and miss_path jid tid node paddr wr ~rid ~site ~traced ~measured ~resume t =
    match cfg.l2_org with
    | Config.Private_l2 ->
      miss_private jid tid node paddr wr ~rid ~site ~traced ~measured ~resume t
    | Config.Shared_l2 ->
      miss_shared jid tid node paddr wr ~rid ~site ~traced ~measured ~resume t
  and complete_request req t =
    let jid = req.rjob and tid = req.rthread and resume = req.resume in
    free_req req;
    if resume then continue_thread jid tid t
    else outstanding_stores.(jid).(tid) <- outstanding_stores.(jid).(tid) - 1
  and init_req req ~rid ~jid ~tid ~node ~paddr ~wr ~site ~home ~shared
      ~measured ~traced ~resume =
    req.rid <- rid;
    req.rjob <- jid;
    req.rthread <- tid;
    req.rnode <- node;
    req.rpaddr <- paddr;
    req.rwrite <- wr;
    req.rsite <- site;
    req.home <- home;
    req.pend_hops <- 0;
    req.pend_net <- 0;
    req.mc <- 0;
    req.mc_arrival <- 0;
    req.rshared <- shared;
    req.rowner <- 0;
    req.measured <- measured;
    req.traced <- traced;
    req.resume <- resume
  and miss_private jid tid node paddr wr ~rid ~site ~traced ~measured ~resume t
      =
    if traced then
      Obs.Trace.span trace ~cat:"cache" ~name:"L2 lookup" ~pid:jid ~tid:node
        ~ts:t ~dur:cfg.l2_latency ();
    let t = t + cfg.l2_latency in
    match Sacache.access l2.(node) ~addr:paddr ~write:wr with
    | Sacache.Hit ->
      if measured then Stats.record_l2_hit stats;
      if resume then continue_thread jid tid t
      else outstanding_stores.(jid).(tid) <- outstanding_stores.(jid).(tid) - 1
    | Sacache.Miss { evicted; evicted_dirty } ->
      let line = line_of paddr in
      (match evicted with
      | Some ev ->
        Directory.remove_holder dir ~line:ev ~node;
        if evicted_dirty then writeback ~now:t ~src:node ev
      | None -> ());
      let holder =
        Directory.closest_holder dir ~line ~excluding:node
          ~distance:(fun h -> Noc.Topology.distance topo node h)
          ()
      in
      Directory.add_holder dir ~line ~node;
      let req = alloc_req () in
      init_req req ~rid ~jid ~tid ~node ~paddr ~wr ~site ~home:node
        ~shared:false ~measured ~traced ~resume;
      if cfg.optimal then begin
        (* oracle lookup at miss time: sharers keep the normal on-chip
           path; off-chip goes straight to the nearest controller *)
        match holder with
        | Some _ ->
          let m = Address_map.mc_of_paddr amap paddr in
          let dst = mc_node m in
          let arr = send_req req ~now:t ~src:node ~dst ~bytes:ctrl_bytes in
          req.pend_hops <- hops_between node dst;
          req.pend_net <- arr - t;
          Event_heap.push heap ~time:arr req.a_dir_decide
        | None ->
          let m = nearest_mc node in
          req.mc <- m;
          let dst = mc_node m in
          let arr = send_req req ~now:t ~src:node ~dst ~bytes:ctrl_bytes in
          log_leg ~measured:req.measured ~offchip:true (hops_between node dst)
            (arr - t);
          Event_heap.push heap ~time:arr req.a_mc_arrive
      end
      else begin
        let m = Address_map.mc_of_paddr amap paddr in
        req.mc <- m;
        let dst = mc_node m in
        let arr = send_req req ~now:t ~src:node ~dst ~bytes:ctrl_bytes in
        req.pend_hops <- hops_between node dst;
        req.pend_net <- arr - t;
        Event_heap.push heap ~time:arr req.a_dir_decide
      end
  and miss_shared jid tid node paddr wr ~rid ~site ~traced ~measured ~resume t
      =
    let home = paddr / l2_line mod nodes in
    let req = alloc_req () in
    init_req req ~rid ~jid ~tid ~node ~paddr ~wr ~site ~home ~shared:true
      ~measured ~traced ~resume;
    if home = node then home_decide req t
    else begin
      let arr = send_req req ~now:t ~src:node ~dst:home ~bytes:ctrl_bytes in
      log_leg ~measured:req.measured ~offchip:false (hops_between node home)
        (arr - t);
      Event_heap.push heap ~time:arr req.a_home_decide
    end
  and home_decide req t =
    span_req req ~cat:"cache" ~name:"L2 home" ~ts:t ~dur:cfg.l2_latency;
    let t = t + cfg.l2_latency in
    match
      Sacache.access l2.(req.home) ~addr:(bank_local req.rpaddr) ~write:false
    with
    | Sacache.Hit ->
      if req.measured then Stats.record_l2_hit stats;
      send_home_to_requester req t
    | Sacache.Miss { evicted; evicted_dirty } ->
      (match evicted with
      | Some ev when evicted_dirty ->
        (* reconstruct a representative global address for the evicted
           bank-local line: same bank, same local line *)
        let local_line = ev / l2_line in
        let global = ((local_line * nodes) + req.home) * l2_line in
        writeback ~now:t ~src:req.home global
      | _ -> ());
      let m =
        if cfg.optimal then nearest_mc req.home
        else Address_map.mc_of_paddr amap req.rpaddr
      in
      req.mc <- m;
      let dst = mc_node m in
      let arr = send_req req ~now:t ~src:req.home ~dst ~bytes:ctrl_bytes in
      log_leg ~measured:req.measured ~offchip:true (hops_between req.home dst)
        (arr - t);
      Event_heap.push heap ~time:arr req.a_mc_arrive
  and send_home_to_requester req t =
    if req.home = req.rnode then complete_request req t
    else begin
      let arr =
        send_req req ~now:t ~src:req.home ~dst:req.rnode ~bytes:l1_fill_bytes
      in
      log_leg ~measured:req.measured ~offchip:false
        (hops_between req.home req.rnode)
        (arr - t);
      Event_heap.push heap ~time:arr req.a_fill
    end
  and mc_arrive req t =
    if req.measured then begin
      let origin = if req.rshared then req.home else req.rnode in
      Stats.record_offchip stats ~origin ~mc:req.mc;
      (match cross_chiplet with
      | Some c when cross_tbl.((origin * num_mcs) + req.mc) ->
        Obs.Metrics.incr c
      | _ -> ());
      (* per-job split of the same counter: sums to sim.offchip_accesses *)
      job_offchip.(req.rjob) <- job_offchip.(req.rjob) + 1;
      (* attribution rides the same gate as record_offchip, so the cube
         total always equals the off-chip counter *)
      match attr with
      | Some a ->
        Obs.Attr.record a ~site:req.rsite ~mc:req.mc
          ~bank:(Address_map.bank_of_paddr amap req.rpaddr)
          ~hops:(hops_between origin (mc_node req.mc))
      | None -> ()
    end;
    req.mc_arrival <- t;
    if cfg.optimal then begin
      (* idealized controller: uncontended row-empty access *)
      let service = cfg.timing.Dram.Timing.row_empty in
      let finish = t + service in
      if req.measured then begin
        Stats.record_memory stats ~latency:service ~queue:0 ~row_hit:false;
        match attr with
        | Some a -> Obs.Attr.record_queue a ~site:req.rsite ~queue:0
        | None -> ()
      end;
      span_req req ~cat:"dram" ~name:"bank" ~ts:t ~dur:service;
      mc_respond req finish
    end
    else enqueue_mc ~now:t ~m:req.mc ~id:req.slot req.rpaddr
  and mc_respond req t =
    let src = mc_node req.mc in
    let dst = if req.rshared then req.home else req.rnode in
    let arr = send_req req ~now:t ~src ~dst ~bytes:data_bytes in
    log_leg ~measured:req.measured ~offchip:true (hops_between src dst)
      (arr - t);
    if req.rshared then Event_heap.push heap ~time:arr req.a_home_return
    else Event_heap.push heap ~time:arr req.a_fill
  in
  let dispatch t = function
    | Step (jid, tid) -> continue_thread jid tid t
    | Dir_decide req -> (
      span_req req ~cat:"cache" ~name:"directory" ~ts:t
        ~dur:cfg.directory_latency;
      let t = t + cfg.directory_latency in
      let line = line_of req.rpaddr in
      let holder =
        Directory.closest_holder dir ~line ~excluding:req.rnode
          ~distance:(fun h -> Noc.Topology.distance topo req.rnode h)
          ()
      in
      match holder with
      | Some h ->
        (* on-chip: the pending request leg was on-chip after all *)
        log_leg ~measured:req.measured ~offchip:false req.pend_hops
          req.pend_net;
        if req.measured then Stats.record_l2_hit stats;
        (* a write transfer invalidates every other copy (coherence
           traffic, charged on the links but not waited for) *)
        if req.rwrite then
          List.iter
            (fun holder ->
              if holder <> req.rnode && holder <> h then begin
                Directory.remove_holder dir ~line ~node:holder;
                ignore (Sacache.invalidate l2.(holder) ~addr:req.rpaddr);
                ignore
                  (send ~now:t ~src:(mc_node req.mc) ~dst:holder
                     ~bytes:ctrl_bytes)
              end)
            (Directory.holders dir ~line);
        let src = mc_node req.mc in
        let arr = send_req req ~now:t ~src ~dst:h ~bytes:ctrl_bytes in
        log_leg ~measured:req.measured ~offchip:false (hops_between src h)
          (arr - t);
        req.rowner <- h;
        Event_heap.push heap ~time:arr req.a_owner_read
      | None ->
        log_leg ~measured:req.measured ~offchip:true req.pend_hops
          req.pend_net;
        if cfg.optimal then begin
          req.mc <- nearest_mc req.rnode;
          mc_arrive req t
        end
        else mc_arrive req t)
    | Owner_read req ->
      let h = req.rowner in
      span_req req ~cat:"cache" ~name:"L2 peer" ~ts:t ~dur:cfg.l2_latency;
      let t = t + cfg.l2_latency in
      (* the line is in h's L2 (kept in sync via the directory); a write
         transfer takes it exclusively *)
      if req.rwrite then begin
        Directory.remove_holder dir ~line:(line_of req.rpaddr) ~node:h;
        ignore (Sacache.invalidate l2.(h) ~addr:req.rpaddr)
      end
      else ignore (Sacache.access l2.(h) ~addr:req.rpaddr ~write:false);
      let arr = send_req req ~now:t ~src:h ~dst:req.rnode ~bytes:data_bytes in
      log_leg ~measured:req.measured ~offchip:false (hops_between h req.rnode)
        (arr - t);
      Event_heap.push heap ~time:arr req.a_fill
    | Home_decide req -> home_decide req t
    | Home_return req -> send_home_to_requester req t
    | Mc_arrive req -> mc_arrive req t
    | Fill req -> complete_request req t
    | Mc_wake m ->
      (* stale wakes (superseded by an earlier reschedule) are dropped,
         otherwise every stale pop would spawn a fresh wake and the event
         population would snowball *)
      if t = mc_next_wake.(m) then begin
        mc_next_wake.(m) <- max_int;
        let completions = Fr_fcfs.advance mcs.(m) ~now:t in
        List.iter
          (fun (c : Fr_fcfs.completion) ->
            if c.id <> wb_id then begin
              let req = !pool.(c.id) in
              Stats.record_memory stats
                ~latency:(c.finish - req.mc_arrival)
                ~queue:c.queue_delay ~row_hit:c.row_hit;
              (match attr with
              | Some a when req.measured ->
                Obs.Attr.record_queue a ~site:req.rsite ~queue:c.queue_delay
              | _ -> ());
              span_req req ~cat:"mc-queue" ~name:"queue" ~ts:req.mc_arrival
                ~dur:c.queue_delay;
              span_req req ~cat:"dram" ~name:"bank" ~ts:c.start
                ~dur:(c.finish - c.start);
              mc_respond req c.finish
            end)
          completions;
        match Fr_fcfs.next_wake mcs.(m) with
        | Some tw -> schedule_mc_wake m (max tw (t + 1))
        | None -> ()
      end
    | Wb_arrive (m, paddr) -> enqueue_mc ~now:t ~m ~id:wb_id ~write:true paddr
  in
  (* ---- start all unchained jobs (chained ones start on completion of
     their predecessor) ---- *)
  let chained s =
    match s.j.start_after with
    | Some p -> p >= 0 && p < Array.length js && p <> s.jid
    | None -> false
  in
  Array.iter (fun s -> if not (chained s) then start_job s s.j.start_time) js;
  let debug = Sys.getenv_opt "OFFCHIP_DEBUG" <> None in
  let ndisp = ref 0 in
  let rec loop () =
    if not (Event_heap.is_empty heap) then begin
      let t = Event_heap.next_time heap in
      let action = Event_heap.pop_payload heap in
      incr ndisp;
      if debug && !ndisp mod 1_000_000 = 0 then
        Printf.eprintf "[dispatch %dM] t=%d heap=%d acc=%d off=%d pending=%s\n%!"
          (!ndisp / 1_000_000) t (Event_heap.size heap)
          (Stats.total_accesses stats) (Stats.offchip_accesses stats)
          (String.concat ","
             (Array.to_list
                (Array.map (fun m -> string_of_int (Fr_fcfs.pending m)) mcs)));
      dispatch t action;
      loop ()
    end
  in
  loop ();
  Stats.set_page_fallbacks stats (Page_alloc.fallback_allocations pa);
  let job_measured =
    Array.map (fun s -> max 0 (job_finish.(s.jid) - s.warmup_end)) js
  in
  let measured_time = Array.fold_left max 0 job_measured in
  let horizon = max 1 (Stats.finish_time stats) in
  let link_utilization = Noc.Network.utilization net ~at:horizon in
  (* per-link utilization summarized into the registry — gated on
     attribution like the queue-depth histogram, so --stats-json carries
     the mesh-contention profile even with tracing off while plain runs
     stay byte-identical *)
  (match attr with
  | Some _ ->
    let reg = Stats.registry stats in
    let n = Array.length link_utilization in
    let mx = Array.fold_left Float.max 0. link_utilization in
    let sum = Array.fold_left ( +. ) 0. link_utilization in
    Obs.Metrics.set (Obs.Metrics.gauge reg "noc.max_link_utilization") mx;
    Obs.Metrics.set
      (Obs.Metrics.gauge reg "noc.avg_link_utilization")
      (if n = 0 then 0. else sum /. float_of_int n)
  | None -> ());
  {
    stats;
    measured_time;
    job_measured;
    job_finish;
    job_start;
    job_offchip;
    job_fallbacks =
      Array.init (Array.length js) (fun j ->
          Page_alloc.fallback_allocations_of pa ~owner:j);
    mc_occupancy = Array.map (fun m -> Fr_fcfs.occupancy m ~at:horizon) mcs;
    mc_row_hit_rate =
      Array.map
        (fun m ->
          let s = Fr_fcfs.served m in
          if s = 0 then 0.
          else float_of_int (Fr_fcfs.row_hits m) /. float_of_int s)
        mcs;
    mc_max_queue = Array.map Fr_fcfs.max_pending mcs;
    mc_occ_integral = Array.map (fun m -> Fr_fcfs.occ_integral_at m ~at:horizon) mcs;
    link_utilization = Noc.Network.utilization net ~at:horizon;
    link_busy = Noc.Network.link_busy net;
    pages_allocated = Page_alloc.pages_allocated pa;
  }
