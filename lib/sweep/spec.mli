(** Declarative sweep specifications.

    A spec is a JSON document describing the cartesian product of
    simulator configurations × workloads × compiler on/off, plus the
    execution knobs of the run (per-job timeout, retry budget):

    {v
    {
      "name": "fig16",
      "seed": 0,
      "apps": ["apsi", "swim"],
      "optimized": [false, true],
      "timeout_s": 300,
      "retries": 2,
      "configs": [
        { "name": "line-private", "platform": "mesh8x8-mc4",
          "interleave": "line", "l2": "private", "policy": "hardware",
          "mapping": "M1", "width": 8, "height": 8, "tpc": 1,
          "optimal": false, "scaled": true, "seed": 0 }
      ]
    }
    v}

    Every config field is optional and defaults to the scaled baseline
    platform ({!Sim.Config.scaled} semantics); [platform] is a
    {!Core.Platform} preset name or JSON file and takes precedence over
    [width]/[height] ([mapping] still re-maps it; [""] keeps the
    platform's own mapping); [search] ([true] or
    [{"seed", "pool", "restarts", "pressure"}]) runs the deterministic
    {!Core.Place_search} and substitutes the searched machine for the
    config's platform — the searched placement name embeds a site digest,
    so cached results on different searched machines never collide;
    [seed] at the top level is the default for configs that do not set
    their own.  [expand] flattens the product into one job per
    (config, app, optimized) triple. *)

type job = {
  id : string;  (** ["<config>/<app>/<orig|opt>"], unique within a spec *)
  config_name : string;
  config : Sim.Config.t;
  app : string;  (** a {!Workloads.Suite} name, validated at load time *)
  optimized : bool;
}

type t = {
  name : string;
  jobs : job array;  (** in spec order — aggregation order is fixed *)
  timeout_s : float;  (** per-job wall-clock budget (default 300) *)
  retries : int;  (** extra attempts after the first (default 2) *)
  domains : int;
      (** worker domains for each job's engine pass (default 1).  Results
          are byte-identical for every value, so [domains] is an execution
          knob like [timeout_s] and deliberately {e not} part of
          {!job_identity} — cached results stay valid across it. *)
}

val of_json : Obs.Json.t -> (t, string) result

val load : string -> (t, string) result
(** Reads and parses a spec file; any problem (unreadable file, JSON
    syntax, unknown app or config value) is a one-line [Error]. *)

val job_identity : job -> Obs.Json.t
(** The canonical description of what a job computes — full platform
    configuration, app and optimization flag — hashed (together with the
    code version) into its result-cache key. *)
