(* Quickstart: the paper's Fig. 9 example, end to end.

   Parses the Jacobi-like kernel, runs the layout pass for an 8×8 mesh
   with four corner controllers, prints the original and transformed code
   (Fig. 9a → Fig. 9c), then simulates both layouts and reports the
   improvement.

     dune exec examples/quickstart.exe *)

let source =
  {|
param N = 320;
array Z[N][N];
parfor i = 2 to N-2 {
  for j = 2 to N-2 {
    Z[j][i] = Z[j-1][i] + Z[j][i] + Z[j+1][i];
  }
}
|}

let parse src =
  match Lang.Parser.parse_result src with
  | Ok p -> p
  | Error ds ->
    List.iter (fun d -> prerr_endline (Lang.Diag.to_string ~src d)) ds;
    exit 1

let () =
  (* 1. parse *)
  let program = parse source in
  Format.printf "--- original (Fig. 9a) ---@.%a@.@." Lang.Ast.pp_program program;

  (* 2. run the layout-transformation pass (Algorithm 1) *)
  let cfg = Sim.Config.scaled () in
  let analysis = Lang.Analysis.analyze program in
  let report = Core.Transform.run (Sim.Config.customize_config cfg) analysis in
  Format.printf "--- pass report ---@.%a@.@." Core.Transform.pp_report report;

  let layout = Core.Transform.layout_of report "Z" in
  Format.printf "--- chosen layout ---@.%a@.@." Core.Layout.pp layout;

  let transformed = Core.Transform.rewrite_program report program in
  Format.printf "--- transformed (Fig. 9c) ---@.%a@.@." Lang.Ast.pp_program
    transformed;

  (* 3. simulate both layouts on the simulated manycore *)
  let orig = Sim.Runner.run cfg ~optimized:false program in
  let opt = Sim.Runner.run cfg ~optimized:true program in
  let red f =
    100. *. (1. -. (f opt.Sim.Engine.stats /. f orig.Sim.Engine.stats))
  in
  Format.printf "--- simulation ---@.";
  Format.printf "original : %a@." Sim.Stats.pp_summary orig.Sim.Engine.stats;
  Format.printf "optimized: %a@." Sim.Stats.pp_summary opt.Sim.Engine.stats;
  let avg_hops (r : Sim.Engine.result) =
    let h = ((Sim.Stats.offchip_hops) r.Sim.Engine.stats) in
    let n = ref 0 and total = ref 0 in
    Array.iteri
      (fun i c ->
        n := !n + c;
        total := !total + (i * c))
      h;
    float_of_int !total /. float_of_int (max 1 !n)
  in
  Format.printf
    "off-chip requests now travel %.1f links on average instead of %.1f@."
    (avg_hops opt) (avg_hops orig);
  Format.printf
    "reductions: memory latency %.1f%%, execution time %.1f%%@."
    (red Sim.Stats.avg_memory)
    (100.
    *. (1.
       -. float_of_int ((Sim.Stats.finish_time) opt.Sim.Engine.stats)
          /. float_of_int ((Sim.Stats.finish_time) orig.Sim.Engine.stats)))
