lib/workloads/fma3d.mli: App
