(** Tiled-GEMM workload family — a generator, not a fixed app.

    C += A·B with row strips parallel and a T×T (jj,kk) tiling: strip
    [s] owns rows [s·R .. s·R+R-1] of A and C (R = N/strips), so the
    first-touch policy and the compiler's Data-to-MC mapping can both
    localize A and C, while B is read in full by every strip — the
    traffic no mapping can remove.  Shaped to a hierarchical platform
    via [strips = chiplets × threads-per-chiplet], this is the workload
    behind the EXPERIMENTS.md chiplet study. *)

val default_n : int
(** 64 — with 8-byte elements each matrix is 32 KB, past the scaled
    private L2. *)

val default_tile : int
(** 8 *)

val default_strips : int
(** 64 — one strip per core of the 8×8 presets. *)

val make_result :
  ?name:string ->
  ?n:int ->
  ?tile:int ->
  ?strips:int ->
  unit ->
  (App.t, string) result
(** Knob validation: [tile] and [strips] must divide [n], all positive.
    The default name is ["gemm"] for the default knobs and
    ["gemm-n<N>t<T>p<P>"] otherwise. *)

val for_chiplets :
  ?n:int ->
  ?tile:int ->
  ?threads_per_chiplet:int ->
  chiplets:int ->
  unit ->
  (App.t, string) result
(** [strips = chiplets × threads_per_chiplet] (default 16 per chiplet —
    one per core of a 4×4 chiplet). *)

val of_name : string -> (App.t, string) result option
(** Parses ["gemm"] (default knobs) or ["gemm-n<N>t<T>[p<P>]"].  [None]
    when the name is not in the family; [Some (Error _)] when it is but
    the knobs are malformed or indivisible — {!Suite.by_name} uses this
    as its fallback for names outside the 13-app suite. *)
