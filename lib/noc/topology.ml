type chiplets = {
  grid_x : int;
  grid_y : int;
  link_latency : int;
  link_bytes : int;
}

type t = { width : int; height : int; chiplets : chiplets option }

type dir = East | West | North | South

type link = { from_node : int; dir : dir }

let make ?chiplets ~width ~height () =
  if width <= 0 || height <= 0 then invalid_arg "Topology.make";
  (match chiplets with
  | None -> ()
  | Some c ->
    if
      c.grid_x <= 0 || c.grid_y <= 0 || c.link_latency <= 0
      || c.link_bytes <= 0
      || width mod c.grid_x <> 0
      || height mod c.grid_y <> 0
    then invalid_arg "Topology.make: chiplets");
  (* a 1x1 chiplet grid has no boundary to cross: normalize it away so a
     degenerate hierarchical machine is structurally equal to the flat
     mesh (and behaves byte-identically everywhere) *)
  let chiplets =
    match chiplets with
    | Some { grid_x = 1; grid_y = 1; _ } -> None
    | c -> c
  in
  { width; height; chiplets }

let chiplets_result t ~grid_x ~grid_y ~link_latency ~link_bytes =
  if grid_x <= 0 || grid_y <= 0 then
    Error (Printf.sprintf "chiplet grid %dx%d must be positive" grid_x grid_y)
  else if t.width mod grid_x <> 0 || t.height mod grid_y <> 0 then
    Error
      (Printf.sprintf "chiplet grid %dx%d does not tile the %dx%d mesh"
         grid_x grid_y t.width t.height)
  else if link_latency <= 0 then
    Error
      (Printf.sprintf "inter-chiplet link latency must be positive (got %d)"
         link_latency)
  else if link_bytes <= 0 then
    Error
      (Printf.sprintf "inter-chiplet link width must be positive (got %d B)"
         link_bytes)
  else
    Ok
      (make
         ~chiplets:{ grid_x; grid_y; link_latency; link_bytes }
         ~width:t.width ~height:t.height ())

let nodes t = t.width * t.height

let node_of_coord t (c : Coord.t) = (c.y * t.width) + c.x

let coord_of_node t n = Coord.make (n mod t.width) (n / t.width)

let in_mesh t (c : Coord.t) =
  c.x >= 0 && c.x < t.width && c.y >= 0 && c.y < t.height

let distance t a b = Coord.manhattan (coord_of_node t a) (coord_of_node t b)

(* --- the chiplet level ------------------------------------------------- *)

let num_chiplets t =
  match t.chiplets with None -> 1 | Some c -> c.grid_x * c.grid_y

let chiplet_of_coord t (c : Coord.t) =
  match t.chiplets with
  | None -> 0
  | Some g ->
    let nx = t.width / g.grid_x and ny = t.height / g.grid_y in
    ((c.y / ny) * g.grid_x) + (c.x / nx)

let chiplet_of_node t n = chiplet_of_coord t (coord_of_node t n)

(* Under XY routing the message crosses |Δchiplet_x| vertical and
   |Δchiplet_y| horizontal chiplet boundaries — the X leg runs at the
   source row, the Y leg at the destination column, so boundary
   crossings are exactly the chiplet-grid Manhattan distance. *)
let chiplet_hops t a b =
  match t.chiplets with
  | None -> 0
  | Some g ->
    let ca = coord_of_node t a and cb = coord_of_node t b in
    let nx = t.width / g.grid_x and ny = t.height / g.grid_y in
    abs ((cb.x / nx) - (ca.x / nx)) + abs ((cb.y / ny) - (ca.y / ny))

let step t n = function
  | East -> n + 1
  | West -> n - 1
  | South -> n + t.width
  | North -> n - t.width

let dir_index = function East -> 0 | West -> 1 | North -> 2 | South -> 3

let link_id _t l = (l.from_node * 4) + dir_index l.dir

let num_link_ids t = 4 * nodes t

let link_crosses_chiplet t l =
  match t.chiplets with
  | None -> false
  | Some _ ->
    chiplet_of_node t l.from_node <> chiplet_of_node t (step t l.from_node l.dir)

let xy_route t ~src ~dst =
  let cs = coord_of_node t src and cd = coord_of_node t dst in
  let route = ref [] in
  let cur = ref src in
  let move dir =
    route := { from_node = !cur; dir } :: !route;
    cur := step t !cur dir
  in
  (* X first *)
  for _ = 1 to abs (cd.x - cs.x) do
    move (if cd.x > cs.x then East else West)
  done;
  for _ = 1 to abs (cd.y - cs.y) do
    move (if cd.y > cs.y then South else North)
  done;
  List.rev !route

(* The XY route as a dense array of link ids, written without the
   intermediate link list: the representation the network's route table
   memoizes. *)
let link_ids t ~src ~dst =
  let cs = coord_of_node t src and cd = coord_of_node t dst in
  let ids = Array.make (Coord.manhattan cs cd) 0 in
  let cur = ref src in
  let k = ref 0 in
  let move dir =
    ids.(!k) <- (!cur * 4) + dir_index dir;
    incr k;
    cur := step t !cur dir
  in
  for _ = 1 to abs (cd.x - cs.x) do
    move (if cd.x > cs.x then East else West)
  done;
  for _ = 1 to abs (cd.y - cs.y) do
    move (if cd.y > cs.y then South else North)
  done;
  ids
