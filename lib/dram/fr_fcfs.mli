(** FR-FCFS memory controller (First-Ready, First-Come-First-Served).

    The scheduling policy of the simulated platform (Table 1, [16]): among
    the requests queued for a bank, one that hits the currently open row is
    served first; otherwise the oldest request wins.  Banks operate in
    parallel; the data bus of the channel serializes bursts.

    The controller is driven by a discrete-event engine: requests are
    {!enqueue}d with their arrival time; {!advance} issues everything that
    can start by the given time and reports completions; {!next_wake} says
    when issuing could next make progress. *)

type completion = {
  id : int;  (** caller's request identifier *)
  start : int;  (** cycle the bank began the access *)
  finish : int;  (** cycle the data burst completed *)
  queue_delay : int;  (** start − arrival: time spent queued *)
  row_hit : bool;
}

type t

type scheduler =
  | Fr_fcfs  (** first-ready (row hit) first, then oldest — Table 1 *)
  | Fcfs  (** strict arrival order per bank: the naive baseline *)

type row_policy =
  | Open_page  (** rows stay open between accesses (default) *)
  | Closed_page  (** auto-precharge: every access pays the full cycle *)

val create :
  ?timing:Timing.t ->
  ?channels:int ->
  ?scheduler:scheduler ->
  ?row_policy:row_policy ->
  ?depth_hook:(now:int -> depth:int -> unit) ->
  banks:int ->
  unit ->
  t
(** [channels] (default 1) independent data buses; bank [b] transfers on
    channel [b mod channels].  The evaluated platform uses two channels
    per controller (1 GB per controller; the paper notes M1 performs well
    "assuming the number of channels per memory controller is
    sufficiently large").

    [depth_hook] is called with the current total queue depth every time a
    request is enqueued or issued — the observability layer feeds it to a
    trace counter series.  Default: no hook, no cost. *)

val enqueue :
  t -> now:int -> bank:int -> row:int -> ?write:bool -> id:int -> unit -> unit
(** [write] requests (writebacks) have lower priority: they are drained
    when their bank has no pending read, or when the controller's write
    queue exceeds a drain watermark — so they do not close the rows that
    pending reads are streaming from. *)

val advance : t -> now:int -> completion list
(** Issues, in feasible-start order, every pending request whose start time
    is at most [now].  Idempotent when nothing can start. *)

val next_wake : t -> int option
(** Earliest cycle at which {!advance} would issue at least one request;
    [None] when the queue is empty. *)

val pending : t -> int

val max_pending : t -> int
(** High-water mark of the total queue depth since creation/reset. *)

val served : t -> int

val row_hits : t -> int

val occupancy : t -> at:int -> float
(** Time-averaged number of queued requests over [0, at] — the bank-queue
    utilization metric of Fig. 18. *)

val occ_integral_at : t -> at:int -> float
(** Raw queue-length integral ∫depth·dt advanced to cycle [at] —
    [occupancy] is this divided by [at].  The parallel engine carries the
    integral so a partition's occupancy can be re-based onto the merged
    run's global horizon without a lossy double division. *)

val reset : t -> unit
