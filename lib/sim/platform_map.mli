(** ASCII rendering of the simulated platform.

    Draws the mesh with each node's cluster, controller attachment points
    and the cluster→controller assignment — the pictures of Figs. 1, 8,
    26 and 27 as terminal output.  Used by [simulate --map] and the
    documentation. *)

val render : Config.t -> string
(** A multi-line drawing: one cell per node showing its cluster index,
    [*m] marking the node where controller [m] attaches, plus a legend
    with each cluster's controllers and the average
    distance-to-controller. *)

val render_heat : Config.t -> int array -> string
(** [render_heat cfg values] draws a per-node heat map (8 shades) of the
    given per-node values — used for Fig. 13-style request maps. *)

val render_link_heat : Config.t -> float array -> string
(** [render_link_heat cfg util] draws the mesh with every edge shaded by
    the busier of its two directed links ([util] indexed by dense link id,
    as {!Engine.result}'s [link_utilization]), normalized to the hottest
    link; the header records the absolute peak.  Mesh dimensions and
    chiplet boundaries come from the platform: on a hierarchical machine
    vertical boundaries split the crossing edges with ['|'] and
    horizontal ones rule the spacer row with ['-'] (['+'] at corners);
    flat platforms render exactly as before.  The mesh-contention
    picture behind the paper's network-latency argument. *)
