(** Hand-written lexer for the mini language. *)

type token =
  | IDENT of string
  | INT of int
  | KW_PARAM
  | KW_ARRAY
  | KW_INDEX
  | KW_FOR
  | KW_PARFOR
  | KW_TO
  | KW_IF
  | KW_ELSE
  | LBRACKET
  | RBRACKET
  | LBRACE
  | RBRACE
  | LPAREN
  | RPAREN
  | PLUS
  | MINUS
  | STAR
  | SLASH
  | PERCENT
  | EQUALS
  | LT
  | LE
  | GT
  | GE
  | EQEQ
  | NE
  | SEMI
  | EOF

type spanned = { tok : token; span : Span.t }

exception Error of string * int
(** [Error (message, position)] — legacy wrapper form of a lexical
    diagnostic, raised only by {!tokenize}. *)

val scan : ?file:string -> string -> (spanned list, Diag.t) result
(** Tokenizes a full source string into spanned tokens ending with [EOF].
    Comments run from [//] to end of line or between [/*] and [*/]; an
    unterminated block comment or a stray character yields a located
    diagnostic ([L002] / [L001]) instead of silent truncation. *)

val tokenize : string -> token list
(** Span-free convenience wrapper over {!scan}.  Raises {!Error} on a
    lexical diagnostic. *)

val pp_token : Format.formatter -> token -> unit
