type outcome =
  | Completed of { attempts : int; payload : string }
  | Failed of { attempts : int; reason : string }

type event =
  | Started of { job : int; attempt : int }
  | Retrying of { job : int; attempt : int; reason : string }

let now () = Unix.gettimeofday ()

(* ---- in-process fallback (workers <= 0): the sequential reference ---- *)

let run_inline ~retries ~on_outcome ~on_event ~jobs f =
  Array.init jobs (fun i ->
      let rec go attempt =
        on_event (Started { job = i; attempt });
        let failed reason =
          if attempt > retries then Failed { attempts = attempt; reason }
          else begin
            on_event (Retrying { job = i; attempt; reason });
            go (attempt + 1)
          end
        in
        match f i with
        | Ok payload -> Completed { attempts = attempt; payload }
        | Error reason -> failed reason
        | exception e -> failed (Printexc.to_string e)
      in
      let o = go 1 in
      on_outcome i o;
      o)

(* ---- forked pool ---- *)

type worker = {
  pid : int;
  req : Unix.file_descr;  (** parent's write end of the job queue *)
  rd : Protocol.reader;
  mutable assigned : int option;
  mutable deadline : float;
}

let close_quietly fd = try Unix.close fd with Unix.Unix_error _ -> ()

let rec reap pid =
  match Unix.waitpid [] pid with
  | _ -> ()
  | exception Unix.Unix_error (Unix.EINTR, _, _) -> reap pid
  | exception Unix.Unix_error (Unix.ECHILD, _, _) -> ()

let worker_loop f req_r resp_w =
  let ic = Unix.in_channel_of_descr req_r in
  let rec loop () =
    match Protocol.read_request ic with
    | Some (Protocol.Run i) ->
      let reply =
        match f i with
        | Ok payload -> { Protocol.job = i; ok = true; payload }
        | Error payload -> { Protocol.job = i; ok = false; payload }
        | exception e ->
          { Protocol.job = i; ok = false; payload = Printexc.to_string e }
      in
      Protocol.write_reply resp_w reply;
      loop ()
    | Some Protocol.Quit | None -> exit 0
  in
  (try loop () with _ -> exit 1)

let run ?(workers = 4) ?(timeout_s = 300.) ?(retries = 2) ?(backoff_s = 0.5)
    ?(on_outcome = fun _ _ -> ()) ?(on_event = fun _ -> ()) ~jobs f =
  if jobs = 0 then [||]
  else if workers <= 0 then run_inline ~retries ~on_outcome ~on_event ~jobs f
  else begin
    let prev_sigpipe = Sys.signal Sys.sigpipe Sys.Signal_ignore in
    let outcomes : outcome option array = Array.make jobs None in
    let attempts = Array.make jobs 0 in
    let remaining = ref jobs in
    (* (job, earliest start) — jobs awaiting a worker, retried ones with
       their backoff deadline *)
    let pending = ref (List.init jobs (fun i -> (i, 0.))) in
    let live : worker list ref = ref [] in
    let finalize i o =
      outcomes.(i) <- Some o;
      decr remaining;
      on_outcome i o
    in
    let attempt_failed i reason =
      if attempts.(i) > retries then
        finalize i (Failed { attempts = attempts.(i); reason })
      else begin
        on_event (Retrying { job = i; attempt = attempts.(i); reason });
        let delay = backoff_s *. (2. ** float_of_int (attempts.(i) - 1)) in
        pending := !pending @ [ (i, now () +. delay) ]
      end
    in
    let spawn () =
      flush stdout;
      flush stderr;
      let req_r, req_w = Unix.pipe () in
      let resp_r, resp_w = Unix.pipe () in
      match Unix.fork () with
      | 0 ->
        close_quietly req_w;
        close_quietly resp_r;
        (* drop the parent's ends of every sibling's pipes so a sibling's
           queue actually closes when the parent exits *)
        List.iter
          (fun w ->
            close_quietly w.req;
            close_quietly (Protocol.reader_fd w.rd))
          !live;
        worker_loop f req_r resp_w
      | pid ->
        close_quietly req_r;
        close_quietly resp_w;
        let w =
          {
            pid;
            req = req_w;
            rd = Protocol.reader resp_r;
            assigned = None;
            deadline = infinity;
          }
        in
        live := w :: !live;
        w
    in
    let retire ?victim_reason w =
      (match victim_reason with
      | Some _ -> ( try Unix.kill w.pid Sys.sigkill with Unix.Unix_error _ -> ())
      | None -> ());
      reap w.pid;
      close_quietly w.req;
      close_quietly (Protocol.reader_fd w.rd);
      live := List.filter (fun w' -> w'.pid <> w.pid) !live;
      match w.assigned with
      | Some i ->
        attempt_failed i
          (Option.value victim_reason ~default:"worker exited unexpectedly")
      | None -> ()
    in
    let rec assign_ready () =
      let idle = List.filter (fun w -> w.assigned = None) !live in
      match idle with
      | [] -> ()
      | w :: _ -> (
        let t = now () in
        let ready, waiting = List.partition (fun (_, e) -> e <= t) !pending in
        match ready with
        | [] -> ()
        | (i, _) :: rest ->
          pending := rest @ waiting;
          attempts.(i) <- attempts.(i) + 1;
          (match Protocol.write_request w.req (Protocol.Run i) with
          | () ->
            w.assigned <- Some i;
            w.deadline <- t +. timeout_s;
            on_event (Started { job = i; attempt = attempts.(i) })
          | exception _ ->
            (* the worker died before we could feed it *)
            attempts.(i) <- attempts.(i) - 1;
            pending := (i, 0.) :: !pending;
            retire w);
          assign_ready ())
    in
    let handle_readable w =
      match Protocol.feed w.rd with
      | `Eof -> retire w
      | `Data ->
        let rec drain () =
          match Protocol.next_reply w.rd with
          | None -> ()
          | Some (Error reason) -> retire ~victim_reason:reason w
          | Some (Ok { Protocol.job; ok; payload }) ->
            w.assigned <- None;
            w.deadline <- infinity;
            if ok then
              finalize job (Completed { attempts = attempts.(job); payload })
            else attempt_failed job payload;
            drain ()
        in
        drain ()
    in
    Fun.protect
      ~finally:(fun () ->
        List.iter
          (fun w ->
            (try Protocol.write_request w.req Protocol.Quit with _ -> ());
            close_quietly w.req;
            (* idle workers exit on Quit (running their at_exit hooks);
               busy ones — we only get here busy on an exception — are
               killed so the pool never hangs on shutdown *)
            if w.assigned <> None then (
              try Unix.kill w.pid Sys.sigkill with Unix.Unix_error _ -> ());
            reap w.pid;
            close_quietly (Protocol.reader_fd w.rd))
          !live;
        live := [];
        ignore (Sys.signal Sys.sigpipe prev_sigpipe))
      (fun () ->
        while !remaining > 0 do
          (* keep the pool at strength while unresolved jobs remain *)
          while List.length !live < min workers !remaining do
            ignore (spawn ())
          done;
          assign_ready ();
          let t = now () in
          (* kill overrunning workers *)
          List.iter
            (fun w ->
              if w.assigned <> None && t >= w.deadline then
                retire
                  ~victim_reason:(Printf.sprintf "timeout after %.3gs" timeout_s)
                  w)
            !live;
          if !remaining > 0 then begin
            let next_deadline =
              List.fold_left
                (fun acc w -> if w.assigned <> None then min acc w.deadline else acc)
                infinity !live
            in
            let next_start =
              List.fold_left (fun acc (_, e) -> min acc e) infinity !pending
            in
            let timeout =
              let u = min next_deadline next_start -. now () in
              if u = infinity then 1.0 else Float.max 0.005 (Float.min u 1.0)
            in
            let fds = List.map (fun w -> Protocol.reader_fd w.rd) !live in
            match Unix.select fds [] [] timeout with
            | readable, _, _ ->
              List.iter
                (fun fd ->
                  match
                    List.find_opt (fun w -> Protocol.reader_fd w.rd = fd) !live
                  with
                  | Some w -> handle_readable w
                  | None -> ())
                readable
            | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
          end
        done;
        Array.map
          (function
            | Some o -> o
            | None -> Failed { attempts = 0; reason = "internal: unresolved job" })
          outcomes)
  end
