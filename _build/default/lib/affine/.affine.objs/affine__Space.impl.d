lib/affine/space.ml: Array Format Fun List Vec
