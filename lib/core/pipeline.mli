(** The staged compiler pipeline.

    The pass sequence of the layout-transformation compiler, made
    explicit:

    {v
    parse → check → analyze → solve → mapping → customize → rewrite
          → sites [→ verify] [→ codegen]
    v}

    Every pass has the uniform shape
    [run : input -> (output, Diag.t list) result]; the manager sequences
    them, accumulates diagnostics across passes, and records per-pass
    wall times through {!Obs.Phase_timer}.  A failing pass stops the
    chain but keeps every artifact produced so far, so [--emit] can dump
    the last good stage.  With [verify] on (the default), the inter-pass
    {!Verify} checks run after the rewrite and their violations join the
    diagnostic stream. *)

type source =
  | Source of { file : string; src : string }
  | Program of Lang.Ast.program  (** already-built AST (workload models) *)

type ('a, 'b) pass = {
  name : string;
  run : 'a -> ('b, Lang.Diag.t list) result;
}

val pass : string -> ('a -> ('b, Lang.Diag.t list) result) -> ('a, 'b) pass

type artifacts = {
  mutable program : Lang.Ast.program option;  (** after parse + check *)
  mutable analysis : Lang.Analysis.t option;
  mutable solved : Transform.solved list option;
  mutable cfg : Customize.config option;  (** the chosen mapping *)
  mutable mapping_scores : Mapping_select.scored list option;
      (** full candidate ranking, cheapest first, when the mapping pass
          had more than one candidate to choose from *)
  mutable search : Place_search.outcome option;
      (** placement-search outcome, when [compile] ran with [?search];
          its platform also competes in [mapping_scores] *)
  mutable report : Transform.report option;
  mutable transformed : Lang.Ast.program option;
  mutable sites : Lang.Sites.t option;
      (** access-site table of the transformed program — the legend for
          tagged traces and the attribution aggregator; its ids are the
          ones codegen embeds as [/*s<id>*/] reference tags *)
  mutable c_code : string option;
}

type t = {
  artifacts : artifacts;
  diags : Lang.Diag.t list;  (** sorted; every severity *)
  timer : Obs.Phase_timer.t;
  ok : bool;  (** no error-severity diagnostic was produced *)
}

val compile :
  ?verify:bool ->
  ?profile:(string -> (Affine.Vec.t * Affine.Vec.t) list) ->
  ?threshold:float ->
  ?bank_pressure:float ->
  ?platform:Platform.t ->
  ?search:Place_search.params ->
  ?candidates:Customize.config list ->
  ?codegen:string ->
  cfg:Customize.config ->
  source ->
  t
(** Runs the full pipeline.  The mapping pass chooses among candidate
    cluster mappings by estimated cost under [bank_pressure] (default 1.0;
    calibrate it from a profiled run with
    {!Mapping_select.bank_pressure_of_stats}): explicit [candidates] if
    given, else everything [platform] can realize
    ({!Platform.candidates} — M1, M2 and the Fig. 27 8/16-MC
    configurations the controller budget admits), else the single [cfg].
    With [search] (and a [platform]), {!Place_search.search} runs first
    at the same [bank_pressure]; its outcome lands in [artifacts.search]
    and as C004 notes (winning placement + trajectory), and the searched
    machine competes with the presets in the mapping pass — duplicate
    cluster names in the C002 cost table are disambiguated as
    [cluster@placement].  The full ranking lands in
    [artifacts.mapping_scores] and as a C002 note; arrays kept unmapped
    for a user-fixable reason get C003 warnings.  [codegen] names the
    emitted C kernel, enables the codegen pass, and (with [verify]) the
    V007 replay check. *)

(** {2 Stage dumps} *)

type stage =
  | Ast_
  | Analysis_
  | Solve
  | Mapping
  | Report
  | Transformed
  | Sites_
  | C

val stages : (string * stage) list
(** CLI name → stage: ast, analysis, solve, mapping, report,
    transformed, sites, c. *)

val stage_names : string list

val stage_of_string : string -> stage option

val emit : t -> stage -> string option
(** Printable dump of one stage's artifact, when the pipeline got that
    far. *)
