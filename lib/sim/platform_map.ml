let render (cfg : Config.t) =
  let buf = Buffer.create 1024 in
  let topo = (Config.topo cfg) in
  let cluster = (Config.cluster cfg) in
  let placement = (Config.placement cfg) in
  let num_mcs = Core.Cluster.num_mcs cluster in
  let mc_at = Array.make (Noc.Topology.nodes topo) (-1) in
  for m = 0 to num_mcs - 1 do
    mc_at.(Noc.Placement.mc_node placement m) <- m
  done;
  let chiplet_note =
    match topo.Noc.Topology.chiplets with
    | None -> ""
    | Some g ->
      Printf.sprintf ", %dx%d chiplets" g.Noc.Topology.grid_x
        g.Noc.Topology.grid_y
  in
  Buffer.add_string buf
    (Printf.sprintf "%dx%d mesh%s, mapping %s (cells show cluster; *m = controller m)\n"
       topo.Noc.Topology.width topo.Noc.Topology.height chiplet_note
       cluster.Core.Cluster.name);
  for y = 0 to topo.Noc.Topology.height - 1 do
    Buffer.add_string buf "  ";
    for x = 0 to topo.Noc.Topology.width - 1 do
      let node = Noc.Topology.node_of_coord topo (Noc.Coord.make x y) in
      let cl = Core.Cluster.cluster_of_node cluster topo node in
      if mc_at.(node) >= 0 then
        Buffer.add_string buf (Printf.sprintf "[%X*%X]" cl mc_at.(node))
      else Buffer.add_string buf (Printf.sprintf "[ %X ]" cl)
    done;
    Buffer.add_char buf '\n'
  done;
  for j = 0 to Core.Cluster.num_clusters cluster - 1 do
    Buffer.add_string buf
      (Printf.sprintf "  cluster %d -> controller(s) %s\n" j
         (String.concat ", "
            (List.map string_of_int (Core.Cluster.mcs_of_cluster cluster j))))
  done;
  Buffer.add_string buf
    (Printf.sprintf "  average distance to the nearest controller: %.2f hops\n"
       (Noc.Placement.avg_distance placement topo));
  Buffer.contents buf

let shades = [| ' '; '.'; ':'; '-'; '='; '+'; '*'; '#' |]

(* Per-link heat: nodes as [o], each mesh edge drawn with a shade picked
   from the busier of its two directed links, normalized to the hottest
   link (the interesting picture is the relative contention profile; the
   legend records the absolute peak). *)
let render_link_heat (cfg : Config.t) util =
  let topo = Config.topo cfg in
  if Array.length util <> Noc.Topology.num_link_ids topo then
    invalid_arg "Platform_map.render_link_heat";
  let w = topo.Noc.Topology.width and h = topo.Noc.Topology.height in
  let node x y = Noc.Topology.node_of_coord topo (Noc.Coord.make x y) in
  let link n dir =
    util.(Noc.Topology.link_id topo { Noc.Topology.from_node = n; dir })
  in
  let horiz x y =
    Float.max (link (node x y) Noc.Topology.East)
      (link (node (x + 1) y) Noc.Topology.West)
  in
  let vert x y =
    Float.max (link (node x y) Noc.Topology.South)
      (link (node x (y + 1)) Noc.Topology.North)
  in
  let vmax = Array.fold_left Float.max 0. util in
  let shade v =
    if vmax <= 0. then shades.(0)
    else shades.(int_of_float (v /. vmax *. float_of_int (Array.length shades - 1)))
  in
  (* chiplet boundaries, derived from the platform: a '|' splits the two
     shade chars of an east-west edge crossing a vertical boundary, and
     the vertical-link spacer row under a horizontal boundary uses '-'
     separators ('+' where both meet).  Flat platforms draw nothing. *)
  let vert_boundary, horiz_boundary, chiplet_note =
    match topo.Noc.Topology.chiplets with
    | None -> ((fun _ -> false), (fun _ -> false), "")
    | Some g ->
      let nx = w / g.Noc.Topology.grid_x
      and ny = h / g.Noc.Topology.grid_y in
      ( (fun x -> (x + 1) mod nx = 0),
        (fun y -> (y + 1) mod ny = 0),
        Printf.sprintf ", %dx%d chiplets" g.Noc.Topology.grid_x
          g.Noc.Topology.grid_y )
  in
  let buf = Buffer.create 512 in
  Buffer.add_string buf
    (Printf.sprintf
       "  per-link utilization, peak %.4f (shades relative to peak%s)\n"
       vmax chiplet_note);
  for y = 0 to h - 1 do
    Buffer.add_string buf "  ";
    for x = 0 to w - 1 do
      Buffer.add_char buf 'o';
      if x < w - 1 then begin
        let c = shade (horiz x y) in
        Buffer.add_char buf c;
        if vert_boundary x then Buffer.add_char buf '|';
        Buffer.add_char buf c
      end
    done;
    Buffer.add_char buf '\n';
    if y < h - 1 then begin
      Buffer.add_string buf "  ";
      let hb = horiz_boundary y in
      for x = 0 to w - 1 do
        Buffer.add_char buf (shade (vert x y));
        if x < w - 1 then
          Buffer.add_string buf
            (match (hb, vert_boundary x) with
            | false, false -> "  "
            | false, true -> " | "
            | true, false -> "--"
            | true, true -> "-+-")
      done;
      Buffer.add_char buf '\n'
    end
  done;
  Buffer.contents buf

let render_heat (cfg : Config.t) values =
  let topo = (Config.topo cfg) in
  if Array.length values <> Noc.Topology.nodes topo then
    invalid_arg "Platform_map.render_heat";
  let buf = Buffer.create 512 in
  let vmax = Array.fold_left max 1 values in
  for y = 0 to topo.Noc.Topology.height - 1 do
    Buffer.add_string buf "  ";
    for x = 0 to topo.Noc.Topology.width - 1 do
      let v = values.(Noc.Topology.node_of_coord topo (Noc.Coord.make x y)) in
      let level = v * (Array.length shades - 1) / vmax in
      let c = shades.(level) in
      Buffer.add_char buf c;
      Buffer.add_char buf c
    done;
    Buffer.add_char buf '\n'
  done;
  Buffer.contents buf
