(* report — turn a stats-JSON document (simulate --stats-json, or a sweep
   job's result file) into a self-contained report: headline counters,
   the off-chip attribution table, ASCII mesh/bank heatmaps, and — with
   the compiler's --diag-json — the candidate-mapping cost table.

     simulate apsi --attr --stats-json run.json
     report run.json -o run.md
     report run.json --format html --diag diags.json -o run.html *)

open Cmdliner

let read_json path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  Obs.Json.of_string s

let run stats_path diag_path format out title =
  Cli.guard ~name:"report" @@ fun () ->
  match read_json stats_path with
  | Error e ->
    Printf.eprintf "report: %s: %s\n" stats_path e;
    Cli.user_error
  | Ok doc -> (
    let diags =
      match diag_path with
      | None -> Ok None
      | Some p -> (
        match read_json p with
        | Ok d -> Ok (Some d)
        | Error e ->
          Printf.eprintf "report: %s: %s\n" p e;
          Error ())
    in
    match diags with
    | Error () -> Cli.user_error
    | Ok diags -> (
      match Obs.Report.build ?diags doc with
      | Error e ->
        Printf.eprintf "report: %s\n" e;
        Cli.user_error
      | Ok sections ->
        let title =
          match title with
          | Some t -> t
          | None -> (
            match Obs.Json.member "app" doc with
            | Some (Obs.Json.String a) -> "off-chip report: " ^ a
            | _ -> "off-chip report")
        in
        let body =
          match format with
          | `Md -> Obs.Report.to_markdown ~title sections
          | `Html -> Obs.Report.to_html ~title sections
        in
        (match out with
        | None -> print_string body
        | Some path ->
          let oc = open_out path in
          output_string oc body;
          close_out oc;
          Printf.printf "report written to %s\n" path);
        Cli.ok))

let stats_arg =
  Arg.(
    required
    & pos 0 (some file) None
    & info [] ~docv:"STATS.json"
        ~doc:"Stats-JSON document of one run (simulate --stats-json).")

let diag_arg =
  Arg.(
    value
    & opt (some file) None
    & info [ "diag" ] ~docv:"FILE"
        ~doc:
          "Compiler diagnostics (occ --diag-json) to fold in: the C002 \
           candidate-mapping cost table and C003 layout warnings.")

let format_arg =
  Arg.(
    value
    & opt (enum [ ("md", `Md); ("markdown", `Md); ("html", `Html) ]) `Md
    & info [ "format" ] ~docv:"FMT"
        ~doc:"Output format: $(b,md) (default) or $(b,html).")

let out_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "o"; "output" ] ~docv:"FILE"
        ~doc:"Write the report to FILE (default: stdout).")

let title_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "title" ] ~docv:"TITLE"
        ~doc:"Report title (default: derived from the document's app).")

let cmd =
  let doc = "render a run's stats-JSON as a markdown or HTML report" in
  Cmd.v
    (Cmd.info "report" ~doc)
    Term.(const run $ stats_arg $ diag_arg $ format_arg $ out_arg $ title_arg)

let () = exit (Cmd.eval' cmd)
