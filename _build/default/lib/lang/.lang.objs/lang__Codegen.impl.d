lib/lang/codegen.ml: Ast Buffer List Printf String
