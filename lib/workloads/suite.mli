(** The 13-application suite of the paper's evaluation: all SPEC OMP
    applications except equake, plus hpccg, minighost and minimd from
    Mantevo. *)

val all : App.t list
(** In the paper's Figure order. *)

val by_name : string -> App.t
(** A suite app by name, or a generated {!Gemm} instance for names of
    the gemm family ([gemm], [gemm-n<N>t<T>[p<P>]]).  Raises [Not_found]
    for unknown names and [Invalid_argument] for a gemm spec with bad
    knobs (the message names the offending knob). *)

val names : string list
