type t = {
  name : string;
  width : int;
  height : int;
  cx : int;
  cy : int;
  nx : int;
  ny : int;
  k : int;
}

let make_result ~name ~width ~height ~cx ~cy ~k =
  if cx <= 0 || cy <= 0 || k <= 0 then Error "Cluster.make"
  else if width mod cx <> 0 || height mod cy <> 0 then
    Error "Cluster.make: clusters must tile the mesh evenly"
  else Ok { name; width; height; cx; cy; nx = width / cx; ny = height / cy; k }

let num_clusters c = c.cx * c.cy

let num_mcs c = num_clusters c * c.k

let num_cores c = c.width * c.height

let cores_per_cluster c = c.nx * c.ny

let cluster_of_coord c (p : Noc.Coord.t) = ((p.x / c.nx) * c.cy) + (p.y / c.ny)

let cluster_of_node c topo n = cluster_of_coord c (Noc.Topology.coord_of_node topo n)

let mcs_of_cluster c j = List.init c.k (fun i -> (j * c.k) + i)

let cluster_of_mc c m = m / c.k

(* Thread t decomposes as t = ((Cx·nx + x_in)·cy + Cy)·ny + y_in, matching
   the strip-mining order of R(r_v). *)
let node_of_thread c topo t =
  let y_in = t mod c.ny in
  let cyi = t / c.ny mod c.cy in
  let x_in = t / (c.ny * c.cy) mod c.nx in
  let cxi = t / (c.ny * c.cy * c.nx) mod c.cx in
  Noc.Topology.node_of_coord topo
    (Noc.Coord.make ((cxi * c.nx) + x_in) ((cyi * c.ny) + y_in))

let thread_of_node c topo n =
  let p = Noc.Topology.coord_of_node topo n in
  let cxi = p.x / c.nx and x_in = p.x mod c.nx in
  let cyi = p.y / c.ny and y_in = p.y mod c.ny in
  ((((cxi * c.nx) + x_in) * c.cy + cyi) * c.ny) + y_in

let centroid_of_cluster c j =
  let cxi = j / c.cy and cyi = j mod c.cy in
  Noc.Coord.make ((cxi * c.nx) + (c.nx / 2)) ((cyi * c.ny) + (c.ny / 2))

let m1 ~width ~height = make_result ~name:"M1" ~width ~height ~cx:2 ~cy:2 ~k:1

let m2 ~width ~height = make_result ~name:"M2" ~width ~height ~cx:2 ~cy:1 ~k:2

let with_mcs_result ~width ~height ~mcs =
  (* as square a cluster grid as evenly tiles the mesh *)
  let rec best_split d best =
    if d > mcs then best
    else
      let ok = mcs mod d = 0 && width mod d = 0 && height mod (mcs / d) = 0 in
      let score = abs (d - (mcs / d)) in
      let best =
        match best with
        | Some (_, s) when s <= score -> best
        | _ -> if ok then Some (d, score) else best
      in
      best_split (d + 1) best
  in
  match best_split 1 None with
  | None -> Error "Cluster.with_mcs: no even tiling"
  | Some (cx, _) ->
    make_result ~name:(Printf.sprintf "M1x%d" mcs) ~width ~height ~cx
      ~cy:(mcs / cx) ~k:1

let pp ppf c =
  Format.fprintf ppf "%s: %dx%d mesh, %dx%d clusters of %dx%d cores, k=%d"
    c.name c.width c.height c.cx c.cy c.nx c.ny c.k
