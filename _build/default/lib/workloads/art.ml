(** art (SPEC OMP): adaptive resonance theory neural network — F1/F2
    layer weight products and weight updates.  The weight update is
    guarded by the vigilance test, the conditional the pass handles by
    conservatively assuming both branches execute (Section 4). *)

let app =
  App.make ~name:"art"
    ~description:"ART neural net: weight products and updates"
    {|
param M0 = 512;
param N0 = 288;
array W[M0][N0];
array IN0[N0];
array OUT0[M0];
// column-parallel sparse init: bad for first-touch
parfor n0 = 0 to N0/16-1 {
  IN0[16*n0] = n0;
  for m = 0 to M0-1 {
    W[m][16*n0] = m + n0;
  }
}
for t0 = 0 to 1 {
  parfor m = 0 to M0-1 {
    OUT0[m] = 0;
    for n = 0 to N0-1 {
      OUT0[m] = OUT0[m] + W[m][n]*IN0[n];
    }
  }
  // vigilance test: resonating rows learn, the rest decay
  parfor m = 0 to M0-1 {
    for n = 0 to N0-1 {
      if (m % 4 == 0) {
        W[m][n] = W[m][n] + OUT0[m]*IN0[n];
      } else {
        W[m][n] = W[m][n] - OUT0[m];
      }
    }
  }
}
|}
