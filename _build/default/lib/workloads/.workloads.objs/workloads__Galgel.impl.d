lib/workloads/galgel.ml: App
