(** Off-chip attribution aggregator: per-site × per-controller × per-bank
    access counters, with per-site hop and queue-latency histograms.

    The engine feeds one {!record} per measured off-chip access (and one
    {!record_queue} when the controller completes it); a run's counters
    then answer "which source reference loaded which controller/bank, from
    how far, with how much queueing" — the paper's argument, per access
    site instead of in aggregate.

    This layer cannot see the compiler's AST (it sits below [lang]), so
    site metadata arrives as plain strings via {!site}; the simulator
    builds it from a {e Lang.Sites} table.  Site id [-1] (an access the
    tagger could not attribute) is kept in a separate "unknown" row rather
    than dropped, so the cube's total always equals the engine's off-chip
    counter.

    Recording is O(1) array stores.  {!snapshot}s are plain data:
    {!merge} composes runs (sweep shards, multi-domain platforms) and is
    associative and commutative; it refuses snapshots of different
    platform shapes or site tables as a [Result], per the repo's
    no-raising-API policy. *)

type site = {
  array : string;
  write : bool;
  phase : int;
  loc : string;  (** rendered source location *)
}

type t

type snapshot = {
  sites : site array;
  mcs : int;
  banks : int;
  max_hops : int;
  counts : int array;
      (** [(nsites + 1) * mcs * banks], row-major site, mc, bank; the
          extra trailing site row is the unknown-site bucket *)
  hops : int array;  (** [(nsites + 1) * (max_hops + 1)] *)
  queue_counts : int array;  (** [(nsites + 1) * queue_buckets], log2 *)
  queue_sum : int array;  (** per site: total queue cycles *)
  queue_total : int array;  (** per site: completions observed *)
}

val queue_buckets : int

val create : sites:site array -> mcs:int -> banks:int -> max_hops:int -> t

val record : t -> site:int -> mc:int -> bank:int -> hops:int -> unit
(** One off-chip access from [site] served by ([mc], [bank]), whose
    request leg traversed [hops] links.  Out-of-range sites land in the
    unknown row; hops clamp into the last bucket. *)

val record_queue : t -> site:int -> queue:int -> unit
(** Queue delay (cycles) of one completed off-chip access from [site]. *)

val total : t -> int
(** Sum of the whole cube = accesses recorded so far. *)

val snapshot : t -> snapshot

val merge : snapshot -> snapshot -> (snapshot, string) result
(** Element-wise sum.  [Error] when shapes or site tables differ. *)

val create_like : t -> t
(** A fresh all-zero cube with the same site table and platform shape —
    each partition of a parallel run records into its own clone. *)

val absorb : t -> snapshot -> (unit, string) result
(** Adds [snapshot] into the live cube in place ({!merge}'s sum, without
    leaving [t]'s identity — callers holding [t] see the combined run). *)

(** {2 Snapshot readers} *)

val snap_total : snapshot -> int

val site_count : snapshot -> int -> int
(** Total accesses of one site (index [length sites] = unknown row). *)

val cell : snapshot -> site:int -> mc:int -> bank:int -> int

val site_mc_count : snapshot -> site:int -> mc:int -> int

val bank_load : snapshot -> int array array
(** [(bank_load s).(m).(b)] = accesses served by controller [m], bank [b],
    summed over sites — the bank-pressure matrix behind the heatmap. *)

val to_json : snapshot -> Json.t

val of_json : Json.t -> (snapshot, string) result
(** Inverse of {!to_json} (used by the report tool on stats-JSON docs). *)

val pp_table : Format.formatter -> snapshot -> unit
(** The attribution table, byte-stable for golden tests: one row per site
    with its per-controller split, average request hops and average queue
    delay, plus a totals row. *)
