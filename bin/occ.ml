(* occ — the off-chip access localization compiler driver.

   Parses a mini-language program (a file, or one of the built-in
   application models), runs the layout-transformation pass of the paper
   (Algorithm 1) for the requested platform, and prints the transformed
   program together with the per-array report.

     occ examples/jacobi.mc
     occ --app apsi --l2 shared --report
     occ --app hpccg --interleave page --layouts *)

open Cmdliner

let read_program file app =
  match (file, app) with
  | Some f, None -> (
    match Lang.Parser.parse_file f with
    | program -> Ok (program, None)
    | exception Lang.Parser.Error e -> Error (f ^ ": parse error: " ^ e)
    | exception Lang.Lexer.Error (e, pos) ->
      Error (Printf.sprintf "%s: lex error at offset %d: %s" f pos e)
    | exception Sys_error e -> Error e)
  | None, Some name -> (
    match Workloads.Suite.by_name name with
    | app -> Ok (Workloads.App.program app, Some app)
    | exception Not_found ->
      Error
        (Printf.sprintf "unknown application %S (known: %s)" name
           (String.concat ", " Workloads.Suite.names)))
  | Some _, Some _ -> Error "give either a file or --app, not both"
  | None, None -> Error "give a source file or --app NAME"

let build_config ~l2 ~interleave ~mapping ~width ~height =
  let cfg = Sim.Config.mesh ~width ~height (Sim.Config.default ()) in
  let cfg =
    match mapping with
    | "M1" -> cfg
    | "M2" -> Sim.Config.with_cluster cfg (Core.Cluster.m2 ~width ~height)
    | m -> (
      match int_of_string_opt m with
      | Some mcs ->
        Sim.Config.with_cluster cfg (Core.Cluster.with_mcs ~width ~height ~mcs)
      | None -> invalid_arg ("unknown mapping " ^ m))
  in
  let cfg =
    {
      cfg with
      Sim.Config.l2_org =
        (match l2 with
        | "private" -> Sim.Config.Private_l2
        | "shared" -> Sim.Config.Shared_l2
        | s -> invalid_arg ("unknown L2 organization " ^ s));
      interleaving =
        (match interleave with
        | "line" -> Dram.Address_map.Line_interleaved
        | "page" -> Dram.Address_map.Page_interleaved
        | s -> invalid_arg ("unknown interleaving " ^ s));
    }
  in
  Sim.Config.customize_config cfg

let why_kept_to_string = function
  | Core.Transform.Index_array -> "index array (never transformed)"
  | Core.Transform.No_parallel_reference -> "no parallel affine reference"
  | Core.Transform.No_solution -> "only the trivial mapping exists"
  | Core.Transform.Bad_approximation f ->
    Printf.sprintf "indexed-access fit %.2f above threshold" f

(* --explain: one block per array saying what Algorithm 1 decided and why,
   with the reference weight the chosen layout localizes. *)
let explain_report (rep : Core.Transform.report) =
  List.iter
    (fun (d : Core.Transform.decision) ->
      let name = d.Core.Transform.info.Lang.Analysis.decl.Lang.Ast.name in
      let extents = d.Core.Transform.info.Lang.Analysis.extents in
      let dims =
        String.concat "x" (Array.to_list (Array.map string_of_int extents))
      in
      let pct =
        if d.Core.Transform.total_weight = 0 then 0.
        else
          100.
          *. float_of_int d.Core.Transform.satisfied_weight
          /. float_of_int d.Core.Transform.total_weight
      in
      Format.printf "// %-10s [%s] " name dims;
      (match d.Core.Transform.kept with
      | None ->
        Format.printf "OPTIMIZED  refs satisfied %d/%d (%.0f%%)@,//   %a@."
          d.Core.Transform.satisfied_weight d.Core.Transform.total_weight pct
          Core.Layout.pp d.Core.Transform.layout
      | Some why ->
        Format.printf "kept       %s@." (why_kept_to_string why)))
    rep.Core.Transform.decisions

let run file app l2 interleave mapping width height report layouts explain
    timings emit_c =
  let timer = Obs.Phase_timer.create () in
  match Obs.Phase_timer.time timer "parse" (fun () -> read_program file app) with
  | Error e ->
    prerr_endline ("occ: " ^ e);
    1
  | Ok (program, app) -> (
    match build_config ~l2 ~interleave ~mapping ~width ~height with
    | exception Invalid_argument e ->
      prerr_endline ("occ: " ^ e);
      1
    | ccfg ->
      let analysis =
        Obs.Phase_timer.time timer "analysis" (fun () ->
            Lang.Analysis.analyze program)
      in
      let profile =
        Option.map
          (fun a arr -> Workloads.Profile.for_transform a analysis arr)
          app
      in
      let rep =
        Obs.Phase_timer.time timer "algorithm1" (fun () ->
            Core.Transform.run ?profile ccfg analysis)
      in
      if report then Format.printf "// %a@." Core.Transform.pp_report rep;
      if explain then explain_report rep;
      if layouts then
        List.iter
          (fun d ->
            if d.Core.Transform.optimized then
              Format.printf "// %a@." Core.Layout.pp d.Core.Transform.layout)
          rep.Core.Transform.decisions;
      let transformed =
        Obs.Phase_timer.time timer "codegen" (fun () ->
            Core.Transform.rewrite_program rep program)
      in
      (match emit_c with
      | Some path -> (
        try
          Obs.Phase_timer.time timer "codegen" (fun () ->
              Lang.Codegen.emit_to_file ~name:"kernel" path transformed);
          Format.printf "// C code written to %s@." path
        with Sys_error e ->
          Printf.eprintf "occ: cannot write C output: %s\n" e;
          exit 1)
      | None -> ());
      Format.printf "%a@." Lang.Ast.pp_program transformed;
      if timings then Format.printf "%a@." Obs.Phase_timer.pp timer;
      0)

let file_arg =
  Arg.(value & pos 0 (some file) None & info [] ~docv:"FILE" ~doc:"Source file.")

let app_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "app" ] ~docv:"NAME" ~doc:"Use a built-in application model.")

let l2 =
  Arg.(
    value & opt string "private"
    & info [ "l2" ] ~docv:"ORG" ~doc:"L2 organization: private or shared.")

let interleave =
  Arg.(
    value & opt string "line"
    & info [ "interleave" ] ~docv:"GRAN" ~doc:"Interleaving: line or page.")

let mapping =
  Arg.(
    value & opt string "M1"
    & info [ "mapping" ] ~docv:"MAP"
        ~doc:"L2-to-MC mapping: M1, M2, or a controller count (8, 16).")

let width =
  Arg.(value & opt int 8 & info [ "width" ] ~docv:"W" ~doc:"Mesh width.")

let height =
  Arg.(value & opt int 8 & info [ "height" ] ~docv:"H" ~doc:"Mesh height.")

let report =
  Arg.(value & flag & info [ "report" ] ~doc:"Print the per-array report.")

let layouts =
  Arg.(value & flag & info [ "layouts" ] ~doc:"Print the chosen layouts.")

let explain =
  Arg.(
    value & flag
    & info [ "explain" ]
        ~doc:
          "Print, for every array, what Algorithm 1 decided and why: the \
           chosen layout and the reference weight it satisfies, or the \
           reason the array kept its original layout.")

let timings =
  Arg.(
    value & flag
    & info [ "timings" ]
        ~doc:"Print per-phase wall times (parse, analysis, algorithm1, codegen).")

let emit_c =
  Arg.(
    value
    & opt (some string) None
    & info [ "emit-c" ] ~docv:"FILE"
        ~doc:"Also write the transformed program as C with OpenMP pragmas.")

let cmd =
  let doc = "compiler-guided off-chip access localization (PLDI 2015)" in
  Cmd.v
    (Cmd.info "occ" ~doc)
    Term.(
      const run $ file_arg $ app_arg $ l2 $ interleave $ mapping $ width
      $ height $ report $ layouts $ explain $ timings $ emit_c)

let () = exit (Cmd.eval' cmd)
