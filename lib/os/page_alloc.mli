(** Virtual-to-physical translation and page-allocation policies.

    Under cache-line interleaving the MC-selection bits lie inside the page
    offset, so translation is irrelevant to controller choice and frames
    are handed out sequentially.  Under page interleaving the frame number
    decides the controller, and the policy matters:

    - {!Hardware_interleaved}: consecutive virtual pages rotate over
      controllers — the paper's unoptimized page-interleaved baseline.
    - {!First_touch}: the page is placed on the controller of the cluster
      whose node touches it first (the OS baseline of Section 6.3, [20]).
    - {!Mc_aware}: the compiler communicates the desired controller for
      the virtual pages of the arrays it transformed (madvise-style); the
      allocator honours the hint, placing unhinted pages (untransformed
      arrays, index arrays) by first touch — the compiler/OS combination
      the paper's Section 6.4 suggests.  When the hinted controller's
      memory is full an alternate is used, so no page faults are added
      (Section 5.3).

    The allocator is shared across tenants in the consolidation server:
    each controller's pool is bounded by [frames_per_mc] {e live} frames
    (reclaimed frames are reused before the bump pointer advances, so a
    departed tenant's memory really comes back), and every policy spills
    to an alternate controller — counting a fallback — when the chosen
    controller is full. *)

type policy =
  | Hardware_interleaved
  | First_touch of (int -> int)
      (** [node → cluster MC] for the first-touching node *)
  | Mc_aware of { desired : int -> int option; fallback : int -> int }
      (** [desired vpage] from the layout; [fallback node] is the
          first-touch cluster controller for unhinted pages *)

type t

val create :
  map:Dram.Address_map.t -> policy:policy -> ?frames_per_mc:int -> unit -> t
(** [frames_per_mc] bounds each controller's pool of live frames
    (default: unbounded in practice, 1 GB per controller as in Table 1's
    4 GB capacity). *)

val translate : t -> node:int -> vaddr:int -> int
(** Physical address; allocates the page on first touch.  [node] is the
    requesting mesh node (used by first-touch). *)

val translate_owned : t -> owner:int -> node:int -> vaddr:int -> int
(** Like {!translate}, but charges any fallback allocation this access
    triggers to [owner] (a tenant/job id; see
    {!fallback_allocations_of}).  [owner < 0] charges nobody —
    [translate] is [translate_owned ~owner:(-1)]. *)

val free_region : t -> first_vpage:int -> last_vpage:int -> int
(** Unmaps every allocated page in the inclusive virtual-page range and
    returns the frames to their controllers' free lists (tenant
    departure).  Returns the number of pages actually freed; unallocated
    pages in the range are skipped. *)

val mc_of_vpage : t -> int -> int option
(** Controller currently holding a virtual page, if allocated (page
    interleaving only — under line interleaving pages span all MCs). *)

val pages_allocated : t -> int
(** Pages currently mapped (freed pages no longer count). *)

val fallback_allocations : t -> int
(** Pages that could not be placed on their desired controller. *)

val fallback_allocations_of : t -> owner:int -> int
(** Fallbacks charged to one owner tag via {!translate_owned}. *)

val reset : t -> unit
