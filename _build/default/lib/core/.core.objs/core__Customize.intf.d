lib/core/customize.mli: Affine Cluster Layout Noc
