(* Tests for the OS substrate: translation and page-allocation policies. *)

module Address_map = Dram.Address_map
module Page_alloc = Os_sim.Page_alloc

let line_map = Address_map.make ~interleaving:Address_map.Line_interleaved ~num_mcs:4 ()

let page_map = Address_map.make ~interleaving:Address_map.Page_interleaved ~num_mcs:4 ()

let test_translation_stable () =
  let pa = Page_alloc.create ~map:page_map ~policy:Page_alloc.Hardware_interleaved () in
  let p1 = Page_alloc.translate pa ~node:0 ~vaddr:12345 in
  let p2 = Page_alloc.translate pa ~node:9 ~vaddr:12345 in
  Alcotest.(check int) "same vaddr same paddr" p1 p2;
  Alcotest.(check int) "page offset preserved" (12345 mod 4096) (p1 mod 4096);
  let q = Page_alloc.translate pa ~node:0 ~vaddr:(12345 + 4096) in
  Alcotest.(check bool) "different page different frame" true (q / 4096 <> p1 / 4096);
  Alcotest.(check int) "two pages allocated" 2 (Page_alloc.pages_allocated pa)

let test_line_interleaved_mode () =
  (* under line interleaving the MC bits are inside the page offset *)
  let pa = Page_alloc.create ~map:line_map ~policy:Page_alloc.Hardware_interleaved () in
  let paddr = Page_alloc.translate pa ~node:3 ~vaddr:(4096 + 256) in
  Alcotest.(check int) "controller decided by the offset bits" 1
    (Address_map.mc_of_paddr line_map paddr);
  Alcotest.(check (option int)) "no per-page controller" None
    (Page_alloc.mc_of_vpage pa 1)

let test_hardware_interleaved_rotation () =
  (* allocation-order rotation models sequential frame allocation *)
  let pa = Page_alloc.create ~map:page_map ~policy:Page_alloc.Hardware_interleaved () in
  let mcs =
    List.init 8 (fun i ->
        let paddr = Page_alloc.translate pa ~node:0 ~vaddr:(i * 4096) in
        Address_map.mc_of_paddr page_map paddr)
  in
  (* all four controllers are used *)
  Alcotest.(check int) "all controllers used" 4
    (List.length (List.sort_uniq compare mcs))

let test_first_touch () =
  let cluster_mc node = node / 16 in
  let pa = Page_alloc.create ~map:page_map ~policy:(Page_alloc.First_touch cluster_mc) () in
  let paddr = Page_alloc.translate pa ~node:20 ~vaddr:0 in
  Alcotest.(check int) "page on first toucher's controller" 1
    (Address_map.mc_of_paddr page_map paddr);
  (* later touches from other nodes do not move it *)
  let paddr2 = Page_alloc.translate pa ~node:55 ~vaddr:8 in
  Alcotest.(check int) "sticky placement" (paddr + 8) paddr2;
  Alcotest.(check (option int)) "vpage controller" (Some 1) (Page_alloc.mc_of_vpage pa 0)

let test_mc_aware () =
  let pa =
    Page_alloc.create ~map:page_map
      ~policy:
        (Page_alloc.Mc_aware
           { desired = (fun vpage -> Some ((vpage + 2) mod 4));
             fallback = (fun _ -> 0) })
      ()
  in
  for v = 0 to 7 do
    let paddr = Page_alloc.translate pa ~node:0 ~vaddr:(v * 4096) in
    Alcotest.(check int)
      (Printf.sprintf "page %d honored" v)
      ((v + 2) mod 4)
      (Address_map.mc_of_paddr page_map paddr)
  done;
  Alcotest.(check int) "no fallbacks" 0 (Page_alloc.fallback_allocations pa)

let test_mc_aware_fallback () =
  (* 2 frames per controller: the third page desiring MC0 must spill to an
     alternate controller instead of faulting (Section 5.3) *)
  let pa =
    Page_alloc.create ~map:page_map
      ~policy:
        (Page_alloc.Mc_aware
           { desired = (fun _ -> Some 0); fallback = (fun _ -> 0) })
      ~frames_per_mc:2 ()
  in
  let mcs =
    List.init 6 (fun v ->
        Address_map.mc_of_paddr page_map (Page_alloc.translate pa ~node:0 ~vaddr:(v * 4096)))
  in
  Alcotest.(check (list int)) "first two honored, rest spill" [ 0; 0; 1; 1; 2; 2 ] mcs;
  Alcotest.(check int) "fallbacks counted" 4 (Page_alloc.fallback_allocations pa)

let test_mc_aware_fallback_policy () =
  (* unhinted pages are placed by first touch (the hybrid of Section 6.4) *)
  let pa =
    Page_alloc.create ~map:page_map
      ~policy:
        (Page_alloc.Mc_aware
           { desired = (fun vpage -> if vpage < 2 then Some 3 else None);
             fallback = (fun node -> node / 16) })
      ()
  in
  let mc v node = Address_map.mc_of_paddr page_map (Page_alloc.translate pa ~node ~vaddr:(v * 4096)) in
  Alcotest.(check int) "hinted page honored" 3 (mc 0 0);
  Alcotest.(check int) "unhinted page by first touch" 2 (mc 5 40)

let test_free_region_reclaim () =
  (* a departing tenant's frames refill its controller: with MC0's two
     frames both taken, freeing one page lets the next allocation honor
     the desired controller again instead of spilling *)
  let pa =
    Page_alloc.create ~map:page_map
      ~policy:
        (Page_alloc.Mc_aware
           { desired = (fun _ -> Some 0); fallback = (fun _ -> 0) })
      ~frames_per_mc:2 ()
  in
  let mc v = Address_map.mc_of_paddr page_map (Page_alloc.translate pa ~node:0 ~vaddr:(v * 4096)) in
  Alcotest.(check int) "first page on MC0" 0 (mc 0);
  Alcotest.(check int) "second page on MC0" 0 (mc 1);
  Alcotest.(check int) "freed one page" 1
    (Page_alloc.free_region pa ~first_vpage:0 ~last_vpage:0);
  Alcotest.(check int) "one live page left" 1 (Page_alloc.pages_allocated pa);
  Alcotest.(check int) "reclaimed frame honors the hint again" 0 (mc 7);
  Alcotest.(check int) "no fallbacks along the way" 0
    (Page_alloc.fallback_allocations pa);
  Alcotest.(check int) "empty range frees nothing" 0
    (Page_alloc.free_region pa ~first_vpage:100 ~last_vpage:120)

let test_first_touch_full_falls_back () =
  (* a full controller under first touch must spill to a neighbor, not
     over-allocate past its frame budget *)
  let pa =
    Page_alloc.create ~map:page_map
      ~policy:(Page_alloc.First_touch (fun _ -> 0))
      ~frames_per_mc:2 ()
  in
  let mc v = Address_map.mc_of_paddr page_map (Page_alloc.translate pa ~node:0 ~vaddr:(v * 4096)) in
  Alcotest.(check (list int)) "budget enforced: third page spills" [ 0; 0; 1 ]
    (List.init 3 mc);
  Alcotest.(check int) "the spill is a counted fallback" 1
    (Page_alloc.fallback_allocations pa)

let test_per_owner_fallbacks () =
  (* fallbacks are charged to the owner tag that suffered them *)
  let pa =
    Page_alloc.create ~map:page_map
      ~policy:
        (Page_alloc.Mc_aware
           { desired = (fun _ -> Some 0); fallback = (fun _ -> 0) })
      ~frames_per_mc:2 ()
  in
  let alloc owner v =
    ignore (Page_alloc.translate_owned pa ~owner ~node:0 ~vaddr:(v * 4096))
  in
  alloc 7 0;
  alloc 7 1;
  (* MC0 is now full: owner 9's pages spill *)
  alloc 9 2;
  alloc 9 3;
  Alcotest.(check int) "owner 7 clean" 0
    (Page_alloc.fallback_allocations_of pa ~owner:7);
  Alcotest.(check int) "owner 9 charged twice" 2
    (Page_alloc.fallback_allocations_of pa ~owner:9);
  Alcotest.(check int) "global total agrees" 2
    (Page_alloc.fallback_allocations pa)

let test_line_mode_capacity_and_reuse () =
  (* line-interleaved mode is bounded by the same total budget and reuses
     reclaimed frames *)
  let pa =
    Page_alloc.create ~map:line_map ~policy:Page_alloc.Hardware_interleaved
      ~frames_per_mc:1 ()
  in
  let frame v = Page_alloc.translate pa ~node:0 ~vaddr:(v * 4096) / 4096 in
  let f0 = frame 0 in
  let f1 = frame 1 in
  ignore (frame 2);
  ignore (frame 3);
  Alcotest.(check bool) "capacity reached raises" true
    (match frame 4 with
    | _ -> false
    | exception Failure _ -> true);
  Alcotest.(check int) "freed two pages" 2
    (Page_alloc.free_region pa ~first_vpage:0 ~last_vpage:1);
  let reused = frame 9 in
  Alcotest.(check bool) "reclaimed frame reused" true
    (List.mem reused [ f0; f1 ])

let test_reset () =
  let pa = Page_alloc.create ~map:page_map ~policy:Page_alloc.Hardware_interleaved () in
  ignore (Page_alloc.translate pa ~node:0 ~vaddr:0);
  Page_alloc.reset pa;
  Alcotest.(check int) "no pages after reset" 0 (Page_alloc.pages_allocated pa)

let prop_translation_injective =
  QCheck.Test.make ~name:"distinct pages get distinct frames" ~count:100
    (QCheck.make
       QCheck.Gen.(list_size (int_range 1 50) (int_range 0 200)))
    (fun vpages ->
      let pa = Page_alloc.create ~map:page_map ~policy:Page_alloc.Hardware_interleaved () in
      let frames =
        List.map (fun v -> Page_alloc.translate pa ~node:0 ~vaddr:(v * 4096) / 4096)
          (List.sort_uniq compare vpages)
      in
      List.length frames = List.length (List.sort_uniq compare frames))

let qsuite = List.map QCheck_alcotest.to_alcotest

let suite =
  [
    ( "os.page_alloc",
      [
        Alcotest.test_case "translation stable" `Quick test_translation_stable;
        Alcotest.test_case "line-interleaved mode" `Quick test_line_interleaved_mode;
        Alcotest.test_case "hardware rotation" `Quick test_hardware_interleaved_rotation;
        Alcotest.test_case "first touch" `Quick test_first_touch;
        Alcotest.test_case "mc-aware" `Quick test_mc_aware;
        Alcotest.test_case "mc-aware fallback" `Quick test_mc_aware_fallback;
        Alcotest.test_case "mc-aware unhinted = first touch" `Quick
          test_mc_aware_fallback_policy;
        Alcotest.test_case "free_region reclaims frames" `Quick
          test_free_region_reclaim;
        Alcotest.test_case "first-touch budget fallback" `Quick
          test_first_touch_full_falls_back;
        Alcotest.test_case "per-owner fallback counters" `Quick
          test_per_owner_fallbacks;
        Alcotest.test_case "line-mode capacity and reuse" `Quick
          test_line_mode_capacity_and_reuse;
        Alcotest.test_case "reset" `Quick test_reset;
      ]
      @ qsuite [ prop_translation_injective ] );
  ]
