lib/core/cluster.mli: Format Noc
