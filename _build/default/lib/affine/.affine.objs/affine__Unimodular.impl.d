lib/affine/unimodular.ml: Array Gauss Matrix Vec
