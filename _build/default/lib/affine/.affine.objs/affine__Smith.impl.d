lib/affine/smith.ml: Array List Matrix
