(* Tests for the DRAM substrate: timing, physical address interpretation
   and the FR-FCFS controller. *)

module Timing = Dram.Timing
module Address_map = Dram.Address_map
module Fr_fcfs = Dram.Fr_fcfs

let test_timing () =
  let t = Timing.ddr3_1600 in
  Alcotest.(check bool) "hit < empty < conflict" true
    (t.Timing.row_hit < t.Timing.row_empty && t.Timing.row_empty < t.Timing.row_conflict);
  Alcotest.(check bool) "burst within hit" true (t.Timing.burst <= t.Timing.row_hit);
  let s = Timing.scale 2.0 t in
  Alcotest.(check int) "scale doubles" (2 * t.Timing.row_hit) s.Timing.row_hit

let line_map = Address_map.make ~interleaving:Address_map.Line_interleaved ~num_mcs:4 ()

let page_map = Address_map.make ~interleaving:Address_map.Page_interleaved ~num_mcs:4 ()

let test_line_interleaving () =
  (* consecutive 256B lines rotate over controllers *)
  Alcotest.(check (list int)) "line rotation" [ 0; 1; 2; 3; 0 ]
    (List.init 5 (fun i -> Address_map.mc_of_paddr line_map (i * 256)));
  (* within a line, same controller *)
  Alcotest.(check int) "same line same mc"
    (Address_map.mc_of_paddr line_map 256)
    (Address_map.mc_of_paddr line_map 511);
  (* virtual = physical selection under line interleaving *)
  Alcotest.(check int) "vaddr agrees" 2 (Address_map.mc_of_vaddr_line line_map 512)

let test_page_interleaving () =
  Alcotest.(check (list int)) "page rotation" [ 0; 1; 2; 3 ]
    (List.init 4 (fun i -> Address_map.mc_of_paddr page_map (i * 4096)));
  Alcotest.(check int) "whole page same mc"
    (Address_map.mc_of_paddr page_map 4096)
    (Address_map.mc_of_paddr page_map (4096 + 4095));
  Alcotest.check_raises "vaddr selection invalid under page interleaving"
    (Invalid_argument "Address_map.mc_of_vaddr_line: page-interleaved") (fun () ->
      ignore (Address_map.mc_of_vaddr_line page_map 0))

let test_bank_row () =
  (* channel-consecutive row buffers rotate over banks *)
  let mc0_addrs = List.init 8 (fun i -> i * 4 * 4096) in
  (* every 4th page is on MC0 under line interleaving?  use page_map: pages
     0,4,8,.. are MC0; their channel addresses are consecutive pages *)
  let banks = List.map (Address_map.bank_of_paddr page_map) mc0_addrs in
  Alcotest.(check (list int)) "banks rotate" [ 0; 1; 2; 3; 0; 1; 2; 3 ] banks;
  let rows = List.map (Address_map.row_of_paddr page_map) mc0_addrs in
  Alcotest.(check (list int)) "rows advance every banks_per_mc pages"
    [ 0; 0; 0; 0; 1; 1; 1; 1 ] rows

let prop_mc_partition =
  QCheck.Test.make ~name:"every address maps to a valid controller and bank"
    ~count:500
    (QCheck.make QCheck.Gen.(int_range 0 100_000_000))
    (fun paddr ->
      let ok map =
        let m = Address_map.mc_of_paddr map paddr in
        let b = Address_map.bank_of_paddr map paddr in
        m >= 0 && m < 4 && b >= 0 && b < 4 && Address_map.row_of_paddr map paddr >= 0
      in
      ok line_map && ok page_map)

(* --- FR-FCFS --- *)

let drain mc =
  let rec go acc now =
    match Fr_fcfs.next_wake mc with
    | None -> acc
    | Some t ->
      let t = max t (now + 1) in
      go (acc @ Fr_fcfs.advance mc ~now:t) t
  in
  go (Fr_fcfs.advance mc ~now:0) 0

let test_row_hit_priority () =
  let mc = Fr_fcfs.create ~banks:1 () in
  (* open row 5 via a first request, then queue a conflict and a hit *)
  Fr_fcfs.enqueue mc ~now:0 ~bank:0 ~row:5 ~id:1 ();
  Fr_fcfs.enqueue mc ~now:1 ~bank:0 ~row:9 ~id:2 ();
  Fr_fcfs.enqueue mc ~now:2 ~bank:0 ~row:5 ~id:3 ();
  let completions = drain mc in
  let order = List.map (fun c -> c.Fr_fcfs.id) completions in
  Alcotest.(check (list int)) "row hit served before older conflict" [ 1; 3; 2 ] order;
  let by_id i = List.find (fun c -> c.Fr_fcfs.id = i) completions in
  Alcotest.(check bool) "3 was a row hit" true (by_id 3).Fr_fcfs.row_hit;
  Alcotest.(check bool) "2 was a conflict" false (by_id 2).Fr_fcfs.row_hit

let test_bank_parallelism () =
  let t = Timing.ddr3_1600 in
  let mc = Fr_fcfs.create ~channels:2 ~banks:2 () in
  Fr_fcfs.enqueue mc ~now:0 ~bank:0 ~row:0 ~id:1 ();
  Fr_fcfs.enqueue mc ~now:0 ~bank:1 ~row:0 ~id:2 ();
  let completions = drain mc in
  let finish i = (List.find (fun c -> c.Fr_fcfs.id = i) completions).Fr_fcfs.finish in
  (* with independent channels both complete at row_empty time *)
  Alcotest.(check int) "bank 0" t.Timing.row_empty (finish 1);
  Alcotest.(check int) "bank 1 overlaps" t.Timing.row_empty (finish 2)

let test_bus_serialization () =
  let t = Timing.ddr3_1600 in
  let mc = Fr_fcfs.create ~channels:1 ~banks:2 () in
  Fr_fcfs.enqueue mc ~now:0 ~bank:0 ~row:0 ~id:1 ();
  Fr_fcfs.enqueue mc ~now:0 ~bank:1 ~row:0 ~id:2 ();
  let completions = drain mc in
  let finish i = (List.find (fun c -> c.Fr_fcfs.id = i) completions).Fr_fcfs.finish in
  (* one data bus: the second burst waits for the first *)
  Alcotest.(check int) "first at row_empty" t.Timing.row_empty (finish 1);
  Alcotest.(check int) "second delayed by one burst" (t.Timing.row_empty + t.Timing.burst)
    (finish 2)

let test_write_drain () =
  let mc = Fr_fcfs.create ~banks:1 () in
  (* a write arrives first, then a read: the read must win *)
  Fr_fcfs.enqueue mc ~now:0 ~bank:0 ~row:1 ~write:true ~id:1 ();
  Fr_fcfs.enqueue mc ~now:0 ~bank:0 ~row:2 ~id:2 ();
  let order = List.map (fun c -> c.Fr_fcfs.id) (drain mc) in
  Alcotest.(check (list int)) "read priority" [ 2; 1 ] order

let test_fcfs_scheduler () =
  (* strict FCFS ignores the open row: arrival order wins *)
  let mc = Fr_fcfs.create ~scheduler:Fr_fcfs.Fcfs ~banks:1 () in
  Fr_fcfs.enqueue mc ~now:0 ~bank:0 ~row:5 ~id:1 ();
  Fr_fcfs.enqueue mc ~now:1 ~bank:0 ~row:9 ~id:2 ();
  Fr_fcfs.enqueue mc ~now:2 ~bank:0 ~row:5 ~id:3 ();
  let order = List.map (fun c -> c.Fr_fcfs.id) (drain mc) in
  Alcotest.(check (list int)) "arrival order" [ 1; 2; 3 ] order

let test_closed_page () =
  (* with auto-precharge no access is ever a row hit *)
  let mc = Fr_fcfs.create ~row_policy:Fr_fcfs.Closed_page ~banks:1 () in
  Fr_fcfs.enqueue mc ~now:0 ~bank:0 ~row:5 ~id:1 ();
  Fr_fcfs.enqueue mc ~now:0 ~bank:0 ~row:5 ~id:2 ();
  let completions = drain mc in
  Alcotest.(check int) "no row hits" 0 (Fr_fcfs.row_hits mc);
  List.iter
    (fun (c : Fr_fcfs.completion) ->
      Alcotest.(check bool) "each completion cold" false c.Fr_fcfs.row_hit)
    completions

let test_queue_accounting () =
  let mc = Fr_fcfs.create ~banks:1 () in
  Fr_fcfs.enqueue mc ~now:0 ~bank:0 ~row:0 ~id:1 ();
  Fr_fcfs.enqueue mc ~now:0 ~bank:0 ~row:0 ~id:2 ();
  Alcotest.(check int) "pending" 2 (Fr_fcfs.pending mc);
  let completions = drain mc in
  Alcotest.(check int) "drained" 0 (Fr_fcfs.pending mc);
  Alcotest.(check int) "served" 2 (Fr_fcfs.served mc);
  let second = List.find (fun c -> c.Fr_fcfs.id = 2) completions in
  Alcotest.(check bool) "queue delay recorded" true (second.Fr_fcfs.queue_delay > 0);
  Alcotest.(check bool) "occupancy positive" true
    (Fr_fcfs.occupancy mc ~at:second.Fr_fcfs.finish > 0.)

let prop_all_served =
  QCheck.Test.make ~name:"every enqueued request completes exactly once" ~count:100
    (QCheck.make
       QCheck.Gen.(list_size (int_range 1 30) (pair (int_range 0 3) (int_range 0 5))))
    (fun reqs ->
      let mc = Fr_fcfs.create ~banks:4 () in
      List.iteri
        (fun i (bank, row) -> Fr_fcfs.enqueue mc ~now:i ~bank ~row ~id:i ())
        reqs;
      let completions = drain mc in
      let ids = List.sort compare (List.map (fun c -> c.Fr_fcfs.id) completions) in
      ids = List.init (List.length reqs) Fun.id
      && List.for_all
           (fun (c : Fr_fcfs.completion) -> c.Fr_fcfs.start >= c.Fr_fcfs.id)
           completions
      (* start >= arrival (= id here) *))

let qsuite = List.map QCheck_alcotest.to_alcotest

let suite =
  [
    ("dram.timing", [ Alcotest.test_case "ddr3-1600" `Quick test_timing ]);
    ( "dram.address_map",
      [
        Alcotest.test_case "line interleaving" `Quick test_line_interleaving;
        Alcotest.test_case "page interleaving" `Quick test_page_interleaving;
        Alcotest.test_case "bank/row" `Quick test_bank_row;
      ]
      @ qsuite [ prop_mc_partition ] );
    ( "dram.fr_fcfs",
      [
        Alcotest.test_case "row-hit priority" `Quick test_row_hit_priority;
        Alcotest.test_case "bank parallelism" `Quick test_bank_parallelism;
        Alcotest.test_case "bus serialization" `Quick test_bus_serialization;
        Alcotest.test_case "write drain" `Quick test_write_drain;
        Alcotest.test_case "FCFS baseline" `Quick test_fcfs_scheduler;
        Alcotest.test_case "closed page" `Quick test_closed_page;
        Alcotest.test_case "queue accounting" `Quick test_queue_accounting;
      ]
      @ qsuite [ prop_all_served ] );
  ]
