(** Binary min-heap of timestamped events.

    Ties are broken by insertion order, which keeps runs deterministic.
    The keys are int-packed into unboxed parallel arrays with a payload
    array alongside, so steady-state pushes and the
    {!next_time}/{!pop_payload} pair allocate nothing. *)

type 'a t

val create : unit -> 'a t

val push : 'a t -> time:int -> 'a -> unit

val pop : 'a t -> (int * 'a) option
(** The earliest event, or [None] when empty. *)

val next_time : 'a t -> int
(** Timestamp of the earliest event without removing it.
    @raise Invalid_argument when the heap is empty. *)

val pop_payload : 'a t -> 'a
(** Removes and returns the earliest event's payload (allocation-free
    counterpart of {!pop}; read {!next_time} first for the timestamp).
    @raise Invalid_argument when the heap is empty. *)

val is_empty : 'a t -> bool

val size : 'a t -> int
