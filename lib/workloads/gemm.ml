(* Tiled-GEMM workload family: C += A·B with the classic strip-over-rows
   parallelization and (jj,kk) tiling.  Unlike the fixed 13-app suite
   this is a generator — problem size, tile size and strip count are
   knobs — so the same kernel can be shaped to a flat mesh or to a
   chiplet grid (strips = chiplets × threads-per-chiplet).  Strip [s]
   owns rows [s·R .. s·R+R-1] of A and C (R = N/P): the init nest
   first-touches them in-strip and the measured nest carries the strip
   index in the row subscript, so both the first-touch policy and the
   compiler's Data-to-MC mapping can localize A and C.  B is read in
   full by every strip — the traffic no mapping can remove. *)

let source ~n ~tile ~strips =
  Printf.sprintf
    {|param N = %d;
param T = %d;
param P = %d;
param R = %d;
param NT = %d;
array A[N][N];
array B[N][N];
array C[N][N];
// strip s first-touches its own rows; every strip later reads all of B
parfor s = 0 to P-1 {
  for r = 0 to R-1 {
    for j = 0 to N-1 {
      A[R*s+r][j] = s + j;
      B[R*s+r][j] = s - j;
      C[R*s+r][j] = 0;
    }
  }
}
// tiled GEMM over (jj,kk) tiles of T x T, rows strip-parallel
parfor s = 0 to P-1 {
  for r = 0 to R-1 {
    for jj = 0 to NT-1 {
      for kk = 0 to NT-1 {
        for k = 0 to T-1 {
          for j = 0 to T-1 {
            C[R*s+r][T*jj+j] = C[R*s+r][T*jj+j] + A[R*s+r][T*kk+k]*B[T*kk+k][T*jj+j];
          }
        }
      }
    }
  }
}
|}
    n tile strips (n / strips) (n / tile)

let default_n = 64

let default_tile = 8

let default_strips = 64

let canonical_name ~n ~tile ~strips =
  if n = default_n && tile = default_tile && strips = default_strips then
    "gemm"
  else Printf.sprintf "gemm-n%dt%dp%d" n tile strips

let make_result ?name ?(n = default_n) ?(tile = default_tile)
    ?(strips = default_strips) () =
  if n <= 0 then Error (Printf.sprintf "gemm: problem size N=%d must be positive" n)
  else if tile <= 0 || n mod tile <> 0 then
    Error (Printf.sprintf "gemm: tile size %d must divide N=%d" tile n)
  else if strips <= 0 || n mod strips <> 0 then
    Error (Printf.sprintf "gemm: strip count %d must divide N=%d" strips n)
  else
    let name =
      match name with Some s -> s | None -> canonical_name ~n ~tile ~strips
    in
    Ok
      (App.make ~name
         ~description:
           (Printf.sprintf
              "tiled GEMM: C += A*B, N=%d, %dx%d tiles, %d row strips" n tile
              tile strips)
         ~first_touch_friendly:true ~warmup_nests:1
         (source ~n ~tile ~strips))

let for_chiplets ?(n = default_n) ?(tile = default_tile)
    ?(threads_per_chiplet = 16) ~chiplets () =
  if chiplets <= 0 then
    Error (Printf.sprintf "gemm: chiplet count %d must be positive" chiplets)
  else if threads_per_chiplet <= 0 then
    Error
      (Printf.sprintf "gemm: threads per chiplet %d must be positive"
         threads_per_chiplet)
  else make_result ~n ~tile ~strips:(chiplets * threads_per_chiplet) ()

(* "gemm" or "gemm-n<N>t<T>[p<P>]".  [None] when the name is not in the
   family at all; [Some (Error _)] when it is but the knobs are bad. *)
let of_name name =
  if name = "gemm" then Some (make_result ())
  else
    match String.length name with
    | len when len > 5 && String.sub name 0 5 = "gemm-" -> (
      let spec = String.sub name 5 (len - 5) in
      let parse () =
        try
          Scanf.sscanf spec "n%dt%dp%d%!" (fun n tile strips ->
              Some (make_result ~name ~n ~tile ~strips ()))
        with Scanf.Scan_failure _ | Failure _ | End_of_file -> (
          try
            Scanf.sscanf spec "n%dt%d%!" (fun n tile ->
                Some (make_result ~name ~n ~tile ()))
          with Scanf.Scan_failure _ | Failure _ | End_of_file ->
            Some
              (Error
                 (Printf.sprintf
                    "gemm: cannot parse %S (expected gemm-n<N>t<T>[p<P>])"
                    name)))
      in
      parse ())
    | _ -> None
