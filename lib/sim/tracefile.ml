let dump ?sites path phases =
  let oc = open_out path in
  let tagged = sites <> None in
  let site_streams =
    match sites with Some s -> Array.of_list s | None -> [||]
  in
  output_string oc
    (if tagged then "# offchip trace v2\n" else "# offchip trace v1\n");
  List.iteri
    (fun p (phase : Lang.Interp.phase) ->
      Printf.fprintf oc "phase %d\n" (Array.length phase);
      Array.iteri
        (fun t stream ->
          Printf.fprintf oc "t %d %d\n" t (Array.length stream);
          Array.iteri
            (fun i a ->
              Printf.fprintf oc "%d %c"
                (Lang.Interp.addr_of_access a)
                (if Lang.Interp.is_write a then 'W' else 'R');
              if tagged then
                Printf.fprintf oc " %d" site_streams.(p).(t).(i);
              output_char oc '\n')
            stream)
        phase)
    phases;
  close_out oc

(* v1 and v2 share everything but the per-access site-id column, so one
   reader parses both; [load] discards the tags, [load_tagged] keeps them
   (synthesizing all -1 streams for a v1 file). *)
let load_gen path =
  let ic = open_in path in
  let line () = try Some (input_line ic) with End_of_file -> None in
  let fail msg =
    close_in ic;
    failwith ("Tracefile.load: " ^ msg)
  in
  (match line () with
  | Some "# offchip trace v1" | Some "# offchip trace v2" -> ()
  | _ -> fail "bad header");
  let phases = ref [] in
  let rec read_phases () =
    match line () with
    | None -> ()
    | Some l -> (
      match String.split_on_char ' ' l with
      | [ "phase"; n ] ->
        let nthreads = int_of_string n in
        let streams =
          Array.init nthreads (fun expect ->
              match line () with
              | Some tl -> (
                match String.split_on_char ' ' tl with
                | [ "t"; t; count ] when int_of_string t = expect ->
                  Array.init (int_of_string count) (fun _ ->
                      match line () with
                      | Some al -> (
                        let access addr w site =
                          ((int_of_string addr lsl 1) lor w, site)
                        in
                        match String.split_on_char ' ' al with
                        | [ addr; "R" ] -> access addr 0 (-1)
                        | [ addr; "W" ] -> access addr 1 (-1)
                        | [ addr; "R"; s ] -> access addr 0 (int_of_string s)
                        | [ addr; "W"; s ] -> access addr 1 (int_of_string s)
                        | _ -> fail "bad access line")
                      | None -> fail "truncated accesses")
                | _ -> fail "bad thread header")
              | None -> fail "truncated phase")
        in
        phases := streams :: !phases;
        read_phases ()
      | _ -> fail "bad phase header")
  in
  read_phases ();
  close_in ic;
  List.rev !phases

let load path =
  List.map (fun ph -> Array.map (Array.map fst) ph) (load_gen path)

let load_tagged path =
  List.map
    (fun ph -> (Array.map (Array.map fst) ph, Array.map (Array.map snd) ph))
    (load_gen path)

let total_accesses phases =
  List.fold_left
    (fun acc ph -> acc + Array.fold_left (fun a s -> a + Array.length s) 0 ph)
    0 phases
