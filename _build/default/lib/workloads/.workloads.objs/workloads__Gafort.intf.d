lib/workloads/gafort.mli: App
