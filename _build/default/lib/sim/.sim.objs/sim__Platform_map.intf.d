lib/sim/platform_map.mli: Config
