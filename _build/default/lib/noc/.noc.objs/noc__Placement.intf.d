lib/noc/placement.mli: Coord Topology
