(** First-class platform description: the one place that bundles the mesh
    topology, the L2-to-MC cluster mapping, the controller placement and
    the address-map parameters the compiler and the simulator must agree
    on.

    Before this module existed, the pipeline's mapping pass and
    [Sim.Config] each re-derived this tuple; a platform value is now built
    once (from a named preset, a JSON file, or programmatically) and
    consumed by both sides, so the compile → simulate → recalibrate →
    recompile loop always talks about the same machine.

    All fallible constructors are Result-first. *)

type interleaving = Line_interleaved | Page_interleaved
(** Physical-address interleaving granule: consecutive L2 lines or
    consecutive OS pages rotate over the controllers.  (A platform-level
    re-statement of the DRAM layer's address-map choice: [Core] cannot
    depend on [Dram], so the simulator converts.) *)

type t = {
  name : string;
  topo : Noc.Topology.t;
  cluster : Cluster.t;
  placement : Noc.Placement.t;
  interleaving : interleaving;
  line_bytes : int;  (** L2 line size = line-interleaving granule *)
  page_bytes : int;  (** OS page = page-interleaving granule *)
  elem_bytes : int;  (** array element size *)
  banks_per_mc : int;
  channels_per_mc : int;
}

val num_mcs : t -> int

val granule_bytes : t -> int
(** The interleaving granule in bytes ([line_bytes] or [page_bytes]). *)

val corner_sites : Noc.Topology.t -> Noc.Coord.t array
(** The four mesh corners, NW, NE, SW, SE — P1's candidate sites. *)

val placement_for :
  ?sites:Noc.Coord.t array ->
  Noc.Topology.t ->
  Cluster.t ->
  (Noc.Placement.t, string) result
(** MC [j] placed at the unused site nearest cluster [j/k]'s centroid;
    default sites are the mesh corners when there are at most four MCs
    (named "P1-corners"), the full perimeter otherwise ("perimeter-N"). *)

val make_result :
  ?placement:Noc.Placement.t ->
  ?interleaving:interleaving ->
  ?line_bytes:int ->
  ?page_bytes:int ->
  ?elem_bytes:int ->
  ?banks_per_mc:int ->
  ?channels_per_mc:int ->
  name:string ->
  topo:Noc.Topology.t ->
  cluster:Cluster.t ->
  unit ->
  (t, string) result
(** Validates that the cluster tiles the topology, that the placement (if
    given) has one site per controller, and that line/page/element sizes
    nest evenly.  Defaults are Table 1's: line interleaving, 256 B lines,
    4 KB pages, 8 B elements, 16 banks and 4 channels per MC; the
    placement defaults to {!placement_for}. *)

val default : unit -> t
(** The [mesh8x8-mc4] preset — Table 1's platform, mapping M1, corner
    controllers. *)

val with_cluster : t -> Cluster.t -> (t, string) result
(** Replaces the mapping and recomputes a matching placement. *)

val with_mapping : t -> string -> (t, string) result
(** Re-maps by CLI spec: ["M1"], ["M2"], an MC count as either ["8"] or
    the cluster name a selection note reports (["M1x8"]), or [""] to
    keep the platform's own mapping. *)

val same_machine : t -> t -> bool
(** Same cluster geometry (grid and MCs-per-cluster) and same controller
    attachment nodes.  Names are presentation, not identity: the
    platform's own mapping can equal a preset, and a searched placement
    can converge back onto preset sites. *)

val candidates : ?extra:t list -> t -> t list
(** The Section 4 candidate set this platform can realize: the platform's
    own mapping plus M1, M2 and the Fig. 27 8/16-MC [with_mcs]
    configurations — deduplicated by {!same_machine}, and restricted to
    mappings that tile the mesh and need no more controllers than the
    platform has.  The platform's own mapping comes first.  [extra]
    platforms (e.g. searched placements) join the pool after the presets
    when they share the topology, fit the MC budget and are not already
    proposed. *)

val preset_names : string list
(** The documented presets, for [--help] and error messages. *)

val of_spec : string -> (t, string) result
(** [of_spec s] loads a platform from [s]: an existing file path is parsed
    as a platform JSON file ({!of_json}); otherwise [s] must name a preset
    of the form [mesh<W>x<H>-{m1|m2|mc<N>}] (e.g. [mesh8x8-mc8]) or
    [chiplet<CX>x<CY>-{m1|m2|mc<N>}] (e.g. [chiplet2x2-mc4]: a CX×CY grid
    of 4×4-core chiplets whose boundary links cost 12 cycles over 8 B).
    [mc4] is mapping M1, the paper's default. *)

val to_json : t -> Obs.Json.t
(** Hierarchical platforms carry a ["hierarchy"] member
    ([chiplets_x]/[chiplets_y]/[link_latency]/[link_bytes]); flat
    platforms' documents are byte-identical to the pre-chiplet format. *)

val of_json : Obs.Json.t -> (t, string) result
(** Inverse of {!to_json}; [cluster], [placement], [hierarchy] and the
    scalar parameters are optional and default to the preset values
    ([of_json (to_json p)] restores [p] exactly).  A 1×1 ["hierarchy"]
    grid is normalized to the flat mesh, so the degenerate hierarchical
    machine is structurally — and behaviorally — identical to the flat
    preset. *)

val of_file : string -> (t, string) result

val pp : Format.formatter -> t -> unit
