type t = {
  name : string;
  description : string;
  source : string;
  index_contents : (string * (int array -> int)) list;
  first_touch_friendly : bool;
  warmup_nests : int;
}

let make ~name ~description ?(index = []) ?(first_touch_friendly = false)
    ?(warmup_nests = 1) source =
  {
    name;
    description;
    source;
    index_contents = index;
    first_touch_friendly;
    warmup_nests;
  }

(* The built-in model sources are valid by construction; a parse failure
   here is a broken model definition, not user input. *)
let program t =
  match Lang.Parser.parse_result ~file:("<" ^ t.name ^ ">") t.source with
  | Ok p -> p
  | Error (d :: _) ->
    invalid_arg
      (Printf.sprintf "workload %s does not parse: %s" t.name d.Lang.Diag.message)
  | Error [] -> assert false

let index_lookup t name v = (List.assoc name t.index_contents) v
