(* Tests for Core.Platform — the shared platform description — and the
   profile-calibration helpers that feed its candidate mappings. *)

module Platform = Core.Platform
module Cluster = Core.Cluster
module Mapping_select = Core.Mapping_select

let ok = function Ok v -> v | Error e -> failwith e

(* --- presets ---------------------------------------------------------- *)

let test_default_preset () =
  let p = Platform.default () in
  Alcotest.(check string) "name" "mesh8x8-mc4" p.Platform.name;
  Alcotest.(check int) "64 nodes" 64 (Noc.Topology.nodes p.Platform.topo);
  Alcotest.(check string) "mapping M1" "M1" p.Platform.cluster.Cluster.name;
  Alcotest.(check string) "corner placement" "P1-corners"
    p.Platform.placement.Noc.Placement.name;
  Alcotest.(check int) "4 MCs" 4 (Platform.num_mcs p);
  Alcotest.(check int) "256 B lines" 256 p.Platform.line_bytes;
  Alcotest.(check int) "granule = line (line-interleaved)" 256
    (Platform.granule_bytes p)

let test_of_spec_presets () =
  List.iter
    (fun (spec, mcs, cname) ->
      let p = ok (Platform.of_spec spec) in
      Alcotest.(check int) (spec ^ " MCs") mcs (Platform.num_mcs p);
      Alcotest.(check string) (spec ^ " mapping") cname
        p.Platform.cluster.Cluster.name)
    [
      ("mesh8x8-mc4", 4, "M1");
      ("mesh8x8-m2", 4, "M2");
      ("mesh8x8-mc8", 8, "M1x8");
      ("mesh8x8-mc16", 16, "M1x16");
      ("chiplet2x2-mc4", 4, "M1");
      ("chiplet2x2-mc8", 8, "M1x8");
    ]

let test_chiplet_presets () =
  let p = ok (Platform.of_spec "chiplet2x2-mc4") in
  Alcotest.(check int) "8x8 mesh (2x2 chiplets of 4x4)" 64
    (Noc.Topology.nodes p.Platform.topo);
  (match p.Platform.topo.Noc.Topology.chiplets with
  | None -> Alcotest.fail "chiplet preset must carry a hierarchy"
  | Some g ->
    Alcotest.(check int) "grid_x" 2 g.Noc.Topology.grid_x;
    Alcotest.(check int) "grid_y" 2 g.Noc.Topology.grid_y;
    Alcotest.(check int) "link latency" 12 g.Noc.Topology.link_latency;
    Alcotest.(check int) "link bytes" 8 g.Noc.Topology.link_bytes);
  Alcotest.(check int) "4 chiplets" 4 (Noc.Topology.num_chiplets p.Platform.topo);
  Alcotest.(check bool) "presets list them" true
    (List.mem "chiplet2x2-mc4" Platform.preset_names
    && List.mem "chiplet2x2-mc8" Platform.preset_names)

let test_of_spec_errors () =
  List.iter
    (fun spec ->
      match Platform.of_spec spec with
      | Ok _ -> Alcotest.failf "%s must be rejected" spec
      | Error e ->
        Alcotest.(check bool) (spec ^ " error is non-empty") true
          (String.length e > 0))
    [
      "mesh8x8-mc3"; "nonsense"; "mesh0x0-mc4"; "/no/such/file.json";
      "chiplet2x2-mc3"; "chiplet0x2-mc4";
    ]

(* --- candidate enumeration -------------------------------------------- *)

let candidate_names p =
  List.map
    (fun (q : Platform.t) -> q.Platform.cluster.Cluster.name)
    (Platform.candidates p)

let test_candidates_respect_budget () =
  (* the default 4-MC platform only realizes M1/M2 — the candidate set
     the pre-platform pipeline used, so default behavior is unchanged *)
  Alcotest.(check (list string)) "mc4 candidates" [ "M1"; "M2" ]
    (candidate_names (Platform.default ()));
  Alcotest.(check (list string)) "mc8 adds the 8-MC mapping"
    [ "M1x8"; "M1"; "M2" ]
    (candidate_names (ok (Platform.of_spec "mesh8x8-mc8")));
  Alcotest.(check (list string)) "mc16 realizes all four"
    [ "M1x16"; "M1"; "M2"; "M1x8" ]
    (candidate_names (ok (Platform.of_spec "mesh8x8-mc16")))

let test_candidate_dedupe () =
  let p = Platform.default () in
  (* an extra that collapses to a machine the presets already propose
     (same cluster x placement) is dropped — the C002 table never lists
     the same machine twice *)
  Alcotest.(check (list string)) "duplicate extra dropped" [ "M1"; "M2" ]
    (List.map
       (fun (q : Platform.t) -> q.Platform.cluster.Cluster.name)
       (Platform.candidates ~extra:[ p ] p));
  (* an extra with the same cluster but a different placement is a new
     machine and joins the pool after the presets *)
  let moved =
    let topo = p.Platform.topo in
    let placement =
      ok
        (Noc.Placement.of_coords_result topo "moved"
           [|
             Noc.Coord.make 1 0; Noc.Coord.make 6 0;
             Noc.Coord.make 1 7; Noc.Coord.make 6 7;
           |])
    in
    ok
      (Platform.make_result ~placement ~name:"moved" ~topo
         ~cluster:p.Platform.cluster ())
  in
  Alcotest.(check bool) "distinct machine" false (Platform.same_machine p moved);
  let cs = Platform.candidates ~extra:[ moved ] p in
  Alcotest.(check int) "extra joins the pool" 3 (List.length cs);
  Alcotest.(check string) "after the presets" "moved"
    (let last = List.nth cs 2 in
     last.Platform.placement.Noc.Placement.name);
  (* an extra beyond the MC budget is not realizable and is dropped *)
  let mc16 = ok (Platform.of_spec "mesh8x8-mc16") in
  Alcotest.(check int) "over-budget extra dropped" 2
    (List.length (Platform.candidates ~extra:[ mc16 ] p))

let test_with_mapping () =
  let p = Platform.default () in
  let m2 = ok (Platform.with_mapping p "M2") in
  Alcotest.(check string) "re-mapped to M2" "M2" m2.Platform.cluster.Cluster.name;
  let same = ok (Platform.with_mapping p "") in
  Alcotest.(check string) "empty spec keeps the mapping" "M1"
    same.Platform.cluster.Cluster.name;
  (match Platform.with_mapping p "16" with
  | Ok q -> Alcotest.(check int) "MC-count spec" 16 (Platform.num_mcs q)
  | Error e -> Alcotest.fail e);
  (* the cluster name a C002 note reports is accepted verbatim *)
  match Platform.with_mapping p "M1x8" with
  | Ok q ->
    Alcotest.(check int) "cluster-name spec" 8 (Platform.num_mcs q);
    Alcotest.(check string) "named cluster" "M1x8"
      q.Platform.cluster.Cluster.name
  | Error e -> Alcotest.fail e

(* --- JSON round-trip --------------------------------------------------- *)

let test_json_roundtrip () =
  List.iter
    (fun spec ->
      let p = ok (Platform.of_spec spec) in
      let q = ok (Platform.of_json (Platform.to_json p)) in
      Alcotest.(check string) (spec ^ " name survives") p.Platform.name
        q.Platform.name;
      Alcotest.(check string) (spec ^ " cluster survives")
        p.Platform.cluster.Cluster.name q.Platform.cluster.Cluster.name;
      Alcotest.(check bool) (spec ^ " placement survives") true
        (p.Platform.placement = q.Platform.placement);
      Alcotest.(check bool) (spec ^ " hierarchy survives") true
        (p.Platform.topo = q.Platform.topo);
      Alcotest.(check bool) (spec ^ " scalars survive") true
        (p.Platform.line_bytes = q.Platform.line_bytes
        && p.Platform.page_bytes = q.Platform.page_bytes
        && p.Platform.elem_bytes = q.Platform.elem_bytes
        && p.Platform.banks_per_mc = q.Platform.banks_per_mc
        && p.Platform.channels_per_mc = q.Platform.channels_per_mc
        && p.Platform.interleaving = q.Platform.interleaving))
    [
      "mesh8x8-mc4"; "mesh8x8-m2"; "mesh8x8-mc8"; "mesh8x8-mc16";
      "chiplet2x2-mc4"; "chiplet2x2-mc8";
    ]

(* [of_json (to_json p)] must restore hierarchical platforms exactly —
   the property over the whole (grid, link class) knob space, not just
   the two presets. *)
let prop_hierarchy_json_roundtrip =
  let gen =
    QCheck.Gen.(
      let* grid_x = oneofl [ 1; 2; 4; 8 ] in
      let* grid_y = oneofl [ 1; 2; 4; 8 ] in
      let* link_latency = int_range 1 40 in
      let* link_bytes = oneofl [ 4; 8; 16 ] in
      return (grid_x, grid_y, link_latency, link_bytes))
  in
  let print (gx, gy, lat, by) =
    Printf.sprintf "grid=%dx%d latency=%d bytes=%d" gx gy lat by
  in
  QCheck.Test.make ~name:"hierarchical platform JSON round-trips" ~count:100
    (QCheck.make ~print gen)
    (fun (grid_x, grid_y, link_latency, link_bytes) ->
      let flat = Noc.Topology.make ~width:8 ~height:8 () in
      let topo =
        ok
          (Noc.Topology.chiplets_result flat ~grid_x ~grid_y ~link_latency
             ~link_bytes)
      in
      let base = Platform.default () in
      let p =
        ok
          (Platform.make_result ~name:"qc" ~topo ~cluster:base.Platform.cluster
             ())
      in
      let q = ok (Platform.of_json (Platform.to_json p)) in
      p.Platform.topo = q.Platform.topo
      && String.equal
           (Obs.Json.to_string (Platform.to_json p))
           (Obs.Json.to_string (Platform.to_json q)))

let test_of_json_bad_hierarchy () =
  let doc hierarchy =
    Obs.Json.Obj
      [
        ("name", Obs.Json.String "bad");
        ("mesh_width", Obs.Json.Int 8);
        ("mesh_height", Obs.Json.Int 8);
        ("hierarchy", Obs.Json.Obj hierarchy);
      ]
  in
  List.iter
    (fun (label, hierarchy) ->
      match Platform.of_json (doc hierarchy) with
      | Ok _ -> Alcotest.failf "%s must be rejected" label
      | Error e ->
        (* the diagnostic locates the failure in the hierarchy member *)
        Alcotest.(check bool)
          (Printf.sprintf "%s error cites hierarchy (%s)" label e)
          true
          (String.length e > String.length "hierarchy:"
          && String.equal (String.sub e 0 10) "hierarchy:"))
    [
      ( "non-dividing grid",
        [ ("chiplets_x", Obs.Json.Int 3); ("chiplets_y", Obs.Json.Int 3) ] );
      ( "zero grid",
        [ ("chiplets_x", Obs.Json.Int 0); ("chiplets_y", Obs.Json.Int 2) ] );
      ( "zero link latency",
        [
          ("chiplets_x", Obs.Json.Int 2);
          ("chiplets_y", Obs.Json.Int 2);
          ("link_latency", Obs.Json.Int 0);
        ] );
      ( "negative link width",
        [
          ("chiplets_x", Obs.Json.Int 2);
          ("chiplets_y", Obs.Json.Int 2);
          ("link_bytes", Obs.Json.Int (-8));
        ] );
      ("missing grid", [ ("link_latency", Obs.Json.Int 12) ]);
      ( "non-integer grid",
        [
          ("chiplets_x", Obs.Json.String "two"); ("chiplets_y", Obs.Json.Int 2);
        ] );
    ]

let test_degenerate_hierarchy_is_flat () =
  (* a 1x1 chiplet grid is the flat machine: it normalizes away on parse,
     and the re-serialized document is byte-identical to the flat
     preset's (no "hierarchy" member survives) *)
  let flat = Platform.default () in
  let degenerate =
    match Platform.to_json flat with
    | Obs.Json.Obj fields ->
      Obs.Json.Obj
        (List.concat_map
           (fun (k, v) ->
             if String.equal k "mesh_height" then
               [
                 (k, v);
                 ( "hierarchy",
                   Obs.Json.Obj
                     [
                       ("chiplets_x", Obs.Json.Int 1);
                       ("chiplets_y", Obs.Json.Int 1);
                       ("link_latency", Obs.Json.Int 99);
                       ("link_bytes", Obs.Json.Int 2);
                     ] );
               ]
             else [ (k, v) ])
           fields)
    | _ -> Alcotest.fail "platform JSON must be an object"
  in
  let q = ok (Platform.of_json degenerate) in
  Alcotest.(check bool) "chiplets normalized away" true
    (q.Platform.topo.Noc.Topology.chiplets = None);
  Alcotest.(check string) "byte-identical to the flat preset"
    (Obs.Json.to_string (Platform.to_json flat))
    (Obs.Json.to_string (Platform.to_json q))

let test_of_file () =
  let p = Platform.default () in
  let path = Filename.temp_file "platform" ".json" in
  let oc = open_out path in
  Obs.Json.to_channel oc (Platform.to_json p);
  close_out oc;
  let q = ok (Platform.of_file path) in
  (* of_spec also accepts a file path *)
  let r = ok (Platform.of_spec path) in
  Sys.remove path;
  Alcotest.(check string) "of_file restores" p.Platform.name q.Platform.name;
  Alcotest.(check string) "of_spec takes a path" p.Platform.name r.Platform.name

let test_of_json_garbage () =
  match Platform.of_json (Obs.Json.String "nope") with
  | Ok _ -> Alcotest.fail "garbage JSON must be rejected"
  | Error _ -> ()

(* --- calibration ------------------------------------------------------- *)

let stats_with ~queue_cycles ~finish =
  (* the shape simulate --stats-json / sweep results use *)
  Obs.Json.Obj
    [
      ( "stats",
        Obs.Json.Obj
          [
            ( "metrics",
              Obs.Json.Obj
                [
                  ( "counters",
                    Obs.Json.Obj [ ("mem.queue_cycles", Obs.Json.Int queue_cycles) ] );
                  ( "gauges",
                    Obs.Json.Obj [ ("sim.finish_time", Obs.Json.Int finish) ] );
                ] );
          ] );
    ]

let test_bank_pressure_of_stats () =
  match Mapping_select.bank_pressure_of_stats (stats_with ~queue_cycles:5000 ~finish:1000) with
  | Ok p -> Alcotest.(check (float 1e-9)) "queue_cycles/finish" 5.0 p
  | Error e -> Alcotest.fail e

let test_bank_pressure_errors () =
  (match Mapping_select.bank_pressure_of_stats (Obs.Json.Obj []) with
  | Ok _ -> Alcotest.fail "missing metrics must be an error"
  | Error _ -> ());
  match Mapping_select.bank_pressure_of_stats (stats_with ~queue_cycles:1 ~finish:0) with
  | Ok _ -> Alcotest.fail "zero finish time must be an error"
  | Error _ -> ()

(* --- permutation invariance of the choice (qcheck) --------------------- *)

let prop_choice_permutation_invariant =
  let topo = Noc.Topology.make ~width:8 ~height:8 () in
  let base = ok (Platform.of_spec "mesh8x8-mc16") in
  let candidates =
    List.map
      (fun (q : Platform.t) -> (q.Platform.cluster, q.Platform.placement))
      (Platform.candidates base)
  in
  let gen =
    QCheck.Gen.(
      let* pressure = float_range 0.0 25.0 in
      let* order = shuffle_l candidates in
      return (pressure, order))
  in
  let print (p, order) =
    Printf.sprintf "pressure=%.3f order=%s" p
      (String.concat ","
         (List.map (fun (c, _) -> c.Cluster.name) order))
  in
  QCheck.Test.make
    ~name:"choose_opt is invariant under candidate permutation" ~count:200
    (QCheck.make ~print gen)
    (fun (pressure, order) ->
      let name cs =
        match Mapping_select.choose_opt topo ~candidates:cs ~bank_pressure:pressure with
        | Some (c, _) -> c.Cluster.name
        | None -> "<none>"
      in
      String.equal (name candidates) (name order))

let suite =
  [
    ( "core.platform",
      [
        Alcotest.test_case "default preset" `Quick test_default_preset;
        Alcotest.test_case "of_spec presets" `Quick test_of_spec_presets;
        Alcotest.test_case "chiplet presets" `Quick test_chiplet_presets;
        Alcotest.test_case "of_spec errors" `Quick test_of_spec_errors;
        Alcotest.test_case "candidate budget" `Quick test_candidates_respect_budget;
        Alcotest.test_case "candidate dedupe (extras)" `Quick
          test_candidate_dedupe;
        Alcotest.test_case "with_mapping" `Quick test_with_mapping;
        Alcotest.test_case "JSON round-trip" `Quick test_json_roundtrip;
        Alcotest.test_case "malformed hierarchy rejected" `Quick
          test_of_json_bad_hierarchy;
        Alcotest.test_case "1x1 hierarchy is the flat machine" `Quick
          test_degenerate_hierarchy_is_flat;
        Alcotest.test_case "of_file / of_spec path" `Quick test_of_file;
        Alcotest.test_case "garbage JSON rejected" `Quick test_of_json_garbage;
        Alcotest.test_case "bank pressure from stats" `Quick
          test_bank_pressure_of_stats;
        Alcotest.test_case "bank pressure errors" `Quick test_bank_pressure_errors;
        QCheck_alcotest.to_alcotest prop_choice_permutation_invariant;
        QCheck_alcotest.to_alcotest prop_hierarchy_json_roundtrip;
      ] );
  ]
