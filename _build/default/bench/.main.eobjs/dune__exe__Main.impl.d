bench/main.ml: Affine Analyze Array Bechamel Benchmark Core Dram Format Harness Hashtbl Lang List Measure Noc Printf Sim Staged Sys Test Time Toolkit Unix Workloads
