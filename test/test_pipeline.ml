(* The staged pass pipeline (Core.Pipeline): equivalence with the legacy
   one-shot transform on every workload, the inter-pass verifier on a
   deliberately corrupted mapping, golden --emit stage dumps, located
   lexer/semantic diagnostics, and a parse∘print round-trip property. *)

module Ast = Lang.Ast
module Diag = Lang.Diag
module Span = Lang.Span
module Pipeline = Core.Pipeline
module Transform = Core.Transform
module D2c = Core.Data_to_core

let default_cfg () =
  match Sim.Config.build ~scaled:false () with
  | Ok c -> Sim.Config.customize_config c
  | Error e -> failwith e

let read_file path =
  let ic = open_in_bin path in
  let s = really_input_string ic (in_channel_length ic) in
  close_in ic;
  s

let jacobi_path = "../examples/jacobi.mc"

let parse ?file src =
  match Lang.Parser.parse_result ?file src with
  | Ok p -> p
  | Error _ -> Alcotest.fail "parse failed"

let transformed_of (r : Pipeline.t) what =
  match r.Pipeline.artifacts.Pipeline.transformed with
  | Some t -> t
  | None -> Alcotest.failf "%s: pipeline produced no transformed program" what

(* --- pipeline vs legacy transform ------------------------------------- *)

(* The pipeline (parse → check → analyze → solve → mapping → customize →
   rewrite) must produce byte-identical transformed code to the legacy
   monolithic [Transform.run] + [rewrite_program] path, with the verifier
   on and silent. *)

let check_matches_legacy ~what ~legacy r =
  Alcotest.(check bool) (what ^ ": pipeline ok") true r.Pipeline.ok;
  (* notes and warnings (C002/C003) are allowed; errors are not *)
  Alcotest.(check (list string))
    (what ^ ": verifier is silent")
    []
    (List.map Diag.to_string (List.filter Diag.is_error r.Pipeline.diags));
  Alcotest.(check string)
    (what ^ ": transformed code is byte-identical")
    legacy
    (Ast.program_to_string (transformed_of r what))

let test_workloads_match_legacy () =
  let cfg = default_cfg () in
  List.iter
    (fun (app : Workloads.App.t) ->
      let program = Workloads.App.program app in
      let analysis = Lang.Analysis.analyze program in
      let profile arr = Workloads.Profile.for_transform app analysis arr in
      let legacy =
        Ast.program_to_string
          (Transform.rewrite_program (Transform.run ~profile cfg analysis) program)
      in
      let r = Pipeline.compile ~profile ~cfg (Pipeline.Program program) in
      check_matches_legacy ~what:app.Workloads.App.name ~legacy r)
    Workloads.Suite.all

let test_jacobi_matches_legacy () =
  let cfg = default_cfg () in
  let src = read_file jacobi_path in
  let program = parse ~file:jacobi_path src in
  let legacy =
    Ast.program_to_string
      (Transform.rewrite_program
         (Transform.run cfg (Lang.Analysis.analyze program))
         program)
  in
  let r = Pipeline.compile ~cfg (Pipeline.Source { file = jacobi_path; src }) in
  check_matches_legacy ~what:"jacobi.mc" ~legacy r

(* --- the verifier on a corrupted mapping ------------------------------ *)

(* Zero out the data-partition row of a solved array's [U]: the verifier
   must report it as located error diagnostics (unimodularity and
   solution-row rechecks), never crash. *)
let test_verifier_catches_corrupted_mapping () =
  let cfg = default_cfg () in
  let src = read_file jacobi_path in
  let r =
    Pipeline.compile ~verify:false ~cfg
      (Pipeline.Source { file = jacobi_path; src })
  in
  let get what = function
    | Some x -> x
    | None -> Alcotest.failf "pipeline did not produce %s" what
  in
  let art = r.Pipeline.artifacts in
  let program = get "a program" art.Pipeline.program in
  let solved = get "solutions" art.Pipeline.solved in
  let report = get "a report" art.Pipeline.report in
  let transformed = get "transformed code" art.Pipeline.transformed in
  let corrupted_any = ref false in
  let zero_row u =
    let u = Affine.Matrix.copy u in
    Array.fill u.(Transform.v_dim) 0 (Array.length u.(Transform.v_dim)) 0;
    u
  in
  let corrupted =
    List.map
      (fun (s : Transform.solved) ->
        match s.Transform.s_outcome with
        | Transform.Solved sol ->
          corrupted_any := true;
          {
            s with
            Transform.s_outcome =
              Transform.Solved { sol with D2c.u_matrix = zero_row sol.D2c.u_matrix };
          }
        | Transform.Kept _ -> s)
      solved
  in
  Alcotest.(check bool) "jacobi has a solved array to corrupt" true !corrupted_any;
  (* the same bogus matrix, as the customize pass carries it *)
  let corrupted_report =
    {
      report with
      Transform.decisions =
        List.map
          (fun (d : Transform.decision) ->
            if d.Transform.optimized then
              {
                d with
                Transform.layout =
                  {
                    d.Transform.layout with
                    Core.Layout.u = zero_row d.Transform.layout.Core.Layout.u;
                  };
              }
            else d)
          report.Transform.decisions;
    }
  in
  let diags =
    Core.Verify.run ~cfg ~solved:corrupted ~report:corrupted_report
      ~original:program ~transformed
  in
  Alcotest.(check bool) "the corruption is reported" true (diags <> []);
  Alcotest.(check bool)
    "all corruption diagnostics are errors" true
    (List.for_all Diag.is_error diags);
  let codes = List.sort_uniq compare (List.map (fun d -> d.Diag.code) diags) in
  Alcotest.(check bool)
    "unimodularity violation reported (V001)" true (List.mem "V001" codes);
  Alcotest.(check bool)
    "solution-row violation reported (V002)" true (List.mem "V002" codes);
  List.iter
    (fun (d : Diag.t) ->
      Alcotest.(check bool)
        ("located: " ^ d.Diag.message)
        false
        (Span.is_dummy d.Diag.span);
      Alcotest.(check string)
        "diagnostic points into jacobi.mc" jacobi_path d.Diag.span.Span.file)
    diags

(* --- platform-driven mapping selection (C002) ------------------------- *)

let test_auto_mapping_selection () =
  let platform =
    match Core.Platform.of_spec "mesh8x8-mc8" with
    | Ok p -> p
    | Error e -> Alcotest.fail e
  in
  let cfg = default_cfg () in
  let src = read_file jacobi_path in
  let r =
    Pipeline.compile ~platform ~bank_pressure:1.0 ~cfg
      (Pipeline.Source { file = jacobi_path; src })
  in
  Alcotest.(check bool) "pipeline ok" true r.Pipeline.ok;
  (match r.Pipeline.artifacts.Pipeline.mapping_scores with
  | Some scored ->
    Alcotest.(check int) "three candidates scored" 3 (List.length scored)
  | None -> Alcotest.fail "no mapping scores recorded");
  let c002 =
    List.filter (fun (d : Diag.t) -> String.equal d.Diag.code "C002") r.Pipeline.diags
  in
  (match c002 with
  | [ d ] ->
    Alcotest.(check bool) "note severity" true (d.Diag.severity = Diag.Note);
    Alcotest.(check bool) "mentions the winner" true
      (Astring.String.is_infix ~affix:"selected among 3 candidates" d.Diag.message)
  | _ -> Alcotest.fail "expected exactly one C002 selection note");
  (* selection is calibration-sensitive: high pressure flips to 8 MCs *)
  let winner pressure =
    let r =
      Pipeline.compile ~platform ~bank_pressure:pressure ~cfg
        (Pipeline.Source { file = jacobi_path; src })
    in
    match r.Pipeline.artifacts.Pipeline.mapping_scores with
    | Some (best :: _) -> best.Core.Mapping_select.cluster.Core.Cluster.name
    | _ -> Alcotest.fail "no scores"
  in
  Alcotest.(check string) "light pressure keeps M1" "M1" (winner 0.25);
  Alcotest.(check string) "heavy pressure picks 8 MCs" "M1x8" (winner 4.0)

(* --- placement search through the pipeline (C004) --------------------- *)

let test_search_mapping_selection () =
  let platform =
    match Core.Platform.of_spec "mesh8x8-mc8" with
    | Ok p -> p
    | Error e -> Alcotest.fail e
  in
  let cfg = default_cfg () in
  let src = read_file jacobi_path in
  let r =
    Pipeline.compile ~platform ~search:Core.Place_search.default_params
      ~bank_pressure:1.0 ~cfg
      (Pipeline.Source { file = jacobi_path; src })
  in
  Alcotest.(check bool) "pipeline ok" true r.Pipeline.ok;
  let outcome =
    match r.Pipeline.artifacts.Pipeline.search with
    | Some o -> o
    | None -> Alcotest.fail "no search outcome recorded"
  in
  Alcotest.(check bool) "searched cost <= best preset" true
    (outcome.Core.Place_search.cost
    <= outcome.Core.Place_search.preset_best.Core.Mapping_select.cost +. 1e-9);
  (* the searched machine competes: presets plus one searched candidate *)
  (match r.Pipeline.artifacts.Pipeline.mapping_scores with
  | Some scored -> Alcotest.(check int) "four candidates scored" 4 (List.length scored)
  | None -> Alcotest.fail "no mapping scores recorded");
  let c004 =
    List.filter (fun (d : Diag.t) -> String.equal d.Diag.code "C004") r.Pipeline.diags
  in
  Alcotest.(check int) "summary + trajectory notes" 2 (List.length c004);
  Alcotest.(check bool) "summary mentions the preset comparison" true
    (List.exists
       (fun (d : Diag.t) ->
         Astring.String.is_infix ~affix:"vs best preset" d.Diag.message)
       c004);
  Alcotest.(check bool) "trajectory note present" true
    (List.exists
       (fun (d : Diag.t) ->
         Astring.String.is_infix ~affix:"search trajectory:" d.Diag.message)
       c004);
  (* duplicate cluster names in the C002 table are disambiguated by
     placement, so the selection note still identifies one machine *)
  (match
     List.find_opt
       (fun (d : Diag.t) -> String.equal d.Diag.code "C002")
       r.Pipeline.diags
   with
  | Some d ->
    Alcotest.(check bool) "C002 disambiguates by placement" true
      (Astring.String.is_infix ~affix:"@" d.Diag.message)
  | None -> Alcotest.fail "expected a C002 selection note");
  (* on this platform the searched placement strictly beats every preset,
     so the chosen config must carry it *)
  match r.Pipeline.artifacts.Pipeline.cfg with
  | Some c ->
    Alcotest.(check string) "chosen placement is the searched one"
      outcome.Core.Place_search.platform.Core.Platform.placement
        .Noc.Placement.name
      c.Core.Customize.placement.Noc.Placement.name
  | None -> Alcotest.fail "no chosen config"

(* --- C003: fixable kept-array warnings -------------------------------- *)

let test_keep_warning_no_profile () =
  let cfg = default_cfg () in
  let src =
    {|
param N = 256;
array VALS[N];
array X[N];
index COLS[N];
parfor i = 0 to N-1 { VALS[i] = VALS[i] + X[COLS[i]]; }
|}
  in
  let r = Pipeline.compile ~cfg (Pipeline.Source { file = "t.mc"; src }) in
  Alcotest.(check bool) "pipeline still ok" true r.Pipeline.ok;
  let c003 =
    List.filter (fun (d : Diag.t) -> String.equal d.Diag.code "C003") r.Pipeline.diags
  in
  match c003 with
  | [ d ] ->
    Alcotest.(check bool) "warning severity" true (d.Diag.severity = Diag.Warning);
    Alcotest.(check bool) "names the array" true
      (Astring.String.is_infix ~affix:"array X" d.Diag.message);
    Alcotest.(check bool) "located at the declaration" false
      (Span.is_dummy d.Diag.span);
    Alcotest.(check bool) "suggests the fix" true
      (Astring.String.is_infix ~affix:"--app" d.Diag.message)
  | ds -> Alcotest.failf "expected exactly one C003 warning, got %d" (List.length ds)

(* --- V007: emitted-C access replay ------------------------------------ *)

let test_codegen_replay_clean () =
  let cfg = default_cfg () in
  let src = read_file jacobi_path in
  let r =
    Pipeline.compile ~codegen:"jacobi" ~cfg
      (Pipeline.Source { file = jacobi_path; src })
  in
  Alcotest.(check bool) "pipeline ok" true r.Pipeline.ok;
  Alcotest.(check (list string)) "replay is silent on a correct pipeline" []
    (List.map Diag.to_string
       (List.filter (fun (d : Diag.t) -> String.equal d.Diag.code "V007")
          r.Pipeline.diags))

let test_codegen_replay_catches_mismatch () =
  let cfg = default_cfg () in
  let src = read_file jacobi_path in
  let r =
    Pipeline.compile ~verify:false ~cfg
      (Pipeline.Source { file = jacobi_path; src })
  in
  let get what = function
    | Some x -> x
    | None -> Alcotest.failf "pipeline did not produce %s" what
  in
  let art = r.Pipeline.artifacts in
  let program = get "a program" art.Pipeline.program in
  let report = get "a report" art.Pipeline.report in
  (* feed the replay the UNtransformed program as if it were the emitted
     one: the C side then touches row-major addresses while the report
     promises customized layouts — the replay must flag the mismatch *)
  let diags =
    Core.Verify.check_codegen ~report ~original:program ~transformed:program
  in
  Alcotest.(check bool) "mismatch reported" true (diags <> []);
  List.iter
    (fun (d : Diag.t) ->
      Alcotest.(check string) "code" "V007" d.Diag.code;
      Alcotest.(check bool) "is error" true (Diag.is_error d))
    diags

(* --- golden --emit stage dumps ---------------------------------------- *)

let check_golden name got =
  let want = String.trim (read_file ("golden/" ^ name)) in
  Alcotest.(check string) name want (String.trim got)

let emit_or_fail r stage =
  match Pipeline.emit r stage with
  | Some s -> s
  | None -> Alcotest.fail "pipeline did not reach the requested stage"

let test_golden_emits () =
  let cfg = default_cfg () in
  let src = read_file jacobi_path in
  let rj = Pipeline.compile ~cfg (Pipeline.Source { file = jacobi_path; src }) in
  check_golden "jacobi_solve.txt" (emit_or_fail rj Pipeline.Solve);
  check_golden "jacobi_transformed.txt" (emit_or_fail rj Pipeline.Transformed);
  let app = Workloads.Suite.by_name "hpccg" in
  let program = Workloads.App.program app in
  let analysis = Lang.Analysis.analyze program in
  let profile arr = Workloads.Profile.for_transform app analysis arr in
  let rh = Pipeline.compile ~profile ~cfg (Pipeline.Program program) in
  check_golden "hpccg_solve.txt" (emit_or_fail rh Pipeline.Solve)

(* --- located lexical and semantic diagnostics ------------------------- *)

let test_block_comments_are_whitespace () =
  let plain = "param N = 8; array A[N]; parfor i = 0 to N-1 { A[i] = i; }" in
  let commented =
    "param N = 8; /* size */ array A[N];\n\
     /* a block comment\n\
     \   spanning lines */\n\
     parfor i = 0 to N-1 { A[i] = i; }"
  in
  Alcotest.(check bool)
    "block comments lex as whitespace" true
    (Ast.equal_program (parse plain) (parse commented))

let test_unterminated_comment_located () =
  let src = "array A[4];\n/* oops" in
  match Lang.Lexer.scan ~file:"t.mc" src with
  | Ok _ -> Alcotest.fail "unterminated block comment not reported"
  | Error d ->
    Alcotest.(check string) "code" "L002" d.Diag.code;
    Alcotest.(check string) "file" "t.mc" d.Diag.span.Span.file;
    Alcotest.(check int)
      "span starts at the opening /*"
      (String.index src '/')
      d.Diag.span.Span.lo;
    Alcotest.(check bool) "has an explanatory note" true (d.Diag.notes <> [])

let test_stray_character_located () =
  let src = "array A[4]; ? x" in
  match Lang.Lexer.scan ~file:"t.mc" src with
  | Ok _ -> Alcotest.fail "stray character not reported"
  | Error d ->
    Alcotest.(check string) "code" "L001" d.Diag.code;
    Alcotest.(check int)
      "span points at the character"
      (String.index src '?')
      d.Diag.span.Span.lo

let test_undeclared_array_located () =
  let src = "param N = 8;\narray A[N];\nparfor i = 0 to N-1 { B[i] = A[i]; }" in
  match Lang.Parser.parse_result ~file:"t.mc" src with
  | Ok _ -> Alcotest.fail "undeclared array not reported"
  | Error ds ->
    let d = List.hd ds in
    Alcotest.(check string) "code" "S004" d.Diag.code;
    Alcotest.(check int)
      "span starts at the reference"
      (String.index src 'B')
      d.Diag.span.Span.lo

(* --- parse ∘ print round-trip ----------------------------------------- *)

(* Random ASTs restricted to the shapes the printer represents
   canonically: integer literals are non-negative (negative ones print as
   unary minus and re-parse as [Neg]) and the right operand of [+] is
   never itself [+]/[-] (additive chains print left-associated, without
   parentheses).  Everything else — unary minus, products, nested
   compounds — round-trips because [pp_atom] parenthesizes them. *)

let arrays = [ ("A", 2); ("B", 2); ("V", 1) ]

let gen_program : Ast.program QCheck.Gen.t =
  let open QCheck.Gen in
  let gen_leaf =
    frequency
      [
        (2, map (fun n -> Ast.Int n) (int_range 0 99));
        (3, map (fun v -> Ast.Var v) (oneofl [ "i"; "j"; "k"; "N"; "M" ]));
      ]
  in
  let rec gen_expr depth =
    if depth <= 0 then gen_leaf
    else
      frequency
        [
          (4, gen_leaf);
          (2, map2 (fun a b -> Ast.Add (a, b)) (gen_expr (depth - 1)) (gen_term (depth - 1)));
          (2, map2 (fun a b -> Ast.Sub (a, b)) (gen_expr (depth - 1)) (gen_expr (depth - 1)));
          (1, map (fun a -> Ast.Neg a) (gen_expr (depth - 1)));
          (1, map2 (fun a b -> Ast.Mul (a, b)) (gen_expr (depth - 1)) (gen_expr (depth - 1)));
          (1, map2 (fun a b -> Ast.Div (a, b)) (gen_expr (depth - 1)) (gen_expr (depth - 1)));
          (1, map2 (fun a b -> Ast.Mod (a, b)) (gen_expr (depth - 1)) (gen_expr (depth - 1)));
          (1, gen_load (depth - 1));
        ]
  (* anything but a top-level [+]/[-]: safe as the right operand of [+] *)
  and gen_term depth =
    if depth <= 0 then gen_leaf
    else
      frequency
        [
          (4, gen_leaf);
          (1, map (fun a -> Ast.Neg a) (gen_expr (depth - 1)));
          (1, map2 (fun a b -> Ast.Mul (a, b)) (gen_expr (depth - 1)) (gen_expr (depth - 1)));
          (1, gen_load (depth - 1));
        ]
  and gen_load depth =
    let* name, rank = oneofl arrays in
    let* subs = list_repeat rank (gen_expr depth) in
    return (Ast.Load (Ast.mk_ref ~array:name ~subs ()))
  in
  let gen_assign depth =
    let* name, rank = oneofl arrays in
    let* subs = list_repeat rank (gen_expr depth) in
    let* rhs = gen_expr depth in
    return (Ast.Assign (Ast.mk_ref ~array:name ~subs (), rhs))
  in
  let rec gen_stmt depth =
    if depth <= 0 then gen_assign 1
    else
      frequency
        [ (3, gen_assign depth); (2, gen_loop depth); (1, gen_if depth) ]
  and gen_loop depth =
    let* index = oneofl [ "i"; "j"; "k" ] in
    let* lo = gen_expr 1 in
    let* hi = gen_expr 1 in
    let* parallel = bool in
    let* body = list_size (int_range 1 2) (gen_stmt (depth - 1)) in
    return (Ast.Loop { Ast.index; lo; hi; parallel; body; loop_span = Span.dummy })
  and gen_if depth =
    let* lhs = gen_expr 1 in
    let* op = oneofl [ Ast.Lt; Ast.Le; Ast.Gt; Ast.Ge; Ast.Eq; Ast.Ne ] in
    let* rhs = gen_expr 1 in
    let* then_ = list_size (int_range 1 2) (gen_stmt (depth - 1)) in
    let* else_ = list_size (int_range 0 1) (gen_stmt (depth - 1)) in
    return (Ast.If { Ast.lhs; op; rhs; then_; else_; cond_span = Span.dummy })
  in
  let* nv = int_range 0 99 in
  let* mv = int_range 0 99 in
  let decls =
    List.map
      (fun (name, rank) ->
        Ast.mk_decl ~name ~extents:(List.init rank (fun _ -> Ast.Int 8)) ())
      arrays
  in
  (* top level of the grammar only admits loop nests *)
  let* nests = list_size (int_range 1 3) (gen_loop 2) in
  return { Ast.params = [ ("N", nv); ("M", mv) ]; decls; nests }

let prop_roundtrip =
  QCheck.Test.make ~name:"parse (print ast) == ast" ~count:300
    (QCheck.make ~print:Ast.program_to_string gen_program)
    (fun p ->
      let printed = Ast.program_to_string p in
      match Lang.Parser.parse_result printed with
      | Error ds ->
        QCheck.Test.fail_reportf "printed program does not re-parse: %s"
          (Diag.to_string (List.hd ds))
      | Ok q -> Ast.equal_program p q)

let suite =
  [
    ( "pipeline",
      [
        Alcotest.test_case "matches legacy transform on all workloads" `Quick
          test_workloads_match_legacy;
        Alcotest.test_case "matches legacy transform on jacobi.mc" `Quick
          test_jacobi_matches_legacy;
        Alcotest.test_case "verifier catches a corrupted mapping" `Quick
          test_verifier_catches_corrupted_mapping;
        Alcotest.test_case "auto mapping selection (C002)" `Quick
          test_auto_mapping_selection;
        Alcotest.test_case "placement search selection (C004)" `Quick
          test_search_mapping_selection;
        Alcotest.test_case "kept-array warning (C003)" `Quick
          test_keep_warning_no_profile;
        Alcotest.test_case "codegen replay clean (V007)" `Quick
          test_codegen_replay_clean;
        Alcotest.test_case "codegen replay catches mismatch (V007)" `Quick
          test_codegen_replay_catches_mismatch;
        Alcotest.test_case "golden --emit stage dumps" `Quick test_golden_emits;
        Alcotest.test_case "block comments are whitespace" `Quick
          test_block_comments_are_whitespace;
        Alcotest.test_case "unterminated comment is located" `Quick
          test_unterminated_comment_located;
        Alcotest.test_case "stray character is located" `Quick
          test_stray_character_located;
        Alcotest.test_case "undeclared array is located" `Quick
          test_undeclared_array_located;
        QCheck_alcotest.to_alcotest prop_roundtrip;
      ] );
  ]
