(** Abstract syntax of the mini affine loop-nest language.

    This is the input language of the layout-transformation pass: array
    declarations plus (possibly parallel) rectangular loop nests whose
    statements assign between affine array references.  Subscripts may also
    go through integer index arrays ([a[col[j]]]), which is the irregular
    case handled by profiling-based approximation (paper, Section 5.4). *)

type expr =
  | Int of int
  | Var of string  (** loop iterator or program parameter *)
  | Neg of expr
  | Add of expr * expr
  | Sub of expr * expr
  | Mul of expr * expr
  | Div of expr * expr  (** integer division, used by transformed code *)
  | Mod of expr * expr
  | Load of ref_  (** array read appearing inside an expression *)

and ref_ = { array : string; subs : expr list }

type relop = Lt | Le | Gt | Ge | Eq | Ne

type stmt =
  | Assign of ref_ * expr  (** [ref = expr;] — one write, several reads *)
  | Loop of loop
  | If of cond  (** the pass conservatively assumes both branches run *)

and cond = { lhs : expr; op : relop; rhs : expr; then_ : stmt list; else_ : stmt list }

and loop = {
  index : string;
  lo : expr;
  hi : expr;  (** inclusive: [for i = lo to hi] *)
  parallel : bool;  (** [parfor]: iterations block-distributed over cores *)
  body : stmt list;
}

type decl = {
  name : string;
  extents : expr list;  (** per-dimension sizes, constant after params *)
  index_array : bool;
      (** integer-valued array used only in subscripts (e.g. CRS column
          indices); never layout-transformed *)
}

type program = {
  params : (string * int) list;  (** symbolic size parameters *)
  decls : decl list;
  nests : stmt list;  (** top-level loop nests, executed in order *)
}

let rec pp_expr ppf = function
  | Int n -> Format.pp_print_int ppf n
  | Var s -> Format.pp_print_string ppf s
  | Neg e -> Format.fprintf ppf "-%a" pp_atom e
  | Add (a, b) -> Format.fprintf ppf "%a + %a" pp_expr a pp_expr b
  | Sub (a, b) -> Format.fprintf ppf "%a - %a" pp_expr a pp_atom b
  | Mul (a, b) -> Format.fprintf ppf "%a*%a" pp_atom a pp_atom b
  | Div (a, b) -> Format.fprintf ppf "%a/%a" pp_atom a pp_atom b
  | Mod (a, b) -> Format.fprintf ppf "%a%%%a" pp_atom a pp_atom b
  | Load r -> pp_ref ppf r

and pp_atom ppf e =
  match e with
  | Int _ | Var _ | Load _ -> pp_expr ppf e
  | Neg _ | Add _ | Sub _ | Mul _ | Div _ | Mod _ ->
    Format.fprintf ppf "(%a)" pp_expr e

and pp_ref ppf { array; subs } =
  Format.pp_print_string ppf array;
  List.iter (fun s -> Format.fprintf ppf "[%a]" pp_expr s) subs

let pp_relop ppf op =
  Format.pp_print_string ppf
    (match op with
    | Lt -> "<"
    | Le -> "<="
    | Gt -> ">"
    | Ge -> ">="
    | Eq -> "=="
    | Ne -> "!=")

let rec pp_stmt ppf = function
  | Assign (r, e) -> Format.fprintf ppf "@[<h>%a = %a;@]" pp_ref r pp_expr e
  | Loop l ->
    Format.fprintf ppf "@[<v 2>%s %s = %a to %a {@,%a@]@,}"
      (if l.parallel then "parfor" else "for")
      l.index pp_expr l.lo pp_expr l.hi pp_body l.body
  | If c ->
    Format.fprintf ppf "@[<v 2>if (%a %a %a) {@,%a@]@,}" pp_expr c.lhs pp_relop
      c.op pp_expr c.rhs pp_body c.then_;
    if c.else_ <> [] then
      Format.fprintf ppf "@[<v 2> else {@,%a@]@,}" pp_body c.else_

and pp_body ppf body =
  Format.pp_print_list
    ~pp_sep:(fun ppf () -> Format.fprintf ppf "@,")
    pp_stmt ppf body

let pp_decl ppf d =
  Format.fprintf ppf "@[<h>%s %s%a;@]"
    (if d.index_array then "index" else "array")
    d.name
    (fun ppf -> List.iter (fun e -> Format.fprintf ppf "[%a]" pp_expr e))
    d.extents

let pp_program ppf p =
  Format.fprintf ppf "@[<v>";
  List.iter (fun (n, v) -> Format.fprintf ppf "param %s = %d;@," n v) p.params;
  List.iter (fun d -> Format.fprintf ppf "%a@," pp_decl d) p.decls;
  Format.pp_print_list
    ~pp_sep:(fun ppf () -> Format.fprintf ppf "@,")
    pp_stmt ppf p.nests;
  Format.fprintf ppf "@]"

let program_to_string p = Format.asprintf "%a" pp_program p
