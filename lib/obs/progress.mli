(** NDJSON progress streams: one minified JSON object per line, flushed
    per event, so a concurrently running reader (or a post-mortem one)
    always sees a prefix of complete events.

    The sweep orchestrator emits job lifecycle events through a {!sink};
    [sweep status --follow] tails the file with {!follow}.  Event payloads
    are plain {!Json.t} objects — this module fixes only the framing, plus
    a wall-clock ["ts"] stamp added to every event. *)

type sink

val null : sink
(** Swallows every event (the default when no progress file is wanted). *)

val file_sink : string -> (sink, string) result
(** Opens (truncating) a progress file.  Events append one line each. *)

val emit : sink -> Json.t -> unit
(** Writes one event line (adding a ["ts"] epoch-seconds field) and
    flushes.  Emission never raises: a write failure silently disables the
    sink — progress is advisory, never worth failing a sweep over. *)

val close : sink -> unit

val read : string -> (Json.t list, string) result
(** All complete events currently in a progress file (a trailing partial
    line, from a concurrent writer, is ignored). *)

val follow :
  ?poll_s:float ->
  ?timeout_s:float ->
  stop:(Json.t -> bool) ->
  on_event:(Json.t -> unit) ->
  string ->
  (unit, string) result
(** Tails a progress file: waits for it to appear, then delivers each
    complete event line to [on_event] as it lands, polling every [poll_s]
    (default 0.2 s).  Returns [Ok ()] once [stop] accepts an event, or
    [Error _] after [timeout_s] (default 60 s) without one — bounded, so a
    crashed writer cannot hang a CI job. *)
