lib/os/page_alloc.mli: Dram
