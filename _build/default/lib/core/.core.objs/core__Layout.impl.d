lib/core/layout.ml: Affine Array Format Fun Lang List Option Printf
