lib/workloads/swim.mli: App
