type t = { name : string; nodes : int array }

let count p = Array.length p.nodes

let of_coords_result topo name coords =
  let off = ref None in
  let nodes =
    Array.map
      (fun c ->
        if not (Topology.in_mesh topo c) then begin
          if !off = None then off := Some c;
          0
        end
        else Topology.node_of_coord topo c)
      coords
  in
  match !off with
  | Some c ->
    Error
      (Printf.sprintf "Placement %s: site (%d,%d) is off the %dx%d mesh" name
         c.Coord.x c.Coord.y topo.Topology.width topo.Topology.height)
  | None -> Ok { name; nodes }

(* Internal helper for the fixed preset placements below, whose sites are
   in-mesh by construction on any mesh large enough to host them. *)
let of_coords topo name coords =
  match of_coords_result topo name coords with
  | Ok p -> p
  | Error e -> invalid_arg e

let corners topo =
  let w = topo.Topology.width - 1 and h = topo.Topology.height - 1 in
  of_coords topo "P1-corners"
    [| Coord.make 0 0; Coord.make w 0; Coord.make 0 h; Coord.make w h |]

let edge_centers topo =
  let w = topo.Topology.width and h = topo.Topology.height in
  of_coords topo "P2-edge-centers"
    [|
      Coord.make ((w / 2) - 1) 0;
      Coord.make (w - 1) ((h / 2) - 1);
      Coord.make 0 (h / 2);
      Coord.make (w / 2) (h - 1);
    |]

let top_bottom topo =
  let w = topo.Topology.width and h = topo.Topology.height in
  of_coords topo "P3-top-bottom"
    [|
      Coord.make 1 0;
      Coord.make (w - 2) 0;
      Coord.make 1 (h - 1);
      Coord.make (w - 2) (h - 1);
    |]

(* Perimeter nodes, clockwise from the NW corner. *)
let perimeter topo =
  let w = topo.Topology.width and h = topo.Topology.height in
  let top = List.init w (fun x -> Coord.make x 0) in
  let right = List.init (h - 2) (fun i -> Coord.make (w - 1) (i + 1)) in
  let bottom = List.init w (fun x -> Coord.make (w - 1 - x) (h - 1)) in
  let left = List.init (h - 2) (fun i -> Coord.make 0 (h - 2 - i)) in
  Array.of_list (top @ right @ bottom @ left)

let ring_result topo ~count =
  let per = perimeter topo in
  let n = Array.length per in
  if count <= 0 || count > n then
    Error
      (Printf.sprintf
         "Placement.ring: %d MCs do not fit the %d-node perimeter" count n)
  else
    of_coords_result topo
      (Printf.sprintf "ring-%d" count)
      (Array.init count (fun j -> per.(j * n / count)))

let assign_result topo ~name ~sites ~centroids =
  if Array.length sites < Array.length centroids then
    Error
      (Printf.sprintf "Placement.assign: %d sites for %d controllers"
         (Array.length sites) (Array.length centroids))
  else begin
    let n = Array.length centroids in
    (* greedy seed in MC-index order *)
    let used = Array.make (Array.length sites) false in
    let chosen = Array.make n 0 in
    Array.iteri
      (fun m c ->
        let best = ref (-1) and bestd = ref max_int in
        Array.iteri
          (fun i pc ->
            if not used.(i) then begin
              let d = Coord.manhattan c pc in
              if d < !bestd then begin
                bestd := d;
                best := i
              end
            end)
          sites;
        assert (!best >= 0);
        used.(!best) <- true;
        chosen.(m) <- !best)
      centroids;
    (* 2-opt refinement: greedy can strand a later controller far from its
       cluster (e.g. the edge-center placement); swap assignments while the
       total centroid distance decreases *)
    let dist m i = Coord.manhattan centroids.(m) sites.(i) in
    let improved = ref true in
    while !improved do
      improved := false;
      for a = 0 to n - 1 do
        for b = a + 1 to n - 1 do
          let cur = dist a chosen.(a) + dist b chosen.(b) in
          let swapped = dist a chosen.(b) + dist b chosen.(a) in
          if swapped < cur then begin
            let t = chosen.(a) in
            chosen.(a) <- chosen.(b);
            chosen.(b) <- t;
            improved := true
          end
        done
      done
    done;
    of_coords_result topo name (Array.map (fun i -> sites.(i)) chosen)
  end

let for_centroids_result topo ~name ~centroids =
  assign_result topo ~name ~sites:(perimeter topo) ~centroids

let mc_node p m = p.nodes.(m)

let nearest p topo node =
  let best = ref 0 and bestd = ref max_int in
  Array.iteri
    (fun m mn ->
      let d = Topology.distance topo node mn in
      if d < !bestd then begin
        bestd := d;
        best := m
      end)
    p.nodes;
  !best

let avg_distance p topo =
  let total = ref 0 in
  let n = Topology.nodes topo in
  for node = 0 to n - 1 do
    let m = nearest p topo node in
    total := !total + Topology.distance topo node p.nodes.(m)
  done;
  float_of_int !total /. float_of_int n
