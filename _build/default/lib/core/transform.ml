module Vec = Affine.Vec
module Analysis = Lang.Analysis
module Ast = Lang.Ast

type why_kept =
  | Index_array
  | No_parallel_reference
  | No_solution
  | Bad_approximation of float

type decision = {
  info : Analysis.array_info;
  layout : Layout.t;
  optimized : bool;
  kept : why_kept option;
  satisfied_weight : int;
  total_weight : int;
}

type report = {
  decisions : decision list;
  pct_arrays_optimized : float;
  pct_refs_satisfied : float;
}

(* Collect the weighted references that participate in solving: affine
   references under a parallel loop, plus profiled approximations of
   indexed references.  Returns the refs and the worst approximation
   inaccuracy encountered (to report arrays dropped for bad fits). *)
let weighted_refs ?profile ~threshold (info : Analysis.array_info) =
  let refs = ref [] and worst_fit = ref None in
  let total = ref 0 in
  List.iter
    (fun (o : Analysis.occurrence) ->
      match (o.kind, o.par_dim) with
      | Analysis.Affine_ref access, Some u ->
        total := !total + o.trip_count;
        refs :=
          { Data_to_core.access; u; weight = o.trip_count } :: !refs
      | Analysis.Affine_ref _, None -> ()
      | Analysis.Indexed_ref, Some u -> (
        total := !total + o.trip_count;
        match profile with
        | None -> ()
        | Some f -> (
          match Indexed.approximate ~samples:(f info.decl.Ast.name) with
          | Some (access, inaccuracy) when inaccuracy <= threshold ->
            refs :=
              { Data_to_core.access; u; weight = o.trip_count } :: !refs
          | Some (_, inaccuracy) ->
            worst_fit :=
              Some
                (match !worst_fit with
                | None -> inaccuracy
                | Some w -> max w inaccuracy)
          | None -> ()))
      | Analysis.Indexed_ref, None -> ())
    info.occurrences;
  (List.rev !refs, !total, !worst_fit)

let decide ?profile ~threshold (cfg : Customize.config)
    (info : Analysis.array_info) =
  let name = info.decl.Ast.name in
  let identity =
    Layout.identity ~array:name ~extents:info.extents
      ~elem_bytes:cfg.Customize.elem_bytes
  in
  let keep why total =
    {
      info;
      layout = identity;
      optimized = false;
      kept = Some why;
      satisfied_weight = 0;
      total_weight = total;
    }
  in
  if info.decl.Ast.index_array then keep Index_array 0
  else begin
    let refs, total, worst_fit = weighted_refs ?profile ~threshold info in
    match refs with
    | [] -> (
      match worst_fit with
      | Some w -> keep (Bad_approximation w) total
      | None -> keep No_parallel_reference total)
    | _ -> (
      (* data-partition dimension: the slowest-varying (footnote 3) *)
      let v = 0 in
      match Data_to_core.solve ~refs ~v with
      | None -> keep No_solution total
      | Some sol ->
        let layout =
          Customize.customize cfg ~array:name ~extents:info.extents
            ~u:sol.Data_to_core.u_matrix ~v
        in
        {
          info;
          layout;
          optimized = true;
          kept = None;
          satisfied_weight = sol.Data_to_core.satisfied_weight;
          total_weight = total;
        })
  end

let run ?profile ?(threshold = Indexed.default_threshold)
    (cfg : Customize.config) (analysis : Analysis.t) =
  let decisions =
    List.map (decide ?profile ~threshold cfg) analysis.Analysis.arrays
  in
  let data_arrays =
    List.filter (fun d -> not d.info.Analysis.decl.Ast.index_array) decisions
  in
  let n_opt = List.length (List.filter (fun d -> d.optimized) data_arrays) in
  let n_all = List.length data_arrays in
  let sat = List.fold_left (fun a d -> a + d.satisfied_weight) 0 data_arrays in
  let tot = List.fold_left (fun a d -> a + d.total_weight) 0 data_arrays in
  {
    decisions;
    pct_arrays_optimized =
      (if n_all = 0 then 0. else 100. *. float_of_int n_opt /. float_of_int n_all);
    pct_refs_satisfied =
      (if tot = 0 then 0. else 100. *. float_of_int sat /. float_of_int tot);
  }

let layout_of report name =
  let d =
    List.find
      (fun d -> String.equal d.info.Analysis.decl.Ast.name name)
      report.decisions
  in
  d.layout

(* Does any chosen layout use a Perm dimension (the shared-L2 home
   lookup)?  If so the rewritten program needs the compiler-emitted
   __home index array declared. *)
let uses_home_lookup report =
  let rec expr_uses = function
    | Layout.D _ -> false
    | Layout.Div (e, _) | Layout.Mod (e, _) -> expr_uses e
    | Layout.Perm _ -> true
  in
  List.exists
    (fun d ->
      d.optimized
      && Array.exists
           (fun (od : Layout.out_dim) -> expr_uses od.Layout.expr)
           d.layout.Layout.out)
    report.decisions

let home_table_size report =
  List.fold_left
    (fun acc d ->
      let rec expr_size = function
        | Layout.D _ -> 0
        | Layout.Div (e, _) | Layout.Mod (e, _) -> expr_size e
        | Layout.Perm (_, t) -> Array.length t
      in
      Array.fold_left
        (fun acc (od : Layout.out_dim) -> max acc (expr_size od.Layout.expr))
        acc d.layout.Layout.out)
    0 report.decisions

let rewrite_program report (p : Ast.program) =
  let layout name =
    List.find_opt
      (fun d -> String.equal d.info.Analysis.decl.Ast.name name)
      report.decisions
  in
  let rewrite_ref (r : Ast.ref_) subs' =
    match layout r.Ast.array with
    | Some d when d.optimized ->
      { r with Ast.subs = Layout.transformed_subscripts d.layout subs' }
    | _ -> { r with Ast.subs = subs' }
  in
  let rec rewrite_expr = function
    | (Ast.Int _ | Ast.Var _) as e -> e
    | Ast.Neg a -> Ast.Neg (rewrite_expr a)
    | Ast.Add (a, b) -> Ast.Add (rewrite_expr a, rewrite_expr b)
    | Ast.Sub (a, b) -> Ast.Sub (rewrite_expr a, rewrite_expr b)
    | Ast.Mul (a, b) -> Ast.Mul (rewrite_expr a, rewrite_expr b)
    | Ast.Div (a, b) -> Ast.Div (rewrite_expr a, rewrite_expr b)
    | Ast.Mod (a, b) -> Ast.Mod (rewrite_expr a, rewrite_expr b)
    | Ast.Load r -> Ast.Load (rewrite_ref r (List.map rewrite_expr r.Ast.subs))
  in
  let rec rewrite_stmt = function
    | Ast.Assign (lhs, rhs) ->
      Ast.Assign
        (rewrite_ref lhs (List.map rewrite_expr lhs.Ast.subs), rewrite_expr rhs)
    | Ast.Loop l -> Ast.Loop { l with Ast.body = List.map rewrite_stmt l.body }
    | Ast.If c ->
      Ast.If
        {
          c with
          Ast.lhs = rewrite_expr c.Ast.lhs;
          rhs = rewrite_expr c.Ast.rhs;
          then_ = List.map rewrite_stmt c.Ast.then_;
          else_ = List.map rewrite_stmt c.Ast.else_;
        }
  in
  let rewrite_decl (d : Ast.decl) =
    match layout d.Ast.name with
    | Some dec when dec.optimized ->
      {
        d with
        Ast.extents =
          Array.to_list
            (Array.map
               (fun (od : Layout.out_dim) -> Ast.Int od.Layout.extent)
               dec.layout.Layout.out);
      }
    | _ -> d
  in
  let decls = List.map rewrite_decl p.Ast.decls in
  let decls =
    if uses_home_lookup report then
      (* the compiler-emitted home-bank lookup (shared L2) *)
      { Ast.name = "__home";
        extents = [ Ast.Int (home_table_size report) ];
        index_array = true }
      :: decls
    else decls
  in
  { p with Ast.decls; Ast.nests = List.map rewrite_stmt p.Ast.nests }

let pp_report ppf r =
  Format.fprintf ppf "@[<v>arrays optimized: %.1f%%, references satisfied: %.1f%%"
    r.pct_arrays_optimized r.pct_refs_satisfied;
  List.iter
    (fun d ->
      let name = d.info.Analysis.decl.Ast.name in
      if d.optimized then
        Format.fprintf ppf "@,  %s: optimized (%d/%d weight satisfied)" name
          d.satisfied_weight d.total_weight
      else
        let why =
          match d.kept with
          | Some Index_array -> "index array"
          | Some No_parallel_reference -> "no parallel affine reference"
          | Some No_solution -> "no non-trivial solution"
          | Some (Bad_approximation f) ->
            Printf.sprintf "approximation inaccuracy %.0f%%" (100. *. f)
          | None -> "?"
        in
        Format.fprintf ppf "@,  %s: kept (%s)" name why)
    r.decisions;
  Format.fprintf ppf "@]"
