(** Worker-side execution of one sweep job: prepare the workload
    (optionally through the layout pass), simulate it, and package the
    full machine-readable result — the same document shape `simulate
    --stats-json` writes, so downstream tooling reads both. *)

val result_json :
  ?attr:Obs.Attr.t ->
  ?extra:(string * Obs.Json.t) list ->
  app:string ->
  Sim.Config.t ->
  Sim.Engine.result ->
  Obs.Json.t
(** [{"app", "config", "stats", "measured_time", "mc_occupancy",
    "mc_row_hit_rate", "mc_max_queue", "link_utilization",
    "pages_allocated"}].  With [attr] (an aggregator the run recorded
    into) the document additionally carries ["attribution"]
    ({!Obs.Attr.to_json}) and ["heatmaps"] (ASCII link-utilization,
    bank-pressure and per-node request grids); without it the shape is
    byte-identical to the pre-attribution format.  [extra] fields (default
    none) are appended verbatim after the standard ones — the
    consolidation server adds its ["scenario"]/["tenants"]/["qos"]
    sections this way. *)

val run_job : ?domains:int -> Spec.job -> Obs.Json.t
(** Simulates the job and returns its result document.  [domains]
    (default 1) runs the engine pass through {!Sim.Par_engine} — the
    document is byte-identical for every value, so it does not enter the
    result-cache key.  Raises on internal errors (unparseable workload
    model, simulator invariant) — in pool workers that surfaces as a
    failed attempt, not a sweep abort. *)
