type t = int array array

let make ~rows ~cols c = Array.init rows (fun _ -> Array.make cols c)

let identity n = Array.init n (fun i -> Vec.unit n i)

let rows m = Array.length m

let cols m = if Array.length m = 0 then 0 else Array.length m.(0)

let of_rows = function
  | [] -> invalid_arg "Matrix.of_rows: empty"
  | r :: _ as rs ->
    let d = Vec.dim r in
    if not (List.for_all (fun v -> Vec.dim v = d) rs) then
      invalid_arg "Matrix.of_rows: ragged rows";
    Array.of_list (List.map Vec.copy rs)

let row m i = Vec.copy m.(i)

let col m j = Array.init (rows m) (fun i -> m.(i).(j))

let copy m = Array.map Vec.copy m

let transpose m =
  let r = rows m and c = cols m in
  Array.init c (fun j -> Array.init r (fun i -> m.(i).(j)))

let mul a b =
  if cols a <> rows b then invalid_arg "Matrix.mul";
  let n = rows a and p = cols b and k = cols a in
  Array.init n (fun i ->
      Array.init p (fun j ->
          let s = ref 0 in
          for t = 0 to k - 1 do
            s := !s + (a.(i).(t) * b.(t).(j))
          done;
          !s))

let mul_vec m v =
  if cols m <> Vec.dim v then invalid_arg "Matrix.mul_vec";
  Array.init (rows m) (fun i -> Vec.dot m.(i) v)

let drop_col m j =
  let c = cols m in
  if j < 0 || j >= c then invalid_arg "Matrix.drop_col";
  Array.map
    (fun r -> Array.init (c - 1) (fun t -> if t < j then r.(t) else r.(t + 1)))
    m

let equal a b = a = b

(* Bareiss fraction-free Gaussian elimination: all intermediate divisions are
   exact, so the computation stays in the integers. *)
let det m =
  let n = rows m in
  if n <> cols m then invalid_arg "Matrix.det: not square";
  if n = 0 then 1
  else begin
    let a = copy m in
    let sign = ref 1 in
    let prev = ref 1 in
    let singular = ref false in
    (try
       for k = 0 to n - 2 do
         if a.(k).(k) = 0 then begin
           (* find a pivot row below *)
           let p = ref (-1) in
           for i = k + 1 to n - 1 do
             if !p < 0 && a.(i).(k) <> 0 then p := i
           done;
           if !p < 0 then begin
             singular := true;
             raise Exit
           end;
           let tmp = a.(k) in
           a.(k) <- a.(!p);
           a.(!p) <- tmp;
           sign := - !sign
         end;
         for i = k + 1 to n - 1 do
           for j = k + 1 to n - 1 do
             a.(i).(j) <-
               ((a.(i).(j) * a.(k).(k)) - (a.(i).(k) * a.(k).(j))) / !prev
           done;
           a.(i).(k) <- 0
         done;
         prev := a.(k).(k)
       done
     with Exit -> ());
    if !singular then 0 else !sign * a.(n - 1).(n - 1)
  end

let is_unimodular m = rows m = cols m && abs (det m) = 1

(* Minor with row i and column j removed. *)
let minor m i j =
  let n = rows m in
  Array.init (n - 1) (fun r ->
      Array.init (n - 1) (fun c ->
          m.(if r < i then r else r + 1).(if c < j then c else c + 1)))

let inverse m =
  let n = rows m in
  if n <> cols m then invalid_arg "Matrix.inverse: not square";
  let d = det m in
  if abs d <> 1 then invalid_arg "Matrix.inverse: not unimodular";
  (* adjugate / det; det = ±1 so the inverse is integral *)
  Array.init n (fun i ->
      Array.init n (fun j ->
          let sgn = if (i + j) mod 2 = 0 then 1 else -1 in
          sgn * det (minor m j i) * d))

let swap_rows m i j =
  let tmp = m.(i) in
  m.(i) <- m.(j);
  m.(j) <- tmp

let pp ppf m =
  Format.fprintf ppf "@[<v>%a@]"
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.fprintf ppf "@,")
       Vec.pp)
    (Array.to_list m)

let to_string m = Format.asprintf "%a" pp m
