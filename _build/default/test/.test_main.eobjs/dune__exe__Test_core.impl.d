test/test_core.ml: Affine Alcotest Array Astring Core Format Hashtbl Lang List Noc Option String
