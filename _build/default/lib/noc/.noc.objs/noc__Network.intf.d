lib/noc/network.mli: Topology
