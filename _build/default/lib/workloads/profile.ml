module Ast = Lang.Ast

let target_samples = 1000.

let rec contains_load = function
  | Ast.Load _ -> true
  | Ast.Int _ | Ast.Var _ -> false
  | Ast.Neg a -> contains_load a
  | Ast.Add (a, b) | Ast.Sub (a, b) | Ast.Mul (a, b) | Ast.Div (a, b)
  | Ast.Mod (a, b) ->
    contains_load a || contains_load b

let samples app (analysis : Lang.Analysis.t) array =
  let prog = analysis.Lang.Analysis.program in
  let env : (string, int) Hashtbl.t = Hashtbl.create 16 in
  List.iter (fun (n, v) -> Hashtbl.replace env n v) analysis.Lang.Analysis.params;
  let index_arrays =
    List.filter_map
      (fun (d : Ast.decl) -> if d.Ast.index_array then Some d.Ast.name else None)
      prog.Ast.decls
  in
  let rec eval = function
    | Ast.Int n -> n
    | Ast.Var x -> Hashtbl.find env x
    | Ast.Neg a -> -eval a
    | Ast.Add (a, b) -> eval a + eval b
    | Ast.Sub (a, b) -> eval a - eval b
    | Ast.Mul (a, b) -> eval a * eval b
    | Ast.Div (a, b) -> eval a / eval b
    | Ast.Mod (a, b) -> eval a mod eval b
    | Ast.Load r ->
      let subs = List.map eval r.Ast.subs in
      if List.exists (String.equal r.Ast.array) index_arrays then
        App.index_lookup app r.Ast.array (Array.of_list subs)
      else 0
  in
  let out = ref [] in
  (* indexed references to [array] inside an expression *)
  let rec refs_in = function
    | Ast.Int _ | Ast.Var _ -> []
    | Ast.Neg a -> refs_in a
    | Ast.Add (a, b) | Ast.Sub (a, b) | Ast.Mul (a, b) | Ast.Div (a, b)
    | Ast.Mod (a, b) ->
      refs_in a @ refs_in b
    | Ast.Load r ->
      let nested = List.concat_map refs_in r.Ast.subs in
      if String.equal r.Ast.array array && List.exists contains_load r.Ast.subs
      then r :: nested
      else nested
  in
  let sample_nest iters refs =
    let m = max 1 (List.length iters) in
    let per_dim =
      int_of_float (ceil (target_samples ** (1. /. float_of_int m)))
    in
    let rec go = function
      | [] ->
        List.iter
          (fun (r : Ast.ref_) ->
            let ivec =
              Array.of_list
                (List.map (fun (l : Ast.loop) -> Hashtbl.find env l.Ast.index) iters)
            in
            let dvec = Array.of_list (List.map eval r.Ast.subs) in
            out := (ivec, dvec) :: !out)
          refs
      | (l : Ast.loop) :: rest ->
        let lo = eval l.Ast.lo and hi = eval l.Ast.hi in
        let trip = hi - lo + 1 in
        if trip > 0 then begin
          let stride = max 1 (trip / per_dim) in
          let x = ref lo in
          while !x <= hi do
            Hashtbl.replace env l.Ast.index !x;
            go rest;
            x := !x + stride
          done;
          Hashtbl.remove env l.Ast.index
        end
    in
    go iters
  in
  let rec walk iters = function
    | Ast.Loop l -> List.iter (walk (iters @ [ l ])) l.Ast.body
    | Ast.If c ->
      List.iter (walk iters) c.Ast.then_;
      List.iter (walk iters) c.Ast.else_
    | Ast.Assign (lhs, rhs) ->
      let refs =
        (if
           String.equal lhs.Ast.array array
           && List.exists contains_load lhs.Ast.subs
         then [ lhs ]
         else [])
        @ List.concat_map refs_in lhs.Ast.subs
        @ refs_in rhs
      in
      if refs <> [] then sample_nest iters refs
  in
  List.iter (walk []) prog.Ast.nests;
  !out

let for_transform = samples
