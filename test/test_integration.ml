(* Cross-module integration tests: end-to-end invariants that tie the
   pass, the allocator and the simulator together. *)

module Config = Sim.Config
module Engine = Sim.Engine
module Runner = Sim.Runner
module Stats = Sim.Stats
module Cluster = Core.Cluster

let stencil_src =
  {|
param N = 128;
array A[N][N];
array B[N][N];
parfor i = 1 to N-2 { for j = 1 to N-2 { A[i][j] = B[i][j] + B[i-1][j] + B[i+1][j]; } }
parfor i = 1 to N-2 { for j = 1 to N-2 { B[i][j] = A[i][j] + A[i][j-1]; } }
|}

let parse src =
  match Lang.Parser.parse_result src with
  | Ok p -> p
  | Error _ -> failwith "parse failed"

let stencil = parse stencil_src

(* The defining end-to-end property: after the pass, off-chip requests are
   overwhelmingly cluster-local (requester and controller in the same
   quadrant). *)
let test_offchip_locality () =
  let cfg = Config.scaled () in
  let topo = Config.topo cfg and cl = Config.cluster cfg in
  let local_fraction r =
    let s = (r : Engine.result).Engine.stats in
    let local = ref 0 and total = ref 0 in
    Array.iteri
      (fun node row ->
        Array.iteri
          (fun mc count ->
            total := !total + count;
            let node_cluster = Cluster.cluster_of_node cl topo node in
            if List.mem mc (Cluster.mcs_of_cluster cl node_cluster) then
              local := !local + count)
          row)
      (Stats.node_mc_requests s);
    float_of_int !local /. float_of_int (max 1 !total)
  in
  let orig = Runner.run cfg ~optimized:false stencil in
  let opt = Runner.run cfg ~optimized:true stencil in
  Alcotest.(check bool) "original is spread (~25% local)" true
    (local_fraction orig < 0.40);
  Alcotest.(check bool) "optimized is localized (>85%)" true
    (local_fraction opt > 0.85)

(* Under page interleaving with the MC-aware policy, every page of an
   optimized run lands on the controller the layout asked for, with no
   fallbacks. *)
let test_mc_aware_pages_honored () =
  let cfg =
    {
      (Config.with_interleaving (Config.scaled ())
         Dram.Address_map.Page_interleaved)
      with
      Config.page_policy = Config.Mc_aware;
    }
  in
  let r = Runner.run cfg ~optimized:true stencil in
  Alcotest.(check int) "no fallbacks" 0 (Stats.page_fallbacks r.Engine.stats);
  Alcotest.(check bool) "pages allocated" true (r.Engine.pages_allocated > 0)

(* First-touch vs MC-aware: for a kernel whose init runs on the "wrong"
   dimension, the compiler+OS combination must beat first-touch. *)
let test_beats_first_touch_on_scrambled_init () =
  (* apsi initializes its grids column-parallel, so first-touch places
     most pages on the wrong controller (Section 6.3) *)
  let app = Workloads.Suite.by_name "apsi" in
  let p = Workloads.App.program app in
  let page policy =
    {
      (Config.with_interleaving (Config.scaled ())
         Dram.Address_map.Page_interleaved)
      with
      Config.page_policy = policy;
    }
  in
  let ft = Runner.run (page Config.First_touch) ~optimized:false ~warmup_phases:1 p in
  let ours = Runner.run (page Config.Mc_aware) ~optimized:true ~warmup_phases:1 p in
  Alcotest.(check bool) "ours faster than first-touch" true
    (ours.Engine.measured_time < ft.Engine.measured_time)

(* The transformed program printed by the pass can be consumed again by
   the front end (occ's output is valid input). *)
let test_occ_output_reparses () =
  let private_cfg = Config.customize_config (Config.scaled ()) in
  let shared_cfg =
    { private_cfg with Core.Customize.l2 = Core.Customize.Shared_l2 }
  in
  List.iter
    (fun ccfg ->
      List.iter
        (fun app ->
          let program = Workloads.App.program app in
          let analysis = Lang.Analysis.analyze program in
          let profile a = Workloads.Profile.for_transform app analysis a in
          let report = Core.Transform.run ~profile ccfg analysis in
          let printed =
            Lang.Ast.program_to_string
              (Core.Transform.rewrite_program report program)
          in
          (* shared-L2 rewrites reference the compiler-emitted __home
             lookup, which rewrite_program must declare *)
          match Lang.Parser.parse_result printed with
          | Ok _ -> ()
          | Error (d :: _) ->
            Alcotest.failf "%s: rewritten program does not reparse (%s)"
              app.Workloads.App.name d.Lang.Diag.message
          | Error [] ->
            Alcotest.failf "%s: rewritten program does not reparse"
              app.Workloads.App.name)
        Workloads.Suite.all)
    [ private_cfg; shared_cfg ]

(* Layout bijectivity as a property over random permutation matrices and
   extents, for both L2 organizations. *)
let prop_layout_bijective =
  let gen =
    QCheck.Gen.(
      let* d0 = int_range 3 5 in
      let* d1 = int_range 3 5 in
      let* swap = bool in
      let* shared = bool in
      return (8 * d0, 8 * d1, swap, shared))
  in
  let print (a, b, s, sh) = Printf.sprintf "%dx%d swap=%b shared=%b" a b s sh in
  QCheck.Test.make ~name:"customized layouts are injective" ~count:20
    (QCheck.make ~print gen)
    (fun (n0, n1, swap, shared) ->
      let cfg = Config.customize_config (Config.scaled ()) in
      let cfg =
        if shared then { cfg with Core.Customize.l2 = Core.Customize.Shared_l2 }
        else cfg
      in
      let u =
        if swap then
          Affine.Matrix.of_rows
            [ Affine.Vec.of_list [ 0; 1 ]; Affine.Vec.of_list [ 1; 0 ] ]
        else Affine.Matrix.identity 2
      in
      let layout =
        Core.Customize.customize cfg ~array:"A" ~extents:[| n0; n1 |] ~u ~v:0
      in
      let seen = Hashtbl.create 1024 in
      let ok = ref true in
      let size = Core.Layout.size_elems layout in
      for x = 0 to n0 - 1 do
        for y = 0 to n1 - 1 do
          let off = Core.Layout.offset_of_index layout [| x; y |] in
          if off < 0 || off >= size || Hashtbl.mem seen off then ok := false;
          Hashtbl.replace seen off ()
        done
      done;
      !ok)

(* Determinism across the whole stack: two identical full runs produce
   identical statistics. *)
let test_full_determinism () =
  let app = Workloads.Suite.by_name "galgel" in
  let program = Workloads.App.program app in
  let cfg = Config.scaled () in
  let go () =
    let r = Runner.run cfg ~optimized:true ~warmup_phases:2 program in
    ( (Stats.finish_time r.Engine.stats),
      (Stats.offchip_accesses r.Engine.stats),
      (Stats.onchip_messages r.Engine.stats) )
  in
  let a = go () and b = go () in
  Alcotest.(check (triple int int int)) "identical stats" a b

(* The optimal scheme bounds the compiler scheme: optimal execution time
   is never worse than the optimized layout's. *)
let test_optimal_bounds_compiler () =
  let cfg = Config.scaled () in
  let optimal = { cfg with Config.optimal = true } in
  let opt = Runner.run cfg ~optimized:true ~warmup_phases:0 stencil in
  let ideal = Runner.run optimal ~optimized:false ~warmup_phases:0 stencil in
  Alcotest.(check bool) "optimal <= compiler-optimized" true
    ((Stats.finish_time ideal.Engine.stats)
    <= (Stats.finish_time opt.Engine.stats))

let qsuite = List.map QCheck_alcotest.to_alcotest

let suite =
  [
    ( "integration",
      [
        Alcotest.test_case "off-chip locality" `Quick test_offchip_locality;
        Alcotest.test_case "MC-aware pages honored" `Quick test_mc_aware_pages_honored;
        Alcotest.test_case "beats first-touch" `Quick test_beats_first_touch_on_scrambled_init;
        Alcotest.test_case "occ output reparses" `Quick test_occ_output_reparses;
        Alcotest.test_case "full determinism" `Quick test_full_determinism;
        Alcotest.test_case "optimal bounds compiler" `Quick test_optimal_bounds_compiler;
      ]
      @ qsuite [ prop_layout_bijective ] );
  ]
