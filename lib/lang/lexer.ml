type token =
  | IDENT of string
  | INT of int
  | KW_PARAM
  | KW_ARRAY
  | KW_INDEX
  | KW_FOR
  | KW_PARFOR
  | KW_TO
  | KW_IF
  | KW_ELSE
  | LBRACKET
  | RBRACKET
  | LBRACE
  | RBRACE
  | LPAREN
  | RPAREN
  | PLUS
  | MINUS
  | STAR
  | SLASH
  | PERCENT
  | EQUALS
  | LT
  | LE
  | GT
  | GE
  | EQEQ
  | NE
  | SEMI
  | EOF

type spanned = { tok : token; span : Span.t }

exception Error of string * int

let keyword = function
  | "param" -> Some KW_PARAM
  | "array" -> Some KW_ARRAY
  | "index" -> Some KW_INDEX
  | "for" -> Some KW_FOR
  | "parfor" -> Some KW_PARFOR
  | "to" -> Some KW_TO
  | "if" -> Some KW_IF
  | "else" -> Some KW_ELSE
  | _ -> None

let is_ident_start c = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_'

let is_ident_char c = is_ident_start c || (c >= '0' && c <= '9')

let is_digit c = c >= '0' && c <= '9'

(* The scanner proper: spanned tokens, or the first lexical diagnostic.
   [//] comments run to end of line; [/* ... */] comments nest one level
   deep in spirit (they do not nest — the first [*/] closes) and must be
   terminated before EOF. *)
let scan ?(file = "<input>") src =
  let n = String.length src in
  let toks = ref [] in
  let push tok lo hi = toks := { tok; span = Span.make ~file ~lo ~hi } :: !toks in
  let err ?notes code lo hi msg =
    Result.Error (Diag.error ~code ?notes (Span.make ~file ~lo ~hi) msg)
  in
  let i = ref 0 in
  let result = ref None in
  while Option.is_none !result && !i < n do
    let c = src.[!i] in
    let st = !i in
    if c = ' ' || c = '\t' || c = '\n' || c = '\r' then incr i
    else if c = '/' && !i + 1 < n && src.[!i + 1] = '/' then begin
      while !i < n && src.[!i] <> '\n' do
        incr i
      done
    end
    else if c = '/' && !i + 1 < n && src.[!i + 1] = '*' then begin
      (* block comment: scan for the closing [*/]; reaching EOF first is a
         located error at the opening delimiter, not silent truncation *)
      i := !i + 2;
      let closed = ref false in
      while (not !closed) && !i < n do
        if src.[!i] = '*' && !i + 1 < n && src.[!i + 1] = '/' then begin
          closed := true;
          i := !i + 2
        end
        else incr i
      done;
      if not !closed then
        result :=
          Some
            (err "L002" st (st + 2) "unterminated block comment"
               ~notes:[ Diag.note "the comment is opened here and never closed with */" ])
    end
    else if is_digit c then begin
      while !i < n && is_digit src.[!i] do
        incr i
      done;
      push (INT (int_of_string (String.sub src st (!i - st)))) st !i
    end
    else if is_ident_start c then begin
      while !i < n && is_ident_char src.[!i] do
        incr i
      done;
      let s = String.sub src st (!i - st) in
      push (match keyword s with Some k -> k | None -> IDENT s) st !i
    end
    else if c = '<' then
      if !i + 1 < n && src.[!i + 1] = '=' then begin
        push LE st (st + 2);
        i := !i + 2
      end
      else begin
        push LT st (st + 1);
        incr i
      end
    else if c = '>' then
      if !i + 1 < n && src.[!i + 1] = '=' then begin
        push GE st (st + 2);
        i := !i + 2
      end
      else begin
        push GT st (st + 1);
        incr i
      end
    else if c = '=' && !i + 1 < n && src.[!i + 1] = '=' then begin
      push EQEQ st (st + 2);
      i := !i + 2
    end
    else if c = '!' && !i + 1 < n && src.[!i + 1] = '=' then begin
      push NE st (st + 2);
      i := !i + 2
    end
    else begin
      (match c with
      | '[' -> push LBRACKET st (st + 1)
      | ']' -> push RBRACKET st (st + 1)
      | '{' -> push LBRACE st (st + 1)
      | '}' -> push RBRACE st (st + 1)
      | '(' -> push LPAREN st (st + 1)
      | ')' -> push RPAREN st (st + 1)
      | '+' -> push PLUS st (st + 1)
      | '-' -> push MINUS st (st + 1)
      | '*' -> push STAR st (st + 1)
      | '/' -> push SLASH st (st + 1)
      | '%' -> push PERCENT st (st + 1)
      | '=' -> push EQUALS st (st + 1)
      | ';' -> push SEMI st (st + 1)
      | _ ->
        result :=
          Some
            (err "L001" st (st + 1)
               (Printf.sprintf "unexpected character %C" c)));
      if Option.is_none !result then incr i
    end
  done;
  match !result with
  | Some e -> e
  | None ->
    push EOF n n;
    Ok (List.rev !toks)

let tokenize src =
  match scan src with
  | Ok spanned -> List.map (fun s -> s.tok) spanned
  | Error d -> raise (Error (d.Diag.message, d.Diag.span.Span.lo))

let pp_token ppf = function
  | IDENT s -> Format.fprintf ppf "ident %s" s
  | INT n -> Format.fprintf ppf "int %d" n
  | KW_PARAM -> Format.pp_print_string ppf "param"
  | KW_ARRAY -> Format.pp_print_string ppf "array"
  | KW_INDEX -> Format.pp_print_string ppf "index"
  | KW_FOR -> Format.pp_print_string ppf "for"
  | KW_PARFOR -> Format.pp_print_string ppf "parfor"
  | KW_TO -> Format.pp_print_string ppf "to"
  | LBRACKET -> Format.pp_print_string ppf "["
  | RBRACKET -> Format.pp_print_string ppf "]"
  | LBRACE -> Format.pp_print_string ppf "{"
  | RBRACE -> Format.pp_print_string ppf "}"
  | LPAREN -> Format.pp_print_string ppf "("
  | RPAREN -> Format.pp_print_string ppf ")"
  | PLUS -> Format.pp_print_string ppf "+"
  | MINUS -> Format.pp_print_string ppf "-"
  | STAR -> Format.pp_print_string ppf "*"
  | SLASH -> Format.pp_print_string ppf "/"
  | PERCENT -> Format.pp_print_string ppf "%"
  | EQUALS -> Format.pp_print_string ppf "="
  | LT -> Format.pp_print_string ppf "<"
  | LE -> Format.pp_print_string ppf "<="
  | GT -> Format.pp_print_string ppf ">"
  | GE -> Format.pp_print_string ppf ">="
  | EQEQ -> Format.pp_print_string ppf "=="
  | NE -> Format.pp_print_string ppf "!="
  | SEMI -> Format.pp_print_string ppf ";"
  | EOF -> Format.pp_print_string ppf "<eof>"
  | KW_IF -> Format.pp_print_string ppf "if"
  | KW_ELSE -> Format.pp_print_string ppf "else"
