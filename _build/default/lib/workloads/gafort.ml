(** gafort (SPEC OMP): genetic algorithm — population rows are private to
    their owning thread (shuffle/evaluation), which makes first-touch
    placement effective (Section 6.3). *)

let app =
  App.make ~name:"gafort"
    ~description:"genetic algorithm: per-individual gene sweeps"
    ~first_touch_friendly:true
    {|
param N = 1024;
param G = 144;
array POP[N][G];
array FIT[N];
// owner-parallel init: first touch by the computing core
parfor i = 0 to N-1 {
  FIT[i] = 0;
  for g0 = 0 to G/16-1 {
    POP[i][16*g0] = i + g0;
  }
}
parfor i = 0 to N-1 {
  for g0 = 0 to G-1 {
    FIT[i] = FIT[i] + POP[i][g0]*POP[i][g0];
    POP[i][g0] = POP[i][g0] + 1;
  }
}
|}
